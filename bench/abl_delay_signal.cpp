// Ablation A6 — the Section III-D timing signal.
//
// ECN marking only fires above the configured threshold K; if K is set
// too high (a common operator mistake the paper warns about in IV-E),
// probes come back clean even though a deep standing queue exists, and
// ECN-only HWatch grants full initial windows into it.  The delay
// signal (probe one-way-delay inflation vs the per-path baseline)
// catches exactly this case.  Sweep K upward and compare ECN-only
// HWatch with ECN+delay HWatch on the fig8 scenario.
#include <iostream>

#include "fig89_common.hpp"

using namespace hwatch;

namespace {

api::DumbbellScenarioConfig point_config(std::uint64_t k_frames,
                                         bool delay_signal) {
  api::DumbbellScenarioConfig cfg = bench::paper_dumbbell_base();
  cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
  cfg.core_aqm.mark_threshold_packets = k_frames;
  cfg.edge_aqm = cfg.core_aqm;
  tcp::TcpConfig t = bench::paper_tcp(tcp::EcnMode::kNone);
  cfg.long_groups = {{tcp::Transport::kNewReno, t, 25, "tcp"}};
  cfg.short_groups = {{tcp::Transport::kNewReno, t, 25, "tcp"}};
  cfg.hwatch_enabled = true;
  cfg.hwatch = bench::paper_hwatch(cfg.base_rtt);
  cfg.hwatch.use_delay_signal = delay_signal;
  cfg.hwatch.delay_drain_rate = cfg.bottleneck_rate;
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Ablation A6",
                      "ECN-only vs ECN+delay congestion watching as the "
                      "marking threshold K degrades");

  struct Point {
    std::uint64_t k;
    bool delay;
  };
  std::vector<Point> grid;
  std::vector<bench::DumbbellPoint> points;
  for (std::uint64_t k : {50ull, 100ull, 150ull, 200ull}) {
    for (bool delay : {false, true}) {
      grid.push_back({k, delay});
      points.push_back({"K=" + std::to_string(k) +
                            (delay ? "_ecn+delay" : "_ecn-only"),
                        point_config(k, delay)});
    }
  }
  std::vector<bench::Curve> curves = bench::run_sweep("abl_delay_signal", std::move(points));

  stats::Table t({"K(frames)", "signal", "FCT mean(ms)", "FCT p99(ms)",
                  "unfinished", "drops", "timeouts", "goodput(Gb/s)"});
  for (std::size_t i = 0; i < curves.size(); ++i) {
    const api::ScenarioResults& res = curves[i].results;
    const auto fct = res.short_fct_cdf_ms().summarize();
    t.add_row({std::to_string(grid[i].k),
               grid[i].delay ? "ecn+delay" : "ecn-only",
               stats::Table::num(fct.mean, 3),
               stats::Table::num(fct.p99, 3),
               std::to_string(res.incomplete_short_flows()),
               std::to_string(res.fabric_drops),
               std::to_string(res.timeouts),
               stats::Table::num(
                   res.long_goodput_cdf_gbps().summarize().mean, 3)});
  }
  t.print(std::cout);
  std::cout << "\nWith a well-set K the signals agree; as K degrades the "
               "timing signal keeps\ncatching the standing queue that "
               "ECN no longer flags.\n";
  return 0;
}
