// Ablation A5 — lowering minRTO vs deploying HWatch.
//
// The paper's related-work section (VII) discusses the classic
// alternative: shrink the TCP minimum RTO so timeouts stop costing
// 2000 RTTs.  It argues the fix is intrusive (kernel change inside the
// tenant VM, violating R3) and fragile.  This bench quantifies how far
// minRTO reduction actually gets on the fig8 scenario, against HWatch
// with stock 200 ms guests.
#include <iostream>

#include "fig89_common.hpp"

using namespace hwatch;

namespace {

api::DumbbellScenarioConfig minrto_config(sim::TimePs min_rto) {
  api::DumbbellScenarioConfig cfg = bench::paper_dumbbell_base();
  cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
  cfg.edge_aqm = cfg.core_aqm;
  tcp::TcpConfig t = bench::paper_tcp(tcp::EcnMode::kNone);
  t.min_rto = min_rto;
  t.initial_rto = min_rto;
  cfg.long_groups = {{tcp::Transport::kNewReno, t, 25, "tcp"}};
  cfg.short_groups = {{tcp::Transport::kNewReno, t, 25, "tcp"}};
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Ablation A5",
                      "shrinking minRTO (guest kernel change) vs HWatch "
                      "(hypervisor only)");

  const std::vector<sim::TimePs> rtos = {
      sim::milliseconds(200), sim::milliseconds(50), sim::milliseconds(10),
      sim::milliseconds(4), sim::milliseconds(1)};
  std::vector<bench::DumbbellPoint> points;
  for (sim::TimePs rto : rtos) {
    points.push_back(
        {"minRTO=" + stats::Table::num(sim::to_millis(rto), 0) + "ms",
         minrto_config(rto)});
  }
  // Last point: HWatch with stock 200 ms guests, for comparison.
  points.push_back({"HWatch (stock 200ms)",
                    bench::scheme_config(bench::Scheme::kTcpHWatch, 50)});
  std::vector<bench::Curve> curves = bench::run_sweep("abl_minrto", std::move(points));

  stats::Table t({"remedy", "FCT mean(ms)", "FCT p99(ms)", "unfinished",
                  "drops", "timeouts", "goodput(Gb/s)", "guest change?"});
  for (std::size_t i = 0; i < curves.size(); ++i) {
    const bool is_hwatch = i >= rtos.size();
    const api::ScenarioResults& res = curves[i].results;
    const auto fct = res.short_fct_cdf_ms().summarize();
    t.add_row({curves[i].name, stats::Table::num(fct.mean, 3),
               stats::Table::num(fct.p99, 3),
               std::to_string(res.incomplete_short_flows()),
               std::to_string(res.fabric_drops),
               std::to_string(res.timeouts),
               stats::Table::num(
                   res.long_goodput_cdf_gbps().summarize().mean, 3),
               is_hwatch || rtos[i] == sim::milliseconds(200)
                   ? (is_hwatch ? "no" : "no (stock)")
                   : "yes (R3!)"});
  }
  t.print(std::cout);
  std::cout << "\nShrinking minRTO shortens the penalty of each loss but "
               "keeps every loss\n(and requires patching tenant kernels); "
               "HWatch removes the losses while\nleaving guests at the "
               "stock 200 ms.\n";
  return 0;
}
