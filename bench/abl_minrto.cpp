// Ablation A5 — lowering minRTO vs deploying HWatch.
//
// The paper's related-work section (VII) discusses the classic
// alternative: shrink the TCP minimum RTO so timeouts stop costing
// 2000 RTTs.  It argues the fix is intrusive (kernel change inside the
// tenant VM, violating R3) and fragile.  This bench quantifies how far
// minRTO reduction actually gets on the fig8 scenario, against HWatch
// with stock 200 ms guests.
#include <iostream>

#include "fig89_common.hpp"

using namespace hwatch;

namespace {

api::ScenarioResults run_minrto(sim::TimePs min_rto) {
  api::DumbbellScenarioConfig cfg = bench::paper_dumbbell_base();
  cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
  cfg.edge_aqm = cfg.core_aqm;
  tcp::TcpConfig t = bench::paper_tcp(tcp::EcnMode::kNone);
  t.min_rto = min_rto;
  t.initial_rto = min_rto;
  cfg.long_groups = {{tcp::Transport::kNewReno, t, 25, "tcp"}};
  cfg.short_groups = {{tcp::Transport::kNewReno, t, 25, "tcp"}};
  return api::run_dumbbell(cfg);
}

}  // namespace

int main() {
  bench::print_header("Ablation A5",
                      "shrinking minRTO (guest kernel change) vs HWatch "
                      "(hypervisor only)");

  stats::Table t({"remedy", "FCT mean(ms)", "FCT p99(ms)", "unfinished",
                  "drops", "timeouts", "goodput(Gb/s)", "guest change?"});
  for (sim::TimePs rto :
       {sim::milliseconds(200), sim::milliseconds(50), sim::milliseconds(10),
        sim::milliseconds(4), sim::milliseconds(1)}) {
    const api::ScenarioResults res = run_minrto(rto);
    const auto fct = res.short_fct_cdf_ms().summarize();
    t.add_row({"minRTO=" + stats::Table::num(sim::to_millis(rto), 0) + "ms",
               stats::Table::num(fct.mean, 3),
               stats::Table::num(fct.p99, 3),
               std::to_string(res.incomplete_short_flows()),
               std::to_string(res.fabric_drops),
               std::to_string(res.timeouts),
               stats::Table::num(
                   res.long_goodput_cdf_gbps().summarize().mean, 3),
               rto == sim::milliseconds(200) ? "no (stock)" : "yes (R3!)"});
  }
  {
    const api::ScenarioResults res =
        bench::run_scheme(bench::Scheme::kTcpHWatch, 50);
    const auto fct = res.short_fct_cdf_ms().summarize();
    t.add_row({"HWatch (stock 200ms)", stats::Table::num(fct.mean, 3),
               stats::Table::num(fct.p99, 3),
               std::to_string(res.incomplete_short_flows()),
               std::to_string(res.fabric_drops),
               std::to_string(res.timeouts),
               stats::Table::num(
                   res.long_goodput_cdf_gbps().summarize().mean, 3),
               "no"});
  }
  t.print(std::cout);
  std::cout << "\nShrinking minRTO shortens the penalty of each loss but "
               "keeps every loss\n(and requires patching tenant kernels); "
               "HWatch removes the losses while\nleaving guests at the "
               "stock 200 ms.\n";
  return 0;
}
