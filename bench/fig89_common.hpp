// Shared machinery for Figures 8 and 9: the four-scheme comparison
// (TCP-DropTail, TCP-RED, TCP-HWATCH, DCTCP) at a given source count.
#pragma once

#include "bench_common.hpp"

namespace hwatch::bench {

enum class Scheme {
  kTcpDropTail,
  kTcpRed,
  kTcpHWatch,
  kDctcp,
};

inline const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kTcpDropTail:
      return "TCP-DropTail";
    case Scheme::kTcpRed:
      return "TCP-RED";
    case Scheme::kTcpHWatch:
      return "TCP-HWATCH";
    case Scheme::kDctcp:
      return "DCTCP";
  }
  return "?";
}

/// Config for one curve of the figure: `sources` senders split 1:1
/// long:short under the given scheme.
inline api::DumbbellScenarioConfig scheme_config(Scheme scheme,
                                                 std::uint32_t sources) {
  api::DumbbellScenarioConfig cfg = paper_dumbbell_base();
  cfg.pairs = sources;
  const std::uint32_t longs = sources / 2;
  const std::uint32_t shorts = sources - longs;

  tcp::Transport transport = tcp::Transport::kNewReno;
  tcp::TcpConfig t = paper_tcp(tcp::EcnMode::kClassic);
  switch (scheme) {
    case Scheme::kTcpDropTail:
      cfg.core_aqm.kind = api::AqmKind::kDropTail;
      t = paper_tcp(tcp::EcnMode::kNone);
      break;
    case Scheme::kTcpRed:
      cfg.core_aqm.kind = api::AqmKind::kRed;
      t = paper_tcp(tcp::EcnMode::kClassic);
      break;
    case Scheme::kTcpHWatch:
      // Plain (non-ECN) guest TCP; the hypervisor module does all the
      // ECN work (transparent ECT stamping + rwnd control).  Switches
      // run WRED configured per DCTCP's recommendation (Section IV-E):
      // instantaneous marking above 20% of the buffer.
      cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
      t = paper_tcp(tcp::EcnMode::kNone);
      cfg.hwatch_enabled = true;
      cfg.hwatch = paper_hwatch(cfg.base_rtt);
      break;
    case Scheme::kDctcp:
      cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
      transport = tcp::Transport::kDctcp;
      t = paper_tcp(tcp::EcnMode::kDctcp);
      break;
  }
  cfg.edge_aqm = cfg.core_aqm;

  cfg.long_groups = {{transport, t, longs, scheme_name(scheme)}};
  cfg.short_groups = {{transport, t, shorts, scheme_name(scheme)}};
  return cfg;
}

inline api::ScenarioResults run_scheme(Scheme scheme,
                                       std::uint32_t sources) {
  return api::run_dumbbell(scheme_config(scheme, sources));
}

inline void run_figure(const std::string& figure, std::uint32_t sources) {
  print_header(figure, std::to_string(sources) +
                           " sources (1:1 long:short), four schemes");
  std::vector<DumbbellPoint> points;
  for (Scheme s : {Scheme::kTcpDropTail, Scheme::kTcpRed,
                   Scheme::kTcpHWatch, Scheme::kDctcp}) {
    points.push_back({scheme_name(s), scheme_config(s, sources)});
  }
  std::vector<Curve> curves = run_sweep(figure, std::move(points));
  for (const Curve& c : curves) {
    const auto& res = c.results;
    const char* name = c.name.c_str();
    if (res.shim.probes_injected > 0) {
      std::cout << "  [" << name << "] hwatch: probes="
                << res.shim.probes_injected
                << " synack-rewrites=" << res.shim.synacks_rewritten
                << " ack-rewrites=" << res.shim.acks_rewritten
                << " flows=" << res.shim.flows_tracked << "\n";
    }
  }
  std::cout << "\n";
  print_fct_panel(curves);
  std::cout << "\n";
  print_fct_panel(curves, /*per_epoch_mean=*/true);
  std::cout << "\n";
  print_goodput_panel(curves);
  std::cout << "\n";
  print_timeseries_panel(curves);
  print_summary(curves);
  print_improvements(curves, "TCP-HWATCH");
  write_csvs(figure, curves);
}

}  // namespace hwatch::bench
