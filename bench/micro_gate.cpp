// Micro perf gate: the three simulator-substrate hot loops whose
// regressions historically hid inside scenario noise — raw
// schedule/run throughput, schedule/cancel timer churn, and the
// qdisc enqueue/dequeue decision — run as plain timed loops and
// reported as hwatch.bench/v1 JSON so scripts/check_perf.py ratchets
// them like the figure benches.  (micro_simcore stays the exploration
// tool: google-benchmark output is a foreign format the gate skips.)
//
// Each micro runs a fixed op count per repetition and reports the best
// repetition's rate: the best-of filter rejects scheduler-noise
// outliers on shared CI runners, and the fixed `events` count keeps the
// baseline's event-drift note meaningful.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "net/queue.hpp"
#include "sim/json.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace hwatch;
using Clock = std::chrono::steady_clock;

std::uint64_t g_sink = 0;  // defeats dead-code elimination

/// 100k schedules at pseudo-random near-horizon times, then run():
/// the wheel's insert/extract fast path.
std::uint64_t schedule_run() {
  sim::Scheduler sched;
  std::uint64_t x = 123;
  std::uint64_t sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    x = x * 6364136223846793005ull + 1;
    sched.schedule_at(static_cast<sim::TimePs>(x % 1'000'000),
                      [&sum] { ++sum; });
  }
  sched.run();
  return sum;
}

/// Rolling window of 256 pending timers, most cancelled before firing —
/// the RTO/delayed-ack pattern; stresses slot recycling and stale-entry
/// compaction across the wheel/heap split.
std::uint64_t cancel_churn() {
  constexpr int kWindow = 256;
  sim::Scheduler sched;
  sim::EventId window[kWindow] = {};
  std::uint64_t x = 99;
  for (int i = 0; i < 100'000; ++i) {
    x = x * 6364136223846793005ull + 1;
    const int slot = i % kWindow;
    if (window[slot].valid()) sched.cancel(window[slot]);
    window[slot] = sched.schedule_at(sched.now() + 1 + (x % 10'000), [] {});
    if (slot == 0) sched.run_until(sched.now() + 500);
  }
  sched.run();
  return sched.executed();
}

/// 1M enqueue/dequeue pairs through a DropTail qdisc — the per-packet
/// decision cost every hop pays before the train takes over.
std::uint64_t droptail_churn() {
  net::DropTailQueue q(250);
  net::Packet p;
  p.ip.src = 1;
  p.ip.dst = 2;
  p.tcp.src_port = 1000;
  p.tcp.dst_port = 80;
  p.payload_bytes = 1442;
  sim::TimePs now = 0;
  std::uint64_t delivered = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    now += 1000;
    net::Packet copy = p;
    q.enqueue(std::move(copy), now);
    if (q.dequeue(now)) ++delivered;
  }
  return delivered;
}

struct Micro {
  const char* name;
  std::uint64_t ops;
  std::uint64_t (*fn)();
};

struct Result {
  const Micro* micro;
  double best_wall_s = 0;
};

void write_report(const std::string& name, std::uint64_t events,
                  double wall_s,
                  const std::vector<std::pair<std::string, std::uint64_t>>&
                      points) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories("bench_out", ec);
  if (ec) {
    std::cerr << "warning: cannot create bench_out: " << ec.message() << "\n";
    return;
  }
  sim::Json pts = sim::Json::array();
  for (const auto& [pname, pevents] : points) {
    sim::Json p = sim::Json::object();
    p.set("name", sim::Json(pname));
    p.set("events", sim::Json(static_cast<std::int64_t>(pevents)));
    p.set("imbalance", sim::Json(0.0));
    pts.push_back(std::move(p));
  }
  sim::Json doc = sim::Json::object();
  doc.set("schema", sim::Json("hwatch.bench/v1"));
  doc.set("name", sim::Json(name));
  doc.set("points", std::move(pts));
  doc.set("wall_s", sim::Json(wall_s));
  doc.set("events", sim::Json(static_cast<std::int64_t>(events)));
  doc.set("events_per_s",
          sim::Json(wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0));
  doc.set("peak_rss_bytes",
          sim::Json(static_cast<std::int64_t>(bench::peak_rss_bytes())));
  const fs::path out = fs::path("bench_out") / ("BENCH_" + name + ".json");
  std::ofstream os(out);
  doc.dump(os, 2);
  os << "\n";
  std::cout << "(bench report written to " << out.string() << ")\n";
}

}  // namespace

int main() {
  // Per-micro wall budget.  HWATCH_BENCH_DURATION_MS (the CI smoke
  // knob) scales it the same way it shortens the figure benches.
  long budget_ms = 500;
  if (const char* ms = std::getenv("HWATCH_BENCH_DURATION_MS")) {
    budget_ms = std::max(5 * std::atol(ms), 20L);
  }

  const Micro micros[] = {
      {"micro_schedule_run", 100'000, schedule_run},
      {"micro_cancel_churn", 100'000, cancel_churn},
      {"micro_droptail_churn", 1'000'000, droptail_churn},
  };

  std::vector<Result> results;
  for (const Micro& m : micros) {
    g_sink += m.fn();  // warm-up repetition, untimed
    double best = 0;
    const Clock::time_point start = Clock::now();
    int reps = 0;
    do {
      const Clock::time_point t0 = Clock::now();
      g_sink += m.fn();
      const double wall =
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (best == 0 || wall < best) best = wall;
      ++reps;
    } while (std::chrono::duration<double, std::milli>(Clock::now() - start)
                     .count() < static_cast<double>(budget_ms));
    results.push_back({&m, best});
    std::cout << m.name << ": "
              << static_cast<double>(m.ops) / best / 1e6
              << "M ops/s (best of " << reps << " reps)\n";
  }

  std::uint64_t total_ops = 0;
  double total_wall = 0;
  std::vector<std::pair<std::string, std::uint64_t>> points;
  for (const Result& r : results) {
    write_report(r.micro->name, r.micro->ops, r.best_wall_s,
                 {{r.micro->name, r.micro->ops}});
    total_ops += r.micro->ops;
    total_wall += r.best_wall_s;
    points.emplace_back(r.micro->name, r.micro->ops);
  }
  // Combined roll-up: one headline number for the substrate trajectory.
  write_report("micro", total_ops, total_wall, points);
  if (g_sink == 42) std::cout << "";  // keep g_sink observable
  return 0;
}
