// Ablation A4 — open-loop vs closed-loop request arrivals.
//
// The fig11 bench approximates the testbed's request generators with
// open-loop waves.  This ablation re-runs the testbed comparison with a
// true closed-loop workload (each of the 1260 connection slots fetches
// its pages back to back, load self-regulating) and checks that the
// HWatch-vs-TCP verdict does not depend on the arrival model.
#include <iostream>

#include "bench_common.hpp"

using namespace hwatch;

namespace {

api::LeafSpineScenarioConfig point_config(
    bool hwatch_on, bool closed_loop,
    sim::TimePs admit_interval = sim::milliseconds(1)) {
  api::LeafSpineScenarioConfig cfg;
  cfg.racks = 4;
  cfg.hosts_per_rack = 21;
  cfg.link_rate = sim::DataRate::gbps(1);
  cfg.base_rtt = sim::microseconds(200);
  cfg.fabric_aqm.buffer_packets = 170;
  cfg.fabric_aqm.mark_threshold_packets = 34;
  cfg.fabric_aqm.byte_mode = true;
  cfg.fabric_aqm.mtu_bytes = 1500;
  cfg.edge_aqm = cfg.fabric_aqm;
  cfg.edge_aqm.kind = api::AqmKind::kDropTail;

  tcp::TcpConfig guest = bench::paper_tcp(tcp::EcnMode::kNone);
  guest.mss = net::kDefaultMss;

  cfg.bulk_flows = 42;
  cfg.bulk_template = {tcp::Transport::kNewReno, guest, 0, "iperf"};
  cfg.web_servers_per_rack = 7;
  cfg.web_clients = 6;
  cfg.web_transport = tcp::Transport::kNewReno;
  cfg.web_tcp = guest;

  if (closed_loop) {
    cfg.web_pattern = api::LeafSpineScenarioConfig::WebPattern::kClosedLoop;
    cfg.closed_loop.slots_per_pair = 10;
    cfg.closed_loop.requests_per_slot = 5;  // 1260 slots x 5 = 6300 flows
    cfg.closed_loop.object_bytes = 11'500;
    cfg.closed_loop.start = sim::milliseconds(300);
    cfg.closed_loop.start_spread = sim::milliseconds(100);
  } else {
    cfg.web.waves = 5;
    cfg.web.first_wave = sim::milliseconds(300);
    cfg.web.wave_interval = sim::milliseconds(400);
    cfg.web.connections_per_pair = 10;
    cfg.web.object_bytes = 11'500;
    cfg.web.wave_spread = sim::milliseconds(100);
  }

  if (hwatch_on) {
    cfg.fabric_aqm.kind = api::AqmKind::kRed;
    cfg.hwatch_enabled = true;
    cfg.hwatch = bench::paper_hwatch(cfg.base_rtt);
    cfg.hwatch.mss = net::kDefaultMss;
    cfg.hwatch.min_window_bytes = net::kDefaultMss;
    cfg.hwatch.pace_synacks = true;
    cfg.hwatch.synack_batch_size = 1;
    cfg.hwatch.synack_batch_interval = admit_interval;
  }
  cfg.duration = sim::seconds(2.5);
  cfg.sample_interval = sim::milliseconds(5);
  cfg.seed = 11;
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Ablation A4",
                      "open-loop waves vs closed-loop requests on the "
                      "testbed scenario");

  std::vector<bench::LeafSpinePoint> points;
  for (int closed = 0; closed <= 1; ++closed) {
    for (int hw = 0; hw <= 1; ++hw) {
      points.push_back({std::string(closed ? "closed-loop" : "open-loop") +
                            (hw ? "/TCP-HWatch" : "/TCP"),
                        point_config(hw != 0, closed != 0)});
    }
  }
  // The admission-rate knob under closed loop: 1 ms/admission protects
  // the tail, 0.5 ms/admission optimizes the mean at some tail cost.
  points.push_back(
      {"closed-loop/TCP-HWatch (0.5ms admit)",
       point_config(true, /*closed_loop=*/true, sim::microseconds(500))});
  std::vector<bench::Curve> curves = bench::run_sweep("abl_workload_pattern", std::move(points));

  stats::Table t({"pattern", "scheme", "flows done", "FCT mean(ms)",
                  "FCT p99(ms)", "drops", "timeouts"});
  double mean[2][2] = {};
  for (int closed = 0; closed <= 1; ++closed) {
    for (int hw = 0; hw <= 1; ++hw) {
      const api::ScenarioResults& res =
          curves[static_cast<std::size_t>(closed * 2 + hw)].results;
      const auto fct = res.short_fct_cdf_ms().summarize();
      mean[closed][hw] = fct.mean;
      t.add_row({closed ? "closed-loop" : "open-loop",
                 hw ? "TCP-HWatch" : "TCP", std::to_string(fct.count),
                 stats::Table::num(fct.mean, 3),
                 stats::Table::num(fct.p99, 3),
                 std::to_string(res.fabric_drops),
                 std::to_string(res.timeouts)});
    }
  }
  {
    const api::ScenarioResults& fast = curves.back().results;
    const auto fct = fast.short_fct_cdf_ms().summarize();
    t.add_row({"closed-loop", "TCP-HWatch (0.5ms admit)",
               std::to_string(fct.count), stats::Table::num(fct.mean, 3),
               stats::Table::num(fct.p99, 3),
               std::to_string(fast.fabric_drops),
               std::to_string(fast.timeouts)});
    mean[1][1] = std::min(mean[1][1], fct.mean);
  }
  t.print(std::cout);
  std::cout << "\nHWatch mean-FCT improvement: open-loop "
            << stats::Table::num(mean[0][0] / mean[0][1], 2)
            << "x, closed-loop (best admission setting) "
            << stats::Table::num(mean[1][0] / mean[1][1], 2) << "x\n"
            << "Under closed loop the admission interval trades mean "
               "against tail:\n1 ms/admission keeps p99 ~3x better than "
               "TCP at mean parity;\n0.5 ms/admission beats TCP's mean "
               "~1.6x at some tail cost.\n";
  return 0;
}
