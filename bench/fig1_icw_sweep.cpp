// Figure 1 — DCTCP vs the initial congestion window.
//
// The paper's motivating experiment: a DCTCP dumbbell (10 Gb/s, 100 us
// RTT, 250-packet buffer) carrying long-lived background flows plus
// epochs of short incast flows, swept over the initial sending window
// ICWND in {1, 5, 10, 15, 20}.  Panels: (a) short-flow FCT CDF,
// (b) drop CDF, (c) long-flow goodput CDF, (d) queue over time.
//
// Expected shape (paper): FCT jumps by ~2 orders of magnitude between
// ICWND 1-5 and ICWND >= 10; drops appear at the incast epochs; goodput
// barely changes; queue spikes at epochs.
#include <iostream>

#include "bench_common.hpp"

using namespace hwatch;

int main() {
  bench::print_header("Figure 1",
                      "DCTCP performance vs initial congestion window");

  // Build every sweep point up front and fan them out across the
  // SweepRunner pool; per-point results are identical to a serial run.
  std::vector<bench::DumbbellPoint> points;
  std::vector<std::uint32_t> icws = {1u, 5u, 10u, 15u, 20u};
  for (std::uint32_t icw : icws) {
    api::DumbbellScenarioConfig cfg = bench::paper_dumbbell_base();
    cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
    cfg.edge_aqm.kind = api::AqmKind::kDctcpStep;
    // DCTCP's own recommended marking point (~25% of the buffer).
    cfg.core_aqm.mark_threshold_packets = 62;
    cfg.edge_aqm.mark_threshold_packets = 62;

    tcp::TcpConfig t = bench::paper_tcp(tcp::EcnMode::kDctcp);
    t.initial_cwnd_segments = icw;

    workload::SenderGroup longs{tcp::Transport::kDctcp, t, 25, "dctcp"};
    workload::SenderGroup shorts = longs;
    cfg.long_groups = {longs};
    cfg.short_groups = {shorts};
    points.push_back({"ICWND=" + std::to_string(icw), cfg});
  }

  std::vector<bench::Curve> curves = bench::run_sweep("fig1", std::move(points));

  stats::Table drop_table(
      {"ICWND", "drops", "marks", "timeouts", "retx", "queue max(pkts)"});
  for (std::size_t i = 0; i < curves.size(); ++i) {
    const api::ScenarioResults& res = curves[i].results;
    drop_table.add_row(
        {std::to_string(icws[i]), std::to_string(res.fabric_drops),
         std::to_string(res.bottleneck_queue.ecn_marked),
         std::to_string(res.timeouts), std::to_string(res.retransmits),
         std::to_string(res.bottleneck_queue.max_len_pkts)});
  }

  bench::print_fct_panel(curves);
  std::cout << "\nPacket drops and recovery (panel b)\n";
  drop_table.print(std::cout);
  std::cout << "\n";
  bench::print_goodput_panel(curves);
  std::cout << "\n";
  bench::print_timeseries_panel(curves);
  bench::print_summary(curves);
  bench::write_csvs("fig1", curves);
  return 0;
}
