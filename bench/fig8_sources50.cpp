// Figure 8 — 50 sources (25 long-lived + 25 short-lived) on the 10 Gb/s
// dumbbell: TCP-DropTail vs TCP-RED vs TCP-HWATCH vs DCTCP.
//
// Expected shape (paper): HWatch's short-flow FCT beats DCTCP ~3x,
// TCP-RED ~5x and DropTail ~10x on average; long-flow goodput matches
// DCTCP; the queue stays near the marking threshold; the bottleneck
// remains fully utilized.
#include "fig89_common.hpp"

int main() {
  hwatch::bench::run_figure("fig8", 50);
  return 0;
}
