// Ablation A3 — the Next-Fit batching rule.
//
// The theory chapter derives three schedules for a window decision:
//   single-shot  — grant X_UM + X_M at once (no batching; what a naive
//                  rwnd clamp would do),
//   coalesced    — Corollary IV.2.2: X_UM + X_M/2 now, X_M/2 after T
//                  (HWatch's default),
//   three-batch  — Theorem IV.2 verbatim: X_UM now, X_M/2 at T, 2T.
// Plus the connection-setup caution divisor (1 = trust clean probes,
// 2 = hold half of every setup grant back for one drain time).
// This bench shows both choices on the Figure 8 scenario.
#include <iostream>

#include "fig89_common.hpp"

using namespace hwatch;

namespace {

api::DumbbellScenarioConfig mode_config(core::BatchMode mode,
                                        std::uint32_t caution_divisor) {
  api::DumbbellScenarioConfig cfg = bench::paper_dumbbell_base();
  cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
  cfg.edge_aqm = cfg.core_aqm;
  tcp::TcpConfig t = bench::paper_tcp(tcp::EcnMode::kNone);
  cfg.long_groups = {{tcp::Transport::kNewReno, t, 25, "tcp"}};
  cfg.short_groups = {{tcp::Transport::kNewReno, t, 25, "tcp"}};
  cfg.hwatch_enabled = true;
  cfg.hwatch = bench::paper_hwatch(cfg.base_rtt);
  cfg.hwatch.policy.mode = mode;
  cfg.hwatch.setup_caution_divisor = caution_divisor;
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Ablation A3",
                      "batching rule x setup caution on the fig8 scenario");

  struct Point {
    core::BatchMode mode;
    std::uint32_t div;
  };
  std::vector<Point> grid;
  std::vector<bench::DumbbellPoint> points;
  for (auto mode : {core::BatchMode::kSingleShot, core::BatchMode::kCoalesced,
                    core::BatchMode::kThreeBatch}) {
    for (std::uint32_t div : {1u, 2u}) {
      grid.push_back({mode, div});
      points.push_back({std::string(core::to_string(mode)) +
                            (div == 1 ? "_trusting" : ""),
                        mode_config(mode, div)});
    }
  }
  std::vector<bench::Curve> all = bench::run_sweep("abl_batching", std::move(points));

  stats::Table t({"batch mode", "setup caution", "FCT mean(ms)",
                  "FCT p99(ms)", "unfinished", "drops", "timeouts",
                  "goodput(Gb/s)"});
  std::vector<bench::Curve> curves;
  for (std::size_t i = 0; i < all.size(); ++i) {
    api::ScenarioResults& res = all[i].results;
    const auto fct = res.short_fct_cdf_ms().summarize();
    const auto gp = res.long_goodput_cdf_gbps().summarize();
    t.add_row({core::to_string(grid[i].mode),
               grid[i].div == 1 ? "off" : "1/2",
               stats::Table::num(fct.mean, 3),
               stats::Table::num(fct.p99, 3),
               std::to_string(res.incomplete_short_flows()),
               std::to_string(res.fabric_drops),
               std::to_string(res.timeouts),
               stats::Table::num(gp.mean, 3)});
    if (grid[i].div == 2) {
      curves.push_back({std::string(core::to_string(grid[i].mode)),
                        std::move(res)});
    }
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::print_fct_panel(curves);
  bench::write_csvs("abl_batching", curves);
  return 0;
}
