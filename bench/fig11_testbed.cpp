// Figure 11 — the testbed experiment, reproduced on the simulated
// leaf-spine fabric (4 racks x 21 servers, 1 Gb/s links, ~200 us RTT).
//
// Workload (Section VI): 42 long-lived iperf-like flows from the three
// sending racks towards the receiving rack, plus waves of web requests —
// 7 servers/rack x 3 racks x 6 clients x 10 parallel connections = 1260
// flows per wave, 11.5 KB each, repeated 5 times.  Baseline "TCP" runs
// plain (non-ECN) NewReno over drop-tail switches; "TCP-HWatch" runs the
// same guests with the hypervisor module and WRED/ECN marking enabled in
// the fabric (the deployment step HWatch prescribes).  Durations are
// compressed vs the 30 s testbed run (waves every 400 ms) so the bench
// finishes quickly; EXPERIMENTS.md records the scaling.
//
// Expected shape (paper): up to ~100% (2x) shorter average response
// times for the web flows, with long-flow goodput essentially unharmed.
#include <iostream>

#include "bench_common.hpp"

using namespace hwatch;

namespace {

api::ScenarioResults run_testbed(bool hwatch_on) {
  api::LeafSpineScenarioConfig cfg;
  cfg.racks = 4;
  cfg.hosts_per_rack = 21;
  cfg.link_rate = sim::DataRate::gbps(1);
  cfg.base_rtt = sim::microseconds(200);

  // Shallow-buffered 1 GbE fabric (the NetFPGA reference switch holds
  // ~256 KB per port); byte-based buffers of 170 full Ethernet frames.
  cfg.fabric_aqm.buffer_packets = 170;
  cfg.fabric_aqm.mark_threshold_packets = 34;  // 20%, as in Section V
  cfg.fabric_aqm.byte_mode = true;
  cfg.fabric_aqm.mtu_bytes = 1500;
  cfg.edge_aqm = cfg.fabric_aqm;
  cfg.edge_aqm.kind = api::AqmKind::kDropTail;

  // Guests: plain TCP with real 1500-byte Ethernet frames, not
  // ECN-capable, stock Linux 200 ms minRTO — exactly what unmodified
  // tenant VMs run (requirement R3 forbids touching them).
  tcp::TcpConfig guest = bench::paper_tcp(tcp::EcnMode::kNone);
  guest.mss = net::kDefaultMss;

  cfg.bulk_flows = 42;
  cfg.bulk_template = {tcp::Transport::kNewReno, guest, 0, "iperf"};

  cfg.web_servers_per_rack = 7;
  cfg.web_clients = 6;
  cfg.web.waves = 5;
  cfg.web.first_wave = sim::milliseconds(300);
  cfg.web.wave_interval = sim::milliseconds(400);
  cfg.web.connections_per_pair = 10;
  cfg.web.object_bytes = 11'500;
  // The testbed's request generators are closed-loop (each connection
  // fetches pages back to back), which spreads a wave's requests over a
  // large fraction of the epoch; 100 ms of spread approximates that
  // arrival process while keeping strong incast bursts per client.
  cfg.web.wave_spread = sim::milliseconds(100);
  cfg.web_transport = tcp::Transport::kNewReno;
  cfg.web_tcp = guest;

  if (hwatch_on) {
    // Deploying HWatch also enables WRED/ECN marking in the fabric
    // (Section IV-E); guests stay untouched — the shim stamps ECT
    // transparently.
    cfg.fabric_aqm.kind = api::AqmKind::kRed;
    cfg.hwatch_enabled = true;
    cfg.hwatch = bench::paper_hwatch(cfg.base_rtt);
    cfg.hwatch.mss = net::kDefaultMss;  // real 1500-byte frames here
    cfg.hwatch.min_window_bytes = net::kDefaultMss;
    // Admission pacing for the 1260-flow request waves: each client
    // hypervisor admits ~1000 connections/s, sized so the six clients'
    // 11.5 KB responses consume ~550 Mb/s of the 1 Gb/s downlink and
    // leave the rest to the bulk flows (the HWatch module's internal
    // timers run at the paper's 4 ms default granularity and finer).
    cfg.hwatch.pace_synacks = true;
    cfg.hwatch.synack_batch_size = 1;
    cfg.hwatch.synack_batch_interval = sim::milliseconds(1);
  }

  cfg.duration = sim::seconds(2.5);
  cfg.sample_interval = sim::milliseconds(5);
  cfg.seed = 11;
  return api::run_leaf_spine(cfg);
}

}  // namespace

int main() {
  bench::print_header("Figure 11",
                      "testbed (leaf-spine, 84 servers): TCP vs TCP-HWatch");

  std::vector<bench::Curve> curves;
  curves.push_back({"TCP", run_testbed(false)});
  curves.push_back({"TCP-HWatch", run_testbed(true)});
  const auto& hw = curves[1].results;
  std::cout << "  [TCP-HWatch] probes=" << hw.shim.probes_injected
            << " synack-rewrites=" << hw.shim.synacks_rewritten
            << " ack-rewrites=" << hw.shim.acks_rewritten
            << " flows=" << hw.shim.flows_tracked << "\n\n";

  // Panel (a): per-epoch average response time CDF of the web flows.
  bench::print_fct_panel(curves, /*per_epoch_mean=*/true);
  std::cout << "\n";
  bench::print_fct_panel(curves);
  std::cout << "\n";
  // Panel (b): long ("elephant") flow goodput, in Mb/s in the paper.
  std::cout << "Long-lived (iperf) goodput per flow [Mb/s]\n";
  stats::Table gp({"scheme", "mean", "p50", "min", "max"});
  for (const auto& c : curves) {
    stats::Cdf mbps;
    for (const auto& r : c.results.long_flows()) {
      mbps.add(r.goodput_bps / 1e6);
    }
    const auto s = mbps.summarize();
    gp.add_row({c.name, stats::Table::num(s.mean, 1),
                stats::Table::num(s.p50, 1), stats::Table::num(s.min, 1),
                stats::Table::num(s.max, 1)});
  }
  gp.print(std::cout);
  std::cout << "\n";
  bench::print_timeseries_panel(curves);
  bench::print_summary(curves);
  bench::print_improvements(curves, "TCP-HWatch");
  bench::write_csvs("fig11", curves);
  return 0;
}
