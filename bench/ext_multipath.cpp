// Extension E1 — MPTCP on a fat-tree (the paper's Section IV-F future
// work, executed).
//
// A k=4 fat-tree gives four equal-cost core paths between pods.  Eight
// senders in pod 0 each transfer 2 MB to one receiver in pod 3 while a
// pod-local bulk flow loads the receiver's edge link.  We compare
// single-path TCP against MPTCP with 2 and 4 subflows, each with and
// without HWatch — the claim under test is that HWatch needs no
// MPTCP-specific logic because every subflow handshake passes the shim
// independently.
#include <iostream>

#include "bench_common.hpp"
#include "tcp/multipath.hpp"
#include "topo/fat_tree.hpp"

using namespace hwatch;

namespace {

struct RunResult {
  double fct_mean_ms = 0;
  double fct_max_ms = 0;
  std::uint64_t drops = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t probes = 0;
};

RunResult run(std::uint32_t subflows, bool hwatch_on) {
  sim::SimContext ctx(17);
  sim::Scheduler& sched = ctx.scheduler();
  net::Network network(ctx);
  topo::FatTreeConfig ft;
  ft.k = 4;
  ft.link_rate = sim::DataRate::gbps(10);
  ft.base_rtt = sim::microseconds(100);
  ft.qdisc = [] {
    return std::make_unique<net::DctcpThresholdQueue>(
        net::QueueLimits::in_bytes(250 * 1500), 50 * 1500);
  };
  topo::FatTree tree = topo::build_fat_tree(network, ft);

  sim::Rng& rng = ctx.rng();
  std::vector<std::unique_ptr<core::HypervisorShim>> shims;
  if (hwatch_on) {
    core::HWatchConfig hw;
    hw.probe_span = sim::microseconds(50);
    hw.policy.batch_interval = sim::microseconds(50);
    for (net::Host* host : network.hosts()) {
      shims.push_back(core::install_hwatch(network, *host, hw, rng.fork()));
    }
  }

  tcp::TcpConfig t;
  t.ecn = tcp::EcnMode::kNone;
  t.min_rto = sim::milliseconds(200);
  t.initial_rto = sim::milliseconds(200);

  net::Host* receiver = tree.hosts.back();
  // Edge-local bulk flow keeps the receiver's access link warm.
  tcp::TcpConnection bulk(network, *tree.hosts[tree.hosts.size() - 2],
                          *receiver, 900, 70, tcp::Transport::kNewReno, t);
  bulk.start(tcp::TcpSender::kUnlimited);

  tcp::MultipathConfig mp;
  mp.subflows = subflows;
  mp.tcp = t;
  std::vector<std::unique_ptr<tcp::MultipathConnection>> conns;
  for (std::uint32_t i = 0; i < 8; ++i) {
    conns.push_back(std::make_unique<tcp::MultipathConnection>(
        network, *tree.hosts[i % tree.hosts_per_pod()], *receiver,
        static_cast<std::uint16_t>(1000 + 16 * i),
        static_cast<std::uint16_t>(5000 + 16 * i), mp));
  }
  sched.schedule_at(sim::milliseconds(5), [&conns] {
    for (auto& c : conns) c->start(2'000'000);
  });
  sched.run_until(sim::seconds(3.0));

  RunResult r;
  int done = 0;
  for (auto& c : conns) {
    if (!c->complete()) continue;
    ++done;
    r.fct_mean_ms += sim::to_millis(c->fct());
    r.fct_max_ms = std::max(r.fct_max_ms, sim::to_millis(c->fct()));
    r.timeouts += c->total_timeouts();
  }
  if (done > 0) r.fct_mean_ms /= done;
  r.drops = network.total_queue_drops();
  for (const auto& s : shims) r.probes += s->stats().probes_injected;
  return r;
}

}  // namespace

int main() {
  bench::print_header("Extension E1",
                      "MPTCP subflows on a k=4 fat-tree, with/without "
                      "HWatch");

  stats::Table t({"subflows", "hwatch", "FCT mean(ms)", "FCT max(ms)",
                  "drops", "timeouts", "probes"});
  for (std::uint32_t subflows : {1u, 2u, 4u}) {
    for (bool hwatch_on : {false, true}) {
      const RunResult r = run(subflows, hwatch_on);
      t.add_row({std::to_string(subflows), hwatch_on ? "on" : "off",
                 stats::Table::num(r.fct_mean_ms, 3),
                 stats::Table::num(r.fct_max_ms, 3),
                 std::to_string(r.drops), std::to_string(r.timeouts),
                 std::to_string(r.probes)});
    }
  }
  t.print(std::cout);
  std::cout << "\nEach subflow is probed and window-managed by the shim "
               "independently;\nprobes scale linearly with subflow count "
               "and no MPTCP-specific shim code exists.\n";
  return 0;
}
