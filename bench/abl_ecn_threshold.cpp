// Ablation A2 — ECN marking threshold K.
//
// The paper sets K to 20% of the buffer (Section V) citing the DCTCP
// guidance; this bench sweeps K from 5% to 60% of the 250-frame buffer
// on the Figure 8 scenario for both DCTCP and TCP-HWATCH.  Small K
// throttles early (low queueing delay, risk of under-utilization);
// large K leaves less headroom to absorb incast bursts.
#include <iostream>

#include "fig89_common.hpp"

using namespace hwatch;

namespace {

api::DumbbellScenarioConfig k_config(bool hwatch_on, std::uint64_t k_frames) {
  api::DumbbellScenarioConfig cfg = bench::paper_dumbbell_base();
  cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
  cfg.core_aqm.mark_threshold_packets = k_frames;
  cfg.edge_aqm = cfg.core_aqm;
  if (hwatch_on) {
    tcp::TcpConfig t = bench::paper_tcp(tcp::EcnMode::kNone);
    cfg.long_groups = {{tcp::Transport::kNewReno, t, 25, "tcp"}};
    cfg.short_groups = {{tcp::Transport::kNewReno, t, 25, "tcp"}};
    cfg.hwatch_enabled = true;
    cfg.hwatch = bench::paper_hwatch(cfg.base_rtt);
  } else {
    tcp::TcpConfig t = bench::paper_tcp(tcp::EcnMode::kDctcp);
    cfg.long_groups = {{tcp::Transport::kDctcp, t, 25, "dctcp"}};
    cfg.short_groups = {{tcp::Transport::kDctcp, t, 25, "dctcp"}};
  }
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Ablation A2",
                      "marking threshold K sweep (fraction of 250-frame "
                      "buffer), DCTCP vs TCP-HWATCH");

  struct Point {
    std::uint64_t k;
    bool hwatch_on;
  };
  std::vector<Point> grid;
  std::vector<bench::DumbbellPoint> points;
  for (std::uint64_t k : {12ull, 25ull, 50ull, 75ull, 100ull, 150ull}) {
    for (bool hwatch_on : {false, true}) {
      grid.push_back({k, hwatch_on});
      points.push_back({std::string(hwatch_on ? "TCP-HWATCH" : "DCTCP") +
                            "@K=" + std::to_string(k),
                        k_config(hwatch_on, k)});
    }
  }
  std::vector<bench::Curve> all = bench::run_sweep("abl_ecn_threshold", std::move(points));

  stats::Table t({"K(frames)", "K(%)", "scheme", "FCT mean(ms)",
                  "FCT p99(ms)", "drops", "timeouts", "goodput(Gb/s)",
                  "mean queue(pkts)"});
  std::vector<bench::Curve> curves;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const std::uint64_t k = grid[i].k;
    const bool hwatch_on = grid[i].hwatch_on;
    api::ScenarioResults& res = all[i].results;
    double qmean = 0;
    for (const auto& p : res.queue_packets) qmean += p.value;
    if (!res.queue_packets.empty()) {
      qmean /= static_cast<double>(res.queue_packets.size());
    }
    const auto fct = res.short_fct_cdf_ms().summarize();
    const auto gp = res.long_goodput_cdf_gbps().summarize();
    const std::string scheme = hwatch_on ? "TCP-HWATCH" : "DCTCP";
    t.add_row({std::to_string(k),
               stats::Table::num(100.0 * static_cast<double>(k) / 250, 0),
               scheme, stats::Table::num(fct.mean, 3),
               stats::Table::num(fct.p99, 3),
               std::to_string(res.fabric_drops),
               std::to_string(res.timeouts),
               stats::Table::num(gp.mean, 3),
               stats::Table::num(qmean, 1)});
    if (k == 50) {
      curves.push_back({scheme + "@K=50", std::move(res)});
    }
  }
  t.print(std::cout);
  bench::write_csvs("abl_ecn_threshold", curves);
  return 0;
}
