// Figure 9 — the Figure 8 comparison scaled to 100 sources (50 long +
// 50 short), the paper's scalability check.
//
// Expected shape (paper): HWatch keeps every short-flow FCT below tens
// of milliseconds while the baselines degrade further than at 50
// sources; goodput/queue/utilization panels match Figure 8's findings.
#include "fig89_common.hpp"

int main() {
  hwatch::bench::run_figure("fig9", 100);
  return 0;
}
