// Extension E2 — does SACK fix the incast problem instead?
//
// A natural objection to HWatch: selective acknowledgements (standard in
// every modern stack) already repair multi-segment losses in one RTT, so
// maybe the guests just need SACK.  This bench runs the fig8 scenario
// with SACK-enabled tenants (plus RFC 3042 limited transmit, the other
// stock mitigation) and compares against stock NewReno and HWatch.
//
// Expected: SACK repairs mid-window holes but cannot manufacture
// dupacks for tail losses (the paper's Observation 1) nor prevent the
// overflow itself, so short-flow RTOs persist; HWatch removes the
// losses at the source.
#include <iostream>

#include "fig89_common.hpp"

using namespace hwatch;

namespace {

api::ScenarioResults run_variant(bool sack, bool limited_transmit) {
  api::DumbbellScenarioConfig cfg = bench::paper_dumbbell_base();
  cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
  cfg.edge_aqm = cfg.core_aqm;
  tcp::TcpConfig t = bench::paper_tcp(tcp::EcnMode::kNone);
  t.sack = sack;
  t.limited_transmit = limited_transmit;
  cfg.long_groups = {{tcp::Transport::kNewReno, t, 25, "tcp"}};
  cfg.short_groups = {{tcp::Transport::kNewReno, t, 25, "tcp"}};
  return api::run_dumbbell(cfg);
}

}  // namespace

int main() {
  bench::print_header("Extension E2",
                      "guest-side mitigations (SACK, limited transmit) "
                      "vs HWatch on the fig8 incast");

  stats::Table t({"variant", "FCT mean(ms)", "FCT p99(ms)", "unfinished",
                  "drops", "timeouts", "goodput(Gb/s)"});
  auto add = [&t](const std::string& name,
                  const api::ScenarioResults& res) {
    const auto fct = res.short_fct_cdf_ms().summarize();
    t.add_row({name, stats::Table::num(fct.mean, 3),
               stats::Table::num(fct.p99, 3),
               std::to_string(res.incomplete_short_flows()),
               std::to_string(res.fabric_drops),
               std::to_string(res.timeouts),
               stats::Table::num(
                   res.long_goodput_cdf_gbps().summarize().mean, 3)});
  };
  add("stock NewReno", run_variant(false, false));
  add("+ SACK", run_variant(true, false));
  add("+ limited transmit", run_variant(false, true));
  add("+ SACK + LT", run_variant(true, true));
  add("HWatch (stock guests)",
      bench::run_scheme(bench::Scheme::kTcpHWatch, 50));
  t.print(std::cout);
  std::cout << "\nGuest-side recovery tricks shorten some recoveries but "
               "keep the drops and\nthe tail-loss RTOs; HWatch prevents "
               "the overflow itself — and needs no\nguest changes.\n";
  return 0;
}
