// Ablation A1 — probe-train length.
//
// The paper fixes the probe count at 10 ("chosen so that the overhead
// level can be tolerated") without showing the sensitivity.  This bench
// sweeps it on the Figure 8 scenario: 0 disables connection-setup
// probing entirely (steady-state watching still runs), larger trains
// sample the path more accurately but add probe bytes and handshake
// delay.
#include <iostream>

#include "fig89_common.hpp"

using namespace hwatch;

int main() {
  bench::print_header("Ablation A1",
                      "HWatch probe-train length on the fig8 scenario");

  const std::vector<std::uint32_t> probe_counts = {0u, 2u, 5u, 10u, 20u};
  std::vector<bench::DumbbellPoint> points;
  for (std::uint32_t probes : probe_counts) {
    api::DumbbellScenarioConfig cfg = bench::paper_dumbbell_base();
    cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
    cfg.edge_aqm = cfg.core_aqm;
    tcp::TcpConfig t_cfg = bench::paper_tcp(tcp::EcnMode::kNone);
    cfg.long_groups = {{tcp::Transport::kNewReno, t_cfg, 25, "tcp"}};
    cfg.short_groups = {{tcp::Transport::kNewReno, t_cfg, 25, "tcp"}};
    cfg.hwatch_enabled = true;
    cfg.hwatch = bench::paper_hwatch(cfg.base_rtt);
    cfg.hwatch.probe_count = probes;
    points.push_back({"probes=" + std::to_string(probes), cfg});
  }
  std::vector<bench::Curve> curves = bench::run_sweep("abl_probe_count", std::move(points));

  stats::Table t({"probes", "FCT mean(ms)", "FCT p99(ms)", "unfinished",
                  "drops", "timeouts", "goodput(Gb/s)", "probe bytes",
                  "handshake delay"});
  for (std::size_t i = 0; i < curves.size(); ++i) {
    const std::uint32_t probes = probe_counts[i];
    const api::ScenarioResults& res = curves[i].results;
    const auto fct = res.short_fct_cdf_ms().summarize();
    const auto gp = res.long_goodput_cdf_gbps().summarize();
    t.add_row({std::to_string(probes), stats::Table::num(fct.mean, 3),
               stats::Table::num(fct.p99, 3),
               std::to_string(res.incomplete_short_flows()),
               std::to_string(res.fabric_drops),
               std::to_string(res.timeouts), stats::Table::num(gp.mean, 3),
               std::to_string(res.shim.probe_bytes_injected),
               probes == 0 ? "none" : "<= probe span"});
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::print_fct_panel(curves);
  bench::write_csvs("abl_probe_count", curves);
  return 0;
}
