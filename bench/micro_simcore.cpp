// Microbenchmarks of the simulator substrate (google-benchmark): event
// scheduling throughput, queue-discipline decision cost, checksum
// stamping/adjustment, and whole-scenario event rate.  These bound how
// large a datacenter the simulator can sweep per CPU-second.
#include <benchmark/benchmark.h>

#include <optional>

#include "api/scenario.hpp"
#include "api/sweep.hpp"
#include "net/checksum.hpp"
#include "net/queue.hpp"
#include "sim/context.hpp"
#include "sim/incident_hooks.hpp"
#include "sim/scheduler.hpp"
#include "sim/self_profiler.hpp"
#include "sim/shard_group.hpp"
#include "sim/shard_telemetry.hpp"
#include "sim/trace_span.hpp"
#include "stats/incident.hpp"
#include "tcp/connection.hpp"
#include "topo/dumbbell.hpp"

using namespace hwatch;

namespace {

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    sim::Scheduler sched;
    std::uint64_t x = 123;
    std::int64_t sum = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      x = x * 6364136223846793005ull + 1;
      sched.schedule_at(static_cast<sim::TimePs>(x % 1'000'000),
                        [&sum] { ++sum; });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1'000)->Arg(100'000);

void BM_SchedulerCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(sched.schedule_at(i + 1, [] {}));
    }
    for (auto id : ids) sched.cancel(id);
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerCancel);

/// Timer-wheel style churn: a rolling window of pending timers where
/// most are cancelled (rescheduled) before firing — the retransmission
/// and delayed-ack pattern that dominates TCP-heavy scenarios.  Stresses
/// slot recycling and stale-entry compaction rather than pure heap push.
void BM_SchedulerScheduleCancelChurn(benchmark::State& state) {
  constexpr int kWindow = 256;
  for (auto _ : state) {
    sim::Scheduler sched;
    sim::EventId window[kWindow] = {};
    std::uint64_t x = 99;
    for (int i = 0; i < 100'000; ++i) {
      x = x * 6364136223846793005ull + 1;
      const int slot = i % kWindow;
      if (window[slot].valid()) sched.cancel(window[slot]);
      window[slot] =
          sched.schedule_at(sched.now() + 1 + (x % 10'000), [] {});
      // Occasionally let time advance so due events actually fire.
      if (slot == 0) sched.run_until(sched.now() + 500);
    }
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_SchedulerScheduleCancelChurn);

/// Many independent SimContexts driven in sequence — the per-point cost
/// the SweepRunner pays; also proves context construction is cheap and
/// contexts don't interfere.
void BM_MultiContextSweep(benchmark::State& state) {
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (std::uint64_t p = 0; p < 8; ++p) {
      sim::SimContext ctx(api::derive_point_seed(42, p));
      std::uint64_t fired = 0;
      for (int i = 0; i < 1'000; ++i) {
        ctx.scheduler().schedule_at(
            static_cast<sim::TimePs>(ctx.rng().uniform_int(0, 999'999)),
            [&fired] { ++fired; });
      }
      ctx.scheduler().run();
      total += fired + ctx.next_packet_uid();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 8 * 1'000);
}
BENCHMARK(BM_MultiContextSweep);

/// Steady-state link-hop cost, end to end: two hosts bounce a packet
/// over a duplex link, so every item is the full hop pipeline (agent
/// send -> qdisc enqueue/dequeue -> tx-complete event -> propagation
/// event -> delivery -> agent handler).  This is the path the
/// allocation-regression test pins at zero heap allocations; the rate
/// here is the ceiling on per-hop throughput.
void BM_LinkHopPingPong(benchmark::State& state) {
  sim::SimContext ctx(1);
  net::Network net(ctx);
  net::Host& a = net.add_host("a");
  net::Host& b = net.add_host("b");
  net.connect(a, b, sim::DataRate::gbps(10), sim::microseconds(2),
              net::make_droptail_factory(64));
  std::uint64_t hops = 0;
  auto bounce = [&net, &hops](net::Host& self, net::Packet&& p) {
    ++hops;
    std::swap(p.ip.src, p.ip.dst);
    std::swap(p.tcp.src_port, p.tcp.dst_port);
    p.uid = net.next_packet_uid();
    self.send(std::move(p));
  };
  a.bind(1, [&a, &bounce](net::Packet&& p) { bounce(a, std::move(p)); });
  b.bind(2, [&b, &bounce](net::Packet&& p) { bounce(b, std::move(p)); });
  net::Packet seed;
  seed.uid = net.next_packet_uid();
  seed.ip.src = a.id();
  seed.ip.dst = b.id();
  seed.tcp.src_port = 1;
  seed.tcp.dst_port = 2;
  seed.payload_bytes = 1442;
  a.send(std::move(seed));
  sim::Scheduler& sched = ctx.scheduler();
  sched.run_until(sched.now() + sim::milliseconds(1));  // warm-up
  const std::uint64_t hops_at_start = hops;
  for (auto _ : state) {
    sched.run_until(sched.now() + sim::milliseconds(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(hops - hops_at_start));
}
BENCHMARK(BM_LinkHopPingPong);

net::Packet bench_packet() {
  net::Packet p;
  p.ip.src = 1;
  p.ip.dst = 2;
  p.ip.ecn = net::Ecn::kEct0;
  p.tcp.src_port = 1000;
  p.tcp.dst_port = 80;
  p.payload_bytes = 1442;
  return p;
}

template <typename MakeQueue>
void queue_churn(benchmark::State& state, MakeQueue make) {
  auto q = make();
  sim::TimePs now = 0;
  for (auto _ : state) {
    now += 1000;
    q->enqueue(bench_packet(), now);
    benchmark::DoNotOptimize(q->dequeue(now));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_DropTailChurn(benchmark::State& state) {
  queue_churn(state,
              [] { return std::make_unique<net::DropTailQueue>(250); });
}
BENCHMARK(BM_DropTailChurn);

void BM_DctcpStepChurn(benchmark::State& state) {
  queue_churn(state, [] {
    return std::make_unique<net::DctcpThresholdQueue>(250, 50);
  });
}
BENCHMARK(BM_DctcpStepChurn);

void BM_RedChurn(benchmark::State& state) {
  queue_churn(state, [] {
    net::RedConfig cfg;
    cfg.min_th_pkts = 50;
    cfg.max_th_pkts = 150;
    return std::make_unique<net::RedQueue>(250, cfg);
  });
}
BENCHMARK(BM_RedChurn);

void BM_ChecksumStamp(benchmark::State& state) {
  net::Packet p = bench_packet();
  for (auto _ : state) {
    net::stamp_checksum(p);
    benchmark::DoNotOptimize(p.tcp.checksum);
    ++p.tcp.seq;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChecksumStamp);

void BM_ChecksumIncrementalAdjust(benchmark::State& state) {
  net::Packet p = bench_packet();
  net::stamp_checksum(p);
  std::uint16_t w = 100;
  for (auto _ : state) {
    const std::uint16_t next = static_cast<std::uint16_t>(w + 7);
    p.tcp.checksum = net::checksum_adjust(p.tcp.checksum, w, next);
    w = next;
    benchmark::DoNotOptimize(p.tcp.checksum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChecksumIncrementalAdjust);

/// Whole-stack event rate: a small dumbbell scenario; reports simulated
/// events per wall second.  `collect_metrics` toggles the observability
/// subsystem, so comparing the two arguments measures the full cost of
/// metrics collection (registry, gauges, sampler, manifest build) —
/// and Arg(0) vs the pre-observability baseline bounds the disabled
/// overhead the acceptance criterion caps at 2%.
void BM_ScenarioEventRate(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    api::DumbbellScenarioConfig cfg;
    cfg.pairs = 8;
    cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
    cfg.edge_aqm = cfg.core_aqm;
    tcp::TcpConfig t;
    t.ecn = tcp::EcnMode::kDctcp;
    cfg.long_groups = {{tcp::Transport::kDctcp, t, 8, "dctcp"}};
    cfg.incast.epochs = 0;
    cfg.duration = sim::milliseconds(10);
    cfg.collect_metrics = state.range(0) != 0;
    api::ScenarioResults res = api::run_dumbbell(cfg);
    events += res.events_executed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ScenarioEventRate)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---- observability overhead (disabled path) -------------------------
//
// The contract is "one predictable branch per hot-path hit when the
// registry is disabled".  These benches pin that down at the two
// granularities that matter: a raw instrument bump, and the queue
// enqueue/dequeue cycle with a depth histogram attached.

void BM_MetricsCounterInc(benchmark::State& state) {
  sim::MetricsRegistry reg;
  reg.set_enabled(state.range(0) != 0);
  sim::Counter& c = reg.counter("bench.counter");
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterInc)->Arg(0)->Arg(1);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  sim::MetricsRegistry reg;
  reg.set_enabled(state.range(0) != 0);
  sim::Histogram& h = reg.histogram(
      "bench.hist", sim::Histogram::linear_bounds(0, 10, 26));
  double v = 0;
  for (auto _ : state) {
    h.record(v);
    v = v < 250 ? v + 1 : 0;
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramRecord)->Arg(0)->Arg(1);

/// Span-tracer hooks on the disabled path: the contract is the same as
/// the registry's — one predictable branch per hook, no allocation, no
/// hashing.  Arg(0) = disabled (what every default run pays at each
/// instrumented site), Arg(1) = enabled (record into the event buffer;
/// the buffer is drained each iteration block so it never hits the cap).
void BM_SpanTracerHooks(benchmark::State& state) {
  sim::SpanTracer tr;
  tr.set_enabled(state.range(0) != 0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t id =
        tr.begin_span(static_cast<sim::TimePs>(i), sim::SpanKind::kRecovery,
                      1, 1, i);
    tr.add_latency(id, sim::LatencyComponent::kQueueing,
                   static_cast<sim::TimePs>(i % 1'000'000));
    tr.end_span(static_cast<sim::TimePs>(i + 1), id);
    benchmark::DoNotOptimize(id);
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_SpanTracerHooks)->Arg(0)->Arg(1);

/// Incident-detector hooks follow the same discipline: every site in
/// the packet path is `if (sink = ctx.incidents())`, so a run without
/// detection pays one predictable null-pointer branch per hook and
/// nothing else — no virtual call, no allocation.  Arg(0) pins that
/// disabled path; Arg(1) attaches a stats::IncidentDetector and pays
/// the dispatch plus episode bookkeeping (the depth ramp opens and
/// closes a queue episode every 64 iterations; sub-threshold episodes
/// are discarded, so state stays bounded).
void BM_IncidentHooks(benchmark::State& state) {
  sim::SimContext ctx(1);
  stats::IncidentDetector doctor;
  std::uint32_t q = 0;
  if (state.range(0) != 0) {
    q = doctor.register_queue("bench.q", 64);
    ctx.set_incident_sink(&doctor);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    if (sim::IncidentSink* sink = ctx.incidents()) {
      sink->on_queue_depth(q, i % 64, static_cast<sim::TimePs>(i));
      sink->on_flow_progress(1, 2, static_cast<sim::TimePs>(i),
                             sim::microseconds(100));
    }
    benchmark::DoNotOptimize(ctx);
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_IncidentHooks)->Arg(0)->Arg(1);

/// Flow-span lookup links do per traced packet (disabled: the enabled()
/// guard in the caller makes this free; this bench isolates the lookup
/// itself for the enabled path).
void BM_SpanTracerFlowLookup(benchmark::State& state) {
  sim::SpanTracer tr;
  tr.set_enabled(true);
  for (std::uint64_t f = 0; f < 64; ++f) {
    const std::uint64_t id = tr.begin_span(0, sim::SpanKind::kFlow, 0, 0);
    tr.register_flow(f, f << 16, id);
  }
  std::uint64_t f = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tr.flow_span_of(f, f << 16));
    f = (f + 1) % 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanTracerFlowLookup);

/// ProfScope on the disabled path: one branch at construction, one at
/// destruction, no clock read.  Arg(1) shows the two steady_clock reads
/// the enabled path pays per handler.
void BM_ProfScope(benchmark::State& state) {
  sim::SelfProfiler prof;
  prof.set_enabled(state.range(0) != 0);
  for (auto _ : state) {
    sim::ProfScope scope(prof, sim::ProfComponent::kTcpSender);
    benchmark::DoNotOptimize(prof);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfScope)->Arg(0)->Arg(1);

/// DropTail churn with a depth histogram attached: Arg(0) = registry
/// disabled (the branch-only path every default run takes once a
/// histogram is wired), Arg(1) = enabled (binary search + bump).
/// Compare against BM_DropTailChurn for the no-histogram baseline.
void BM_DropTailChurnWithHistogram(benchmark::State& state) {
  sim::MetricsRegistry reg;
  reg.set_enabled(state.range(0) != 0);
  net::DropTailQueue q(250);
  q.attach_depth_histogram(&reg.histogram(
      "bench.depth", sim::Histogram::linear_bounds(0, 10, 26)));
  sim::TimePs now = 0;
  for (auto _ : state) {
    now += 1000;
    q.enqueue(bench_packet(), now);
    benchmark::DoNotOptimize(q.dequeue(now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DropTailChurnWithHistogram)->Arg(0)->Arg(1);

/// ShardGroup epoch loop with the telemetry hooks detached (Arg 0) vs
/// attached with deterministic counters only (Arg 1).  The contract for
/// the detached path is ONE predictable branch per hook site — no call,
/// no clock read, no allocation — so Arg(0) must match the
/// pre-telemetry epoch cost; Arg(1) bounds what the counter plane adds
/// per (epoch x shard).  Tasks are no-ops: the measurement isolates the
/// coordinator + hook overhead, not simulated work.
void BM_ShardGroupEpochs(benchmark::State& state) {
  constexpr std::size_t kShards = 8;
  struct NoopTask final : sim::ShardTask {
    sim::ShardTelemetry* telemetry = nullptr;
    std::size_t shard_id = 0;
    std::uint64_t events = 0;
    void drain(sim::TimePs start) override {
      if (telemetry != nullptr) {
        telemetry->shard_drain(shard_id, start, {});
      }
    }
    void run(sim::TimePs end) override {
      ++events;
      if (telemetry != nullptr) {
        telemetry->shard_run(shard_id, end, events);
      }
    }
  };
  const bool attached = state.range(0) != 0;
  std::uint64_t epochs = 0;
  for (auto _ : state) {
    std::optional<sim::ShardTelemetry> tel;
    if (attached) {
      sim::ShardTelemetry::Config tc;
      tc.shard_count = kShards;
      tc.label = "bench";
      tel.emplace(std::move(tc));
    }
    sim::ShardGroup group(1);
    NoopTask tasks[kShards];
    for (std::size_t s = 0; s < kShards; ++s) {
      tasks[s].telemetry = tel ? &*tel : nullptr;
      tasks[s].shard_id = s;
      group.add(&tasks[s]);
    }
    group.set_telemetry(tel ? &*tel : nullptr);
    group.run(1'000'000, 100);  // 10k epochs x 8 shards
    epochs += group.epochs();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(epochs * kShards));
}
BENCHMARK(BM_ShardGroupEpochs)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
