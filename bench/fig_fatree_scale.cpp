// Scale study — one large fat-tree fabric executed as a sharded
// (conservative-lookahead) parallel simulation.  Not a paper figure:
// this bench tracks the simulator itself.  Three points:
//
//   k8_t1    128 hosts (k=8), one worker thread — the serial baseline;
//   k8_tN    the same fabric on several workers — byte-identical
//            results, wall time is the only thing allowed to move;
//   k16_10k  10240 hosts (k=16, 80 per edge), the scale target that
//            motivates sharding in the first place.
//
// The report (bench_out/BENCH_fig_fatree_scale.json, hwatch.bench/v1)
// feeds the CI perf trajectory alongside the figure benches.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/sharded.hpp"
#include "bench_common.hpp"

namespace {

hwatch::api::FatTreeScenarioConfig scale_config(std::uint32_t k,
                                                std::uint32_t hosts,
                                                unsigned threads) {
  using namespace hwatch;
  api::FatTreeScenarioConfig cfg;
  cfg.k = k;
  cfg.hosts = hosts;
  cfg.aqm.kind = api::AqmKind::kDctcpStep;
  cfg.transport = tcp::Transport::kDctcp;
  cfg.flows_per_host = 1;
  cfg.flow_bytes = 100'000;
  cfg.start_spread = sim::milliseconds(1);
  cfg.duration = sim::milliseconds(50);
  cfg.seed = 20;
  cfg.shards = threads;
  // Deterministic counter plane only (no gauges/traces): feeds the
  // imbalance column and the bench report at zero extra events.
  cfg.shard_telemetry = true;
  // Same CI smoke knob as the figure benches.
  if (const char* ms = std::getenv("HWATCH_BENCH_DURATION_MS")) {
    cfg.duration = sim::milliseconds(std::atol(ms));
  }
  return cfg;
}

}  // namespace

int main() {
  using namespace hwatch;
  bench::print_header("fig_fatree_scale",
                      "sharded fat-tree scale study (conservative-lookahead "
                      "parallel simulation)");

  const unsigned hw =
      std::max(1u, std::thread::hardware_concurrency());
  const unsigned mid = std::min(4u, hw);
  struct Point {
    std::string name;
    api::FatTreeScenarioConfig cfg;
  };
  std::vector<Point> points;
  points.push_back({"k8_t1", scale_config(8, 0, 1)});
  points.push_back(
      {"k8_t" + std::to_string(mid), scale_config(8, 0, mid)});
  // k=16 with 80 hosts per edge is 10:1 oversubscribed at the edge
  // uplinks; a 1 ms start spread would synchronize 10k flows into one
  // giant incast whose retransmission timeouts outlive any reasonable
  // horizon.  Spreading starts over 20 ms keeps per-edge concurrency
  // low enough that the permutation actually finishes.
  api::FatTreeScenarioConfig big = scale_config(16, 10240, hw);
  big.start_spread = sim::milliseconds(20);
  // Datacenter-tuned minRTO (the DCTCP deployments the paper cites run
  // ~10 ms): with the default wide-area 200 ms floor a single timeout
  // parks a flow past the horizon.
  big.tcp.min_rto = sim::milliseconds(10);
  big.tcp.initial_rto = sim::milliseconds(10);
  points.push_back({"k16_10240hosts", std::move(big)});

  std::vector<bench::Curve> curves;
  std::vector<double> walls;
  double total_wall = 0;
  for (Point& pt : points) {
    if (pt.cfg.run_label.empty()) pt.cfg.run_label = pt.name;
    // Wall timing of the simulator itself, as in bench_common's
    // run_sweep — measurement, not simulated behaviour.
    const auto t0 = std::chrono::steady_clock::now();  // hwlint: allow(nondeterminism)
    api::ScenarioResults res = api::run_fat_tree_sharded(pt.cfg);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -  // hwlint: allow(nondeterminism)
                                      t0)
            .count();
    walls.push_back(wall);
    total_wall += wall;
    curves.push_back({pt.name, std::move(res)});
  }

  stats::Table t({"point", "hosts", "workers", "flows", "unfinished",
                  "events", "wall(s)", "events/s", "imbalance"});
  for (std::size_t i = 0; i < curves.size(); ++i) {
    const auto& r = curves[i].results;
    const double rate =
        walls[i] > 0 ? static_cast<double>(r.events_executed) / walls[i] : 0;
    t.add_row({curves[i].name,
               std::to_string(points[i].cfg.hosts != 0
                                  ? points[i].cfg.hosts
                                  : points[i].cfg.k * points[i].cfg.k *
                                        points[i].cfg.k / 4),
               std::to_string(points[i].cfg.shards),
               std::to_string(r.records.size()),
               std::to_string(r.incomplete_short_flows()),
               std::to_string(r.events_executed),
               stats::Table::num(walls[i], 2), stats::Table::num(rate, 0),
               stats::Table::num(r.shard_imbalance, 2) + "x"});
  }
  t.print(std::cout);

  // The headline invariant, asserted on every bench run: thread count
  // must not change the simulation, only the wall clock.
  if (curves[0].results.events_executed != curves[1].results.events_executed) {
    std::cerr << "error: k8 event counts differ across worker counts ("
              << curves[0].results.events_executed << " vs "
              << curves[1].results.events_executed
              << ") — sharded determinism is broken\n";
    return 1;
  }

  bench::write_bench_json("fig_fatree_scale", curves, total_wall);
  return 0;
}
