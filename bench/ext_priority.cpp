// Extension E3 — the preemptive alternative (requirement R2's foil).
//
// Instead of watching congestion, an operator could configure strict
// priority queueing in the switches and have the hypervisor DSCP-mark
// short flows "urgent".  This bench runs that design against HWatch on
// the fig8 scenario, under the paper's workload and under a sustained
// short-flow barrage, reporting both short-flow FCT and what happens to
// the long-lived tenants (R2) — plus Jain's fairness across the longs.
//
// Expected: priority queueing also rescues the short flows, but (a) it
// requires priority-configured switches, which requirement R4 rules
// out, and (b) under sustained short-flow load the bulk tenants starve,
// which requirement R2 rules out.  HWatch keeps both populations.
#include <iostream>

#include "fig89_common.hpp"

using namespace hwatch;

namespace {

api::ScenarioResults run_variant(bool priority, bool hwatch_on,
                                 bool heavy_shorts) {
  api::DumbbellScenarioConfig cfg = bench::paper_dumbbell_base();
  tcp::TcpConfig t = bench::paper_tcp(tcp::EcnMode::kNone);
  cfg.long_groups = {{tcp::Transport::kNewReno, t, 25, "tcp"}};
  cfg.short_groups = {{tcp::Transport::kNewReno, t, 25, "tcp"}};
  if (heavy_shorts) {
    // Sustained barrage: epochs every 12 ms, 80 KB each — short flows
    // continuously claim the fabric.
    cfg.incast.epochs = 70;
    cfg.incast.first_epoch = sim::milliseconds(100);
    cfg.incast.epoch_interval = sim::milliseconds(12);
    cfg.incast.flow_bytes = 80'000;
  }
  if (priority) {
    cfg.core_aqm.kind = api::AqmKind::kPriority;
    cfg.edge_aqm = cfg.core_aqm;
    cfg.hwatch_enabled = true;  // shim acts as the DSCP stamper only
    cfg.hwatch = bench::paper_hwatch(cfg.base_rtt);
    cfg.hwatch.probe_count = 0;          // no congestion watching
    cfg.hwatch.prioritize_short_flows = true;
  } else if (hwatch_on) {
    cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
    cfg.edge_aqm = cfg.core_aqm;
    cfg.hwatch_enabled = true;
    cfg.hwatch = bench::paper_hwatch(cfg.base_rtt);
  } else {
    cfg.core_aqm.kind = api::AqmKind::kDropTail;
    cfg.edge_aqm = cfg.core_aqm;
  }
  return api::run_dumbbell(cfg);
}

}  // namespace

int main() {
  bench::print_header("Extension E3",
                      "strict-priority preemption vs HWatch (the R2/R4 "
                      "trade-off)");

  stats::Table t({"workload", "scheme", "short FCT mean(ms)",
                  "short p99(ms)", "long goodput(Gb/s)", "long Jain",
                  "drops", "switch reqs"});
  for (bool heavy : {false, true}) {
    struct Row {
      const char* name;
      bool priority;
      bool hwatch;
      const char* reqs;
    };
    for (const Row& row :
         {Row{"TCP-DropTail", false, false, "none"},
          Row{"Priority+DSCP", true, false, "priority bands (R4!)"},
          Row{"TCP-HWATCH", false, true, "ECN only"}}) {
      const api::ScenarioResults res =
          run_variant(row.priority, row.hwatch, heavy);
      const auto fct = res.short_fct_cdf_ms().summarize();
      std::vector<double> long_gp;
      for (const auto& r : res.long_flows()) {
        long_gp.push_back(r.goodput_bps);
      }
      t.add_row({heavy ? "heavy shorts" : "paper (fig8)", row.name,
                 stats::Table::num(fct.mean, 3),
                 stats::Table::num(fct.p99, 3),
                 stats::Table::num(stats::mean_of(long_gp) / 1e9, 3),
                 stats::Table::num(stats::jain_fairness(long_gp), 3),
                 std::to_string(res.fabric_drops), row.reqs});
    }
  }
  t.print(std::cout);
  std::cout << "\nOn the paper's workload preemption rescues short flows "
               "too — but it needs\npriority-capable switches (violating "
               "R4) and skews bulk-tenant fairness.\nUnder sustained "
               "short-flow load it collapses: the bulk tenants starve "
               "(R2)\nand the urgent flows start pushing each other out. "
               "HWatch holds both\npopulations with commodity FIFO+ECN "
               "switches.\n";
  return 0;
}
