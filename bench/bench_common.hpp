// Shared scenario builders and reporting for the figure-reproduction
// benches.  Each bench binary reproduces one figure of the paper: it
// configures the scenario via the api layer, runs every curve, prints
// the CDF/time-series rows the figure plots, and writes CSVs next to
// the binary (./bench_out/).
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "api/scenario.hpp"
#include "api/sweep.hpp"
#include "sim/json.hpp"
#include "stats/table.hpp"

namespace hwatch::bench {

/// ns-2's default frame size, which the paper's packet-count buffer
/// arithmetic is calibrated to.
inline constexpr std::uint32_t kPaperFrameBytes = 1000;
inline constexpr std::uint32_t kPaperMss =
    kPaperFrameBytes - net::kTcpFrameOverhead;  // 942

/// The paper's ns-2 fabric: 10 Gb/s dumbbell, 100 us RTT, 250-packet
/// bottleneck buffer, marking threshold 20% (50 packets).
inline api::DumbbellScenarioConfig paper_dumbbell_base() {
  api::DumbbellScenarioConfig cfg;
  cfg.pairs = 50;
  cfg.edge_rate = sim::DataRate::gbps(10);
  cfg.bottleneck_rate = sim::DataRate::gbps(10);
  cfg.base_rtt = sim::microseconds(100);
  cfg.core_aqm.buffer_packets = 250;
  cfg.core_aqm.mark_threshold_packets = 50;
  // Byte-based buffers sized as 250 full frames: a 38-byte probe costs
  // 38 bytes, as on real hardware.  Frames are 1000 bytes (the ns-2
  // default packet size the paper simulated with), which puts the
  // 25-flow x 10 KB incast epoch exactly in the marginal-overflow regime
  // of the 250-frame buffer, as in the paper.
  cfg.core_aqm.byte_mode = true;
  cfg.core_aqm.mtu_bytes = kPaperFrameBytes;
  cfg.edge_aqm = cfg.core_aqm;
  cfg.incast.epochs = 6;
  cfg.incast.first_epoch = sim::milliseconds(100);
  cfg.incast.epoch_interval = sim::milliseconds(150);
  cfg.incast.flow_bytes = 10'000;
  // Average inter-arrival = transmission time of one segment at 10G.
  cfg.incast.mean_interarrival = sim::nanoseconds(800);
  cfg.duration = sim::seconds(1.0);
  cfg.sample_interval = sim::milliseconds(1);
  cfg.seed = 20;
  return cfg;
}

/// Default guest TCP config for the ns-2 scenarios (Linux-like): ICW 10,
/// minRTO 200 ms.
inline tcp::TcpConfig paper_tcp(tcp::EcnMode ecn) {
  tcp::TcpConfig t;
  t.mss = kPaperMss;
  t.initial_cwnd_segments = 10;
  t.min_rto = sim::milliseconds(200);
  t.initial_rto = sim::milliseconds(200);
  t.ecn = ecn;
  return t;
}

/// HWatch configuration used throughout Section V: 10 probes, drain-time
/// estimate ~RTT/2, observation rounds of one RTT.
inline core::HWatchConfig paper_hwatch(sim::TimePs rtt) {
  core::HWatchConfig h;
  h.probe_count = 10;
  h.probe_span = rtt / 2;
  h.policy.mode = core::BatchMode::kCoalesced;
  h.policy.batch_interval = rtt / 2;
  h.round_interval = rtt;
  h.mss = kPaperMss;
  h.min_window_bytes = kPaperMss;
  return h;
}

/// Named scenario result, one per curve in a figure panel.
struct Curve {
  std::string name;
  api::ScenarioResults results;
};

/// Thread count for bench sweeps: HWATCH_SWEEP_THREADS overrides, 0
/// falls through to hardware concurrency (SweepRunner's default).
/// Set HWATCH_SWEEP_THREADS=1 to force the serial baseline.  A value
/// that is not a positive integer aborts the bench with a clear error
/// instead of silently running on every core.
inline unsigned sweep_threads() {
  try {
    return api::SweepRunner::threads_from_env();
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
}

/// A named sweep point.  Benches build a vector of these, run_sweep
/// executes them across the thread pool, and the returned curves keep
/// the input order (results are independent of the thread count).
template <typename Config>
struct NamedPoint {
  std::string name;
  Config cfg;
};
using DumbbellPoint = NamedPoint<api::DumbbellScenarioConfig>;
using LeafSpinePoint = NamedPoint<api::LeafSpineScenarioConfig>;

/// Peak resident set size of this process, in bytes (Linux ru_maxrss is
/// in KiB).
inline std::uint64_t peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

/// Machine-readable bench report (`bench_out/BENCH_<name>.json`, schema
/// hwatch.bench/v1): per-point event counts, total wall time, event
/// rate, and peak RSS — the perf trajectory tracked across PRs.  CI
/// uploads these as artifacts.
inline void write_bench_json(const std::string& name,
                             const std::vector<Curve>& curves,
                             double wall_s) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories("bench_out", ec);
  if (ec) {
    std::cerr << "warning: cannot create bench_out: " << ec.message()
              << "\n";
    return;
  }
  std::uint64_t events = 0;
  sim::Json pts = sim::Json::array();
  for (const Curve& c : curves) {
    events += c.results.events_executed;
    sim::Json p = sim::Json::object();
    p.set("name", sim::Json(c.name));
    p.set("events",
          sim::Json(static_cast<std::int64_t>(c.results.events_executed)));
    // Sharded points only (0 otherwise): per-epoch max/mean shard
    // events — check_perf.py --report surfaces it next to events/s.
    p.set("imbalance", sim::Json(c.results.shard_imbalance));
    pts.push_back(std::move(p));
  }
  sim::Json doc = sim::Json::object();
  doc.set("schema", sim::Json("hwatch.bench/v1"));
  doc.set("name", sim::Json(name));
  doc.set("points", std::move(pts));
  doc.set("wall_s", sim::Json(wall_s));
  doc.set("events", sim::Json(static_cast<std::int64_t>(events)));
  doc.set("events_per_s",
          sim::Json(wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0));
  doc.set("peak_rss_bytes",
          sim::Json(static_cast<std::int64_t>(peak_rss_bytes())));
  doc.set("sweep_threads",
          sim::Json(static_cast<std::int64_t>(sweep_threads())));
  const fs::path out = fs::path("bench_out") / ("BENCH_" + name + ".json");
  std::ofstream os(out);
  doc.dump(os, 2);
  os << "\n";
  std::cout << "(bench report written to " << out.string() << ")\n";
}

template <typename Config>
std::vector<Curve> run_sweep(const std::string& bench_name,
                             std::vector<NamedPoint<Config>> points) {
  api::SweepRunner runner(sweep_threads());
  std::vector<Config> cfgs;
  cfgs.reserve(points.size());
  for (const auto& p : points) {
    cfgs.push_back(p.cfg);
    // Manifests written under HWATCH_METRICS_DIR carry the curve name.
    if (cfgs.back().run_label.empty()) cfgs.back().run_label = p.name;
    // CI smoke knob: scale the simulated duration down so the full
    // sweep pipeline (and the bench report) runs in seconds.
    if (const char* ms = std::getenv("HWATCH_BENCH_DURATION_MS")) {
      cfgs.back().duration = sim::milliseconds(std::atol(ms));
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<api::ScenarioResults> results = runner.run(cfgs);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::vector<Curve> curves;
  curves.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    curves.push_back({std::move(points[i].name), std::move(results[i])});
  }
  write_bench_json(bench_name, curves, wall_s);
  return curves;
}

inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::cout << "\n==========================================================\n"
            << figure << ": " << description << "\n"
            << "==========================================================\n";
}

/// Panel (a)-style output: short-flow FCT CDFs side by side.
inline void print_fct_panel(const std::vector<Curve>& curves,
                            bool per_epoch_mean = false) {
  std::vector<std::pair<std::string, stats::Cdf>> cdfs;
  for (const auto& c : curves) {
    cdfs.emplace_back(c.name, per_epoch_mean
                                  ? c.results.epoch_mean_fct_cdf_ms()
                                  : c.results.short_fct_cdf_ms());
  }
  stats::print_cdf_panel(std::cout,
                         per_epoch_mean
                             ? "Short-lived flows: per-epoch avg FCT CDF"
                             : "Short-lived flows: FCT CDF",
                         cdfs, "ms");
}

/// Panel (b)-style output: long-flow goodput CDFs.
inline void print_goodput_panel(const std::vector<Curve>& curves) {
  std::vector<std::pair<std::string, stats::Cdf>> cdfs;
  for (const auto& c : curves) {
    cdfs.emplace_back(c.name, c.results.long_goodput_cdf_gbps());
  }
  stats::print_cdf_panel(std::cout, "Long-lived flows: goodput CDF", cdfs,
                         "Gb/s");
}

/// Panel (c/d)-style output: queue occupancy and utilization over time,
/// printed as coarse rows.
inline void print_timeseries_panel(const std::vector<Curve>& curves,
                                   std::size_t rows = 10) {
  stats::Table queue_table([&] {
    std::vector<std::string> h{"t(s)"};
    for (const auto& c : curves) h.push_back(c.name + " q(pkts)");
    return h;
  }());
  if (!curves.empty() && !curves[0].results.queue_packets.empty()) {
    const auto& ref = curves[0].results.queue_packets;
    const std::size_t stride = std::max<std::size_t>(ref.size() / rows, 1);
    for (std::size_t i = 0; i < ref.size(); i += stride) {
      std::vector<std::string> row{
          stats::Table::num(sim::to_seconds(ref[i].time), 2)};
      for (const auto& c : curves) {
        const auto& s = c.results.queue_packets;
        row.push_back(i < s.size() ? stats::Table::num(s[i].value, 0)
                                   : "-");
      }
      queue_table.add_row(std::move(row));
    }
  }
  std::cout << "Bottleneck queue over time\n";
  queue_table.print(std::cout);

  stats::Table util_table({"scheme", "mean util", "mean tput (Gb/s)"});
  for (const auto& c : curves) {
    double tput = 0;
    for (const auto& p : c.results.throughput_gbps) tput += p.value;
    if (!c.results.throughput_gbps.empty()) {
      tput /= static_cast<double>(c.results.throughput_gbps.size());
    }
    util_table.add_row({c.name,
                        stats::Table::num(c.results.mean_utilization(), 3),
                        stats::Table::num(tput, 3)});
  }
  std::cout << "Bottleneck utilization\n";
  util_table.print(std::cout);
}

/// Summary rows: the quantities the paper's text quotes.
inline void print_summary(const std::vector<Curve>& curves) {
  stats::Table t({"scheme", "short flows", "unfinished", "FCT mean(ms)",
                  "FCT p99(ms)", "FCT var", "goodput mean(Gb/s)", "drops",
                  "retx", "timeouts"});
  for (const auto& c : curves) {
    const auto fct = c.results.short_fct_cdf_ms().summarize();
    const auto gp = c.results.long_goodput_cdf_gbps().summarize();
    t.add_row({c.name, std::to_string(fct.count),
               std::to_string(c.results.incomplete_short_flows()),
               stats::Table::num(fct.mean, 3), stats::Table::num(fct.p99, 3),
               stats::Table::num(fct.variance, 2),
               stats::Table::num(gp.mean, 3),
               std::to_string(c.results.fabric_drops),
               std::to_string(c.results.retransmits),
               std::to_string(c.results.timeouts)});
  }
  std::cout << "Summary\n";
  t.print(std::cout);
}

/// Mean-FCT improvement factor of `better` over each other curve — the
/// paper's "3x / 5x / 10x" headline numbers.
inline void print_improvements(const std::vector<Curve>& curves,
                               const std::string& reference) {
  double ref_mean = 0;
  for (const auto& c : curves) {
    if (c.name == reference) {
      ref_mean = c.results.short_fct_cdf_ms().summarize().mean;
    }
  }
  if (ref_mean <= 0) return;
  std::cout << "Mean-FCT improvement of " << reference << ":\n";
  for (const auto& c : curves) {
    if (c.name == reference) continue;
    const double m = c.results.short_fct_cdf_ms().summarize().mean;
    std::cout << "  vs " << c.name << ": " << stats::Table::num(m / ref_mean, 2)
              << "x\n";
  }
}

/// Writes per-curve CSVs (FCT CDF, goodput CDF, queue series) under
/// bench_out/<figure>/.
inline void write_csvs(const std::string& figure,
                       const std::vector<Curve>& curves) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path("bench_out") / figure;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::cerr << "warning: cannot create " << dir << ": " << ec.message()
              << "\n";
    return;
  }
  for (const auto& c : curves) {
    stats::write_csv((dir / (c.name + "_fct_cdf.csv")).string(),
                     "fct_ms,cum_frac",
                     c.results.short_fct_cdf_ms().series(100));
    stats::write_csv((dir / (c.name + "_goodput_cdf.csv")).string(),
                     "goodput_gbps,cum_frac",
                     c.results.long_goodput_cdf_gbps().series(100));
    stats::write_csv((dir / (c.name + "_queue.csv")).string(),
                     "t_s,queue_pkts", c.results.queue_packets);
    stats::write_csv((dir / (c.name + "_util.csv")).string(), "t_s,util",
                     c.results.utilization);
  }
  std::cout << "(CSV series written to " << dir.string() << ")\n";
}

}  // namespace hwatch::bench
