// Figure 2 — DCTCP with and without heterogeneous neighbours.
//
// Run A ("DCTCP"): every tenant runs DCTCP.
// Run B ("MIX"):   one third DCTCP, one third ECN-responsive NewReno,
//                  one third ECN-blind NewReno, sharing the same fabric —
//                  the multi-tenant reality the paper argues breaks
//                  DCTCP's queue regulation.
//
// Expected shape (paper): in the MIX run the FCT spread widens by ~2
// orders of magnitude, the queue is no longer pinned at the threshold,
// goodput becomes unfair across tenants, yet the link stays fully
// utilized in both runs.
#include <iostream>

#include "bench_common.hpp"

using namespace hwatch;

namespace {

api::ScenarioResults run_mix(bool heterogeneous) {
  api::DumbbellScenarioConfig cfg = bench::paper_dumbbell_base();
  cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
  cfg.edge_aqm.kind = api::AqmKind::kDctcpStep;
  cfg.core_aqm.mark_threshold_packets = 62;
  cfg.edge_aqm.mark_threshold_packets = 62;

  const tcp::TcpConfig dctcp_t = bench::paper_tcp(tcp::EcnMode::kDctcp);
  const tcp::TcpConfig classic_t = bench::paper_tcp(tcp::EcnMode::kClassic);
  const tcp::TcpConfig blind_t = bench::paper_tcp(tcp::EcnMode::kBlind);

  if (heterogeneous) {
    cfg.long_groups = {
        {tcp::Transport::kDctcp, dctcp_t, 9, "dctcp"},
        {tcp::Transport::kNewReno, classic_t, 8, "reno-ecn"},
        {tcp::Transport::kNewReno, blind_t, 8, "reno-blind"},
    };
    cfg.short_groups = {
        {tcp::Transport::kDctcp, dctcp_t, 9, "dctcp"},
        {tcp::Transport::kNewReno, classic_t, 8, "reno-ecn"},
        {tcp::Transport::kNewReno, blind_t, 8, "reno-blind"},
    };
  } else {
    cfg.long_groups = {{tcp::Transport::kDctcp, dctcp_t, 25, "dctcp"}};
    cfg.short_groups = {{tcp::Transport::kDctcp, dctcp_t, 25, "dctcp"}};
  }
  return api::run_dumbbell(cfg);
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 2", "DCTCP alone vs coexistence with other TCP flavours");

  std::vector<bench::Curve> curves;
  curves.push_back({"DCTCP", run_mix(false)});
  curves.push_back({"MIX", run_mix(true)});

  bench::print_fct_panel(curves);
  std::cout << "\nFCT mean/variance (the paper's AVG and VAR curves)\n";
  stats::Table var_table({"scheme", "FCT mean(ms)", "FCT var", "FCT max(ms)"});
  for (const auto& c : curves) {
    const auto s = c.results.short_fct_cdf_ms().summarize();
    var_table.add_row({c.name, stats::Table::num(s.mean, 3),
                       stats::Table::num(s.variance, 2),
                       stats::Table::num(s.max, 3)});
  }
  var_table.print(std::cout);

  // Per-tenant-flavour goodput in the MIX run: the unfairness panel (c).
  std::cout << "\nPer-flavour long-flow goodput in the MIX run\n";
  stats::Table fair({"flavour", "flows", "goodput mean(Gb/s)",
                     "goodput min", "goodput max"});
  for (const char* flavour : {"dctcp", "newreno"}) {
    stats::Cdf cdf;
    for (const auto& r : curves[1].results.long_flows()) {
      if (r.transport == flavour) cdf.add(r.goodput_bps / 1e9);
    }
    if (cdf.empty()) continue;
    const auto s = cdf.summarize();
    fair.add_row({flavour, std::to_string(s.count),
                  stats::Table::num(s.mean, 3), stats::Table::num(s.min, 3),
                  stats::Table::num(s.max, 3)});
  }
  fair.print(std::cout);

  std::cout << "\n";
  bench::print_goodput_panel(curves);
  std::cout << "\n";
  bench::print_timeseries_panel(curves);
  bench::print_summary(curves);
  bench::write_csvs("fig2", curves);
  return 0;
}
