#include "workload/traffic.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace hwatch::workload {

void TrafficManager::add_flow(const FlowSpec& spec) {
  if (spec.src == nullptr || spec.dst == nullptr) {
    throw std::invalid_argument("add_flow: null endpoint");
  }
  const std::uint16_t sport =
      spec.src_port != 0 ? spec.src_port : next_port(*spec.src);
  const std::uint16_t dport =
      spec.dst_port != 0 ? spec.dst_port : next_port(*spec.dst);
  net::Network& dst_net = spec.dst_net != nullptr ? *spec.dst_net : net_;
  auto conn = std::make_unique<tcp::TcpConnection>(
      net_, dst_net, *spec.src, *spec.dst, sport, dport, spec.transport,
      spec.tcp);

  const std::size_t index = entries_.size();
  conn->sender().set_on_complete([this, index](const tcp::TcpSender&) {
    entries_[index].completed = true;
    ++completed_;
    if (entries_[index].spec.on_complete) {
      entries_[index].spec.on_complete();
    }
  });
  tcp::TcpConnection* raw = conn.get();
  const std::uint64_t bytes = spec.bytes;
  net_.ctx().scheduler().schedule_at(spec.start,
                               [raw, bytes] { raw->start(bytes); });
  entries_.push_back(Entry{spec, std::move(conn), false});
}

std::uint16_t TrafficManager::next_port(const net::Host& host) {
  if (next_port_.size() <= host.id()) {
    next_port_.resize(host.id() + 1, 1024);
  }
  const std::uint16_t port = next_port_[host.id()]++;
  if (port == 0) throw std::runtime_error("port space exhausted");
  return port;
}

std::vector<stats::FlowRecord> TrafficManager::collect_records() const {
  std::vector<stats::FlowRecord> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    stats::FlowRecord r;
    r.key = e.conn->sender().flow_key();
    r.klass = e.spec.klass;
    r.transport = e.conn->sender().transport_name();
    r.epoch = e.spec.epoch;
    r.bytes = e.spec.bytes;
    r.completed = e.completed;
    r.start_time = e.spec.start;
    r.fct = e.conn->sender().fct();
    r.retransmits = e.conn->sender().stats().retransmits;
    r.timeouts = e.conn->sender().stats().timeouts;
    r.goodput_bps = e.conn->sink().goodput_bps();
    out.push_back(std::move(r));
  }
  return out;
}

std::uint64_t TrafficManager::total_retransmits() const {
  std::uint64_t total = 0;
  for (const Entry& e : entries_) {
    total += e.conn->sender().stats().retransmits;
  }
  return total;
}

std::uint64_t TrafficManager::total_timeouts() const {
  std::uint64_t total = 0;
  for (const Entry& e : entries_) {
    total += e.conn->sender().stats().timeouts;
  }
  return total;
}

std::uint64_t TrafficManager::total_bytes_in_flight() const {
  std::uint64_t total = 0;
  for (const Entry& e : entries_) {
    const tcp::TcpSender& s = e.conn->sender();
    total += s.snd_nxt() - s.snd_una();
  }
  return total;
}

void add_bulk_flows(TrafficManager& tm,
                    const std::vector<net::Host*>& srcs,
                    const std::vector<net::Host*>& dsts,
                    const std::vector<SenderGroup>& groups, sim::TimePs t0,
                    sim::TimePs start_spread, sim::Rng& rng) {
  if (dsts.empty()) throw std::invalid_argument("bulk: no destinations");
  std::size_t s = 0;
  for (const SenderGroup& g : groups) {
    for (std::uint32_t i = 0; i < g.count; ++i, ++s) {
      if (s >= srcs.size()) {
        throw std::invalid_argument("bulk: more flows than sources");
      }
      FlowSpec spec;
      spec.src = srcs[s];
      spec.dst = dsts[s % dsts.size()];
      spec.transport = g.transport;
      spec.tcp = g.tcp;
      spec.bytes = tcp::TcpSender::kUnlimited;
      spec.start =
          t0 + static_cast<sim::TimePs>(rng.uniform() *
                                        static_cast<double>(start_spread));
      spec.klass = stats::FlowClass::kLong;
      tm.add_flow(spec);
    }
  }
}

void add_incast_epochs(TrafficManager& tm,
                       const std::vector<net::Host*>& srcs,
                       const std::vector<net::Host*>& dsts,
                       const std::vector<SenderGroup>& groups,
                       const IncastConfig& cfg, sim::Rng& rng) {
  if (dsts.empty()) throw std::invalid_argument("incast: no destinations");
  // Expand groups to one (source, transport) slot per short sender.
  struct Slot {
    std::size_t src_index;
    const SenderGroup* group;
  };
  std::vector<Slot> slots;
  std::size_t s = 0;
  for (const SenderGroup& g : groups) {
    for (std::uint32_t i = 0; i < g.count; ++i, ++s) {
      if (s >= srcs.size()) {
        throw std::invalid_argument("incast: more flows than sources");
      }
      slots.push_back(Slot{s, &g});
    }
  }

  for (std::uint32_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    const sim::TimePs epoch_start =
        cfg.first_epoch + static_cast<sim::TimePs>(epoch) *
                              cfg.epoch_interval;
    // Random launch order with exponential gaps: correlated arrivals,
    // which is precisely what produces incast.
    std::vector<std::size_t> order(slots.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);
    sim::TimePs at = epoch_start;
    for (std::size_t idx : order) {
      const Slot& slot = slots[idx];
      FlowSpec spec;
      spec.src = srcs[slot.src_index];
      spec.dst = dsts[slot.src_index % dsts.size()];
      spec.transport = slot.group->transport;
      spec.tcp = slot.group->tcp;
      spec.bytes = cfg.flow_bytes;
      spec.start = at;
      spec.klass = stats::FlowClass::kShort;
      spec.epoch = epoch;
      tm.add_flow(spec);
      at += rng.exponential_time(cfg.mean_interarrival);
    }
  }
}

void add_web_waves(TrafficManager& tm,
                   const std::vector<net::Host*>& servers,
                   const std::vector<net::Host*>& clients,
                   tcp::Transport transport, const tcp::TcpConfig& tcp,
                   const WebWaveConfig& cfg, sim::Rng& rng) {
  for (std::uint32_t w = 0; w < cfg.waves; ++w) {
    const sim::TimePs wave_start =
        cfg.first_wave + static_cast<sim::TimePs>(w) * cfg.wave_interval;
    for (net::Host* server : servers) {
      for (net::Host* client : clients) {
        for (std::uint32_t c = 0; c < cfg.connections_per_pair; ++c) {
          FlowSpec spec;
          spec.src = server;  // the response body dominates: model the
          spec.dst = client;  // transfer server -> client
          spec.transport = transport;
          spec.tcp = tcp;
          spec.bytes = cfg.object_bytes *
                       std::max<std::uint32_t>(cfg.requests_per_connection,
                                               1);
          spec.start = wave_start + static_cast<sim::TimePs>(
                                        rng.uniform() *
                                        static_cast<double>(cfg.wave_spread));
          spec.klass = stats::FlowClass::kShort;
          spec.epoch = w;
          tm.add_flow(spec);
        }
      }
    }
  }
}

namespace {

/// One closed-loop request slot; owns its own chaining state via
/// shared_ptr so the lambdas can outlive this stack frame safely.
struct ClosedLoopSlot {
  workload::TrafficManager* tm;
  net::Network* net;
  net::Host* server;
  net::Host* client;
  tcp::Transport transport;
  tcp::TcpConfig tcp;
  std::uint64_t object_bytes;
  std::uint32_t remaining;
  std::uint32_t issued = 0;
  sim::TimePs think_time_mean;
  sim::Rng rng;
};

void issue_next_request(const std::shared_ptr<ClosedLoopSlot>& slot) {
  if (slot->remaining == 0) return;
  --slot->remaining;
  workload::FlowSpec spec;
  spec.src = slot->server;
  spec.dst = slot->client;
  spec.transport = slot->transport;
  spec.tcp = slot->tcp;
  spec.bytes = slot->object_bytes;
  spec.start = slot->net->ctx().now();
  spec.klass = stats::FlowClass::kShort;
  spec.epoch = slot->issued++;
  spec.on_complete = [slot] {
    if (slot->remaining == 0) return;
    const sim::TimePs think =
        slot->think_time_mean > 0
            ? slot->rng.exponential_time(slot->think_time_mean)
            : 0;
    slot->net->ctx().scheduler().schedule_in(
        think, [slot] { issue_next_request(slot); });
  };
  slot->tm->add_flow(spec);
}

}  // namespace

void add_closed_loop_web(TrafficManager& tm,
                         const std::vector<net::Host*>& servers,
                         const std::vector<net::Host*>& clients,
                         tcp::Transport transport,
                         const tcp::TcpConfig& tcp,
                         const ClosedLoopConfig& cfg, sim::Rng& rng) {
  net::Network& net = tm.network();
  for (net::Host* server : servers) {
    for (net::Host* client : clients) {
      for (std::uint32_t s = 0; s < cfg.slots_per_pair; ++s) {
        auto slot = std::make_shared<ClosedLoopSlot>(ClosedLoopSlot{
            &tm, &net, server, client, transport, tcp, cfg.object_bytes,
            cfg.requests_per_slot, 0, cfg.think_time_mean, rng.fork()});
        const sim::TimePs at =
            cfg.start + static_cast<sim::TimePs>(
                            rng.uniform() *
                            static_cast<double>(cfg.start_spread));
        net.ctx().scheduler().schedule_at(at,
                                    [slot] { issue_next_request(slot); });
      }
    }
  }
}

}  // namespace hwatch::workload
