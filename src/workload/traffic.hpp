// Traffic generation: flow specs, a TrafficManager that owns the
// connections and harvests per-flow records, and generators for the
// paper's three workloads — long-lived bulk flows (iperf stand-in),
// correlated incast epochs of short flows, and testbed-style web-request
// waves.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/random.hpp"
#include "stats/flow_record.hpp"
#include "tcp/connection.hpp"

namespace hwatch::workload {

struct FlowSpec {
  net::Host* src = nullptr;
  net::Host* dst = nullptr;
  /// Network owning `dst` when it lives in another shard; nullptr means
  /// the TrafficManager's own network (classic single-context case).
  net::Network* dst_net = nullptr;
  /// Explicit ports; 0 = allocate from this manager.  Cross-shard flows
  /// must pass a dst_port allocated by the DESTINATION shard's manager,
  /// so two shards never hand out the same (dst, port) pair.
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  tcp::Transport transport = tcp::Transport::kNewReno;
  tcp::TcpConfig tcp;
  std::uint64_t bytes = 0;  // TcpSender::kUnlimited for long-lived
  sim::TimePs start = 0;
  stats::FlowClass klass = stats::FlowClass::kShort;
  std::uint32_t epoch = 0;
  /// Optional hook fired when the flow completes (closed-loop
  /// generators chain the next request here).
  std::function<void()> on_complete;
};

/// Owns every connection of a scenario, schedules their starts, and
/// produces FlowRecords when the run ends.
class TrafficManager {
 public:
  explicit TrafficManager(net::Network& net) : net_(net) {}

  TrafficManager(const TrafficManager&) = delete;
  TrafficManager& operator=(const TrafficManager&) = delete;

  /// Creates the connection now (agents bind immediately) and schedules
  /// its start.
  void add_flow(const FlowSpec& spec);

  std::size_t flow_count() const { return entries_.size(); }
  std::size_t completed_count() const { return completed_; }

  /// Harvests records: completed short flows carry their FCT; long-lived
  /// flows carry the sink-measured goodput.
  std::vector<stats::FlowRecord> collect_records() const;

  /// Sum of retransmissions/timeouts across all senders.
  std::uint64_t total_retransmits() const;
  std::uint64_t total_timeouts() const;

  /// Unacked bytes currently in flight summed over all senders (a live
  /// gauge for the metrics sampler).
  std::uint64_t total_bytes_in_flight() const;

  /// Allocates a fresh ephemeral port on a host.
  std::uint16_t next_port(const net::Host& host);

  net::Network& network() { return net_; }

 private:
  struct Entry {
    FlowSpec spec;
    std::unique_ptr<tcp::TcpConnection> conn;
    bool completed = false;
  };

  net::Network& net_;
  std::vector<Entry> entries_;
  std::vector<std::uint16_t> next_port_;  // indexed by node id
  std::size_t completed_ = 0;
};

/// A (transport, tcp-config, count) group; scenario configs use lists of
/// these to express the paper's heterogeneous-tenant mixes.
struct SenderGroup {
  tcp::Transport transport = tcp::Transport::kNewReno;
  tcp::TcpConfig tcp;
  std::uint32_t count = 0;
  std::string label;  // for reporting, defaults to transport name
};

/// Long-lived flows src[i] -> dst[i mod |dst|], started inside
/// [t0, t0+start_spread) at uniformly random offsets.  Groups are
/// assigned round-robin over the source list, consuming `count` sources
/// each.
void add_bulk_flows(TrafficManager& tm,
                    const std::vector<net::Host*>& srcs,
                    const std::vector<net::Host*>& dsts,
                    const std::vector<SenderGroup>& groups, sim::TimePs t0,
                    sim::TimePs start_spread, sim::Rng& rng);

struct IncastConfig {
  std::uint32_t epochs = 6;
  sim::TimePs first_epoch = sim::milliseconds(100);
  sim::TimePs epoch_interval = sim::milliseconds(150);
  std::uint64_t flow_bytes = 10'000;  // paper: 10 KB per short flow
  /// Mean inter-arrival between consecutive short flows inside an epoch
  /// (paper: the transmission time of a single segment).
  sim::TimePs mean_interarrival = sim::microseconds(1);
};

/// Correlated incast: every epoch, each source in `groups` starts one
/// short flow towards its paired destination, in random order with
/// exponential inter-arrival gaps.
void add_incast_epochs(TrafficManager& tm,
                       const std::vector<net::Host*>& srcs,
                       const std::vector<net::Host*>& dsts,
                       const std::vector<SenderGroup>& groups,
                       const IncastConfig& cfg, sim::Rng& rng);

struct WebWaveConfig {
  std::uint32_t waves = 5;
  sim::TimePs first_wave = sim::milliseconds(500);
  sim::TimePs wave_interval = sim::milliseconds(1000);
  std::uint32_t connections_per_pair = 10;  // parallel requests
  std::uint32_t requests_per_connection = 1;
  std::uint64_t object_bytes = 11'500;  // the testbed's 11.5 KB page
  /// Requests of one wave are spread over this span.
  sim::TimePs wave_spread = sim::milliseconds(20);
};

/// Testbed workload: every wave, each (server, client) pair opens
/// `connections_per_pair` short flows of `object_bytes` from server to
/// client.
void add_web_waves(TrafficManager& tm,
                   const std::vector<net::Host*>& servers,
                   const std::vector<net::Host*>& clients,
                   tcp::Transport transport, const tcp::TcpConfig& tcp,
                   const WebWaveConfig& cfg, sim::Rng& rng);

struct ClosedLoopConfig {
  /// Parallel request slots per (server, client) pair; the testbed used
  /// 10 parallel connections.
  std::uint32_t slots_per_pair = 10;
  /// Sequential requests each slot issues, one after another (the
  /// testbed generators fetched the page 1000 times back to back).
  std::uint32_t requests_per_slot = 5;
  std::uint64_t object_bytes = 11'500;
  sim::TimePs start = sim::milliseconds(100);
  /// First requests of all slots start inside this window.
  sim::TimePs start_spread = sim::milliseconds(10);
  /// Exponential think time between a completion and the next request
  /// of the same slot (0 = immediately back to back).
  sim::TimePs think_time_mean = 0;
};

/// Closed-loop web workload: each slot issues its requests sequentially
/// — the next transfer starts only after the previous one completed —
/// so offered load self-regulates, exactly like the testbed's Apache
/// clients.  Each request is its own TCP connection (epoch = request
/// index within the slot).
void add_closed_loop_web(TrafficManager& tm,
                         const std::vector<net::Host*>& servers,
                         const std::vector<net::Host*>& clients,
                         tcp::Transport transport,
                         const tcp::TcpConfig& tcp,
                         const ClosedLoopConfig& cfg, sim::Rng& rng);

}  // namespace hwatch::workload
