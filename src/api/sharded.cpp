#include "api/sharded.hpp"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/shard_channel.hpp"
#include "sim/shard_group.hpp"

namespace hwatch::api {

unsigned shards_from_env() {
  const char* raw = std::getenv("HWATCH_SHARDS");
  if (raw == nullptr || *raw == '\0') return 0;
  const std::string value(raw);
  const auto bad = [&](const char* why) {
    throw std::invalid_argument(std::string("HWATCH_SHARDS=\"") + value +
                                "\": " + why +
                                " (expected a positive integer)");
  };
  std::size_t pos = 0;
  unsigned long parsed = 0;
  try {
    parsed = std::stoul(value, &pos, 10);
  } catch (const std::invalid_argument&) {
    bad("not a number");
  } catch (const std::out_of_range&) {
    bad("out of range");
  }
  if (pos != value.size()) bad("trailing characters");
  if (parsed == 0) bad("must be >= 1");
  if (parsed > 1024) bad("out of range");
  return static_cast<unsigned>(parsed);
}

ShardedRunner::ShardedRunner(unsigned threads) : threads_(threads) {
  if (threads_ == 0) threads_ = shards_from_env();
  if (threads_ == 0) threads_ = 1;
}

ScenarioResults ShardedRunner::run(FatTreeScenarioConfig cfg) const {
  cfg.shards = threads_;
  return run_fat_tree_sharded(cfg);
}

namespace {

/// One shard's epoch protocol: drain the cross-shard inboxes, then run
/// the local scheduler through the window.
struct ShardRun final : sim::ShardTask {
  sim::SimContext* ctx = nullptr;
  std::vector<net::CrossShardChannel*>* ingress = nullptr;
  std::vector<std::pair<net::Node*, net::ShardInbox::Item>> scratch;

  void drain(sim::TimePs) override {
    net::drain_cross_shard_channels(*ingress, scratch);
  }
  void run(sim::TimePs window_end) override {
    ctx->scheduler().run_until(window_end);
  }
};

// Wall time feeds only the manifest `environment` section (excluded
// from the deterministic dump).
using WallClock = std::chrono::steady_clock;  // hwlint: allow(nondeterminism)

double wall_ms_since(WallClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - t0)
      .count();
}

sim::Json sharded_aqm_json(const AqmConfig& a) {
  sim::Json j = sim::Json::object();
  j.set("kind", to_string(a.kind));
  j.set("buffer_packets", a.buffer_packets);
  j.set("mark_threshold_packets", a.mark_threshold_packets);
  j.set("byte_mode", a.byte_mode);
  return j;
}

}  // namespace

ScenarioResults run_fat_tree_sharded(const FatTreeScenarioConfig& cfg) {
  const char* metrics_dir = std::getenv("HWATCH_METRICS_DIR");
  const bool collect = cfg.collect_metrics || metrics_dir != nullptr;
  const char* trace_dir = std::getenv("HWATCH_TRACE_DIR");
  const bool trace = cfg.trace_spans || trace_dir != nullptr;
  const WallClock::time_point wall0 = WallClock::now();

  unsigned workers = cfg.shards;
  if (workers == 0) workers = shards_from_env();
  if (workers == 0) workers = 1;

  topo::ShardedFatTreeConfig tcfg;
  tcfg.k = cfg.k;
  tcfg.hosts = cfg.hosts;
  tcfg.link_rate = cfg.link_rate;
  tcfg.base_rtt = cfg.base_rtt;
  tcfg.qdisc = cfg.aqm.make_factory(cfg.link_rate);
  tcfg.seed = cfg.seed;
  tcfg.inbox_capacity = cfg.inbox_capacity;
  topo::ShardedFatTree tree = topo::build_sharded_fat_tree(tcfg);
  const std::size_t shard_count = tree.shards.size();

  for (std::size_t s = 0; s < shard_count; ++s) {
    sim::SimContext& ctx = *tree.shards[s].ctx;
    if (collect) ctx.metrics().set_enabled(true);
    if (trace) {
      ctx.tracer().set_id_base(static_cast<std::uint64_t>(s) << 40);
      ctx.tracer().set_enabled(true);
    }
  }

  // HWatch shims, per shard: each host's shim forks from its own
  // shard's RNG, so the probe schedule is a pure function of
  // (seed, shard), untouched by worker count.
  std::vector<std::unique_ptr<core::HypervisorShim>> shims;
  if (cfg.hwatch_enabled) {
    for (std::size_t s = 0; s < shard_count; ++s) {
      auto& shard = tree.shards[s];
      for (net::Host* host : shard.hosts) {
        shims.push_back(core::install_hwatch(*shard.net, *host, cfg.hwatch,
                                             shard.ctx->rng().fork()));
      }
    }
  }

  // Permutation workload.  A flow lives in its SOURCE host's shard (the
  // sender runs there); the sink runs in the destination shard, bound
  // to a port allocated by the destination shard's manager.
  std::vector<std::unique_ptr<workload::TrafficManager>> tms;
  tms.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    tms.push_back(
        std::make_unique<workload::TrafficManager>(*tree.shards[s].net));
  }
  const std::size_t n_hosts = tree.hosts.size();
  const std::uint32_t hosts_per_edge = tree.plan.hosts_per_edge;
  const std::uint64_t total_flows =
      static_cast<std::uint64_t>(n_hosts) * cfg.flows_per_host;
  std::uint64_t flow_idx = 0;
  for (std::size_t i = 0; i < n_hosts; ++i) {
    const std::size_t src_shard = i / hosts_per_edge;
    const std::size_t j = (i + n_hosts / 2 + 1) % n_hosts;
    const std::size_t dst_shard = j / hosts_per_edge;
    for (std::uint32_t f = 0; f < cfg.flows_per_host; ++f, ++flow_idx) {
      workload::FlowSpec spec;
      spec.src = tree.hosts[i];
      spec.dst = tree.hosts[j];
      spec.dst_net = tree.shards[dst_shard].net.get();
      spec.dst_port = tms[dst_shard]->next_port(*spec.dst);
      spec.transport = cfg.transport;
      spec.tcp = cfg.tcp;
      spec.bytes = cfg.flow_bytes;
      spec.start = total_flows > 0
                       ? static_cast<sim::TimePs>(
                             (static_cast<std::uint64_t>(cfg.start_spread) *
                              flow_idx) /
                             total_flows)
                       : 0;
      spec.klass = stats::FlowClass::kShort;
      spec.epoch = f;
      tms[src_shard]->add_flow(spec);
    }
  }

  // Conservative epochs to the horizon.
  std::vector<ShardRun> shard_tasks(shard_count);
  sim::ShardGroup group(workers);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shard_tasks[s].ctx = tree.shards[s].ctx.get();
    shard_tasks[s].ingress = &tree.shards[s].ingress;
    group.add(&shard_tasks[s]);
  }
  group.run(cfg.duration, tree.lookahead);

  ScenarioResults res;
  for (std::size_t s = 0; s < shard_count; ++s) {
    auto records = tms[s]->collect_records();
    res.records.insert(res.records.end(), records.begin(), records.end());
    res.fabric_drops += tree.shards[s].net->total_queue_drops();
    res.retransmits += tms[s]->total_retransmits();
    res.timeouts += tms[s]->total_timeouts();
    res.events_executed += tree.shards[s].ctx->scheduler().executed();
  }
  for (const auto& shim : shims) {
    res.shim.probes_injected += shim->stats().probes_injected;
    res.shim.probe_bytes_injected += shim->stats().probe_bytes_injected;
    res.shim.synacks_rewritten += shim->stats().synacks_rewritten;
    res.shim.acks_rewritten += shim->stats().acks_rewritten;
    res.shim.window_decisions += shim->stats().window_decisions;
    res.shim.flows_tracked += shim->flow_table().created();
  }

  const std::string label =
      cfg.run_label.empty()
          ? "fat_tree_sharded-seed" + std::to_string(cfg.seed)
          : cfg.run_label;

  if (collect) {
    // Per-shard harvest into each shard's own registry, then a pure
    // merge — no counter ever crosses a context boundary.
    for (std::size_t s = 0; s < shard_count; ++s) {
      sim::MetricsRegistry& m = tree.shards[s].ctx->metrics();
      const sim::Scheduler& sched = tree.shards[s].ctx->scheduler();
      m.counter("sched.events.executed").inc(sched.executed());
      m.counter("sched.events.scheduled").inc(sched.scheduled());
      m.counter("sched.events.cancelled").inc(sched.cancelled());
      m.counter("sched.heap_peak").inc(sched.heap_peak());
      m.counter("net.fabric_drops")
          .inc(tree.shards[s].net->total_queue_drops());
      m.counter("tcp.retransmits").inc(tms[s]->total_retransmits());
      m.counter("tcp.timeouts").inc(tms[s]->total_timeouts());
      std::uint64_t pushed = 0, spilled = 0;
      for (const net::CrossShardChannel* ch : tree.shards[s].ingress) {
        pushed += ch->inbox().pushed();
        spilled += ch->inbox().spilled();
      }
      m.counter("shard.ingress.pushed").inc(pushed);
      m.counter("shard.ingress.spilled").inc(spilled);
    }
    // FCT histogram over the merged records (bucket counts are
    // order-independent); hosted by shard 0's registry.
    sim::Histogram& fct = tree.shards[0].ctx->metrics().histogram(
        "tcp.fct_ms", sim::Histogram::exponential_bounds(0.05, 2.0, 18));
    for (const auto& r : res.records) {
      if (r.completed) fct.record(r.fct_ms());
    }
    std::vector<sim::MetricsSnapshot> parts;
    parts.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      parts.push_back(tree.shards[s].ctx->metrics().snapshot());
    }

    sim::Json config = sim::Json::object();
    config.set("k", cfg.k);
    config.set("hosts_total", static_cast<std::uint64_t>(n_hosts));
    config.set("hosts_per_edge", hosts_per_edge);
    config.set("link_rate_gbps", cfg.link_rate.gbits_per_sec());
    config.set("base_rtt_ps", cfg.base_rtt);
    config.set("aqm", sharded_aqm_json(cfg.aqm));
    config.set("flows_per_host", cfg.flows_per_host);
    config.set("flow_bytes", cfg.flow_bytes);
    config.set("start_spread_ps", cfg.start_spread);
    config.set("transport", tcp::to_string(cfg.transport));
    config.set("hwatch_enabled", cfg.hwatch_enabled);
    config.set("duration_ps", cfg.duration);
    config.set("seed", cfg.seed);
    config.set("shards_logical", tree.plan.shard_count);
    config.set("lookahead_ps", tree.lookahead);
    config.set("cross_links", tree.cross_links);
    config.set("inbox_capacity",
               static_cast<std::uint64_t>(cfg.inbox_capacity));

    sim::Json results = sim::Json::object();
    results.set("flows", res.records.size());
    std::size_t completed = 0;
    for (const auto& r : res.records) completed += r.completed ? 1 : 0;
    results.set("completed_flows", completed);
    results.set("incomplete_short_flows", res.incomplete_short_flows());
    results.set("fabric_drops", res.fabric_drops);
    results.set("retransmits", res.retransmits);
    results.set("timeouts", res.timeouts);
    results.set("events_executed", res.events_executed);
    results.set("epochs", group.epochs());
    sim::Json shim_json = sim::Json::object();
    shim_json.set("probes_injected", res.shim.probes_injected);
    shim_json.set("probe_bytes_injected", res.shim.probe_bytes_injected);
    shim_json.set("synacks_rewritten", res.shim.synacks_rewritten);
    shim_json.set("acks_rewritten", res.shim.acks_rewritten);
    shim_json.set("window_decisions", res.shim.window_decisions);
    shim_json.set("flows_tracked", res.shim.flows_tracked);
    results.set("shim", std::move(shim_json));

    sim::RunManifest& man = res.manifest;
    man.name = label;
    man.scenario_kind = "fat_tree_sharded";
    man.seed = cfg.seed;
    man.config = std::move(config);
    man.results = std::move(results);
    man.metrics = sim::metrics_json(sim::merge_snapshots(parts));
    man.wall_time_ms = wall_ms_since(wall0);
    man.sweep_threads = workers;
    res.has_manifest = true;
    if (metrics_dir != nullptr && man.write_file(metrics_dir).empty()) {
      throw std::runtime_error(
          std::string("HWATCH_METRICS_DIR=\"") + metrics_dir +
          "\": cannot create the directory or write the manifest file; "
          "point HWATCH_METRICS_DIR at a writable path");
    }
  }

  if (trace) {
    std::vector<const sim::SpanTracer*> tracers;
    tracers.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      tree.shards[s].ctx->tracer().close_open_spans(
          tree.shards[s].ctx->now());
      tracers.push_back(&tree.shards[s].ctx->tracer());
    }
    std::ostringstream spans;
    sim::dump_jsonl_merged(tracers, spans);
    res.trace_spans_jsonl = spans.str();
    std::ostringstream chrome;
    sim::export_chrome_merged(tracers, chrome, label);
    res.trace_chrome = chrome.str();
    if (trace_dir != nullptr) {
      const std::string stem = sim::RunManifest::sanitize(label);
      std::error_code ec;
      std::filesystem::create_directories(trace_dir, ec);
      const auto write = [&](const char* suffix, const std::string& body) {
        const std::filesystem::path path =
            std::filesystem::path(trace_dir) / (stem + suffix);
        std::ofstream out(path, std::ios::binary);
        out << body;
        if (!out) {
          throw std::runtime_error(
              std::string("HWATCH_TRACE_DIR=\"") + trace_dir +
              "\": cannot create the directory or write \"" +
              path.string() + "\"; point HWATCH_TRACE_DIR at a writable "
              "path");
        }
      };
      write(".spans.jsonl", res.trace_spans_jsonl);
      write(".trace.json", res.trace_chrome);
    }
  }

  return res;
}

}  // namespace hwatch::api
