#include "api/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/shard_channel.hpp"
#include "sim/self_profiler.hpp"
#include "sim/shard_group.hpp"
#include "sim/shard_telemetry.hpp"
#include "stats/cdf.hpp"
#include "stats/incident.hpp"

namespace hwatch::api {

unsigned shards_from_env() {
  const char* raw = std::getenv("HWATCH_SHARDS");
  if (raw == nullptr || *raw == '\0') return 0;
  const std::string value(raw);
  const auto bad = [&](const char* why) {
    throw std::invalid_argument(std::string("HWATCH_SHARDS=\"") + value +
                                "\": " + why +
                                " (expected a positive integer)");
  };
  std::size_t pos = 0;
  unsigned long parsed = 0;
  try {
    parsed = std::stoul(value, &pos, 10);
  } catch (const std::invalid_argument&) {
    bad("not a number");
  } catch (const std::out_of_range&) {
    bad("out of range");
  }
  if (pos != value.size()) bad("trailing characters");
  if (parsed == 0) bad("must be >= 1");
  if (parsed > 1024) bad("out of range");
  return static_cast<unsigned>(parsed);
}

ShardedRunner::ShardedRunner(unsigned threads) : threads_(threads) {
  if (threads_ == 0) threads_ = shards_from_env();
  if (threads_ == 0) threads_ = 1;
}

ScenarioResults ShardedRunner::run(FatTreeScenarioConfig cfg) const {
  cfg.shards = threads_;
  return run_fat_tree_sharded(cfg);
}

namespace {

/// One shard's epoch protocol: drain the cross-shard inboxes, then run
/// the local scheduler through the window.  The telemetry hooks cost
/// one predictable null-check each when detached.
struct ShardRun final : sim::ShardTask {
  sim::SimContext* ctx = nullptr;
  std::vector<net::CrossShardChannel*>* ingress = nullptr;
  std::vector<std::pair<net::Node*, net::ShardInbox::Item>> scratch;
  sim::ShardTelemetry* telemetry = nullptr;
  stats::IncidentDetector* doctor = nullptr;
  std::size_t shard_id = 0;

  void drain(sim::TimePs window_start) override {
    if (telemetry != nullptr) {
      // Producers are quiescent across the drain barrier, so the
      // producer-owned counters (pushed / spilled / peak depth) are
      // safe to read here — and ONLY here (see ShardInbox).
      sim::ShardTelemetry::IngressSample in;
      for (const net::CrossShardChannel* ch : *ingress) {
        const net::ShardInbox& inbox = ch->inbox();
        in.pushed += inbox.pushed();
        in.spilled += inbox.spilled();
        in.peak_depth = std::max(in.peak_depth, inbox.peak_depth());
        in.depth += inbox.depth();
      }
      telemetry->shard_drain(shard_id, window_start, in);
    }
    net::drain_cross_shard_channels(*ingress, scratch);
  }
  void run(sim::TimePs window_end) override {
    ctx->scheduler().run_until(window_end);
    if (telemetry != nullptr) {
      telemetry->shard_run(shard_id, window_end,
                           ctx->scheduler().executed());
      if (doctor != nullptr) {
        // Open-episode count for the heartbeat's incident column —
        // sim-time detector state, owner-written like the counters.
        telemetry->shard_incidents(shard_id, doctor->active_count());
      }
    }
  }
};

// Wall time feeds only the manifest `environment` section (excluded
// from the deterministic dump).
using WallClock = std::chrono::steady_clock;  // hwlint: allow(nondeterminism)

double wall_ms_since(WallClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - t0)
      .count();
}

/// True when `name` is set to anything but "" or "0".
bool env_flag(const char* name) {
  const char* raw = std::getenv(name);
  return raw != nullptr && *raw != '\0' &&
         !(raw[0] == '0' && raw[1] == '\0');
}

sim::Json sharded_aqm_json(const AqmConfig& a) {
  sim::Json j = sim::Json::object();
  j.set("kind", to_string(a.kind));
  j.set("buffer_packets", a.buffer_packets);
  j.set("mark_threshold_packets", a.mark_threshold_packets);
  j.set("byte_mode", a.byte_mode);
  return j;
}

/// Merges every shard's sampler output into one name-sorted series
/// object (names are unique: each carries its "shard<N>." prefix).
sim::Json merged_series_json(
    const std::vector<std::unique_ptr<stats::MetricsSampler>>& samplers) {
  std::vector<const stats::MetricsSampler::GaugeSeries*> sorted;
  for (const auto& sampler : samplers) {
    for (const auto& g : sampler->series()) sorted.push_back(&g);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->name < b->name; });
  sim::Json out = sim::Json::object();
  for (const auto* g : sorted) {
    sim::Json arr = sim::Json::array();
    for (const auto& p : g->series) {
      sim::Json point = sim::Json::array();
      point.push_back(sim::Json(p.time));
      point.push_back(sim::Json(p.value));
      arr.push_back(std::move(point));
    }
    out.set(g->name, std::move(arr));
  }
  return out;
}

}  // namespace

ScenarioResults run_fat_tree_sharded(const FatTreeScenarioConfig& cfg) {
  const char* metrics_dir = std::getenv("HWATCH_METRICS_DIR");
  const bool detect = cfg.detect_incidents || env_flag("HWATCH_INCIDENTS");
  const bool collect =
      cfg.collect_metrics || metrics_dir != nullptr || detect;
  const char* trace_dir = std::getenv("HWATCH_TRACE_DIR");
  const bool trace = cfg.trace_spans || trace_dir != nullptr;
  const bool profile = cfg.profile || env_flag("HWATCH_PROFILE");
  const bool progress = env_flag("HWATCH_PROGRESS");
  const char* flight_dir = std::getenv("HWATCH_FLIGHT_DIR");
  const bool flight_forced = env_flag("HWATCH_FLIGHT_DUMP");
  const std::uint64_t epoch_budget_ms =
      sim::ShardTelemetry::epoch_budget_ms_from_env();
  const WallClock::time_point wall0 = WallClock::now();

  unsigned workers = cfg.shards;
  if (workers == 0) workers = shards_from_env();
  if (workers == 0) workers = 1;

  const std::string label =
      cfg.run_label.empty()
          ? "fat_tree_sharded-seed" + std::to_string(cfg.seed)
          : cfg.run_label;

  topo::ShardedFatTreeConfig tcfg;
  tcfg.k = cfg.k;
  tcfg.hosts = cfg.hosts;
  tcfg.link_rate = cfg.link_rate;
  tcfg.base_rtt = cfg.base_rtt;
  tcfg.qdisc = cfg.aqm.make_factory(cfg.link_rate);
  tcfg.seed = cfg.seed;
  tcfg.inbox_capacity = cfg.inbox_capacity;
  topo::ShardedFatTree tree = topo::build_sharded_fat_tree(tcfg);
  const std::size_t shard_count = tree.shards.size();

  for (std::size_t s = 0; s < shard_count; ++s) {
    sim::SimContext& ctx = *tree.shards[s].ctx;
    if (collect) ctx.metrics().set_enabled(true);
    if (trace) {
      ctx.tracer().set_id_base(static_cast<std::uint64_t>(s) << 40);
      ctx.tracer().set_enabled(true);
    }
    if (profile) ctx.profiler().set_enabled(true);
  }

  // One incident detector per logical shard: every hook fires on the
  // shard's own context, episode state never crosses a shard boundary,
  // and the end-of-run fold walks the shards in order — so the
  // incidents section is a pure function of (config, seed),
  // byte-identical across worker counts.
  std::vector<std::unique_ptr<stats::IncidentDetector>> doctors;
  if (detect) {
    doctors.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      auto doctor = std::make_unique<stats::IncidentDetector>();
      tree.shards[s].ctx->set_incident_sink(doctor.get());
      for (const auto& l : tree.shards[s].net->links()) {
        const std::uint32_t id = doctor->register_queue(
            l->name(), l->qdisc().capacity_packets());
        l->qdisc().attach_incident_sink(doctor.get(), id);
      }
      doctors.push_back(std::move(doctor));
    }
  }

  // Shard telemetry: deterministic counters whenever the manifest wants
  // them, wall-clock timelines only for the wall-clock consumers.
  const bool wall_spans = trace || profile;
  const bool telemetry_on = cfg.shard_telemetry || collect || wall_spans ||
                            progress || epoch_budget_ms > 0 ||
                            flight_dir != nullptr || flight_forced;
  std::optional<sim::ShardTelemetry> tel;
  if (telemetry_on) {
    sim::ShardTelemetry::Config tc;
    tc.shard_count = shard_count;
    tc.workers = workers;
    tc.label = label;
    tc.lookahead = tree.lookahead;
    tc.wall_spans = wall_spans;
    tc.progress = progress;
    tc.incidents = detect;
    tc.epoch_budget_ms = epoch_budget_ms;
    if (flight_dir != nullptr) tc.flight_dir = flight_dir;
    tel.emplace(std::move(tc));
  }

  // HWatch shims, per shard: each host's shim forks from its own
  // shard's RNG, so the probe schedule is a pure function of
  // (seed, shard), untouched by worker count.
  std::vector<std::unique_ptr<core::HypervisorShim>> shims;
  std::vector<std::pair<std::size_t, std::size_t>> shim_range(shard_count,
                                                             {0, 0});
  if (cfg.hwatch_enabled) {
    for (std::size_t s = 0; s < shard_count; ++s) {
      auto& shard = tree.shards[s];
      shim_range[s].first = shims.size();
      for (net::Host* host : shard.hosts) {
        shims.push_back(core::install_hwatch(*shard.net, *host, cfg.hwatch,
                                             shard.ctx->rng().fork()));
      }
      shim_range[s].second = shims.size();
    }
  }

  // Permutation workload.  A flow lives in its SOURCE host's shard (the
  // sender runs there); the sink runs in the destination shard, bound
  // to a port allocated by the destination shard's manager.
  std::vector<std::unique_ptr<workload::TrafficManager>> tms;
  tms.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    tms.push_back(
        std::make_unique<workload::TrafficManager>(*tree.shards[s].net));
  }
  const std::size_t n_hosts = tree.hosts.size();
  const std::uint32_t hosts_per_edge = tree.plan.hosts_per_edge;
  const std::uint64_t total_flows =
      static_cast<std::uint64_t>(n_hosts) * cfg.flows_per_host;
  std::uint64_t flow_idx = 0;
  for (std::size_t i = 0; i < n_hosts; ++i) {
    const std::size_t src_shard = i / hosts_per_edge;
    const std::size_t j = (i + n_hosts / 2 + 1) % n_hosts;
    const std::size_t dst_shard = j / hosts_per_edge;
    for (std::uint32_t f = 0; f < cfg.flows_per_host; ++f, ++flow_idx) {
      workload::FlowSpec spec;
      spec.src = tree.hosts[i];
      spec.dst = tree.hosts[j];
      spec.dst_net = tree.shards[dst_shard].net.get();
      spec.dst_port = tms[dst_shard]->next_port(*spec.dst);
      spec.transport = cfg.transport;
      spec.tcp = cfg.tcp;
      spec.bytes = cfg.flow_bytes;
      spec.start = total_flows > 0
                       ? static_cast<sim::TimePs>(
                             (static_cast<std::uint64_t>(cfg.start_spread) *
                              flow_idx) /
                             total_flows)
                       : 0;
      spec.klass = stats::FlowClass::kShort;
      spec.epoch = f;
      tms[src_shard]->add_flow(spec);
    }
  }

  // Per-shard gauges + samplers.  Every closure reads only shard-local
  // deterministic state (the shard's links, transports, shims, and the
  // consumer-side drained counter), and each sampler ticks on its own
  // shard's scheduler — so the series are byte-identical across worker
  // counts.  Inbox DEPTH is deliberately not a gauge: mid-run it
  // depends on producer timing.
  std::vector<std::unique_ptr<stats::MetricsSampler>> samplers;
  if (collect) {
    for (std::size_t s = 0; s < shard_count; ++s) {
      auto& shard = tree.shards[s];
      sim::MetricsRegistry& m = shard.ctx->metrics();
      const std::string prefix = "shard" + std::to_string(s) + ".";
      const net::Network* net = shard.net.get();
      m.register_gauge(prefix + "net.queued_pkts_total", [net] {
        std::size_t n = 0;
        for (const auto& l : net->links()) n += l->qdisc().len_packets();
        return static_cast<double>(n);
      });
      const workload::TrafficManager* tm = tms[s].get();
      m.register_gauge(prefix + "tcp.bytes_in_flight", [tm] {
        return static_cast<double>(tm->total_bytes_in_flight());
      });
      const std::vector<net::CrossShardChannel*>* ingress = &shard.ingress;
      m.register_gauge(prefix + "shard.ingress.drained", [ingress] {
        std::uint64_t n = 0;
        for (const net::CrossShardChannel* ch : *ingress) {
          n += ch->inbox().popped();
        }
        return static_cast<double>(n);
      });
      if (cfg.hwatch_enabled) {
        const std::size_t lo = shim_range[s].first;
        const std::size_t hi = shim_range[s].second;
        const auto* all = &shims;
        m.register_gauge(prefix + "hwatch.flow_table_entries",
                         [all, lo, hi] {
                           std::size_t n = 0;
                           for (std::size_t i = lo; i < hi; ++i) {
                             n += (*all)[i]->flow_table().size();
                           }
                           return static_cast<double>(n);
                         });
      }
      samplers.push_back(std::make_unique<stats::MetricsSampler>(
          *shard.ctx, cfg.sample_interval, cfg.duration));
    }
  }

  // Conservative epochs to the horizon.
  std::vector<ShardRun> shard_tasks(shard_count);
  sim::ShardGroup group(workers);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shard_tasks[s].ctx = tree.shards[s].ctx.get();
    shard_tasks[s].ingress = &tree.shards[s].ingress;
    shard_tasks[s].telemetry = tel ? &*tel : nullptr;
    shard_tasks[s].doctor = detect ? doctors[s].get() : nullptr;
    shard_tasks[s].shard_id = s;
    group.add(&shard_tasks[s]);
  }
  group.set_telemetry(tel ? &*tel : nullptr);
  std::uint64_t run_wall_ns = 0;
  if (profile) {
    const std::uint64_t t0 = tree.shards[0].ctx->profiler().now_ns();
    group.run(cfg.duration, tree.lookahead);
    run_wall_ns = tree.shards[0].ctx->profiler().now_ns() - t0;
  } else {
    group.run(cfg.duration, tree.lookahead);
  }
  if (flight_forced && tel) tel->dump_flight("forced");
  // Close every still-open episode at each shard's own horizon time —
  // shard-local state, so the order of this loop cannot matter.
  for (std::size_t s = 0; s < doctors.size(); ++s) {
    doctors[s]->finalize(tree.shards[s].ctx->now());
  }

  ScenarioResults res;
  for (std::size_t s = 0; s < shard_count; ++s) {
    auto records = tms[s]->collect_records();
    res.records.insert(res.records.end(), records.begin(), records.end());
    res.fabric_drops += tree.shards[s].net->total_queue_drops();
    res.retransmits += tms[s]->total_retransmits();
    res.timeouts += tms[s]->total_timeouts();
    res.events_executed += tree.shards[s].ctx->scheduler().executed();
  }
  for (const auto& shim : shims) {
    res.shim.probes_injected += shim->stats().probes_injected;
    res.shim.probe_bytes_injected += shim->stats().probe_bytes_injected;
    res.shim.synacks_rewritten += shim->stats().synacks_rewritten;
    res.shim.acks_rewritten += shim->stats().acks_rewritten;
    res.shim.window_decisions += shim->stats().window_decisions;
    res.shim.flows_tracked += shim->flow_table().created();
  }
  if (tel) res.shard_imbalance = tel->imbalance_ratio();

  if (collect) {
    // Per-shard harvest into each shard's own registry, then a pure
    // merge — no counter ever crosses a context boundary.
    std::uint64_t peak_depth_max = 0;
    for (std::size_t s = 0; s < shard_count; ++s) {
      sim::MetricsRegistry& m = tree.shards[s].ctx->metrics();
      const sim::Scheduler& sched = tree.shards[s].ctx->scheduler();
      m.counter("sched.events.executed").inc(sched.executed());
      m.counter("sched.events.scheduled").inc(sched.scheduled());
      m.counter("sched.events.cancelled").inc(sched.cancelled());
      m.counter("sched.heap_peak").inc(sched.heap_peak());
      m.counter("net.fabric_drops")
          .inc(tree.shards[s].net->total_queue_drops());
      m.counter("tcp.retransmits").inc(tms[s]->total_retransmits());
      m.counter("tcp.timeouts").inc(tms[s]->total_timeouts());
      std::uint64_t pushed = 0, spilled = 0, drained = 0;
      for (const net::CrossShardChannel* ch : tree.shards[s].ingress) {
        pushed += ch->inbox().pushed();
        spilled += ch->inbox().spilled();
        drained += ch->inbox().popped();
        peak_depth_max =
            std::max(peak_depth_max, ch->inbox().peak_depth());
      }
      m.counter("shard.ingress.pushed").inc(pushed);
      m.counter("shard.ingress.spilled").inc(spilled);
      m.counter("shard.ingress.drained").inc(drained);
    }
    // Global maxima don't merge by summation, so shard 0's registry
    // hosts them (like the FCT histogram below).
    tree.shards[0].ctx->metrics().counter("shard.ingress.peak_depth")
        .inc(peak_depth_max);
    // FCT histogram over the merged records (bucket counts are
    // order-independent); hosted by shard 0's registry.
    sim::Histogram& fct = tree.shards[0].ctx->metrics().histogram(
        "tcp.fct_ms", sim::Histogram::exponential_bounds(0.05, 2.0, 18));
    for (const auto& r : res.records) {
      if (r.completed) fct.record(r.fct_ms());
    }
    std::vector<sim::MetricsSnapshot> parts;
    parts.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      parts.push_back(tree.shards[s].ctx->metrics().snapshot());
    }

    sim::Json config = sim::Json::object();
    config.set("k", cfg.k);
    config.set("hosts_total", static_cast<std::uint64_t>(n_hosts));
    config.set("hosts_per_edge", hosts_per_edge);
    config.set("link_rate_gbps", cfg.link_rate.gbits_per_sec());
    config.set("base_rtt_ps", cfg.base_rtt);
    config.set("aqm", sharded_aqm_json(cfg.aqm));
    config.set("flows_per_host", cfg.flows_per_host);
    config.set("flow_bytes", cfg.flow_bytes);
    config.set("start_spread_ps", cfg.start_spread);
    config.set("transport", tcp::to_string(cfg.transport));
    config.set("hwatch_enabled", cfg.hwatch_enabled);
    config.set("duration_ps", cfg.duration);
    config.set("sample_interval_ps", cfg.sample_interval);
    config.set("seed", cfg.seed);
    config.set("shards_logical", tree.plan.shard_count);
    config.set("lookahead_ps", tree.lookahead);
    config.set("cross_links", tree.cross_links);
    config.set("inbox_capacity",
               static_cast<std::uint64_t>(cfg.inbox_capacity));

    sim::Json results = sim::Json::object();
    results.set("flows", res.records.size());
    std::size_t completed = 0;
    for (const auto& r : res.records) completed += r.completed ? 1 : 0;
    results.set("completed_flows", completed);
    results.set("incomplete_short_flows", res.incomplete_short_flows());
    results.set("fabric_drops", res.fabric_drops);
    results.set("retransmits", res.retransmits);
    results.set("timeouts", res.timeouts);
    results.set("events_executed", res.events_executed);
    results.set("epochs", group.epochs());
    results.set("shard_imbalance", res.shard_imbalance);
    sim::Json shim_json = sim::Json::object();
    shim_json.set("probes_injected", res.shim.probes_injected);
    shim_json.set("probe_bytes_injected", res.shim.probe_bytes_injected);
    shim_json.set("synacks_rewritten", res.shim.synacks_rewritten);
    shim_json.set("acks_rewritten", res.shim.acks_rewritten);
    shim_json.set("window_decisions", res.shim.window_decisions);
    shim_json.set("flows_tracked", res.shim.flows_tracked);
    results.set("shim", std::move(shim_json));
    results.set("fct_ms_percentiles",
                stats::percentiles_json(stats::percentiles(fct)));

    sim::RunManifest& man = res.manifest;
    man.name = label;
    man.scenario_kind = "fat_tree_sharded";
    man.seed = cfg.seed;
    man.config = std::move(config);
    man.results = std::move(results);
    if (tel) man.shards = tel->shards_json();
    if (detect) {
      // Shard-ordered fold; incidents_json() re-sorts globally by
      // (start, kind, location, ...), so the result is independent of
      // the partition's shard numbering details and of worker count.
      std::vector<stats::Incident> all;
      for (const auto& d : doctors) {
        all.insert(all.end(), d->incidents().begin(),
                   d->incidents().end());
      }
      man.incidents = stats::incidents_json(std::move(all));
    }
    man.metrics = sim::metrics_json(sim::merge_snapshots(parts));
    man.series = merged_series_json(samplers);
    man.wall_time_ms = wall_ms_since(wall0);
    man.sweep_threads = workers;
    res.has_manifest = true;
    if (metrics_dir != nullptr && man.write_file(metrics_dir).empty()) {
      throw std::runtime_error(
          std::string("HWATCH_METRICS_DIR=\"") + metrics_dir +
          "\": cannot create the directory or write the manifest file; "
          "point HWATCH_METRICS_DIR at a writable path");
    }
  }

  if (trace) {
    std::vector<const sim::SpanTracer*> tracers;
    tracers.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      tree.shards[s].ctx->tracer().close_open_spans(
          tree.shards[s].ctx->now());
      tracers.push_back(&tree.shards[s].ctx->tracer());
    }
    std::ostringstream spans;
    sim::dump_jsonl_merged(tracers, spans);
    res.trace_spans_jsonl = spans.str();
    std::ostringstream chrome;
    sim::export_chrome_merged(tracers, chrome, label);
    res.trace_chrome = chrome.str();
    // The per-worker epoch timeline is wall-clock data: a separate
    // artifact, never merged into the byte-compared exports above.
    if (tel) {
      std::ostringstream wtrace;
      tel->export_chrome_workers(wtrace, label);
      res.trace_workers_chrome = wtrace.str();
    }
    if (trace_dir != nullptr) {
      const std::string stem = sim::RunManifest::sanitize(label);
      std::error_code ec;
      std::filesystem::create_directories(trace_dir, ec);
      const auto write = [&](const char* suffix, const std::string& body) {
        const std::filesystem::path path =
            std::filesystem::path(trace_dir) / (stem + suffix);
        std::ofstream out(path, std::ios::binary);
        out << body;
        if (!out) {
          throw std::runtime_error(
              std::string("HWATCH_TRACE_DIR=\"") + trace_dir +
              "\": cannot create the directory or write \"" +
              path.string() + "\"; point HWATCH_TRACE_DIR at a writable "
              "path");
        }
      };
      write(".spans.jsonl", res.trace_spans_jsonl);
      write(".trace.json", res.trace_chrome);
      if (!res.trace_workers_chrome.empty()) {
        write(".workers.trace.json", res.trace_workers_chrome);
      }
    }
  }

  if (profile) {
    // One merged self-profile across the shards (stderr: wall times
    // never belong in result streams), then the straggler report.
    sim::SelfProfiler merged;
    sim::EventLoopStats loop;
    for (std::size_t s = 0; s < shard_count; ++s) {
      merged.merge_from(tree.shards[s].ctx->profiler());
      const sim::Scheduler& sched = tree.shards[s].ctx->scheduler();
      loop.events_executed += sched.executed();
      loop.events_scheduled += sched.scheduled();
      loop.heap_peak = std::max(loop.heap_peak, sched.heap_peak());
    }
    loop.wall_ns = run_wall_ns;
    merged.report(std::cerr, &loop);
    if (tel) tel->report(std::cerr);
  }

  return res;
}

}  // namespace hwatch::api
