// One-call experiment harness.
//
// ScenarioConfig structs describe the paper's set-ups declaratively
// (topology, AQM, tenant transport mix, workload, HWatch on/off) and
// run_dumbbell / run_leaf_spine execute them, returning per-flow records
// and bottleneck time-series.  Every example and every bench binary goes
// through this API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hwatch/shim.hpp"
#include "net/priority_queue.hpp"
#include "net/queue.hpp"
#include "sim/manifest.hpp"
#include "stats/cdf.hpp"
#include "stats/flow_record.hpp"
#include "stats/flow_timeline.hpp"
#include "stats/timeseries.hpp"
#include "tcp/common.hpp"
#include "topo/dumbbell.hpp"
#include "topo/leaf_spine.hpp"
#include "workload/traffic.hpp"

namespace hwatch::api {

enum class AqmKind : std::uint8_t {
  kDropTail = 0,
  kRed,        // RED + ECN marking (gentle)
  kDctcpStep,  // instantaneous step marking at K
  kPriority,   // two-band strict priority by DSCP (preemptive baseline)
};

std::string to_string(AqmKind kind);

struct AqmConfig {
  AqmKind kind = AqmKind::kDropTail;
  /// Paper: 250-packet bottleneck buffer.
  std::uint64_t buffer_packets = 250;
  /// Step-marking threshold K (paper: 20-25% of the buffer).
  std::uint64_t mark_threshold_packets = 50;
  /// RED parameters; thresholds default to DCTCP-inherited settings
  /// (mark aggressively around mark_threshold_packets).
  double red_max_p = 0.1;
  double red_weight = 0.002;

  /// Byte-based buffering (real switch behaviour): the hard bound is
  /// buffer_packets * mtu bytes and marking thresholds scale likewise,
  /// so a 38-byte HWatch probe costs 38 bytes of buffer, not a full
  /// packet slot.  Packet mode reproduces ns-2's queue-in-packets.
  bool byte_mode = false;
  std::uint32_t mtu_bytes = 1500;

  net::QdiscFactory make_factory(sim::DataRate link_rate) const;
};

/// Aggregated HWatch shim counters across all hosts.
struct ShimAggregate {
  std::uint64_t probes_injected = 0;
  std::uint64_t probe_bytes_injected = 0;
  std::uint64_t synacks_rewritten = 0;
  std::uint64_t acks_rewritten = 0;
  std::uint64_t window_decisions = 0;
  std::uint64_t flows_tracked = 0;
};

struct ScenarioResults {
  std::vector<stats::FlowRecord> records;

  stats::TimeSeries queue_packets;   // bottleneck occupancy over time
  stats::TimeSeries utilization;     // bottleneck utilization over time
  stats::TimeSeries throughput_gbps; // delivered rate over time

  net::QueueStats bottleneck_queue;
  std::uint64_t fabric_drops = 0;  // across every queue
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t events_executed = 0;
  ShimAggregate shim;

  /// Filled when metrics collection ran (config flag or
  /// HWATCH_METRICS_DIR); see sim::RunManifest for the schema.
  sim::RunManifest manifest;
  bool has_manifest = false;

  /// Filled when span tracing ran (config flag or HWATCH_TRACE_DIR):
  /// the per-flow breakdown plus the serialized traces — `trace_chrome`
  /// is Chrome trace-event JSON (schema hwatch.trace_export/v1, loads
  /// in Perfetto), `trace_spans_jsonl` the span JSONL dump.
  stats::FlowTimeline timeline;
  bool has_timeline = false;
  std::string trace_chrome;
  std::string trace_spans_jsonl;

  /// Sharded runs only: per-worker drain/run/barrier epoch timelines as
  /// Chrome trace-event JSON (same hwatch.trace_export/v1 schema).
  /// Wall-clock data, so it is a SEPARATE artifact — never merged into
  /// `trace_chrome`, which is byte-compared across worker counts.
  std::string trace_workers_chrome;
  /// Sharded runs only: per-epoch max/mean shard-events ratio (1.0 =
  /// perfectly balanced, 0 = no events / not a sharded run).
  /// Deterministic — derived from event counts, not wall time.
  double shard_imbalance = 0.0;

  // ---- convenience views ----
  std::vector<stats::FlowRecord> short_flows() const;
  std::vector<stats::FlowRecord> long_flows() const;
  /// FCTs (ms) of completed short flows.
  stats::Cdf short_fct_cdf_ms() const;
  /// Goodputs (Gb/s) of long flows.
  stats::Cdf long_goodput_cdf_gbps() const;
  /// Per-epoch mean FCT (ms) of short flows — "Avg FCT over the incast
  /// rounds" as the paper's CDFs report.
  stats::Cdf epoch_mean_fct_cdf_ms() const;
  double mean_utilization() const;
  std::size_t incomplete_short_flows() const;
};

struct DumbbellScenarioConfig {
  std::uint32_t pairs = 50;
  sim::DataRate edge_rate = sim::DataRate::gbps(10);
  sim::DataRate bottleneck_rate = sim::DataRate::gbps(10);
  sim::TimePs base_rtt = sim::microseconds(100);

  AqmConfig edge_aqm;  // defaults to a deep drop-tail edge
  AqmConfig core_aqm;

  /// Long-lived tenants (consume the first sources) and short-lived
  /// tenants (consume the following ones).
  std::vector<workload::SenderGroup> long_groups;
  std::vector<workload::SenderGroup> short_groups;
  workload::IncastConfig incast;
  sim::TimePs bulk_start_spread = sim::microseconds(100);

  bool hwatch_enabled = false;
  core::HWatchConfig hwatch;

  sim::TimePs duration = sim::seconds(1.0);
  sim::TimePs sample_interval = sim::milliseconds(1);
  std::uint64_t seed = 1;

  /// Enables the per-context MetricsRegistry (counters, histograms,
  /// gauge sampling) and fills results.manifest.  Also forced on when
  /// the HWATCH_METRICS_DIR environment variable is set, in which case
  /// the manifest is additionally written to that directory.
  bool collect_metrics = false;
  /// Manifest name / output file stem; "" -> "<kind>-seed<seed>".
  std::string run_label;

  /// Enables the per-context SpanTracer and fills results.timeline /
  /// trace_chrome / trace_spans_jsonl.  Also forced on when the
  /// HWATCH_TRACE_DIR environment variable is set, in which case
  /// "<label>.spans.jsonl" and "<label>.trace.json" are written there.
  bool trace_spans = false;
  /// Enables the self-profiler; the report goes to stderr at end of
  /// run.  Also forced on by HWATCH_PROFILE=1.
  bool profile = false;

  /// Enables the congestion-incident detectors (stats::IncidentDetector)
  /// and fills the manifest `incidents` section (implies
  /// collect_metrics).  Also forced on by HWATCH_INCIDENTS=1.  Off, the
  /// hook sites cost one predictable branch each and the manifest is
  /// byte-identical to a detector-less build.
  bool detect_incidents = false;
};

ScenarioResults run_dumbbell(const DumbbellScenarioConfig& cfg);

struct LeafSpineScenarioConfig {
  std::uint32_t racks = 4;
  std::uint32_t hosts_per_rack = 21;
  sim::DataRate link_rate = sim::DataRate::gbps(1);
  sim::TimePs base_rtt = sim::microseconds(200);

  AqmConfig edge_aqm;
  AqmConfig fabric_aqm;

  /// Bulk (iperf-like) flows from the sending racks towards hosts in the
  /// receiving rack (the last rack).
  std::uint32_t bulk_flows = 42;
  workload::SenderGroup bulk_template;  // count ignored

  /// Web workload: `web_servers_per_rack` servers in each sending rack
  /// answer `web.connections_per_pair` parallel requests from
  /// `web_clients` client hosts in the receiving rack.
  std::uint32_t web_servers_per_rack = 7;
  std::uint32_t web_clients = 6;
  workload::WebWaveConfig web;
  tcp::Transport web_transport = tcp::Transport::kNewReno;
  tcp::TcpConfig web_tcp;

  /// Arrival pattern: open-loop waves (default; epochs of simultaneous
  /// requests) or closed loop (each connection slot fetches objects
  /// back to back, like the testbed's generators).
  enum class WebPattern : std::uint8_t { kOpenWaves = 0, kClosedLoop };
  WebPattern web_pattern = WebPattern::kOpenWaves;
  workload::ClosedLoopConfig closed_loop;

  bool hwatch_enabled = false;
  core::HWatchConfig hwatch;

  sim::TimePs duration = sim::seconds(6.0);
  sim::TimePs sample_interval = sim::milliseconds(5);
  std::uint64_t seed = 1;

  /// Same semantics as DumbbellScenarioConfig::collect_metrics.
  bool collect_metrics = false;
  std::string run_label;

  /// Same semantics as DumbbellScenarioConfig::trace_spans / profile /
  /// detect_incidents.
  bool trace_spans = false;
  bool profile = false;
  bool detect_incidents = false;
};

ScenarioResults run_leaf_spine(const LeafSpineScenarioConfig& cfg);

}  // namespace hwatch::api
