// Sharded scenario runner: one large fat-tree fabric executed as a
// conservative-lookahead parallel simulation (one SimContext per edge
// shard, ShardGroup time windows bounded by the minimum cross-shard
// propagation delay).
//
// Where SweepRunner parallelizes ACROSS scenarios (one context per
// sweep point), ShardedRunner parallelizes WITHIN one scenario.  The
// same determinism contract carries over: the logical partition is
// fixed by the topology, worker threads only execute it, so the
// manifest and trace exports are byte-identical for every value of
// `shards` / HWATCH_SHARDS.
#pragma once

#include <cstdint>
#include <string>

#include "api/scenario.hpp"
#include "sim/annotations.hpp"
#include "topo/shard.hpp"

namespace hwatch::api {

struct FatTreeScenarioConfig {
  std::uint32_t k = 8;      // must be even and >= 2
  std::uint32_t hosts = 0;  // total hosts; 0 = classic k^3/4
  sim::DataRate link_rate = sim::DataRate::gbps(10);
  sim::TimePs base_rtt = sim::microseconds(100);
  AqmConfig aqm;  // every port

  /// Permutation workload: host i opens `flows_per_host` short flows of
  /// `flow_bytes` towards host (i + N/2 + 1) mod N — a fixed derangement
  /// that keeps most traffic cross-pod (and therefore cross-shard).
  /// Starts are staggered evenly over [0, start_spread).
  std::uint32_t flows_per_host = 1;
  std::uint64_t flow_bytes = 100'000;
  sim::TimePs start_spread = sim::milliseconds(1);
  tcp::Transport transport = tcp::Transport::kNewReno;
  tcp::TcpConfig tcp;

  bool hwatch_enabled = false;
  core::HWatchConfig hwatch;

  sim::TimePs duration = sim::milliseconds(50);
  /// Gauge-sampling interval (per-shard MetricsSampler ticks on each
  /// shard's own scheduler — deterministic, unlike wall-clock sampling).
  sim::TimePs sample_interval = sim::milliseconds(1);
  std::uint64_t seed = 1;

  /// Worker threads executing the shards; 0 = HWATCH_SHARDS (or 1 when
  /// unset).  Never changes the logical partition — results are
  /// byte-identical for every value.
  unsigned shards = 0;
  std::size_t inbox_capacity = 1024;

  /// Same semantics as the other scenario configs: forced on by
  /// HWATCH_METRICS_DIR / HWATCH_TRACE_DIR respectively.
  bool collect_metrics = false;
  std::string run_label;
  bool trace_spans = false;
  /// Enables the per-shard self-profilers (merged into one stderr
  /// report) plus the shard-telemetry straggler report.  Also forced on
  /// by HWATCH_PROFILE=1.
  bool profile = false;
  /// Enables just the deterministic shard-telemetry counter plane
  /// (results.shard_imbalance and the manifest `shards` section input)
  /// without metrics/gauges/traces — zero extra scheduler events, so
  /// bench event counts stay untouched.  Implied by collect_metrics,
  /// trace_spans, profile and the telemetry env knobs.
  bool shard_telemetry = false;

  /// Enables one stats::IncidentDetector per logical shard and fills
  /// the manifest `incidents` section (shard-ordered fold, globally
  /// sorted — byte-identical across worker counts; implies
  /// collect_metrics).  Also forced on by HWATCH_INCIDENTS=1.
  bool detect_incidents = false;
};

/// Parses HWATCH_SHARDS: 0 when unset; throws std::invalid_argument
/// (naming the variable and value) when set but not a positive integer.
unsigned shards_from_env();

/// Runs the sharded fat-tree scenario.  Flow records are concatenated
/// in shard order; the manifest merges the per-shard registries
/// (counters summed, histograms bucket-merged), carries a `shards`
/// section (per-shard per-epoch telemetry + imbalance stats, schema
/// hwatch.shard_telemetry/v1) and shard-prefixed gauge series; the
/// trace export k-way merges per-shard tracers.  All of it is
/// byte-identical across worker counts.  Wall-clock observability —
/// the per-worker epoch timeline (results.trace_workers_chrome, also
/// written as "<label>.workers.trace.json" under HWATCH_TRACE_DIR),
/// the HWATCH_PROGRESS heartbeat, the HWATCH_EPOCH_BUDGET_MS flight
/// watchdog (dumps hwatch.shard_flight/v1 JSON to HWATCH_FLIGHT_DIR or
/// stderr; HWATCH_FLIGHT_DUMP=1 forces a dump at end of run) — stays
/// out of every deterministic artifact.
ScenarioResults run_fat_tree_sharded(const FatTreeScenarioConfig& cfg);

/// Thin fixed-thread-count front end, symmetric with SweepRunner.
class HWATCH_SHARD_SHARED ShardedRunner {
 public:
  /// `threads` = 0 resolves HWATCH_SHARDS at construction (1 when
  /// unset).
  explicit ShardedRunner(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Runs with this runner's thread count (overrides cfg.shards).
  ScenarioResults run(FatTreeScenarioConfig cfg) const;

 private:
  unsigned threads_;
};

}  // namespace hwatch::api
