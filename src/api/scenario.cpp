#include "api/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "sim/context.hpp"
#include "stats/incident.hpp"

namespace hwatch::api {

std::string to_string(AqmKind kind) {
  switch (kind) {
    case AqmKind::kDropTail:
      return "droptail";
    case AqmKind::kRed:
      return "red-ecn";
    case AqmKind::kDctcpStep:
      return "dctcp-step";
    case AqmKind::kPriority:
      return "priority2";
  }
  return "?";
}

net::QdiscFactory AqmConfig::make_factory(sim::DataRate link_rate) const {
  const net::QueueLimits limits =
      byte_mode
          ? net::QueueLimits::in_bytes(buffer_packets *
                                       std::uint64_t{mtu_bytes})
          : net::QueueLimits::in_packets(buffer_packets);
  switch (kind) {
    case AqmKind::kDropTail:
      return [limits] { return std::make_unique<net::DropTailQueue>(limits); };
    case AqmKind::kPriority:
      return [limits] { return std::make_unique<net::PriorityQueue>(limits); };
    case AqmKind::kDctcpStep: {
      if (byte_mode) {
        const std::uint64_t k_bytes =
            mark_threshold_packets * std::uint64_t{mtu_bytes};
        return [limits, k_bytes] {
          return std::make_unique<net::DctcpThresholdQueue>(limits, k_bytes);
        };
      }
      return net::make_dctcp_factory(buffer_packets,
                                     mark_threshold_packets);
    }
    case AqmKind::kRed: {
      net::RedConfig red;
      // Floyd-style thresholds around the configured marking point.
      red.min_th_pkts = static_cast<double>(mark_threshold_packets);
      red.max_th_pkts =
          std::max<double>(static_cast<double>(mark_threshold_packets) * 3,
                           mark_threshold_packets + 1.0);
      red.max_p = red_max_p;
      red.weight = red_weight;
      red.gentle = true;
      red.ecn = true;
      red.mean_pkt_time = link_rate.transmission_time(mtu_bytes);
      red.byte_mode = byte_mode;
      red.mean_pkt_bytes = mtu_bytes;
      return [limits, red] {
        return std::make_unique<net::RedQueue>(limits, red);
      };
    }
  }
  throw std::logic_error("unknown AqmKind");
}

std::vector<stats::FlowRecord> ScenarioResults::short_flows() const {
  std::vector<stats::FlowRecord> out;
  for (const auto& r : records) {
    if (r.klass == stats::FlowClass::kShort) out.push_back(r);
  }
  return out;
}

std::vector<stats::FlowRecord> ScenarioResults::long_flows() const {
  std::vector<stats::FlowRecord> out;
  for (const auto& r : records) {
    if (r.klass == stats::FlowClass::kLong) out.push_back(r);
  }
  return out;
}

stats::Cdf ScenarioResults::short_fct_cdf_ms() const {
  return stats::Cdf(stats::fct_ms_samples(short_flows()));
}

stats::Cdf ScenarioResults::long_goodput_cdf_gbps() const {
  return stats::Cdf(stats::goodput_gbps_samples(long_flows()));
}

stats::Cdf ScenarioResults::epoch_mean_fct_cdf_ms() const {
  std::map<std::uint32_t, std::pair<double, std::size_t>> per_epoch;
  for (const auto& r : records) {
    if (r.klass != stats::FlowClass::kShort || !r.completed) continue;
    auto& [sum, n] = per_epoch[r.epoch];
    sum += r.fct_ms();
    ++n;
  }
  stats::Cdf cdf;
  for (const auto& [epoch, acc] : per_epoch) {
    (void)epoch;
    if (acc.second > 0) {
      cdf.add(acc.first / static_cast<double>(acc.second));
    }
  }
  return cdf;
}

double ScenarioResults::mean_utilization() const {
  if (utilization.empty()) return 0;
  double sum = 0;
  for (const auto& p : utilization) sum += p.value;
  return sum / static_cast<double>(utilization.size());
}

std::size_t ScenarioResults::incomplete_short_flows() const {
  std::size_t n = 0;
  for (const auto& r : records) {
    if (r.klass == stats::FlowClass::kShort && !r.completed) ++n;
  }
  return n;
}

namespace {

/// Installs HWatch on every host; returns the owning vector.
std::vector<std::unique_ptr<core::HypervisorShim>> install_shims(
    net::Network& net, const core::HWatchConfig& cfg, sim::Rng& rng) {
  std::vector<std::unique_ptr<core::HypervisorShim>> shims;
  shims.reserve(net.hosts().size());
  for (net::Host* host : net.hosts()) {
    shims.push_back(core::install_hwatch(net, *host, cfg, rng.fork()));
  }
  return shims;
}

ShimAggregate aggregate_shims(
    const std::vector<std::unique_ptr<core::HypervisorShim>>& shims) {
  ShimAggregate agg;
  for (const auto& s : shims) {
    agg.probes_injected += s->stats().probes_injected;
    agg.probe_bytes_injected += s->stats().probe_bytes_injected;
    agg.synacks_rewritten += s->stats().synacks_rewritten;
    agg.acks_rewritten += s->stats().acks_rewritten;
    agg.window_decisions += s->stats().window_decisions;
    agg.flows_tracked += s->flow_table().created();
  }
  return agg;
}

// ---- observability wiring -------------------------------------------
//
// Everything below runs only when metrics collection is on (config flag
// or HWATCH_METRICS_DIR); the default path does none of this, so the
// simulator's hot loop is untouched.

sim::Json aqm_json(const AqmConfig& a) {
  sim::Json j = sim::Json::object();
  j.set("kind", to_string(a.kind));
  j.set("buffer_packets", a.buffer_packets);
  j.set("mark_threshold_packets", a.mark_threshold_packets);
  j.set("byte_mode", a.byte_mode);
  return j;
}

/// Attaches the bottleneck depth histogram and registers the live
/// gauges the MetricsSampler snapshots every sample interval.  Gauge
/// closures reference scenario-scope objects; the sampler only fires
/// inside run_until, while they are all alive.
void wire_gauges(
    sim::SimContext& ctx, net::Link& bottleneck, std::uint64_t buffer_pkts,
    const net::Network& net, const workload::TrafficManager& tm,
    const std::vector<std::unique_ptr<core::HypervisorShim>>& shims) {
  sim::MetricsRegistry& m = ctx.metrics();
  const double width =
      std::max(1.0, static_cast<double>(buffer_pkts) / 25.0);
  bottleneck.qdisc().attach_depth_histogram(&m.histogram(
      "queue.bottleneck.depth_pkts",
      sim::Histogram::linear_bounds(0, width, 26)));
  m.register_gauge("hwatch.flow_table_entries", [&shims] {
    std::size_t n = 0;
    for (const auto& s : shims) n += s->flow_table().size();
    return static_cast<double>(n);
  });
  m.register_gauge("net.queued_pkts_total", [&net] {
    std::size_t n = 0;
    for (const auto& l : net.links()) n += l->qdisc().len_packets();
    return static_cast<double>(n);
  });
  m.register_gauge("queue.bottleneck.depth_bytes", [&bottleneck] {
    return static_cast<double>(bottleneck.qdisc().len_bytes());
  });
  m.register_gauge("queue.bottleneck.depth_pkts", [&bottleneck] {
    return static_cast<double>(bottleneck.qdisc().len_packets());
  });
  m.register_gauge("tcp.bytes_in_flight", [&tm] {
    return static_cast<double>(tm.total_bytes_in_flight());
  });
}

/// Registers every switch queue with the incident detector under its
/// owning link's (globally stable) name.  Call after the topology is
/// built and before the run.
void wire_incidents(const net::Network& net,
                    stats::IncidentDetector& doctor) {
  for (const auto& l : net.links()) {
    const std::uint32_t id =
        doctor.register_queue(l->name(), l->qdisc().capacity_packets());
    l->qdisc().attach_incident_sink(&doctor, id);
  }
}

/// End-of-run harvest: quantities that already have cheap always-on
/// aggregates (QueueStats, scheduler totals, per-flow records) become
/// registry counters/histograms here, at zero hot-path cost.  Returns
/// the completed-flow FCT percentiles for the results section.
stats::Percentiles harvest_metrics(sim::SimContext& ctx,
                                   const ScenarioResults& res) {
  sim::MetricsRegistry& m = ctx.metrics();
  const net::QueueStats& q = res.bottleneck_queue;
  m.counter("queue.bottleneck.enqueued").inc(q.enqueued);
  m.counter("queue.bottleneck.dequeued").inc(q.dequeued);
  m.counter("queue.bottleneck.dropped").inc(q.dropped);
  m.counter("queue.bottleneck.ecn_marked").inc(q.ecn_marked);
  m.counter("net.fabric_drops").inc(res.fabric_drops);
  m.counter("tcp.retransmits").inc(res.retransmits);
  m.counter("tcp.timeouts").inc(res.timeouts);
  const sim::Scheduler& sched = ctx.scheduler();
  m.counter("sched.events.executed").inc(sched.executed());
  m.counter("sched.events.scheduled").inc(sched.scheduled());
  m.counter("sched.events.cancelled").inc(sched.cancelled());
  m.counter("sched.heap_peak").inc(sched.heap_peak());
  sim::Histogram& fct = m.histogram(
      "tcp.fct_ms", sim::Histogram::exponential_bounds(0.05, 2.0, 18));
  for (const auto& r : res.records) {
    if (r.completed) fct.record(r.fct_ms());
  }
  return stats::percentiles(fct);
}

sim::Json results_json(const ScenarioResults& res) {
  sim::Json j = sim::Json::object();
  j.set("flows", res.records.size());
  std::size_t completed = 0;
  for (const auto& r : res.records) completed += r.completed ? 1 : 0;
  j.set("completed_flows", completed);
  j.set("incomplete_short_flows", res.incomplete_short_flows());
  j.set("fabric_drops", res.fabric_drops);
  j.set("retransmits", res.retransmits);
  j.set("timeouts", res.timeouts);
  j.set("events_executed", res.events_executed);
  j.set("mean_utilization", res.mean_utilization());
  sim::Json q = sim::Json::object();
  q.set("enqueued", res.bottleneck_queue.enqueued);
  q.set("dequeued", res.bottleneck_queue.dequeued);
  q.set("dropped", res.bottleneck_queue.dropped);
  q.set("ecn_marked", res.bottleneck_queue.ecn_marked);
  q.set("max_len_pkts", res.bottleneck_queue.max_len_pkts);
  j.set("bottleneck_queue", std::move(q));
  sim::Json s = sim::Json::object();
  s.set("probes_injected", res.shim.probes_injected);
  s.set("probe_bytes_injected", res.shim.probe_bytes_injected);
  s.set("synacks_rewritten", res.shim.synacks_rewritten);
  s.set("acks_rewritten", res.shim.acks_rewritten);
  s.set("window_decisions", res.shim.window_decisions);
  s.set("flows_tracked", res.shim.flows_tracked);
  j.set("shim", std::move(s));
  return j;
}

sim::Json series_json(const stats::MetricsSampler& sampler) {
  std::vector<const stats::MetricsSampler::GaugeSeries*> sorted;
  sorted.reserve(sampler.series().size());
  for (const auto& g : sampler.series()) sorted.push_back(&g);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->name < b->name; });
  sim::Json out = sim::Json::object();
  for (const auto* g : sorted) {
    sim::Json arr = sim::Json::array();
    for (const auto& p : g->series) {
      sim::Json point = sim::Json::array();
      point.push_back(sim::Json(p.time));
      point.push_back(sim::Json(p.value));
      arr.push_back(std::move(point));
    }
    out.set(g->name, std::move(arr));
  }
  return out;
}

/// Harvests, snapshots and (when HWATCH_METRICS_DIR is set) writes the
/// manifest for one finished run.
void finish_manifest(ScenarioResults& res, sim::SimContext& ctx,
                     const std::string& label, const char* kind,
                     std::uint64_t seed, sim::Json config,
                     const stats::MetricsSampler& sampler,
                     double wall_ms, const char* metrics_dir,
                     const stats::IncidentDetector* doctor = nullptr) {
  const stats::Percentiles fct = harvest_metrics(ctx, res);
  sim::RunManifest& man = res.manifest;
  man.name = label.empty()
                 ? std::string(kind) + "-seed" + std::to_string(seed)
                 : label;
  man.scenario_kind = kind;
  man.seed = seed;
  man.config = std::move(config);
  man.results = results_json(res);
  man.results.set("fct_ms_percentiles", stats::percentiles_json(fct));
  if (doctor != nullptr) {
    man.incidents = stats::incidents_json(doctor->incidents());
  }
  man.metrics = sim::metrics_json(ctx.metrics().snapshot());
  man.series = series_json(sampler);
  man.wall_time_ms = wall_ms;
  res.has_manifest = true;
  if (metrics_dir != nullptr && man.write_file(metrics_dir).empty()) {
    throw std::runtime_error(
        std::string("HWATCH_METRICS_DIR=\"") + metrics_dir +
        "\": cannot create the directory or write the manifest file; "
        "point HWATCH_METRICS_DIR at a writable path");
  }
}

/// Label shared by the manifest and the trace files.
std::string run_label_of(const std::string& label, const char* kind,
                         std::uint64_t seed) {
  return label.empty()
             ? std::string(kind) + "-seed" + std::to_string(seed)
             : label;
}

/// Closes open spans, harvests the flow timeline and serializes both
/// trace forms; writes them under `trace_dir` when set.  Runs after the
/// scheduler stops, so none of this touches the hot path.
void finish_tracing(ScenarioResults& res, sim::SimContext& ctx,
                    const std::string& label, const char* trace_dir) {
  ctx.tracer().close_open_spans(ctx.now());
  res.timeline = stats::FlowTimeline::build(ctx.tracer());
  res.has_timeline = true;
  std::ostringstream spans;
  ctx.tracer().dump_jsonl(spans);
  res.trace_spans_jsonl = spans.str();
  std::ostringstream chrome;
  ctx.tracer().export_chrome(chrome, label);
  res.trace_chrome = chrome.str();
  if (trace_dir == nullptr) return;

  const std::string stem = sim::RunManifest::sanitize(label);
  std::error_code ec;
  std::filesystem::create_directories(trace_dir, ec);
  const auto write = [&](const char* suffix, const std::string& body) {
    const std::filesystem::path path =
        std::filesystem::path(trace_dir) / (stem + suffix);
    std::ofstream out(path, std::ios::binary);
    out << body;
    if (!out) {
      throw std::runtime_error(
          std::string("HWATCH_TRACE_DIR=\"") + trace_dir +
          "\": cannot create the directory or write \"" + path.string() +
          "\"; point HWATCH_TRACE_DIR at a writable path");
    }
  };
  write(".spans.jsonl", res.trace_spans_jsonl);
  write(".trace.json", res.trace_chrome);
}

/// Prints the self-profiler report (stderr: wall times never belong in
/// result streams).
void finish_profile(const sim::SimContext& ctx, std::uint64_t run_wall_ns) {
  const sim::Scheduler& sched = ctx.scheduler();
  sim::EventLoopStats loop;
  loop.events_executed = sched.executed();
  loop.events_scheduled = sched.scheduled();
  loop.heap_peak = sched.heap_peak();
  loop.wall_ns = run_wall_ns;
  ctx.profiler().report(std::cerr, &loop);
}

// Wall-clock time feeds only the manifest `environment` section, which
// RunManifest::deterministic_dump() excludes — simulated time and every
// result field stay seed-derived.
using WallClock = std::chrono::steady_clock;  // hwlint: allow(nondeterminism)

double wall_ms_since(WallClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - t0)
      .count();
}

/// True when `name` is set to anything but "" or "0".
bool env_flag(const char* name) {
  const char* raw = std::getenv(name);
  return raw != nullptr && *raw != '\0' &&
         !(raw[0] == '0' && raw[1] == '\0');
}

}  // namespace

ScenarioResults run_dumbbell(const DumbbellScenarioConfig& cfg) {
  const char* metrics_dir = std::getenv("HWATCH_METRICS_DIR");
  const bool detect = cfg.detect_incidents || env_flag("HWATCH_INCIDENTS");
  const bool collect =
      cfg.collect_metrics || metrics_dir != nullptr || detect;
  const char* trace_dir = std::getenv("HWATCH_TRACE_DIR");
  const bool trace = cfg.trace_spans || trace_dir != nullptr;
  const bool profile = cfg.profile || env_flag("HWATCH_PROFILE");
  const WallClock::time_point wall0 = WallClock::now();

  sim::SimContext ctx(cfg.seed);
  if (collect) ctx.metrics().set_enabled(true);
  if (trace) ctx.tracer().set_enabled(true);
  if (profile) ctx.profiler().set_enabled(true);
  sim::Scheduler& sched = ctx.scheduler();
  net::Network net(ctx);
  sim::Rng& rng = ctx.rng();

  topo::DumbbellConfig topo_cfg;
  topo_cfg.pairs = cfg.pairs;
  topo_cfg.edge_rate = cfg.edge_rate;
  topo_cfg.bottleneck_rate = cfg.bottleneck_rate;
  topo_cfg.base_rtt = cfg.base_rtt;
  topo_cfg.edge_qdisc = cfg.edge_aqm.make_factory(cfg.edge_rate);
  topo_cfg.bottleneck_qdisc =
      cfg.core_aqm.make_factory(cfg.bottleneck_rate);
  topo::Dumbbell d = topo::build_dumbbell(net, topo_cfg);

  std::unique_ptr<stats::IncidentDetector> doctor;
  if (detect) {
    doctor = std::make_unique<stats::IncidentDetector>();
    ctx.set_incident_sink(doctor.get());
    wire_incidents(net, *doctor);
  }

  std::vector<std::unique_ptr<core::HypervisorShim>> shims;
  if (cfg.hwatch_enabled) {
    shims = install_shims(net, cfg.hwatch, rng);
  }

  workload::TrafficManager tm(net);
  std::uint32_t long_count = 0;
  for (const auto& g : cfg.long_groups) long_count += g.count;
  std::uint32_t short_count = 0;
  for (const auto& g : cfg.short_groups) short_count += g.count;
  if (long_count + short_count > cfg.pairs) {
    throw std::invalid_argument(
        "dumbbell scenario: more sources requested than host pairs");
  }

  // Long flows use pairs [0, long_count); short flows the next range.
  std::vector<net::Host*> long_srcs(d.left.begin(),
                                    d.left.begin() + long_count);
  std::vector<net::Host*> long_dsts(d.right.begin(),
                                    d.right.begin() + long_count);
  std::vector<net::Host*> short_srcs(
      d.left.begin() + long_count,
      d.left.begin() + long_count + short_count);
  std::vector<net::Host*> short_dsts(
      d.right.begin() + long_count,
      d.right.begin() + long_count + short_count);

  if (long_count > 0) {
    workload::add_bulk_flows(tm, long_srcs, long_dsts, cfg.long_groups, 0,
                             cfg.bulk_start_spread, rng);
  }
  if (short_count > 0) {
    workload::add_incast_epochs(tm, short_srcs, short_dsts,
                                cfg.short_groups, cfg.incast, rng);
  }

  auto queue_sampler = stats::make_queue_sampler(
      sched, *d.bottleneck, cfg.sample_interval, cfg.duration);
  stats::UtilizationSampler util_sampler(sched, *d.bottleneck,
                                         cfg.sample_interval, cfg.duration);
  stats::ThroughputSampler tput_sampler(sched, *d.bottleneck,
                                        cfg.sample_interval, cfg.duration);

  std::optional<stats::MetricsSampler> metrics_sampler;
  if (collect) {
    wire_gauges(ctx, *d.bottleneck, cfg.core_aqm.buffer_packets, net, tm,
                shims);
    metrics_sampler.emplace(ctx, cfg.sample_interval, cfg.duration);
  }

  std::uint64_t run_wall_ns = 0;
  if (profile) {
    const std::uint64_t t0 = ctx.profiler().now_ns();
    sched.run_until(cfg.duration);
    run_wall_ns = ctx.profiler().now_ns() - t0;
  } else {
    sched.run_until(cfg.duration);
  }

  ScenarioResults res;
  res.records = tm.collect_records();
  res.queue_packets = queue_sampler.series();
  res.utilization = util_sampler.series();
  res.throughput_gbps = tput_sampler.series();
  res.bottleneck_queue = d.bottleneck->qdisc().stats();
  res.fabric_drops = net.total_queue_drops();
  res.retransmits = tm.total_retransmits();
  res.timeouts = tm.total_timeouts();
  res.events_executed = sched.executed();
  res.shim = aggregate_shims(shims);
  if (doctor) doctor->finalize(ctx.now());

  if (collect) {
    sim::Json config = sim::Json::object();
    config.set("pairs", cfg.pairs);
    config.set("edge_rate_gbps", cfg.edge_rate.gbits_per_sec());
    config.set("bottleneck_rate_gbps",
               cfg.bottleneck_rate.gbits_per_sec());
    config.set("base_rtt_ps", cfg.base_rtt);
    config.set("edge_aqm", aqm_json(cfg.edge_aqm));
    config.set("core_aqm", aqm_json(cfg.core_aqm));
    config.set("hwatch_enabled", cfg.hwatch_enabled);
    config.set("duration_ps", cfg.duration);
    config.set("sample_interval_ps", cfg.sample_interval);
    config.set("seed", cfg.seed);
    finish_manifest(res, ctx, cfg.run_label, "dumbbell", cfg.seed,
                    std::move(config), *metrics_sampler,
                    wall_ms_since(wall0), metrics_dir, doctor.get());
  }
  if (trace) {
    finish_tracing(res, ctx,
                   run_label_of(cfg.run_label, "dumbbell", cfg.seed),
                   trace_dir);
  }
  if (profile) finish_profile(ctx, run_wall_ns);
  return res;
}

ScenarioResults run_leaf_spine(const LeafSpineScenarioConfig& cfg) {
  const char* metrics_dir = std::getenv("HWATCH_METRICS_DIR");
  const bool detect = cfg.detect_incidents || env_flag("HWATCH_INCIDENTS");
  const bool collect =
      cfg.collect_metrics || metrics_dir != nullptr || detect;
  const char* trace_dir = std::getenv("HWATCH_TRACE_DIR");
  const bool trace = cfg.trace_spans || trace_dir != nullptr;
  const bool profile = cfg.profile || env_flag("HWATCH_PROFILE");
  const WallClock::time_point wall0 = WallClock::now();

  sim::SimContext ctx(cfg.seed);
  if (collect) ctx.metrics().set_enabled(true);
  if (trace) ctx.tracer().set_enabled(true);
  if (profile) ctx.profiler().set_enabled(true);
  sim::Scheduler& sched = ctx.scheduler();
  net::Network net(ctx);
  sim::Rng& rng = ctx.rng();

  topo::LeafSpineConfig topo_cfg;
  topo_cfg.racks = cfg.racks;
  topo_cfg.hosts_per_rack = cfg.hosts_per_rack;
  topo_cfg.host_rate = cfg.link_rate;
  topo_cfg.uplink_rate = cfg.link_rate;
  topo_cfg.base_rtt = cfg.base_rtt;
  topo_cfg.edge_qdisc = cfg.edge_aqm.make_factory(cfg.link_rate);
  topo_cfg.fabric_qdisc = cfg.fabric_aqm.make_factory(cfg.link_rate);
  topo::LeafSpine t = topo::build_leaf_spine(net, topo_cfg);
  if (cfg.racks < 2) {
    throw std::invalid_argument("leaf-spine scenario needs >= 2 racks");
  }

  std::unique_ptr<stats::IncidentDetector> doctor;
  if (detect) {
    doctor = std::make_unique<stats::IncidentDetector>();
    ctx.set_incident_sink(doctor.get());
    wire_incidents(net, *doctor);
  }

  std::vector<std::unique_ptr<core::HypervisorShim>> shims;
  if (cfg.hwatch_enabled) {
    shims = install_shims(net, cfg.hwatch, rng);
  }

  workload::TrafficManager tm(net);
  const std::uint32_t recv_rack = cfg.racks - 1;

  // Bulk flows: round-robin across the sending racks, all towards hosts
  // in the receiving rack (the spine -> leaf[recv_rack] link is the
  // bottleneck, as in the testbed).
  std::vector<net::Host*> bulk_srcs;
  for (std::uint32_t i = 0; i < cfg.bulk_flows; ++i) {
    const std::uint32_t rack = i % recv_rack;
    const auto& rack_hosts = t.hosts[rack];
    bulk_srcs.push_back(rack_hosts[(i / recv_rack) % rack_hosts.size()]);
  }
  std::vector<net::Host*> bulk_dsts(t.hosts[recv_rack].begin(),
                                    t.hosts[recv_rack].end());
  if (cfg.bulk_flows > 0) {
    workload::SenderGroup g = cfg.bulk_template;
    g.count = cfg.bulk_flows;
    workload::add_bulk_flows(tm, bulk_srcs, bulk_dsts, {g}, 0,
                             sim::milliseconds(10), rng);
  }

  // Web servers: the first `web_servers_per_rack` hosts of every sending
  // rack; clients: the first `web_clients` hosts of the receiving rack.
  std::vector<net::Host*> servers;
  for (std::uint32_t r = 0; r < recv_rack; ++r) {
    for (std::uint32_t h = 0;
         h < cfg.web_servers_per_rack && h < t.hosts[r].size(); ++h) {
      servers.push_back(t.hosts[r][h]);
    }
  }
  std::vector<net::Host*> clients;
  for (std::uint32_t h = 0;
       h < cfg.web_clients && h < t.hosts[recv_rack].size(); ++h) {
    clients.push_back(t.hosts[recv_rack][h]);
  }
  if (cfg.web_pattern == LeafSpineScenarioConfig::WebPattern::kOpenWaves) {
    workload::add_web_waves(tm, servers, clients, cfg.web_transport,
                            cfg.web_tcp, cfg.web, rng);
  } else {
    workload::add_closed_loop_web(tm, servers, clients, cfg.web_transport,
                                  cfg.web_tcp, cfg.closed_loop, rng);
  }

  // Bottleneck: the spine -> receiving-leaf downlink (single spine).
  net::Link* bottleneck = t.downlinks[recv_rack];
  auto queue_sampler = stats::make_queue_sampler(
      sched, *bottleneck, cfg.sample_interval, cfg.duration);
  stats::UtilizationSampler util_sampler(sched, *bottleneck,
                                         cfg.sample_interval, cfg.duration);
  stats::ThroughputSampler tput_sampler(sched, *bottleneck,
                                        cfg.sample_interval, cfg.duration);

  std::optional<stats::MetricsSampler> metrics_sampler;
  if (collect) {
    wire_gauges(ctx, *bottleneck, cfg.fabric_aqm.buffer_packets, net, tm,
                shims);
    metrics_sampler.emplace(ctx, cfg.sample_interval, cfg.duration);
  }

  std::uint64_t run_wall_ns = 0;
  if (profile) {
    const std::uint64_t t0 = ctx.profiler().now_ns();
    sched.run_until(cfg.duration);
    run_wall_ns = ctx.profiler().now_ns() - t0;
  } else {
    sched.run_until(cfg.duration);
  }

  ScenarioResults res;
  res.records = tm.collect_records();
  res.queue_packets = queue_sampler.series();
  res.utilization = util_sampler.series();
  res.throughput_gbps = tput_sampler.series();
  res.bottleneck_queue = bottleneck->qdisc().stats();
  res.fabric_drops = net.total_queue_drops();
  res.retransmits = tm.total_retransmits();
  res.timeouts = tm.total_timeouts();
  res.events_executed = sched.executed();
  res.shim = aggregate_shims(shims);
  if (doctor) doctor->finalize(ctx.now());

  if (collect) {
    sim::Json config = sim::Json::object();
    config.set("racks", cfg.racks);
    config.set("hosts_per_rack", cfg.hosts_per_rack);
    config.set("link_rate_gbps", cfg.link_rate.gbits_per_sec());
    config.set("base_rtt_ps", cfg.base_rtt);
    config.set("edge_aqm", aqm_json(cfg.edge_aqm));
    config.set("fabric_aqm", aqm_json(cfg.fabric_aqm));
    config.set("bulk_flows", cfg.bulk_flows);
    config.set("web_servers_per_rack", cfg.web_servers_per_rack);
    config.set("web_clients", cfg.web_clients);
    config.set("web_pattern",
               cfg.web_pattern == LeafSpineScenarioConfig::WebPattern::
                                      kOpenWaves
                   ? "open-waves"
                   : "closed-loop");
    config.set("hwatch_enabled", cfg.hwatch_enabled);
    config.set("duration_ps", cfg.duration);
    config.set("sample_interval_ps", cfg.sample_interval);
    config.set("seed", cfg.seed);
    finish_manifest(res, ctx, cfg.run_label, "leaf_spine", cfg.seed,
                    std::move(config), *metrics_sampler,
                    wall_ms_since(wall0), metrics_dir, doctor.get());
  }
  if (trace) {
    finish_tracing(res, ctx,
                   run_label_of(cfg.run_label, "leaf_spine", cfg.seed),
                   trace_dir);
  }
  if (profile) finish_profile(ctx, run_wall_ns);
  return res;
}

}  // namespace hwatch::api
