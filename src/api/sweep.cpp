#include "api/sweep.hpp"

#include <algorithm>
#include <mutex>

namespace hwatch::api {

std::uint64_t derive_point_seed(std::uint64_t base_seed,
                                std::uint64_t index) {
  // splitmix64: mix the pair into a well-distributed 64-bit seed.  The
  // +1 keeps point 0 of base 0 away from the all-zero fixed point.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

SweepRunner::SweepRunner(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

void SweepRunner::dispatch(
    std::size_t n, const std::function<void(std::size_t)>& task) const {
  if (n == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) task(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<ScenarioResults> SweepRunner::run(
    const std::vector<DumbbellScenarioConfig>& points) const {
  return map<ScenarioResults>(points.size(), [&](std::size_t i) {
    return run_dumbbell(points[i]);
  });
}

std::vector<ScenarioResults> SweepRunner::run(
    const std::vector<LeafSpineScenarioConfig>& points) const {
  return map<ScenarioResults>(points.size(), [&](std::size_t i) {
    return run_leaf_spine(points[i]);
  });
}

}  // namespace hwatch::api
