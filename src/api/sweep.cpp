#include "api/sweep.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>

#include "sim/self_profiler.hpp"

namespace hwatch::api {

std::uint64_t derive_point_seed(std::uint64_t base_seed,
                                std::uint64_t index) {
  // splitmix64: mix the pair into a well-distributed 64-bit seed.  The
  // +1 keeps point 0 of base 0 away from the all-zero fixed point.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

unsigned SweepRunner::threads_from_env() {
  const char* raw = std::getenv("HWATCH_SWEEP_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  const std::string value(raw);
  const auto bad = [&](const char* why) {
    throw std::invalid_argument(std::string("HWATCH_SWEEP_THREADS=\"") +
                                value + "\": " + why +
                                " (expected a positive integer)");
  };
  std::size_t pos = 0;
  unsigned long parsed = 0;
  try {
    parsed = std::stoul(value, &pos, 10);
  } catch (const std::invalid_argument&) {
    bad("not a number");
  } catch (const std::out_of_range&) {
    bad("out of range");
  }
  if (pos != value.size()) bad("trailing characters");
  if (value[0] == '-') bad("negative");
  if (parsed == 0) bad("zero threads");
  if (parsed > std::numeric_limits<unsigned>::max()) bad("out of range");
  return static_cast<unsigned>(parsed);
}

SweepRunner::SweepRunner(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

void SweepRunner::dispatch(
    std::size_t n, const std::function<void(std::size_t)>& task) const {
  if (n == 0) return;
  // Heartbeat (HWATCH_PROGRESS=1): one stderr line per finished point.
  // Progress output never touches results, so determinism is unaffected.
  std::optional<sim::ProgressMeter> progress;
  if (sim::ProgressMeter::env_enabled()) progress.emplace(n, "sweep");
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      task(i);
      if (progress) progress->tick();
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (progress) progress->tick();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<ScenarioResults> SweepRunner::run(
    const std::vector<DumbbellScenarioConfig>& points) const {
  return map<ScenarioResults>(points.size(), [&](std::size_t i) {
    DumbbellScenarioConfig cfg = points[i];
    if (cfg.run_label.empty()) cfg.run_label = "point" + std::to_string(i);
    ScenarioResults res = run_dumbbell(cfg);
    if (res.has_manifest) res.manifest.sweep_threads = threads_;
    return res;
  });
}

std::vector<ScenarioResults> SweepRunner::run(
    const std::vector<LeafSpineScenarioConfig>& points) const {
  return map<ScenarioResults>(points.size(), [&](std::size_t i) {
    LeafSpineScenarioConfig cfg = points[i];
    if (cfg.run_label.empty()) cfg.run_label = "point" + std::to_string(i);
    ScenarioResults res = run_leaf_spine(cfg);
    if (res.has_manifest) res.manifest.sweep_threads = threads_;
    return res;
  });
}

}  // namespace hwatch::api
