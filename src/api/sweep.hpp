// SweepRunner — parallel execution of independent scenario points.
//
// Every figure and ablation of the reproduction is a parameter sweep of
// self-contained simulations: each point builds its own SimContext (via
// run_dumbbell / run_leaf_spine), so points share zero mutable state and
// can execute on any thread.  SweepRunner fans a vector of scenario
// configurations out over a thread pool and collects results in point
// order — the output is byte-identical no matter how many threads run
// the sweep, which the determinism tests assert.
//
// Seeding: each point's config carries its own seed.  For sweeps that
// want independent per-point streams derived from one base seed, use
// derive_point_seed(base, index) — a splitmix64 mix, stable across
// platforms and thread counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "api/scenario.hpp"
#include "sim/annotations.hpp"

namespace hwatch::api {

/// Mixes a base seed and a point index into an independent per-point
/// seed (splitmix64 finalizer); deterministic and platform-stable.
std::uint64_t derive_point_seed(std::uint64_t base_seed, std::uint64_t index);

class HWATCH_SHARD_SHARED SweepRunner {
 public:
  /// `threads` == 0 picks std::thread::hardware_concurrency() (at least
  /// 1).  One SimContext lives per in-flight point, created inside the
  /// worker that claims it.
  explicit SweepRunner(unsigned threads = 0);

  /// Parses the HWATCH_SWEEP_THREADS environment variable.  Unset or
  /// empty returns 0 (auto = hardware concurrency); anything that is
  /// not a positive integer (non-numeric, 0, negative, trailing junk,
  /// out of range) throws std::invalid_argument with a message naming
  /// the variable and the offending value.
  static unsigned threads_from_env();

  unsigned threads() const { return threads_; }

  /// Runs every configuration; results[i] corresponds to points[i].
  std::vector<ScenarioResults> run(
      const std::vector<DumbbellScenarioConfig>& points) const;
  std::vector<ScenarioResults> run(
      const std::vector<LeafSpineScenarioConfig>& points) const;

  /// Generic ordered fan-out: out[i] = fn(i).  `fn` must be safe to call
  /// concurrently from several threads (scenario runs are: each call
  /// builds its own SimContext).
  template <typename R>
  std::vector<R> map(std::size_t n,
                     const std::function<R(std::size_t)>& fn) const {
    std::vector<R> out(n);
    dispatch(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Runs task(i) for every i in [0, n) across the pool; blocks until
  /// all complete.  The first exception thrown by any task is rethrown
  /// on the calling thread after the pool drains.
  void dispatch(std::size_t n,
                const std::function<void(std::size_t)>& task) const;

 private:
  unsigned threads_;
};

}  // namespace hwatch::api
