// Delay-based congestion inference (the paper's Section III-D "Further
// Observation").
//
// ECN gives a binary signal; the probe train also carries *timing*.  A
// probe that crossed an empty path arrives after the base propagation
// delay; queued bytes add serialization delay on top, so the inflation
// of a probe's one-way delay over the smallest delay ever observed on
// the path estimates the standing queue:  Q_bytes ~ inflation * C.
// (Hypervisor-to-hypervisor probes can carry a timestamp; datacenter
// hosts are PTP-synchronized, and only *differences* against the same
// clock pair are used, so absolute sync hardly matters.)
//
// The shim uses this as an optional secondary signal at connection
// setup: probes that came back unmarked but heavily delayed are
// reclassified as congested before the Next-Fit plan is computed.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"
#include "sim/units.hpp"

namespace hwatch::core {

class DelayWatcher {
 public:
  /// `drain_rate` converts delay inflation to queued bytes (operators
  /// configure it as the access-link rate, the natural lower bound on
  /// any bottleneck's drain rate).
  explicit DelayWatcher(sim::DataRate drain_rate =
                            sim::DataRate::gbps(10))
      : drain_rate_(drain_rate) {}

  /// Feeds one probe's one-way delay.
  void add_sample(sim::TimePs one_way_delay) {
    ++samples_;
    min_delay_ = std::min(min_delay_, one_way_delay);
    last_delay_ = one_way_delay;
    max_delay_ = std::max(max_delay_, one_way_delay);
  }

  bool has_samples() const { return samples_ > 0; }
  std::uint64_t samples() const { return samples_; }

  /// Baseline (uncongested) path delay estimate.
  sim::TimePs base_delay() const { return min_delay_; }

  /// Current delay inflation over the baseline.
  sim::TimePs inflation() const {
    return has_samples() ? last_delay_ - min_delay_ : 0;
  }
  sim::TimePs max_inflation() const {
    return has_samples() ? max_delay_ - min_delay_ : 0;
  }

  /// Standing-queue estimate behind the last probe, in bytes.
  std::uint64_t queued_bytes_estimate() const {
    return drain_rate_.bytes_in(inflation());
  }

  /// Same, in segments of the given size.
  std::uint64_t queued_packets_estimate(std::uint32_t mss) const {
    return mss == 0 ? 0 : queued_bytes_estimate() / mss;
  }

  void reset() {
    samples_ = 0;
    min_delay_ = sim::kTimeNever;
    last_delay_ = 0;
    max_delay_ = 0;
  }

 private:
  sim::DataRate drain_rate_;
  std::uint64_t samples_ = 0;
  sim::TimePs min_delay_ = sim::kTimeNever;
  sim::TimePs last_delay_ = 0;
  sim::TimePs max_delay_ = 0;
};

}  // namespace hwatch::core
