#include "hwatch/flow_table.hpp"

namespace hwatch::core {

FlowEntry& FlowTable::upsert(const net::FlowKey& key, FlowRole role) {
  auto [it, inserted] = table_.try_emplace(key);
  if (inserted) {
    it->second.key = key;
    it->second.role = role;
    ++created_;
  }
  return it->second;
}

FlowEntry* FlowTable::find(const net::FlowKey& key) {
  auto it = table_.find(key);
  return it == table_.end() ? nullptr : &it->second;
}

const FlowEntry* FlowTable::find(const net::FlowKey& key) const {
  auto it = table_.find(key);
  return it == table_.end() ? nullptr : &it->second;
}

}  // namespace hwatch::core
