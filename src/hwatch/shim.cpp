#include "hwatch/shim.hpp"

#include <algorithm>
#include <memory>

#include "net/checksum.hpp"
#include "sim/incident_hooks.hpp"
#include "sim/log.hpp"
#include "tcp/common.hpp"

namespace hwatch::core {

HypervisorShim::HypervisorShim(net::Network& net, net::Host& host,
                               HWatchConfig config, sim::Rng rng)
    : net_(net),
      ctx_(net.ctx()),
      host_(host),
      cfg_(config),
      rng_(rng),
      m_rwnd_rewrites_(ctx_.metrics().counter("hwatch.rwnd_rewrites")),
      m_checksum_recomputes_(
          ctx_.metrics().counter("hwatch.checksum_recomputes")),
      m_probe_trains_sent_(
          ctx_.metrics().counter("hwatch.probe_trains_sent")),
      m_probe_trains_recv_(
          ctx_.metrics().counter("hwatch.probe_trains_recv")),
      m_probes_absorbed_(ctx_.metrics().counter("hwatch.probes_absorbed")),
      m_window_decisions_(
          ctx_.metrics().counter("hwatch.window_decisions")) {}

// Flow span of a data-direction key, or 0 when the sender isn't traced
// (e.g. remote sender not simulated with tracing on this context).
static std::uint64_t traced_flow_span(const sim::SpanTracer& tr,
                                      const net::FlowKey& key) {
  auto [hi, lo] = net::flow_key_words(key);
  return tr.flow_span_of(hi, lo);
}

net::FilterVerdict HypervisorShim::on_outbound(net::Packet& p) {
  sim::ProfScope prof(ctx_.profiler(), sim::ProfComponent::kShim);
  if (p.kind != net::PacketKind::kTcp) return net::FilterVerdict::kPass;

  // Preemptive-alternative mode: control packets ride the high band.
  if (cfg_.prioritize_short_flows && p.payload_bytes == 0) {
    p.ip.dscp = 1;
  }

  if (p.tcp.syn && !p.tcp.ack_flag) {
    // Guest SYN leaving this host: sender role.
    return hold_syn_and_probe(p);
  }
  if (p.tcp.syn && p.tcp.ack_flag) {
    // Guest SYN-ACK: receiver role; the data-direction key is reversed.
    FlowEntry* e = flows_.find(net::flow_key_of(p).reversed());
    if (e != nullptr && e->role == FlowRole::kReceiver) {
      rewrite_synack(p, *e);
      if (cfg_.pace_synacks) return pace_synack(p, *e);
    }
    return net::FilterVerdict::kPass;
  }
  if (p.tcp.fin) {
    FlowEntry* e = flows_.find(net::flow_key_of(p));
    if (e != nullptr && !e->fin_seen) {
      e->fin_seen = true;
      schedule_cleanup(e->key);
    }
    return net::FilterVerdict::kPass;
  }
  if (p.is_pure_ack()) {
    FlowEntry* e = flows_.find(net::flow_key_of(p).reversed());
    if (e != nullptr && e->role == FlowRole::kReceiver) {
      rewrite_ack(p, *e);
    }
    return net::FilterVerdict::kPass;
  }
  if (p.payload_bytes > 0) {
    FlowEntry* e = flows_.find(net::flow_key_of(p));
    if (e != nullptr && e->role == FlowRole::kSender) {
      // Outbound data from a legacy (non-ECN) guest: stamp ECT(0) so
      // the fabric can signal congestion by marking, not dropping.
      if (cfg_.transparent_ect && !e->guest_ecn_capable &&
          p.ip.ecn == net::Ecn::kNotEct) {
        p.ip.ecn = net::Ecn::kEct0;
      }
      if (cfg_.prioritize_short_flows) {
        if (e->bytes_sent_seen < cfg_.priority_bytes_threshold) {
          p.ip.dscp = 1;
        }
        e->bytes_sent_seen += p.payload_bytes;
      }
    }
  }
  return net::FilterVerdict::kPass;
}

net::FilterVerdict HypervisorShim::on_inbound(net::Packet& p) {
  sim::ProfScope prof(ctx_.profiler(), sim::ProfComponent::kShim);
  if (p.kind == net::PacketKind::kProbe) {
    absorb_probe(p);
    return net::FilterVerdict::kConsume;
  }
  if (p.tcp.syn && !p.tcp.ack_flag) {
    note_inbound_syn(p);
    return net::FilterVerdict::kPass;
  }
  if (p.payload_bytes > 0) {
    note_inbound_data(p);
  }
  if (p.tcp.fin) {
    FlowEntry* e = flows_.find(net::flow_key_of(p));
    if (e != nullptr && !e->fin_seen) {
      e->fin_seen = true;
      schedule_cleanup(e->key);
    }
  }
  return net::FilterVerdict::kPass;
}

// ---------------------------------------------------------------- sender

net::FilterVerdict HypervisorShim::hold_syn_and_probe(net::Packet& syn) {
  const net::FlowKey key = net::flow_key_of(syn);
  FlowEntry& e = flows_.upsert(key, FlowRole::kSender);
  e.guest_ecn_capable = syn.tcp.ece && syn.tcp.cwr;
  if (cfg_.probe_count == 0 || e.syn_held) {
    // Probing disabled, or this is a retransmitted SYN for a flow whose
    // train already went out: let it through untouched.
    return net::FilterVerdict::kPass;
  }
  e.syn_held = true;
  ++stats_.syns_held;
  m_probe_trains_sent_.inc();
  const std::uint32_t train = next_train_id_++;
  e.probes_sent = cfg_.probe_count;

  // Non-uniform spacing: probe i leaves inside slot i of the span, at a
  // uniformly random offset, so inter-departure gaps are neither zero nor
  // constant (Section IV-C).
  const sim::TimePs span = std::max<sim::TimePs>(cfg_.probe_span, 1);
  for (std::uint32_t i = 0; i < cfg_.probe_count; ++i) {
    const auto slot = static_cast<double>(span) /
                      static_cast<double>(cfg_.probe_count + 1);
    const auto at = static_cast<sim::TimePs>(
        slot * (static_cast<double>(i) + rng_.uniform()));
    ctx_.scheduler().schedule_in(at, [this, key, train] { inject_probe(key, train); });
  }

  std::uint64_t train_span = 0;
  if (ctx_.tracer().enabled()) {
    const std::uint64_t fs = traced_flow_span(ctx_.tracer(), key);
    train_span = ctx_.tracer().begin_span(
        ctx_.now(), sim::SpanKind::kProbeTrain, fs, fs, cfg_.probe_count, 0,
        train);
  }

  // Release the held SYN after the train (bounded handshake delay).
  // The SYN lives in a pooled block: SYN holds recur per short flow, so
  // the pool recycles one block per concurrent held handshake.
  auto held = ctx_.packet_pool().make<net::Packet>(syn);
  ctx_.scheduler().schedule_in(
      span, [this, held = std::move(held), train_span] {
        ctx_.tracer().end_span(ctx_.now(), train_span);
        host_.send_raw(std::move(*held));
      });
  return net::FilterVerdict::kConsume;
}

void HypervisorShim::inject_probe(const net::FlowKey& key,
                                  std::uint32_t train_id) {
  net::Packet probe;
  probe.uid = ctx_.next_packet_uid();
  probe.kind = net::PacketKind::kProbe;
  probe.ip.src = key.src;
  probe.ip.dst = key.dst;
  probe.ip.ecn = net::Ecn::kEct0;  // probes must be markable
  probe.tcp.src_port = key.src_port;
  probe.tcp.dst_port = key.dst_port;
  probe.payload_bytes = cfg_.probe_payload_bytes;
  probe.probe_train_id = train_id;
  probe.sent_time = ctx_.now();
  ++stats_.probes_injected;
  stats_.probe_bytes_injected += probe.size_bytes();
  host_.send_raw(std::move(probe));
}

// -------------------------------------------------------------- receiver

void HypervisorShim::absorb_probe(const net::Packet& p) {
  FlowEntry& e = flows_.upsert(net::flow_key_of(p), FlowRole::kReceiver);
  if (e.probe_marked + e.probe_unmarked == 0) m_probe_trains_recv_.inc();
  ++stats_.probes_absorbed;
  m_probes_absorbed_.inc();
  if (p.ip.ecn == net::Ecn::kCe) {
    ++e.probe_marked;
    ++stats_.probes_absorbed_marked;
  } else {
    ++e.probe_unmarked;
  }
  auto [it, inserted] =
      path_delay_.try_emplace(p.ip.src, cfg_.delay_drain_rate);
  it->second.add_sample(ctx_.now() - p.sent_time);
}

void HypervisorShim::note_inbound_syn(const net::Packet& p) {
  FlowEntry& e = flows_.upsert(net::flow_key_of(p), FlowRole::kReceiver);
  e.sender_wscale = p.tcp.wscale;
  e.guest_ecn_capable = p.tcp.ece && p.tcp.cwr;
  e.syn_seen = true;
  e.round_start = ctx_.now();
}

void HypervisorShim::note_inbound_data(net::Packet& p) {
  FlowEntry* e = flows_.find(net::flow_key_of(p));
  if (e == nullptr || e->role != FlowRole::kReceiver) return;
  if (p.ip.ecn == net::Ecn::kCe) {
    ++e->marked;
    // Legacy guest: the hypervisor consumes the congestion signal itself
    // and hides the codepoint from the unsuspecting stack.
    if (cfg_.transparent_ect && !e->guest_ecn_capable) {
      p.ip.ecn = net::Ecn::kNotEct;
    }
  } else {
    ++e->unmarked;
  }
}

void HypervisorShim::rewrite_synack(net::Packet& p, FlowEntry& e) {
  e.receiver_wscale = p.tcp.wscale;
  e.synack_seen = true;
  e.round_start = ctx_.now();

  if (e.probe_unmarked + e.probe_marked > 0) {
    std::uint64_t unmarked = e.probe_unmarked;
    std::uint64_t marked = e.probe_marked;
    if (cfg_.use_delay_signal) {
      // Timing evidence of a standing queue (Section III-D): treat up
      // to the estimated queue depth of unmarked probes as congested.
      // The path baseline comes from every train this hypervisor ever
      // saw from that host, so a fresh flow is judged against history.
      auto it = path_delay_.find(e.key.src);
      if (it != path_delay_.end() && it->second.has_samples()) {
        const std::uint64_t reclassify = std::min(
            unmarked, it->second.queued_packets_estimate(cfg_.mss));
        unmarked -= reclassify;
        marked += reclassify;
      }
    }
    BatchPlan plan = plan_window(unmarked, marked, cfg_.policy, &rng_);
    // Setup caution: every connection start is a potential incast
    // member; hold back part of even the "clean" grant for one drain
    // interval (see HWatchConfig::setup_caution_divisor).
    if (cfg_.setup_caution_divisor > 1 && plan.immediate_packets > 1) {
      const std::uint64_t now_pkts = std::max<std::uint64_t>(
          plan.immediate_packets / cfg_.setup_caution_divisor, 1);
      const std::uint64_t held = plan.immediate_packets - now_pkts;
      plan.immediate_packets = now_pkts;
      if (held > 0) {
        plan.deferred.push_back(
            DeferredGrant{cfg_.policy.batch_interval, held});
      }
    }
    if (ctx_.tracer().enabled()) {
      std::uint64_t deferred_pkts = 0;
      for (const DeferredGrant& g : plan.deferred) deferred_pkts += g.packets;
      const std::uint64_t fs = traced_flow_span(ctx_.tracer(), e.key);
      e.decision_span = ctx_.tracer().instant(
          ctx_.now(), sim::SpanKind::kDecision, fs, fs, unmarked, marked,
          plan.immediate_packets, deferred_pkts);
    }
    const std::uint64_t immediate =
        std::clamp<std::uint64_t>(plan.immediate_packets * cfg_.mss,
                                  cfg_.min_window_bytes,
                                  cfg_.max_window_bytes);
    e.allowance_bytes = immediate;
    for (const DeferredGrant& g : plan.deferred) {
      e.pending_grants.push_back(FlowEntry::PendingGrant{
          ctx_.now() + g.delay, g.packets * cfg_.mss});
    }
    e.probe_unmarked = 0;
    e.probe_marked = 0;
    ++stats_.window_decisions;
    m_window_decisions_.inc();
    apply_window(p, e, /*synack=*/true);
    ++stats_.synacks_rewritten;
  }
}

net::FilterVerdict HypervisorShim::pace_synack(net::Packet& p,
                                               FlowEntry& e) {
  const sim::TimePs now = ctx_.now();
  if (now >= slot_start_ + cfg_.synack_batch_interval) {
    slot_start_ = now;
    slot_used_ = 0;
  }
  if (synack_queue_.empty() && slot_used_ < cfg_.synack_batch_size) {
    ++slot_used_;
    return net::FilterVerdict::kPass;
  }
  if (e.synack_queued) {
    // A SYN retransmission produced a duplicate SYN-ACK while one is
    // already waiting for admission: suppress it.
    ++stats_.synacks_deduplicated;
    return net::FilterVerdict::kConsume;
  }
  e.synack_queued = true;
  ++stats_.synacks_paced;
  synack_queue_.push_back(net::Packet(p));
  if (!drain_scheduled_) {
    drain_scheduled_ = true;
    const sim::TimePs next_slot = slot_start_ + cfg_.synack_batch_interval;
    ctx_.scheduler().schedule_at(std::max(next_slot, now),
                       [this] { drain_synack_queue(); });
  }
  return net::FilterVerdict::kConsume;
}

void HypervisorShim::drain_synack_queue() {
  drain_scheduled_ = false;
  const sim::TimePs now = ctx_.now();
  if (now >= slot_start_ + cfg_.synack_batch_interval) {
    slot_start_ = now;
    slot_used_ = 0;
  }
  while (!synack_queue_.empty() && slot_used_ < cfg_.synack_batch_size) {
    net::Packet p = synack_queue_.pop_front();
    ++slot_used_;
    FlowEntry* e = flows_.find(net::flow_key_of(p).reversed());
    if (e != nullptr) e->synack_queued = false;
    host_.send_raw(std::move(p));
  }
  if (!synack_queue_.empty()) {
    drain_scheduled_ = true;
    ctx_.scheduler().schedule_at(slot_start_ + cfg_.synack_batch_interval,
                       [this] { drain_synack_queue(); });
  }
}

void HypervisorShim::rewrite_ack(net::Packet& p, FlowEntry& e) {
  const sim::TimePs now = ctx_.now();
  e.apply_due_grants(now);
  if (now - e.round_start >= cfg_.round_interval) {
    run_round_decision(e);
  }
  if (e.allowance_bytes.has_value()) {
    apply_window(p, e, /*synack=*/false);
  }
}

void HypervisorShim::run_round_decision(FlowEntry& e) {
  const std::uint64_t seen = e.marked + e.unmarked;
  e.round_start = ctx_.now();
  if (seen == 0) return;  // idle round: nothing learned
  ++stats_.window_decisions;
  m_window_decisions_.inc();

  if (e.marked == 0) {
    // Clean round: re-open additively (one segment per round, mirroring
    // congestion avoidance) so the allowance converges to the marking
    // threshold instead of overshooting the buffer.
    ++e.clean_rounds;
    if (e.allowance_bytes.has_value()) {
      e.allowance_bytes = std::min<std::uint64_t>(
          *e.allowance_bytes + cfg_.mss, cfg_.max_window_bytes);
    }
    if (ctx_.tracer().enabled()) {
      const std::uint64_t fs = traced_flow_span(ctx_.tracer(), e.key);
      e.decision_span = ctx_.tracer().instant(
          ctx_.now(), sim::SpanKind::kDecision, fs, fs, e.unmarked, e.marked,
          e.allowance_bytes.value_or(0) / cfg_.mss, 0);
    }
  } else {
    e.clean_rounds = 0;
    const BatchPlan plan = plan_window(e.unmarked, e.marked, cfg_.policy,
                                       &rng_);
    e.allowance_bytes = std::clamp<std::uint64_t>(
        plan.immediate_packets * cfg_.mss, cfg_.min_window_bytes,
        cfg_.max_window_bytes);
    std::uint64_t deferred_pkts = 0;
    for (const DeferredGrant& g : plan.deferred) {
      e.pending_grants.push_back(FlowEntry::PendingGrant{
          ctx_.now() + g.delay, g.packets * cfg_.mss});
      deferred_pkts += g.packets;
    }
    if (ctx_.tracer().enabled()) {
      const std::uint64_t fs = traced_flow_span(ctx_.tracer(), e.key);
      e.decision_span = ctx_.tracer().instant(
          ctx_.now(), sim::SpanKind::kDecision, fs, fs, e.unmarked, e.marked,
          plan.immediate_packets, deferred_pkts);
    }
  }
  e.marked = 0;
  e.unmarked = 0;
}

void HypervisorShim::apply_window(net::Packet& p, FlowEntry& e,
                                  bool synack) {
  // RFC 7323: SYN-ACK windows are unscaled; established ACKs carry the
  // local guest's announced shift, which the shim tracked from the
  // SYN-ACK.
  const std::uint8_t shift = synack ? 0 : e.receiver_wscale;
  const std::uint64_t guest = tcp::decode_window(p.tcp.rwnd_raw, shift);
  const std::uint64_t cap =
      std::max(e.allowance_bytes.value_or(cfg_.max_window_bytes),
               cfg_.min_window_bytes);
  const std::uint64_t target = std::min(guest, cap);
  const std::uint16_t new_raw = tcp::encode_window(target, shift);
  if (new_raw == p.tcp.rwnd_raw) return;
  if (ctx_.tracer().enabled()) {
    // Provenance link: parent = the decision that set this allowance, so
    // trace_inspect can walk rwnd_write -> decision -> probe/round
    // observation for any flow.
    const std::uint64_t fs = traced_flow_span(ctx_.tracer(), e.key);
    ctx_.tracer().instant(ctx_.now(), sim::SpanKind::kRwndWrite,
                          e.decision_span, fs, target, p.tcp.rwnd_raw,
                          new_raw, synack ? 1 : 0);
  }
  // Patch the header exactly as the kernel module does: rewrite the
  // 16-bit window word and incrementally fix the checksum (RFC 1624).
  p.tcp.checksum =
      net::checksum_adjust(p.tcp.checksum, p.tcp.rwnd_raw, new_raw);
  m_checksum_recomputes_.inc();
  p.tcp.rwnd_raw = new_raw;
  m_rwnd_rewrites_.inc();
  if (sim::IncidentSink* inc = ctx_.incidents()) {
    const auto [hi, lo] = net::flow_key_words(e.key);
    inc->on_rwnd_rewrite(host_.id(), hi, lo, ctx_.now());
  }
  if (!synack) ++stats_.acks_rewritten;
}

void HypervisorShim::schedule_cleanup(const net::FlowKey& key) {
  ctx_.scheduler().schedule_in(cfg_.flow_cleanup_delay, [this, key] {
    if (flows_.erase(key)) ++stats_.flows_cleaned;
  });
}

std::unique_ptr<HypervisorShim> install_hwatch(net::Network& net,
                                               net::Host& host,
                                               const HWatchConfig& config,
                                               sim::Rng rng) {
  auto shim = std::make_unique<HypervisorShim>(net, host, config, rng);
  host.install_filter(shim.get());
  return shim;
}

}  // namespace hwatch::core
