// Token bucket used by the shim to pace batches of SYN-ACKs and probe
// trains (Section IV-D: "HWatch utilizes token buckets to pace between
// batches of SYN-ACK packets").
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"
#include "sim/units.hpp"

namespace hwatch::core {

class TokenBucket {
 public:
  /// `rate` refills tokens (bytes/s equivalent: tokens are bytes here);
  /// `burst` caps accumulation.
  TokenBucket(sim::DataRate rate, std::uint64_t burst_bytes)
      : rate_(rate), burst_(burst_bytes), tokens_(burst_bytes) {}

  /// Refills for elapsed time then tries to take `bytes`.
  bool try_consume(std::uint64_t bytes, sim::TimePs now) {
    refill(now);
    if (tokens_ < bytes) return false;
    tokens_ -= bytes;
    return true;
  }

  /// Time until `bytes` tokens will be available (0 when already there).
  sim::TimePs time_until_available(std::uint64_t bytes, sim::TimePs now) {
    refill(now);
    if (tokens_ >= bytes) return 0;
    const std::uint64_t missing = bytes - tokens_;
    return rate_.transmission_time(missing);
  }

  std::uint64_t tokens(sim::TimePs now) {
    refill(now);
    return tokens_;
  }

 private:
  void refill(sim::TimePs now) {
    if (now <= last_refill_) return;
    tokens_ = std::min(burst_, tokens_ + rate_.bytes_in(now - last_refill_));
    last_refill_ = now;
  }

  sim::DataRate rate_;
  std::uint64_t burst_;
  std::uint64_t tokens_;
  sim::TimePs last_refill_ = 0;
};

}  // namespace hwatch::core
