// Hypervisor flow table.
//
// Mirrors the kernel-module design in Section IV-D: entries are created
// at connection set-up (hash on the 4-tuple), store the window-scale
// factors exchanged in SYN/SYN-ACK, the per-round ECN mark statistics,
// the probe-train tallies, and the current window allowance the shim
// enforces; entries are cleared when a FIN is observed.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hwatch/delay_watcher.hpp"
#include "net/packet.hpp"
#include "sim/annotations.hpp"
#include "sim/time.hpp"

namespace hwatch::core {

/// Role of the local host for a given flow (data direction src -> dst).
enum class FlowRole : std::uint8_t { kSender = 0, kReceiver };

struct FlowEntry {
  net::FlowKey key;  // data direction: sender -> receiver
  FlowRole role = FlowRole::kSender;

  // ---- window-scale bookkeeping (both directions) ----
  /// Shift announced by the remote data sender in its SYN.
  std::uint8_t sender_wscale = 0;
  /// Shift announced by the local guest in its SYN-ACK (receiver role):
  /// the shim must encode rewritten windows with this shift.
  std::uint8_t receiver_wscale = 0;
  bool syn_seen = false;
  bool synack_seen = false;
  /// Whether the guest negotiated ECN itself (ECE+CWR on its SYN); when
  /// false the shim may stamp/strip ECT transparently.
  bool guest_ecn_capable = false;

  // ---- receiver-role ECN statistics (current observation round) ----
  std::uint64_t unmarked = 0;  // data packets without CE this round
  std::uint64_t marked = 0;    // data packets with CE this round
  sim::TimePs round_start = 0;
  std::uint64_t clean_rounds = 0;  // consecutive rounds without a mark

  // ---- probe-train tallies (receiver role) ----
  std::uint64_t probe_unmarked = 0;
  std::uint64_t probe_marked = 0;

  // ---- enforcement state ----
  /// Current window cap in bytes; no rewriting happens until the first
  /// decision sets it.
  std::optional<std::uint64_t> allowance_bytes;
  struct PendingGrant {
    sim::TimePs release_time;
    std::uint64_t bytes;
  };
  std::vector<PendingGrant> pending_grants;

  // ---- sender-role probe state ----
  std::uint32_t probes_sent = 0;
  bool syn_held = false;

  /// A SYN-ACK for this flow is sitting in the admission-pacing queue
  /// (duplicates from SYN retransmissions are suppressed meanwhile).
  bool synack_queued = false;

  /// Data bytes seen leaving this host for the flow (sender role);
  /// drives the short-flow DSCP prioritization option.
  std::uint64_t bytes_sent_seen = 0;

  bool fin_seen = false;

  /// SpanTracer id of the latest window_policy decision for this flow
  /// (0 = none yet); links every rwnd rewrite back to the observation
  /// that caused it.
  std::uint64_t decision_span = 0;

  /// Applies every grant that has come due.
  void apply_due_grants(sim::TimePs now) {
    std::size_t kept = 0;
    for (auto& g : pending_grants) {
      if (g.release_time <= now) {
        allowance_bytes = allowance_bytes.value_or(0) + g.bytes;
      } else {
        pending_grants[kept++] = g;
      }
    }
    pending_grants.resize(kept);
  }
};

class HWATCH_SHARD_CONFINED FlowTable {
 public:
  /// Finds or creates the entry for a data-direction key.
  FlowEntry& upsert(const net::FlowKey& key, FlowRole role);

  FlowEntry* find(const net::FlowKey& key);
  const FlowEntry* find(const net::FlowKey& key) const;

  bool erase(const net::FlowKey& key) { return table_.erase(key) > 0; }

  std::size_t size() const { return table_.size(); }

  /// Total entries ever created (deployment-scale observability).
  std::uint64_t created() const { return created_; }

 private:
  std::unordered_map<net::FlowKey, FlowEntry, net::FlowKeyHash> table_;
  std::uint64_t created_ = 0;
};

}  // namespace hwatch::core
