#include "hwatch/window_policy.hpp"

#include <algorithm>

namespace hwatch::core {

const char* to_string(BatchMode mode) {
  switch (mode) {
    case BatchMode::kSingleShot:
      return "single-shot";
    case BatchMode::kCoalesced:
      return "coalesced-2batch";
    case BatchMode::kThreeBatch:
      return "three-batch";
  }
  return "?";
}

BatchPlan plan_window(std::uint64_t unmarked, std::uint64_t marked,
                      const WindowPolicyConfig& cfg, sim::Rng* rng) {
  BatchPlan plan;

  // Split X_M into an early and a late half.  For X_M == 1 the paper
  // places the packet in either batch with probability 1/2.
  std::uint64_t early_m = (marked + 1) / 2;
  std::uint64_t late_m = marked / 2;
  if (marked == 1 && rng != nullptr && rng->chance(0.5)) {
    early_m = 0;
    late_m = 1;
  }

  switch (cfg.mode) {
    case BatchMode::kSingleShot:
      plan.immediate_packets = unmarked + marked;
      break;
    case BatchMode::kCoalesced:
      plan.immediate_packets = unmarked + early_m;
      if (late_m > 0) {
        plan.deferred.push_back(DeferredGrant{cfg.batch_interval, late_m});
      }
      break;
    case BatchMode::kThreeBatch:
      plan.immediate_packets = unmarked;
      if (early_m > 0) {
        plan.deferred.push_back(DeferredGrant{cfg.batch_interval, early_m});
      }
      if (late_m > 0) {
        plan.deferred.push_back(
            DeferredGrant{2 * cfg.batch_interval, late_m});
      }
      break;
  }

  // Enforce the floor by pulling packets forward from deferred batches
  // (total quota is conserved); only when the whole plan is smaller than
  // the floor do we add fresh quota.
  if (plan.immediate_packets < cfg.min_packets) {
    std::uint64_t deficit = cfg.min_packets - plan.immediate_packets;
    for (auto it = plan.deferred.begin();
         deficit > 0 && it != plan.deferred.end();) {
      const std::uint64_t take = std::min(deficit, it->packets);
      it->packets -= take;
      plan.immediate_packets += take;
      deficit -= take;
      it = it->packets == 0 ? plan.deferred.erase(it) : std::next(it);
    }
    plan.immediate_packets += deficit;  // plan smaller than the floor
  }
  return plan;
}

}  // namespace hwatch::core
