// HypervisorShim — the HWatch end-host module (the paper's contribution).
//
// Installed as a PacketFilter on a host, it plays both roles of Figure 5:
//
//   Sender side (Rule 2 set-up):  an outbound guest SYN is held back
//   while a train of tiny Probe1 packets (38 bytes, ECT) is injected
//   towards the destination with non-uniform spacing inside ~RTT/2; the
//   SYN follows the train.  The probes sample the path's ECN state at
//   connection set-up — before the guest's (potentially large) initial
//   window can blast into a full buffer.
//
//   Receiver side:  probes are absorbed and tallied per flow; arriving
//   data packets feed per-round CE statistics; outgoing SYN-ACKs and
//   ACKs get their receive-window field rewritten to the Next-Fit
//   allowance (WindowPolicy) — scale-aware, checksum-fixed — throttling
//   the remote sender's effective (initial) window exactly as a
//   hypervisor kernel module would, with no guest or switch changes.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "hwatch/delay_watcher.hpp"

#include "hwatch/flow_table.hpp"
#include "hwatch/window_policy.hpp"
#include "net/filter.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "net/packet_ring.hpp"
#include "sim/annotations.hpp"
#include "sim/context.hpp"
#include "sim/random.hpp"

namespace hwatch::core {

struct HWatchConfig {
  /// Probe-train length at connection set-up (the paper uses the Linux
  /// default initial window, 10).  0 disables probing.
  std::uint32_t probe_count = 10;
  /// The whole train plus the SYN leaves within this span (paper: a
  /// reasonable bound is RTT/2 of added handshake delay).
  sim::TimePs probe_span = sim::microseconds(50);
  /// Extra payload carried by each probe (0 = pure 38-byte raw IP).
  std::uint32_t probe_payload_bytes = 0;

  /// Next-Fit batching behaviour and drain-time estimate.
  WindowPolicyConfig policy;

  /// Observation-round length for steady-state watching (Rule 1); about
  /// one RTT so a round covers a full window of ACK feedback.
  sim::TimePs round_interval = sim::microseconds(100);

  /// Connection-setup caution ("cautious congestion watch"): the probe
  /// train samples the path but cannot prove there is room for every
  /// member of a looming incast to start at the full initial window, so
  /// the setup grant is split — immediate/divisor released at once, the
  /// rest one drain-interval later.  1 disables the extra caution.
  std::uint32_t setup_caution_divisor = 2;

  /// Segment size used to convert packet counts to window bytes.
  std::uint32_t mss = net::kDefaultMss;

  /// Window floor: never throttle below this many bytes.
  std::uint64_t min_window_bytes = net::kDefaultMss;

  /// Secondary congestion signal (Section III-D): unmarked probes whose
  /// one-way delay is inflated — evidence of a standing queue the
  /// marking threshold has not flagged yet — are reclassified as
  /// congested before the setup window is planned.  `delay_drain_rate`
  /// converts inflation to queued packets (set to the access rate).
  bool use_delay_signal = false;
  sim::DataRate delay_drain_rate = sim::DataRate::gbps(10);

  /// Ceiling for re-opening after clean (mark-free) rounds.
  std::uint64_t max_window_bytes = 1u << 20;

  /// How long after a FIN the flow entry is kept (handles retransmitted
  /// FINs) before being cleared from the table.
  sim::TimePs flow_cleanup_delay = sim::milliseconds(10);

  /// Token-bucket pacing of SYN-ACK batches (Section IV-D): the
  /// receiving hypervisor admits at most `synack_batch_size` new
  /// connections per `synack_batch_interval`, holding further SYN-ACKs
  /// in a queue.  This staggers large request waves (the testbed's
  /// 1260-flow bursts) so admitted flows finish fast instead of all
  /// flows crawling together through an overloaded buffer.  Disabled by
  /// default; scenarios with massive fan-in enable it.
  bool pace_synacks = false;
  std::uint32_t synack_batch_size = 8;
  sim::TimePs synack_batch_interval = sim::microseconds(100);

  /// Preemptive alternative (for the R2 comparison benches): stamp the
  /// DSCP of control packets and of data from flows that have sent
  /// fewer than `priority_bytes_threshold` bytes, so PriorityQueue
  /// fabrics serve them first.  This is NOT part of HWatch proper — it
  /// needs priority-configured switches (violating R4) and starves bulk
  /// flows under sustained short-flow load (the R2 critique).
  bool prioritize_short_flows = false;
  std::uint64_t priority_bytes_threshold = 100 * 1024;

  /// Transparent ECT: when the guest VM is not ECN-capable (its SYN
  /// carried no ECE+CWR), the sending hypervisor stamps outbound data
  /// ECT(0) so switches can mark instead of drop, and the receiving
  /// hypervisor records and strips the CE mark before delivery, keeping
  /// the guest stack untouched (VM-autonomy, requirement R3).  This is
  /// how "Probe2" data-packet probing works for legacy-TCP tenants.
  bool transparent_ect = true;
};

struct ShimStats {
  std::uint64_t probes_injected = 0;
  std::uint64_t probe_bytes_injected = 0;
  std::uint64_t probes_absorbed = 0;
  std::uint64_t probes_absorbed_marked = 0;
  std::uint64_t syns_held = 0;
  std::uint64_t synacks_rewritten = 0;
  std::uint64_t synacks_paced = 0;       // delayed by admission pacing
  std::uint64_t synacks_deduplicated = 0;
  std::uint64_t acks_rewritten = 0;
  std::uint64_t window_decisions = 0;
  std::uint64_t flows_cleaned = 0;
};

class HWATCH_SHARD_CONFINED HypervisorShim final : public net::PacketFilter {
 public:
  HypervisorShim(net::Network& net, net::Host& host, HWatchConfig config,
                 sim::Rng rng);

  net::FilterVerdict on_outbound(net::Packet& p) override;
  net::FilterVerdict on_inbound(net::Packet& p) override;

  const ShimStats& stats() const { return stats_; }
  const HWatchConfig& config() const { return cfg_; }
  FlowTable& flow_table() { return flows_; }
  const FlowTable& flow_table() const { return flows_; }

 private:
  // --- sender role ---
  net::FilterVerdict hold_syn_and_probe(net::Packet& syn);
  void inject_probe(const net::FlowKey& key, std::uint32_t train_id);

  // --- receiver role ---
  void absorb_probe(const net::Packet& p);
  void note_inbound_syn(const net::Packet& p);
  void note_inbound_data(net::Packet& p);
  void rewrite_synack(net::Packet& p, FlowEntry& e);
  void rewrite_ack(net::Packet& p, FlowEntry& e);
  /// Admission pacing: returns kConsume when the SYN-ACK was queued (or
  /// was a duplicate of a queued one), kPass when it may leave now.
  net::FilterVerdict pace_synack(net::Packet& p, FlowEntry& e);
  void drain_synack_queue();
  void run_round_decision(FlowEntry& e);
  void apply_window(net::Packet& p, FlowEntry& e, bool synack);
  void schedule_cleanup(const net::FlowKey& key);

  net::Network& net_;
  sim::SimContext& ctx_;
  net::Host& host_;
  HWatchConfig cfg_;
  sim::Rng rng_;
  FlowTable flows_;
  ShimStats stats_;
  std::uint32_t next_train_id_ = 1;

  // Per-context observability counters (one branch each when the
  // registry is disabled); shared across all shims of the context.
  sim::Counter& m_rwnd_rewrites_;
  sim::Counter& m_checksum_recomputes_;
  sim::Counter& m_probe_trains_sent_;
  sim::Counter& m_probe_trains_recv_;
  sim::Counter& m_probes_absorbed_;
  sim::Counter& m_window_decisions_;

  /// Per-path (remote sender host) delay statistics: the uncongested
  /// baseline is learned across *all* flows from that host, so a fresh
  /// connection's probes can be judged against history (Section III-D,
  /// "any other packets flowing between the source-destination pairs").
  std::unordered_map<net::NodeId, DelayWatcher> path_delay_;

  // SYN-ACK admission pacing state.  PacketRing (not std::deque): the
  // pacing queue sits on the packet path, and deque churns a heap node
  // every few packets even at steady depth.
  net::PacketRing synack_queue_;
  sim::TimePs slot_start_ = 0;
  std::uint32_t slot_used_ = 0;
  bool drain_scheduled_ = false;
};

/// Creates and installs a shim on `host`; the host keeps using it by
/// pointer, the returned unique_ptr owns it (keep it alive scenario-long).
std::unique_ptr<HypervisorShim> install_hwatch(net::Network& net,
                                               net::Host& host,
                                               const HWatchConfig& config,
                                               sim::Rng rng);

}  // namespace hwatch::core
