// Next-Fit window policy (the paper's Section IV theory, made executable).
//
// Inputs are the per-flow ECN statistics mined at the receiving
// hypervisor over one observation round: `unmarked` packets arrived
// without CE (X_UM, they fit below the marking threshold K) and `marked`
// packets arrived CE-marked (X_M, they landed in the region between K and
// the buffer limit).  The theorems translate directly:
//
//   Theorem IV.1  — X_UM packets per flow can be granted immediately.
//   Theorem IV.2  — the X_M packets must be split across two later
//                   batches of X_M/2, spaced by the drain time T.
//   Cor. IV.2.1   — hence three batches in total mitigate incast loss.
//   Cor. IV.2.2   — batches 1 and 2 may be coalesced (X_UM + X_M/2 now,
//                   X_M/2 after T), shortening completion to <= 2 RTT
//                   (Lemma IV.3); this is HWatch's default.
//
// The kSingleShot mode (everything now) is the ablation baseline that
// shows why batching matters.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace hwatch::core {

enum class BatchMode : std::uint8_t {
  kSingleShot = 0,  // no batching: grant X_UM + X_M at once (ablation)
  kCoalesced,       // Corollary IV.2.2: (X_UM + ceil(X_M/2)) now, rest at T
  kThreeBatch,      // Theorem IV.2 verbatim: X_UM now, X_M/2 at T and 2T
};

const char* to_string(BatchMode mode);

/// One deferred window grant: `packets` more may be admitted `delay`
/// after the decision.
struct DeferredGrant {
  sim::TimePs delay;
  std::uint64_t packets;

  friend bool operator==(const DeferredGrant&, const DeferredGrant&) =
      default;
};

/// A window decision: an immediate grant plus zero or more deferred ones.
struct BatchPlan {
  std::uint64_t immediate_packets = 0;
  std::vector<DeferredGrant> deferred;

  std::uint64_t total_packets() const {
    std::uint64_t total = immediate_packets;
    for (const auto& d : deferred) total += d.packets;
    return total;
  }
};

struct WindowPolicyConfig {
  BatchMode mode = BatchMode::kCoalesced;
  /// Drain-time estimate T between batches; the paper argues T ~ RTT/2
  /// for the configurations of interest.
  sim::TimePs batch_interval = sim::microseconds(50);
  /// Floor so a window decision can never stall a flow entirely.
  std::uint64_t min_packets = 1;
};

/// Pure policy: maps one round of (unmarked, marked) counts to a batch
/// plan.  `rng` resolves the X_M == 1 coin flip the paper specifies (the
/// lone marked packet goes to an early or late batch with probability
/// 1/2); pass nullptr to place it deterministically in the early batch.
BatchPlan plan_window(std::uint64_t unmarked, std::uint64_t marked,
                      const WindowPolicyConfig& cfg,
                      sim::Rng* rng = nullptr);

}  // namespace hwatch::core
