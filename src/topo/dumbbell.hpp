// Dumbbell topology: N left hosts -- switch L -- bottleneck -- switch R
// -- N right hosts.  This is the paper's simulation fabric (Figures 1, 2,
// 8, 9): 10 Gb/s everywhere, 100 us base RTT, 250-packet bottleneck
// buffer.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"

namespace hwatch::topo {

struct DumbbellConfig {
  std::uint32_t pairs = 50;  // left/right host pairs
  sim::DataRate edge_rate = sim::DataRate::gbps(10);
  sim::DataRate bottleneck_rate = sim::DataRate::gbps(10);
  /// Base round-trip across host-L-R-host; split over the links.
  sim::TimePs base_rtt = sim::microseconds(100);
  net::QdiscFactory edge_qdisc;        // required
  net::QdiscFactory bottleneck_qdisc;  // required
};

struct Dumbbell {
  std::vector<net::Host*> left;
  std::vector<net::Host*> right;
  net::Switch* switch_left = nullptr;
  net::Switch* switch_right = nullptr;
  /// The congested direction: switch L -> switch R.
  net::Link* bottleneck = nullptr;
  net::Link* bottleneck_reverse = nullptr;
};

/// Builds the topology into `net` and computes routes.
Dumbbell build_dumbbell(net::Network& net, const DumbbellConfig& cfg);

}  // namespace hwatch::topo
