// Sharding a single large fabric for conservative-lookahead parallel
// simulation.
//
// The partition is a pure function of the topology shape, never of the
// worker-thread count: each edge switch and its hosts form one shard,
// the aggregation switches of a pod are spread across that pod's edge
// shards, and core switches round-robin across all shards.  Every
// inter-switch link whose endpoints land in different shards becomes a
// pair of unidirectional cross-shard links: the link (queue + serializer)
// lives on the sender's SimContext, and completed transmissions are
// pushed into the destination shard's CrossShardChannel stamped with
// their arrival time.  The minimum cross-shard propagation delay is the
// lookahead that bounds the ShardGroup sync window.
//
// Because the logical partition is fixed, HWATCH_SHARDS (the worker
// thread count) cannot change which context owns which event — the
// basis of the byte-identical-manifest invariant.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/shard_channel.hpp"
#include "sim/context.hpp"
#include "topo/fat_tree.hpp"

namespace hwatch::topo {

/// Logical shard assignment for a k-ary fat-tree: shard count equals the
/// edge-switch count E = k*(k/2); edge switch (pod p, index e) and its
/// hosts map to shard p*(k/2)+e, aggregation (pod p, index a) to shard
/// p*(k/2)+a, and core c to shard c % E.  Validates shape via
/// fat_tree_hosts_per_edge (throws std::invalid_argument naming the bad
/// parameter).
struct FatTreeShardPlan {
  std::uint32_t k = 0;
  std::uint32_t hosts_per_edge = 0;
  std::uint32_t shard_count = 0;  // = k * (k/2), one per edge switch

  /// agg_shard[pod*(k/2)+a] = owning shard of aggregation switch a of pod.
  std::vector<std::uint32_t> agg_shard;
  /// core_shard[c] = owning shard of core switch c.
  std::vector<std::uint32_t> core_shard;

  std::uint32_t shard_of_edge(std::uint32_t pod, std::uint32_t e) const {
    return pod * (k / 2) + e;
  }
};

FatTreeShardPlan partition_fat_tree(std::uint32_t k, std::uint32_t hosts = 0);

/// Leaf-spine partition: one shard per rack (leaf r and its hosts ->
/// shard r), spines round-robin across rack shards.
struct LeafSpineShardPlan {
  std::uint32_t shard_count = 0;           // = racks
  std::vector<std::uint32_t> spine_shard;  // spine s -> shard s % racks
};

LeafSpineShardPlan partition_leaf_spine(std::uint32_t racks,
                                        std::uint32_t spines);

struct ShardedFatTreeConfig {
  std::uint32_t k = 8;      // must be even and >= 2
  std::uint32_t hosts = 0;  // total hosts; 0 = classic k^3/4
  sim::DataRate link_rate = sim::DataRate::gbps(10);
  sim::TimePs base_rtt = sim::microseconds(100);
  net::QdiscFactory qdisc;  // used on every port
  std::uint64_t seed = 1;   // base seed; each shard derives its own
  std::size_t inbox_capacity = 1024;  // per cross-shard channel
};

/// A fat-tree instantiated as one SimContext + Network per shard.  Node
/// ids are one global space sliced contiguously per shard (layout within
/// a shard: hosts, edge, agg, owned core if any), so FlowKeys and routes
/// stay meaningful across shard boundaries.  Packet uids are striped
/// (shard s stamps uids starting at s<<48) so the cross-shard drain
/// order (deliver_time, uid) is total.
struct ShardedFatTree {
  struct Shard {
    std::unique_ptr<sim::SimContext> ctx;
    std::unique_ptr<net::Network> net;
    std::vector<net::Host*> hosts;  // ascending id
    net::Switch* edge = nullptr;
    net::Switch* agg = nullptr;   // the one aggregation this shard owns
    net::Switch* core = nullptr;  // owned core, or nullptr (shards >= (k/2)^2)
    /// Channels delivering INTO this shard, fixed creation order; drain
    /// with net::drain_cross_shard_channels(ingress, scratch) at every
    /// window start.
    std::vector<net::CrossShardChannel*> ingress;
    std::vector<std::unique_ptr<net::CrossShardChannel>> channels;  // owners
  };

  FatTreeShardPlan plan;
  std::vector<Shard> shards;
  std::vector<net::Host*> hosts;  // global pod-major host list
  /// Minimum cross-shard propagation delay = the conservative sync
  /// window: events a shard runs in (T, T+lookahead] cannot be affected
  /// by remote packets sent after T.
  sim::TimePs lookahead = 0;
  std::uint64_t cross_links = 0;  // directed cross-shard links
};

/// Builds the sharded fabric with structural routes (no global BFS):
/// edge switches hold exact routes for their hosts plus default ECMP
/// uplinks; aggregation and core switches hold per-edge-shard host-range
/// routes.  Throws std::invalid_argument (naming the parameter) on
/// invalid shape, missing qdisc, or a base_rtt too small to yield a
/// positive per-link delay.
ShardedFatTree build_sharded_fat_tree(const ShardedFatTreeConfig& cfg);

}  // namespace hwatch::topo
