#include "topo/leaf_spine.hpp"

#include <stdexcept>
#include <string>

namespace hwatch::topo {
namespace {

// Append-style concat: GCC 12's -Wrestrict misfires on the
// `const char* + std::string&&` operator+ overload once surrounding
// code inlines differently, so node names are built without it.
std::string indexed_name(const char* prefix, std::uint32_t i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

}  // namespace

LeafSpine build_leaf_spine(net::Network& net, const LeafSpineConfig& cfg) {
  if (!cfg.edge_qdisc || !cfg.fabric_qdisc) {
    throw std::invalid_argument("leaf_spine: qdisc factories are required");
  }
  if (cfg.racks == 0 || cfg.hosts_per_rack == 0 || cfg.spines == 0) {
    throw std::invalid_argument("leaf_spine: empty dimension");
  }
  LeafSpine t;

  // A host-to-host path in different racks crosses 4 links one way
  // (host->leaf, leaf->spine, spine->leaf, leaf->host).
  const sim::TimePs per_link = cfg.base_rtt / 8;

  for (std::uint32_t s = 0; s < cfg.spines; ++s) {
    t.spines.push_back(&net.add_switch(indexed_name("spine", s)));
  }
  for (std::uint32_t r = 0; r < cfg.racks; ++r) {
    net::Switch& leaf = net.add_switch(indexed_name("leaf", r));
    t.leaves.push_back(&leaf);
    t.hosts.emplace_back();
    for (std::uint32_t h = 0; h < cfg.hosts_per_rack; ++h) {
      std::string host_name = indexed_name("r", r);
      host_name += 'h';
      host_name += std::to_string(h);
      net::Host& host = net.add_host(std::move(host_name));
      net.connect(host, leaf, cfg.host_rate, per_link, cfg.edge_qdisc);
      t.hosts.back().push_back(&host);
    }
  }
  for (net::Switch* spine : t.spines) {
    for (net::Switch* leaf : t.leaves) {
      auto duplex = net.connect(*spine, *leaf, cfg.uplink_rate, per_link,
                                cfg.fabric_qdisc);
      t.downlinks.push_back(duplex.forward);  // spine -> leaf
    }
  }

  net.compute_routes();
  return t;
}

}  // namespace hwatch::topo
