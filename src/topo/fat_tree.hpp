// k-ary fat-tree (Al-Fares et al., SIGCOMM'08), the canonical multi-path
// datacenter fabric the paper cites as its deployment context.  Included
// as an extension so the HWatch results can be checked on a topology with
// genuine ECMP path diversity.
//
// Layout for even k: (k/2)^2 core switches; k pods, each with k/2
// aggregation and k/2 edge switches; each edge switch serves
// hosts_per_edge hosts (k/2 in the classic layout; `hosts` overrides the
// total for scale studies, as long as it divides evenly across the
// k*(k/2) edge switches).
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"

namespace hwatch::topo {

struct FatTreeConfig {
  std::uint32_t k = 4;      // must be even and >= 2
  std::uint32_t hosts = 0;  // total hosts; 0 = classic k^3/4
  sim::DataRate link_rate = sim::DataRate::gbps(10);
  sim::TimePs base_rtt = sim::microseconds(100);
  net::QdiscFactory qdisc;  // used on every port
};

struct FatTree {
  std::vector<net::Host*> hosts;           // pod-major order
  std::vector<net::Switch*> edges;         // k/2 per pod
  std::vector<net::Switch*> aggregations;  // k/2 per pod
  std::vector<net::Switch*> cores;         // (k/2)^2

  std::uint32_t k = 0;
  std::uint32_t hosts_per_edge = 0;
  std::uint32_t hosts_per_pod() const { return (k / 2) * hosts_per_edge; }
};

/// Validates a fat-tree shape and returns the per-edge host count.
/// `hosts` = 0 means the classic k^3/4.  Throws std::invalid_argument
/// with a message naming the offending parameter when k is odd, zero or
/// < 2, or when `hosts` does not divide evenly across the k*(k/2) edge
/// switches.
std::uint32_t fat_tree_hosts_per_edge(std::uint32_t k, std::uint32_t hosts);

FatTree build_fat_tree(net::Network& net, const FatTreeConfig& cfg);

}  // namespace hwatch::topo
