#include "topo/dumbbell.hpp"

#include <stdexcept>
#include <string>

namespace hwatch::topo {
namespace {

// Append-style concat: GCC 12's -Wrestrict misfires on the
// `const char* + std::string&&` operator+ overload once surrounding
// code inlines differently, so node names are built without it.
std::string indexed_name(const char* prefix, std::uint32_t i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

}  // namespace

Dumbbell build_dumbbell(net::Network& net, const DumbbellConfig& cfg) {
  if (!cfg.edge_qdisc || !cfg.bottleneck_qdisc) {
    throw std::invalid_argument("dumbbell: qdisc factories are required");
  }
  if (cfg.pairs == 0) {
    throw std::invalid_argument("dumbbell: need at least one host pair");
  }
  Dumbbell d;
  d.switch_left = &net.add_switch("swL");
  d.switch_right = &net.add_switch("swR");

  // One-way path crosses two edge links and the bottleneck; give each
  // link an equal share of base_rtt / 2 / 3.
  const sim::TimePs per_link = cfg.base_rtt / 6;

  for (std::uint32_t i = 0; i < cfg.pairs; ++i) {
    net::Host& l = net.add_host(indexed_name("L", i));
    net.connect(l, *d.switch_left, cfg.edge_rate, per_link, cfg.edge_qdisc);
    d.left.push_back(&l);
  }
  for (std::uint32_t i = 0; i < cfg.pairs; ++i) {
    net::Host& r = net.add_host(indexed_name("R", i));
    net.connect(r, *d.switch_right, cfg.edge_rate, per_link,
                cfg.edge_qdisc);
    d.right.push_back(&r);
  }

  auto core = net.connect(*d.switch_left, *d.switch_right,
                          cfg.bottleneck_rate, per_link,
                          cfg.bottleneck_qdisc);
  d.bottleneck = core.forward;
  d.bottleneck_reverse = core.backward;

  net.compute_routes();
  return d;
}

}  // namespace hwatch::topo
