// Leaf-spine topology mirroring the paper's testbed (Section VI): 4 racks
// of servers behind non-blocking leaf switches, one spine (the NetFPGA
// "reference switch"), 1 Gb/s links, ~200 us base RTT.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"

namespace hwatch::topo {

struct LeafSpineConfig {
  std::uint32_t racks = 4;
  std::uint32_t hosts_per_rack = 21;  // 84 servers total, as the testbed
  sim::DataRate host_rate = sim::DataRate::gbps(1);
  sim::DataRate uplink_rate = sim::DataRate::gbps(1);  // oversubscribed
  std::uint32_t spines = 1;
  sim::TimePs base_rtt = sim::microseconds(200);
  net::QdiscFactory edge_qdisc;    // host <-> leaf ports
  net::QdiscFactory fabric_qdisc;  // leaf <-> spine ports
};

struct LeafSpine {
  /// hosts[r] = hosts in rack r.
  std::vector<std::vector<net::Host*>> hosts;
  std::vector<net::Switch*> leaves;
  std::vector<net::Switch*> spines;
  /// downlinks[r] = spine -> leaf r link (the hot spot for rack-bound
  /// incast); one entry per (spine, rack) pair ordered spine-major.
  std::vector<net::Link*> downlinks;
};

LeafSpine build_leaf_spine(net::Network& net, const LeafSpineConfig& cfg);

}  // namespace hwatch::topo
