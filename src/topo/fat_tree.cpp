#include "topo/fat_tree.hpp"

#include <stdexcept>
#include <string>

namespace hwatch::topo {

std::uint32_t fat_tree_hosts_per_edge(std::uint32_t k,
                                      std::uint32_t hosts) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument(
        "FatTreeConfig.k: must be even and >= 2 (got " + std::to_string(k) +
        ")");
  }
  const std::uint32_t edge_count = k * (k / 2);
  if (hosts == 0) return k / 2;  // classic k^3/4 total
  if (hosts % edge_count != 0) {
    throw std::invalid_argument(
        "FatTreeConfig.hosts: " + std::to_string(hosts) +
        " hosts do not divide evenly across the " +
        std::to_string(edge_count) + " edge switches of a k=" +
        std::to_string(k) + " fat-tree (hosts must be a multiple of " +
        std::to_string(edge_count) + ")");
  }
  return hosts / edge_count;
}

FatTree build_fat_tree(net::Network& net, const FatTreeConfig& cfg) {
  const std::uint32_t hosts_per_edge =
      fat_tree_hosts_per_edge(cfg.k, cfg.hosts);
  if (!cfg.qdisc) {
    throw std::invalid_argument(
        "FatTreeConfig.qdisc: a qdisc factory is required");
  }
  const std::uint32_t k = cfg.k;
  const std::uint32_t half = k / 2;
  // Longest path: host-edge-agg-core-agg-edge-host = 6 links one way.
  const sim::TimePs per_link = cfg.base_rtt / 12;

  FatTree t;
  t.k = k;
  t.hosts_per_edge = hosts_per_edge;

  for (std::uint32_t c = 0; c < half * half; ++c) {
    t.cores.push_back(&net.add_switch("core" + std::to_string(c)));
  }
  for (std::uint32_t pod = 0; pod < k; ++pod) {
    const std::string ps = std::to_string(pod);
    for (std::uint32_t a = 0; a < half; ++a) {
      net::Switch& agg =
          net.add_switch("p" + ps + "agg" + std::to_string(a));
      t.aggregations.push_back(&agg);
      // Aggregation a in every pod connects to cores [a*half, a*half+half).
      for (std::uint32_t c = 0; c < half; ++c) {
        net.connect(agg, *t.cores[a * half + c], cfg.link_rate, per_link,
                    cfg.qdisc);
      }
    }
    for (std::uint32_t e = 0; e < half; ++e) {
      net::Switch& edge =
          net.add_switch("p" + ps + "edge" + std::to_string(e));
      t.edges.push_back(&edge);
      for (std::uint32_t a = 0; a < half; ++a) {
        net.connect(edge, *t.aggregations[pod * half + a], cfg.link_rate,
                    per_link, cfg.qdisc);
      }
      for (std::uint32_t h = 0; h < hosts_per_edge; ++h) {
        net::Host& host = net.add_host("p" + ps + "e" + std::to_string(e) +
                                       "h" + std::to_string(h));
        net.connect(host, edge, cfg.link_rate, per_link, cfg.qdisc);
        t.hosts.push_back(&host);
      }
    }
  }

  net.compute_routes();
  return t;
}

}  // namespace hwatch::topo
