#include "topo/shard.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace hwatch::topo {

namespace {

/// Same splitmix64 mix as api::derive_point_seed (duplicated here so the
/// topo layer stays independent of api): shard s of base seed B always
/// gets the same context seed, on every platform.
std::uint64_t shard_seed(std::uint64_t base_seed, std::uint64_t shard) {
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (shard + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

FatTreeShardPlan partition_fat_tree(std::uint32_t k, std::uint32_t hosts) {
  FatTreeShardPlan plan;
  plan.hosts_per_edge = fat_tree_hosts_per_edge(k, hosts);  // validates k
  plan.k = k;
  const std::uint32_t half = k / 2;
  plan.shard_count = k * half;
  plan.agg_shard.resize(static_cast<std::size_t>(k) * half);
  for (std::uint32_t pod = 0; pod < k; ++pod) {
    for (std::uint32_t a = 0; a < half; ++a) {
      plan.agg_shard[pod * half + a] = pod * half + a;
    }
  }
  plan.core_shard.resize(static_cast<std::size_t>(half) * half);
  for (std::uint32_t c = 0; c < half * half; ++c) {
    plan.core_shard[c] = c % plan.shard_count;
  }
  return plan;
}

LeafSpineShardPlan partition_leaf_spine(std::uint32_t racks,
                                        std::uint32_t spines) {
  if (racks == 0) {
    throw std::invalid_argument(
        "LeafSpineConfig.racks: must be >= 1 to partition");
  }
  LeafSpineShardPlan plan;
  plan.shard_count = racks;
  plan.spine_shard.resize(spines);
  for (std::uint32_t s = 0; s < spines; ++s) plan.spine_shard[s] = s % racks;
  return plan;
}

ShardedFatTree build_sharded_fat_tree(const ShardedFatTreeConfig& cfg) {
  if (!cfg.qdisc) {
    throw std::invalid_argument(
        "ShardedFatTreeConfig.qdisc: a qdisc factory is required");
  }
  ShardedFatTree t;
  t.plan = partition_fat_tree(cfg.k, cfg.hosts);

  const std::uint32_t k = cfg.k;
  const std::uint32_t half = k / 2;
  const std::uint32_t shard_count = t.plan.shard_count;
  const std::uint32_t cores_total = half * half;
  const std::uint32_t hosts_per_edge = t.plan.hosts_per_edge;
  // Same per-link delay as build_fat_tree: the longest path is 6 links
  // one way.  It is also the lookahead, so it must be positive.
  const sim::TimePs per_link = cfg.base_rtt / 12;
  if (per_link <= 0) {
    throw std::invalid_argument(
        "ShardedFatTreeConfig.base_rtt: " + std::to_string(cfg.base_rtt) +
        " ps yields a non-positive per-link delay (base_rtt / 12), which "
        "cannot bound the cross-shard sync window");
  }
  t.lookahead = per_link;

  // --- id layout: one contiguous slice per shard, prefix-summed ---
  std::vector<net::NodeId> base(shard_count);
  net::NodeId next_id = 0;
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    base[s] = next_id;
    next_id += hosts_per_edge + 2 + (s < cores_total ? 1 : 0);
  }

  // --- nodes: creation order inside a shard fixes local ids ---
  t.shards.resize(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    ShardedFatTree::Shard& sh = t.shards[s];
    sh.ctx = std::make_unique<sim::SimContext>(shard_seed(cfg.seed, s));
    sh.ctx->set_packet_uid_base(static_cast<std::uint64_t>(s) << 48);
    sh.net = std::make_unique<net::Network>(*sh.ctx, base[s]);
    const std::uint32_t pod = s / half;
    const std::uint32_t e = s % half;
    const std::string prefix = "p" + std::to_string(pod);
    for (std::uint32_t h = 0; h < hosts_per_edge; ++h) {
      sh.hosts.push_back(&sh.net->add_host(prefix + "e" + std::to_string(e) +
                                           "h" + std::to_string(h)));
    }
    sh.edge = &sh.net->add_switch(prefix + "edge" + std::to_string(e));
    sh.agg = &sh.net->add_switch(prefix + "agg" + std::to_string(e));
    if (s < cores_total) {
      sh.core = &sh.net->add_switch("core" + std::to_string(s));
    }
  }
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    for (net::Host* h : t.shards[s].hosts) t.hosts.push_back(h);
  }

  // --- links: one canonical enumeration order, so every shard's ingress
  // channel list (and with it the drain order) is fixed by the topology.
  // duplex() returns {u->v, v->u}.
  auto duplex = [&](std::uint32_t su, net::Node& u, std::uint32_t sv,
                    net::Node& v) -> std::pair<net::Link*, net::Link*> {
    if (su == sv) {
      auto d =
          t.shards[su].net->connect(u, v, cfg.link_rate, per_link, cfg.qdisc);
      return {d.forward, d.backward};
    }
    auto one_way = [&](std::uint32_t src_shard, net::Node& src,
                       std::uint32_t dst_shard, net::Node& dst) {
      ShardedFatTree::Shard& dst_sh = t.shards[dst_shard];
      auto ch = std::make_unique<net::CrossShardChannel>(*dst_sh.ctx, &dst,
                                                         cfg.inbox_capacity);
      net::Link* link = t.shards[src_shard].net->connect_cross_shard(
          src, dst, cfg.link_rate, per_link, cfg.qdisc, &ch->inbox());
      dst_sh.ingress.push_back(ch.get());
      dst_sh.channels.push_back(std::move(ch));
      ++t.cross_links;
      return link;
    };
    net::Link* uv = one_way(su, u, sv, v);
    net::Link* vu = one_way(sv, v, su, u);
    return {uv, vu};
  };

  std::vector<std::vector<net::Link*>> host_down(
      shard_count, std::vector<net::Link*>(hosts_per_edge));
  std::vector<std::vector<net::Link*>> edge_up(
      shard_count, std::vector<net::Link*>(half));  // [s][a] edge->agg(pod,a)
  std::vector<std::vector<net::Link*>> agg_down(
      shard_count, std::vector<net::Link*>(half));  // [s][e] agg->edge(pod,e)
  std::vector<std::vector<net::Link*>> agg_up(
      shard_count, std::vector<net::Link*>(half));  // [s][j] agg->core
  std::vector<std::vector<net::Link*>> core_down(
      cores_total, std::vector<net::Link*>(k));  // [c][pod] core->agg

  for (std::uint32_t s = 0; s < shard_count; ++s) {
    for (std::uint32_t h = 0; h < hosts_per_edge; ++h) {
      auto [up, down] =
          duplex(s, *t.shards[s].hosts[h], s, *t.shards[s].edge);
      host_down[s][h] = down;
    }
  }
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    const std::uint32_t pod = s / half;
    const std::uint32_t e = s % half;
    for (std::uint32_t a = 0; a < half; ++a) {
      const std::uint32_t sa = t.plan.agg_shard[pod * half + a];
      auto [up, down] = duplex(s, *t.shards[s].edge, sa, *t.shards[sa].agg);
      edge_up[s][a] = up;
      agg_down[sa][e] = down;
    }
  }
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    const std::uint32_t pod = s / half;
    // The aggregation this shard owns has index a = s % half within its
    // pod and connects to cores [a*half, a*half + half).
    const std::uint32_t a = s % half;
    for (std::uint32_t j = 0; j < half; ++j) {
      const std::uint32_t c = a * half + j;
      const std::uint32_t sc = t.plan.core_shard[c];
      auto [up, down] = duplex(s, *t.shards[s].agg, sc, *t.shards[sc].core);
      agg_up[s][j] = up;
      core_down[c][pod] = down;
    }
  }

  // --- structural routes (no global BFS; memory stays O(hosts) total
  // instead of O(hosts^2) route-map entries) ---
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    const std::uint32_t pod = s / half;

    // Edge: exact routes down to local hosts, ECMP default up.
    for (std::uint32_t h = 0; h < hosts_per_edge; ++h) {
      t.shards[s].edge->add_route(t.shards[s].hosts[h]->id(),
                                  host_down[s][h]);
    }
    t.shards[s].edge->set_default_routes(edge_up[s]);

    // Aggregation: one host-range per edge shard of its pod, default up
    // to its cores.
    for (std::uint32_t e2 = 0; e2 < half; ++e2) {
      const std::uint32_t s2 = pod * half + e2;
      t.shards[s].agg->add_range_route(
          base[s2], base[s2] + hosts_per_edge - 1, agg_down[s][e2]);
    }
    t.shards[s].agg->set_default_routes(agg_up[s]);

    // Core (if owned): each pod's host ranges point at the one
    // aggregation this core reaches in that pod.
    if (t.shards[s].core != nullptr) {
      for (std::uint32_t p2 = 0; p2 < k; ++p2) {
        for (std::uint32_t e2 = 0; e2 < half; ++e2) {
          const std::uint32_t s2 = p2 * half + e2;
          t.shards[s].core->add_range_route(
              base[s2], base[s2] + hosts_per_edge - 1, core_down[s][p2]);
        }
      }
    }
  }

  return t;
}

}  // namespace hwatch::topo
