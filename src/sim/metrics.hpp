// MetricsRegistry — named counters, gauges and fixed-bucket histograms
// for one simulation instance.
//
// Overhead discipline (same as SimLog): a disabled registry costs one
// predictable branch per hot-path hit.  Counter::inc and
// Histogram::record test the registry's enabled flag and return; no
// allocation, no hashing, no formatting.  Name lookup (hashing) happens
// once, at component construction, never per event — components cache
// the returned Counter*/Histogram* and bump it directly.  Scenario code
// additionally skips the wiring entirely (no histogram attached, no
// gauges registered) when metrics collection is off, so the default
// fast path is identical to the pre-observability simulator.
//
// Determinism: instruments live in the per-context registry, so two
// contexts share no metric state and parallel sweep points produce
// byte-identical snapshots regardless of thread count.  Snapshots are
// sorted by name, independent of registration order.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/unique_function.hpp"

namespace hwatch::sim {

class MetricsRegistry;

namespace metrics_detail {
/// Pass-key: only MetricsRegistry can mint one, so Counter/Histogram
/// construction stays registry-only while std::make_unique still works
/// (no raw `new` inside the registry).
class RegistryKey {
  friend class hwatch::sim::MetricsRegistry;
  RegistryKey() = default;
};
}  // namespace metrics_detail

/// Monotonic named counter.  inc() is one branch when disabled.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    if (*enabled_) value_ += delta;
  }
  std::uint64_t value() const { return value_; }
  const std::string& name() const { return name_; }

  Counter(metrics_detail::RegistryKey, std::string name, const bool* enabled)
      : name_(std::move(name)), enabled_(enabled) {}

 private:
  std::string name_;
  const bool* enabled_;
  std::uint64_t value_ = 0;
};

/// Fixed-bucket histogram: bucket i counts samples <= bounds[i]; one
/// extra overflow bucket counts the rest.  record() is one branch when
/// disabled; when enabled, a binary search over a handful of bounds.
class Histogram {
 public:
  void record(double v) {
    if (!*enabled_) return;
    std::size_t lo = 0, hi = bounds_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (v <= bounds_[mid]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    ++counts_[lo];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }

  /// {start, start*factor, start*factor^2, ...}, `n` bounds.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t n);
  /// {start, start+width, start+2*width, ...}, `n` bounds.
  static std::vector<double> linear_bounds(double start, double width,
                                           std::size_t n);

  Histogram(metrics_detail::RegistryKey, std::string name,
            std::vector<double> bounds, const bool* enabled);

 private:
  std::string name_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  const bool* enabled_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Point-in-time copy of every counter and histogram, sorted by name.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> bucket_counts;
    std::uint64_t count;
    double sum;
    double min;
    double max;
  };
  std::vector<CounterValue> counters;
  std::vector<HistogramValue> histograms;
};

/// Merges per-shard snapshots into one scenario-wide snapshot: counters
/// with the same name are summed, histograms merged bucket-wise (their
/// bounds must agree — std::invalid_argument names the histogram if
/// not), and the output is sorted by name like any snapshot().  Pure,
/// so the result depends only on the parts, not on which worker thread
/// produced them.
MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  // Instruments capture &enabled_; the registry must stay put.
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Finds or creates; the returned reference is stable for the
  /// registry's lifetime (components cache the pointer at construction).
  Counter& counter(std::string_view name);

  /// Finds or creates.  When the name already exists the existing
  /// instrument is returned and `bounds` is ignored (first caller wins).
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Registers a read-on-demand gauge; sampled by stats::MetricsSampler
  /// on its tick.  Gauges are cheap closures over live state (queue
  /// depth, flow-table size) and cost nothing between samples.
  using GaugeFn = UniqueFunction<double() const>;
  void register_gauge(std::string name, GaugeFn fn);

  struct Gauge {
    std::string name;
    GaugeFn fn;
  };
  const std::vector<Gauge>& gauges() const { return gauges_; }

  std::size_t counter_count() const { return counters_.size(); }
  std::size_t histogram_count() const { return histograms_.size(); }

  MetricsSnapshot snapshot() const;

 private:
  bool enabled_ = false;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
  std::unordered_map<std::string, std::size_t> histogram_index_;
  std::vector<Gauge> gauges_;
};

}  // namespace hwatch::sim
