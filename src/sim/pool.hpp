// Free-list memory pools for the simulator's rare-but-recurring
// allocations.
//
// Two pieces:
//   * BlockPool — fixed-block free list.  SimContext owns one sized for
//     a net::Packet so paths that must park a packet behind a pointer
//     (e.g. the shim holding a SYN across a probe train) recycle blocks
//     instead of hitting the global allocator.  PoolPtr is the move-only
//     RAII handle.
//   * SpillArena — thread-local size-class free lists backing
//     UniqueFunction's spill path for callables too large for the
//     inline buffer.  Thread-local because UniqueFunctions are created
//     and destroyed on the simulating thread; sweeps run one context
//     per thread, so there is no cross-thread recycling to coordinate.
//
// Neither pool affects determinism: memory reuse changes addresses, not
// event ordering, and nothing in the simulator keys off addresses.
//
// Pool occupancy is tracked in plain counters (hits/misses/outstanding)
// always; MetricsRegistry exposure is opt-in via attach_counters so the
// default manifest's counter set — and therefore its byte-exact
// deterministic dump — is unchanged.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/metrics.hpp"

namespace hwatch::sim {

class BlockPool;

/// Move-only owning handle to a T constructed inside a BlockPool block.
/// Destroys the object and returns the block to the pool's free list.
template <typename T>
class PoolPtr {
 public:
  PoolPtr() noexcept = default;
  PoolPtr(T* obj, BlockPool* pool) noexcept : obj_(obj), pool_(pool) {}

  PoolPtr(PoolPtr&& other) noexcept
      : obj_(std::exchange(other.obj_, nullptr)),
        pool_(std::exchange(other.pool_, nullptr)) {}
  PoolPtr& operator=(PoolPtr&& other) noexcept {
    if (this != &other) {
      reset();
      obj_ = std::exchange(other.obj_, nullptr);
      pool_ = std::exchange(other.pool_, nullptr);
    }
    return *this;
  }
  PoolPtr(const PoolPtr&) = delete;
  PoolPtr& operator=(const PoolPtr&) = delete;

  ~PoolPtr() { reset(); }

  void reset() noexcept;

  T* get() const noexcept { return obj_; }
  T& operator*() const noexcept { return *obj_; }
  T* operator->() const noexcept { return obj_; }
  explicit operator bool() const noexcept { return obj_ != nullptr; }

 private:
  T* obj_ = nullptr;
  BlockPool* pool_ = nullptr;
};

/// Fixed-block free-list pool.  allocate() pops a recycled block (hit)
/// or falls through to operator new (miss); deallocate() pushes the
/// block back.  All outstanding blocks must be returned before the pool
/// is destroyed (SimContext declares its pool ahead of the scheduler so
/// pending callbacks holding PoolPtrs die first).
class BlockPool {
 public:
  struct Stats {
    std::uint64_t hits = 0;       // allocations served from the free list
    std::uint64_t misses = 0;     // allocations that hit operator new
    std::uint64_t outstanding = 0;
    std::uint64_t peak_outstanding = 0;
  };

  explicit BlockPool(std::size_t block_bytes)
      : block_bytes_(block_bytes < sizeof(FreeNode) ? sizeof(FreeNode)
                                                    : block_bytes) {}

  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

  ~BlockPool() {
    assert(stats_.outstanding == 0 &&
           "BlockPool destroyed with blocks still outstanding");
    while (free_ != nullptr) {
      FreeNode* next = free_->next;
      ::operator delete(free_);
      free_ = next;
    }
  }

  std::size_t block_bytes() const { return block_bytes_; }

  void* allocate() {
    void* block;
    if (free_ != nullptr) {
      block = free_;
      free_ = free_->next;
      ++stats_.hits;
      if (hit_counter_ != nullptr) hit_counter_->inc();
    } else {
      block = ::operator new(block_bytes_);
      ++stats_.misses;
      if (miss_counter_ != nullptr) miss_counter_->inc();
    }
    ++stats_.outstanding;
    if (stats_.outstanding > stats_.peak_outstanding) {
      stats_.peak_outstanding = stats_.outstanding;
    }
    return block;
  }

  void deallocate(void* block) noexcept {
    assert(stats_.outstanding > 0);
    --stats_.outstanding;
    FreeNode* node = static_cast<FreeNode*>(block);
    node->next = free_;
    free_ = node;
  }

  /// Constructs a T in a pooled block.  T must fit the block size and
  /// default alignment (operator new guarantees max_align_t).
  template <typename T, typename... Args>
  PoolPtr<T> make(Args&&... args) {
    static_assert(alignof(T) <= alignof(std::max_align_t));
    assert(sizeof(T) <= block_bytes_);
    void* block = allocate();
    try {
      return PoolPtr<T>(::new (block) T(std::forward<Args>(args)...), this);
    } catch (...) {
      deallocate(block);
      throw;
    }
  }

  const Stats& stats() const { return stats_; }

  /// Opt-in MetricsRegistry exposure: subsequent hits/misses also bump
  /// these counters.  Not wired by default so the manifest counter set
  /// (and its deterministic dump) is unchanged unless a run asks for it.
  void attach_counters(Counter* hit, Counter* miss) {
    hit_counter_ = hit;
    miss_counter_ = miss;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  std::size_t block_bytes_;
  FreeNode* free_ = nullptr;
  Stats stats_;
  Counter* hit_counter_ = nullptr;
  Counter* miss_counter_ = nullptr;
};

template <typename T>
void PoolPtr<T>::reset() noexcept {
  if (obj_ != nullptr) {
    obj_->~T();
    pool_->deallocate(obj_);
    obj_ = nullptr;
    pool_ = nullptr;
  }
}

/// Thread-local size-class arena for UniqueFunction spills.  Requests
/// are rounded up to the next power-of-two class (64..2048 bytes);
/// larger or over-aligned requests bypass the arena entirely.
class SpillArena {
 public:
  struct Stats {
    std::uint64_t hits = 0;    // served from a class free list
    std::uint64_t misses = 0;  // fell through to operator new
    std::uint64_t bypass = 0;  // too large / over-aligned for the arena
  };

  SpillArena() = default;
  SpillArena(const SpillArena&) = delete;
  SpillArena& operator=(const SpillArena&) = delete;
  ~SpillArena();

  /// The calling thread's arena (what spill_alloc/spill_free use).
  static SpillArena& local();

  void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes) noexcept;

  const Stats& stats() const { return stats_; }

  static constexpr std::size_t kMinClassBytes = 64;
  static constexpr std::size_t kMaxClassBytes = 2048;

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static constexpr std::size_t kClassCount = 6;  // 64,128,256,512,1024,2048

  /// Size-class index for `bytes`, or kClassCount when out of range.
  static std::size_t class_index(std::size_t bytes);
  static std::size_t class_bytes(std::size_t index) {
    return kMinClassBytes << index;
  }

  FreeNode* free_[kClassCount] = {};
  Stats stats_;
};

}  // namespace hwatch::sim
