// Data-size and data-rate units.
//
// Rates are bits per second in a strong type so a Mb/s value can never be
// passed where a Gb/s value is expected without an explicit constructor.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace hwatch::sim {

/// Link or processing rate in bits per second.
class DataRate {
 public:
  constexpr DataRate() = default;
  constexpr explicit DataRate(std::uint64_t bits_per_sec)
      : bps_(bits_per_sec) {}

  static constexpr DataRate bps(std::uint64_t v) { return DataRate(v); }
  static constexpr DataRate kbps(std::uint64_t v) {
    return DataRate(v * 1'000);
  }
  static constexpr DataRate mbps(std::uint64_t v) {
    return DataRate(v * 1'000'000);
  }
  static constexpr DataRate gbps(std::uint64_t v) {
    return DataRate(v * 1'000'000'000);
  }

  constexpr std::uint64_t bits_per_sec() const { return bps_; }
  constexpr double gbits_per_sec() const { return bps_ / 1e9; }
  constexpr bool is_zero() const { return bps_ == 0; }

  /// Exact serialization time of `bytes` at this rate, rounded up to the
  /// next picosecond.  Uses 128-bit intermediate arithmetic: 10^12 ps/s
  /// times a jumbo frame would overflow 64 bits.
  constexpr TimePs transmission_time(std::uint64_t bytes) const {
    if (bps_ == 0) return kTimeNever;
    const __int128 bits = static_cast<__int128>(bytes) * 8;
    const __int128 ps = (bits * kPsPerSec + bps_ - 1) / bps_;
    return static_cast<TimePs>(ps);
  }

  /// Bytes this rate can carry in `interval` (floor).
  constexpr std::uint64_t bytes_in(TimePs interval) const {
    const __int128 bits = static_cast<__int128>(bps_) * interval / kPsPerSec;
    return static_cast<std::uint64_t>(bits / 8);
  }

  friend constexpr bool operator==(DataRate a, DataRate b) {
    return a.bps_ == b.bps_;
  }
  friend constexpr bool operator<(DataRate a, DataRate b) {
    return a.bps_ < b.bps_;
  }

 private:
  std::uint64_t bps_ = 0;
};

/// Bandwidth-delay product in bytes for a rate and a round-trip time.
constexpr std::uint64_t bdp_bytes(DataRate rate, TimePs rtt) {
  return rate.bytes_in(rtt);
}

}  // namespace hwatch::sim
