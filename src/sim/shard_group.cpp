#include "sim/shard_group.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdio>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sim/shard_telemetry.hpp"

namespace hwatch::sim {

ShardTask::~ShardTask() = default;

ShardGroup::ShardGroup(unsigned threads)
    : threads_(threads == 0 ? 1 : threads) {}

ShardGroup::~ShardGroup() = default;

void ShardGroup::add(ShardTask* task) {
  if (task == nullptr) {
    throw std::invalid_argument("ShardGroup::add: null task");
  }
  tasks_.push_back(task);
}

void ShardGroup::run(TimePs horizon, TimePs window) {
  if (window <= 0) {
    throw std::invalid_argument(
        "ShardGroup::run: window (lookahead) must be > 0 ps");
  }
  if (tasks_.empty() || horizon <= now_) {
    now_ = std::max(now_, horizon);
    return;
  }
  if (threads_ <= 1 || tasks_.size() == 1) {
    run_sequential(horizon, window);
  } else {
    run_parallel(horizon, window);
  }
  now_ = horizon;
}

void ShardGroup::dump_flight_on_error(const std::exception_ptr& error) {
  if (telemetry_ == nullptr) return;
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    telemetry_->note_error(e.what());
  } catch (...) {
    telemetry_->note_error("unknown exception");
  }
  // A flight-dir configuration error must never mask the shard's own
  // exception (our caller rethrows it next); the dump already fell
  // back to stderr, so only the message is left to report.
  try {
    telemetry_->dump_flight("shard_exception");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
  }
}

void ShardGroup::run_sequential(TimePs horizon, TimePs window) {
  ShardTelemetry* const tel = telemetry_;
  try {
    for (TimePs t = now_; t < horizon;) {
      const TimePs end = std::min(horizon, t + window);
      if (tel != nullptr) tel->worker_mark(0, ShardTelemetry::Mark::kDrain);
      for (ShardTask* task : tasks_) task->drain(t);
      if (tel != nullptr) tel->worker_mark(0, ShardTelemetry::Mark::kRun);
      for (ShardTask* task : tasks_) task->run(end);
      if (tel != nullptr) tel->epoch_end(end, horizon);
      ++epochs_;
      t = end;
    }
  } catch (...) {
    dump_flight_on_error(std::current_exception());
    throw;
  }
  if (tel != nullptr) tel->worker_mark(0, ShardTelemetry::Mark::kEnd);
}

void ShardGroup::run_parallel(TimePs horizon, TimePs window) {
  const std::size_t n = tasks_.size();
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, n));
  std::barrier<> sync(static_cast<std::ptrdiff_t>(workers));
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto guard = [&](auto&& fn) {
    if (failed.load(std::memory_order_relaxed)) return;
    try {
      fn();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };

  // Static shard ownership: worker w always runs shards w, w+workers,
  // ... — the assignment (and with it every per-shard event order) does
  // not depend on scheduling luck.  On error, workers keep arriving at
  // the barriers (skipping the work) so nobody deadlocks.
  //
  // Telemetry hooks: each worker marks its own phase transitions (one
  // predictable branch when detached); the coordinator (worker 0)
  // closes the epoch after the run-phase barrier — every shard record
  // of epoch N was published before that barrier, and worker 0 can lag
  // the others by at most one barrier phase, so the epoch's flight-ring
  // slots stay stable while it reads them.
  ShardTelemetry* const tel = telemetry_;
  const auto worker = [&](unsigned w) {
    for (TimePs t = now_; t < horizon;) {
      const TimePs end = std::min(horizon, t + window);
      if (tel != nullptr) tel->worker_mark(w, ShardTelemetry::Mark::kDrain);
      for (std::size_t s = w; s < n; s += workers) {
        guard([&] { tasks_[s]->drain(t); });
      }
      if (tel != nullptr) {
        tel->worker_mark(w, ShardTelemetry::Mark::kBarrier);
      }
      sync.arrive_and_wait();
      if (tel != nullptr) tel->worker_mark(w, ShardTelemetry::Mark::kRun);
      for (std::size_t s = w; s < n; s += workers) {
        guard([&] { tasks_[s]->run(end); });
      }
      if (tel != nullptr) {
        tel->worker_mark(w, ShardTelemetry::Mark::kBarrier);
      }
      sync.arrive_and_wait();
      // Stop closing epochs once a shard failed: the remaining epochs
      // are no-ops (guard skips the work), and freezing the epoch
      // counter keeps the flight ring anchored at the failure.
      if (tel != nullptr && w == 0 &&
          !failed.load(std::memory_order_relaxed)) {
        tel->epoch_end(end, horizon);
      }
      t = end;
    }
    if (tel != nullptr) tel->worker_mark(w, ShardTelemetry::Mark::kEnd);
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) {
    pool.emplace_back(worker, w);
  }
  worker(0);
  for (std::thread& th : pool) th.join();

  for (TimePs t = now_; t < horizon;) {
    t = std::min(horizon, t + window);
    ++epochs_;
  }
  if (first_error) {
    dump_flight_on_error(first_error);
    std::rethrow_exception(first_error);
  }
}

}  // namespace hwatch::sim
