// Seeded random source for scenarios.
//
// Every stochastic decision in a scenario (flow inter-arrivals, probe
// spacing jitter, RED marking coin flips, start-time permutations) draws
// from one Rng so a (config, seed) pair fully determines the packet trace.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "sim/annotations.hpp"
#include "sim/time.hpp"

namespace hwatch::sim {

class HWATCH_SHARD_CONFINED Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Exponential inter-arrival expressed directly in simulated time.
  TimePs exponential_time(TimePs mean) {
    return static_cast<TimePs>(exponential(static_cast<double>(mean)));
  }

  /// Bounded Pareto (shape, lo, hi]; heavy-tailed flow sizes.
  double bounded_pareto(double shape, double lo, double hi);

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child stream (e.g. one per traffic source).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace hwatch::sim
