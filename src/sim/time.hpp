// Fixed-point simulated time.
//
// All simulation time is carried as a signed 64-bit count of picoseconds
// (`TimePs`).  Picosecond resolution makes link serialization arithmetic
// exact for every rate/size pair used in the paper (e.g. a 38-byte HWatch
// probe on a 10 Gb/s link serializes in exactly 30'400 ps) while still
// covering ~106 days of simulated time, far beyond any scenario here.
#pragma once

#include <cstdint>

namespace hwatch::sim {

/// Simulated time in picoseconds since the start of the run.
using TimePs = std::int64_t;

inline constexpr TimePs kPsPerNano = 1'000;
inline constexpr TimePs kPsPerMicro = 1'000'000;
inline constexpr TimePs kPsPerMilli = 1'000'000'000;
inline constexpr TimePs kPsPerSec = 1'000'000'000'000;

/// A time value no event can ever be scheduled at; used as "never"/"unset".
inline constexpr TimePs kTimeNever = INT64_MAX;

constexpr TimePs picoseconds(std::int64_t ps) { return ps; }
constexpr TimePs nanoseconds(std::int64_t ns) { return ns * kPsPerNano; }
constexpr TimePs microseconds(std::int64_t us) { return us * kPsPerMicro; }
constexpr TimePs milliseconds(std::int64_t ms) { return ms * kPsPerMilli; }
constexpr TimePs seconds_i(std::int64_t s) { return s * kPsPerSec; }

/// Converts a floating-point second count (e.g. "0.25 s") to TimePs.
constexpr TimePs seconds(double s) {
  return static_cast<TimePs>(s * static_cast<double>(kPsPerSec));
}

constexpr double to_seconds(TimePs t) {
  return static_cast<double>(t) / static_cast<double>(kPsPerSec);
}
constexpr double to_millis(TimePs t) {
  return static_cast<double>(t) / static_cast<double>(kPsPerMilli);
}
constexpr double to_micros(TimePs t) {
  return static_cast<double>(t) / static_cast<double>(kPsPerMicro);
}

}  // namespace hwatch::sim
