#include "sim/log.hpp"

#include <iostream>

#include "sim/annotations.hpp"

namespace hwatch::sim {

namespace {
// Process-wide log configuration: written by set_level/set_sink before
// any shard or sweep threads start, read-only while workers run — the
// launch barrier in ShardGroup/SweepRunner is the synchronization.
HWATCH_SHARD_SHARED LogLevel g_level = LogLevel::kWarn;
HWATCH_SHARD_SHARED std::ostream* g_sink = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }
void set_log_sink(std::ostream* sink) { g_sink = sink; }

void log_line(LogLevel level, const std::string& msg) {
  if (!log_enabled(level)) return;
  std::ostream& os = g_sink ? *g_sink : std::clog;
  os << "[" << level_name(level) << "] " << msg << '\n';
}

void SimLog::line(LogLevel l, const std::string& msg) const {
  if (!enabled(l)) return;
  std::ostream& os = sink_ ? *sink_ : (g_sink ? *g_sink : std::clog);
  os << "[" << level_name(l) << "] " << msg << '\n';
}

}  // namespace hwatch::sim
