#include "sim/metrics.hpp"

#include <algorithm>

namespace hwatch::sim {

Histogram::Histogram(metrics_detail::RegistryKey, std::string name,
                     std::vector<double> bounds, const bool* enabled)
    : name_(std::move(name)), bounds_(std::move(bounds)), enabled_(enabled) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t n) {
  std::vector<double> b;
  b.reserve(n);
  double v = start;
  for (std::size_t i = 0; i < n; ++i) {
    b.push_back(v);
    v *= factor;
  }
  return b;
}

std::vector<double> Histogram::linear_bounds(double start, double width,
                                             std::size_t n) {
  std::vector<double> b;
  b.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.push_back(start + width * static_cast<double>(i));
  }
  return b;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counter_index_.find(std::string(name));
  if (it != counter_index_.end()) return *counters_[it->second];
  counters_.emplace_back(std::make_unique<Counter>(
      metrics_detail::RegistryKey{}, std::string(name), &enabled_));
  counter_index_.emplace(std::string(name), counters_.size() - 1);
  return *counters_.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const auto it = histogram_index_.find(std::string(name));
  if (it != histogram_index_.end()) return *histograms_[it->second];
  histograms_.emplace_back(std::make_unique<Histogram>(
      metrics_detail::RegistryKey{}, std::string(name), std::move(bounds),
      &enabled_));
  histogram_index_.emplace(std::string(name), histograms_.size() - 1);
  return *histograms_.back();
}

void MetricsRegistry::register_gauge(std::string name, GaugeFn fn) {
  gauges_.push_back(Gauge{std::move(name), std::move(fn)});
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& c : counters_) {
    snap.counters.push_back({c->name(), c->value()});
  }
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  snap.histograms.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    snap.histograms.push_back({h->name(), h->bounds(), h->bucket_counts(),
                               h->count(), h->sum(), h->min(), h->max()});
  }
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

}  // namespace hwatch::sim
