#include "sim/metrics.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace hwatch::sim {

Histogram::Histogram(metrics_detail::RegistryKey, std::string name,
                     std::vector<double> bounds, const bool* enabled)
    : name_(std::move(name)), bounds_(std::move(bounds)), enabled_(enabled) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t n) {
  std::vector<double> b;
  b.reserve(n);
  double v = start;
  for (std::size_t i = 0; i < n; ++i) {
    b.push_back(v);
    v *= factor;
  }
  return b;
}

std::vector<double> Histogram::linear_bounds(double start, double width,
                                             std::size_t n) {
  std::vector<double> b;
  b.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.push_back(start + width * static_cast<double>(i));
  }
  return b;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counter_index_.find(std::string(name));
  if (it != counter_index_.end()) return *counters_[it->second];
  counters_.emplace_back(std::make_unique<Counter>(
      metrics_detail::RegistryKey{}, std::string(name), &enabled_));
  counter_index_.emplace(std::string(name), counters_.size() - 1);
  return *counters_.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const auto it = histogram_index_.find(std::string(name));
  if (it != histogram_index_.end()) return *histograms_[it->second];
  histograms_.emplace_back(std::make_unique<Histogram>(
      metrics_detail::RegistryKey{}, std::string(name), std::move(bounds),
      &enabled_));
  histogram_index_.emplace(std::string(name), histograms_.size() - 1);
  return *histograms_.back();
}

void MetricsRegistry::register_gauge(std::string name, GaugeFn fn) {
  gauges_.push_back(Gauge{std::move(name), std::move(fn)});
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& c : counters_) {
    snap.counters.push_back({c->name(), c->value()});
  }
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  snap.histograms.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    snap.histograms.push_back({h->name(), h->bounds(), h->bucket_counts(),
                               h->count(), h->sum(), h->min(), h->max()});
  }
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts) {
  // std::map keeps both sections sorted by name, matching snapshot().
  // hwlint: allow(hot-path-container) — end-of-run merge, never per event
  std::map<std::string, std::uint64_t> counters;
  // hwlint: allow(hot-path-container)
  std::map<std::string, MetricsSnapshot::HistogramValue> histograms;
  for (const MetricsSnapshot& part : parts) {
    for (const auto& c : part.counters) counters[c.name] += c.value;
    for (const auto& h : part.histograms) {
      auto [it, inserted] = histograms.emplace(h.name, h);
      if (inserted) continue;
      MetricsSnapshot::HistogramValue& acc = it->second;
      if (acc.bounds != h.bounds) {
        throw std::invalid_argument("merge_snapshots: histogram \"" +
                                    h.name +
                                    "\" has different bounds across shards");
      }
      for (std::size_t i = 0; i < acc.bucket_counts.size(); ++i) {
        acc.bucket_counts[i] += h.bucket_counts[i];
      }
      // min()/max() report 0 for empty histograms, so only parts that
      // saw samples may contribute to the extrema.
      if (h.count > 0) {
        if (acc.count == 0 || h.min < acc.min) acc.min = h.min;
        if (acc.count == 0 || h.max > acc.max) acc.max = h.max;
      }
      acc.count += h.count;
      acc.sum += h.sum;
    }
  }
  MetricsSnapshot out;
  out.counters.reserve(counters.size());
  for (auto& [name, value] : counters) {
    out.counters.push_back(MetricsSnapshot::CounterValue{name, value});
  }
  out.histograms.reserve(histograms.size());
  for (auto& [name, value] : histograms) out.histograms.push_back(value);
  return out;
}

}  // namespace hwatch::sim
