#include "sim/trace_span.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace hwatch::sim {

namespace {

/// splitmix64-style mix of the packed flow key words into one map key.
/// flow_index_ stores the index into flows_ and lookups verify the full
/// (hi, lo) pair, so a mix collision degrades to "flow not found", never
/// to misattribution.
std::uint64_t mix_key(std::uint64_t hi, std::uint64_t lo) {
  std::uint64_t z = hi + 0x9e3779b97f4a7c15ull * (lo + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// ts in Chrome traces is microseconds; picoseconds print as exact
/// fixed-point micros (6 fractional digits), no floating point involved.
void write_ts_us(std::ostream& os, TimePs t) {
  char buf[40];
  const auto v = static_cast<unsigned long long>(t);
  std::snprintf(buf, sizeof(buf), "%llu.%06llu", v / 1000000ull,
                v % 1000000ull);
  os << buf;
}

void write_named_args(std::ostream& os, const SpanTracer::ArgNames& names,
                      const TraceEvent& ev, bool leading_comma) {
  const char* n[4] = {names.a, names.b, names.c, names.d};
  const std::uint64_t v[4] = {ev.a, ev.b, ev.c, ev.d};
  bool first = !leading_comma;
  for (int i = 0; i < 4; ++i) {
    if (n[i] == nullptr) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << n[i] << "\":" << v[i];
  }
}

void write_flow_name(std::ostream& os, const SpanTracer::FlowInfo& f) {
  os << "flow " << (f.key_hi >> 32) << ':' << (f.key_lo >> 16) << "->"
     << (f.key_hi & 0xffffffffull) << ':' << (f.key_lo & 0xffffull);
}

}  // namespace

std::string_view to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kFlow:
      return "flow";
    case SpanKind::kHandshake:
      return "handshake";
    case SpanKind::kSlowStart:
      return "slow_start";
    case SpanKind::kRecovery:
      return "recovery";
    case SpanKind::kRto:
      return "rto";
    case SpanKind::kProbeTrain:
      return "probe_train";
    case SpanKind::kDecision:
      return "decision";
    case SpanKind::kRwndWrite:
      return "rwnd_write";
  }
  return "?";
}

std::string_view to_string(LatencyComponent c) {
  switch (c) {
    case LatencyComponent::kQueueing:
      return "queueing";
    case LatencyComponent::kTransmission:
      return "transmission";
    case LatencyComponent::kPropagation:
      return "propagation";
    case LatencyComponent::kRetxWait:
      return "retx_wait";
  }
  return "?";
}

const SpanTracer::ArgNames& SpanTracer::arg_names(SpanKind k) {
  // One table entry per SpanKind, indexed by the enum value.  Slot
  // meanings are shared between the 'B' and 'E' phases of a span: a span
  // begins with its `a` (and possibly c/d) payload and ends filling b/c.
  static const std::array<ArgNames, kSpanKinds> kNames = {{
      {"total_bytes", "bytes_acked", "retransmits", nullptr},   // kFlow
      {nullptr, "syn_timeouts", nullptr, nullptr},              // kHandshake
      {nullptr, "cwnd_bytes", nullptr, nullptr},                // kSlowStart
      {"enter_una", "exit_una", nullptr, nullptr},              // kRecovery
      {"snd_una", "exit_una", nullptr, nullptr},                // kRto
      {"probes", nullptr, "train", nullptr},                    // kProbeTrain
      {"x_um", "x_m", "immediate_pkts", "deferred_pkts"},       // kDecision
      {"rwnd_bytes", "raw_old", "raw_new", "synack"},           // kRwndWrite
  }};
  return kNames[static_cast<std::size_t>(k)];
}

bool SpanTracer::record(const TraceEvent& ev) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return false;
  }
  events_.push_back(ev);
  return true;
}

std::uint64_t SpanTracer::begin_span(TimePs t, SpanKind kind,
                                     std::uint64_t parent,
                                     std::uint64_t flow, std::uint64_t a,
                                     std::uint64_t b, std::uint64_t c,
                                     std::uint64_t d) {
  if (!enabled_) return 0;
  const std::uint64_t id = ++next_id_;
  TraceEvent ev;
  ev.t = t;
  ev.span = id;
  ev.parent = parent;
  // A flow span is the track everything else nests on — it owns itself.
  ev.flow = kind == SpanKind::kFlow ? id : flow;
  ev.a = a;
  ev.b = b;
  ev.c = c;
  ev.d = d;
  ev.kind = kind;
  ev.phase = 'B';
  record(ev);
  open_[id] = OpenSpan{kind, parent, ev.flow};
  return id;
}

void SpanTracer::end_span(TimePs t, std::uint64_t id, std::uint64_t b,
                          std::uint64_t c) {
  if (!enabled_ || id == 0) return;
  const auto it = open_.find(id);
  if (it == open_.end()) return;  // already closed (or foreign id)
  TraceEvent ev;
  ev.t = t;
  ev.span = id;
  ev.parent = it->second.parent;
  ev.flow = it->second.flow;
  ev.b = b;
  ev.c = c;
  ev.kind = it->second.kind;
  ev.phase = 'E';
  record(ev);
  open_.erase(it);
}

std::uint64_t SpanTracer::instant(TimePs t, SpanKind kind,
                                  std::uint64_t parent, std::uint64_t flow,
                                  std::uint64_t a, std::uint64_t b,
                                  std::uint64_t c, std::uint64_t d) {
  if (!enabled_) return 0;
  const std::uint64_t id = ++next_id_;
  TraceEvent ev;
  ev.t = t;
  ev.span = id;
  ev.parent = parent;
  ev.flow = flow;
  ev.a = a;
  ev.b = b;
  ev.c = c;
  ev.d = d;
  ev.kind = kind;
  ev.phase = 'i';
  record(ev);
  return id;
}

void SpanTracer::close_open_spans(TimePs t) {
  if (!enabled_) return;
  // Spans begun later carry higher ids; closing in descending id order
  // is LIFO, which keeps every per-track begin/end stack balanced.
  while (!open_.empty()) {
    end_span(t, std::prev(open_.end())->first);
  }
}

void SpanTracer::register_flow(std::uint64_t key_hi, std::uint64_t key_lo,
                               std::uint64_t flow_span) {
  if (!enabled_ || flow_span == 0) return;
  const std::uint64_t k = mix_key(key_hi, key_lo);
  const auto it = flow_index_.find(k);
  if (it != flow_index_.end()) {
    // Port reuse (or a mix collision): the newest flow owns the key.
    flows_.push_back(FlowInfo{flow_span, key_hi, key_lo});
    it->second = flows_.size() - 1;
    return;
  }
  flows_.push_back(FlowInfo{flow_span, key_hi, key_lo});
  flow_index_.emplace(k, flows_.size() - 1);
}

std::uint64_t SpanTracer::flow_span_of(std::uint64_t key_hi,
                                       std::uint64_t key_lo) const {
  const auto it = flow_index_.find(mix_key(key_hi, key_lo));
  if (it == flow_index_.end()) return 0;
  const FlowInfo& f = flows_[it->second];
  if (f.key_hi != key_hi || f.key_lo != key_lo) return 0;
  return f.span;
}

void SpanTracer::add_latency(std::uint64_t flow_span, LatencyComponent c,
                             TimePs dt) {
  if (!enabled_) return;
  if (dt < 0) dt = 0;
  const auto ci = static_cast<std::size_t>(c);
  const auto& bounds = latency_bounds_us();
  const double us = static_cast<double>(dt) / 1e6;
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), us) - bounds.begin());
  ++latency_hist_[ci][bucket];
  if (flow_span != 0) {
    LatencyAccum& acc = latency_[flow_span];
    acc.total_ps[ci] += dt;
    ++acc.samples[ci];
  }
}

const SpanTracer::LatencyAccum* SpanTracer::latency_of(
    std::uint64_t flow_span) const {
  const auto it = latency_.find(flow_span);
  return it == latency_.end() ? nullptr : &it->second;
}

const std::array<double, SpanTracer::kLatencyBuckets>&
SpanTracer::latency_bounds_us() {
  // 0.1 us .. ~13 ms, doubling: covers serialization times of tiny
  // probes through multi-ms RTO waits.
  static const std::array<double, kLatencyBuckets> kBounds = [] {
    std::array<double, kLatencyBuckets> b{};
    double v = 0.1;
    for (auto& x : b) {
      x = v;
      v *= 2;
    }
    return b;
  }();
  return kBounds;
}

void SpanTracer::dump_jsonl(std::ostream& os) const {
  for (const FlowInfo& f : flows_) {
    os << "{\"ph\":\"F\",\"id\":" << f.span << ",\"src\":" << (f.key_hi >> 32)
       << ",\"dst\":" << (f.key_hi & 0xffffffffull)
       << ",\"sport\":" << (f.key_lo >> 16)
       << ",\"dport\":" << (f.key_lo & 0xffffull) << "}\n";
  }
  for (const TraceEvent& ev : events_) {
    os << "{\"t_ps\":" << ev.t << ",\"ph\":\"" << ev.phase
       << "\",\"kind\":\"" << to_string(ev.kind) << "\",\"id\":" << ev.span
       << ",\"parent\":" << ev.parent << ",\"flow\":" << ev.flow;
    write_named_args(os, arg_names(ev.kind), ev, /*leading_comma=*/true);
    os << "}\n";
  }
  for (const FlowInfo& f : flows_) {
    const LatencyAccum* acc = latency_of(f.span);
    if (acc == nullptr) continue;
    os << "{\"ph\":\"L\",\"flow\":" << f.span;
    for (std::size_t c = 0; c < kLatencyComponents; ++c) {
      const auto name = to_string(static_cast<LatencyComponent>(c));
      os << ",\"" << name << "_ps\":" << acc->total_ps[c] << ",\"" << name
         << "_samples\":" << acc->samples[c];
    }
    os << "}\n";
  }
  if (dropped_ > 0) {
    os << "{\"ph\":\"D\",\"dropped_events\":" << dropped_ << "}\n";
  }
}

void SpanTracer::export_chrome(std::ostream& os,
                               std::string_view process_name) const {
  os << "{\"schema\":\"hwatch.trace_export/v1\",\"displayTimeUnit\":\"ms\""
     << ",\"dropped_events\":" << dropped_ << ",\"traceEvents\":[";
  bool first = true;
  const auto emit_sep = [&] {
    if (!first) os << ',';
    first = false;
    os << "\n";
  };

  emit_sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
     << "\"args\":{\"name\":\"" << process_name << "\"}}";

  // One Perfetto track per flow span; tid 0 collects unattributed events.
  std::unordered_map<std::uint64_t, std::uint64_t> tid_of;
  std::uint64_t next_tid = 1;
  for (const FlowInfo& f : flows_) {
    if (tid_of.emplace(f.span, next_tid).second) {
      emit_sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
         << next_tid << ",\"args\":{\"name\":\"";
      write_flow_name(os, f);
      os << "\"}}";
      ++next_tid;
    }
  }

  const auto tid_for = [&](std::uint64_t flow_span) -> std::uint64_t {
    const auto it = tid_of.find(flow_span);
    return it == tid_of.end() ? 0 : it->second;
  };

  for (const TraceEvent& ev : events_) {
    emit_sep();
    os << "{\"name\":\"" << to_string(ev.kind) << "\",\"cat\":\"span\""
       << ",\"ph\":\"" << ev.phase << "\",\"ts\":";
    write_ts_us(os, ev.t);
    os << ",\"pid\":1,\"tid\":" << tid_for(ev.flow);
    if (ev.phase == 'i') os << ",\"s\":\"t\"";
    os << ",\"args\":{\"span\":" << ev.span << ",\"parent\":" << ev.parent;
    write_named_args(os, arg_names(ev.kind), ev, /*leading_comma=*/true);
    os << "}}";
  }

  // Per-flow latency decomposition, rendered as a final instant on each
  // flow's track (timestamped at the last event so ts stays sorted).
  const TimePs t_end = events_.empty() ? 0 : events_.back().t;
  for (const FlowInfo& f : flows_) {
    const LatencyAccum* acc = latency_of(f.span);
    if (acc == nullptr) continue;
    emit_sep();
    os << "{\"name\":\"latency_breakdown\",\"cat\":\"latency\""
       << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    write_ts_us(os, t_end);
    os << ",\"pid\":1,\"tid\":" << tid_for(f.span) << ",\"args\":{";
    for (std::size_t c = 0; c < kLatencyComponents; ++c) {
      const auto name = to_string(static_cast<LatencyComponent>(c));
      if (c > 0) os << ',';
      os << '"' << name << "_ps\":" << acc->total_ps[c] << ",\"" << name
         << "_samples\":" << acc->samples[c];
    }
    os << "}}";
  }

  os << "\n]}\n";
}

void dump_jsonl_merged(const std::vector<const SpanTracer*>& parts,
                       std::ostream& os) {
  for (const SpanTracer* p : parts) p->dump_jsonl(os);
}

void export_chrome_merged(const std::vector<const SpanTracer*>& parts,
                          std::ostream& os, std::string_view process_name) {
  std::uint64_t dropped = 0;
  for (const SpanTracer* p : parts) dropped += p->dropped();
  os << "{\"schema\":\"hwatch.trace_export/v1\",\"displayTimeUnit\":\"ms\""
     << ",\"dropped_events\":" << dropped << ",\"traceEvents\":[";
  bool first = true;
  const auto emit_sep = [&] {
    if (!first) os << ',';
    first = false;
    os << "\n";
  };

  // Metadata (ph "M", exempt from the ts-sorted invariant) up front: one
  // process per shard, one flow track per flow within its shard.
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> tid_of(
      parts.size());
  for (std::size_t s = 0; s < parts.size(); ++s) {
    const std::uint64_t pid = s + 1;
    emit_sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << process_name << "/shard" << s
       << "\"}}";
    std::uint64_t next_tid = 1;
    for (const SpanTracer::FlowInfo& f : parts[s]->flows()) {
      if (tid_of[s].emplace(f.span, next_tid).second) {
        emit_sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":" << next_tid << ",\"args\":{\"name\":\"";
        write_flow_name(os, f);
        os << "\"}}";
        ++next_tid;
      }
    }
  }
  const auto tid_for = [&](std::size_t s,
                           std::uint64_t flow_span) -> std::uint64_t {
    const auto it = tid_of[s].find(flow_span);
    return it == tid_of[s].end() ? 0 : it->second;
  };

  // K-way merge by (t, shard index); within a shard events are already
  // in recording order (nondecreasing t), so global ts stays sorted.
  std::vector<std::size_t> cursor(parts.size(), 0);
  TimePs t_end = 0;
  for (;;) {
    std::size_t best = parts.size();
    for (std::size_t s = 0; s < parts.size(); ++s) {
      if (cursor[s] >= parts[s]->events().size()) continue;
      if (best == parts.size() ||
          parts[s]->events()[cursor[s]].t < parts[best]->events()[cursor[best]].t) {
        best = s;
      }
    }
    if (best == parts.size()) break;
    const TraceEvent& ev = parts[best]->events()[cursor[best]++];
    if (ev.t > t_end) t_end = ev.t;
    emit_sep();
    os << "{\"name\":\"" << to_string(ev.kind) << "\",\"cat\":\"span\""
       << ",\"ph\":\"" << ev.phase << "\",\"ts\":";
    write_ts_us(os, ev.t);
    os << ",\"pid\":" << (best + 1) << ",\"tid\":" << tid_for(best, ev.flow);
    if (ev.phase == 'i') os << ",\"s\":\"t\"";
    os << ",\"args\":{\"span\":" << ev.span << ",\"parent\":" << ev.parent;
    write_named_args(os, SpanTracer::arg_names(ev.kind), ev,
                     /*leading_comma=*/true);
    os << "}}";
  }

  // Latency breakdowns last, all timestamped at the global end so ts
  // stays sorted.
  for (std::size_t s = 0; s < parts.size(); ++s) {
    for (const SpanTracer::FlowInfo& f : parts[s]->flows()) {
      const SpanTracer::LatencyAccum* acc = parts[s]->latency_of(f.span);
      if (acc == nullptr) continue;
      emit_sep();
      os << "{\"name\":\"latency_breakdown\",\"cat\":\"latency\""
         << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      write_ts_us(os, t_end);
      os << ",\"pid\":" << (s + 1) << ",\"tid\":" << tid_for(s, f.span)
         << ",\"args\":{";
      for (std::size_t c = 0; c < kLatencyComponents; ++c) {
        const auto name = to_string(static_cast<LatencyComponent>(c));
        if (c > 0) os << ',';
        os << '"' << name << "_ps\":" << acc->total_ps[c] << ",\"" << name
           << "_samples\":" << acc->samples[c];
      }
      os << "}}";
    }
  }

  os << "\n]}\n";
}

}  // namespace hwatch::sim
