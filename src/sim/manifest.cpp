#include "sim/manifest.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>

namespace hwatch::sim {

Json metrics_json(const MetricsSnapshot& snap) {
  Json m = Json::object();
  Json counters = Json::object();
  for (const auto& c : snap.counters) {
    counters.set(c.name, Json(c.value));
  }
  m.set("counters", std::move(counters));
  Json histograms = Json::object();
  for (const auto& h : snap.histograms) {
    Json hj = Json::object();
    Json bounds = Json::array();
    for (const double b : h.bounds) bounds.push_back(Json(b));
    hj.set("bounds", std::move(bounds));
    Json buckets = Json::array();
    for (const std::uint64_t c : h.bucket_counts) buckets.push_back(Json(c));
    hj.set("bucket_counts", std::move(buckets));
    hj.set("count", Json(h.count));
    hj.set("sum", Json(h.sum));
    hj.set("min", Json(h.min));
    hj.set("max", Json(h.max));
    histograms.set(h.name, std::move(hj));
  }
  m.set("histograms", std::move(histograms));
  return m;
}

Json RunManifest::to_json(bool include_environment) const {
  Json j = Json::object();
  j.set("schema", Json(kSchemaId));
  j.set("name", Json(name));
  j.set("scenario_kind", Json(scenario_kind));
  j.set("seed", Json(seed));
  j.set("config", config);
  j.set("results", results);
  if (shards.size() != 0) j.set("shards", shards);
  if (incidents.size() != 0) j.set("incidents", incidents);
  j.set("metrics", metrics);
  j.set("series", series);
  if (include_environment) {
    Json env = Json::object();
    env.set("wall_time_ms", Json(wall_time_ms));
    env.set("sweep_threads", Json(sweep_threads));
    j.set("environment", std::move(env));
  }
  return j;
}

std::string RunManifest::deterministic_dump() const {
  return to_json(/*include_environment=*/false).dump(2);
}

void RunManifest::write(std::ostream& os, bool include_environment) const {
  to_json(include_environment).dump(os, 2);
  os << '\n';
}

std::string RunManifest::sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    out += ok ? c : '_';
  }
  return out.empty() ? std::string("run") : out;
}

std::string RunManifest::write_file(const std::string& dir,
                                    bool include_environment) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return "";
  const fs::path path = fs::path(dir) / (sanitize(name) + ".json");
  std::ofstream os(path);
  if (!os) return "";
  write(os, include_environment);
  return os ? path.string() : "";
}

}  // namespace hwatch::sim
