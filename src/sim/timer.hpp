// One-shot restartable timer on top of the Scheduler.
//
// Used for TCP retransmission timeouts and HWatch batch-release timers:
// the owner re-arms or cancels freely; at most one expiry is pending at a
// time and the callback only fires for the most recent arm.
#pragma once

#include <utility>

#include "sim/scheduler.hpp"
#include "sim/unique_function.hpp"

namespace hwatch::sim {

class Timer {
 public:
  using Callback = UniqueFunction<void()>;

  Timer(Scheduler& sched, Callback on_expire)
      : sched_(sched), on_expire_(std::move(on_expire)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { cancel(); }

  /// (Re)arms the timer to fire `delay` from now, replacing any pending
  /// expiry.
  void arm(TimePs delay) {
    cancel();
    expiry_ = sched_.now() + delay;
    id_ = sched_.schedule_at(expiry_, [this] {
      id_ = EventId{};
      expiry_ = kTimeNever;
      on_expire_();
    });
  }

  /// Arms only when not already pending (keeps the earlier deadline).
  void arm_if_idle(TimePs delay) {
    if (!pending()) arm(delay);
  }

  void cancel() {
    if (id_.valid()) {
      sched_.cancel(id_);
      id_ = EventId{};
      expiry_ = kTimeNever;
    }
  }

  bool pending() const { return id_.valid(); }

  /// Absolute expiry time, or kTimeNever when idle.
  TimePs expiry() const { return expiry_; }

 private:
  Scheduler& sched_;
  Callback on_expire_;
  EventId id_{};
  TimePs expiry_ = kTimeNever;
};

}  // namespace hwatch::sim
