// ShardGroup — conservative time-window coordinator for sharded runs.
//
// Classic conservative parallel discrete-event simulation: the fabric is
// partitioned into shards, each owning its own SimContext (scheduler,
// RNG stream, metrics, tracer), and simulated time advances in windows
// of at most `lookahead` picoseconds — the minimum propagation delay of
// any cross-shard link.  Within a window shards run independently; a
// packet sent across a shard boundary during window (T, T+W] arrives no
// earlier than T+W (its link's propagation delay is >= W), so it is
// enqueued into the destination shard's inbox and delivered in a later
// window.  No shard can ever receive an event in its past.
//
// Each epoch runs in two barrier-separated phases:
//   1. drain(T):  every shard empties its inboxes, scheduling the
//      received packets into its own scheduler (sorted by
//      (deliver_time, packet uid) for determinism);
//   2. run(T+W):  every shard executes its events through T+W.
// The barrier between the phases is what makes the schedule
// deterministic: all cross-shard pushes of window N are published
// before any shard starts window N+1, so the set of packets a drain
// observes — and therefore every scheduler sequence number — is a pure
// function of (config, seed), independent of thread count or timing.
//
// Threads vs shards: the logical partition is fixed by the topology;
// the thread count only decides how many workers execute the shard
// tasks.  Shard i is always handled by worker (i mod threads) — static
// ownership, no work stealing — so byte-identical results across
// HWATCH_SHARDS=1/2/4 are structural, not incidental.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "sim/annotations.hpp"
#include "sim/time.hpp"

namespace hwatch::sim {

class ShardTelemetry;

/// One shard's view of the epoch protocol.  Implementations wrap a
/// SimContext plus its cross-shard inboxes; the coordinator never
/// touches shard internals (the hwlint cross-shard-state rule enforces
/// the inverse: shard code never touches another shard's context).
class HWATCH_SHARD_CONFINED ShardTask {
 public:
  virtual ~ShardTask();

  /// Phase 1: drain every inbox into the local scheduler.  `window_start`
  /// is the epoch's opening time T (== the local scheduler's now).
  virtual void drain(TimePs window_start) = 0;

  /// Phase 2: advance the local scheduler through `window_end`
  /// (run_until semantics: events <= window_end execute, now becomes
  /// window_end).
  virtual void run(TimePs window_end) = 0;
};

class HWATCH_SHARD_SHARED ShardGroup {
 public:
  /// `threads` = worker threads executing the shard tasks; values above
  /// the shard count are clamped.  1 runs everything sequentially on
  /// the calling thread (the determinism baseline — no thread machinery
  /// at all).
  explicit ShardGroup(unsigned threads = 1);
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  /// Registers a shard.  Must happen before run(); tasks are identified
  /// by registration order (shard id).
  void add(ShardTask* task);

  /// Advances all shards to `horizon` in conservative windows of
  /// `window` picoseconds (the lookahead).  May be called repeatedly;
  /// each call resumes from the previous horizon.
  void run(TimePs horizon, TimePs window);

  unsigned threads() const { return threads_; }
  std::size_t shard_count() const { return tasks_.size(); }

  /// Attaches a telemetry sink (nullptr detaches — the default).  When
  /// attached, every worker marks its drain/barrier/run transitions and
  /// the coordinator closes each epoch; a failing shard task triggers a
  /// flight-recorder dump before the exception is rethrown.  Detached,
  /// each hook site costs one predictable branch.  The telemetry must
  /// outlive run().
  void set_telemetry(ShardTelemetry* telemetry) { telemetry_ = telemetry; }

  /// Epochs executed so far (one drain+run round per window).
  std::uint64_t epochs() const { return epochs_; }

 private:
  void run_sequential(TimePs horizon, TimePs window);
  void run_parallel(TimePs horizon, TimePs window);
  void dump_flight_on_error(const std::exception_ptr& error);

  unsigned threads_;
  std::vector<ShardTask*> tasks_;
  ShardTelemetry* telemetry_ = nullptr;
  TimePs now_ = 0;  // horizon reached by the previous run() call
  std::uint64_t epochs_ = 0;
};

}  // namespace hwatch::sim
