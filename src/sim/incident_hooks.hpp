// IncidentSink — hook interface for in-run congestion-incident
// detection.
//
// The detectors themselves live in src/stats (stats::IncidentDetector),
// which the packet-path layers (net / tcp / hwatch) may not include:
// the layering pass pins stats above them.  This tiny abstract
// interface inverts the dependency — hook sites down in the packet
// path call through a SimContext-held pointer, the api layer wires a
// concrete detector in.
//
// Overhead discipline (same contract as SpanTracer / MetricsRegistry):
// the context pointer is null by default, so every hook site costs one
// predictable branch and zero allocations until a sink is attached —
// pinned by the BM_IncidentHooks/0 microbenchmark and the allocation
// harness.  Implementations run on sim-time only: every hook receives
// `now` from the caller's scheduler, never a wall clock (hwlint's
// nondeterminism rule applies to implementations as much as here).
//
// Flow identity crosses this interface as the packed key words of
// net::flow_key_words() — (src<<32)|dst and (sport<<16)|dport — so the
// header stays net-free and sinks can join flows against SpanTracer's
// register_flow() keys, which use the same packing.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace hwatch::sim {

class IncidentSink {
 public:
  virtual ~IncidentSink() = default;

  // ---- switch-queue episodes (net::QueueDiscipline) ------------------

  /// Post-enqueue / post-dequeue instantaneous depth of a registered
  /// queue.  `queue` is the id the sink handed out at registration.
  virtual void on_queue_depth(std::uint32_t queue, std::uint64_t depth_pkts,
                              TimePs now) = 0;
  /// A packet was tail-dropped (or evicted) at a registered queue.
  virtual void on_queue_drop(std::uint32_t queue, TimePs now) = 0;

  // ---- per-flow lifecycle (tcp::Sender) ------------------------------

  /// Handshake completed.  `flow_span` is the sender's SpanTracer flow
  /// span id (0 when tracing is off) — the back-reference incidents
  /// carry into the manifest.
  virtual void on_flow_established(std::uint64_t key_hi, std::uint64_t key_lo,
                                   std::uint64_t flow_span, TimePs now) = 0;
  /// Cumulative ACK advanced.  `srtt` is the sender's current smoothed
  /// RTT estimate (stall thresholds scale with it).
  virtual void on_flow_progress(std::uint64_t key_hi, std::uint64_t key_lo,
                                TimePs now, TimePs srtt) = 0;
  virtual void on_flow_complete(std::uint64_t key_hi, std::uint64_t key_lo,
                                TimePs now) = 0;
  /// Retransmission timeout fired on an established connection.
  virtual void on_rto(std::uint64_t key_hi, std::uint64_t key_lo,
                      TimePs now) = 0;
  /// A data segment was retransmitted (timeout or fast retransmit).
  virtual void on_retransmit(std::uint64_t key_hi, std::uint64_t key_lo,
                             TimePs now) = 0;

  // ---- sink-side fan-in (tcp::Sink) ----------------------------------

  /// First SYN of a connection arrived at receiving host `dst_node`
  /// (counted once per flow; retransmitted SYNs don't re-fire).
  /// `flow_span` is the sender's flow span when this context traced it,
  /// 0 otherwise (cross-shard flows — the sender registered on its own
  /// shard's tracer).
  virtual void on_sink_syn(std::uint32_t dst_node, std::uint64_t key_hi,
                           std::uint64_t key_lo, std::uint64_t flow_span,
                           TimePs now) = 0;

  // ---- hypervisor-shim interventions (core::HypervisorShim) ----------

  /// The shim rewrote a receive window on host `host_node` (no-op
  /// rewrites that leave the wire value unchanged don't fire).
  virtual void on_rwnd_rewrite(std::uint32_t host_node, std::uint64_t key_hi,
                               std::uint64_t key_lo, TimePs now) = 0;
};

}  // namespace hwatch::sim
