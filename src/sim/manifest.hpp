// RunManifest — one JSON document per simulation run.
//
// A manifest captures everything needed to interpret (and byte-compare)
// a run: the scenario configuration and seed, headline results, the
// full metrics snapshot (counters + histograms) and the sampled gauge
// time series.  The api layer fills it after every run with metrics
// collection enabled; SweepRunner/bench write one file per sweep point
// when HWATCH_METRICS_DIR is set.
//
// Determinism contract: everything except the "environment" section is
// a pure function of (config, seed) — the metrics-determinism tests
// compare deterministic_dump() byte-for-byte across repeated runs and
// across sweep thread counts.  Wall time and thread counts live in
// "environment", which file output includes and deterministic_dump()
// excludes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "sim/json.hpp"
#include "sim/metrics.hpp"

namespace hwatch::sim {

struct RunManifest {
  static constexpr const char* kSchemaId = "hwatch.run_manifest/v1";

  std::string name;           // run label; also the output file stem
  std::string scenario_kind;  // "dumbbell" | "leaf_spine" | ...
  std::uint64_t seed = 0;
  Json config = Json::object();   // scenario configuration
  Json results = Json::object();  // headline per-run results
  /// Sharded runs only (schema hwatch.shard_telemetry/v1): per-shard
  /// per-epoch deterministic telemetry and derived imbalance stats.
  /// Omitted from the document while empty, so single-context manifests
  /// are byte-identical to their pre-telemetry form.
  Json shards = Json::object();
  /// Detectors-on runs only (schema hwatch.incidents/v1): congestion
  /// incidents from stats::IncidentDetector, globally sorted and id'd.
  /// Omitted while empty, so detectors-off manifests are byte-identical
  /// to their pre-incident form.
  Json incidents = Json::object();
  Json metrics = Json::object();  // counters + histograms (sorted)
  Json series = Json::object();   // gauge name -> [[t_ps, value], ...]

  // ---- environment (excluded from the deterministic form) ----
  double wall_time_ms = 0;
  unsigned sweep_threads = 0;  // 0 = not part of a sweep

  /// Full document; `include_environment` = false drops the
  /// non-deterministic section.
  Json to_json(bool include_environment = true) const;

  /// Pretty-printed deterministic form (no environment section).
  std::string deterministic_dump() const;

  void write(std::ostream& os, bool include_environment = true) const;

  /// Writes <dir>/<sanitized name>.json (creates `dir` if needed).
  /// Returns the path written, or "" on filesystem error.
  std::string write_file(const std::string& dir,
                         bool include_environment = true) const;

  /// Filesystem-safe file stem: [A-Za-z0-9._-], everything else '_'.
  static std::string sanitize(const std::string& s);
};

/// Converts a snapshot into the manifest's "metrics" section:
///   {"counters": {name: value, ...},
///    "histograms": {name: {bounds, bucket_counts, count, sum, min, max}}}
Json metrics_json(const MetricsSnapshot& snap);

}  // namespace hwatch::sim
