// Discrete-event scheduler.
//
// The heart of the simulator: a cancellable priority queue of callbacks
// keyed by (time, insertion sequence).  The sequence number makes event
// ordering at equal timestamps FIFO and therefore fully deterministic,
// which the reproducibility tests rely on.
//
// Cancellation is O(1) per event via generation-tagged slots: an EventId
// packs a slot index and the slot's generation at scheduling time;
// cancelling (or executing) an event bumps the generation, so stale heap
// entries are recognised and skipped when they surface.  Slots are
// recycled through a free list, keeping bookkeeping memory proportional
// to the number of *live* events, not the events ever scheduled.  Stale
// heap entries are compacted away once they outnumber live ones.
//
// Memory model: callbacks are move-only UniqueFunctions that live in
// slot-indexed side arrays, NOT in the heap entries — heap entries stay
// 24 bytes, so sift-up/down moves small PODs while the fat callback is
// written exactly once per event.  Callback slots come in two size
// classes: a small pool for the common tiny capture (a `this` pointer,
// a couple of words — timers, flow starts, sampler ticks) and a large
// pool whose inline buffer carries a net::Packet by value (the link hot
// path).  schedule_at picks the pool from the callable's size at compile
// time; with >64k pending timer-style events the working set is ~4x
// smaller than a single packet-sized pool, which is what the
// ScheduleRun/100000 micro-bench regression was about.  In steady state
// (slots and heap at their high-water marks) schedule/cancel/execute
// touch the allocator zero times; the allocation-regression test
// enforces this.
#pragma once

#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace hwatch::sim {

/// Inline capacity of a large scheduler callback: sized so a lambda
/// capturing a net::Packet by value plus a `this` pointer is stored
/// inline (the link hot path static_asserts exactly that).
inline constexpr std::size_t kSchedulerCallbackInline = 176;

/// Inline capacity of a small scheduler callback: a `this` pointer plus
/// a few captured words.  Timer expiries, flow starts and sampler ticks
/// all fit; anything bigger routes to the large pool automatically.
inline constexpr std::size_t kSchedulerSmallCallbackInline = 32;

/// Opaque handle identifying a scheduled event; used for cancellation.
struct EventId {
  std::uint64_t value = 0;
  constexpr bool valid() const { return value != 0; }
  friend constexpr bool operator==(EventId a, EventId b) {
    return a.value == b.value;
  }
};

class Scheduler {
 public:
  using Callback = UniqueFunction<void(), kSchedulerCallbackInline>;
  using SmallCallback =
      UniqueFunction<void(), kSchedulerSmallCallbackInline>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Pending callbacks (cancelled or never run) are destroyed with the
  /// scheduler — packets they carry are released, not leaked.
  ~Scheduler() = default;

  /// Current simulated time.  Monotonically non-decreasing during run().
  TimePs now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now).  Returns a handle that
  /// can be passed to cancel().  An explicit Callback goes to the large
  /// pool; the templated overload below picks the pool from the
  /// callable's size at compile time.
  EventId schedule_at(TimePs t, Callback cb) {
    return schedule_large(t, std::move(cb));
  }

  /// Pool-selecting overload: callables that fit the small inline buffer
  /// use small slots, everything else (e.g. a lambda carrying a Packet)
  /// uses the packet-sized pool.  Semantics are identical either way.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_at(TimePs t, F&& f) {
    if constexpr (SmallCallback::fits_inline<F>()) {
      return schedule_small(t, SmallCallback(std::forward<F>(f)));
    } else {
      return schedule_large(t, Callback(std::forward<F>(f)));
    }
  }

  EventId schedule_at(TimePs t, SmallCallback cb) {
    return schedule_small(t, std::move(cb));
  }

  /// Schedules `cb` `delay` picoseconds from now.
  EventId schedule_in(TimePs delay, Callback cb) {
    return schedule_large(now_ + delay, std::move(cb));
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_in(TimePs delay, F&& f) {
    return schedule_at(now_ + delay, std::forward<F>(f));
  }

  /// Cancels a pending event.  Returns false when the event already fired,
  /// was cancelled before, or the id is invalid.  The callback (and
  /// anything it captured, e.g. a Packet) is destroyed immediately.
  bool cancel(EventId id);

  /// Runs events until the queue is empty or stop() is called.
  void run();

  /// Runs events with time <= `t`, then sets now to `t`.  This is the
  /// conservative time-window primitive ShardGroup builds on: after
  /// run_until(T) every event a callback schedules lands strictly after
  /// T, so cross-shard messages generated in window (T-W, T] are safe to
  /// deliver in the next window.
  void run_until(TimePs t);

  /// Executes at most one pending event.  Returns false when none remain.
  bool step();

  /// Makes run()/run_until() return after the current callback finishes.
  void stop() { stopped_ = true; }

  bool empty() const { return live_count_ == 0; }

  /// Time of the earliest pending event, or nullopt when none remain.
  /// Non-const: peeking drops stale (cancelled) entries off the top.
  std::optional<TimePs> next_event_time() {
    const Entry* e = peek_next();
    return e == nullptr ? std::nullopt : std::optional<TimePs>(e->time);
  }

  /// Number of events currently pending (excludes cancelled ones).
  std::size_t pending() const { return live_count_; }

  /// Total number of events executed since construction.
  std::uint64_t executed() const { return executed_; }

  /// Total number of events ever scheduled.
  std::uint64_t scheduled() const { return next_seq_; }

  /// Total number of successful cancellations.
  std::uint64_t cancelled() const { return cancelled_; }

  /// High-water mark of the heap (pending + stale entries) — the
  /// scheduler's peak memory footprint in events.
  std::size_t heap_peak() const { return heap_peak_; }

  // --- bookkeeping introspection (memory regression tests) -----------
  /// Generation slots ever allocated across both pools; bounded by the
  /// peak number of simultaneously live events, NOT by the events
  /// scheduled over time.
  std::size_t bookkeeping_slots() const {
    return small_.gens.size() + large_.gens.size();
  }
  /// Per-pool slot counts: the small-pool share is what keeps huge
  /// pending sets of timer-style events cache-warm.
  std::size_t small_slots() const { return small_.gens.size(); }
  std::size_t large_slots() const { return large_.gens.size(); }
  /// Resident callback-slot bytes across both pools (inline buffers
  /// only; spilled captures are owned by the arena).
  std::size_t callback_slot_bytes() const {
    return small_.gens.size() * sizeof(SmallCallback) +
           large_.gens.size() * sizeof(Callback);
  }
  /// Heap entries currently held, including not-yet-compacted stale
  /// (cancelled) ones.
  std::size_t heap_entries() const { return heap_.size(); }

 private:
  struct Entry {
    TimePs time;
    std::uint64_t seq;  // tie-breaker: FIFO at equal time
    std::uint32_t slot;  // high bit: small pool; low 31 bits: index
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint32_t kSmallSlotBit = 0x8000'0000u;

  template <typename CB>
  struct SlotPool {
    std::vector<std::uint32_t> gens;
    std::vector<CB> cbs;  // slot-indexed, parallel to gens
    std::vector<std::uint32_t> free_slots;

    std::uint32_t acquire(CB cb) {
      if (!free_slots.empty()) {
        const std::uint32_t slot = free_slots.back();
        free_slots.pop_back();
        cbs[slot] = std::move(cb);
        return slot;
      }
      const auto slot = static_cast<std::uint32_t>(gens.size());
      gens.push_back(0);
      cbs.push_back(std::move(cb));
      return slot;
    }
  };

  static constexpr std::uint64_t pack(std::uint32_t slot, std::uint32_t gen) {
    return ((static_cast<std::uint64_t>(slot) + 1) << 32) | gen;
  }

  EventId schedule_small(TimePs t, SmallCallback cb);
  EventId schedule_large(TimePs t, Callback cb);
  EventId push_entry(TimePs t, std::uint32_t slot, std::uint32_t gen);

  std::uint32_t& gen_of(std::uint32_t slot) {
    return (slot & kSmallSlotBit) ? small_.gens[slot & ~kSmallSlotBit]
                                  : large_.gens[slot];
  }
  bool is_live(const Entry& e) const {
    const std::uint32_t idx = e.slot & ~kSmallSlotBit;
    return ((e.slot & kSmallSlotBit) ? small_.gens[idx]
                                     : large_.gens[idx]) == e.gen;
  }
  void retire(const Entry& e);  // bump generation, recycle the slot

  // Drops stale entries off the top; points at the next live entry.
  const Entry* peek_next();
  void drop_top();
  void maybe_compact();

  std::vector<Entry> heap_;  // min-heap via std::*_heap with Later
  SlotPool<SmallCallback> small_;
  SlotPool<Callback> large_;
  std::size_t stale_ = 0;  // cancelled entries still parked in heap_
  TimePs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t heap_peak_ = 0;
  std::size_t live_count_ = 0;
  bool stopped_ = false;
};

}  // namespace hwatch::sim
