// Discrete-event scheduler.
//
// The heart of the simulator: a cancellable priority queue of callbacks
// keyed by (time, insertion sequence).  The sequence number makes event
// ordering at equal timestamps FIFO and therefore fully deterministic,
// which the reproducibility tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace hwatch::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
struct EventId {
  std::uint64_t value = 0;
  constexpr bool valid() const { return value != 0; }
  friend constexpr bool operator==(EventId a, EventId b) {
    return a.value == b.value;
  }
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.  Monotonically non-decreasing during run().
  TimePs now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now).  Returns a handle that
  /// can be passed to cancel().
  EventId schedule_at(TimePs t, Callback cb);

  /// Schedules `cb` `delay` picoseconds from now.
  EventId schedule_in(TimePs delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event.  Returns false when the event already fired,
  /// was cancelled before, or the id is invalid.
  bool cancel(EventId id);

  /// Runs events until the queue is empty or stop() is called.
  void run();

  /// Runs events with time <= `t`, then sets now to `t`.
  void run_until(TimePs t);

  /// Executes at most one pending event.  Returns false when none remain.
  bool step();

  /// Makes run()/run_until() return after the current callback finishes.
  void stop() { stopped_ = true; }

  bool empty() const { return live_count_ == 0; }

  /// Number of events currently pending (excludes cancelled ones).
  std::size_t pending() const { return live_count_; }

  /// Total number of events executed since construction.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    TimePs time;
    std::uint64_t seq;  // tie-breaker: FIFO at equal time
    std::uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pops the next non-cancelled entry, or returns false.
  bool pop_next(Entry& out);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> pending_ids_;
  std::unordered_set<std::uint64_t> cancelled_;
  TimePs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_count_ = 0;
  bool stopped_ = false;
};

}  // namespace hwatch::sim
