// Discrete-event scheduler: calendar-wheel front end + overflow heap.
//
// The heart of the simulator: a cancellable priority queue of callbacks
// keyed by (time, insertion sequence).  The sequence number makes event
// ordering at equal timestamps FIFO and therefore fully deterministic,
// which the reproducibility tests rely on.
//
// Two structures share that one logical queue:
//
//   * a calendar wheel of kWheelBuckets buckets, each kWheelBucketPs
//     picoseconds wide, covering the near horizon
//     [now, now + kWheelBuckets * kWheelBucketPs).  The events that
//     dominate every scenario — link serialization boundaries,
//     propagation arrivals, per-packet timer ticks — land a few
//     microseconds ahead and go here with O(1) insert and O(1)
//     amortized extract (buckets are sorted once when the clock reaches
//     them; typical occupancy is a handful of entries, stored in one
//     fixed slab so the wheel never allocates past its first insert);
//
//   * the binary min-heap, kept as the far-future overflow for
//     everything past the wheel horizon (retransmission timers,
//     sampler ticks, flow starts).  Far events pay O(log far-pending),
//     near events no longer pay O(log total-pending).
//
// Extraction compares the wheel's earliest live entry with the heap top
// under the same (time, seq) key, so the execution order is exactly the
// single-heap order — the determinism contract is structural, and the
// differential test in tests/sim/scheduler_differential_test.cpp pins
// it against a naive reference heap.
//
// Cancellation is O(1) per event via generation-tagged slots: an EventId
// packs a slot index and the slot's generation at scheduling time;
// cancelling (or executing) an event bumps the generation, so stale
// entries are recognised and skipped when they surface in either
// structure.  Slots are recycled through a free list, keeping
// bookkeeping memory proportional to the number of *live* events, not
// the events ever scheduled.  Stale entries are compacted away (from
// wheel buckets and heap alike) once they outnumber live ones; the
// stale counter, the compaction trigger and the parked-entry peak are
// all kept combined across the two structures so `heap_peak()` and the
// manifest `sched.heap_peak` counter are byte-identical to the
// pre-wheel tree.
//
// Memory model: callbacks are move-only UniqueFunctions that live in
// slot-indexed side arrays, NOT in the wheel/heap entries — entries
// stay 24 bytes, so bucket sorts and sift-up/down move small PODs while
// the fat callback is written exactly once per event.  Callback slots
// come in two size classes: a small pool for the common tiny capture (a
// `this` pointer, a couple of words — timers, flow starts, sampler
// ticks, link train boundaries) and a large pool whose inline buffer
// carries a net::Packet by value.  schedule_at picks the pool from the
// callable's size at compile time.  In steady state (slots, buckets and
// heap at their high-water marks) schedule/cancel/execute touch the
// allocator zero times; the allocation-regression test enforces this.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "sim/annotations.hpp"
#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace hwatch::sim {

/// Inline capacity of a large scheduler callback: sized so a lambda
/// capturing a net::Packet by value plus a `this` pointer is stored
/// inline (the link hot path static_asserts exactly that).
inline constexpr std::size_t kSchedulerCallbackInline = 176;

/// Inline capacity of a small scheduler callback: a `this` pointer plus
/// a few captured words.  Timer expiries, flow starts and sampler ticks
/// all fit; anything bigger routes to the large pool automatically.
inline constexpr std::size_t kSchedulerSmallCallbackInline = 32;

/// Calendar-wheel geometry.  Bucket width 2^16 ps (~65.5 ns) x 2048
/// buckets spans ~134 us — generously past the serialization +
/// propagation delays that produce the per-packet event churn, while
/// millisecond-scale timers (RTO, delayed ACK, samplers) overflow to
/// the heap.  Both are powers of two so bucket indexing is shift+mask.
inline constexpr unsigned kWheelBucketShift = 16;
inline constexpr TimePs kWheelBucketPs = TimePs{1} << kWheelBucketShift;
inline constexpr std::size_t kWheelBuckets = 2048;
inline constexpr TimePs kWheelSpanPs =
    kWheelBucketPs * static_cast<TimePs>(kWheelBuckets);

/// Fixed per-bucket capacity: bucket storage is one lazily-allocated
/// slab (kWheelBuckets x kWheelBucketCapacity entries, ~768 KiB), so
/// the wheel NEVER allocates after its first insert — a bucket that
/// fills up overflows to the heap, which already handles arbitrary
/// entries and warms to its high-water mark like the single-heap core
/// did.  That keeps the steady-state zero-allocation guarantee exactly
/// as strong as before the wheel existed.
inline constexpr std::size_t kWheelBucketCapacity = 16;

/// Opaque handle identifying a scheduled event; used for cancellation.
struct EventId {
  std::uint64_t value = 0;
  constexpr bool valid() const { return value != 0; }
  friend constexpr bool operator==(EventId a, EventId b) {
    return a.value == b.value;
  }
};

class HWATCH_SHARD_CONFINED Scheduler {
 public:
  using Callback = UniqueFunction<void(), kSchedulerCallbackInline>;
  using SmallCallback =
      UniqueFunction<void(), kSchedulerSmallCallbackInline>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Pending callbacks (cancelled or never run) are destroyed with the
  /// scheduler — packets they carry are released, not leaked.
  ~Scheduler() = default;

  /// Current simulated time.  Monotonically non-decreasing during run().
  TimePs now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now).  Returns a handle that
  /// can be passed to cancel().  An explicit Callback goes to the large
  /// pool; the templated overload below picks the pool from the
  /// callable's size at compile time.
  EventId schedule_at(TimePs t, Callback cb) {
    return schedule_large(t, std::move(cb));
  }

  /// Pool-selecting overload: callables that fit the small inline buffer
  /// use small slots, everything else (e.g. a lambda carrying a Packet)
  /// uses the packet-sized pool.  Semantics are identical either way.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_at(TimePs t, F&& f) {
    if constexpr (SmallCallback::fits_inline<F>()) {
      return schedule_small(t, SmallCallback(std::forward<F>(f)));
    } else {
      return schedule_large(t, Callback(std::forward<F>(f)));
    }
  }

  EventId schedule_at(TimePs t, SmallCallback cb) {
    return schedule_small(t, std::move(cb));
  }

  /// Schedules `cb` `delay` picoseconds from now.
  EventId schedule_in(TimePs delay, Callback cb) {
    return schedule_large(now_ + delay, std::move(cb));
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_in(TimePs delay, F&& f) {
    return schedule_at(now_ + delay, std::forward<F>(f));
  }

  /// Cancels a pending event.  Returns false when the event already fired,
  /// was cancelled before, or the id is invalid.  The callback (and
  /// anything it captured, e.g. a Packet) is destroyed immediately.
  bool cancel(EventId id);

  /// Runs events until the queue is empty or stop() is called.
  void run();

  /// Runs events with time <= `t`, then sets now to `t`.  This is the
  /// conservative time-window primitive ShardGroup builds on: after
  /// run_until(T) every event a callback schedules lands strictly after
  /// T, so cross-shard messages generated in window (T-W, T] are safe to
  /// deliver in the next window.  The epoch window (the topology's
  /// lookahead, typically a microsecond-scale fraction of the base RTT)
  /// is far inside the wheel horizon, so epoch-resident events keep the
  /// O(1) path and the boundary peek is a bitmap scan.
  HWATCH_DETERMINISTIC_PLANE void run_until(TimePs t);

  /// Executes at most one pending event.  Returns false when none remain.
  bool step();

  /// Makes run()/run_until() return after the current callback finishes.
  void stop() { stopped_ = true; }

  bool empty() const { return live_count_ == 0; }

  /// Time of the earliest pending event, or nullopt when none remain.
  /// Non-const: peeking drops stale (cancelled) entries off the front of
  /// both structures.
  std::optional<TimePs> next_event_time() {
    const Entry* e = peek_next();
    return e == nullptr ? std::nullopt : std::optional<TimePs>(e->time);
  }

  /// Number of events currently pending (excludes cancelled ones).
  std::size_t pending() const { return live_count_; }

  /// Total number of events executed since construction.
  std::uint64_t executed() const { return executed_; }

  /// Total number of events ever scheduled.
  std::uint64_t scheduled() const { return next_seq_; }

  /// Total number of successful cancellations.
  std::uint64_t cancelled() const { return cancelled_; }

  /// High-water mark of parked entries across BOTH structures (wheel
  /// buckets + overflow heap, live and not-yet-dropped cancelled alike)
  /// — the scheduler's peak memory footprint in events.  The combined
  /// accounting makes the value independent of the wheel/heap split and
  /// byte-identical to the pre-wheel single-heap peak.
  std::size_t heap_peak() const { return entries_peak_; }

  // --- bookkeeping introspection (memory regression tests) -----------
  /// Generation slots ever allocated across both pools; bounded by the
  /// peak number of simultaneously live events, NOT by the events
  /// scheduled over time.
  std::size_t bookkeeping_slots() const {
    return small_.gens.size() + large_.gens.size();
  }
  /// Per-pool slot counts: the small-pool share is what keeps huge
  /// pending sets of timer-style events cache-warm.
  std::size_t small_slots() const { return small_.gens.size(); }
  std::size_t large_slots() const { return large_.gens.size(); }
  /// Resident callback-slot bytes across both pools (inline buffers
  /// only; spilled captures are owned by the arena).
  std::size_t callback_slot_bytes() const {
    return small_.gens.size() * sizeof(SmallCallback) +
           large_.gens.size() * sizeof(Callback);
  }
  /// Entries currently parked in the overflow heap, including
  /// not-yet-compacted stale (cancelled) ones.
  std::size_t heap_entries() const { return heap_.size(); }
  /// Entries currently parked in wheel buckets, including
  /// not-yet-dropped stale ones (the consumed prefix of the active
  /// bucket is excluded — those events are already history).
  std::size_t wheel_entries() const { return wheel_count_; }
  /// Combined parked entries (what heap_entries() reported before the
  /// wheel existed).
  std::size_t total_entries() const { return wheel_count_ + heap_.size(); }

 private:
  struct Entry {
    TimePs time;
    std::uint64_t seq;  // tie-breaker: FIFO at equal time
    std::uint32_t slot;  // high bit: small pool; low 31 bits: index
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint32_t kSmallSlotBit = 0x8000'0000u;
  static constexpr std::uint64_t kNoBucket = ~std::uint64_t{0};

  template <typename CB>
  struct SlotPool {
    std::vector<std::uint32_t> gens;
    std::vector<CB> cbs;  // slot-indexed, parallel to gens
    std::vector<std::uint32_t> free_slots;

    std::uint32_t acquire(CB cb) {
      if (!free_slots.empty()) {
        const std::uint32_t slot = free_slots.back();
        free_slots.pop_back();
        cbs[slot] = std::move(cb);
        return slot;
      }
      const auto slot = static_cast<std::uint32_t>(gens.size());
      gens.push_back(0);
      cbs.push_back(std::move(cb));
      return slot;
    }
  };

  static constexpr std::uint64_t pack(std::uint32_t slot, std::uint32_t gen) {
    return ((static_cast<std::uint64_t>(slot) + 1) << 32) | gen;
  }

  static constexpr std::uint64_t bucket_of(TimePs t) {
    return static_cast<std::uint64_t>(t) >> kWheelBucketShift;
  }
  static constexpr std::size_t slot_index(std::uint64_t bucket) {
    return static_cast<std::size_t>(bucket & (kWheelBuckets - 1));
  }

  EventId schedule_small(TimePs t, SmallCallback cb);
  EventId schedule_large(TimePs t, Callback cb);
  EventId push_entry(TimePs t, std::uint32_t slot, std::uint32_t gen);

  std::uint32_t& gen_of(std::uint32_t slot) {
    return (slot & kSmallSlotBit) ? small_.gens[slot & ~kSmallSlotBit]
                                  : large_.gens[slot];
  }
  bool is_live(const Entry& e) const {
    const std::uint32_t idx = e.slot & ~kSmallSlotBit;
    return ((e.slot & kSmallSlotBit) ? small_.gens[idx]
                                     : large_.gens[idx]) == e.gen;
  }
  void retire(const Entry& e);  // bump generation, recycle the slot

  static bool earlier(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // --- wheel internals ----------------------------------------------
  Entry* bucket_data(std::size_t idx) {
    return slab_.get() + idx * kWheelBucketCapacity;
  }
  /// Parks `e` in its wheel bucket; false when the bucket is full (the
  /// caller overflows to the heap — never allocate in the wheel).
  bool wheel_insert(const Entry& e, std::uint64_t bucket);
  /// Earliest parked wheel entry (live or stale), sorting/activating
  /// its bucket on first touch; nullptr when the wheel is empty.
  const Entry* wheel_front_entry();
  /// Removes the entry wheel_front_entry() returned; recycles the
  /// bucket once drained.  Counter upkeep beyond wheel_count_
  /// (wheel_live_ / stale_) is the caller's job.
  void wheel_drop_front();
  /// Ring distance from slot `start` to the first occupied bucket slot;
  /// kWheelBuckets when the whole wheel is empty.
  std::size_t occupied_distance(std::size_t start) const;

  void set_occupied(std::size_t i) {
    occupied_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void clear_occupied(std::size_t i) {
    occupied_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  bool is_occupied(std::size_t i) const {
    return (occupied_[i >> 6] >> (i & 63)) & 1;
  }

  // Finds the next live entry across both structures; remembers where
  // it lives (next_from_wheel_) for step().  Stale entries are dropped
  // exactly when they surface as the GLOBAL minimum — the same instants
  // the single-heap implementation dropped them — which keeps the
  // combined parked count, and with it heap_peak(), byte-identical.
  const Entry* peek_next();
  void heap_drop_top();
  void execute_next();  // pops + runs the entry peek_next() found
  void maybe_compact();

  std::vector<Entry> heap_;  // far-future + overflow min-heap
  std::unique_ptr<Entry[]> slab_;  // bucket storage, allocated on first use
  std::array<std::uint8_t, kWheelBuckets> bucket_sizes_{};
  std::array<std::uint64_t, kWheelBuckets / 64> occupied_{};
  std::uint64_t wheel_front_ = 0;   // no wheel entries below this bucket
  std::uint64_t active_bucket_ = kNoBucket;  // sorted, partially consumed
  std::size_t active_pos_ = 0;      // consumed prefix of the active bucket
  std::size_t wheel_count_ = 0;     // parked wheel entries (live + stale)
  bool next_from_wheel_ = false;    // where peek_next found the minimum
  SlotPool<SmallCallback> small_;
  SlotPool<Callback> large_;
  std::size_t stale_ = 0;  // cancelled entries parked in wheel or heap
  TimePs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t entries_peak_ = 0;  // combined wheel+heap high-water mark
  std::size_t live_count_ = 0;
  bool stopped_ = false;
};

}  // namespace hwatch::sim
