// Discrete-event scheduler.
//
// The heart of the simulator: a cancellable priority queue of callbacks
// keyed by (time, insertion sequence).  The sequence number makes event
// ordering at equal timestamps FIFO and therefore fully deterministic,
// which the reproducibility tests rely on.
//
// Cancellation is O(1) per event via generation-tagged slots: an EventId
// packs a slot index and the slot's generation at scheduling time;
// cancelling (or executing) an event bumps the generation, so stale heap
// entries are recognised and skipped when they surface.  Slots are
// recycled through a free list, keeping bookkeeping memory proportional
// to the number of *live* events, not the events ever scheduled.  Stale
// heap entries are compacted away once they outnumber live ones.
//
// Memory model: callbacks are move-only UniqueFunctions with an inline
// buffer big enough to carry a net::Packet by value, and they live in a
// slot-indexed side array (`cbs_`), NOT in the heap entries — heap
// entries stay 24 bytes, so sift-up/down moves small PODs while the fat
// callback is written exactly once per event.  In steady state (slots
// and heap at their high-water marks) schedule/cancel/execute touch the
// allocator zero times; the allocation-regression test enforces this.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace hwatch::sim {

/// Inline capacity of a scheduler callback: sized so a lambda capturing
/// a net::Packet by value plus a `this` pointer is stored inline (the
/// link hot path static_asserts exactly that).
inline constexpr std::size_t kSchedulerCallbackInline = 176;

/// Opaque handle identifying a scheduled event; used for cancellation.
struct EventId {
  std::uint64_t value = 0;
  constexpr bool valid() const { return value != 0; }
  friend constexpr bool operator==(EventId a, EventId b) {
    return a.value == b.value;
  }
};

class Scheduler {
 public:
  using Callback = UniqueFunction<void(), kSchedulerCallbackInline>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Pending callbacks (cancelled or never run) are destroyed with the
  /// scheduler — packets they carry are released, not leaked.
  ~Scheduler() = default;

  /// Current simulated time.  Monotonically non-decreasing during run().
  TimePs now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now).  Returns a handle that
  /// can be passed to cancel().
  EventId schedule_at(TimePs t, Callback cb);

  /// Schedules `cb` `delay` picoseconds from now.
  EventId schedule_in(TimePs delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event.  Returns false when the event already fired,
  /// was cancelled before, or the id is invalid.  The callback (and
  /// anything it captured, e.g. a Packet) is destroyed immediately.
  bool cancel(EventId id);

  /// Runs events until the queue is empty or stop() is called.
  void run();

  /// Runs events with time <= `t`, then sets now to `t`.
  void run_until(TimePs t);

  /// Executes at most one pending event.  Returns false when none remain.
  bool step();

  /// Makes run()/run_until() return after the current callback finishes.
  void stop() { stopped_ = true; }

  bool empty() const { return live_count_ == 0; }

  /// Number of events currently pending (excludes cancelled ones).
  std::size_t pending() const { return live_count_; }

  /// Total number of events executed since construction.
  std::uint64_t executed() const { return executed_; }

  /// Total number of events ever scheduled.
  std::uint64_t scheduled() const { return next_seq_; }

  /// Total number of successful cancellations.
  std::uint64_t cancelled() const { return cancelled_; }

  /// High-water mark of the heap (pending + stale entries) — the
  /// scheduler's peak memory footprint in events.
  std::size_t heap_peak() const { return heap_peak_; }

  // --- bookkeeping introspection (memory regression tests) -----------
  /// Generation slots ever allocated; bounded by the peak number of
  /// simultaneously live events, NOT by the events scheduled over time.
  std::size_t bookkeeping_slots() const { return gens_.size(); }
  /// Heap entries currently held, including not-yet-compacted stale
  /// (cancelled) ones.
  std::size_t heap_entries() const { return heap_.size(); }

 private:
  struct Entry {
    TimePs time;
    std::uint64_t seq;  // tie-breaker: FIFO at equal time
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint64_t pack(std::uint32_t slot, std::uint32_t gen) {
    return ((static_cast<std::uint64_t>(slot) + 1) << 32) | gen;
  }

  bool is_live(const Entry& e) const { return gens_[e.slot] == e.gen; }
  void retire(const Entry& e);  // bump generation, recycle the slot

  // Drops stale entries off the top; points at the next live entry.
  const Entry* peek_next();
  void drop_top();
  void maybe_compact();

  std::vector<Entry> heap_;  // min-heap via std::*_heap with Later
  std::vector<std::uint32_t> gens_;
  std::vector<Callback> cbs_;  // slot-indexed, parallel to gens_
  std::vector<std::uint32_t> free_slots_;
  std::size_t stale_ = 0;  // cancelled entries still parked in heap_
  TimePs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t heap_peak_ = 0;
  std::size_t live_count_ = 0;
  bool stopped_ = false;
};

}  // namespace hwatch::sim
