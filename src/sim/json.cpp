#include "sim/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace hwatch::sim {

std::uint64_t Json::as_uint() const {
  switch (type_) {
    case Type::kUint:
      return uint_;
    case Type::kInt:
      return int_ < 0 ? 0 : static_cast<std::uint64_t>(int_);
    case Type::kDouble:
      return dbl_ < 0 ? 0 : static_cast<std::uint64_t>(dbl_);
    default:
      return 0;
  }
}

std::int64_t Json::as_int() const {
  switch (type_) {
    case Type::kUint:
      return static_cast<std::int64_t>(uint_);
    case Type::kInt:
      return int_;
    case Type::kDouble:
      return static_cast<std::int64_t>(dbl_);
    default:
      return 0;
  }
}

double Json::as_double() const {
  switch (type_) {
    case Type::kUint:
      return static_cast<double>(uint_);
    case Type::kInt:
      return static_cast<double>(int_);
    case Type::kDouble:
      return dbl_;
    default:
      return 0;
  }
}

Json& Json::set(std::string key, Json v) {
  type_ = Type::kObject;
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
  return obj_.back().second;
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

namespace {

void write_double(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  os << buf;
}

void write_newline_indent(std::ostream& os, int indent, int depth) {
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Json::dump(std::ostream& os, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      os << "null";
      return;
    case Type::kBool:
      os << (bool_ ? "true" : "false");
      return;
    case Type::kUint:
      os << uint_;
      return;
    case Type::kInt:
      os << int_;
      return;
    case Type::kDouble:
      write_double(os, dbl_);
      return;
    case Type::kString:
      write_escaped(os, str_);
      return;
    case Type::kArray: {
      os << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) os << (indent >= 0 ? ", " : ",");
        arr_[i].dump(os, indent, depth + 1);
      }
      os << ']';
      return;
    }
    case Type::kObject: {
      os << '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) os << ',';
        if (indent >= 0) {
          write_newline_indent(os, indent, depth + 1);
        }
        write_escaped(os, obj_[i].first);
        os << (indent >= 0 ? ": " : ":");
        obj_[i].second.dump(os, indent, depth + 1);
      }
      if (indent >= 0 && !obj_.empty()) {
        write_newline_indent(os, indent, depth);
      }
      os << '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dump(os, indent, 0);
  return os.str();
}

// ---------------------------------------------------------------- parser

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') return parse_string_value(out);
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) {
      return fail("invalid literal");
    }
    pos += lit.size();
    return true;
  }

  bool parse_bool(Json& out) {
    if (text[pos] == 't') {
      if (!parse_literal("true")) return false;
      out = Json(true);
    } else {
      if (!parse_literal("false")) return false;
      out = Json(false);
    }
    return true;
  }

  bool parse_null(Json& out) {
    if (!parse_literal("null")) return false;
    out = Json();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return fail("truncated escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // UTF-8 encode (no surrogate-pair combining; the writer never
          // emits surrogates, so round-trips are exact for our files).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_string_value(Json& out) {
    std::string s;
    if (!parse_string(s)) return false;
    out = Json(std::move(s));
    return true;
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool integral = true;
    while (pos < text.size()) {
      const char c = text[pos];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = c == '-' || c == '+' ? integral : false;
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) return fail("expected a value");
    const std::string token(text.substr(start, pos - start));
    errno = 0;
    char* end = nullptr;
    if (integral) {
      if (token[0] == '-') {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          out = Json(static_cast<std::int64_t>(v));
          return true;
        }
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          out = Json(static_cast<std::uint64_t>(v));
          return true;
        }
      }
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size()) {
      return fail("bad number '" + token + "'");
    }
    out = Json(d);
    return true;
  }

  bool parse_array(Json& out) {
    consume('[');
    out = Json::array();
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      Json v;
      if (!parse_value(v)) return false;
      out.push_back(std::move(v));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  bool parse_object(Json& out) {
    consume('{');
    out = Json::object();
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      Json v;
      if (!parse_value(v)) return false;
      out.set(std::move(key), std::move(v));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }
};

}  // namespace

Json Json::parse(std::string_view text, std::string* error) {
  Parser p{text};
  Json out;
  if (!p.parse_value(out)) {
    if (error) *error = p.error;
    return Json();
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error) *error = "trailing data at offset " + std::to_string(p.pos);
    return Json();
  }
  if (error) error->clear();
  return out;
}

}  // namespace hwatch::sim
