// ShardTelemetry — runtime observability for the sharded PDES engine.
//
// Two strictly separated data planes share one object:
//
//  * Deterministic counters.  Each shard's owner worker reports, once
//    per epoch, cumulative shard-local quantities (scheduler events,
//    cross-shard ingress pushed/drained/spilled, inbox peak depth).
//    The telemetry folds them into per-shard deltas, per-run totals and
//    load-imbalance stats that are pure functions of (config, seed) —
//    they feed the manifest `shards` section and must stay
//    byte-identical across HWATCH_SHARDS=1/2/4.
//
//  * Wall-clock timelines.  Per-worker drain / barrier-wait / run spans
//    and per-epoch wall durations measure the simulator itself, like
//    SelfProfiler: readings never enter the manifest or the merged
//    trace export (both are byte-compared across thread counts).  They
//    surface only through export_chrome_workers() — a SEPARATE Perfetto
//    file — the stderr report, the HWATCH_PROGRESS heartbeat, and the
//    flight recorder.  All clock access lives in shard_telemetry.cpp
//    (hwlint-allowlisted); this header is clock-free.
//
// Thread-safety without locks: every mutable slot has exactly one
// writer.  Shard records are written by the shard's statically assigned
// owner worker; worker timelines by that worker; epoch aggregation and
// the heartbeat run on the coordinator (worker 0) strictly after the
// run-phase barrier of the epoch they read, so the ShardGroup barriers
// provide all the happens-before edges.  The flight ring holds
// `ring_epochs` epochs and live dumps read only the newest
// ring_epochs-1, so a concurrently recycled slot is never touched.
//
// Overhead discipline: when telemetry is off, ShardGroup / the shard
// tasks hold a null pointer and every hook site costs one predictable
// branch — no call, no clock read, no allocation (pinned by the
// BM_ShardGroupEpochs microbenchmark).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/annotations.hpp"
#include "sim/json.hpp"
#include "sim/time.hpp"

namespace hwatch::sim {

class HWATCH_SHARD_SHARED ShardTelemetry {
 public:
  static constexpr const char* kFlightSchemaId = "hwatch.shard_flight/v1";
  static constexpr const char* kShardsSchemaId = "hwatch.shard_telemetry/v1";

  struct Config {
    std::size_t shard_count = 0;
    unsigned workers = 1;
    /// Flight-recorder depth in epochs (clamped to >= 2).
    std::size_t ring_epochs = 64;
    /// Run label, used in reports / heartbeat lines / dump file names.
    std::string label;
    /// Conservative window width, recorded in dumps for context.
    TimePs lookahead = 0;
    /// Collect per-worker drain/run/barrier wall spans (feeds
    /// export_chrome_workers and the report's worker-share lines).
    bool wall_spans = false;
    /// Print the once-per-second stderr heartbeat (HWATCH_PROGRESS=1).
    bool progress = false;
    /// Incident detectors are attached (shard_incidents() will report
    /// per-epoch open-episode counts); adds the heartbeat's incident
    /// column.  Off, the heartbeat keeps its exact pre-incident format.
    bool incidents = false;
    /// Dump the flight ring when one epoch's wall time exceeds this
    /// budget (0 disables the watchdog).
    std::uint64_t epoch_budget_ms = 0;
    /// Directory for flight dumps ("<label>.flight.json"); "" = stderr.
    std::string flight_dir;
  };

  explicit ShardTelemetry(Config cfg);

  ShardTelemetry(const ShardTelemetry&) = delete;
  ShardTelemetry& operator=(const ShardTelemetry&) = delete;

  // ---- deterministic per-shard hooks (owner worker only) -------------

  /// Cumulative ingress-channel totals, sampled by the owner at the
  /// start of its drain phase (the barrier has published every producer
  /// write of the previous run phase; producers are quiescent).
  struct IngressSample {
    std::uint64_t pushed = 0;      // sum over the shard's channels
    std::uint64_t spilled = 0;     // sum
    std::uint64_t peak_depth = 0;  // max over the shard's channels
    std::uint64_t depth = 0;       // items pending right now (= drained
                                   // this epoch)
  };
  void shard_drain(std::size_t shard, TimePs window_start,
                   const IngressSample& in);
  /// End of the shard's run phase; `events_cum` = scheduler.executed().
  void shard_run(std::size_t shard, TimePs window_end,
                 std::uint64_t events_cum);
  /// Open congestion incidents on this shard's detector at the end of
  /// its run phase (stats::IncidentDetector::active_count()).  Called
  /// only on detectors-on runs; its first call enables the heartbeat's
  /// incident column.  Deterministic — derived from sim-time episode
  /// state, never from the wall clock.
  void shard_incidents(std::size_t shard, std::uint32_t active);

  // ---- wall-clock hooks (ShardGroup) ---------------------------------

  /// Phase transitions of one worker's epoch loop.  Each mark closes the
  /// previous phase span and (except kEnd) opens the next.
  enum class Mark : std::uint8_t { kDrain = 0, kBarrier, kRun, kEnd };
  void worker_mark(unsigned worker, Mark m);

  /// Coordinator hook, once per epoch after the run-phase barrier:
  /// folds the epoch's shard records into the run totals, measures the
  /// epoch's wall time (budget watchdog) and prints the heartbeat.
  void epoch_end(TimePs window_end, TimePs horizon);

  /// Remembers the failing task's what() for the next flight dump.
  void note_error(std::string what);

  /// Dumps the flight ring (schema hwatch.shard_flight/v1) to
  /// `flight_dir`/<label>.flight.json, or stderr when no directory is
  /// configured.  `reason`: "shard_exception", "epoch_budget_exceeded"
  /// or "forced".
  void dump_flight(const char* reason);
  /// Same document to an explicit stream (testing / stderr path).
  void dump_flight(std::ostream& os, const char* reason) const;

  // ---- deterministic outputs -----------------------------------------

  std::uint64_t epochs() const { return epochs_done_; }
  std::uint64_t total_events() const { return total_events_; }
  std::uint64_t spill_total() const;
  std::uint64_t inbox_peak_depth() const;  // max over shards

  /// Average per-epoch max-shard events over average per-epoch mean
  /// events: 1.0 = perfectly balanced, S = one shard does everything.
  /// 0 when no events were recorded.
  HWATCH_DETERMINISTIC_PLANE double imbalance_ratio() const;

  /// Top-`n` shards by total events, descending (ties: lower id first);
  /// empty when no events were recorded.
  HWATCH_DETERMINISTIC_PLANE
  std::vector<std::uint32_t> top_stragglers(std::size_t n) const;

  /// The manifest `shards` section (schema hwatch.shard_telemetry/v1):
  /// run totals, derived imbalance stats and the per-shard breakdown.
  /// Pure function of the deterministic counters — this TU holds a
  /// nondeterminism allowlist entry for its wall-clock half, and these
  /// markers are what keeps the clock out of the manifest half.
  HWATCH_DETERMINISTIC_PLANE Json shards_json() const;

  // ---- wall-clock outputs (stderr / separate files only) -------------

  /// Per-worker epoch timelines as Chrome trace-event JSON (schema
  /// hwatch.trace_export/v1, loads in Perfetto): one track per worker,
  /// B/E pairs named drain / barrier_wait / run, args carry the epoch.
  /// Wall times — never merge this into the deterministic trace export.
  void export_chrome_workers(std::ostream& os,
                             std::string_view process_name) const;

  /// Straggler / imbalance report: totals, per-epoch imbalance, top
  /// stragglers, spill + grow-capacity advice, per-worker phase shares
  /// (when wall spans were collected).  Stderr-only by convention.
  void report(std::ostream& os) const;

  std::uint64_t worker_spans_dropped() const;

  /// Parses HWATCH_EPOCH_BUDGET_MS (0 when unset or unparseable).
  static std::uint64_t epoch_budget_ms_from_env();

 private:
  /// One (epoch, shard) cell of the flight ring — per-epoch deltas,
  /// written only by the shard's owner worker.
  struct EpochShardRecord {
    std::uint64_t epoch = ~std::uint64_t{0};  // validity tag
    TimePs window_end = 0;
    std::uint64_t events = 0;   // delta
    std::uint64_t pushed = 0;   // delta
    std::uint64_t drained = 0;  // inbox depth at drain start
    std::uint64_t spilled = 0;  // delta
    std::uint64_t inbox_peak = 0;
    std::uint64_t inbox_depth = 0;
  };

  /// Per-shard run totals, written only by the shard's owner worker.
  struct ShardStats {
    std::uint64_t epochs = 0;
    std::uint64_t events = 0;
    std::uint64_t busy_epochs = 0;
    std::uint64_t max_epoch_events = 0;
    std::uint64_t max_epoch_events_epoch = 0;
    std::uint64_t pushed = 0;
    std::uint64_t drained = 0;
    std::uint64_t spilled = 0;
    std::uint64_t max_epoch_spill = 0;
    std::uint64_t inbox_peak = 0;
    // Open incidents on the shard's detector after its latest run
    // phase; owner-written, coordinator-read after the barrier.
    std::uint32_t active_incidents = 0;
    // Cumulative baselines for delta computation.
    std::uint64_t last_events = 0;
    std::uint64_t last_pushed = 0;
    std::uint64_t last_spilled = 0;
    // Epoch currently being filled (drain seen, run pending).
    std::uint64_t cur_epoch = 0;
  };

  static constexpr std::size_t kPhases = 3;  // drain, barrier, run
  struct WorkerSpan {
    std::uint64_t t0_ns = 0;
    std::uint64_t t1_ns = 0;
    std::uint32_t epoch = 0;
    std::uint8_t phase = 0;
  };
  struct WorkerState {
    std::vector<WorkerSpan> spans;
    std::uint64_t phase_t0_ns = 0;
    std::uint8_t phase = 0;
    bool phase_open = false;
    std::uint32_t cur_epoch = 0;
    std::uint32_t drains_seen = 0;
    std::uint64_t dropped = 0;
    std::uint64_t busy_ns[kPhases] = {};
  };

  EpochShardRecord& ring_at(std::uint64_t epoch, std::size_t shard) {
    return ring_[(epoch % cfg_.ring_epochs) * cfg_.shard_count + shard];
  }
  const EpochShardRecord& ring_at(std::uint64_t epoch,
                                  std::size_t shard) const {
    return ring_[(epoch % cfg_.ring_epochs) * cfg_.shard_count + shard];
  }
  Json flight_json(const char* reason) const;
  void heartbeat(std::uint64_t now_ns, TimePs window_end, TimePs horizon);

  Config cfg_;
  bool timing_ = false;  // any wall-clock feature active
  std::vector<ShardStats> shards_;
  std::vector<EpochShardRecord> ring_;
  std::vector<WorkerState> workers_;
  std::vector<double> epoch_wall_ms_;  // ring, coordinator-written

  // Coordinator-owned run aggregates (epoch_end only).
  std::uint64_t epochs_done_ = 0;
  std::uint64_t total_events_ = 0;
  std::uint64_t epoch_max_sum_ = 0;  // sum over epochs of max shard delta
  TimePs last_window_end_ = 0;

  // Wall-clock state (coordinator-owned).
  std::uint64_t t0_ns_ = 0;
  std::uint64_t last_epoch_ns_ = 0;
  std::uint64_t last_beat_ns_ = 0;
  bool budget_tripped_ = false;
  std::string error_;
};

}  // namespace hwatch::sim
