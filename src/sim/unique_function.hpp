// UniqueFunction — a move-only, small-buffer-optimized std::function
// replacement for the simulator's hot paths.
//
// std::function requires copyable callables, which forces every event
// that carries a Packet to park it behind a shared_ptr (two heap
// allocations per link hop).  UniqueFunction accepts move-only captures,
// so a Packet rides *inside* the callback object; with an inline buffer
// at least sizeof(Packet) + a `this` pointer wide the steady-state hop
// touches the allocator zero times.
//
// Storage contract:
//   * A callable F is stored inline iff sizeof(F) <= InlineBytes,
//     alignof(F) <= alignof(std::max_align_t), and F is nothrow move
//     constructible.  `fits_inline<F>()` exposes the decision at compile
//     time so hot-path call sites can static_assert it.
//   * Oversized callables spill through sim::uf_detail::spill_alloc /
//     spill_free, backed by a thread-local size-class arena (pool.hpp),
//     so even the spill path recycles memory instead of hitting the
//     global allocator in steady state.
//   * Inline callables relocate through their move constructor (an
//     exact-size copy once the instantiation inlines); trivially
//     destructible ones skip the destructor call entirely, so the
//     common captureless or POD-capture case stays a handful of loads
//     beyond a raw indirect call.
//
// Both plain `R(Args...)` and const-invocable `R(Args...) const`
// signatures are supported; the latter is used where callers hold the
// callable by const reference (e.g. QdiscFactory).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>  // std::bad_function_call
#include <new>
#include <type_traits>
#include <utility>

namespace hwatch::sim {

/// Default inline capacity: enough for a `this` pointer plus a handful
/// of captured words (or one std::function being wrapped) without
/// bloating every owner.
inline constexpr std::size_t kUniqueFunctionInlineBytes = 48;

namespace uf_detail {

/// Spill-path allocator hooks, defined in pool.cpp next to SpillArena.
/// Thread-local size-class free lists: after warm-up, oversized
/// callbacks recycle memory instead of calling operator new.
void* spill_alloc(std::size_t bytes, std::size_t align);
void spill_free(void* p, std::size_t bytes, std::size_t align);

template <bool Const, std::size_t InlineBytes, typename R, typename... Args>
class UfImpl {
  static_assert(InlineBytes >= sizeof(void*),
                "inline buffer must at least hold a spill pointer");

 public:
  static constexpr std::size_t inline_bytes = InlineBytes;

  /// True when a (decayed) callable of type D is stored in the inline
  /// buffer rather than spilled to the arena.
  template <typename D>
  static constexpr bool stores_inline =
      sizeof(D) <= InlineBytes &&
      alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  constexpr UfImpl() noexcept = default;
  constexpr UfImpl(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_base_of_v<UfImpl, D> &&
                !std::is_same_v<D, std::nullptr_t> &&
                std::is_invocable_r_v<
                    R, std::conditional_t<Const, const D&, D&>, Args...>>>
  UfImpl(F&& f) {  // NOLINT(runtime/explicit)
    emplace<D>(std::forward<F>(f));
  }

  UfImpl(UfImpl&& other) noexcept { move_from(other); }
  UfImpl& operator=(UfImpl&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  UfImpl(const UfImpl&) = delete;
  UfImpl& operator=(const UfImpl&) = delete;

  ~UfImpl() { reset(); }

  UfImpl& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_base_of_v<UfImpl, D> &&
                !std::is_same_v<D, std::nullptr_t> &&
                std::is_invocable_r_v<
                    R, std::conditional_t<Const, const D&, D&>, Args...>>>
  UfImpl& operator=(F&& f) {
    UfImpl tmp(std::forward<F>(f));
    reset();
    move_from(tmp);
    return *this;
  }

  /// Destroys the held callable (if any) and becomes empty.
  void reset() noexcept {
    if (vt_ != nullptr && vt_->destroy != nullptr) vt_->destroy(buf_);
    invoke_ = nullptr;
    vt_ = nullptr;
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// True when the held callable lives in the inline buffer (false when
  /// empty or spilled).  Hot paths static_assert fits_inline instead.
  bool is_inline() const noexcept { return vt_ != nullptr && !vt_->heap; }

  /// Compile-time check: would a callable of type F be stored inline?
  template <typename F>
  static constexpr bool fits_inline() {
    return stores_inline<std::decay_t<F>>;
  }

 protected:
  using Storage = std::conditional_t<Const, const void*, void*>;
  using Invoke = R (*)(Storage, Args&&...);

  struct VTable {
    // nullptr => the callable lives behind a spill pointer; relocation
    // is a memcpy of that pointer.  Inline callables always relocate
    // through their move constructor — for trivially copyable captures
    // the instantiation collapses to an exact-sizeof(D) copy, which
    // (unlike a whole-buffer memcpy) never touches bytes the object
    // never wrote.
    void (*relocate)(void* src, void* dst) noexcept;
    // nullptr => trivially destructible, nothing to do.
    void (*destroy)(void* buf) noexcept;
    bool heap;  // callable lives behind a spill pointer in buf
  };

  R call(Storage self, Args... args) const {
    if (invoke_ == nullptr) throw std::bad_function_call();
    return invoke_(self, std::forward<Args>(args)...);
  }

  template <typename D, typename F>
  void emplace(F&& f) {
    if constexpr (stores_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = &invoke_inline<D>;
      vt_ = &kInlineVt<D>;
    } else {
      void* mem = spill_alloc(sizeof(D), alignof(D));
      try {
        ::new (mem) D(std::forward<F>(f));
      } catch (...) {
        spill_free(mem, sizeof(D), alignof(D));
        throw;
      }
      std::memcpy(buf_, &mem, sizeof(mem));
      invoke_ = &invoke_heap<D>;
      vt_ = &kHeapVt<D>;
    }
  }

  void move_from(UfImpl& other) noexcept {
    invoke_ = other.invoke_;
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      if (vt_->relocate != nullptr) {
        vt_->relocate(other.buf_, buf_);
      } else {
        std::memcpy(buf_, other.buf_, sizeof(void*));
      }
    }
    other.invoke_ = nullptr;
    other.vt_ = nullptr;
  }

  template <typename D>
  static R invoke_inline(Storage self, Args&&... args) {
    using P = std::conditional_t<Const, const D*, D*>;
    if constexpr (std::is_void_v<R>) {
      (*static_cast<P>(self))(std::forward<Args>(args)...);
    } else {
      return (*static_cast<P>(self))(std::forward<Args>(args)...);
    }
  }

  template <typename D>
  static R invoke_heap(Storage self, Args&&... args) {
    void* mem;
    std::memcpy(&mem, self, sizeof(mem));
    using P = std::conditional_t<Const, const D*, D*>;
    if constexpr (std::is_void_v<R>) {
      (*static_cast<P>(mem))(std::forward<Args>(args)...);
    } else {
      return (*static_cast<P>(mem))(std::forward<Args>(args)...);
    }
  }

  template <typename D>
  static void relocate_inline(void* src, void* dst) noexcept {
    D* s = std::launder(reinterpret_cast<D*>(src));
    ::new (dst) D(std::move(*s));
    s->~D();
  }

  template <typename D>
  static void destroy_inline(void* buf) noexcept {
    std::launder(reinterpret_cast<D*>(buf))->~D();
  }

  template <typename D>
  static void destroy_heap(void* buf) noexcept {
    void* mem;
    std::memcpy(&mem, buf, sizeof(mem));
    static_cast<D*>(mem)->~D();
    spill_free(mem, sizeof(D), alignof(D));
  }

  template <typename D>
  static constexpr VTable kInlineVt{
      &relocate_inline<D>,
      std::is_trivially_destructible_v<D> ? nullptr : &destroy_inline<D>,
      /*heap=*/false};

  template <typename D>
  static constexpr VTable kHeapVt{/*relocate=*/nullptr, &destroy_heap<D>,
                                  /*heap=*/true};

  Invoke invoke_ = nullptr;
  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[InlineBytes];
};

}  // namespace uf_detail

template <typename Signature,
          std::size_t InlineBytes = kUniqueFunctionInlineBytes>
class UniqueFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class UniqueFunction<R(Args...), InlineBytes>
    : public uf_detail::UfImpl<false, InlineBytes, R, Args...> {
  using Base = uf_detail::UfImpl<false, InlineBytes, R, Args...>;

 public:
  using Base::Base;
  using Base::operator=;

  R operator()(Args... args) {
    return this->call(static_cast<void*>(this->buf_),
                      std::forward<Args>(args)...);
  }
};

template <typename R, typename... Args, std::size_t InlineBytes>
class UniqueFunction<R(Args...) const, InlineBytes>
    : public uf_detail::UfImpl<true, InlineBytes, R, Args...> {
  using Base = uf_detail::UfImpl<true, InlineBytes, R, Args...>;

 public:
  using Base::Base;
  using Base::operator=;

  R operator()(Args... args) const {
    return this->call(static_cast<const void*>(this->buf_),
                      std::forward<Args>(args)...);
  }
};

}  // namespace hwatch::sim
