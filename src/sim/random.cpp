#include "sim/random.hpp"

#include <cmath>
#include <stdexcept>

namespace hwatch::sim {

double Rng::bounded_pareto(double shape, double lo, double hi) {
  if (!(shape > 0) || !(lo > 0) || !(hi > lo)) {
    throw std::invalid_argument("bounded_pareto: need shape>0, 0<lo<hi");
  }
  // Inverse-CDF sampling of the bounded Pareto distribution.  The pow
  // calls are inherent to the distribution; the reproduction's
  // reference platform is x86-64/glibc.
  const double u = uniform();
  const double la = std::pow(lo, shape);    // hwlint: allow(fp-determinism)
  const double ha = std::pow(hi, shape);    // hwlint: allow(fp-determinism)
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(x, -1.0 / shape);         // hwlint: allow(fp-determinism)
}

}  // namespace hwatch::sim
