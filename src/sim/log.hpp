// Minimal leveled logger.
//
// Scenario-scale runs push tens of millions of events, so per-packet
// logging must cost nothing when disabled: callers guard with
// `if (log_enabled(Level::kTrace))` before formatting.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace hwatch::sim {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

/// Redirects output (default: std::clog).  Pass nullptr to restore.
void set_log_sink(std::ostream* sink);

/// Emits one log line (appends '\n').
void log_line(LogLevel level, const std::string& msg);

namespace detail {
inline void append(std::ostringstream&) {}
template <typename T, typename... Rest>
void append(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append(os, rest...);
}
}  // namespace detail

/// log_msg(LogLevel::kInfo, "flow ", id, " done in ", ms, " ms")
template <typename... Args>
void log_msg(LogLevel level, const Args&... args) {
  if (!log_enabled(level)) return;
  std::ostringstream os;
  detail::append(os, args...);
  log_line(level, os.str());
}

/// Per-instance log configuration: one SimLog per SimContext, so
/// concurrent simulations can log at different levels into different
/// sinks without sharing any mutable state.  A null sink falls back to
/// the process-wide sink (std::clog by default) — writes through the
/// fallback are only safe when at most one context logs at a time, so
/// parallel sweeps leave per-context logging off (kOff is cheap: the
/// level check is one branch).
class SimLog {
 public:
  LogLevel level() const { return level_; }
  void set_level(LogLevel level) { level_ = level; }

  std::ostream* sink() const { return sink_; }
  void set_sink(std::ostream* sink) { sink_ = sink; }

  bool enabled(LogLevel l) const {
    return static_cast<int>(l) >= static_cast<int>(level_);
  }

  /// Emits one log line through this instance's sink (appends '\n').
  void line(LogLevel l, const std::string& msg) const;

  /// msg(LogLevel::kInfo, "flow ", id, " done in ", ms, " ms")
  template <typename... Args>
  void msg(LogLevel l, const Args&... args) const {
    if (!enabled(l)) return;
    std::ostringstream os;
    detail::append(os, args...);
    line(l, os.str());
  }

 private:
  LogLevel level_ = LogLevel::kWarn;
  std::ostream* sink_ = nullptr;  // nullptr = process-wide sink
};

}  // namespace hwatch::sim
