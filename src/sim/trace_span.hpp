// SpanTracer — causal span/event tracing for one simulation instance.
//
// Where MetricsRegistry answers "how many", the tracer answers "which
// observation caused which decision on which flow, and where did the
// time go".  It records begin/end/instant events carrying deterministic
// span ids (a per-context counter — never a wall clock), so a flow's
// lifecycle (connect -> slow start -> recovery/RTO episodes -> FIN),
// the HWatch decision chain (probe tallies -> window_policy plan ->
// rwnd rewrite) and per-packet latency attribution (queueing vs
// transmission vs propagation vs retransmission wait) all link together
// and export to Chrome trace-event / Perfetto JSON
// (schema `hwatch.trace_export/v1`).
//
// Overhead discipline (same as MetricsRegistry): disabled, every hook
// costs one predictable branch — begin_span/end_span/instant/add_latency
// test `enabled_` and return, no allocation, no hashing.  Callers that
// need more than one call per hook site guard the whole block with
// enabled() so the hot path keeps a single branch.
//
// Determinism: span ids, timestamps and payloads derive only from
// simulated state, so the JSONL dump and the Chrome export are
// byte-identical for a given (config, seed) across runs and sweep
// thread counts.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace hwatch::sim {

enum class SpanKind : std::uint8_t {
  kFlow = 0,     // connect -> FIN acked (one per TcpSender)
  kHandshake,    // SYN sent -> established
  kSlowStart,    // established -> first exit from slow start
  kRecovery,     // fast-retransmit entry -> full ACK (or RTO)
  kRto,          // RTO fired -> next cumulative progress
  kProbeTrain,   // HWatch probe train span (SYN held -> SYN released)
  kDecision,     // window_policy decision (instant with an id)
  kRwndWrite,    // rwnd field rewritten on the wire (instant)
};
inline constexpr std::size_t kSpanKinds = 8;

std::string_view to_string(SpanKind k);

/// Per-packet latency decomposition buckets (per link hop, plus the
/// sender's retransmission-wait attribution).
enum class LatencyComponent : std::uint8_t {
  kQueueing = 0,      // qdisc admission -> head of line
  kTransmission = 1,  // serialization time at the link rate
  kPropagation = 2,   // link propagation delay
  kRetxWait = 3,      // time an RTO expiry spent waiting on the timer
};
inline constexpr std::size_t kLatencyComponents = 4;

std::string_view to_string(LatencyComponent c);

/// One trace record.  `span` is the id of the span this event begins /
/// ends (or the id minted for an instant); `parent` the enclosing span;
/// `flow` the owning flow span (the Perfetto track it renders on).
/// a..d are kind-specific (see SpanTracer::arg_names).
struct TraceEvent {
  TimePs t = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::uint64_t flow = 0;
  std::uint64_t a = 0, b = 0, c = 0, d = 0;
  SpanKind kind = SpanKind::kFlow;
  char phase = 'B';  // 'B' begin, 'E' end, 'i' instant
};

class SpanTracer {
 public:
  SpanTracer() = default;
  // Components cache no pointers into the tracer, but events reference
  // ids minted here; one tracer per context, non-copyable like the rest
  // of SimContext's members.
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Event-buffer cap; recording beyond it increments dropped() instead
  /// of growing without bound (the cap is reported, never silent).
  std::size_t max_events() const { return max_events_; }
  void set_max_events(std::size_t n) { max_events_ = n; }
  std::uint64_t dropped() const { return dropped_; }

  /// Stripes the span-id space for sharded runs (shard s passes s<<40):
  /// every id any shard mints is globally unique, so merged dumps never
  /// alias spans.  Call before any span is opened.
  void set_id_base(std::uint64_t base) { next_id_ = base; }

  /// Opens a span and returns its id (0 when disabled).  A kFlow span
  /// becomes its own `flow` (it is the track everything else nests on).
  std::uint64_t begin_span(TimePs t, SpanKind kind, std::uint64_t parent,
                           std::uint64_t flow, std::uint64_t a = 0,
                           std::uint64_t b = 0, std::uint64_t c = 0,
                           std::uint64_t d = 0);

  /// Closes an open span; kind/parent/flow come from the begin record.
  /// No-op when disabled or id == 0, so callers can end unconditionally.
  void end_span(TimePs t, std::uint64_t id, std::uint64_t b = 0,
                std::uint64_t c = 0);

  /// Records an instant event and mints an id for it, so later events
  /// can cite it as their parent (decision -> rwnd-write provenance).
  std::uint64_t instant(TimePs t, SpanKind kind, std::uint64_t parent,
                        std::uint64_t flow, std::uint64_t a = 0,
                        std::uint64_t b = 0, std::uint64_t c = 0,
                        std::uint64_t d = 0);

  /// Closes every still-open span (LIFO, so Perfetto's per-track stacks
  /// stay balanced).  Scenario runners call this at end of run.
  void close_open_spans(TimePs t);

  // ---- flow registry --------------------------------------------------
  // The 96-bit FlowKey packed into two words (net::flow_key_words) so
  // the sim layer stays below net.  The sender registers its flow span
  // at start(); links and shims look the span up per packet.
  void register_flow(std::uint64_t key_hi, std::uint64_t key_lo,
                     std::uint64_t flow_span);
  std::uint64_t flow_span_of(std::uint64_t key_hi,
                             std::uint64_t key_lo) const;

  struct FlowInfo {
    std::uint64_t span = 0;
    std::uint64_t key_hi = 0;  // src << 32 | dst
    std::uint64_t key_lo = 0;  // sport << 16 | dport
  };
  const std::vector<FlowInfo>& flows() const { return flows_; }

  // ---- latency decomposition -----------------------------------------
  struct LatencyAccum {
    std::array<TimePs, kLatencyComponents> total_ps{};
    std::array<std::uint64_t, kLatencyComponents> samples{};
  };

  /// Attributes `dt` to a component: always into the context-wide
  /// fixed-bucket histogram, and into the per-flow accumulator when
  /// `flow_span` is a registered flow (0 = unattributed).
  void add_latency(std::uint64_t flow_span, LatencyComponent c, TimePs dt);

  /// Per-flow totals; nullptr when the flow never saw a sample.
  const LatencyAccum* latency_of(std::uint64_t flow_span) const;

  /// Exponential microsecond bounds shared by the per-component
  /// histograms (bucket i counts samples <= bounds[i] us; one overflow).
  static constexpr std::size_t kLatencyBuckets = 18;
  static const std::array<double, kLatencyBuckets>& latency_bounds_us();
  const std::array<std::uint64_t, kLatencyBuckets + 1>& latency_counts(
      LatencyComponent c) const {
    return latency_hist_[static_cast<std::size_t>(c)];
  }

  // ---- inspection / export -------------------------------------------
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Kind-specific names for TraceEvent::a..d (nullptr = unused slot).
  struct ArgNames {
    const char* a = nullptr;
    const char* b = nullptr;
    const char* c = nullptr;
    const char* d = nullptr;
  };
  static const ArgNames& arg_names(SpanKind k);

  /// One JSON object per line: flow registrations ("ph":"F"), events
  /// ("ph":"B"/"E"/"i") and per-flow latency summaries ("ph":"L").
  void dump_jsonl(std::ostream& os) const;

  /// Chrome trace-event JSON (schema `hwatch.trace_export/v1`): object
  /// form with a sorted `traceEvents` array; loads directly in Perfetto.
  void export_chrome(std::ostream& os, std::string_view process_name) const;

 private:
  struct OpenSpan {
    SpanKind kind = SpanKind::kFlow;
    std::uint64_t parent = 0;
    std::uint64_t flow = 0;
  };

  bool record(const TraceEvent& ev);

  bool enabled_ = false;
  std::size_t max_events_ = 1u << 20;
  std::uint64_t next_id_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
  // Ordered so close_open_spans is deterministic and LIFO by id.
  // hwlint: allow(hot-path-container) — tracing only, off unless enabled
  std::map<std::uint64_t, OpenSpan> open_;
  std::vector<FlowInfo> flows_;
  std::unordered_map<std::uint64_t, std::uint64_t> flow_index_;  // mixed key
  std::unordered_map<std::uint64_t, LatencyAccum> latency_;
  std::array<std::array<std::uint64_t, kLatencyBuckets + 1>,
             kLatencyComponents>
      latency_hist_{};
};

/// Merged JSONL dump for sharded runs: the per-shard sections in shard
/// order (the order of `parts`, which the topology fixes), so the bytes
/// are identical for every worker-thread count.  Span ids are globally
/// unique when each shard striped its id space via set_id_base.
void dump_jsonl_merged(const std::vector<const SpanTracer*>& parts,
                       std::ostream& os);

/// Merged Chrome export: one pid per shard (shard s -> pid s+1), all
/// span events k-way merged by (timestamp, shard index) so `ts` stays
/// globally sorted — the invariant the CI trace checker enforces.
void export_chrome_merged(const std::vector<const SpanTracer*>& parts,
                          std::ostream& os, std::string_view process_name);

}  // namespace hwatch::sim
