// The one translation unit where the profiler touches the wall clock
// (see tools/hwlint/allowlist.txt): measurement of the simulator itself,
// never of simulated behaviour, and reported to stderr only.
#include "sim/self_profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace hwatch::sim {

namespace {

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* to_string(ProfComponent c) {
  switch (c) {
    case ProfComponent::kLinkTx:
      return "link_tx";
    case ProfComponent::kTcpSender:
      return "tcp_sender";
    case ProfComponent::kTcpSink:
      return "tcp_sink";
    case ProfComponent::kShim:
      return "hwatch_shim";
  }
  return "?";
}

std::uint64_t SelfProfiler::now_ns() const { return wall_now_ns(); }

void SelfProfiler::record(ProfComponent c, std::uint64_t t0_ns) {
  const std::uint64_t dt = wall_now_ns() - t0_ns;
  ComponentStats& s = stats_[static_cast<std::size_t>(c)];
  ++s.calls;
  s.total_ns += dt;
  if (dt > s.max_ns) s.max_ns = dt;
  const auto& bounds = bucket_bounds_ns();
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(),
                       static_cast<double>(dt)) -
      bounds.begin());
  ++s.hist[bucket];
}

void SelfProfiler::merge_from(const SelfProfiler& other) {
  for (std::size_t i = 0; i < kProfComponents; ++i) {
    ComponentStats& dst = stats_[i];
    const ComponentStats& src = other.stats_[i];
    dst.calls += src.calls;
    dst.total_ns += src.total_ns;
    dst.max_ns = std::max(dst.max_ns, src.max_ns);
    for (std::size_t b = 0; b < dst.hist.size(); ++b) {
      dst.hist[b] += src.hist[b];
    }
  }
}

const std::array<double, SelfProfiler::kBuckets>&
SelfProfiler::bucket_bounds_ns() {
  // 32 ns .. ~1 ms, doubling: handlers run tens of ns to (pathological)
  // fractions of a millisecond.
  static const std::array<double, kBuckets> kBounds = [] {
    std::array<double, kBuckets> b{};
    double v = 32;
    for (auto& x : b) {
      x = v;
      v *= 2;
    }
    return b;
  }();
  return kBounds;
}

void SelfProfiler::report(std::ostream& os,
                          const EventLoopStats* loop) const {
  os << "-- self-profile (wall time; not part of any manifest) --\n";
  if (loop != nullptr) {
    const double wall_s = static_cast<double>(loop->wall_ns) / 1e9;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "event loop: %llu events in %.3fs (%.2fM events/s), "
                  "heap peak %llu\n",
                  static_cast<unsigned long long>(loop->events_executed),
                  wall_s,
                  wall_s > 0 ? static_cast<double>(loop->events_executed) /
                                   wall_s / 1e6
                             : 0.0,
                  static_cast<unsigned long long>(loop->heap_peak));
    os << buf;
  }
  for (std::size_t i = 0; i < kProfComponents; ++i) {
    const ComponentStats& s = stats_[i];
    if (s.calls == 0) continue;
    // Bucket-midpoint percentiles are plenty for a profiler readout.
    const auto quantile = [&](double q) {
      const std::uint64_t target =
          static_cast<std::uint64_t>(q * static_cast<double>(s.calls));
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < s.hist.size(); ++b) {
        cum += s.hist[b];
        if (cum >= target && s.hist[b] > 0) {
          return b < kBuckets ? bucket_bounds_ns()[b]
                              : bucket_bounds_ns()[kBuckets - 1];
        }
      }
      return bucket_bounds_ns()[kBuckets - 1];
    };
    char buf[200];
    std::snprintf(
        buf, sizeof(buf),
        "%-12s calls=%-10llu total=%.3fms mean=%.0fns p50<=%.0fns "
        "p99<=%.0fns max=%lluns\n",
        to_string(static_cast<ProfComponent>(i)),
        static_cast<unsigned long long>(s.calls),
        static_cast<double>(s.total_ns) / 1e6,
        static_cast<double>(s.total_ns) / static_cast<double>(s.calls),
        quantile(0.50), quantile(0.99),
        static_cast<unsigned long long>(s.max_ns));
    os << buf;
  }
}

bool ProgressMeter::env_enabled() {
  const char* raw = std::getenv("HWATCH_PROGRESS");
  return raw != nullptr && *raw != '\0' &&
         !(raw[0] == '0' && raw[1] == '\0');
}

ProgressMeter::ProgressMeter(std::size_t total, std::string label)
    : label_(std::move(label)), total_(total), t0_ns_(wall_now_ns()) {}

void ProgressMeter::tick() {
  const std::size_t k = done_.fetch_add(1, std::memory_order_relaxed) + 1;
  const double elapsed_s =
      static_cast<double>(wall_now_ns() - t0_ns_) / 1e9;
  const double eta_s =
      k > 0 ? elapsed_s / static_cast<double>(k) *
                  static_cast<double>(total_ > k ? total_ - k : 0)
            : 0.0;
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "[%s] %zu/%zu done, %.1fs elapsed, eta %.1fs\n",
                label_.c_str(), k, total_, elapsed_s, eta_s);
  // One atomic write per line; interleaving across workers is harmless.
  std::fputs(buf, stderr);
}

}  // namespace hwatch::sim
