// The shard-telemetry clock-reading translation unit (see
// tools/hwlint/allowlist.txt): wall time measures the simulator itself
// — worker timelines, the epoch budget watchdog, the progress heartbeat
// — and surfaces only through stderr, the separate workers trace file
// and the flight recorder.  Every deterministic quantity in this file
// is computed from shard-reported counters alone.
#include "sim/shard_telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/manifest.hpp"

namespace hwatch::sim {

namespace {

// Beyond this many spans per worker the timeline stops growing and the
// export reports the overflow in dropped_events (a 50 ms k=16 run is
// ~24k spans per worker; the cap covers runs two orders larger).
constexpr std::size_t kMaxWorkerSpans = std::size_t{1} << 20;

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t round_up_pow2_u64(std::uint64_t n) {
  std::uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

const char* phase_name(std::uint8_t phase) {
  switch (phase) {
    case 0:
      return "drain";
    case 1:
      return "barrier_wait";
    case 2:
      return "run";
  }
  return "?";
}

/// Writes `ns` as microseconds with fixed three fractional digits —
/// the same fixed-point discipline as the span tracer's ts field.
void write_ns_as_us(std::ostream& os, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  os << buf;
}

}  // namespace

ShardTelemetry::ShardTelemetry(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.ring_epochs < 2) cfg_.ring_epochs = 2;
  if (cfg_.workers == 0) cfg_.workers = 1;
  shards_.resize(cfg_.shard_count);
  ring_.resize(cfg_.ring_epochs * cfg_.shard_count);
  workers_.resize(cfg_.workers);
  epoch_wall_ms_.assign(cfg_.ring_epochs, 0.0);
  timing_ = cfg_.wall_spans || cfg_.progress || cfg_.epoch_budget_ms > 0;
  if (timing_) {
    t0_ns_ = wall_now_ns();
    last_epoch_ns_ = t0_ns_;
  }
}

void ShardTelemetry::shard_drain(std::size_t shard, TimePs /*window_start*/,
                                 const IngressSample& in) {
  if (shard >= shards_.size()) return;
  ShardStats& st = shards_[shard];
  st.cur_epoch = st.epochs;
  EpochShardRecord& r = ring_at(st.cur_epoch, shard);
  const std::uint64_t d_pushed = in.pushed - st.last_pushed;
  const std::uint64_t d_spilled = in.spilled - st.last_spilled;
  r.epoch = st.cur_epoch;
  r.window_end = 0;
  r.events = 0;
  r.pushed = d_pushed;
  r.drained = in.depth;
  r.spilled = d_spilled;
  r.inbox_peak = in.peak_depth;
  r.inbox_depth = in.depth;
  st.last_pushed = in.pushed;
  st.last_spilled = in.spilled;
  st.pushed += d_pushed;
  st.drained += in.depth;
  st.spilled += d_spilled;
  if (d_spilled > st.max_epoch_spill) st.max_epoch_spill = d_spilled;
  if (in.peak_depth > st.inbox_peak) st.inbox_peak = in.peak_depth;
}

void ShardTelemetry::shard_run(std::size_t shard, TimePs window_end,
                               std::uint64_t events_cum) {
  if (shard >= shards_.size()) return;
  ShardStats& st = shards_[shard];
  EpochShardRecord& r = ring_at(st.cur_epoch, shard);
  if (r.epoch != st.cur_epoch) {
    // run without a drain hook this epoch (direct driving in tests):
    // open a fresh record so the stale ring slot cannot leak.
    r = EpochShardRecord{};
    r.epoch = st.cur_epoch;
  }
  const std::uint64_t d_events = events_cum - st.last_events;
  r.events = d_events;
  r.window_end = window_end;
  st.last_events = events_cum;
  st.events += d_events;
  if (d_events > 0) ++st.busy_epochs;
  if (d_events > st.max_epoch_events) {
    st.max_epoch_events = d_events;
    st.max_epoch_events_epoch = st.cur_epoch;
  }
  ++st.epochs;
}

void ShardTelemetry::shard_incidents(std::size_t shard,
                                     std::uint32_t active) {
  if (shard >= shards_.size()) return;
  shards_[shard].active_incidents = active;
}

void ShardTelemetry::worker_mark(unsigned worker, Mark m) {
  if (!cfg_.wall_spans || worker >= workers_.size()) return;
  WorkerState& w = workers_[worker];
  const std::uint64_t now = wall_now_ns();
  if (w.phase_open) {
    if (w.phase < kPhases) w.busy_ns[w.phase] += now - w.phase_t0_ns;
    if (w.spans.size() < kMaxWorkerSpans) {
      w.spans.push_back(WorkerSpan{w.phase_t0_ns, now, w.cur_epoch, w.phase});
    } else {
      ++w.dropped;
    }
  }
  if (m == Mark::kEnd) {
    w.phase_open = false;
    return;
  }
  if (m == Mark::kDrain) w.cur_epoch = w.drains_seen++;
  w.phase = static_cast<std::uint8_t>(m);
  w.phase_open = true;
  w.phase_t0_ns = now;
}

void ShardTelemetry::epoch_end(TimePs window_end, TimePs horizon) {
  const std::uint64_t e = epochs_done_;
  std::uint64_t total = 0;
  std::uint64_t mx = 0;
  for (std::size_t s = 0; s < cfg_.shard_count; ++s) {
    const EpochShardRecord& r = ring_at(e, s);
    if (r.epoch != e) continue;
    total += r.events;
    if (r.events > mx) mx = r.events;
  }
  total_events_ += total;
  epoch_max_sum_ += mx;
  last_window_end_ = window_end;
  ++epochs_done_;
  if (!timing_) return;
  const std::uint64_t now = wall_now_ns();
  const double epoch_ms =
      static_cast<double>(now - last_epoch_ns_) / 1e6;
  epoch_wall_ms_[e % cfg_.ring_epochs] = epoch_ms;
  last_epoch_ns_ = now;
  if (cfg_.epoch_budget_ms > 0 && !budget_tripped_ &&
      epoch_ms > static_cast<double>(cfg_.epoch_budget_ms)) {
    budget_tripped_ = true;
    // The coordinator cannot unwind mid-epoch (the other workers are
    // parked at a barrier), so a flight-dir configuration error is
    // reported on stderr here instead of thrown; the dump itself
    // already fell back to stderr.
    try {
      dump_flight("epoch_budget_exceeded");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
    }
  }
  if (cfg_.progress) heartbeat(now, window_end, horizon);
}

void ShardTelemetry::heartbeat(std::uint64_t now_ns, TimePs window_end,
                               TimePs horizon) {
  if (last_beat_ns_ != 0 && now_ns - last_beat_ns_ < 1'000'000'000ull) {
    return;
  }
  last_beat_ns_ = now_ns;
  const double elapsed_s = static_cast<double>(now_ns - t0_ns_) / 1e9;
  const double ev_s =
      elapsed_s > 0 ? static_cast<double>(total_events_) / elapsed_s : 0.0;
  char buf[240];
  std::snprintf(buf, sizeof(buf),
                "[%s] epoch %llu, t=%.2f/%.2f ms, %.2fM ev/s, "
                "imbalance %.2fx",
                cfg_.label.c_str(),
                static_cast<unsigned long long>(epochs_done_),
                to_seconds(window_end) * 1e3, to_seconds(horizon) * 1e3,
                ev_s / 1e6, imbalance_ratio());
  std::string line(buf);
  if (cfg_.incidents) {
    // Open congestion incidents right now, summed over the shards
    // (each shard's owner wrote its count before the epoch barrier).
    std::uint64_t active = 0;
    for (const ShardStats& st : shards_) active += st.active_incidents;
    std::snprintf(buf, sizeof(buf), ", %llu incidents",
                  static_cast<unsigned long long>(active));
    line += buf;
  }
  line += '\n';
  std::fputs(line.c_str(), stderr);
}

void ShardTelemetry::note_error(std::string what) { error_ = std::move(what); }

std::uint64_t ShardTelemetry::spill_total() const {
  std::uint64_t n = 0;
  for (const ShardStats& st : shards_) n += st.spilled;
  return n;
}

std::uint64_t ShardTelemetry::inbox_peak_depth() const {
  std::uint64_t peak = 0;
  for (const ShardStats& st : shards_) peak = std::max(peak, st.inbox_peak);
  return peak;
}

double ShardTelemetry::imbalance_ratio() const {
  if (total_events_ == 0 || cfg_.shard_count == 0) return 0.0;
  // (average per-epoch max shard delta) / (average per-epoch mean shard
  // delta) = epoch_max_sum * shard_count / total_events.
  return static_cast<double>(epoch_max_sum_) *
         static_cast<double>(cfg_.shard_count) /
         static_cast<double>(total_events_);
}

std::vector<std::uint32_t> ShardTelemetry::top_stragglers(
    std::size_t n) const {
  if (total_events_ == 0) return {};
  std::vector<std::uint32_t> ids(shards_.size());
  std::iota(ids.begin(), ids.end(), 0u);
  std::sort(ids.begin(), ids.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              if (shards_[a].events != shards_[b].events) {
                return shards_[a].events > shards_[b].events;
              }
              return a < b;
            });
  if (ids.size() > n) ids.resize(n);
  return ids;
}

Json ShardTelemetry::shards_json() const {
  Json j = Json::object();
  j.set("schema", Json(kShardsSchemaId));
  j.set("shard_count", Json(static_cast<std::uint64_t>(cfg_.shard_count)));
  j.set("epochs", Json(epochs_done_));
  j.set("lookahead_ps", Json(cfg_.lookahead));
  Json ev = Json::object();
  ev.set("total", Json(total_events_));
  ev.set("per_epoch_max_sum", Json(epoch_max_sum_));
  const double mean =
      epochs_done_ > 0 && cfg_.shard_count > 0
          ? static_cast<double>(total_events_) /
                (static_cast<double>(epochs_done_) *
                 static_cast<double>(cfg_.shard_count))
          : 0.0;
  ev.set("mean_per_epoch_shard", Json(mean));
  ev.set("imbalance_ratio", Json(imbalance_ratio()));
  j.set("events", std::move(ev));
  Json stragglers = Json::array();
  if (total_events_ > 0) {
    for (const std::uint32_t id : top_stragglers(3)) {
      stragglers.push_back(Json(static_cast<std::uint64_t>(id)));
    }
  }
  j.set("stragglers", std::move(stragglers));
  Json per = Json::array();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardStats& st = shards_[s];
    Json sj = Json::object();
    sj.set("shard", Json(static_cast<std::uint64_t>(s)));
    sj.set("events", Json(st.events));
    sj.set("busy_epochs", Json(st.busy_epochs));
    sj.set("max_epoch_events", Json(st.max_epoch_events));
    sj.set("max_epoch_events_epoch", Json(st.max_epoch_events_epoch));
    Json in = Json::object();
    in.set("pushed", Json(st.pushed));
    in.set("drained", Json(st.drained));
    in.set("spilled", Json(st.spilled));
    in.set("max_epoch_spill", Json(st.max_epoch_spill));
    in.set("peak_depth", Json(st.inbox_peak));
    sj.set("ingress", std::move(in));
    per.push_back(std::move(sj));
  }
  j.set("per_shard", std::move(per));
  return j;
}

Json ShardTelemetry::flight_json(const char* reason) const {
  Json j = Json::object();
  j.set("schema", Json(kFlightSchemaId));
  j.set("label", Json(cfg_.label));
  j.set("reason", Json(std::string(reason)));
  j.set("shard_count", Json(static_cast<std::uint64_t>(cfg_.shard_count)));
  j.set("workers", Json(static_cast<std::uint64_t>(cfg_.workers)));
  j.set("ring_epochs", Json(static_cast<std::uint64_t>(cfg_.ring_epochs)));
  j.set("lookahead_ps", Json(cfg_.lookahead));
  j.set("epochs_completed", Json(epochs_done_));
  j.set("events_total", Json(total_events_));
  j.set("imbalance_ratio", Json(imbalance_ratio()));
  if (!error_.empty()) j.set("error", Json(error_));
  // Window: the newest ring_epochs-1 completed epochs (the oldest slot
  // may be concurrently recycled in a live budget dump), plus the
  // current partially recorded epoch when any shard reached it (an
  // exception mid-epoch leaves such records behind).
  bool partial = false;
  for (std::size_t s = 0; s < cfg_.shard_count; ++s) {
    if (ring_at(epochs_done_, s).epoch == epochs_done_) partial = true;
  }
  const std::uint64_t hi_excl = epochs_done_ + (partial ? 1 : 0);
  const std::uint64_t span = cfg_.ring_epochs - 1;
  const std::uint64_t lo = hi_excl > span ? hi_excl - span : 0;
  Json epochs = Json::array();
  for (std::uint64_t e = lo; e < hi_excl; ++e) {
    Json shards = Json::array();
    TimePs window_end = 0;
    for (std::size_t s = 0; s < cfg_.shard_count; ++s) {
      const EpochShardRecord& r = ring_at(e, s);
      if (r.epoch != e) continue;
      window_end = std::max(window_end, r.window_end);
      Json sj = Json::object();
      sj.set("shard", Json(static_cast<std::uint64_t>(s)));
      sj.set("events", Json(r.events));
      sj.set("pushed", Json(r.pushed));
      sj.set("drained", Json(r.drained));
      sj.set("spilled", Json(r.spilled));
      sj.set("inbox_peak", Json(r.inbox_peak));
      sj.set("inbox_depth", Json(r.inbox_depth));
      shards.push_back(std::move(sj));
    }
    if (shards.size() == 0) continue;
    Json row = Json::object();
    row.set("epoch", Json(e));
    row.set("window_end_ps", Json(window_end));
    row.set("partial", Json(e >= epochs_done_));
    if (e < epochs_done_) {
      row.set("wall_ms", Json(epoch_wall_ms_[e % cfg_.ring_epochs]));
    }
    row.set("shards", std::move(shards));
    epochs.push_back(std::move(row));
  }
  j.set("epochs", std::move(epochs));
  if (spill_total() > 0) {
    j.set("advice",
          Json("inbox spills observed; raise inbox_capacity to >= " +
               std::to_string(round_up_pow2_u64(inbox_peak_depth()))));
  }
  return j;
}

void ShardTelemetry::dump_flight(std::ostream& os,
                                 const char* reason) const {
  flight_json(reason).dump(os, 2);
  os << '\n';
}

void ShardTelemetry::dump_flight(const char* reason) {
  if (!cfg_.flight_dir.empty()) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(cfg_.flight_dir, ec);
    const fs::path path =
        fs::path(cfg_.flight_dir) /
        (RunManifest::sanitize(cfg_.label) + ".flight.json");
    bool written = false;
    if (!ec) {
      std::ofstream os(path, std::ios::binary);
      dump_flight(os, reason);
      written = static_cast<bool>(os);
    }
    if (written) {
      std::fprintf(stderr, "[%s] flight recorder (%s) written to %s\n",
                   cfg_.label.c_str(), reason, path.string().c_str());
      return;
    }
    // Same contract as HWATCH_METRICS_DIR / HWATCH_TRACE_DIR: an
    // unusable directory is a configuration error, never a silent
    // no-op.  The document still reaches stderr first, so the flight
    // data survives the throw; callers that must not let a dump
    // failure mask a shard's own exception catch this (see
    // ShardGroup::dump_flight_on_error and the budget watchdog).
    dump_flight(std::cerr, reason);
    throw std::runtime_error(
        std::string("HWATCH_FLIGHT_DIR=\"") + cfg_.flight_dir +
        "\": cannot create the directory or write \"" + path.string() +
        "\"; point HWATCH_FLIGHT_DIR at a writable path");
  }
  dump_flight(std::cerr, reason);
}

std::uint64_t ShardTelemetry::worker_spans_dropped() const {
  std::uint64_t n = 0;
  for (const WorkerState& w : workers_) n += w.dropped;
  return n;
}

void ShardTelemetry::export_chrome_workers(
    std::ostream& os, std::string_view process_name) const {
  os << "{\"schema\":\"hwatch.trace_export/v1\",\"dropped_events\":"
     << worker_spans_dropped() << ",\"traceEvents\":[";
  bool first = true;
  const auto emit_sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  emit_sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
     << "\"args\":{\"name\":\"" << process_name << "/workers\"}}";
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    emit_sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << (w + 1) << ",\"args\":{\"name\":\"worker" << w << "\"}}";
  }
  // K-way merge of the per-worker B/E streams.  Within a worker, spans
  // are sequential and non-overlapping, so each stream is already
  // time-ordered; picking the globally smallest next timestamp keeps
  // the merged ts monotonic and every (pid,tid) stack balanced.
  std::vector<std::size_t> pos(workers_.size(), 0);
  const auto event_ns = [&](std::size_t w) {
    const WorkerSpan& sp = workers_[w].spans[pos[w] / 2];
    return pos[w] % 2 == 0 ? sp.t0_ns : sp.t1_ns;
  };
  for (;;) {
    std::size_t best = workers_.size();
    std::uint64_t best_ns = 0;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (pos[w] >= workers_[w].spans.size() * 2) continue;
      const std::uint64_t t = event_ns(w);
      if (best == workers_.size() || t < best_ns) {
        best = w;
        best_ns = t;
      }
    }
    if (best == workers_.size()) break;
    const WorkerSpan& sp = workers_[best].spans[pos[best] / 2];
    const bool open = pos[best] % 2 == 0;
    emit_sep();
    os << "{\"name\":\"" << phase_name(sp.phase) << "\",\"ph\":\""
       << (open ? 'B' : 'E') << "\",\"pid\":1,\"tid\":" << (best + 1)
       << ",\"ts\":";
    write_ns_as_us(os, best_ns - std::min(best_ns, t0_ns_));
    if (open) os << ",\"args\":{\"epoch\":" << sp.epoch << "}";
    os << "}";
    ++pos[best];
  }
  os << "\n]}\n";
}

void ShardTelemetry::report(std::ostream& os) const {
  char buf[256];
  os << "-- shard telemetry (deterministic counters; wall data "
        "stderr-only) --\n";
  std::snprintf(buf, sizeof(buf),
                "epochs %llu, shards %llu, events %llu, imbalance %.2fx "
                "(per-epoch max/mean shard events)\n",
                static_cast<unsigned long long>(epochs_done_),
                static_cast<unsigned long long>(cfg_.shard_count),
                static_cast<unsigned long long>(total_events_),
                imbalance_ratio());
  os << buf;
  if (total_events_ > 0) {
    os << "stragglers:";
    for (const std::uint32_t id : top_stragglers(3)) {
      std::snprintf(buf, sizeof(buf), " shard %u (%.1f%% of events)", id,
                    100.0 * static_cast<double>(shards_[id].events) /
                        static_cast<double>(total_events_));
      os << buf;
    }
    os << "\n";
  }
  std::uint64_t pushed = 0;
  std::uint64_t drained = 0;
  for (const ShardStats& st : shards_) {
    pushed += st.pushed;
    drained += st.drained;
  }
  const std::uint64_t spilled = spill_total();
  std::snprintf(buf, sizeof(buf),
                "cross-shard: pushed %llu, drained %llu, spilled %llu, "
                "inbox peak depth %llu\n",
                static_cast<unsigned long long>(pushed),
                static_cast<unsigned long long>(drained),
                static_cast<unsigned long long>(spilled),
                static_cast<unsigned long long>(inbox_peak_depth()));
  os << buf;
  if (spilled > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "advice: raise inbox_capacity to >= %llu (spills observed)\n",
        static_cast<unsigned long long>(
            round_up_pow2_u64(inbox_peak_depth())));
    os << buf;
  }
  if (cfg_.wall_spans) {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const WorkerState& ws = workers_[w];
      const std::uint64_t total_ns =
          ws.busy_ns[0] + ws.busy_ns[1] + ws.busy_ns[2];
      if (total_ns == 0) continue;
      const auto pct = [&](std::size_t p) {
        return 100.0 * static_cast<double>(ws.busy_ns[p]) /
               static_cast<double>(total_ns);
      };
      std::snprintf(buf, sizeof(buf),
                    "worker %llu: drain %.1f%%, run %.1f%%, "
                    "barrier wait %.1f%% (of %.1f ms)\n",
                    static_cast<unsigned long long>(w), pct(0), pct(2),
                    pct(1), static_cast<double>(total_ns) / 1e6);
      os << buf;
    }
  }
}

std::uint64_t ShardTelemetry::epoch_budget_ms_from_env() {
  const char* raw = std::getenv("HWATCH_EPOCH_BUDGET_MS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return 0;
  return static_cast<std::uint64_t>(v);
}

}  // namespace hwatch::sim
