// Minimal JSON value tree — writer and parser, no external deps.
//
// The observability layer (RunManifest, the JSONL packet traces and the
// trace_inspect tool) needs a deterministic JSON representation:
// object keys keep insertion order, integers stay exact 64-bit, and
// doubles are formatted with a fixed "%.17g" so the same run always
// produces byte-identical text — the property the metrics-determinism
// tests assert.  This is intentionally a small subset of a full JSON
// library: enough for flat-to-moderately-nested machine-written files.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace hwatch::sim {

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull = 0,
    kBool,
    kUint,    // non-negative integer, exact
    kInt,     // negative integer, exact
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kDouble), dbl_(d) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Json(T v) {
    if constexpr (std::is_signed_v<T>) {
      if (v < 0) {
        type_ = Type::kInt;
        int_ = static_cast<std::int64_t>(v);
        return;
      }
    }
    type_ = Type::kUint;
    uint_ = static_cast<std::uint64_t>(v);
  }

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const {
    return type_ == Type::kUint || type_ == Type::kInt ||
           type_ == Type::kDouble;
  }

  bool as_bool() const { return bool_; }
  std::uint64_t as_uint() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const { return str_; }

  // ---- array ----
  std::size_t size() const {
    return type_ == Type::kArray ? arr_.size() : obj_.size();
  }
  Json& push_back(Json v) {
    arr_.push_back(std::move(v));
    return arr_.back();
  }
  const Json& at(std::size_t i) const { return arr_[i]; }
  const std::vector<Json>& items() const { return arr_; }

  // ---- object (insertion-ordered) ----
  /// Appends or replaces; returns the stored value.
  Json& set(std::string key, Json v);
  /// nullptr when absent.
  const Json* find(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  /// Serializes.  indent < 0: compact one-line; indent >= 0: pretty with
  /// `indent` spaces per level.  Key order is insertion order, doubles
  /// are "%.17g" — deterministic output for deterministic trees.
  void dump(std::ostream& os, int indent = -1, int depth = 0) const;
  std::string dump(int indent = -1) const;

  /// Parses `text`; returns a kNull Json and fills *error on failure.
  static Json parse(std::string_view text, std::string* error = nullptr);

  /// Writes a JSON string literal (quotes + escapes) for `s`.
  static void write_escaped(std::ostream& os, std::string_view s);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double dbl_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace hwatch::sim
