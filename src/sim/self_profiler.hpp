// SelfProfiler — wall-time attribution of the simulator's own event
// handlers, plus a sweep progress heartbeat.
//
// This measures the simulator (like bench harness timing), never the
// simulated system: wall-clock readings stay inside this component and
// are reported to stderr only — they never enter manifests, traces or
// any deterministic payload.  All clock access lives in
// self_profiler.cpp (hwlint-allowlisted); this header is clock-free so
// including it keeps the nondeterminism gate airtight.
//
// Overhead discipline: disabled, a ProfScope costs one predictable
// branch in its constructor and one in its destructor — no clock read,
// no out-of-line call, no allocation.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace hwatch::sim {

/// Handler categories the scopes attribute to.
enum class ProfComponent : std::uint8_t {
  kLinkTx = 0,   // Link::on_transmission_complete (dequeue + next tx)
  kTcpSender,    // TcpSender::on_packet (ACK clock)
  kTcpSink,      // TcpSink::on_packet (reassembly + ACK generation)
  kShim,         // HypervisorShim inbound/outbound filters
};
inline constexpr std::size_t kProfComponents = 4;

const char* to_string(ProfComponent c);

/// Event-loop totals a scenario fills from Scheduler counters plus the
/// wall time of the run_until call, for the events/s line of the report.
struct EventLoopStats {
  std::uint64_t events_executed = 0;
  std::uint64_t events_scheduled = 0;
  std::uint64_t heap_peak = 0;
  std::uint64_t wall_ns = 0;
};

class SelfProfiler {
 public:
  static constexpr std::size_t kBuckets = 16;

  struct ComponentStats {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    /// Exponential handler-time histogram; bucket i counts handlers
    /// <= bucket_bounds_ns()[i], one overflow bucket.
    std::array<std::uint64_t, kBuckets + 1> hist{};
  };

  SelfProfiler() = default;
  SelfProfiler(const SelfProfiler&) = delete;
  SelfProfiler& operator=(const SelfProfiler&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Monotonic wall clock in nanoseconds (out of line: the clock lives
  /// in the profiler translation unit only).
  std::uint64_t now_ns() const;

  /// Attributes now_ns() - t0_ns to `c`.
  void record(ProfComponent c, std::uint64_t t0_ns);

  const ComponentStats& stats(ProfComponent c) const {
    return stats_[static_cast<std::size_t>(c)];
  }
  static const std::array<double, kBuckets>& bucket_bounds_ns();

  /// Folds another profiler's per-component stats into this one (calls
  /// and histograms summed, max of max) — how the sharded runner
  /// aggregates its per-shard profilers into one report.  Call after
  /// the run, never while `other` is still recording.
  void merge_from(const SelfProfiler& other);

  /// Human-readable report (per-component table + event-loop line when
  /// `loop` is non-null).  Wall times, so stderr-only by convention.
  void report(std::ostream& os, const EventLoopStats* loop) const;

 private:
  bool enabled_ = false;
  std::array<ComponentStats, kProfComponents> stats_{};
};

/// RAII wall-time scope.  One branch at each end when disabled.
class ProfScope {
 public:
  ProfScope(SelfProfiler& p, ProfComponent c)
      : p_(p), c_(c), active_(p.enabled()) {
    if (active_) t0_ = p.now_ns();
  }
  ~ProfScope() {
    if (active_) p_.record(c_, t0_);
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  SelfProfiler& p_;
  ProfComponent c_;
  bool active_;
  std::uint64_t t0_ = 0;
};

/// Sweep progress heartbeat (HWATCH_PROGRESS=1): one stderr line per
/// completed point with elapsed wall time and a linear ETA.  Thread-safe
/// (SweepRunner workers tick concurrently); wall-clock use confined to
/// self_profiler.cpp like the profiler's.
class ProgressMeter {
 public:
  /// True when the HWATCH_PROGRESS environment variable is set to
  /// anything but "" or "0".
  static bool env_enabled();

  ProgressMeter(std::size_t total, std::string label);

  /// Marks one unit done and prints the heartbeat line.
  void tick();

  std::size_t done() const {
    return done_.load(std::memory_order_relaxed);
  }

 private:
  std::string label_;
  std::size_t total_;
  std::atomic<std::size_t> done_{0};
  std::uint64_t t0_ns_;
};

}  // namespace hwatch::sim
