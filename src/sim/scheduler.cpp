#include "sim/scheduler.hpp"

#include <cassert>
#include <stdexcept>

namespace hwatch::sim {

EventId Scheduler::schedule_at(TimePs t, Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler: event scheduled in the past");
  }
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id, std::move(cb)});
  pending_ids_.insert(id);
  ++live_count_;
  return EventId{id};
}

bool Scheduler::cancel(EventId id) {
  // Only ids that are still pending may be cancelled; fired, cancelled or
  // invalid ids are rejected so live_count_ stays accurate.
  if (!id.valid() || pending_ids_.erase(id.value) == 0) return false;
  // The heap entry cannot be removed directly; remember the id and skip
  // the entry when it surfaces.
  cancelled_.insert(id.value);
  --live_count_;
  return true;
}

bool Scheduler::pop_next(Entry& out) {
  while (!queue_.empty()) {
    // priority_queue::top() is const; move via const_cast is the standard
    // idiom to avoid copying the std::function payload.
    Entry& top = const_cast<Entry&>(queue_.top());
    Entry e = std::move(top);
    queue_.pop();
    auto it = cancelled_.find(e.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    pending_ids_.erase(e.id);
    out = std::move(e);
    return true;
  }
  return false;
}

bool Scheduler::step() {
  Entry e;
  if (!pop_next(e)) return false;
  assert(e.time >= now_);
  now_ = e.time;
  --live_count_;
  ++executed_;
  e.cb();
  return true;
}

void Scheduler::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Scheduler::run_until(TimePs t) {
  stopped_ = false;
  while (!stopped_) {
    if (queue_.empty()) break;
    // Peek through cancelled entries to find the next live event time.
    Entry e;
    if (!pop_next(e)) break;
    if (e.time > t) {
      // Not due yet: push it back.  pop_next() removed the id from the
      // pending set but did not touch live_count_, so only the id is
      // restored (seq is preserved, keeping FIFO order stable).
      pending_ids_.insert(e.id);
      queue_.push(std::move(e));
      break;
    }
    now_ = e.time;
    --live_count_;
    ++executed_;
    e.cb();
  }
  if (now_ < t) now_ = t;
}

}  // namespace hwatch::sim
