#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hwatch::sim {

EventId Scheduler::push_entry(TimePs t, std::uint32_t slot,
                              std::uint32_t gen) {
  heap_.push_back(Entry{t, next_seq_++, slot, gen});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
  ++live_count_;
  return EventId{pack(slot, gen)};
}

EventId Scheduler::schedule_small(TimePs t, SmallCallback cb) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler: event scheduled in the past");
  }
  const std::uint32_t idx = small_.acquire(std::move(cb));
  const std::uint32_t slot = idx | kSmallSlotBit;
  return push_entry(t, slot, small_.gens[idx]);
}

EventId Scheduler::schedule_large(TimePs t, Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler: event scheduled in the past");
  }
  const std::uint32_t slot = large_.acquire(std::move(cb));
  return push_entry(t, slot, large_.gens[slot]);
}

void Scheduler::retire(const Entry& e) {
  const std::uint32_t idx = e.slot & ~kSmallSlotBit;
  if (e.slot & kSmallSlotBit) {
    ++small_.gens[idx];
    small_.free_slots.push_back(idx);
  } else {
    ++large_.gens[idx];
    large_.free_slots.push_back(idx);
  }
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>((id.value >> 32) - 1);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value);
  const std::uint32_t idx = slot & ~kSmallSlotBit;
  const bool small = (slot & kSmallSlotBit) != 0;
  // Only ids whose generation is still current may be cancelled; fired,
  // cancelled or invalid ids are rejected so live_count_ stays accurate.
  if (small) {
    if (idx >= small_.gens.size() || small_.gens[idx] != gen) return false;
  } else {
    if (idx >= large_.gens.size() || large_.gens[idx] != gen) return false;
  }
  // The heap entry cannot be removed directly; bumping the generation
  // marks it stale, and it is skipped (or compacted) later.  The
  // callback is destroyed now so captured resources don't linger.
  if (small) {
    ++small_.gens[idx];
    small_.cbs[idx].reset();
    small_.free_slots.push_back(idx);
  } else {
    ++large_.gens[idx];
    large_.cbs[idx].reset();
    large_.free_slots.push_back(idx);
  }
  --live_count_;
  ++cancelled_;
  ++stale_;
  maybe_compact();
  return true;
}

void Scheduler::maybe_compact() {
  // Rebuild the heap once stale entries dominate; amortized O(1) and
  // keeps heap memory proportional to live events.
  if (stale_ < 64 || stale_ * 2 < heap_.size()) return;
  std::erase_if(heap_, [this](const Entry& e) { return !is_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  stale_ = 0;
}

void Scheduler::drop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
}

const Scheduler::Entry* Scheduler::peek_next() {
  while (!heap_.empty()) {
    if (is_live(heap_.front())) return &heap_.front();
    drop_top();
    --stale_;
  }
  return nullptr;
}

bool Scheduler::step() {
  if (peek_next() == nullptr) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry e = heap_.back();
  heap_.pop_back();
  assert(e.time >= now_);
  now_ = e.time;
  --live_count_;
  ++executed_;
  const std::uint32_t idx = e.slot & ~kSmallSlotBit;
  // Move the callback out before recycling the slot: a callback
  // scheduled from inside cb() may reuse the slot immediately.
  if (e.slot & kSmallSlotBit) {
    SmallCallback cb = std::move(small_.cbs[idx]);
    retire(e);
    cb();
  } else {
    Callback cb = std::move(large_.cbs[idx]);
    retire(e);
    cb();
  }
  return true;
}

void Scheduler::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Scheduler::run_until(TimePs t) {
  stopped_ = false;
  while (!stopped_) {
    // Peek through cancelled entries to find the next live event; leave
    // it in place when not yet due so its EventId stays valid.
    const Entry* next = peek_next();
    if (next == nullptr || next->time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace hwatch::sim
