#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hwatch::sim {

EventId Scheduler::schedule_at(TimePs t, Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler: event scheduled in the past");
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    cbs_[slot] = std::move(cb);
  } else {
    slot = static_cast<std::uint32_t>(gens_.size());
    gens_.push_back(0);
    cbs_.push_back(std::move(cb));
  }
  const std::uint32_t gen = gens_[slot];
  heap_.push_back(Entry{t, next_seq_++, slot, gen});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
  ++live_count_;
  return EventId{pack(slot, gen)};
}

void Scheduler::retire(const Entry& e) {
  ++gens_[e.slot];
  free_slots_.push_back(e.slot);
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>((id.value >> 32) - 1);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value);
  // Only ids whose generation is still current may be cancelled; fired,
  // cancelled or invalid ids are rejected so live_count_ stays accurate.
  if (slot >= gens_.size() || gens_[slot] != gen) return false;
  // The heap entry cannot be removed directly; bumping the generation
  // marks it stale, and it is skipped (or compacted) later.  The
  // callback is destroyed now so captured resources don't linger.
  ++gens_[slot];
  cbs_[slot].reset();
  free_slots_.push_back(slot);
  --live_count_;
  ++cancelled_;
  ++stale_;
  maybe_compact();
  return true;
}

void Scheduler::maybe_compact() {
  // Rebuild the heap once stale entries dominate; amortized O(1) and
  // keeps heap memory proportional to live events.
  if (stale_ < 64 || stale_ * 2 < heap_.size()) return;
  std::erase_if(heap_, [this](const Entry& e) { return !is_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  stale_ = 0;
}

void Scheduler::drop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
}

const Scheduler::Entry* Scheduler::peek_next() {
  while (!heap_.empty()) {
    if (is_live(heap_.front())) return &heap_.front();
    drop_top();
    --stale_;
  }
  return nullptr;
}

bool Scheduler::step() {
  if (peek_next() == nullptr) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry e = heap_.back();
  heap_.pop_back();
  // Move the callback out before recycling the slot: a callback
  // scheduled from inside cb() may reuse the slot immediately.
  Callback cb = std::move(cbs_[e.slot]);
  retire(e);
  assert(e.time >= now_);
  now_ = e.time;
  --live_count_;
  ++executed_;
  cb();
  return true;
}

void Scheduler::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Scheduler::run_until(TimePs t) {
  stopped_ = false;
  while (!stopped_) {
    // Peek through cancelled entries to find the next live event; leave
    // it in place when not yet due so its EventId stays valid.
    const Entry* next = peek_next();
    if (next == nullptr || next->time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace hwatch::sim
