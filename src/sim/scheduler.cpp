#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hwatch::sim {

EventId Scheduler::schedule_at(TimePs t, Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler: event scheduled in the past");
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(gens_.size());
    gens_.push_back(0);
  }
  const std::uint32_t gen = gens_[slot];
  heap_.push_back(Entry{t, next_seq_++, slot, gen, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
  ++live_count_;
  return EventId{pack(slot, gen)};
}

void Scheduler::retire(const Entry& e) {
  ++gens_[e.slot];
  free_slots_.push_back(e.slot);
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>((id.value >> 32) - 1);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value);
  // Only ids whose generation is still current may be cancelled; fired,
  // cancelled or invalid ids are rejected so live_count_ stays accurate.
  if (slot >= gens_.size() || gens_[slot] != gen) return false;
  // The heap entry cannot be removed directly; bumping the generation
  // marks it stale, and it is skipped (or compacted) later.
  ++gens_[slot];
  free_slots_.push_back(slot);
  --live_count_;
  ++cancelled_;
  ++stale_;
  maybe_compact();
  return true;
}

void Scheduler::maybe_compact() {
  // Rebuild the heap once stale entries dominate; amortized O(1) and
  // keeps heap memory proportional to live events.
  if (stale_ < 64 || stale_ * 2 < heap_.size()) return;
  std::erase_if(heap_, [this](const Entry& e) { return !is_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  stale_ = 0;
}

void Scheduler::drop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
}

const Scheduler::Entry* Scheduler::peek_next() {
  while (!heap_.empty()) {
    if (is_live(heap_.front())) return &heap_.front();
    drop_top();
    --stale_;
  }
  return nullptr;
}

bool Scheduler::pop_next(Entry& out) {
  if (peek_next() == nullptr) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  out = std::move(heap_.back());
  heap_.pop_back();
  retire(out);
  return true;
}

bool Scheduler::step() {
  Entry e;
  if (!pop_next(e)) return false;
  assert(e.time >= now_);
  now_ = e.time;
  --live_count_;
  ++executed_;
  e.cb();
  return true;
}

void Scheduler::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Scheduler::run_until(TimePs t) {
  stopped_ = false;
  while (!stopped_) {
    // Peek through cancelled entries to find the next live event; leave
    // it in place when not yet due so its EventId stays valid.
    const Entry* next = peek_next();
    if (next == nullptr || next->time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace hwatch::sim
