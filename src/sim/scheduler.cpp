#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace hwatch::sim {

// Ordering invariant the wheel relies on (and the reason it needs no
// "catch-up" sweep): stale entries are dropped the moment they surface
// as the global minimum (peek_next) or at compaction — exactly as the
// single-heap implementation did — so no parked entry, live or stale,
// ever has a time below now_.  Every parked entry therefore lives in
// bucket range [bucket_of(now_), bucket_of(now_) + kWheelBuckets), the
// bucket->slot map is injective over that window, and ring order from
// wheel_front_ equals absolute bucket order.

EventId Scheduler::push_entry(TimePs t, std::uint32_t slot,
                              std::uint32_t gen) {
  const Entry e{t, next_seq_++, slot, gen};
  const std::uint64_t bucket = bucket_of(t);
  const bool in_wheel =
      bucket < bucket_of(now_) + kWheelBuckets && wheel_insert(e, bucket);
  if (!in_wheel) {
    // Past the horizon, or the target bucket is at capacity: the heap
    // takes it.  peek_next() handles near-time heap entries naturally.
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  const std::size_t parked = wheel_count_ + heap_.size();
  if (parked > entries_peak_) entries_peak_ = parked;
  ++live_count_;
  return EventId{pack(slot, gen)};
}

EventId Scheduler::schedule_small(TimePs t, SmallCallback cb) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler: event scheduled in the past");
  }
  const std::uint32_t idx = small_.acquire(std::move(cb));
  const std::uint32_t slot = idx | kSmallSlotBit;
  return push_entry(t, slot, small_.gens[idx]);
}

EventId Scheduler::schedule_large(TimePs t, Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler: event scheduled in the past");
  }
  const std::uint32_t slot = large_.acquire(std::move(cb));
  return push_entry(t, slot, large_.gens[slot]);
}

void Scheduler::retire(const Entry& e) {
  const std::uint32_t idx = e.slot & ~kSmallSlotBit;
  if (e.slot & kSmallSlotBit) {
    ++small_.gens[idx];
    small_.free_slots.push_back(idx);
  } else {
    ++large_.gens[idx];
    large_.free_slots.push_back(idx);
  }
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>((id.value >> 32) - 1);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value);
  const std::uint32_t idx = slot & ~kSmallSlotBit;
  const bool small = (slot & kSmallSlotBit) != 0;
  // Only ids whose generation is still current may be cancelled; fired,
  // cancelled or invalid ids are rejected so live_count_ stays accurate.
  if (small) {
    if (idx >= small_.gens.size() || small_.gens[idx] != gen) return false;
  } else {
    if (idx >= large_.gens.size() || large_.gens[idx] != gen) return false;
  }
  // The parked entry (wheel bucket or heap) cannot be removed directly;
  // bumping the generation marks it stale, and it is skipped (or
  // compacted) later.  The callback is destroyed now so captured
  // resources don't linger.
  if (small) {
    ++small_.gens[idx];
    small_.cbs[idx].reset();
    small_.free_slots.push_back(idx);
  } else {
    ++large_.gens[idx];
    large_.cbs[idx].reset();
    large_.free_slots.push_back(idx);
  }
  --live_count_;
  ++cancelled_;
  ++stale_;
  maybe_compact();
  return true;
}

void Scheduler::maybe_compact() {
  // Sweep stale entries out of both structures once they dominate;
  // amortized O(1) and keeps parked memory proportional to live events.
  // The trigger compares against the COMBINED parked count so it fires
  // at the same instants as the single-heap implementation did.
  if (stale_ < 64 || stale_ * 2 < heap_.size() + wheel_count_) return;
  std::erase_if(heap_, [this](const Entry& e) { return !is_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  for (std::size_t w = 0; w < occupied_.size(); ++w) {
    std::uint64_t bits = occupied_[w];
    while (bits != 0) {
      const std::size_t idx =
          (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      Entry* b = bucket_data(idx);
      const std::size_t before = bucket_sizes_[idx];
      // remove_if is stable, so a sorted (active) bucket stays sorted.
      Entry* kept = std::remove_if(
          b, b + before, [this](const Entry& e) { return !is_live(e); });
      const auto after = static_cast<std::size_t>(kept - b);
      bucket_sizes_[idx] = static_cast<std::uint8_t>(after);
      std::size_t removed = before - after;
      if (active_bucket_ != kNoBucket && idx == slot_index(active_bucket_)) {
        // The consumed prefix (already-fired entries, generations long
        // bumped) was swept too, but it was not parked: it left
        // wheel_count_ when it fired.
        removed -= active_pos_;
        active_pos_ = 0;
        if (after == 0) active_bucket_ = kNoBucket;
      }
      wheel_count_ -= removed;
      if (after == 0) clear_occupied(idx);
    }
  }
  stale_ = 0;
}

bool Scheduler::wheel_insert(const Entry& e, std::uint64_t bucket) {
  if (slab_ == nullptr) {
    slab_ = std::make_unique_for_overwrite<Entry[]>(kWheelBuckets *
                                                    kWheelBucketCapacity);
  }
  const std::size_t idx = slot_index(bucket);
  std::uint8_t& n = bucket_sizes_[idx];
  if (n == kWheelBucketCapacity) return false;  // full: overflow to heap
  Entry* b = bucket_data(idx);
  assert(n == 0 || bucket_of(b[0].time) == bucket);
  if (n == 0) {
    set_occupied(idx);
    b[0] = e;
  } else if (bucket == active_bucket_) {
    // Keep the active bucket's sorted invariant.  The new entry can
    // never land in the consumed prefix: its time is >= now_ and its
    // seq is the largest ever issued.
    std::size_t pos = active_pos_;
    while (pos < n && earlier(b[pos], e)) ++pos;
    for (std::size_t j = n; j > pos; --j) b[j] = b[j - 1];
    b[pos] = e;
  } else {
    b[n] = e;
  }
  ++n;
  if (active_bucket_ != kNoBucket && bucket < active_bucket_) {
    // The wheel minimum moved to an earlier bucket (possible only while
    // now_ is still below the active bucket's span).  Flush the active
    // bucket's dead prefix — those entries already fired or were
    // dropped and are not counted anywhere — and let the next peek
    // re-activate whichever bucket is earliest.
    const std::size_t aidx = slot_index(active_bucket_);
    Entry* ab = bucket_data(aidx);
    std::uint8_t& an = bucket_sizes_[aidx];
    std::copy(ab + active_pos_, ab + an, ab);
    an = static_cast<std::uint8_t>(an - active_pos_);
    active_bucket_ = kNoBucket;
    active_pos_ = 0;
  }
  if (bucket < wheel_front_) wheel_front_ = bucket;
  ++wheel_count_;
  return true;
}

std::size_t Scheduler::occupied_distance(std::size_t start) const {
  constexpr std::size_t kWords = kWheelBuckets / 64;
  std::size_t word = start >> 6;
  std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (start & 63));
  // kWords + 1 iterations: the start word is visited twice — masked to
  // bits >= start on entry, unmasked for the sub-start wrap-around.
  for (std::size_t i = 0; i <= kWords; ++i) {
    if (bits != 0) {
      const std::size_t slot =
          (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      return (slot + kWheelBuckets - start) & (kWheelBuckets - 1);
    }
    word = (word + 1) & (kWords - 1);
    bits = occupied_[word];
  }
  return kWheelBuckets;
}

const Scheduler::Entry* Scheduler::wheel_front_entry() {
  if (wheel_count_ == 0) return nullptr;
  if (active_bucket_ != kNoBucket) {
    return bucket_data(slot_index(active_bucket_)) + active_pos_;
  }
  const std::uint64_t cur = bucket_of(now_);
  // Buckets below now_ are provably empty (see the invariant at the top
  // of this file); snapping the scan start to now_ keeps ring order ==
  // absolute order even across large run_until() jumps.
  if (wheel_front_ < cur) wheel_front_ = cur;
  const std::size_t dist = occupied_distance(slot_index(wheel_front_));
  assert(dist < kWheelBuckets);
  const std::uint64_t bucket = wheel_front_ + dist;
  const std::size_t idx = slot_index(bucket);
  Entry* b = bucket_data(idx);
  assert(bucket_sizes_[idx] > 0 && bucket_of(b[0].time) == bucket);
  if (bucket_sizes_[idx] > 1) {
    std::sort(b, b + bucket_sizes_[idx],
              [](const Entry& a, const Entry& c) { return earlier(a, c); });
  }
  wheel_front_ = bucket;
  active_bucket_ = bucket;
  active_pos_ = 0;
  return b;
}

void Scheduler::wheel_drop_front() {
  const std::size_t idx = slot_index(active_bucket_);
  ++active_pos_;
  --wheel_count_;
  if (active_pos_ == bucket_sizes_[idx]) {
    bucket_sizes_[idx] = 0;
    clear_occupied(idx);
    wheel_front_ = active_bucket_ + 1;
    active_bucket_ = kNoBucket;
    active_pos_ = 0;
  }
}

void Scheduler::heap_drop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
}

const Scheduler::Entry* Scheduler::peek_next() {
  for (;;) {
    const Entry* w = wheel_front_entry();
    const Entry* h = heap_.empty() ? nullptr : &heap_.front();
    bool from_wheel;
    if (w != nullptr && h != nullptr) {
      // Same (time, seq) key the heap comparator uses; seqs are unique,
      // so the order is total and FIFO at equal timestamps.
      from_wheel =
          w->time < h->time || (w->time == h->time && w->seq < h->seq);
    } else if (w != nullptr) {
      from_wheel = true;
    } else if (h != nullptr) {
      from_wheel = false;
    } else {
      return nullptr;
    }
    const Entry* best = from_wheel ? w : h;
    if (is_live(*best)) {
      next_from_wheel_ = from_wheel;
      return best;
    }
    // A stale entry surfacing as the global minimum: drop it now,
    // exactly when the single-heap implementation would have popped it.
    --stale_;
    if (from_wheel) {
      wheel_drop_front();
    } else {
      heap_drop_top();
    }
  }
}

void Scheduler::execute_next() {
  Entry e;
  if (next_from_wheel_) {
    e = bucket_data(slot_index(active_bucket_))[active_pos_];
    wheel_drop_front();
  } else {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    e = heap_.back();
    heap_.pop_back();
  }
  assert(e.time >= now_);
  now_ = e.time;
  --live_count_;
  ++executed_;
  const std::uint32_t idx = e.slot & ~kSmallSlotBit;
  // Move the callback out before recycling the slot: a callback
  // scheduled from inside cb() may reuse the slot immediately.
  if (e.slot & kSmallSlotBit) {
    SmallCallback cb = std::move(small_.cbs[idx]);
    retire(e);
    cb();
  } else {
    Callback cb = std::move(large_.cbs[idx]);
    retire(e);
    cb();
  }
}

bool Scheduler::step() {
  if (peek_next() == nullptr) return false;
  execute_next();
  return true;
}

void Scheduler::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Scheduler::run_until(TimePs t) {
  stopped_ = false;
  while (!stopped_) {
    // Peek through cancelled entries to find the next live event; leave
    // it in place when not yet due so its EventId stays valid.
    const Entry* next = peek_next();
    if (next == nullptr || next->time > t) break;
    execute_next();
  }
  if (now_ < t) now_ = t;
}

}  // namespace hwatch::sim
