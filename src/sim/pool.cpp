#include "sim/pool.hpp"

#include "sim/unique_function.hpp"

namespace hwatch::sim {

SpillArena::~SpillArena() {
  for (FreeNode*& head : free_) {
    while (head != nullptr) {
      FreeNode* next = head->next;
      ::operator delete(head);
      head = next;
    }
  }
}

SpillArena& SpillArena::local() {
  thread_local SpillArena arena;
  return arena;
}

std::size_t SpillArena::class_index(std::size_t bytes) {
  std::size_t index = 0;
  std::size_t size = kMinClassBytes;
  while (size < bytes && index < kClassCount) {
    size <<= 1;
    ++index;
  }
  return index;
}

void* SpillArena::allocate(std::size_t bytes) {
  const std::size_t index = class_index(bytes);
  if (index >= kClassCount) {
    ++stats_.bypass;
    return ::operator new(bytes);
  }
  if (free_[index] != nullptr) {
    FreeNode* node = free_[index];
    free_[index] = node->next;
    ++stats_.hits;
    return node;
  }
  ++stats_.misses;
  return ::operator new(class_bytes(index));
}

void SpillArena::deallocate(void* p, std::size_t bytes) noexcept {
  const std::size_t index = class_index(bytes);
  if (index >= kClassCount) {
    ::operator delete(p);
    return;
  }
  FreeNode* node = static_cast<FreeNode*>(p);
  node->next = free_[index];
  free_[index] = node;
}

namespace uf_detail {

void* spill_alloc(std::size_t bytes, std::size_t align) {
  if (align > alignof(std::max_align_t)) {
    return ::operator new(bytes, std::align_val_t{align});
  }
  return SpillArena::local().allocate(bytes);
}

void spill_free(void* p, std::size_t bytes, std::size_t align) {
  if (align > alignof(std::max_align_t)) {
    ::operator delete(p, std::align_val_t{align});
    return;
  }
  SpillArena::local().deallocate(p, bytes);
}

}  // namespace uf_detail

}  // namespace hwatch::sim
