// SimContext — everything one simulation instance owns.
//
// A SimContext bundles the mutable engine state that used to be plumbed
// ad hoc through the layers: the event scheduler, the root RNG, the
// packet-UID counter (trace identity), and the log sink.  Every object
// of a scenario (Network, links, hosts, transports, the HWatch shim,
// samplers) hangs off exactly one context, so two contexts share zero
// mutable state and whole simulations can run concurrently on different
// threads — the property SweepRunner builds on.
//
// Determinism contract: a (scenario config, seed) pair fully determines
// the event trace.  All randomness flows from rng() / fork_rng(), event
// ordering is FIFO at equal timestamps, and packet UIDs are allocated
// from the per-context counter — nothing reads global mutable state.
#pragma once

#include <cstdint>

#include "sim/annotations.hpp"
#include "sim/log.hpp"
#include "sim/metrics.hpp"
#include "sim/pool.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/self_profiler.hpp"
#include "sim/trace_span.hpp"

namespace hwatch::sim {

class IncidentSink;

class HWATCH_SHARD_CONFINED SimContext {
 public:
  explicit SimContext(std::uint64_t seed = 1) : rng_(seed), seed_(seed) {}

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  Scheduler& scheduler() { return sched_; }
  const Scheduler& scheduler() const { return sched_; }

  /// Current simulated time (convenience for sched().now()).
  TimePs now() const { return sched_.now(); }

  /// Root random stream; components fork independent children from it
  /// in a deterministic order.
  Rng& rng() { return rng_; }
  Rng fork_rng() { return rng_.fork(); }

  /// The seed this context was created with.
  std::uint64_t seed() const { return seed_; }

  /// Fresh unique packet uid (trace identity), scoped to this context.
  std::uint64_t next_packet_uid() { return ++packet_uid_; }
  std::uint64_t packet_uids_issued() const { return packet_uid_; }

  /// Stripes the uid space for sharded runs: shard s sets base s<<48, so
  /// uids stay unique across every shard of one scenario — which is what
  /// makes the cross-shard inbox drain order (deliver_time, uid) total
  /// and the merged run deterministic.  Call before any packet exists.
  void set_packet_uid_base(std::uint64_t base) { packet_uid_ = base; }

  /// Per-context log configuration (level + sink).
  SimLog& log() { return log_; }
  const SimLog& log() const { return log_; }

  /// Per-context metrics (counters, gauges, histograms).  Disabled by
  /// default; instruments cost one branch per hit until enabled.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Per-context span/event tracer (flow lifecycle, HWatch decision
  /// provenance, latency decomposition).  Disabled by default; every
  /// hook costs one predictable branch until enabled.
  SpanTracer& tracer() { return tracer_; }
  const SpanTracer& tracer() const { return tracer_; }

  /// Per-context self-profiler (handler wall-time attribution).  Off by
  /// default; ProfScopes cost one branch each way until enabled.
  SelfProfiler& profiler() { return profiler_; }
  const SelfProfiler& profiler() const { return profiler_; }

  /// Per-context congestion-incident sink (sim/incident_hooks.hpp).
  /// Null by default: every hook site checks the pointer — one
  /// predictable branch, no call, no allocation — until the api layer
  /// attaches a detector.  The sink must outlive the simulation run.
  IncidentSink* incidents() const { return incidents_; }
  void set_incident_sink(IncidentSink* sink) { incidents_ = sink; }

  /// Block size of packet_pool(): fits a net::Packet (the net layer
  /// static_asserts this) with headroom so header growth doesn't break
  /// the pool.
  static constexpr std::size_t kPacketBlockBytes = 192;

  /// Free-list pool for packet-sized blocks.  Rare paths that must park
  /// a packet behind a pointer (e.g. the shim holding a SYN) allocate
  /// here and recycle the block instead of hitting the global allocator.
  BlockPool& packet_pool() { return packet_pool_; }
  const BlockPool& packet_pool() const { return packet_pool_; }

  /// Opt-in pool observability: binds the packet pool's hit/miss to
  /// MetricsRegistry counters ("pool.packet.hit"/"pool.packet.miss"),
  /// seeded with the totals so far.  Off by default so the manifest
  /// counter set (and its byte-exact deterministic dump) is unchanged.
  void publish_pool_metrics() {
    Counter& hit = metrics_.counter("pool.packet.hit");
    Counter& miss = metrics_.counter("pool.packet.miss");
    hit.inc(packet_pool_.stats().hits);
    miss.inc(packet_pool_.stats().misses);
    packet_pool_.attach_counters(&hit, &miss);
  }

 private:
  // Declared before the scheduler: pending callbacks holding PoolPtrs
  // must be destroyed (returning their blocks) before the pool dies.
  BlockPool packet_pool_{kPacketBlockBytes};
  Scheduler sched_;
  Rng rng_;
  std::uint64_t seed_;
  std::uint64_t packet_uid_ = 0;
  SimLog log_;
  MetricsRegistry metrics_;
  SpanTracer tracer_;
  SelfProfiler profiler_;
  IncidentSink* incidents_ = nullptr;
};

}  // namespace hwatch::sim
