// Shard-confinement and determinism-plane annotations.
//
// These macros expand to nothing — they exist for hwlint's
// shard-confinement pass (tools/hwlint), which collects them tree-wide
// and then proves three architectural invariants the compiler cannot:
//
//   HWATCH_SHARD_CONFINED
//     Placed between the class-key and the class name
//     (`class HWATCH_SHARD_CONFINED SimContext { ... };`).  Instances
//     belong to exactly one shard's SimContext and must never be
//     touched from another thread.  hwlint flags any reference to a
//     confined type from a translation unit that uses std:: threading
//     primitives, except the sanctioned cross-shard machinery
//     (shard_group / shard_channel / sweep — see
//     tools/hwlint/allowlist.txt).
//
//   HWATCH_SHARD_SHARED
//     The explicit opposite: a type (same position as above) or a
//     namespace-scope variable (first token of the declaration) that is
//     deliberately shared across threads, with its synchronization
//     story documented at the declaration.  Mutable namespace-scope
//     state in src/sim *must* carry this marker — an unannotated
//     mutable static there is a shard-confinement violation (outside
//     src/sim the stricter mutable-global rule applies and the marker
//     grants nothing).
//
//   HWATCH_DETERMINISTIC_PLANE
//     Placed before a function declaration.  The function is part of
//     the deterministic plane: its behaviour must be a pure function of
//     simulation state, so its definition may not read wall clocks,
//     construct entropy sources or reseed RNG engines — even inside
//     translation units that hold a nondeterminism allowlist entry
//     (self_profiler.cpp, shard_telemetry.cpp).  hwlint matches
//     definitions by function name tree-wide, so keep annotated names
//     distinctive.
//
// The markers are deliberately not attributes: they must survive every
// compiler and cost nothing.  hwlint reads them from the token stream;
// renaming one here without updating tools/hwlint/rules.cpp silently
// disables the pass, so don't.
#pragma once

#define HWATCH_SHARD_CONFINED
#define HWATCH_SHARD_SHARED
#define HWATCH_DETERMINISTIC_PLANE
