// Periodic samplers: queue occupancy over time and link utilization over
// time — the data behind the paper's "persistent queue" and "bottleneck
// utilization" panels.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include <string>

#include "net/link.hpp"
#include "sim/context.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace hwatch::stats {

struct TimePoint {
  sim::TimePs time;
  double value;
};

using TimeSeries = std::vector<TimePoint>;

/// Calls `sample(now)` every `interval` until `until` and records the
/// returned value.
class PeriodicSampler {
 public:
  using SampleFn = std::function<double(sim::TimePs)>;

  PeriodicSampler(sim::Scheduler& sched, sim::TimePs interval,
                  sim::TimePs until, SampleFn sample);

  const TimeSeries& series() const { return series_; }

  /// Mean of the recorded values (0 when empty).
  double mean() const;

  /// Maximum recorded value (0 when empty).
  double max() const;

 private:
  void tick();

  sim::Scheduler& sched_;
  sim::TimePs interval_;
  sim::TimePs until_;
  SampleFn sample_;
  TimeSeries series_;
};

/// Samples a link's queue length in packets.
PeriodicSampler make_queue_sampler(sim::Scheduler& sched, net::Link& link,
                                   sim::TimePs interval, sim::TimePs until);

/// Samples a link's utilization over each interval (busy-time delta /
/// interval, in [0, 1]).
class UtilizationSampler {
 public:
  UtilizationSampler(sim::Scheduler& sched, net::Link& link,
                     sim::TimePs interval, sim::TimePs until);
  const TimeSeries& series() const { return series_; }
  double mean() const;

 private:
  void tick();

  sim::Scheduler& sched_;
  net::Link& link_;
  sim::TimePs interval_;
  sim::TimePs until_;
  sim::TimePs last_busy_ = 0;
  std::uint64_t last_bytes_ = 0;
  TimeSeries series_;
};

/// Samples every gauge registered with the context's MetricsRegistry on
/// one shared tick, producing one named TimeSeries per gauge.  Register
/// gauges *before* constructing the sampler; gauges added later are not
/// picked up.  Sampling order (and thus the series vector) follows
/// registration order; manifest emission sorts by name.
class MetricsSampler {
 public:
  struct GaugeSeries {
    std::string name;
    TimeSeries series;
  };

  MetricsSampler(sim::SimContext& ctx, sim::TimePs interval,
                 sim::TimePs until);

  const std::vector<GaugeSeries>& series() const { return series_; }

 private:
  void tick();

  sim::SimContext& ctx_;
  sim::TimePs interval_;
  sim::TimePs until_;
  std::vector<GaugeSeries> series_;
};

/// Goodput-over-time: bytes delivered by a link per interval, as Gb/s.
class ThroughputSampler {
 public:
  ThroughputSampler(sim::Scheduler& sched, net::Link& link,
                    sim::TimePs interval, sim::TimePs until);
  const TimeSeries& series() const { return series_; }

 private:
  void tick();

  sim::Scheduler& sched_;
  net::Link& link_;
  sim::TimePs interval_;
  sim::TimePs until_;
  std::uint64_t last_bytes_ = 0;
  TimeSeries series_;
};

}  // namespace hwatch::stats
