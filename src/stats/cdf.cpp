#include "stats/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/json.hpp"
#include "sim/metrics.hpp"

namespace hwatch::stats {

Cdf::Cdf(std::vector<double> samples) : data_(std::move(samples)) {
  sorted_ = false;
  ensure_sorted();
}

void Cdf::add(double sample) {
  data_.push_back(sample);
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
}

double Cdf::quantile(double q) const {
  ensure_sorted();
  if (data_.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(data_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, data_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return data_[lo] * (1.0 - frac) + data_[hi] * frac;
}

double Cdf::fraction_below(double x) const {
  ensure_sorted();
  if (data_.empty()) return 0;
  const auto it = std::upper_bound(data_.begin(), data_.end(), x);
  return static_cast<double>(it - data_.begin()) /
         static_cast<double>(data_.size());
}

Summary Cdf::summarize() const {
  ensure_sorted();
  Summary s;
  s.count = data_.size();
  if (data_.empty()) return s;
  s.mean = std::accumulate(data_.begin(), data_.end(), 0.0) /
           static_cast<double>(data_.size());
  double sq = 0;
  for (double v : data_) sq += (v - s.mean) * (v - s.mean);
  s.variance = data_.size() > 1
                   ? sq / static_cast<double>(data_.size() - 1)
                   : 0.0;
  s.min = data_.front();
  s.max = data_.back();
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  return s;
}

std::vector<std::pair<double, double>> Cdf::series(std::size_t points) const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  if (data_.empty() || points == 0) return out;
  out.reserve(points + 1);
  for (std::size_t i = 0; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

const std::vector<double>& Cdf::sorted_samples() const {
  ensure_sorted();
  return data_;
}

Percentiles percentiles(const std::vector<double>& bounds,
                        const std::vector<std::uint64_t>& counts,
                        double overflow_hint) {
  Percentiles out;
  for (std::uint64_t c : counts) out.count += c;
  if (out.count == 0 || bounds.empty()) return out;

  // Same model as Cdf::quantile, lifted to bucketed data: find the
  // bucket containing rank q*N and interpolate linearly inside it.
  const auto at = [&](double q) {
    const double target = q * static_cast<double>(out.count);
    double cum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const double c = static_cast<double>(counts[i]);
      if (cum + c < target || counts[i] == 0) {
        cum += c;
        continue;
      }
      // Bucket i spans (lo, hi]; bucket 0's lower edge is 0 unless the
      // first bound is itself negative.
      const double hi_edge =
          i < bounds.size()
              ? bounds[i]
              : std::max(overflow_hint, bounds.back());  // overflow
      const double lo_edge =
          i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
      const double frac = (target - cum) / c;
      return lo_edge + (hi_edge - lo_edge) * frac;
    }
    return counts.size() > bounds.size()
               ? std::max(overflow_hint, bounds.back())
               : bounds.back();
  };
  out.p50 = at(0.50);
  out.p95 = at(0.95);
  out.p99 = at(0.99);
  out.p999 = at(0.999);
  return out;
}

Percentiles percentiles(const sim::Histogram& h) {
  return percentiles(h.bounds(), h.bucket_counts(), h.max());
}

sim::Json percentiles_json(const Percentiles& p) {
  sim::Json j = sim::Json::object();
  j.set("count", p.count);
  j.set("p50", p.p50);
  j.set("p95", p.p95);
  j.set("p99", p.p99);
  j.set("p999", p.p999);
  return j;
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

double jain_fairness(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double sum = 0;
  double sq = 0;
  for (double x : v) {
    sum += x;
    sq += x * x;
  }
  if (sq <= 0) return 0;
  return sum * sum / (static_cast<double>(v.size()) * sq);
}

}  // namespace hwatch::stats
