// Per-flow result records collected by scenarios.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace hwatch::stats {

enum class FlowClass : std::uint8_t {
  kShort = 0,  // delay-sensitive, finite size
  kLong,       // bulk / long-lived
};

struct FlowRecord {
  net::FlowKey key;
  FlowClass klass = FlowClass::kShort;
  std::string transport;  // "newreno", "dctcp", ...
  std::uint32_t epoch = 0;  // incast wave index for short flows
  std::uint64_t bytes = 0;

  bool completed = false;
  sim::TimePs start_time = 0;
  sim::TimePs fct = sim::kTimeNever;  // valid when completed

  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  double goodput_bps = 0;  // long flows: receiver-measured

  double fct_ms() const { return sim::to_millis(fct); }
};

/// FCT samples (ms) of the completed flows in `records`.
std::vector<double> fct_ms_samples(const std::vector<FlowRecord>& records);

/// Goodput samples (Gb/s) of the flows in `records`.
std::vector<double> goodput_gbps_samples(
    const std::vector<FlowRecord>& records);

}  // namespace hwatch::stats
