#include "stats/flow_record.hpp"

namespace hwatch::stats {

std::vector<double> fct_ms_samples(const std::vector<FlowRecord>& records) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    if (r.completed) out.push_back(r.fct_ms());
  }
  return out;
}

std::vector<double> goodput_gbps_samples(
    const std::vector<FlowRecord>& records) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(r.goodput_bps / 1e9);
  return out;
}

}  // namespace hwatch::stats
