// IncidentDetector — deterministic in-run congestion-incident
// detection ("the doctor's front end").
//
// A set of event-driven detectors watches the same signals the paper's
// hypervisor watches — queue occupancy, loss, timeouts, fan-in, shim
// interventions — and turns them into structured *episodes*:
//
//   queue-buildup       sustained occupancy above a high watermark at
//                       one switch queue, closed when it drains below
//                       the low watermark (drops escalate severity)
//   incast              >= N connection SYNs converging on one sink
//                       host inside a short window
//   rto-storm           >= N retransmission timeouts on one flow with
//                       small inter-timeout gaps
//   retx-burst          >= N data retransmissions on one flow inside a
//                       short window
//   flow-stall          an established flow making no cumulative-ACK
//                       progress for max(min_gap, stall_rtts * srtt)
//   rwnd-rewrite-burst  >= N shim receive-window rewrites on one host
//                       inside a short window
//
// Determinism contract: hooks arrive in each SimContext's event order
// and carry sim-time only, so the incident list is a pure function of
// (config, seed).  Sharded runs hold one detector per logical shard;
// the api layer folds them in shard order and incidents_json() imposes
// a deterministic global sort + id assignment, making the manifest
// section byte-identical across HWATCH_SHARDS / HWATCH_SWEEP_THREADS.
//
// Span back-references: flow-scoped incidents carry the SpanTracer
// flow-span id the hook site supplied (0 when tracing is off or the
// flow's sender is traced on another shard) so trace_inspect can join
// incidents against the span export.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/incident_hooks.hpp"
#include "sim/json.hpp"
#include "sim/time.hpp"

namespace hwatch::stats {

enum class IncidentKind : std::uint8_t {
  kQueueBuildup = 0,
  kIncast,
  kRtoStorm,
  kRetxBurst,
  kFlowStall,
  kRwndRewriteBurst,
};

/// Stable wire name ("queue-buildup", ... — the manifest vocabulary).
std::string_view to_string(IncidentKind k);

/// One affected flow, identified by the packed key words (see
/// net::flow_key_words) plus the tracer flow span (0 = untraced).
struct IncidentFlow {
  std::uint64_t key_hi = 0;
  std::uint64_t key_lo = 0;
  std::uint64_t span = 0;
};

struct Incident {
  IncidentKind kind = IncidentKind::kQueueBuildup;
  /// 1 = advisory, 2 = degraded, 3 = loss / outage-grade.
  std::uint32_t severity = 1;
  sim::TimePs start = 0;
  sim::TimePs end = 0;
  /// Link name for queue episodes, "host<N>" for host/flow-scoped ones.
  std::string location;
  /// Kind-specific size: peak depth (pkts), fan-in, timeout / retx /
  /// rewrite count, or stall gap (ps).
  std::uint64_t magnitude = 0;
  /// Packets dropped inside the episode (queue-buildup only).
  std::uint64_t drops = 0;
  /// Affected flows, capped at IncidentConfig::max_flows_per_incident
  /// (magnitude keeps the uncapped count).
  std::vector<IncidentFlow> flows;
};

struct IncidentConfig {
  // Queue buildup: open at >= high, close at <= low.  0 = derive from
  // the registered capacity (high = capacity/2, low = high/4; byte- or
  // un-bounded queues fall back to an absolute 64-packet watermark).
  std::uint64_t queue_high_pkts = 0;
  std::uint64_t queue_low_pkts = 0;
  /// Dropless episodes shorter than this are noise, not incidents.
  sim::TimePs queue_min_duration = sim::microseconds(50);

  std::uint32_t incast_fanin = 8;
  sim::TimePs incast_window = sim::milliseconds(1);

  std::uint32_t rto_storm_count = 2;
  sim::TimePs rto_storm_gap = sim::milliseconds(500);

  std::uint32_t retx_burst_count = 8;
  sim::TimePs retx_burst_gap = sim::milliseconds(1);

  double stall_rtts = 16.0;
  sim::TimePs stall_min_gap = sim::milliseconds(5);

  std::uint32_t rewrite_burst_count = 16;
  sim::TimePs rewrite_window = sim::milliseconds(1);

  std::size_t max_flows_per_incident = 16;
};

class IncidentDetector final : public sim::IncidentSink {
 public:
  explicit IncidentDetector(IncidentConfig cfg = {});

  /// Registers one switch queue under a globally stable `name` (the
  /// owning link's name) and returns the id the queue must pass back
  /// through the hooks (net::QueueDiscipline::attach_incident_sink).
  /// `capacity_pkts` derives the default watermarks; pass
  /// UINT64_MAX for byte-/un-bounded queues.
  std::uint32_t register_queue(std::string name, std::uint64_t capacity_pkts);

  // ---- sim::IncidentSink ---------------------------------------------
  void on_queue_depth(std::uint32_t queue, std::uint64_t depth_pkts,
                      sim::TimePs now) override;
  void on_queue_drop(std::uint32_t queue, sim::TimePs now) override;
  void on_flow_established(std::uint64_t key_hi, std::uint64_t key_lo,
                           std::uint64_t flow_span, sim::TimePs now) override;
  void on_flow_progress(std::uint64_t key_hi, std::uint64_t key_lo,
                        sim::TimePs now, sim::TimePs srtt) override;
  void on_flow_complete(std::uint64_t key_hi, std::uint64_t key_lo,
                        sim::TimePs now) override;
  void on_rto(std::uint64_t key_hi, std::uint64_t key_lo,
              sim::TimePs now) override;
  void on_retransmit(std::uint64_t key_hi, std::uint64_t key_lo,
                     sim::TimePs now) override;
  void on_sink_syn(std::uint32_t dst_node, std::uint64_t key_hi,
                   std::uint64_t key_lo, std::uint64_t flow_span,
                   sim::TimePs now) override;
  void on_rwnd_rewrite(std::uint32_t host_node, std::uint64_t key_hi,
                       std::uint64_t key_lo, sim::TimePs now) override;

  /// Closes every open episode at `now`.  Call once, after the run.
  void finalize(sim::TimePs now);

  /// Closed incidents, in close order (sort via incidents_json).
  const std::vector<Incident>& incidents() const { return incidents_; }

  /// Episodes open right now — the HWATCH_PROGRESS heartbeat column.
  std::uint32_t active_count() const { return open_episodes_; }

  const IncidentConfig& config() const { return cfg_; }

 private:
  struct QueueState {
    std::string name;
    std::uint64_t capacity = 0;
    std::uint64_t high = 0;
    std::uint64_t low = 0;
    bool open = false;
    sim::TimePs start = 0;
    std::uint64_t peak = 0;
    std::uint64_t drops = 0;
  };

  /// Shared shape of the three windowed burst detectors (incast per
  /// sink host, rwnd rewrites per shim host): events inside `window`
  /// of each other accumulate; a gap closes the episode.
  struct BurstState {
    std::uint32_t node = 0;
    std::vector<std::pair<sim::TimePs, IncidentFlow>> recent;
    std::size_t begin = 0;  // live window = recent[begin..]
    bool open = false;
    sim::TimePs start = 0;
    sim::TimePs last = 0;
    std::uint64_t total = 0;  // events in the open episode
    std::vector<IncidentFlow> flows;
  };

  struct FlowState {
    IncidentFlow id;
    bool active = false;
    sim::TimePs last_progress = 0;
    sim::TimePs srtt = 0;
    // RTO-storm run.
    std::uint32_t rto_run = 0;
    sim::TimePs rto_first = 0;
    sim::TimePs rto_last = 0;
    bool rto_open = false;
    // Retx-burst run.
    std::uint32_t retx_run = 0;
    sim::TimePs retx_first = 0;
    sim::TimePs retx_last = 0;
    bool retx_open = false;
  };

  FlowState& flow_at(std::uint64_t key_hi, std::uint64_t key_lo);
  BurstState& burst_at(std::vector<BurstState>& states,
                       std::map<std::uint32_t, std::uint32_t>& index,
                       std::uint32_t node);
  void close_queue(QueueState& q, sim::TimePs end);
  void burst_event(BurstState& b, const IncidentFlow& flow, sim::TimePs now,
                   std::uint32_t threshold, sim::TimePs window,
                   IncidentKind kind);
  void close_burst(BurstState& b, std::uint32_t threshold, IncidentKind kind);
  void close_rto_run(FlowState& f);
  void close_retx_run(FlowState& f);
  void check_stall(FlowState& f, sim::TimePs now);
  void record(Incident inc);

  IncidentConfig cfg_;
  std::vector<QueueState> queues_;
  std::vector<FlowState> flows_;  // first-touch order (deterministic)
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t>
      flow_index_;
  std::vector<BurstState> sinks_;
  std::map<std::uint32_t, std::uint32_t> sink_index_;
  std::vector<BurstState> shims_;
  std::map<std::uint32_t, std::uint32_t> shim_index_;
  std::vector<Incident> incidents_;
  std::uint32_t open_episodes_ = 0;
};

/// Folds incident lists (per-shard, concatenated in shard order) into
/// the manifest `incidents` section: deterministic global sort, ids
/// assigned 0..N-1 post-sort, schema hwatch.incidents/v1.  The section
/// is well-formed (schema + count + empty array) even with no
/// incidents, so detectors-on runs always carry it.
sim::Json incidents_json(std::vector<Incident> all);

}  // namespace hwatch::stats
