#include "stats/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hwatch::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(width[c])) << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += "  " + std::string(width[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) line(row);
}

void write_csv(const std::string& path, const std::string& header,
               const std::vector<std::pair<double, double>>& points) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << header << '\n';
  for (const auto& [x, y] : points) out << x << ',' << y << '\n';
}

void write_csv(const std::string& path, const std::string& header,
               const TimeSeries& series) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << header << '\n';
  for (const auto& p : series) {
    out << sim::to_seconds(p.time) << ',' << p.value << '\n';
  }
}

void print_cdf(std::ostream& os, const std::string& label, const Cdf& cdf,
               const std::string& unit) {
  os << label << " (" << cdf.sorted_samples().size() << " samples, "
     << unit << ")\n";
  Table t({"quantile", "value"});
  for (double q : {0.05, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}) {
    t.add_row({Table::num(q, 2), Table::num(cdf.quantile(q), 3)});
  }
  t.print(os);
}

void print_cdf_panel(std::ostream& os, const std::string& title,
                     const std::vector<std::pair<std::string, Cdf>>& curves,
                     const std::string& unit) {
  os << title << " [" << unit << "]\n";
  std::vector<std::string> headers{"quantile"};
  for (const auto& [name, cdf] : curves) {
    (void)cdf;
    headers.push_back(name);
  }
  Table t(headers);
  for (double q : {0.05, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}) {
    std::vector<std::string> row{Table::num(q, 2)};
    for (const auto& [name, cdf] : curves) {
      (void)name;
      row.push_back(cdf.empty() ? "-" : Table::num(cdf.quantile(q), 3));
    }
    t.add_row(std::move(row));
  }
  t.print(os);
}

}  // namespace hwatch::stats
