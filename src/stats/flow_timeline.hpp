// FlowTimeline — the end-of-run harvest of the SpanTracer.
//
// Walks the recorded span events once and distils, per flow, the
// lifecycle counts (recovery episodes, RTOs, HWatch decisions and rwnd
// rewrites) plus the latency decomposition the links attributed
// (queueing / transmission / propagation / retransmission wait), into a
// table a scenario can print next to its FCT numbers: "where did flow
// 17's time go, and why was its window cut".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "sim/trace_span.hpp"
#include "stats/cdf.hpp"

namespace hwatch::stats {

struct FlowBreakdown {
  net::FlowKey key;          // decoded from the tracer's packed words
  std::uint64_t span = 0;    // the flow span id (trace cross-reference)
  sim::TimePs start = 0;     // flow span begin
  sim::TimePs end = 0;       // flow span end (close_open_spans if unfinished)
  bool completed = false;    // saw the span's 'E' before close-out

  // Latency decomposition totals (sum over packets of this flow).
  std::array<sim::TimePs, sim::kLatencyComponents> latency_ps{};
  std::array<std::uint64_t, sim::kLatencyComponents> latency_samples{};

  // Lifecycle / provenance counts.
  std::uint64_t recoveries = 0;
  std::uint64_t rtos = 0;
  std::uint64_t decisions = 0;
  std::uint64_t rwnd_writes = 0;
  std::uint64_t probe_trains = 0;

  // From the flow span's payload: a = total_bytes at begin, b/c =
  // bytes_acked / retransmits at end.
  std::uint64_t total_bytes = 0;
  std::uint64_t bytes_acked = 0;
  std::uint64_t retransmits = 0;

  sim::TimePs lifetime() const { return end - start; }
};

class FlowTimeline {
 public:
  /// Harvests the tracer's events; call after close_open_spans so every
  /// flow span has an end.
  static FlowTimeline build(const sim::SpanTracer& tracer);

  const std::vector<FlowBreakdown>& flows() const { return flows_; }

  /// Context-wide per-component latency percentiles (microseconds),
  /// from the tracer's fixed-bucket histograms via stats::percentiles.
  Percentiles component_percentiles(sim::LatencyComponent c) const;

  /// The human-readable breakdown table.
  void print(std::ostream& os) const;

 private:
  std::vector<FlowBreakdown> flows_;
  std::array<std::vector<std::uint64_t>, sim::kLatencyComponents>
      hist_counts_{};
};

}  // namespace hwatch::stats
