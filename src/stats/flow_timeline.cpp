#include "stats/flow_timeline.hpp"

#include <ostream>
#include <string>
#include <unordered_map>

#include "stats/table.hpp"

namespace hwatch::stats {

namespace {

net::FlowKey decode_key(std::uint64_t hi, std::uint64_t lo) {
  net::FlowKey k;
  k.src = static_cast<net::NodeId>(hi >> 32);
  k.dst = static_cast<net::NodeId>(hi & 0xFFFFFFFFull);
  k.src_port = static_cast<std::uint16_t>(lo >> 16);
  k.dst_port = static_cast<std::uint16_t>(lo & 0xFFFFull);
  return k;
}

}  // namespace

FlowTimeline FlowTimeline::build(const sim::SpanTracer& tracer) {
  FlowTimeline tl;
  std::unordered_map<std::uint64_t, std::size_t> index;
  tl.flows_.reserve(tracer.flows().size());
  for (const sim::SpanTracer::FlowInfo& f : tracer.flows()) {
    FlowBreakdown b;
    b.key = decode_key(f.key_hi, f.key_lo);
    b.span = f.span;
    if (const sim::SpanTracer::LatencyAccum* acc =
            tracer.latency_of(f.span)) {
      b.latency_ps = acc->total_ps;
      b.latency_samples = acc->samples;
    }
    index.emplace(f.span, tl.flows_.size());
    tl.flows_.push_back(b);
  }

  for (const sim::TraceEvent& ev : tracer.events()) {
    const auto it = index.find(ev.flow);
    if (it == index.end()) continue;
    FlowBreakdown& b = tl.flows_[it->second];
    if (ev.kind == sim::SpanKind::kFlow && ev.span == b.span) {
      if (ev.phase == 'B') {
        b.start = ev.t;
        b.total_bytes = ev.a;
      } else if (ev.phase == 'E') {
        b.end = ev.t;
        b.bytes_acked = ev.b;
        b.retransmits = ev.c;
      }
      continue;
    }
    switch (ev.kind) {
      case sim::SpanKind::kRecovery:
        if (ev.phase == 'B') ++b.recoveries;
        break;
      case sim::SpanKind::kRto:
        if (ev.phase == 'B') ++b.rtos;
        break;
      case sim::SpanKind::kProbeTrain:
        if (ev.phase == 'B') ++b.probe_trains;
        break;
      case sim::SpanKind::kDecision:
        ++b.decisions;
        break;
      case sim::SpanKind::kRwndWrite:
        ++b.rwnd_writes;
        break;
      default:
        break;
    }
  }
  // A flow that never saw its own 'E' with payload (e.g. still open at
  // close_open_spans) reports bytes_acked = 0; completion is judged by
  // payload delivery, which also excludes kUnlimited flows.
  for (FlowBreakdown& b : tl.flows_) {
    b.completed = b.total_bytes > 0 && b.bytes_acked >= b.total_bytes;
  }

  for (std::size_t c = 0; c < sim::kLatencyComponents; ++c) {
    const auto& counts =
        tracer.latency_counts(static_cast<sim::LatencyComponent>(c));
    tl.hist_counts_[c].assign(counts.begin(), counts.end());
  }
  return tl;
}

Percentiles FlowTimeline::component_percentiles(
    sim::LatencyComponent c) const {
  const auto& bounds = sim::SpanTracer::latency_bounds_us();
  return percentiles(std::vector<double>(bounds.begin(), bounds.end()),
                     hist_counts_[static_cast<std::size_t>(c)]);
}

void FlowTimeline::print(std::ostream& os) const {
  os << "-- flow timeline (latency decomposition, ms) --\n";
  Table t({"flow", "bytes", "life", "queue", "tx", "prop", "retx_wait",
           "recov", "rto", "decis", "rwnd_w", "retx"});
  const auto ms = [](sim::TimePs ps) {
    return Table::num(static_cast<double>(ps) / 1e9, 3);
  };
  for (const FlowBreakdown& b : flows_) {
    t.add_row({std::to_string(b.key.src) + ":" +
                   std::to_string(b.key.src_port) + "->" +
                   std::to_string(b.key.dst) + ":" +
                   std::to_string(b.key.dst_port),
               std::to_string(b.bytes_acked), ms(b.lifetime()),
               ms(b.latency_ps[0]), ms(b.latency_ps[1]), ms(b.latency_ps[2]),
               ms(b.latency_ps[3]), std::to_string(b.recoveries),
               std::to_string(b.rtos), std::to_string(b.decisions),
               std::to_string(b.rwnd_writes), std::to_string(b.retransmits)});
  }
  t.print(os);
  for (std::size_t c = 0; c < sim::kLatencyComponents; ++c) {
    const Percentiles p =
        component_percentiles(static_cast<sim::LatencyComponent>(c));
    if (p.count == 0) continue;
    os << "  " << sim::to_string(static_cast<sim::LatencyComponent>(c))
       << " (us): n=" << p.count << " p50=" << Table::num(p.p50, 2)
       << " p95=" << Table::num(p.p95, 2) << " p99=" << Table::num(p.p99, 2)
       << " p99.9=" << Table::num(p.p999, 2) << "\n";
  }
}

}  // namespace hwatch::stats
