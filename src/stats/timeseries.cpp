#include "stats/timeseries.hpp"

#include <algorithm>

namespace hwatch::stats {

PeriodicSampler::PeriodicSampler(sim::Scheduler& sched, sim::TimePs interval,
                                 sim::TimePs until, SampleFn sample)
    : sched_(sched),
      interval_(interval),
      until_(until),
      sample_(std::move(sample)) {
  sched_.schedule_in(interval_, [this] { tick(); });
}

void PeriodicSampler::tick() {
  const sim::TimePs now = sched_.now();
  series_.push_back(TimePoint{now, sample_(now)});
  if (now + interval_ <= until_) {
    sched_.schedule_in(interval_, [this] { tick(); });
  }
}

double PeriodicSampler::mean() const {
  if (series_.empty()) return 0;
  double sum = 0;
  for (const auto& p : series_) sum += p.value;
  return sum / static_cast<double>(series_.size());
}

double PeriodicSampler::max() const {
  double m = 0;
  for (const auto& p : series_) m = std::max(m, p.value);
  return m;
}

PeriodicSampler make_queue_sampler(sim::Scheduler& sched, net::Link& link,
                                   sim::TimePs interval, sim::TimePs until) {
  return PeriodicSampler(sched, interval, until, [&link](sim::TimePs) {
    return static_cast<double>(link.qdisc().len_packets());
  });
}

UtilizationSampler::UtilizationSampler(sim::Scheduler& sched,
                                       net::Link& link, sim::TimePs interval,
                                       sim::TimePs until)
    : sched_(sched), link_(link), interval_(interval), until_(until) {
  sched_.schedule_in(interval_, [this] { tick(); });
}

void UtilizationSampler::tick() {
  const sim::TimePs now = sched_.now();
  const sim::TimePs busy = link_.busy_time();
  const double util = static_cast<double>(busy - last_busy_) /
                      static_cast<double>(interval_);
  last_busy_ = busy;
  series_.push_back(TimePoint{now, std::min(util, 1.0)});
  if (now + interval_ <= until_) {
    sched_.schedule_in(interval_, [this] { tick(); });
  }
}

double UtilizationSampler::mean() const {
  if (series_.empty()) return 0;
  double sum = 0;
  for (const auto& p : series_) sum += p.value;
  return sum / static_cast<double>(series_.size());
}

MetricsSampler::MetricsSampler(sim::SimContext& ctx, sim::TimePs interval,
                               sim::TimePs until)
    : ctx_(ctx), interval_(interval), until_(until) {
  series_.reserve(ctx_.metrics().gauges().size());
  for (const auto& g : ctx_.metrics().gauges()) {
    series_.push_back(GaugeSeries{g.name, {}});
  }
  if (!series_.empty()) {
    ctx_.scheduler().schedule_in(interval_, [this] { tick(); });
  }
}

void MetricsSampler::tick() {
  const sim::TimePs now = ctx_.scheduler().now();
  const auto& gauges = ctx_.metrics().gauges();
  for (std::size_t i = 0; i < series_.size(); ++i) {
    series_[i].series.push_back(TimePoint{now, gauges[i].fn()});
  }
  if (now + interval_ <= until_) {
    ctx_.scheduler().schedule_in(interval_, [this] { tick(); });
  }
}

ThroughputSampler::ThroughputSampler(sim::Scheduler& sched, net::Link& link,
                                     sim::TimePs interval, sim::TimePs until)
    : sched_(sched), link_(link), interval_(interval), until_(until) {
  sched_.schedule_in(interval_, [this] { tick(); });
}

void ThroughputSampler::tick() {
  const sim::TimePs now = sched_.now();
  const std::uint64_t bytes = link_.bytes_delivered();
  const double bits = static_cast<double>(bytes - last_bytes_) * 8.0;
  last_bytes_ = bytes;
  series_.push_back(
      TimePoint{now, bits / sim::to_seconds(interval_) / 1e9});
  if (now + interval_ <= until_) {
    sched_.schedule_in(interval_, [this] { tick(); });
  }
}

}  // namespace hwatch::stats
