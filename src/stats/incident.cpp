#include "stats/incident.hpp"

#include <algorithm>

namespace hwatch::stats {

namespace {

constexpr std::uint64_t kUnbounded = UINT64_MAX;

// Severity ladders: 1 advisory, 2 degraded, 3 outage-grade.  Queue
// episodes escalate on loss; the count-based detectors escalate when
// the episode dwarfs its trigger threshold.
std::uint32_t count_severity(std::uint64_t total, std::uint64_t threshold) {
  if (total >= 4 * threshold) return 3;
  if (total >= 2 * threshold) return 2;
  return 1;
}

void append_flow(std::vector<IncidentFlow>& flows, const IncidentFlow& f,
                 std::size_t cap) {
  if (flows.size() >= cap) return;
  for (const IncidentFlow& have : flows) {
    if (have.key_hi == f.key_hi && have.key_lo == f.key_lo) return;
  }
  flows.push_back(f);
}

std::string host_location(std::uint32_t node) {
  return "host" + std::to_string(node);
}

}  // namespace

std::string_view to_string(IncidentKind k) {
  switch (k) {
    case IncidentKind::kQueueBuildup:
      return "queue-buildup";
    case IncidentKind::kIncast:
      return "incast";
    case IncidentKind::kRtoStorm:
      return "rto-storm";
    case IncidentKind::kRetxBurst:
      return "retx-burst";
    case IncidentKind::kFlowStall:
      return "flow-stall";
    case IncidentKind::kRwndRewriteBurst:
      return "rwnd-rewrite-burst";
  }
  return "unknown";
}

IncidentDetector::IncidentDetector(IncidentConfig cfg) : cfg_(cfg) {}

std::uint32_t IncidentDetector::register_queue(std::string name,
                                               std::uint64_t capacity_pkts) {
  QueueState q;
  q.name = std::move(name);
  q.capacity = capacity_pkts;
  if (cfg_.queue_high_pkts != 0) {
    q.high = cfg_.queue_high_pkts;
  } else if (capacity_pkts != kUnbounded && capacity_pkts > 0) {
    q.high = std::max<std::uint64_t>(8, capacity_pkts / 2);
  } else {
    q.high = 64;  // byte-/un-bounded: absolute fallback watermark
  }
  q.low = cfg_.queue_low_pkts != 0
              ? cfg_.queue_low_pkts
              : std::max<std::uint64_t>(1, q.high / 4);
  queues_.push_back(std::move(q));
  return static_cast<std::uint32_t>(queues_.size() - 1);
}

void IncidentDetector::on_queue_depth(std::uint32_t queue,
                                      std::uint64_t depth_pkts,
                                      sim::TimePs now) {
  QueueState& q = queues_[queue];
  if (!q.open) {
    if (depth_pkts < q.high) return;
    q.open = true;
    q.start = now;
    q.peak = depth_pkts;
    q.drops = 0;
    ++open_episodes_;
    return;
  }
  q.peak = std::max(q.peak, depth_pkts);
  if (depth_pkts <= q.low) close_queue(q, now);
}

void IncidentDetector::on_queue_drop(std::uint32_t queue, sim::TimePs now) {
  QueueState& q = queues_[queue];
  if (!q.open) {
    // A drop without a crossed watermark (tiny or byte-bounded buffer)
    // still opens an episode: loss is never noise.
    q.open = true;
    q.start = now;
    q.peak = 0;
    q.drops = 0;
    ++open_episodes_;
  }
  ++q.drops;
}

void IncidentDetector::close_queue(QueueState& q, sim::TimePs end) {
  q.open = false;
  --open_episodes_;
  if (q.drops == 0 && end - q.start < cfg_.queue_min_duration) return;
  Incident inc;
  inc.kind = IncidentKind::kQueueBuildup;
  inc.severity = q.drops > 0 ? 3 : (q.peak >= 2 * q.high ? 2 : 1);
  inc.start = q.start;
  inc.end = end;
  inc.location = q.name;
  inc.magnitude = q.peak;
  inc.drops = q.drops;
  record(std::move(inc));
}

IncidentDetector::FlowState& IncidentDetector::flow_at(std::uint64_t key_hi,
                                                       std::uint64_t key_lo) {
  const auto key = std::make_pair(key_hi, key_lo);
  const auto it = flow_index_.find(key);
  if (it != flow_index_.end()) return flows_[it->second];
  flow_index_.emplace(key, static_cast<std::uint32_t>(flows_.size()));
  FlowState f;
  f.id.key_hi = key_hi;
  f.id.key_lo = key_lo;
  flows_.push_back(std::move(f));
  return flows_.back();
}

void IncidentDetector::on_flow_established(std::uint64_t key_hi,
                                           std::uint64_t key_lo,
                                           std::uint64_t flow_span,
                                           sim::TimePs now) {
  FlowState& f = flow_at(key_hi, key_lo);
  f.id.span = flow_span;
  f.active = true;
  f.last_progress = now;
}

void IncidentDetector::on_flow_progress(std::uint64_t key_hi,
                                        std::uint64_t key_lo, sim::TimePs now,
                                        sim::TimePs srtt) {
  FlowState& f = flow_at(key_hi, key_lo);
  check_stall(f, now);
  f.last_progress = now;
  f.srtt = srtt;
}

void IncidentDetector::on_flow_complete(std::uint64_t key_hi,
                                        std::uint64_t key_lo,
                                        sim::TimePs now) {
  FlowState& f = flow_at(key_hi, key_lo);
  check_stall(f, now);
  f.active = false;
  close_rto_run(f);
  close_retx_run(f);
}

void IncidentDetector::check_stall(FlowState& f, sim::TimePs now) {
  if (!f.active || f.srtt == 0) return;
  const sim::TimePs gap = now - f.last_progress;
  const sim::TimePs threshold =
      std::max(cfg_.stall_min_gap,
               static_cast<sim::TimePs>(cfg_.stall_rtts *
                                        static_cast<double>(f.srtt)));
  if (gap < threshold) return;
  Incident inc;
  inc.kind = IncidentKind::kFlowStall;
  inc.severity = gap >= 4 * threshold ? 3 : (gap >= 2 * threshold ? 2 : 1);
  inc.start = f.last_progress;
  inc.end = now;
  inc.location = host_location(static_cast<std::uint32_t>(f.id.key_hi >> 32));
  inc.magnitude = gap;
  inc.flows.push_back(f.id);
  record(std::move(inc));
}

void IncidentDetector::on_rto(std::uint64_t key_hi, std::uint64_t key_lo,
                              sim::TimePs now) {
  FlowState& f = flow_at(key_hi, key_lo);
  if (f.rto_run != 0 && now - f.rto_last <= cfg_.rto_storm_gap) {
    ++f.rto_run;
  } else {
    close_rto_run(f);
    f.rto_run = 1;
    f.rto_first = now;
  }
  f.rto_last = now;
  if (!f.rto_open && f.rto_run >= cfg_.rto_storm_count) {
    f.rto_open = true;
    ++open_episodes_;
  }
}

void IncidentDetector::close_rto_run(FlowState& f) {
  if (f.rto_open) {
    --open_episodes_;
    Incident inc;
    inc.kind = IncidentKind::kRtoStorm;
    inc.severity = count_severity(f.rto_run, cfg_.rto_storm_count);
    inc.start = f.rto_first;
    inc.end = f.rto_last;
    inc.location =
        host_location(static_cast<std::uint32_t>(f.id.key_hi >> 32));
    inc.magnitude = f.rto_run;
    inc.flows.push_back(f.id);
    record(std::move(inc));
  }
  f.rto_open = false;
  f.rto_run = 0;
}

void IncidentDetector::on_retransmit(std::uint64_t key_hi,
                                     std::uint64_t key_lo, sim::TimePs now) {
  FlowState& f = flow_at(key_hi, key_lo);
  if (f.retx_run != 0 && now - f.retx_last <= cfg_.retx_burst_gap) {
    ++f.retx_run;
  } else {
    close_retx_run(f);
    f.retx_run = 1;
    f.retx_first = now;
  }
  f.retx_last = now;
  if (!f.retx_open && f.retx_run >= cfg_.retx_burst_count) {
    f.retx_open = true;
    ++open_episodes_;
  }
}

void IncidentDetector::close_retx_run(FlowState& f) {
  if (f.retx_open) {
    --open_episodes_;
    Incident inc;
    inc.kind = IncidentKind::kRetxBurst;
    inc.severity = count_severity(f.retx_run, cfg_.retx_burst_count);
    inc.start = f.retx_first;
    inc.end = f.retx_last;
    inc.location =
        host_location(static_cast<std::uint32_t>(f.id.key_hi >> 32));
    inc.magnitude = f.retx_run;
    inc.flows.push_back(f.id);
    record(std::move(inc));
  }
  f.retx_open = false;
  f.retx_run = 0;
}

IncidentDetector::BurstState& IncidentDetector::burst_at(
    std::vector<BurstState>& states,
    std::map<std::uint32_t, std::uint32_t>& index, std::uint32_t node) {
  const auto it = index.find(node);
  if (it != index.end()) return states[it->second];
  index.emplace(node, static_cast<std::uint32_t>(states.size()));
  BurstState b;
  b.node = node;
  states.push_back(std::move(b));
  return states.back();
}

void IncidentDetector::burst_event(BurstState& b, const IncidentFlow& flow,
                                   sim::TimePs now, std::uint32_t threshold,
                                   sim::TimePs window, IncidentKind kind) {
  if (b.open && now - b.last > window) close_burst(b, threshold, kind);
  // Age the window, compacting the dead prefix once it dominates.
  while (b.begin < b.recent.size() && now - b.recent[b.begin].first > window) {
    ++b.begin;
  }
  if (b.begin > 64 && b.begin * 2 > b.recent.size()) {
    b.recent.erase(b.recent.begin(),
                   b.recent.begin() + static_cast<std::ptrdiff_t>(b.begin));
    b.begin = 0;
  }
  b.recent.emplace_back(now, flow);
  const std::size_t in_window = b.recent.size() - b.begin;
  if (!b.open && in_window >= threshold) {
    b.open = true;
    b.start = b.recent[b.begin].first;
    b.total = in_window;
    b.flows.clear();
    for (std::size_t i = b.begin; i < b.recent.size(); ++i) {
      append_flow(b.flows, b.recent[i].second, cfg_.max_flows_per_incident);
    }
    ++open_episodes_;
  } else if (b.open) {
    ++b.total;
    append_flow(b.flows, flow, cfg_.max_flows_per_incident);
  }
  if (b.open) b.last = now;
}

void IncidentDetector::close_burst(BurstState& b, std::uint32_t threshold,
                                   IncidentKind kind) {
  if (!b.open) return;
  b.open = false;
  --open_episodes_;
  Incident inc;
  inc.kind = kind;
  inc.severity = count_severity(b.total, threshold);
  inc.start = b.start;
  inc.end = b.last;
  inc.location = host_location(b.node);
  inc.magnitude = b.total;
  inc.flows = std::move(b.flows);
  b.flows.clear();
  b.total = 0;
  record(std::move(inc));
}

void IncidentDetector::on_sink_syn(std::uint32_t dst_node,
                                   std::uint64_t key_hi, std::uint64_t key_lo,
                                   std::uint64_t flow_span, sim::TimePs now) {
  IncidentFlow f{key_hi, key_lo, flow_span};
  burst_event(burst_at(sinks_, sink_index_, dst_node), f, now,
              cfg_.incast_fanin, cfg_.incast_window, IncidentKind::kIncast);
}

void IncidentDetector::on_rwnd_rewrite(std::uint32_t host_node,
                                       std::uint64_t key_hi,
                                       std::uint64_t key_lo,
                                       sim::TimePs now) {
  const auto it = flow_index_.find(std::make_pair(key_hi, key_lo));
  IncidentFlow f{key_hi, key_lo,
                 it != flow_index_.end() ? flows_[it->second].id.span : 0};
  burst_event(burst_at(shims_, shim_index_, host_node), f, now,
              cfg_.rewrite_burst_count, cfg_.rewrite_window,
              IncidentKind::kRwndRewriteBurst);
}

void IncidentDetector::finalize(sim::TimePs now) {
  for (QueueState& q : queues_) {
    if (q.open) close_queue(q, now);
  }
  for (FlowState& f : flows_) {
    check_stall(f, now);
    close_rto_run(f);
    close_retx_run(f);
  }
  for (BurstState& b : sinks_) {
    close_burst(b, cfg_.incast_fanin, IncidentKind::kIncast);
  }
  for (BurstState& b : shims_) {
    close_burst(b, cfg_.rewrite_burst_count,
                IncidentKind::kRwndRewriteBurst);
  }
}

void IncidentDetector::record(Incident inc) {
  incidents_.push_back(std::move(inc));
}

sim::Json incidents_json(std::vector<Incident> all) {
  // Total deterministic order: every field of the key is a pure
  // function of simulation state, so ties resolve identically no
  // matter which shard contributed which record.
  std::sort(all.begin(), all.end(), [](const Incident& a, const Incident& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.location != b.location) return a.location < b.location;
    if (a.end != b.end) return a.end < b.end;
    const std::uint64_t ah = a.flows.empty() ? 0 : a.flows[0].key_hi;
    const std::uint64_t bh = b.flows.empty() ? 0 : b.flows[0].key_hi;
    if (ah != bh) return ah < bh;
    const std::uint64_t al = a.flows.empty() ? 0 : a.flows[0].key_lo;
    const std::uint64_t bl = b.flows.empty() ? 0 : b.flows[0].key_lo;
    if (al != bl) return al < bl;
    return a.magnitude < b.magnitude;
  });

  sim::Json root = sim::Json::object();
  root.set("schema", "hwatch.incidents/v1");
  root.set("count", all.size());
  sim::Json arr = sim::Json::array();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Incident& inc = all[i];
    sim::Json j = sim::Json::object();
    j.set("id", i);
    j.set("kind", std::string(to_string(inc.kind)));
    j.set("severity", inc.severity);
    j.set("start_ps", inc.start);
    j.set("end_ps", inc.end);
    j.set("location", inc.location);
    j.set("magnitude", inc.magnitude);
    if (inc.kind == IncidentKind::kQueueBuildup) j.set("drops", inc.drops);
    sim::Json flows = sim::Json::array();
    std::vector<std::uint64_t> spans;
    for (const IncidentFlow& f : inc.flows) {
      sim::Json fj = sim::Json::object();
      fj.set("src", f.key_hi >> 32);
      fj.set("dst", f.key_hi & 0xFFFFFFFFu);
      fj.set("sport", f.key_lo >> 16);
      fj.set("dport", f.key_lo & 0xFFFFu);
      fj.set("span", f.span);
      flows.push_back(std::move(fj));
      if (f.span != 0) spans.push_back(f.span);
    }
    j.set("flows", std::move(flows));
    std::sort(spans.begin(), spans.end());
    spans.erase(std::unique(spans.begin(), spans.end()), spans.end());
    sim::Json sj = sim::Json::array();
    for (std::uint64_t s : spans) sj.push_back(s);
    j.set("spans", std::move(sj));
    arr.push_back(std::move(j));
  }
  root.set("incidents", std::move(arr));
  return root;
}

}  // namespace hwatch::stats
