// Console tables and CSV output for bench harnesses.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "stats/cdf.hpp"
#include "stats/timeseries.hpp"

namespace hwatch::stats {

/// Fixed-width console table.  Benches use it to print the same rows the
/// paper's figures plot.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes "x,y" lines with a header; used to dump CDF and time series
/// next to the console output.
void write_csv(const std::string& path, const std::string& header,
               const std::vector<std::pair<double, double>>& points);

void write_csv(const std::string& path, const std::string& header,
               const TimeSeries& series);

/// Prints a labelled CDF as quantile rows (q, value).
void print_cdf(std::ostream& os, const std::string& label, const Cdf& cdf,
               const std::string& unit);

/// Prints several named CDFs side by side at common quantiles — the
/// textual equivalent of one CDF panel with several curves.
void print_cdf_panel(std::ostream& os, const std::string& title,
                     const std::vector<std::pair<std::string, Cdf>>& curves,
                     const std::string& unit);

}  // namespace hwatch::stats
