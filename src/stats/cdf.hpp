// Empirical CDFs and summary statistics.
//
// The paper reports almost everything as CDFs across flows (FCT of
// short-lived flows, goodput of long-lived flows, drop counts); Cdf
// reproduces those series and the summaries the text quotes (averages,
// variance, improvement factors).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hwatch::stats {

struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double variance = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double sample);

  std::size_t count() const { return sorted_ ? data_.size() : data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Value at quantile q in [0, 1] (linear interpolation).
  double quantile(double q) const;

  /// Fraction of samples <= x.
  double fraction_below(double x) const;

  Summary summarize() const;

  /// (value, cumulative fraction) pairs at `points` evenly spaced
  /// quantiles — the series a gnuplot CDF figure plots.
  std::vector<std::pair<double, double>> series(std::size_t points = 20)
      const;

  const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> data_;
  mutable bool sorted_ = true;
};

/// Mean of a sample vector (0 for empty).
double mean_of(const std::vector<double>& v);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]; 1 means
/// perfectly equal shares.  Returns 0 for empty or all-zero input.
double jain_fairness(const std::vector<double>& v);

}  // namespace hwatch::stats
