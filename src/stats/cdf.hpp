// Empirical CDFs and summary statistics.
//
// The paper reports almost everything as CDFs across flows (FCT of
// short-lived flows, goodput of long-lived flows, drop counts); Cdf
// reproduces those series and the summaries the text quotes (averages,
// variance, improvement factors).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hwatch::sim {
class Histogram;
class Json;
}  // namespace hwatch::sim

namespace hwatch::stats {

struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double variance = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double sample);

  std::size_t count() const { return sorted_ ? data_.size() : data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Value at quantile q in [0, 1] (linear interpolation).
  double quantile(double q) const;

  /// Fraction of samples <= x.
  double fraction_below(double x) const;

  Summary summarize() const;

  /// (value, cumulative fraction) pairs at `points` evenly spaced
  /// quantiles — the series a gnuplot CDF figure plots.
  std::vector<std::pair<double, double>> series(std::size_t points = 20)
      const;

  const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> data_;
  mutable bool sorted_ = true;
};

/// Tail quantiles estimated from a fixed-bucket histogram (the bucketed
/// counterpart of Cdf::quantile: linear interpolation inside the bucket
/// containing the target rank).  All zero when count == 0.
struct Percentiles {
  std::uint64_t count = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double p999 = 0;
};

/// `bounds` are the upper bucket edges (ascending); `counts` has
/// bounds.size() + 1 entries, the last being the overflow bucket.  The
/// overflow bucket interpolates towards `overflow_hint` (e.g. the
/// observed maximum) when given, else collapses to the last bound.
Percentiles percentiles(const std::vector<double>& bounds,
                        const std::vector<std::uint64_t>& counts,
                        double overflow_hint = 0);

/// Convenience overload for the metrics-registry histogram; uses the
/// recorded maximum as the overflow hint.
Percentiles percentiles(const sim::Histogram& h);

/// The manifest's "fct_ms_percentiles" results entry —
/// {count, p50, p95, p99, p999} — one source of truth shared by every
/// scenario runner (single-context and sharded).
sim::Json percentiles_json(const Percentiles& p);

/// Mean of a sample vector (0 for empty).
double mean_of(const std::vector<double>& v);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]; 1 means
/// perfectly equal shares.  Returns 0 for empty or all-zero input.
double jain_fairness(const std::vector<double>& v);

}  // namespace hwatch::stats
