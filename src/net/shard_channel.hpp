// Cross-shard packet channels for conservative sharded simulation.
//
// A CrossShardChannel is the only sanctioned way for packets — and
// therefore any state at all — to move between two shards' SimContexts.
// The producer side is a Link whose destination node lives in another
// shard: at transmission-complete time it pushes the packet, stamped
// with its arrival time (now + propagation delay), into the channel's
// ShardInbox.  The consumer side runs in the destination shard's drain
// phase: it empties every inbox, sorts the haul by (deliver_time,
// packet uid) — a deterministic total order independent of which link
// or thread produced each packet — and schedules the deliveries into
// the local scheduler.
//
// ShardInbox is a lock-free single-producer/single-consumer ring.  The
// ShardGroup epoch protocol guarantees producers only push during run
// phases and the consumer only pops during drain phases, with a full
// barrier between them, so the ring is never contended; the
// acquire/release atomics make the handoff explicit (and TSan-clean)
// rather than relying on the barrier alone.  A full ring spills to an
// overflow vector instead of blocking — spills are counted, never
// silent, and only touched under the same phase separation.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/annotations.hpp"
#include "sim/context.hpp"

namespace hwatch::net {

class Node;

/// SPSC ring of in-flight cross-shard packets.  push() is called by the
/// source shard's worker (producer), pop() by the destination shard's
/// worker (consumer); the ShardGroup barrier separates the two roles in
/// time.
class HWATCH_SHARD_SHARED ShardInbox {
 public:
  struct Item {
    sim::TimePs deliver_time = 0;
    Packet pkt;
  };

  /// `capacity` is rounded up to a power of two (ring slots).  One
  /// window's worth of transmissions on a single link fits comfortably
  /// in the default; overflow spills, never drops.
  explicit ShardInbox(std::size_t capacity = 1024);

  ShardInbox(const ShardInbox&) = delete;
  ShardInbox& operator=(const ShardInbox&) = delete;

  /// Producer side: enqueue a packet that must surface in the
  /// destination shard at `deliver_time`.
  void push(sim::TimePs deliver_time, Packet&& p);

  /// Consumer side: dequeue one item; false when empty.  Ring first,
  /// then the overflow spill (drain sorts afterwards, so the relative
  /// order here does not matter).
  bool pop(Item& out);

  bool ring_empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  std::uint64_t pushed() const { return pushed_; }
  std::uint64_t popped() const { return popped_; }
  /// Pushes that missed the ring and took the overflow vector.
  std::uint64_t spilled() const { return spilled_; }
  std::size_t capacity() const { return ring_.size(); }

  /// High-water mark of the inbox depth (ring + spill) observed at push
  /// time — the number a grow-capacity decision needs.  Producer-owned
  /// like pushed()/spilled(): read it from the consumer side only during
  /// a drain phase (the epoch barrier orders the access).
  std::uint64_t peak_depth() const { return peak_depth_; }

  /// Items currently pending (ring + spill).  Consumer-side drain-phase
  /// view: producers are quiescent, so this is exactly what the next
  /// drain will pop.
  std::size_t depth() const {
    return (tail_.load(std::memory_order_acquire) -
            head_.load(std::memory_order_acquire)) +
           spill_.size();
  }

 private:
  std::vector<Item> ring_;
  std::size_t mask_ = 0;
  // Producer-owned tail, consumer-owned head; each loads the other's
  // index with acquire and publishes its own with release.
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
  std::vector<Item> spill_;  // producer-written, consumer-drained
  std::uint64_t pushed_ = 0;      // producer-side counter
  std::uint64_t spilled_ = 0;     // producer-side counter
  std::uint64_t peak_depth_ = 0;  // producer-side high-water mark
  std::uint64_t popped_ = 0;      // consumer-side counter
};

/// One directed cross-shard edge: the inbox plus the destination-shard
/// identity needed to deliver into it.  Owned by the destination shard;
/// the source shard's Link holds a pointer to the inbox only.
class HWATCH_SHARD_SHARED CrossShardChannel {
 public:
  /// `dst_ctx`/`dst_node`: the receiving shard's context and the node
  /// (switch or host) the packets are addressed to — the same node the
  /// producing Link names as its destination.
  CrossShardChannel(sim::SimContext& dst_ctx, Node* dst_node,
                    std::size_t capacity = 1024);

  ShardInbox& inbox() { return inbox_; }
  const ShardInbox& inbox() const { return inbox_; }
  Node* dst_node() const { return dst_node_; }
  sim::SimContext& dst_ctx() { return dst_ctx_; }

 private:
  sim::SimContext& dst_ctx_;
  Node* dst_node_;
  ShardInbox inbox_;
};

/// Drain phase for one shard: empties every channel, sorts the haul by
/// (deliver_time, packet uid) and schedules the deliveries into the
/// destination context's scheduler.  `scratch` is caller-owned reusable
/// storage so the steady state allocates nothing.  All channels must
/// target the same shard (context).
void drain_cross_shard_channels(
    std::vector<CrossShardChannel*>& channels,
    std::vector<std::pair<Node*, ShardInbox::Item>>& scratch);

}  // namespace hwatch::net
