// Two-band strict-priority queue discipline.
//
// Models the preemptive designs the paper positions HWatch against
// (requirement R2: "should not degrade the performance of long-lived
// flows dramatically like in preemptive systems"): packets with a
// nonzero DSCP are served strictly before best-effort traffic, so a
// hypervisor that marks short flows "urgent" preempts the bulk flows in
// the fabric.  Shared hard bound across both bands; tail-drop on the
// total bound.
#pragma once

#include "net/queue.hpp"

namespace hwatch::net {

class PriorityQueue final : public QueueDiscipline {
 public:
  explicit PriorityQueue(QueueLimits limits) : QueueDiscipline(limits) {}
  explicit PriorityQueue(std::uint64_t capacity_pkts)
      : QueueDiscipline(capacity_pkts) {}

  std::string name() const override { return "priority2"; }

 protected:
  EnqueueOutcome classify(const Packet& p, sim::TimePs now) override {
    (void)p;
    (void)now;
    return EnqueueOutcome::kAccepted;
  }

  int service_class(const Packet& p) const override {
    return p.ip.dscp > 0 ? 1 : 0;
  }

  /// Preemptive dropping (pFabric-style): an urgent arrival pushes
  /// best-effort packets out of a full buffer until it fits.
  bool make_room(const Packet& p) override {
    if (service_class(p) == 0) return false;
    while (would_overflow(p)) {
      if (!evict_best_effort_tail()) return false;
    }
    return true;
  }
};

}  // namespace hwatch::net
