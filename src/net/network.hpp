// Network: owns all nodes and links, builds duplex connections and
// computes shortest-path routes (with equal-cost multipath) by BFS.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/queue.hpp"
#include "sim/annotations.hpp"
#include "sim/context.hpp"
#include "sim/units.hpp"

namespace hwatch::net {

class HWATCH_SHARD_CONFINED Network {
 public:
  /// `id_base` offsets every NodeId this network assigns: sharded runs
  /// give each shard's Network a disjoint slice of one global id space,
  /// so FlowKeys, ip.src/dst and switch routes are meaningful across
  /// shard boundaries.  Single-network scenarios keep the default 0.
  explicit Network(sim::SimContext& ctx, NodeId id_base = 0)
      : ctx_(ctx), id_base_(id_base) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Host& add_host(const std::string& name);
  Switch& add_switch(const std::string& name);

  /// Creates a duplex connection: two unidirectional links (a->b, b->a),
  /// each with its own queue from `make_qdisc`.  Host endpoints get the
  /// link registered as their NIC.
  struct DuplexLink {
    Link* forward;   // a -> b
    Link* backward;  // b -> a
  };
  DuplexLink connect(Node& a, Node& b, sim::DataRate rate,
                     sim::TimePs prop_delay, const QdiscFactory& make_qdisc);

  /// Creates one unidirectional link from `local` (owned by this
  /// network) to `remote_dst`, a node owned by another shard's network.
  /// The link — its queue and serializing transmitter — lives on this
  /// shard's context; completed transmissions are pushed into `inbox`
  /// (the destination shard's CrossShardChannel) stamped with their
  /// arrival time instead of being scheduled locally.  compute_routes()
  /// ignores cross-shard edges; sharded fabrics install structural
  /// routes instead.
  Link* connect_cross_shard(Node& local, Node& remote_dst,
                            sim::DataRate rate, sim::TimePs prop_delay,
                            const QdiscFactory& make_qdisc,
                            ShardInbox* inbox);

  /// Populates every switch's forwarding table with shortest paths to
  /// every host, keeping all equal-cost next hops (ECMP).  Must be called
  /// after the topology is final and before traffic starts.
  void compute_routes();

  Node* node(NodeId id) const {
    if (id < id_base_) return nullptr;
    const NodeId local = id - id_base_;
    return local < nodes_.size() ? nodes_[local].get() : nullptr;
  }
  Host* host(NodeId id) const;
  std::size_t node_count() const { return nodes_.size(); }
  NodeId id_base() const { return id_base_; }
  /// First id past this network's slice of the global id space.
  NodeId id_end() const {
    return id_base_ + static_cast<NodeId>(nodes_.size());
  }

  const std::vector<Host*>& hosts() const { return hosts_; }
  const std::vector<Switch*>& switches() const { return switches_; }
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

  /// The unidirectional link from `a` to `b`, or nullptr.
  Link* link_between(NodeId a, NodeId b) const;

  /// Fresh unique packet uid (trace identity); delegates to the context.
  std::uint64_t next_packet_uid() { return ctx_.next_packet_uid(); }

  /// The simulation instance this network belongs to.
  sim::SimContext& ctx() { return ctx_; }

  sim::Scheduler& scheduler() { return ctx_.scheduler(); }

  /// Aggregate drop count across every queue in the fabric.
  std::uint64_t total_queue_drops() const;

 private:
  struct Edge {
    NodeId peer;
    Link* link;  // this-node -> peer
  };

  sim::SimContext& ctx_;
  NodeId id_base_ = 0;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Host*> hosts_;
  std::vector<Switch*> switches_;
  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace hwatch::net
