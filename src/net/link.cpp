#include "net/link.hpp"

#include <cassert>
#include <utility>

#include "net/node.hpp"

namespace hwatch::net {

Link::Link(sim::SimContext& ctx, std::string name, sim::DataRate rate,
           sim::TimePs prop_delay, std::unique_ptr<QueueDiscipline> qdisc,
           Node* dst)
    : ctx_(ctx),
      name_(std::move(name)),
      rate_(rate),
      prop_delay_(prop_delay),
      qdisc_(std::move(qdisc)),
      dst_(dst),
      tx_events_(ctx.metrics().counter("sched.events.link_tx")),
      prop_events_(ctx.metrics().counter("sched.events.link_prop")) {
  assert(qdisc_ != nullptr);
  assert(dst_ != nullptr);
}

EnqueueOutcome Link::transmit(Packet&& p) {
  const EnqueueOutcome outcome = qdisc_->enqueue(std::move(p), ctx_.now());
  if (outcome != EnqueueOutcome::kDropped && !transmitting_) {
    start_transmission();
  }
  return outcome;
}

void Link::start_transmission() {
  std::optional<Packet> next = qdisc_->dequeue(ctx_.now());
  if (!next) return;
  transmitting_ = true;
  const sim::TimePs tx = rate_.transmission_time(next->size_bytes());
  busy_time_ += tx;
  // Move the packet into the completion event.  std::function requires
  // copyable callables, so park the packet in a shared_ptr.
  auto holder = std::make_shared<Packet>(std::move(*next));
  tx_events_.inc();
  ctx_.scheduler().schedule_in(tx, [this, holder] {
    on_transmission_complete(std::move(*holder));
  });
}

void Link::on_transmission_complete(Packet&& p) {
  transmitting_ = false;
  bytes_delivered_ += p.size_bytes();
  ++packets_delivered_;
  // Propagation: the receiver sees the packet prop_delay later.  The
  // transmitter is free immediately (pipelining).
  auto holder = std::make_shared<Packet>(std::move(p));
  prop_events_.inc();
  ctx_.scheduler().schedule_in(prop_delay_, [this, holder] {
    dst_->handle_packet(std::move(*holder));
  });
  start_transmission();
}

}  // namespace hwatch::net
