#include "net/link.hpp"

#include <cassert>
#include <utility>

#include "net/node.hpp"

namespace hwatch::net {

// The ISSUE-level sizing contracts live here, where sim-layer constants
// and net::Packet are both visible without layering sim on net.
static_assert(sim::kSchedulerCallbackInline >= sizeof(Packet) + sizeof(void*),
              "scheduler callback SBO must fit a Packet + a this pointer");
static_assert(sim::SimContext::kPacketBlockBytes >= sizeof(Packet),
              "packet pool blocks must fit a Packet");

Link::Link(sim::SimContext& ctx, std::string name, sim::DataRate rate,
           sim::TimePs prop_delay, std::unique_ptr<QueueDiscipline> qdisc,
           Node* dst)
    : ctx_(ctx),
      name_(std::move(name)),
      rate_(rate),
      prop_delay_(prop_delay),
      qdisc_(std::move(qdisc)),
      dst_(dst),
      tx_events_(ctx.metrics().counter("sched.events.link_tx")),
      prop_events_(ctx.metrics().counter("sched.events.link_prop")) {
  assert(qdisc_ != nullptr);
  assert(dst_ != nullptr);
}

EnqueueOutcome Link::transmit(Packet&& p) {
  const EnqueueOutcome outcome = qdisc_->enqueue(std::move(p), ctx_.now());
  if (outcome != EnqueueOutcome::kDropped && !transmitting_) {
    start_transmission();
  }
  return outcome;
}

void Link::start_transmission() {
  std::optional<Packet> next = qdisc_->dequeue(ctx_.now());
  if (!next) return;
  transmitting_ = true;
  const sim::TimePs tx = rate_.transmission_time(next->size_bytes());
  busy_time_ += tx;
  tx_events_.inc();
  // The packet rides inside the callback by move; the scheduler's
  // inline buffer must fit it or this hop would hit the allocator.
  auto complete = [this, p = std::move(*next)]() mutable {
    on_transmission_complete(std::move(p));
  };
  static_assert(sim::Scheduler::Callback::fits_inline<decltype(complete)>(),
                "tx-complete event must be allocation-free");
  ctx_.scheduler().schedule_in(tx, std::move(complete));
}

void Link::on_transmission_complete(Packet&& p) {
  transmitting_ = false;
  bytes_delivered_ += p.size_bytes();
  ++packets_delivered_;
  // Propagation: the receiver sees the packet prop_delay later.  The
  // transmitter is free immediately (pipelining).
  prop_events_.inc();
  auto deliver = [dst = dst_, p = std::move(p)]() mutable {
    dst->handle_packet(std::move(p));
  };
  static_assert(sim::Scheduler::Callback::fits_inline<decltype(deliver)>(),
                "propagation event must be allocation-free");
  ctx_.scheduler().schedule_in(prop_delay_, std::move(deliver));
  start_transmission();
}

}  // namespace hwatch::net
