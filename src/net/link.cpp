#include "net/link.hpp"

#include <cassert>
#include <utility>

#include "net/node.hpp"
#include "net/shard_channel.hpp"

namespace hwatch::net {

// The ISSUE-level sizing contracts live here, where sim-layer constants
// and net::Packet are both visible without layering sim on net.
static_assert(sim::kSchedulerCallbackInline >= sizeof(Packet) + sizeof(void*),
              "scheduler callback SBO must fit a Packet + a this pointer");
static_assert(sim::SimContext::kPacketBlockBytes >= sizeof(Packet),
              "packet pool blocks must fit a Packet");

Link::Link(sim::SimContext& ctx, std::string name, sim::DataRate rate,
           sim::TimePs prop_delay, std::unique_ptr<QueueDiscipline> qdisc,
           Node* dst)
    : ctx_(ctx),
      name_(std::move(name)),
      rate_(rate),
      prop_delay_(prop_delay),
      qdisc_(std::move(qdisc)),
      dst_(dst),
      tx_events_(ctx.metrics().counter("sched.events.link_tx")),
      prop_events_(ctx.metrics().counter("sched.events.link_prop")) {
  assert(qdisc_ != nullptr);
  assert(dst_ != nullptr);
}

EnqueueOutcome Link::transmit(Packet&& p) {
  const EnqueueOutcome outcome = qdisc_->enqueue(std::move(p), ctx_.now());
  if (outcome != EnqueueOutcome::kDropped && !transmitting_) {
    start_transmission();
  }
  return outcome;
}

// Attributes a latency component to the packet's flow span, trying the
// wire direction first and the reverse (ACK path) second so both halves
// of a connection land on the same flow.  Unregistered flows (probes,
// port collisions) fall through to flow_span 0: context-wide histogram
// only.
static void attribute_latency(sim::SpanTracer& tr, const Packet& p,
                              sim::LatencyComponent c, sim::TimePs dt) {
  const FlowKey key = flow_key_of(p);
  auto [hi, lo] = flow_key_words(key);
  std::uint64_t fs = tr.flow_span_of(hi, lo);
  if (fs == 0) {
    auto [rhi, rlo] = flow_key_words(key.reversed());
    fs = tr.flow_span_of(rhi, rlo);
  }
  tr.add_latency(fs, c, dt);
}

void Link::start_transmission() {
  std::optional<Packet> next = qdisc_->dequeue(ctx_.now());
  if (!next) return;
  transmitting_ = true;
  const sim::TimePs tx = rate_.transmission_time(next->size_bytes());
  busy_time_ += tx;
  tx_events_.inc();
  if (ctx_.tracer().enabled()) {
    attribute_latency(ctx_.tracer(), *next, sim::LatencyComponent::kQueueing,
                      ctx_.now() - next->enqueue_time);
    attribute_latency(ctx_.tracer(), *next,
                      sim::LatencyComponent::kTransmission, tx);
  }
  // The packet joins the in-flight train; the event itself is just a
  // `this` capture, so it rides the scheduler's small-callback pool.
  flight_.push_back(std::move(*next));
  auto complete = [this] { on_transmission_complete(); };
  static_assert(
      sim::Scheduler::SmallCallback::fits_inline<decltype(complete)>(),
      "tx-complete event must ride the small pool");
  ctx_.scheduler().schedule_in(tx, std::move(complete));
}

void Link::on_transmission_complete() {
  sim::ProfScope prof(ctx_.profiler(), sim::ProfComponent::kLinkTx);
  transmitting_ = false;
  Packet& p = flight_.at(tx_done_);
  bytes_delivered_ += p.size_bytes();
  ++packets_delivered_;
  if (ctx_.tracer().enabled()) {
    attribute_latency(ctx_.tracer(), p, sim::LatencyComponent::kPropagation,
                      prop_delay_);
  }
  // Propagation: the receiver sees the packet prop_delay later.  The
  // transmitter is free immediately (pipelining).
  prop_events_.inc();
  if (remote_inbox_ != nullptr) {
    // Cross-shard egress: the destination's scheduler cannot take a
    // local event, so the packet rides the inbox stamped with its
    // arrival time.  Pushing at transmission-complete (not arrival)
    // time is what keeps the conservative window sound: prop_delay_ is
    // >= the shard lookahead, so the stamp always lands in a window the
    // destination has not started yet.  Every packet leaves the train
    // here, so tx_done_ stays 0 on a cross-shard link.
    remote_inbox_->push(ctx_.now() + prop_delay_, flight_.pop_front());
    start_transmission();
    return;
  }
  ++tx_done_;
  auto deliver = [this] { deliver_front(); };
  static_assert(sim::Scheduler::SmallCallback::fits_inline<decltype(deliver)>(),
                "propagation event must ride the small pool");
  ctx_.scheduler().schedule_in(prop_delay_, std::move(deliver));
  start_transmission();
}

void Link::deliver_front() {
  // Pop before dispatch: handle_packet may re-enter this link's
  // transmit() and push a new train entry.
  Packet p = flight_.pop_front();
  --tx_done_;
  dst_->handle_packet(std::move(p));
}

}  // namespace hwatch::net
