#include "net/queue.hpp"

#include <algorithm>
#include <cmath>

namespace hwatch::net {

EnqueueOutcome QueueDiscipline::enqueue(Packet&& p, sim::TimePs now) {
  const bool overflow = would_overflow(p) && !make_room(p);
  const EnqueueOutcome outcome =
      overflow ? EnqueueOutcome::kDropped : classify(p, now);
  if (outcome == EnqueueOutcome::kDropped) {
    ++stats_.dropped;
    stats_.bytes_dropped += p.size_bytes();
    if (p.kind == PacketKind::kProbe) {
      ++stats_.dropped_probes;
    } else if (p.is_data()) {
      ++stats_.dropped_data;
    } else {
      ++stats_.dropped_ctrl;
    }
    if (incidents_) incidents_->on_queue_drop(incident_queue_, now);
    return outcome;
  }
  if (outcome == EnqueueOutcome::kAcceptedMarked) {
    p.ip.ecn = Ecn::kCe;
    ++stats_.ecn_marked;
  }
  p.enqueue_time = now;
  bytes_ += p.size_bytes();
  ++stats_.enqueued;
  stats_.bytes_enqueued += p.size_bytes();
  if (service_class(p) > 0) {
    // Strict priority: behind the queued high-class packets, ahead of
    // every best-effort one.
    fifo_.insert(high_count_, std::move(p));
    ++high_count_;
  } else {
    fifo_.push_back(std::move(p));
  }
  stats_.max_len_pkts = std::max<std::uint64_t>(stats_.max_len_pkts,
                                                fifo_.size());
  stats_.max_len_bytes = std::max(stats_.max_len_bytes, bytes_);
  if (depth_hist_) depth_hist_->record(static_cast<double>(fifo_.size()));
  if (incidents_) incidents_->on_queue_depth(incident_queue_, fifo_.size(), now);
  return outcome;
}

std::optional<Packet> QueueDiscipline::dequeue(sim::TimePs now) {
  if (fifo_.empty()) return std::nullopt;
  Packet p = fifo_.pop_front();
  if (high_count_ > 0 && service_class(p) > 0) --high_count_;
  bytes_ -= p.size_bytes();
  ++stats_.dequeued;
  on_dequeue(p, now);
  if (incidents_) incidents_->on_queue_depth(incident_queue_, fifo_.size(), now);
  return p;
}

bool QueueDiscipline::evict_best_effort_tail() {
  for (std::size_t i = fifo_.size(); i > 0; --i) {
    const Packet& victim = fifo_.at(i - 1);
    if (service_class(victim) == 0) {
      ++stats_.dropped;
      stats_.bytes_dropped += victim.size_bytes();
      if (victim.kind == PacketKind::kProbe) {
        ++stats_.dropped_probes;
      } else if (victim.is_data()) {
        ++stats_.dropped_data;
      } else {
        ++stats_.dropped_ctrl;
      }
      bytes_ -= victim.size_bytes();
      fifo_.erase(i - 1);
      return true;
    }
  }
  return false;
}

EnqueueOutcome DropTailQueue::classify(const Packet& p, sim::TimePs now) {
  (void)p;
  (void)now;
  return EnqueueOutcome::kAccepted;  // capacity enforced by the base
}

EnqueueOutcome DctcpThresholdQueue::classify(const Packet& p,
                                             sim::TimePs now) {
  (void)now;
  // Step marking on the instantaneous queue length, as recommended for
  // DCTCP: mark when the queue (including this arrival) exceeds K.
  const bool above_k = k_bytes_ != QueueLimits::kUnlimited
                           ? len_bytes() + p.size_bytes() > k_bytes_
                           : len_packets() + 1 > k_pkts_;
  if (above_k && ecn_capable(p.ip.ecn)) {
    return EnqueueOutcome::kAcceptedMarked;
  }
  return EnqueueOutcome::kAccepted;
}

RedQueue::RedQueue(std::uint64_t capacity_pkts, const RedConfig& cfg,
                   std::uint64_t seed)
    : QueueDiscipline(capacity_pkts), cfg_(cfg), prng_state_(seed | 1) {}

RedQueue::RedQueue(QueueLimits limits, const RedConfig& cfg,
                   std::uint64_t seed)
    : QueueDiscipline(limits), cfg_(cfg), prng_state_(seed | 1) {}

double RedQueue::effective_len() const {
  if (cfg_.byte_mode) {
    return static_cast<double>(len_bytes()) /
           static_cast<double>(cfg_.mean_pkt_bytes);
  }
  return static_cast<double>(len_packets());
}

double RedQueue::next_uniform() {
  // xorshift64*: local deterministic stream, independent of scenario RNG
  // (a real switch's RED is independent of the hosts' randomness too).
  prng_state_ ^= prng_state_ >> 12;
  prng_state_ ^= prng_state_ << 25;
  prng_state_ ^= prng_state_ >> 27;
  const std::uint64_t x = prng_state_ * 0x2545F4914F6CDD1Dull;
  return static_cast<double>(x >> 11) / 9007199254740992.0;  // [0,1)
}

void RedQueue::update_avg(sim::TimePs now) {
  if (idle_) {
    // Decay the average as if `m` minimum-size packets had been serviced
    // during the idle period (Floyd's idle adjustment).
    const double idle_span = static_cast<double>(now - idle_since_);
    const double m =
        idle_span / static_cast<double>(std::max<sim::TimePs>(
                        cfg_.mean_pkt_time, 1));
    // Floyd's idle decay is defined via pow; the reproduction's
    // reference platform is x86-64/glibc.  hwlint: allow(fp-determinism)
    avg_ *= std::pow(1.0 - cfg_.weight, m);
    idle_ = false;
  } else {
    avg_ = (1.0 - cfg_.weight) * avg_ + cfg_.weight * effective_len();
  }
}

double RedQueue::mark_probability() const {
  if (avg_ < cfg_.min_th_pkts) return 0.0;
  if (avg_ < cfg_.max_th_pkts) {
    return cfg_.max_p * (avg_ - cfg_.min_th_pkts) /
           (cfg_.max_th_pkts - cfg_.min_th_pkts);
  }
  if (cfg_.gentle && avg_ < 2.0 * cfg_.max_th_pkts) {
    // Ramp linearly from max_p at max_th to 1 at 2*max_th.
    return cfg_.max_p +
           (1.0 - cfg_.max_p) * (avg_ - cfg_.max_th_pkts) / cfg_.max_th_pkts;
  }
  return 1.0;
}

EnqueueOutcome RedQueue::classify(const Packet& p, sim::TimePs now) {
  update_avg(now);

  double pb = mark_probability();
  // Byte mode (ns-2 RED): a packet's marking probability is proportional
  // to its share of the mean packet size, so small control packets and
  // probes are rarely chosen.
  if (cfg_.byte_mode && pb > 0.0 && pb < 1.0) {
    pb *= static_cast<double>(p.size_bytes()) /
          static_cast<double>(cfg_.mean_pkt_bytes);
    pb = std::min(pb, 1.0);
  }
  bool mark = false;
  if (pb >= 1.0) {
    mark = true;
  } else if (pb > 0.0) {
    ++count_;
    // Uniformize inter-mark gaps: p_a = p_b / (1 - count * p_b).
    const double denom = 1.0 - static_cast<double>(count_) * pb;
    const double pa = denom <= 0.0 ? 1.0 : std::min(1.0, pb / denom);
    mark = next_uniform() < pa;
  } else {
    count_ = -1;
  }

  if (!mark) return EnqueueOutcome::kAccepted;
  count_ = 0;
  if (cfg_.ecn && ecn_capable(p.ip.ecn)) {
    return EnqueueOutcome::kAcceptedMarked;
  }
  return EnqueueOutcome::kDropped;
}

void RedQueue::on_dequeue(const Packet& p, sim::TimePs now) {
  (void)p;
  if (empty()) {
    idle_ = true;
    idle_since_ = now;
  }
}

QdiscFactory make_droptail_factory(std::uint64_t capacity_pkts) {
  return [capacity_pkts] {
    return std::make_unique<DropTailQueue>(capacity_pkts);
  };
}

QdiscFactory make_dctcp_factory(std::uint64_t capacity_pkts,
                                std::uint64_t mark_k_pkts) {
  return [capacity_pkts, mark_k_pkts] {
    return std::make_unique<DctcpThresholdQueue>(capacity_pkts, mark_k_pkts);
  };
}

QdiscFactory make_red_factory(std::uint64_t capacity_pkts, RedConfig cfg) {
  return [capacity_pkts, cfg] {
    return std::make_unique<RedQueue>(capacity_pkts, cfg);
  };
}

}  // namespace hwatch::net
