// Growable ring buffer of Packets — the qdisc FIFO storage.
//
// Replaces std::deque<Packet>, whose libstdc++ implementation allocates
// and frees a 512-byte node roughly every three packets even when the
// queue depth is steady — exactly the churn the allocation-free hot
// path forbids.  The ring grows geometrically (power-of-two capacity,
// index masking) and never shrinks, so once a queue has seen its peak
// depth every enqueue/dequeue is allocation-free.
//
// Beyond push_back/pop_front it supports the two operations the
// priority band logic needs: insert at a logical position (urgent
// packets slot in behind the queued high-class ones) and erase at a
// logical position (best-effort tail eviction).  Both shift the smaller
// side, so they stay O(min(pos, size-pos)) like a deque insert.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace hwatch::net {

class PacketRing {
 public:
  PacketRing() = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Element at logical position `i` (0 = head / next to dequeue).
  Packet& at(std::size_t i) {
    assert(i < size_);
    return slots_[wrap(head_ + i)];
  }
  const Packet& at(std::size_t i) const {
    assert(i < size_);
    return slots_[wrap(head_ + i)];
  }

  Packet& front() { return at(0); }
  const Packet& front() const { return at(0); }
  Packet& back() { return at(size_ - 1); }
  const Packet& back() const { return at(size_ - 1); }

  void push_back(Packet&& p) {
    if (size_ == slots_.size()) grow();
    slots_[wrap(head_ + size_)] = std::move(p);
    ++size_;
  }

  Packet pop_front() {
    assert(size_ > 0);
    Packet p = std::move(slots_[head_]);
    head_ = wrap(head_ + 1);
    --size_;
    return p;
  }

  /// Inserts at logical position `pos` (0..size), shifting the smaller
  /// side of the ring by one slot.
  void insert(std::size_t pos, Packet&& p) {
    assert(pos <= size_);
    if (size_ == slots_.size()) grow();
    if (pos * 2 <= size_) {
      // Shift the head side down one slot (towards head-1).
      head_ = wrap(head_ + slots_.size() - 1);
      for (std::size_t i = 0; i < pos; ++i) {
        slots_[wrap(head_ + i)] = std::move(slots_[wrap(head_ + i + 1)]);
      }
    } else {
      // Shift the tail side up one slot.
      for (std::size_t i = size_; i > pos; --i) {
        slots_[wrap(head_ + i)] = std::move(slots_[wrap(head_ + i - 1)]);
      }
    }
    ++size_;
    slots_[wrap(head_ + pos)] = std::move(p);
  }

  /// Erases the element at logical position `pos`, shifting the smaller
  /// side of the ring by one slot.
  void erase(std::size_t pos) {
    assert(pos < size_);
    if (pos * 2 <= size_) {
      // Shift the head side up one slot (towards the erased hole).
      for (std::size_t i = pos; i > 0; --i) {
        slots_[wrap(head_ + i)] = std::move(slots_[wrap(head_ + i - 1)]);
      }
      head_ = wrap(head_ + 1);
    } else {
      for (std::size_t i = pos; i + 1 < size_; ++i) {
        slots_[wrap(head_ + i)] = std::move(slots_[wrap(head_ + i + 1)]);
      }
    }
    --size_;
  }

  /// Pre-sizes the ring so depths up to `n` never reallocate (rounded
  /// up to a power of two).  Used when the queue's hard packet bound is
  /// known at construction.
  void reserve(std::size_t n) {
    if (n <= slots_.size()) return;
    rebuild(round_up_pow2(n));
  }

 private:
  std::size_t wrap(std::size_t i) const { return i & (slots_.size() - 1); }

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t c = kMinCapacity;
    while (c < n) c <<= 1;
    return c;
  }

  void grow() { rebuild(slots_.empty() ? kMinCapacity : slots_.size() * 2); }

  void rebuild(std::size_t new_capacity) {
    std::vector<Packet> next(new_capacity);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(slots_[wrap(head_ + i)]);
    }
    slots_ = std::move(next);
    head_ = 0;
  }

  static constexpr std::size_t kMinCapacity = 16;

  std::vector<Packet> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace hwatch::net
