#include "net/shard_channel.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "net/node.hpp"

namespace hwatch::net {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ShardInbox::ShardInbox(std::size_t capacity)
    : ring_(round_up_pow2(std::max<std::size_t>(capacity, 2))) {
  mask_ = ring_.size() - 1;
}

void ShardInbox::push(sim::TimePs deliver_time, Packet&& p) {
  ++pushed_;
  const std::size_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t head = head_.load(std::memory_order_acquire);
  // Depth after this push, counting the overflow spill: the high-water
  // mark behind peak_depth() and the telemetry grow-capacity advice.
  const std::uint64_t depth_after =
      static_cast<std::uint64_t>(tail - head) + spill_.size() + 1;
  if (depth_after > peak_depth_) peak_depth_ = depth_after;
  if (tail - head >= ring_.size()) {
    // Ring full: spill instead of blocking.  The spill vector is only
    // touched by the producer during run phases and by the consumer
    // during drain phases; the epoch barrier orders the two.
    spill_.push_back(Item{deliver_time, std::move(p)});
    ++spilled_;
    return;
  }
  Item& slot = ring_[tail & mask_];
  slot.deliver_time = deliver_time;
  slot.pkt = std::move(p);
  tail_.store(tail + 1, std::memory_order_release);
}

bool ShardInbox::pop(Item& out) {
  const std::size_t head = head_.load(std::memory_order_relaxed);
  const std::size_t tail = tail_.load(std::memory_order_acquire);
  if (head != tail) {
    out = std::move(ring_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    ++popped_;
    return true;
  }
  if (!spill_.empty()) {
    out = std::move(spill_.back());
    spill_.pop_back();
    ++popped_;
    return true;
  }
  return false;
}

CrossShardChannel::CrossShardChannel(sim::SimContext& dst_ctx,
                                     Node* dst_node, std::size_t capacity)
    : dst_ctx_(dst_ctx), dst_node_(dst_node), inbox_(capacity) {
  if (dst_node_ == nullptr) {
    throw std::invalid_argument("CrossShardChannel: null destination node");
  }
}

void drain_cross_shard_channels(
    std::vector<CrossShardChannel*>& channels,
    std::vector<std::pair<Node*, ShardInbox::Item>>& scratch) {
  scratch.clear();
  for (CrossShardChannel* ch : channels) {
    ShardInbox::Item item;
    while (ch->inbox().pop(item)) {
      scratch.emplace_back(ch->dst_node(), std::move(item));
    }
  }
  if (scratch.empty()) return;
  // Deterministic total order over everything that arrived this window,
  // independent of producing link, ring-vs-spill path, or thread
  // timing: (arrival time, packet uid).  Uids are unique across shards
  // (per-shard striping), so the order is strict.
  std::sort(scratch.begin(), scratch.end(),
            [](const auto& a, const auto& b) {
              if (a.second.deliver_time != b.second.deliver_time) {
                return a.second.deliver_time < b.second.deliver_time;
              }
              return a.second.pkt.uid < b.second.pkt.uid;
            });
  sim::Scheduler& sched = channels.front()->dst_ctx().scheduler();
  for (auto& [node, item] : scratch) {
    assert(item.deliver_time >= sched.now());
    auto deliver = [node, p = std::move(item.pkt)]() mutable {
      node->handle_packet(std::move(p));
    };
    static_assert(
        sim::Scheduler::Callback::fits_inline<decltype(deliver)>(),
        "cross-shard delivery event must be allocation-free");
    sched.schedule_at(item.deliver_time, std::move(deliver));
  }
  scratch.clear();
}

}  // namespace hwatch::net
