// Packet model.
//
// Packets carry an Ethernet+IP framing model and a TCP header with the
// exact fields HWatch manipulates: the 16-bit receive-window field, the
// window-scale shift negotiated in SYN segments, the urgent pointer the
// paper earmarks as a side channel, ECN codepoints and the checksum.
// Sequence/ack numbers count bytes in 64 bits (no wraparound handling —
// a documented simplification; flows here are far below 2^32 anyway, and
// 64-bit arithmetic keeps invariants assertable).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "sim/time.hpp"

namespace hwatch::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Framing constants.  A full data segment is 1500 bytes on the wire,
/// matching the paper's packet size; a Probe1 is 38 bytes (ETH+IP, empty).
inline constexpr std::uint32_t kEthHeaderBytes = 18;
inline constexpr std::uint32_t kIpHeaderBytes = 20;
inline constexpr std::uint32_t kTcpHeaderBytes = 20;
inline constexpr std::uint32_t kTcpFrameOverhead =
    kEthHeaderBytes + kIpHeaderBytes + kTcpHeaderBytes;  // 58
inline constexpr std::uint32_t kProbeFrameBytes =
    kEthHeaderBytes + kIpHeaderBytes;  // 38, "Probe1"
inline constexpr std::uint32_t kDefaultMss = 1442;  // 1442 + 58 = 1500

/// IP ECN codepoints (RFC 3168).
enum class Ecn : std::uint8_t {
  kNotEct = 0,  // not ECN-capable transport
  kEct1 = 1,
  kEct0 = 2,
  kCe = 3,  // congestion experienced
};

inline bool ecn_capable(Ecn e) { return e != Ecn::kNotEct; }

struct IpHeader {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Ecn ecn = Ecn::kNotEct;
  std::uint8_t dscp = 0;
  std::uint8_t ttl = 64;
};

/// One SACK block: received bytes [start, end).
struct SackBlock {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  bool empty() const { return start >= end; }
  friend bool operator==(const SackBlock&, const SackBlock&) = default;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  bool syn = false;
  bool ack_flag = false;
  bool fin = false;
  bool rst = false;
  bool ece = false;  // ECN-echo
  bool cwr = false;  // congestion window reduced
  bool urg = false;
  std::uint16_t urgent_ptr = 0;
  /// Raw 16-bit window field; effective window = rwnd_raw << peer's
  /// negotiated shift (see wscale).
  std::uint16_t rwnd_raw = 0;
  /// Window-scale option value; meaningful only on SYN / SYN-ACK.
  std::uint8_t wscale = 0;
  std::uint16_t checksum = 0;

  /// SACK option (RFC 2018): up to 3 blocks of received-but-unacked
  /// data, most recent first; sack_count = 0 means no option present.
  /// On SYN/SYN-ACK, sack_permitted advertises support.
  std::array<SackBlock, 3> sack{};
  std::uint8_t sack_count = 0;
  bool sack_permitted = false;
};

enum class PacketKind : std::uint8_t {
  kTcp = 0,
  kProbe = 1,  // raw-IP hypervisor probe (HWatch Probe1)
};

struct Packet {
  std::uint64_t uid = 0;  // unique per simulation, for tracing
  PacketKind kind = PacketKind::kTcp;
  IpHeader ip;
  TcpHeader tcp;
  std::uint32_t payload_bytes = 0;

  // --- bookkeeping (not on the wire) ---
  sim::TimePs sent_time = 0;     // when the transport emitted it
  sim::TimePs enqueue_time = 0;  // last qdisc admission (queue-delay stats)
  std::uint32_t probe_train_id = 0;  // which probe train this belongs to

  /// Total frame size on the wire.
  std::uint32_t size_bytes() const {
    return kind == PacketKind::kProbe ? kProbeFrameBytes + payload_bytes
                                      : kTcpFrameOverhead + payload_bytes;
  }

  bool is_data() const {
    return kind == PacketKind::kTcp && payload_bytes > 0;
  }
  bool is_pure_ack() const {
    return kind == PacketKind::kTcp && tcp.ack_flag && payload_bytes == 0 &&
           !tcp.syn && !tcp.fin;
  }
  bool is_syn() const { return kind == PacketKind::kTcp && tcp.syn; }

  /// Short human-readable form for traces.
  std::string describe() const;
};

/// 4-tuple flow identity, the key of the HWatch hypervisor flow table.
struct FlowKey {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  /// Key of the reverse direction (ACK path).
  FlowKey reversed() const { return FlowKey{dst, src, dst_port, src_port}; }
};

/// Flow key of a packet as seen on the wire.
inline FlowKey flow_key_of(const Packet& p) {
  return FlowKey{p.ip.src, p.ip.dst, p.tcp.src_port, p.tcp.dst_port};
}

/// The flow key packed into two words — the layer-neutral identity the
/// sim-level SpanTracer keys its flow registry on (sim can't see net
/// types).  Lossless: hi = src<<32|dst, lo = sport<<16|dport.
inline std::pair<std::uint64_t, std::uint64_t> flow_key_words(
    const FlowKey& k) {
  return {(std::uint64_t{k.src} << 32) | k.dst,
          (std::uint64_t{k.src_port} << 16) | k.dst_port};
}

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    std::uint64_t h = (std::uint64_t{k.src} << 32) | k.dst;
    h ^= (std::uint64_t{k.src_port} << 16 | k.dst_port) * 0x9E3779B97F4A7C15ull;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace hwatch::net
