// Packet tracing — the ns-2 trace-file facility, as a filter.
//
// Install a PacketTracer on any host to record the packets crossing its
// hypervisor hooks (both directions), optionally filtered by a
// predicate, and dump them as one-line-per-packet text for debugging or
// offline analysis.  Tests also use it to assert on exact packet
// sequences.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "net/filter.hpp"
#include "net/packet.hpp"
#include "sim/context.hpp"
#include "sim/unique_function.hpp"

namespace hwatch::net {

struct TraceEntry {
  sim::TimePs time;
  bool outbound;  // false = inbound
  Packet packet;  // header snapshot at hook time
};

struct TracerConfig {
  /// Master switch, checked before anything else per packet: a disabled
  /// tracer costs one branch per hook, never a predicate call.  (The
  /// tracer is a filter, so removing it from the chain is the other way
  /// to turn it off; this flag lets owners keep it installed.)
  bool enabled = true;
  /// Stop recording beyond this many entries (the counters keep
  /// counting); protects long runs from unbounded memory.
  std::size_t max_entries = 100'000;
  /// Record only packets matching this predicate (default: all).
  /// Move-only, which makes TracerConfig itself move-only.
  sim::UniqueFunction<bool(const Packet&)> predicate;
  /// Structured event-trace mode: when set, every matching packet is
  /// written immediately as one JSON object per line (JSONL) to this
  /// stream — unbounded by max_entries, so long runs can stream to a
  /// file and be analyzed offline with tools/trace_inspect.
  std::ostream* jsonl_sink = nullptr;
};

class PacketTracer final : public PacketFilter {
 public:
  explicit PacketTracer(sim::SimContext& ctx, TracerConfig config = {})
      : ctx_(ctx), cfg_(std::move(config)) {}

  FilterVerdict on_outbound(Packet& p) override {
    record(p, /*outbound=*/true);
    return FilterVerdict::kPass;
  }
  FilterVerdict on_inbound(Packet& p) override {
    record(p, /*outbound=*/false);
    return FilterVerdict::kPass;
  }

  const std::vector<TraceEntry>& entries() const { return entries_; }
  std::uint64_t total_seen() const { return seen_; }
  bool truncated() const { return seen_ > entries_.size(); }
  void clear() {
    entries_.clear();
    seen_ = 0;
    counts_ = Counts{};
  }

  /// Packets counted per rough category over the whole run.
  struct Counts {
    std::uint64_t data = 0;
    std::uint64_t acks = 0;
    std::uint64_t syn = 0;   // SYN and SYN-ACK
    std::uint64_t fin = 0;
    std::uint64_t probes = 0;
    std::uint64_t ce_marked = 0;
  };
  const Counts& counts() const { return counts_; }

  /// One line per recorded entry:
  ///   <time_s> <+|-> <describe()>
  /// ('+' = outbound from the traced host, '-' = inbound to it).
  void dump(std::ostream& os) const;

  /// Recorded entries as JSONL (one JSON object per line), the same
  /// format the streaming `jsonl_sink` mode emits.
  void dump_jsonl(std::ostream& os) const;

  /// Writes one packet as a single-line JSON object:
  ///   {"t_ps":..,"dir":"out","uid":..,"kind":"tcp","src":..,"dst":..,
  ///    "sport":..,"dport":..,"seq":..,"ack":..,"flags":"SA","payload":..,
  ///    "wire":..,"ecn":"ce","rwnd":..,"train":..}
  static void write_jsonl(std::ostream& os, sim::TimePs time, bool outbound,
                          const Packet& p);

 private:
  void record(const Packet& p, bool outbound);

  sim::SimContext& ctx_;
  TracerConfig cfg_;
  std::vector<TraceEntry> entries_;
  std::uint64_t seen_ = 0;
  Counts counts_;
};

}  // namespace hwatch::net
