// NetFilter-style packet hooks on hosts.
//
// The paper implements HWatch as a Linux NetFilter kernel module (or an
// OvS datapath patch) sitting between the guest VMs and the NIC.  We model
// that vantage point as a PacketFilter chain on each Host: every outbound
// packet from the local transport agents passes the OUT hook, and every
// inbound packet passes the IN hook before demultiplexing.  Filters may
// modify headers in place (the HWatch rwnd rewrite), consume packets
// (probe absorption), or drop them (fault injection in tests).
#pragma once

#include "net/packet.hpp"

namespace hwatch::net {

enum class FilterVerdict : std::uint8_t {
  kPass = 0,  // continue down the chain / deliver
  kConsume,   // filter took ownership (e.g. held or absorbed)
  kDrop,      // discard, counted as a filter drop
};

class PacketFilter {
 public:
  virtual ~PacketFilter() = default;

  /// Outbound hook: packet leaving the local agents towards the NIC.
  virtual FilterVerdict on_outbound(Packet& p) = 0;

  /// Inbound hook: packet arriving from the NIC before agent demux.
  virtual FilterVerdict on_inbound(Packet& p) = 0;
};

}  // namespace hwatch::net
