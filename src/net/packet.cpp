#include "net/packet.hpp"

#include <sstream>

namespace hwatch::net {

std::string Packet::describe() const {
  std::ostringstream os;
  if (kind == PacketKind::kProbe) {
    os << "PROBE " << ip.src << "->" << ip.dst << " train="
       << probe_train_id;
  } else {
    os << (tcp.syn ? (tcp.ack_flag ? "SYNACK" : "SYN")
           : tcp.fin ? "FIN"
           : payload_bytes > 0 ? "DATA"
                               : "ACK");
    os << " " << ip.src << ":" << tcp.src_port << "->" << ip.dst << ":"
       << tcp.dst_port << " seq=" << tcp.seq << " ack=" << tcp.ack
       << " len=" << payload_bytes << " rwnd=" << tcp.rwnd_raw;
    if (tcp.ece) os << " ECE";
    if (tcp.cwr) os << " CWR";
  }
  if (ip.ecn == Ecn::kCe) os << " CE";
  return os.str();
}

}  // namespace hwatch::net
