#include "net/checksum.hpp"

#include <array>

namespace hwatch::net {

namespace {

std::uint32_t add16(std::uint32_t sum, std::uint16_t word) {
  sum += word;
  return sum;
}

std::uint16_t fold(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

/// Serializes the checksummed header content into 16-bit words.
std::array<std::uint16_t, 18> header_words(const Packet& p) {
  const TcpHeader& t = p.tcp;
  std::uint16_t flags = 0;
  flags |= t.syn ? 0x0001 : 0;
  flags |= t.ack_flag ? 0x0002 : 0;
  flags |= t.fin ? 0x0004 : 0;
  flags |= t.rst ? 0x0008 : 0;
  flags |= t.ece ? 0x0010 : 0;
  flags |= t.cwr ? 0x0020 : 0;
  flags |= t.urg ? 0x0040 : 0;
  return {
      // pseudo-header
      static_cast<std::uint16_t>(p.ip.src >> 16),
      static_cast<std::uint16_t>(p.ip.src & 0xFFFF),
      static_cast<std::uint16_t>(p.ip.dst >> 16),
      static_cast<std::uint16_t>(p.ip.dst & 0xFFFF),
      static_cast<std::uint16_t>(p.payload_bytes >> 16),
      static_cast<std::uint16_t>(p.payload_bytes & 0xFFFF),
      // transport header
      t.src_port,
      t.dst_port,
      static_cast<std::uint16_t>(t.seq >> 48),
      static_cast<std::uint16_t>(t.seq >> 32),
      static_cast<std::uint16_t>(t.seq >> 16),
      static_cast<std::uint16_t>(t.seq),
      static_cast<std::uint16_t>(t.ack >> 32),
      static_cast<std::uint16_t>(t.ack >> 16),
      static_cast<std::uint16_t>(t.ack),
      flags,
      t.rwnd_raw,
      static_cast<std::uint16_t>((std::uint16_t{t.wscale} << 8) |
                                 t.urgent_ptr),
  };
}

}  // namespace

std::uint16_t tcp_checksum(const Packet& p) {
  std::uint32_t sum = 0;
  for (std::uint16_t w : header_words(p)) sum = add16(sum, w);
  return static_cast<std::uint16_t>(~fold(sum));
}

void stamp_checksum(Packet& p) { p.tcp.checksum = tcp_checksum(p); }

bool verify_checksum(const Packet& p) {
  return p.tcp.checksum == tcp_checksum(p);
}

std::uint16_t checksum_adjust(std::uint16_t checksum, std::uint16_t old_word,
                              std::uint16_t new_word) {
  // RFC 1624 eqn. 3: HC' = ~(C + (-m) + m') computed in ones' complement.
  std::uint32_t sum = static_cast<std::uint16_t>(~checksum);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  return static_cast<std::uint16_t>(~fold(sum));
}

}  // namespace hwatch::net
