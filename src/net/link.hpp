// Unidirectional link: qdisc + serializing transmitter + propagation.
//
// A Link models one switch/NIC output port.  Packets admitted by the
// queue discipline are serialized one at a time at the link rate, then
// delivered to the destination node after the propagation delay.  Busy
// time is accumulated so samplers can report utilization exactly.
//
// In-flight packets form a train: once dequeued from the qdisc they
// live in `flight_` (a FIFO ring) until delivery, so the per-packet
// tx-complete and propagation events are tiny `[this]` captures in the
// scheduler's small-callback pool instead of 176-byte packet-carrying
// closures.  Event times, counts and ordering are identical to the
// packet-in-callback formulation — the train only changes where the
// bytes wait — so traces and manifests do not move by a byte.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/packet_ring.hpp"
#include "net/queue.hpp"
#include "sim/annotations.hpp"
#include "sim/context.hpp"
#include "sim/units.hpp"

namespace hwatch::net {

class Node;
class ShardInbox;

class HWATCH_SHARD_CONFINED Link {
 public:
  Link(sim::SimContext& ctx, std::string name, sim::DataRate rate,
       sim::TimePs prop_delay, std::unique_ptr<QueueDiscipline> qdisc,
       Node* dst);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Entry point for the owning node: queue the packet for transmission.
  /// Returns the qdisc's verdict (callers normally ignore it; drops are
  /// visible in stats, as on real hardware).
  EnqueueOutcome transmit(Packet&& p);

  QueueDiscipline& qdisc() { return *qdisc_; }
  const QueueDiscipline& qdisc() const { return *qdisc_; }

  sim::DataRate rate() const { return rate_; }
  sim::TimePs propagation_delay() const { return prop_delay_; }
  const std::string& name() const { return name_; }
  Node* destination() const { return dst_; }

  std::uint64_t bytes_delivered() const { return bytes_delivered_; }
  std::uint64_t packets_delivered() const { return packets_delivered_; }

  /// Cumulative time the transmitter has spent serializing packets.
  /// utilization over [t0,t1] = (busy(t1) - busy(t0)) / (t1 - t0).
  sim::TimePs busy_time() const { return busy_time_; }

  /// Marks this link as a cross-shard egress: the destination node lives
  /// in another shard, and completed transmissions are pushed into
  /// `inbox` stamped with their arrival time (now + propagation delay)
  /// instead of being scheduled as a local propagation event.  The
  /// intra-shard fast path is untouched when unset (the default).
  void set_remote_inbox(ShardInbox* inbox) { remote_inbox_ = inbox; }
  bool is_cross_shard() const { return remote_inbox_ != nullptr; }

 private:
  void start_transmission();
  void on_transmission_complete();
  void deliver_front();

  sim::SimContext& ctx_;
  std::string name_;
  sim::DataRate rate_;
  sim::TimePs prop_delay_;
  std::unique_ptr<QueueDiscipline> qdisc_;
  Node* dst_;
  ShardInbox* remote_inbox_ = nullptr;
  // Shared per-context event-type counters (one branch when disabled).
  sim::Counter& tx_events_;
  sim::Counter& prop_events_;
  // The packet train: entries [0, tx_done_) have finished serializing
  // and are propagating towards dst_ (oldest first); the entry at
  // tx_done_, if any, is on the wire.  Deliveries pop the front —
  // tx-end times are monotone along one link, so propagation arrivals
  // are FIFO and the ring order is the delivery order.
  PacketRing flight_;
  std::size_t tx_done_ = 0;
  bool transmitting_ = false;
  sim::TimePs busy_time_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t packets_delivered_ = 0;
};

}  // namespace hwatch::net
