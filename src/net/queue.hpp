// Queue-discipline (AQM) interface for switch output ports.
//
// Three implementations cover the paper's comparison set:
//   DropTailQueue       — plain FIFO tail drop (baseline "TCP-DropTail")
//   RedQueue            — RED with optional ECN marking ("TCP-RED", and the
//                         WRED-style marking HWatch relies on)
//   DctcpThresholdQueue — instantaneous step marking at threshold K
//                         (the DCTCP switch configuration)
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "net/packet.hpp"
#include "net/packet_ring.hpp"
#include "sim/incident_hooks.hpp"
#include "sim/metrics.hpp"
#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace hwatch::net {

enum class EnqueueOutcome : std::uint8_t {
  kAccepted = 0,
  kAcceptedMarked,  // accepted and CE-marked (ECN)
  kDropped,
};

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t ecn_marked = 0;
  std::uint64_t bytes_enqueued = 0;
  std::uint64_t bytes_dropped = 0;
  std::uint64_t max_len_pkts = 0;
  std::uint64_t max_len_bytes = 0;
  // Drop breakdown (diagnosing who suffers when a buffer overflows).
  std::uint64_t dropped_data = 0;
  std::uint64_t dropped_probes = 0;
  std::uint64_t dropped_ctrl = 0;  // SYN / SYN-ACK / pure ACK / FIN
};

/// Hard buffer bound.  Commodity switches bound their buffers in bytes;
/// ns-2-style models bound them in packets.  Either (or both) limits can
/// be active; kUnlimited disables one dimension.
struct QueueLimits {
  static constexpr std::uint64_t kUnlimited = UINT64_MAX;
  std::uint64_t packets = kUnlimited;
  std::uint64_t bytes = kUnlimited;

  static QueueLimits in_packets(std::uint64_t pkts) {
    return QueueLimits{pkts, kUnlimited};
  }
  static QueueLimits in_bytes(std::uint64_t bytes) {
    return QueueLimits{kUnlimited, bytes};
  }
};

class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  /// Admits, marks or drops the packet.  The hard capacity (packets
  /// and/or bytes) is enforced here; subclasses only make the AQM
  /// mark-or-drop decision.  On kDropped the packet is destroyed
  /// (accounted in stats), mirroring a real switch.
  EnqueueOutcome enqueue(Packet&& p, sim::TimePs now);

  /// Removes the head-of-line packet, if any.
  std::optional<Packet> dequeue(sim::TimePs now);

  std::size_t len_packets() const { return fifo_.size(); }
  std::uint64_t len_bytes() const { return bytes_; }
  bool empty() const { return fifo_.empty(); }

  const QueueStats& stats() const { return stats_; }

  /// Observability hook: when attached, every accepted enqueue records
  /// the post-enqueue queue length (packets) into `h`.  Unattached (the
  /// default) the hot path pays a single null check.
  void attach_depth_histogram(sim::Histogram* h) { depth_hist_ = h; }

  /// Incident hook: when attached, drops and post-enqueue/dequeue
  /// depths feed the sink under id `queue` (handed out by the sink at
  /// registration).  Same discipline as the histogram: unattached, each
  /// site costs one null check.
  void attach_incident_sink(sim::IncidentSink* sink, std::uint32_t queue) {
    incidents_ = sink;
    incident_queue_ = queue;
  }

  const QueueLimits& limits() const { return limits_; }
  /// Hard capacity in packets (kUnlimited when byte-bounded only).
  std::uint64_t capacity_packets() const { return limits_.packets; }

  virtual std::string name() const = 0;

 protected:
  explicit QueueDiscipline(QueueLimits limits) : limits_(limits) {
    // Packet-bounded queues never reallocate: pre-size the ring to the
    // hard bound (capped so a pathological bound can't balloon memory).
    if (limits_.packets != QueueLimits::kUnlimited) {
      fifo_.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(limits_.packets, 65536)));
    }
  }
  explicit QueueDiscipline(std::uint64_t capacity_pkts)
      : QueueDiscipline(QueueLimits::in_packets(capacity_pkts)) {}

  /// AQM decision for an arriving packet that fits the hard bound.
  virtual EnqueueOutcome classify(const Packet& p, sim::TimePs now) = 0;

  /// Hook invoked after a dequeue (e.g. RED idle-time tracking).
  virtual void on_dequeue(const Packet& p, sim::TimePs now) {
    (void)p;
    (void)now;
  }

  /// Service class of a packet: 0 = best effort; any higher class is
  /// served strictly before it (used by PriorityQueue).  FIFO within a
  /// class.
  virtual int service_class(const Packet& p) const {
    (void)p;
    return 0;
  }

  bool would_overflow(const Packet& p) const {
    return fifo_.size() + 1 > limits_.packets ||
           bytes_ + p.size_bytes() > limits_.bytes;
  }

  /// Last-resort admission hook: called when `p` would overflow the
  /// hard bound; return true after making room (push-out) to admit it
  /// anyway.  Default: no preemption.
  virtual bool make_room(const Packet& p) {
    (void)p;
    return false;
  }

  /// Evicts the most recently queued best-effort (class-0) packet,
  /// accounting it as a drop.  Returns false when none is queued.
  bool evict_best_effort_tail();

 private:
  PacketRing fifo_;  // grow-only ring: steady-state churn is alloc-free
  std::uint64_t bytes_ = 0;
  std::size_t high_count_ = 0;  // packets of class > 0 at the head
  QueueLimits limits_;
  QueueStats stats_;
  sim::Histogram* depth_hist_ = nullptr;
  sim::IncidentSink* incidents_ = nullptr;
  std::uint32_t incident_queue_ = 0;
};

/// Plain tail-drop FIFO.
class DropTailQueue final : public QueueDiscipline {
 public:
  explicit DropTailQueue(std::uint64_t capacity_pkts)
      : QueueDiscipline(capacity_pkts) {}
  explicit DropTailQueue(QueueLimits limits) : QueueDiscipline(limits) {}
  std::string name() const override { return "droptail"; }

 protected:
  EnqueueOutcome classify(const Packet& p, sim::TimePs now) override;
};

/// DCTCP-style step marking: CE-mark every ECT packet that arrives when
/// the instantaneous queue length is at or above threshold K; tail-drop
/// at capacity.  K is in packets or bytes depending on the constructor.
/// Non-ECT packets are never marked early.
class DctcpThresholdQueue final : public QueueDiscipline {
 public:
  DctcpThresholdQueue(std::uint64_t capacity_pkts, std::uint64_t mark_k_pkts)
      : QueueDiscipline(capacity_pkts), k_pkts_(mark_k_pkts) {}
  DctcpThresholdQueue(QueueLimits limits, std::uint64_t mark_k_bytes)
      : QueueDiscipline(limits),
        k_pkts_(QueueLimits::kUnlimited),
        k_bytes_(mark_k_bytes) {}
  std::string name() const override { return "dctcp-k"; }
  std::uint64_t threshold() const { return k_pkts_; }
  std::uint64_t threshold_bytes() const { return k_bytes_; }

 protected:
  EnqueueOutcome classify(const Packet& p, sim::TimePs now) override;

 private:
  std::uint64_t k_pkts_;
  std::uint64_t k_bytes_ = QueueLimits::kUnlimited;
};

struct RedConfig {
  double min_th_pkts = 0;     // below: never mark/drop
  double max_th_pkts = 0;     // above: mark/drop with prob 1 (or gentle)
  double max_p = 0.1;         // marking prob at max_th
  double weight = 0.002;      // EWMA weight w_q
  bool gentle = true;         // ramp to 1 over [max_th, 2*max_th]
  bool ecn = true;            // mark ECT packets instead of dropping
  /// Mean packet service time, for the idle-period average decay
  /// (Floyd's "small packets per second" estimate).
  sim::TimePs mean_pkt_time = sim::microseconds(1);
  /// Byte mode (ns-2 `queue-in-bytes_`): the averaged queue length is
  /// len_bytes / mean_pkt_bytes, so small control packets contribute
  /// proportionally to their size.  Thresholds stay in mean-packet units.
  bool byte_mode = false;
  std::uint32_t mean_pkt_bytes = 1500;
};

/// Random Early Detection (Floyd & Jacobson) with ECN support and gentle
/// mode, following the ns-2 implementation's structure: EWMA average queue,
/// count-since-last-mark bias, idle-time decay.
class RedQueue final : public QueueDiscipline {
 public:
  RedQueue(std::uint64_t capacity_pkts, const RedConfig& cfg,
           std::uint64_t seed = 0x9E3779B9);
  RedQueue(QueueLimits limits, const RedConfig& cfg,
           std::uint64_t seed = 0x9E3779B9);

  std::string name() const override { return "red"; }
  double avg() const { return avg_; }
  const RedConfig& config() const { return cfg_; }

 protected:
  EnqueueOutcome classify(const Packet& p, sim::TimePs now) override;
  void on_dequeue(const Packet& p, sim::TimePs now) override;

 private:
  void update_avg(sim::TimePs now);
  double mark_probability() const;
  double next_uniform();
  double effective_len() const;

  RedConfig cfg_;
  double avg_ = 0;
  std::int64_t count_ = -1;  // arrivals since last mark; -1 per Floyd
  sim::TimePs idle_since_ = 0;
  bool idle_ = true;
  std::uint64_t prng_state_;
};

/// Convenience factory type used by topology builders.  Move-only and
/// const-invocable (builders hold factories by const reference); not a
/// hot-path call, but std::function would be the last copyable-callable
/// holdout in the packet path's construction chain.
using QdiscFactory =
    sim::UniqueFunction<std::unique_ptr<QueueDiscipline>() const>;

QdiscFactory make_droptail_factory(std::uint64_t capacity_pkts);
QdiscFactory make_dctcp_factory(std::uint64_t capacity_pkts,
                                std::uint64_t mark_k_pkts);
QdiscFactory make_red_factory(std::uint64_t capacity_pkts, RedConfig cfg);

}  // namespace hwatch::net
