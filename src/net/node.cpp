#include "net/node.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hwatch::net {

Link* Switch::pick(const std::vector<Link*>& hops, const Packet& p) {
  if (hops.empty()) return nullptr;
  if (hops.size() == 1) return hops.front();
  // ECMP: hash the 4-tuple so a flow sticks to one path.
  const std::size_t h = FlowKeyHash{}(flow_key_of(p));
  return hops[h % hops.size()];
}

void Switch::add_range_route(NodeId lo, NodeId hi, Link* link) {
  if (lo > hi || link == nullptr) {
    throw std::invalid_argument("Switch::add_range_route: bad range/link");
  }
  if (!range_routes_.empty()) {
    RangeRoute& last = range_routes_.back();
    if (last.lo == lo && last.hi == hi) {  // grow the ECMP group
      last.hops.push_back(link);
      return;
    }
    if (lo <= last.hi) {
      throw std::invalid_argument(
          "Switch::add_range_route: ranges must be ascending and disjoint");
    }
  }
  range_routes_.push_back(RangeRoute{lo, hi, {link}});
}

Link* Switch::select_route(const Packet& p) const {
  // Lookup order mirrors real forwarding tables: longest-prefix first
  // (exact host), then aggregates (ranges), then the default ECMP group.
  const auto it = routes_.find(p.ip.dst);
  if (it != routes_.end() && !it->second.empty()) {
    return pick(it->second, p);
  }
  if (!range_routes_.empty()) {
    // Binary search over the sorted disjoint ranges.
    const auto r = std::lower_bound(
        range_routes_.begin(), range_routes_.end(), p.ip.dst,
        [](const RangeRoute& range, NodeId dst) { return range.hi < dst; });
    if (r != range_routes_.end() && r->lo <= p.ip.dst) {
      return pick(r->hops, p);
    }
  }
  return pick(default_routes_, p);
}

void Switch::handle_packet(Packet&& p) {
  if (p.ip.ttl == 0) {
    ++routeless_drops_;
    return;
  }
  --p.ip.ttl;
  Link* out = select_route(p);
  if (out == nullptr) {
    ++routeless_drops_;
    return;
  }
  ++forwarded_;
  out->transmit(std::move(p));
}

void Host::bind(std::uint16_t port, AgentHandler handler) {
  if (agents_.contains(port)) {
    throw std::invalid_argument("Host::bind: port already bound");
  }
  agents_.emplace(port, std::move(handler));
}

void Host::unbind(std::uint16_t port) { agents_.erase(port); }

void Host::send(Packet&& p) {
  for (PacketFilter* f : filters_) {
    switch (f->on_outbound(p)) {
      case FilterVerdict::kPass:
        break;
      case FilterVerdict::kConsume:
        return;
      case FilterVerdict::kDrop:
        ++filter_drops_;
        return;
    }
  }
  send_raw(std::move(p));
}

void Host::send_raw(Packet&& p) {
  assert(nic_ != nullptr && "Host has no NIC link");
  nic_->transmit(std::move(p));
}

void Host::handle_packet(Packet&& p) {
  for (PacketFilter* f : filters_) {
    switch (f->on_inbound(p)) {
      case FilterVerdict::kPass:
        break;
      case FilterVerdict::kConsume:
        return;
      case FilterVerdict::kDrop:
        ++filter_drops_;
        return;
    }
  }
  auto it = agents_.find(p.tcp.dst_port);
  if (it == agents_.end()) {
    ++no_agent_drops_;
    return;
  }
  ++delivered_;
  it->second(std::move(p));
}

}  // namespace hwatch::net
