#include "net/node.hpp"

#include <cassert>
#include <stdexcept>

namespace hwatch::net {

Link* Switch::select_route(const Packet& p) const {
  auto it = routes_.find(p.ip.dst);
  if (it == routes_.end() || it->second.empty()) return nullptr;
  const auto& hops = it->second;
  if (hops.size() == 1) return hops.front();
  // ECMP: hash the 4-tuple so a flow sticks to one path.
  const std::size_t h = FlowKeyHash{}(flow_key_of(p));
  return hops[h % hops.size()];
}

void Switch::handle_packet(Packet&& p) {
  if (p.ip.ttl == 0) {
    ++routeless_drops_;
    return;
  }
  --p.ip.ttl;
  Link* out = select_route(p);
  if (out == nullptr) {
    ++routeless_drops_;
    return;
  }
  ++forwarded_;
  out->transmit(std::move(p));
}

void Host::bind(std::uint16_t port, AgentHandler handler) {
  if (agents_.contains(port)) {
    throw std::invalid_argument("Host::bind: port already bound");
  }
  agents_.emplace(port, std::move(handler));
}

void Host::unbind(std::uint16_t port) { agents_.erase(port); }

void Host::send(Packet&& p) {
  for (PacketFilter* f : filters_) {
    switch (f->on_outbound(p)) {
      case FilterVerdict::kPass:
        break;
      case FilterVerdict::kConsume:
        return;
      case FilterVerdict::kDrop:
        ++filter_drops_;
        return;
    }
  }
  send_raw(std::move(p));
}

void Host::send_raw(Packet&& p) {
  assert(nic_ != nullptr && "Host has no NIC link");
  nic_->transmit(std::move(p));
}

void Host::handle_packet(Packet&& p) {
  for (PacketFilter* f : filters_) {
    switch (f->on_inbound(p)) {
      case FilterVerdict::kPass:
        break;
      case FilterVerdict::kConsume:
        return;
      case FilterVerdict::kDrop:
        ++filter_drops_;
        return;
    }
  }
  auto it = agents_.find(p.tcp.dst_port);
  if (it == agents_.end()) {
    ++no_agent_drops_;
    return;
  }
  ++delivered_;
  it->second(std::move(p));
}

}  // namespace hwatch::net
