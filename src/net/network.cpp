#include "net/network.hpp"

#include <limits>
#include <stdexcept>

namespace hwatch::net {

Host& Network::add_host(const std::string& name) {
  const NodeId id = id_base_ + static_cast<NodeId>(nodes_.size());
  auto host = std::make_unique<Host>(id, name);
  Host* ptr = host.get();
  nodes_.push_back(std::move(host));
  adjacency_.emplace_back();
  hosts_.push_back(ptr);
  return *ptr;
}

Switch& Network::add_switch(const std::string& name) {
  const NodeId id = id_base_ + static_cast<NodeId>(nodes_.size());
  auto sw = std::make_unique<Switch>(id, name);
  Switch* ptr = sw.get();
  nodes_.push_back(std::move(sw));
  adjacency_.emplace_back();
  switches_.push_back(ptr);
  return *ptr;
}

Network::DuplexLink Network::connect(Node& a, Node& b, sim::DataRate rate,
                                     sim::TimePs prop_delay,
                                     const QdiscFactory& make_qdisc) {
  auto fwd = std::make_unique<Link>(ctx_, a.name() + "->" + b.name(), rate,
                                    prop_delay, make_qdisc(), &b);
  auto bwd = std::make_unique<Link>(ctx_, b.name() + "->" + a.name(), rate,
                                    prop_delay, make_qdisc(), &a);
  Link* f = fwd.get();
  Link* w = bwd.get();
  links_.push_back(std::move(fwd));
  links_.push_back(std::move(bwd));
  adjacency_[a.id() - id_base_].push_back(Edge{b.id(), f});
  adjacency_[b.id() - id_base_].push_back(Edge{a.id(), w});
  if (auto* ha = dynamic_cast<Host*>(&a)) ha->set_nic(f);
  if (auto* hb = dynamic_cast<Host*>(&b)) hb->set_nic(w);
  return DuplexLink{f, w};
}

Link* Network::connect_cross_shard(Node& local, Node& remote_dst,
                                   sim::DataRate rate, sim::TimePs prop_delay,
                                   const QdiscFactory& make_qdisc,
                                   ShardInbox* inbox) {
  if (inbox == nullptr) {
    throw std::invalid_argument("connect_cross_shard: null inbox");
  }
  auto link = std::make_unique<Link>(
      ctx_, local.name() + "->" + remote_dst.name(), rate, prop_delay,
      make_qdisc(), &remote_dst);
  link->set_remote_inbox(inbox);
  Link* raw = link.get();
  links_.push_back(std::move(link));
  adjacency_[local.id() - id_base_].push_back(Edge{remote_dst.id(), raw});
  if (auto* h = dynamic_cast<Host*>(&local)) h->set_nic(raw);
  return raw;
}

Host* Network::host(NodeId id) const {
  return dynamic_cast<Host*>(node(id));
}

Link* Network::link_between(NodeId a, NodeId b) const {
  if (a < id_base_ || a - id_base_ >= adjacency_.size()) return nullptr;
  for (const Edge& e : adjacency_[a - id_base_]) {
    if (e.peer == b) return e.link;
  }
  return nullptr;
}

void Network::compute_routes() {
  for (Switch* sw : switches_) sw->clear_routes();

  // One reverse BFS per destination host: dist[v] = hops from v to dst.
  // Every neighbour edge that decreases the distance by exactly one is an
  // equal-cost next hop.
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(nodes_.size());

  // dist/adjacency are indexed by local id (global id minus id_base_).
  for (const Host* dst : hosts_) {
    std::fill(dist.begin(), dist.end(), kInf);
    const NodeId dst_local = dst->id() - id_base_;
    dist[dst_local] = 0;
    // Vector-as-queue (head index instead of pop_front): same FIFO
    // visit order as the deque it replaces, no per-node allocation.
    std::vector<NodeId> frontier{dst_local};
    std::size_t head = 0;
    while (head < frontier.size()) {
      const NodeId v = frontier[head++];
      // Hosts other than the destination never forward transit traffic.
      if (v != dst_local && dynamic_cast<Host*>(nodes_[v].get())) continue;
      for (const Edge& e : adjacency_[v]) {
        if (e.peer < id_base_ || e.peer >= id_end()) continue;
        const NodeId peer = e.peer - id_base_;
        if (dist[peer] == kInf) {
          dist[peer] = dist[v] + 1;
          frontier.push_back(peer);
        }
      }
    }
    for (Switch* sw : switches_) {
      const NodeId sw_local = sw->id() - id_base_;
      if (dist[sw_local] == kInf) continue;
      for (const Edge& e : adjacency_[sw_local]) {
        if (e.peer < id_base_ || e.peer >= id_end()) continue;
        const NodeId peer = e.peer - id_base_;
        if (dist[peer] != kInf && dist[peer] + 1 == dist[sw_local]) {
          sw->add_route(dst->id(), e.link);
        }
      }
    }
  }
}

std::uint64_t Network::total_queue_drops() const {
  std::uint64_t total = 0;
  for (const auto& link : links_) total += link->qdisc().stats().dropped;
  return total;
}

}  // namespace hwatch::net
