// Nodes: switches (static forwarding over output links) and hosts
// (transport agents + hypervisor filter chain + one NIC uplink).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/filter.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/unique_function.hpp"

namespace hwatch::net {

class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Invoked by an incoming Link when a packet finishes propagation.
  virtual void handle_packet(Packet&& p) = 0;

 private:
  NodeId id_;
  std::string name_;
};

/// Output-queued switch with a static forwarding table.  Equal-cost
/// multipath is supported by storing several next hops per destination
/// and picking one by flow hash (packets of one flow stay in order).
class Switch final : public Node {
 public:
  using Node::Node;

  /// Adds `link` as a next hop towards destination host `dst`.
  void add_route(NodeId dst, Link* link) { routes_[dst].push_back(link); }

  /// Adds a next hop for every destination in the contiguous global-id
  /// range [lo, hi] (inclusive).  Ranges must be added in ascending
  /// order and must not overlap; several links on the same range form an
  /// ECMP group.  Structural fabrics (fat-tree pods, leaf-spine racks)
  /// route with a handful of ranges instead of a per-host map — at 10k
  /// hosts that is the difference between kilobytes and hundreds of
  /// megabytes of forwarding state.
  void add_range_route(NodeId lo, NodeId hi, Link* link);

  /// Fallback ECMP group when neither an exact nor a range route
  /// matches — "everything else goes up" in hierarchical fabrics.
  void set_default_routes(std::vector<Link*> links) {
    default_routes_ = std::move(links);
  }

  void clear_routes() {
    routes_.clear();
    range_routes_.clear();
    default_routes_.clear();
  }

  void handle_packet(Packet&& p) override;

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t routeless_drops() const { return routeless_drops_; }
  std::size_t range_route_count() const { return range_routes_.size(); }

 private:
  struct RangeRoute {
    NodeId lo;
    NodeId hi;  // inclusive
    std::vector<Link*> hops;
  };

  Link* select_route(const Packet& p) const;
  static Link* pick(const std::vector<Link*>& hops, const Packet& p);

  std::unordered_map<NodeId, std::vector<Link*>> routes_;
  std::vector<RangeRoute> range_routes_;  // sorted by lo, disjoint
  std::vector<Link*> default_routes_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t routeless_drops_ = 0;
};

/// End host: local transport agents keyed by destination port, an
/// optional hypervisor filter chain, and a single NIC uplink.
class Host final : public Node {
 public:
  using Node::Node;

  /// Handler receives packets whose tcp.dst_port matches the bound port.
  /// Move-only: handlers are invoked per packet on the delivery hot
  /// path, so no std::function (and no copyability requirement).
  using AgentHandler = sim::UniqueFunction<void(Packet&&)>;

  void set_nic(Link* uplink) { nic_ = uplink; }
  Link* nic() const { return nic_; }

  void bind(std::uint16_t port, AgentHandler handler);
  void unbind(std::uint16_t port);
  bool is_bound(std::uint16_t port) const {
    return agents_.contains(port);
  }

  /// Installs a filter at the back of the chain (non-owning; the caller
  /// keeps the filter alive, typically the scenario object).
  void install_filter(PacketFilter* f) { filters_.push_back(f); }
  void remove_filters() { filters_.clear(); }

  /// Transport-agent send path: OUT filter chain, then the NIC.
  void send(Packet&& p);

  /// Hypervisor send path: bypasses the OUT chain (used by the shim to
  /// inject probes or release held packets without re-filtering them).
  void send_raw(Packet&& p);

  void handle_packet(Packet&& p) override;

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t no_agent_drops() const { return no_agent_drops_; }
  std::uint64_t filter_drops() const { return filter_drops_; }

 private:
  Link* nic_ = nullptr;
  std::unordered_map<std::uint16_t, AgentHandler> agents_;
  std::vector<PacketFilter*> filters_;
  std::uint64_t delivered_ = 0;
  std::uint64_t no_agent_drops_ = 0;
  std::uint64_t filter_drops_ = 0;
};

}  // namespace hwatch::net
