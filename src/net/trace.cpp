#include "net/trace.hpp"

#include <ostream>

namespace hwatch::net {

void PacketTracer::record(const Packet& p, bool outbound) {
  if (cfg_.predicate && !cfg_.predicate(p)) return;
  ++seen_;
  if (p.kind == PacketKind::kProbe) {
    ++counts_.probes;
  } else if (p.tcp.syn) {
    ++counts_.syn;
  } else if (p.tcp.fin) {
    ++counts_.fin;
  } else if (p.is_data()) {
    ++counts_.data;
  } else if (p.is_pure_ack()) {
    ++counts_.acks;
  }
  if (p.ip.ecn == Ecn::kCe) ++counts_.ce_marked;
  if (entries_.size() < cfg_.max_entries) {
    entries_.push_back(TraceEntry{ctx_.now(), outbound, p});
  }
}

void PacketTracer::dump(std::ostream& os) const {
  for (const TraceEntry& e : entries_) {
    os << sim::to_seconds(e.time) << (e.outbound ? " + " : " - ")
       << e.packet.describe() << '\n';
  }
  if (truncated()) {
    os << "... (" << seen_ - entries_.size() << " more packets seen)\n";
  }
}

}  // namespace hwatch::net
