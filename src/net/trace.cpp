#include "net/trace.hpp"

#include <ostream>

namespace hwatch::net {

void PacketTracer::record(const Packet& p, bool outbound) {
  if (!cfg_.enabled) return;
  if (cfg_.predicate && !cfg_.predicate(p)) return;
  ++seen_;
  if (p.kind == PacketKind::kProbe) {
    ++counts_.probes;
  } else if (p.tcp.syn) {
    ++counts_.syn;
  } else if (p.tcp.fin) {
    ++counts_.fin;
  } else if (p.is_data()) {
    ++counts_.data;
  } else if (p.is_pure_ack()) {
    ++counts_.acks;
  }
  if (p.ip.ecn == Ecn::kCe) ++counts_.ce_marked;
  if (cfg_.jsonl_sink) {
    write_jsonl(*cfg_.jsonl_sink, ctx_.now(), outbound, p);
  }
  if (entries_.size() < cfg_.max_entries) {
    entries_.push_back(TraceEntry{ctx_.now(), outbound, p});
  }
}

namespace {

const char* ecn_name(Ecn e) {
  switch (e) {
    case Ecn::kNotEct:
      return "not-ect";
    case Ecn::kEct1:
      return "ect1";
    case Ecn::kEct0:
      return "ect0";
    case Ecn::kCe:
      return "ce";
  }
  return "?";
}

}  // namespace

void PacketTracer::write_jsonl(std::ostream& os, sim::TimePs time,
                               bool outbound, const Packet& p) {
  os << "{\"t_ps\":" << time << ",\"dir\":\"" << (outbound ? "out" : "in")
     << "\",\"uid\":" << p.uid << ",\"kind\":\""
     << (p.kind == PacketKind::kProbe ? "probe" : "tcp") << "\",\"src\":"
     << p.ip.src << ",\"dst\":" << p.ip.dst << ",\"sport\":"
     << p.tcp.src_port << ",\"dport\":" << p.tcp.dst_port << ",\"seq\":"
     << p.tcp.seq << ",\"ack\":" << p.tcp.ack << ",\"flags\":\"";
  if (p.tcp.syn) os << 'S';
  if (p.tcp.ack_flag) os << 'A';
  if (p.tcp.fin) os << 'F';
  if (p.tcp.rst) os << 'R';
  if (p.tcp.ece) os << 'E';
  if (p.tcp.cwr) os << 'C';
  os << "\",\"payload\":" << p.payload_bytes << ",\"wire\":"
     << p.size_bytes() << ",\"ecn\":\"" << ecn_name(p.ip.ecn)
     << "\",\"rwnd\":" << p.tcp.rwnd_raw << ",\"train\":"
     << p.probe_train_id << "}\n";
}

void PacketTracer::dump_jsonl(std::ostream& os) const {
  for (const TraceEntry& e : entries_) {
    write_jsonl(os, e.time, e.outbound, e.packet);
  }
}

void PacketTracer::dump(std::ostream& os) const {
  for (const TraceEntry& e : entries_) {
    os << sim::to_seconds(e.time) << (e.outbound ? " + " : " - ")
       << e.packet.describe() << '\n';
  }
  if (truncated()) {
    os << "... (" << seen_ - entries_.size() << " more packets seen)\n";
  }
}

}  // namespace hwatch::net
