// Internet checksum over the simulated TCP header.
//
// HWatch rewrites the receive-window field of in-flight ACK/SYN-ACK
// segments from the hypervisor, so it must also fix the TCP checksum the
// way the kernel module does.  We model this faithfully: transports stamp
// a real 16-bit ones'-complement checksum over the header fields and the
// shim patches it incrementally per RFC 1624, letting tests catch any
// rewrite that forgets the fix-up.
#pragma once

#include <cstdint>

#include "net/packet.hpp"

namespace hwatch::net {

/// Ones'-complement 16-bit checksum over the TCP header fields and a
/// pseudo-header (src, dst, payload length).  Computed with the checksum
/// field itself treated as zero.
std::uint16_t tcp_checksum(const Packet& p);

/// Stamps `p.tcp.checksum` with the correct value.
void stamp_checksum(Packet& p);

/// True when the stored checksum matches the header contents.
bool verify_checksum(const Packet& p);

/// RFC 1624 incremental update: returns the new checksum after one 16-bit
/// header word changed from `old_word` to `new_word`.
std::uint16_t checksum_adjust(std::uint16_t checksum, std::uint16_t old_word,
                              std::uint16_t new_word);

}  // namespace hwatch::net
