#include "tcp/interval_set.hpp"

#include <algorithm>

namespace hwatch::tcp {

std::uint64_t IntervalSet::insert(std::uint64_t start, std::uint64_t end) {
  if (start >= end) return 0;
  std::uint64_t newly = end - start;

  auto it = set_.lower_bound(start);
  if (it != set_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      // Overlaps (or abuts) the interval before: absorb it.
      const std::uint64_t overlap_start = std::max(start, prev->first);
      const std::uint64_t overlap_end = std::min(end, prev->second);
      if (overlap_end > overlap_start) newly -= overlap_end - overlap_start;
      start = prev->first;
      end = std::max(end, prev->second);
      it = set_.erase(prev);
    }
  }
  while (it != set_.end() && it->first <= end) {
    const std::uint64_t overlap_start = std::max(start, it->first);
    const std::uint64_t overlap_end = std::min(end, it->second);
    if (overlap_end > overlap_start) newly -= overlap_end - overlap_start;
    end = std::max(end, it->second);
    it = set_.erase(it);
  }
  set_.emplace(start, end);
  return newly;
}

bool IntervalSet::contains(std::uint64_t point) const {
  auto it = set_.upper_bound(point);
  if (it == set_.begin()) return false;
  return std::prev(it)->second > point;
}

std::optional<net::SackBlock> IntervalSet::interval_containing(
    std::uint64_t point) const {
  auto it = set_.upper_bound(point);
  if (it == set_.begin()) return std::nullopt;
  auto prev = std::prev(it);
  if (prev->second > point) {
    return net::SackBlock{prev->first, prev->second};
  }
  return std::nullopt;
}

std::uint64_t IntervalSet::next_uncovered(std::uint64_t from) const {
  auto blk = interval_containing(from);
  return blk ? blk->end : from;
}

std::uint64_t IntervalSet::gap_end(std::uint64_t from,
                                   std::uint64_t bound) const {
  auto it = set_.lower_bound(from);
  if (it == set_.end()) return bound;
  return std::min(it->first, bound);
}

void IntervalSet::erase_below(std::uint64_t point) {
  auto it = set_.begin();
  while (it != set_.end() && it->second <= point) {
    it = set_.erase(it);
  }
  if (it != set_.end() && it->first < point) {
    const std::uint64_t end = it->second;
    set_.erase(it);
    set_.emplace(point, end);
  }
}

std::uint64_t IntervalSet::covered_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [s, e] : set_) total += e - s;
  return total;
}

std::uint64_t IntervalSet::covered_above(std::uint64_t point) const {
  std::uint64_t total = 0;
  for (const auto& [s, e] : set_) {
    if (e <= point) continue;
    total += e - std::max(s, point);
  }
  return total;
}

}  // namespace hwatch::tcp
