// Multipath TCP extension (the paper's Section IV-F future work).
//
// MPTCP lets one logical connection use several TCP subflows, each with
// its own 4-tuple so ECMP fabrics spread them over distinct paths.  The
// paper observes that "since every connection establishment in MPTCP
// relies on TCP, HWatch logic can be directly applied": each subflow's
// SYN is held, probed, and window-managed by the hypervisor shim
// independently, with no MPTCP-specific code in the shim at all — this
// module plus its tests demonstrate exactly that.
//
// Simplifications vs RFC 8684: subflows are opened concurrently rather
// than one by one with MP_JOIN binding, and the scheduler is a static
// equal-bytes stripe (sufficient for path-diversity experiments; a
// dynamic scheduler would only shift load between subflows).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/unique_function.hpp"
#include "tcp/connection.hpp"

namespace hwatch::tcp {

struct MultipathConfig {
  std::uint32_t subflows = 2;
  Transport transport = Transport::kNewReno;
  TcpConfig tcp;
};

class MultipathConnection {
 public:
  /// Subflow i binds src port base_src_port+i and dst port
  /// base_dst_port+i.
  MultipathConnection(net::Network& net, net::Host& src, net::Host& dst,
                      std::uint16_t base_src_port,
                      std::uint16_t base_dst_port,
                      const MultipathConfig& config);

  /// Starts the transfer, striping `total_bytes` equally over the
  /// subflows (remainder to the first).  kUnlimited makes every subflow
  /// long-lived.
  void start(std::uint64_t total_bytes);

  using CompletionCallback =
      sim::UniqueFunction<void(const MultipathConnection&)>;
  void set_on_complete(CompletionCallback cb) {
    on_complete_ = std::move(cb);
  }

  std::size_t subflow_count() const { return subflows_.size(); }
  TcpConnection& subflow(std::size_t i) { return *subflows_[i]; }
  const TcpConnection& subflow(std::size_t i) const { return *subflows_[i]; }

  /// Complete when every subflow's FIN is acked.
  bool complete() const { return completed_ == subflows_.size(); }

  /// Connection-level FCT: start() to the last subflow's completion.
  sim::TimePs fct() const;

  /// Aggregate payload bytes acked across subflows.
  std::uint64_t bytes_acked() const;

  /// Sum of subflow sink goodputs (the MPTCP aggregate bandwidth).
  double aggregate_goodput_bps() const;

  std::uint64_t total_retransmits() const;
  std::uint64_t total_timeouts() const;

 private:
  std::vector<std::unique_ptr<TcpConnection>> subflows_;
  std::size_t completed_ = 0;
  sim::TimePs start_time_ = sim::kTimeNever;
  sim::TimePs complete_time_ = sim::kTimeNever;
  CompletionCallback on_complete_;
  sim::SimContext* ctx_ = nullptr;
  bool started_ = false;
};

}  // namespace hwatch::tcp
