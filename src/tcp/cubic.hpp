// CUBIC congestion control (Ha, Rhee, Xu — RFC 8312), the Linux default
// since 2.6.19 and therefore the most likely "tenant's preferred TCP"
// in the paper's multi-tenant argument (the paper names Cubic alongside
// NewReno as the window-halving flavours DCTCP must coexist with).
//
// Congestion avoidance follows the cubic curve
//     W(t) = C (t - K)^3 + W_max,     K = cbrt(W_max (1 - beta) / C)
// anchored at the window before the last reduction, with the standard
// TCP-friendly lower bound; reductions multiply by beta = 0.7 instead
// of 0.5.  Slow start, recovery machinery and ECN semantics come from
// the base sender (classic ECE handling applies beta here too).
#pragma once

#include "tcp/sender.hpp"

namespace hwatch::tcp {

struct CubicParams {
  double c = 0.4;      // scaling constant (segments/s^3)
  double beta = 0.7;   // multiplicative decrease factor
};

class CubicSender : public TcpSender {
 public:
  CubicSender(net::Network& net, net::Host& host, std::uint16_t port,
              net::NodeId dst_node, std::uint16_t dst_port,
              TcpConfig config, CubicParams params = {})
      : TcpSender(net, host, port, dst_node, dst_port, config),
        params_(params) {}

  std::string transport_name() const override { return "cubic"; }

  double w_max_segments() const { return w_max_; }

 protected:
  void grow_window(std::uint64_t newly_acked) override;
  std::uint64_t ssthresh_after_loss() override;
  void on_ecn_feedback(const net::Packet& ack,
                       std::uint64_t newly_acked) override;

 private:
  /// Registers a multiplicative decrease: anchors W_max and starts a
  /// new cubic epoch.
  void enter_reduction();
  double cubic_target_segments(double t_seconds) const;

  CubicParams params_;
  double w_max_ = 0;                      // segments
  sim::TimePs epoch_start_ = sim::kTimeNever;
  double k_seconds_ = 0;
  // TCP-friendly region estimate (RFC 8312 section 4.2).
  double w_est_ = 0;
  std::uint64_t acked_since_epoch_ = 0;
  std::uint64_t ecn_reduce_until_ = 0;
};

}  // namespace hwatch::tcp
