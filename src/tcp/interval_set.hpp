// Disjoint half-open byte-interval set.
//
// Two users: the sink's out-of-order reassembly buffer and the SACK
// sender's scoreboard of selectively-acknowledged ranges.  Intervals
// are [start, end) in 64-bit sequence space, kept disjoint and merged
// on insert.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "net/packet.hpp"

namespace hwatch::tcp {

class IntervalSet {
 public:
  // SACK scoreboard: entry count is bounded by the loss-hole count and
  // ordered lower_bound coalescing is the point; a flat structure would
  // shift on every mid-range fill.
  // hwlint: allow(hot-path-container)
  using Map = std::map<std::uint64_t, std::uint64_t>;

  /// Inserts [start, end), merging with neighbours.  Returns the number
  /// of bytes that were not previously covered.
  std::uint64_t insert(std::uint64_t start, std::uint64_t end);

  bool contains(std::uint64_t point) const;

  /// The interval containing `point`, if any.
  std::optional<net::SackBlock> interval_containing(
      std::uint64_t point) const;

  /// First point >= `from` not covered by any interval.
  std::uint64_t next_uncovered(std::uint64_t from) const;

  /// End (exclusive) of the uncovered gap starting at `from`: the start
  /// of the next interval above `from`, or `bound` if none below it.
  /// Precondition: `from` is uncovered.
  std::uint64_t gap_end(std::uint64_t from, std::uint64_t bound) const;

  /// Drops all coverage below `point` (trimming a straddling interval).
  void erase_below(std::uint64_t point);

  void clear() { set_.clear(); }
  bool empty() const { return set_.empty(); }
  std::size_t size() const { return set_.size(); }

  /// Total bytes covered.
  std::uint64_t covered_bytes() const;

  /// Bytes covered strictly above `point`.
  std::uint64_t covered_above(std::uint64_t point) const;

  Map::const_iterator begin() const { return set_.begin(); }
  Map::const_iterator end() const { return set_.end(); }

 private:
  Map set_;  // start -> end, disjoint, non-adjacent after merge
};

}  // namespace hwatch::tcp
