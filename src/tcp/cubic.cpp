#include "tcp/cubic.hpp"

#include <algorithm>
#include <cmath>

namespace hwatch::tcp {

void CubicSender::enter_reduction() {
  w_max_ = cwnd_ / mss();
  epoch_start_ = sim::kTimeNever;  // new epoch starts on the next growth
}

std::uint64_t CubicSender::ssthresh_after_loss() {
  enter_reduction();
  return std::max<std::uint64_t>(
      static_cast<std::uint64_t>(cwnd_ * params_.beta), 2ull * mss());
}

void CubicSender::on_ecn_feedback(const net::Packet& ack,
                                  std::uint64_t newly_acked) {
  (void)newly_acked;
  if (config().ecn != EcnMode::kClassic) return;
  if (!ack.tcp.ece || in_fast_recovery()) return;
  if (snd_una() <= ecn_reduce_until_) return;
  enter_reduction();
  reduce_window(cwnd_ * params_.beta);
  ecn_reduce_until_ = snd_nxt();
  signal_cwr();
  ++stats_.ecn_reductions;
}

double CubicSender::cubic_target_segments(double t_seconds) const {
  const double dt = t_seconds - k_seconds_;
  return params_.c * dt * dt * dt + w_max_;
}

void CubicSender::grow_window(std::uint64_t newly_acked) {
  if (in_slow_start()) {
    cwnd_ += static_cast<double>(
        std::min<std::uint64_t>(newly_acked, 2ull * mss()));
    return;
  }
  const sim::TimePs t_now = now();
  if (epoch_start_ == sim::kTimeNever) {
    // New cubic epoch: anchor the curve at the current window.
    epoch_start_ = t_now;
    const double w_cur = cwnd_ / mss();
    if (w_max_ < w_cur) w_max_ = w_cur;
    // RFC 8312's K is defined via cbrt; the reproduction's reference
    // platform is x86-64/glibc.  hwlint: allow(fp-determinism)
    k_seconds_ = std::cbrt(w_max_ * (1.0 - params_.beta) / params_.c);
    w_est_ = w_cur;
    acked_since_epoch_ = 0;
  }
  acked_since_epoch_ += newly_acked;

  const double t = sim::to_seconds(t_now - epoch_start_);
  const double target = cubic_target_segments(t);

  // TCP-friendly region (RFC 8312 4.2): emulate AIMD(1, beta) growth.
  const double rtt_s = rtt().has_sample()
                           ? sim::to_seconds(rtt().srtt())
                           : 100e-6;
  w_est_ += (3.0 * (1.0 - params_.beta) / (1.0 + params_.beta)) *
            (static_cast<double>(newly_acked) / cwnd_);

  const double w_cur = cwnd_ / mss();
  double next = std::max(target, w_est_);
  if (next <= w_cur) {
    // Concave plateau: creep towards the target like the RFC's
    // cwnd/(100 cwnd) minimal growth.
    next = w_cur + 0.01 * (static_cast<double>(newly_acked) / mss());
  } else {
    // Approach the cubic target over roughly one RTT of ACKs.
    next = w_cur + (next - w_cur) *
                       (static_cast<double>(newly_acked) / cwnd_);
  }
  (void)rtt_s;
  cwnd_ = std::max(next * mss(), 2.0 * mss());
}

}  // namespace hwatch::tcp
