// Shared TCP types: congestion-control flavour selection, ECN behaviour
// modes, and per-connection configuration mirroring the knobs the paper
// sweeps (initial congestion window, minRTO, ECN responsiveness).
#pragma once

#include <cstdint>
#include <string>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace hwatch::tcp {

/// How a sender negotiates and reacts to ECN.
enum class EcnMode : std::uint8_t {
  kNone = 0,  // not ECN-capable: packets are Not-ECT, AQMs drop instead
  kClassic,   // RFC 3168: ECE halves cwnd once per window, CWR handshake
  kBlind,     // negotiates ECT but ignores ECE ("non-responsive" tenant)
  kDctcp,     // proportional reduction driven by the marked fraction
};

/// Congestion-control flavour of a sender.
enum class Transport : std::uint8_t {
  kNewReno = 0,
  kDctcp,
  kCubic,
};

std::string to_string(EcnMode mode);
std::string to_string(Transport t);

struct TcpConfig {
  std::uint32_t mss = net::kDefaultMss;

  /// Initial congestion window in segments (paper sweeps 1..20; Linux
  /// default 10).
  std::uint32_t initial_cwnd_segments = 10;

  /// Initial slow-start threshold (effectively unbounded by default).
  std::uint64_t initial_ssthresh_bytes = UINT64_MAX / 4;

  EcnMode ecn = EcnMode::kClassic;

  /// RFC 6298 with a configurable floor: Linux ~200 ms; the paper's
  /// testbed runs HWatch with 4 ms.
  sim::TimePs min_rto = sim::milliseconds(200);
  sim::TimePs max_rto = sim::seconds_i(60);
  /// RTO used before the first RTT sample exists.
  sim::TimePs initial_rto = sim::milliseconds(200);

  std::uint32_t dupack_threshold = 3;

  /// RFC 2018 selective acknowledgements: negotiated on SYN/SYN-ACK;
  /// the sink advertises up to 3 blocks, the sender keeps a scoreboard
  /// and retransmits only the holes.
  bool sack = false;

  /// RFC 3042 limited transmit: the first two duplicate ACKs may clock
  /// out one new segment each, helping short flows build the dupack
  /// pipeline they need to avoid an RTO (the paper's Observation 1).
  bool limited_transmit = false;

  /// Delayed ACKs (RFC 1122 / 5681): acknowledge every second in-order
  /// segment, or after delack_timeout.  Out-of-order arrivals, FINs and
  /// (in DCTCP mode) CE-state changes are acknowledged immediately —
  /// the RFC 8257 delayed-ACK state machine.
  bool delayed_ack = false;
  std::uint32_t ack_every = 2;
  sim::TimePs delack_timeout = sim::milliseconds(1);  // datacenter-tuned

  /// DCTCP EWMA gain g for the marked-fraction estimate.
  double dctcp_g = 1.0 / 16.0;

  /// Receive window this endpoint advertises (bytes) and its window
  /// scale shift.  The raw 16-bit field is rwnd >> wscale.
  std::uint64_t advertised_window_bytes = 1u << 20;
  std::uint8_t window_scale = 6;
};

/// Derives the on-the-wire 16-bit window field for an advertised window
/// under a scale shift, saturating at the field maximum.
std::uint16_t encode_window(std::uint64_t window_bytes, std::uint8_t shift);

/// Effective window in bytes from a raw field and the peer's shift.
std::uint64_t decode_window(std::uint16_t raw, std::uint8_t shift);

}  // namespace hwatch::tcp
