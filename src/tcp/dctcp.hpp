// DCTCP sender (Alizadeh et al., SIGCOMM'10 / RFC 8257).
//
// Differs from NewReno only in the ECN response: the receiver's per-packet
// ECE echoes drive an EWMA estimate `alpha` of the marked-byte fraction,
// and on the first ECE of each window the congestion window is reduced
// proportionally, cwnd *= (1 - alpha/2), instead of being halved.  This
// is the "aggressive acquisition" behaviour whose coexistence problems
// the paper's Figure 2 demonstrates.
#pragma once

#include "tcp/sender.hpp"

namespace hwatch::tcp {

class DctcpSender final : public TcpSender {
 public:
  DctcpSender(net::Network& net, net::Host& host, std::uint16_t port,
              net::NodeId dst_node, std::uint16_t dst_port, TcpConfig config)
      : TcpSender(net, host, port, dst_node, dst_port, force_dctcp(config)),
        g_(config.dctcp_g) {}

  double alpha() const { return alpha_; }

  std::string transport_name() const override { return "dctcp"; }

 protected:
  void on_ecn_feedback(const net::Packet& ack,
                       std::uint64_t newly_acked) override;

 private:
  static TcpConfig force_dctcp(TcpConfig c) {
    c.ecn = EcnMode::kDctcp;
    return c;
  }

  double g_;
  double alpha_ = 1.0;  // conservative start, per RFC 8257
  std::uint64_t window_end_ = 0;
  std::uint64_t acked_total_ = 0;
  std::uint64_t acked_marked_ = 0;
  std::uint64_t reduce_until_ = 0;
};

}  // namespace hwatch::tcp
