#include "tcp/sender.hpp"

#include <algorithm>
#include <cassert>

#include "net/checksum.hpp"
#include "sim/incident_hooks.hpp"
#include "sim/log.hpp"

namespace hwatch::tcp {

TcpSender::TcpSender(net::Network& net, net::Host& host, std::uint16_t port,
                     net::NodeId dst_node, std::uint16_t dst_port,
                     TcpConfig config)
    : net_(net),
      ctx_(net.ctx()),
      host_(host),
      port_(port),
      dst_node_(dst_node),
      dst_port_(dst_port),
      cfg_(config),
      cwnd_hist_(net.ctx().metrics().histogram(
          "tcp.cwnd_bytes",
          sim::Histogram::exponential_bounds(1500, 2, 14))),
      rtt_(config.initial_rto, config.min_rto, config.max_rto),
      rto_timer_(ctx_.scheduler(), [this] { on_rto(); }) {
  cwnd_ = static_cast<double>(cfg_.initial_cwnd_segments) * cfg_.mss;
  ssthresh_ = cfg_.initial_ssthresh_bytes;
  host_.bind(port_, [this](net::Packet&& p) { on_packet(std::move(p)); });
}

TcpSender::~TcpSender() { host_.unbind(port_); }

void TcpSender::start(std::uint64_t total_bytes) {
  assert(state_ == SenderState::kIdle && "start() called twice");
  total_bytes_ = total_bytes;
  stats_.start_time = ctx_.now();
  state_ = SenderState::kSynSent;
  if (ctx_.tracer().enabled()) {
    sim::SpanTracer& tr = ctx_.tracer();
    flow_span_ = tr.begin_span(ctx_.now(), sim::SpanKind::kFlow, 0, 0,
                               total_bytes_);
    auto [hi, lo] = net::flow_key_words(flow_key());
    tr.register_flow(hi, lo, flow_span_);
    handshake_span_ = tr.begin_span(ctx_.now(), sim::SpanKind::kHandshake,
                                    flow_span_, flow_span_);
  }
  send_syn();
}

void TcpSender::send_syn() {
  net::Packet syn;
  syn.uid = ctx_.next_packet_uid();
  syn.ip.src = host_.id();
  syn.ip.dst = dst_node_;
  // SYNs of ECN-capable connections negotiate via ECE+CWR (RFC 3168);
  // the SYN itself is Not-ECT.
  syn.ip.ecn = net::Ecn::kNotEct;
  syn.tcp.src_port = port_;
  syn.tcp.dst_port = dst_port_;
  syn.tcp.seq = 0;
  syn.tcp.syn = true;
  syn.tcp.ece = cfg_.ecn != EcnMode::kNone;
  syn.tcp.cwr = cfg_.ecn != EcnMode::kNone;
  syn.tcp.wscale = cfg_.window_scale;
  syn.tcp.sack_permitted = cfg_.sack;
  syn.tcp.rwnd_raw = encode_window(cfg_.advertised_window_bytes, 0);
  net::stamp_checksum(syn);
  syn.sent_time = ctx_.now();
  syn_sent_at_ = ctx_.now();
  host_.send(std::move(syn));
  arm_rto();
}

void TcpSender::send_pure_ack() {
  net::Packet ack;
  ack.uid = ctx_.next_packet_uid();
  ack.ip.src = host_.id();
  ack.ip.dst = dst_node_;
  ack.ip.ecn = net::Ecn::kNotEct;
  ack.tcp.src_port = port_;
  ack.tcp.dst_port = dst_port_;
  ack.tcp.seq = snd_nxt_;
  ack.tcp.ack = 1;  // acks the peer's SYN
  ack.tcp.ack_flag = true;
  ack.tcp.rwnd_raw =
      encode_window(cfg_.advertised_window_bytes, cfg_.window_scale);
  net::stamp_checksum(ack);
  ack.sent_time = ctx_.now();
  host_.send(std::move(ack));
}

void TcpSender::on_packet(net::Packet&& p) {
  sim::ProfScope prof(ctx_.profiler(), sim::ProfComponent::kTcpSender);
  if (p.kind != net::PacketKind::kTcp || !p.tcp.ack_flag) return;
  if (p.tcp.syn) {
    handle_syn_ack(p);
  } else if (state_ == SenderState::kEstablished) {
    handle_ack(p);
  }
}

void TcpSender::handle_syn_ack(const net::Packet& p) {
  if (state_ != SenderState::kSynSent) {
    // Duplicate SYN-ACK (our handshake ACK was lost or is in flight):
    // re-acknowledge so the peer stops retransmitting.
    if (state_ == SenderState::kEstablished) send_pure_ack();
    return;
  }
  peer_wscale_ = p.tcp.wscale;
  peer_sack_ = p.tcp.sack_permitted && cfg_.sack;
  // RFC 7323: window field in a SYN-ACK is unscaled.
  peer_rwnd_ = decode_window(p.tcp.rwnd_raw, 0);
  snd_una_ = 1;
  snd_nxt_ = 1;
  snd_max_ = 1;
  state_ = SenderState::kEstablished;
  stats_.established_time = ctx_.now();
  if (sim::IncidentSink* inc = ctx_.incidents()) {
    const auto [hi, lo] = net::flow_key_words(flow_key());
    inc->on_flow_established(hi, lo, flow_span_, ctx_.now());
  }
  if (ctx_.tracer().enabled()) {
    sim::SpanTracer& tr = ctx_.tracer();
    tr.end_span(ctx_.now(), handshake_span_, stats_.syn_timeouts);
    handshake_span_ = 0;
    ss_span_ = tr.begin_span(ctx_.now(), sim::SpanKind::kSlowStart,
                             flow_span_, flow_span_);
  }
  if (!syn_retransmitted_) {
    rtt_.add_sample(ctx_.now() - syn_sent_at_);
  }
  rto_timer_.cancel();
  send_pure_ack();
  send_available();
}

void TcpSender::handle_ack(const net::Packet& p) {
  const std::uint64_t prev_rwnd = peer_rwnd_;
  peer_rwnd_ = decode_window(p.tcp.rwnd_raw, peer_wscale_);
  if (p.tcp.ack > snd_max_) return;  // acks data never sent; ignore
  // An ACK may exceed snd_nxt after a go-back-N reset when segments sent
  // before the timeout (or their ACKs) were merely delayed, not lost.
  if (p.tcp.ack > snd_nxt_) {
    snd_nxt_ = p.tcp.ack;
    fin_sent_ = snd_nxt_ > fin_seq();
  }
  if (peer_sack_) {
    for (std::uint8_t i = 0; i < p.tcp.sack_count; ++i) {
      const net::SackBlock& b = p.tcp.sack[i];
      if (!b.empty() && b.end <= snd_max_ + 1) {
        sacked_.insert(b.start, b.end);
      }
    }
  }
  if (p.tcp.ack > snd_una_) {
    on_new_data_acked(p, p.tcp.ack - snd_una_);
  } else if (p.tcp.ack == snd_una_ && peer_rwnd_ == prev_rwnd) {
    // RFC 5681: a duplicate ACK must carry an unchanged window — pure
    // window updates (e.g. an HWatch deferred-batch grant arriving on
    // an otherwise-duplicate ACK) never count towards fast retransmit.
    on_duplicate_ack(p);
  }
  send_available();
}

void TcpSender::on_new_data_acked(const net::Packet& p, std::uint64_t newly) {
  snd_una_ = p.tcp.ack;
  sacked_.erase_below(snd_una_);
  // Payload-byte accounting: exclude the SYN/FIN sequence slots.
  const std::uint64_t payload_acked =
      std::min(snd_una_, fin_seq()) - std::min(snd_una_ - newly, fin_seq());
  stats_.bytes_acked += payload_acked;

  if (timing_valid_ && snd_una_ >= rtt_seq_) {
    rtt_.add_sample(ctx_.now() - rtt_sent_at_);
    timing_valid_ = false;
  }

  on_ecn_feedback(p, newly);

  limited_transmit_bytes_ = 0;
  if (in_recovery_) {
    if (snd_una_ >= recover_) {
      // Full ACK: leave fast recovery, deflate to ssthresh.
      in_recovery_ = false;
      dup_acks_ = 0;
      retx_hole_high_ = 0;
      cwnd_ = static_cast<double>(ssthresh_);
    } else {
      // Partial ACK (RFC 6582): retransmit the next hole, deflate by the
      // amount acked, re-inflate by one MSS.
      retransmit_next_hole();
      cwnd_ = std::max(cwnd_ - static_cast<double>(newly) + mss(),
                       static_cast<double>(mss()));
    }
  } else {
    dup_acks_ = 0;
    grow_window(newly);
  }
  cwnd_hist_.record(cwnd_);
  if (ctx_.tracer().enabled()) trace_on_ack_progress();
  if (sim::IncidentSink* inc = ctx_.incidents()) {
    const auto [hi, lo] = net::flow_key_words(flow_key());
    inc->on_flow_progress(hi, lo, ctx_.now(), rtt_.srtt());
  }

  if (snd_una_ < snd_nxt_) {
    arm_rto();
  } else {
    rto_timer_.cancel();
  }
  maybe_complete();
}

void TcpSender::trace_on_ack_progress() {
  sim::SpanTracer& tr = ctx_.tracer();
  if (rto_span_ != 0) {
    tr.end_span(ctx_.now(), rto_span_, snd_una_);
    rto_span_ = 0;
  }
  if (recovery_span_ != 0 && !in_recovery_) {
    tr.end_span(ctx_.now(), recovery_span_, snd_una_);
    recovery_span_ = 0;
  }
  if (ss_span_ != 0 && (!in_slow_start() || in_recovery_)) {
    tr.end_span(ctx_.now(), ss_span_,
                static_cast<std::uint64_t>(cwnd_));
    ss_span_ = 0;
  }
}

sim::TimePs TcpSender::now() const { return ctx_.now(); }

std::uint64_t TcpSender::ssthresh_after_loss() {
  return std::max<std::uint64_t>(bytes_in_flight() / 2, 2ull * mss());
}

void TcpSender::grow_window(std::uint64_t newly_acked) {
  // Suppress growth on the ACK that triggered an ECN reduction: the
  // halved window is the target, growth resumes next ACK.
  if (cwr_pending_) return;
  if (cwnd_ < static_cast<double>(ssthresh_)) {
    // Slow start: one MSS per MSS acked (byte counting, capped per ACK).
    cwnd_ += static_cast<double>(
        std::min<std::uint64_t>(newly_acked, 2ull * mss()));
  } else {
    // Congestion avoidance: ~one MSS per RTT.
    cwnd_ += static_cast<double>(mss()) * mss() / cwnd_;
  }
}

void TcpSender::on_ecn_feedback(const net::Packet& ack,
                                std::uint64_t newly_acked) {
  (void)newly_acked;
  if (cfg_.ecn != EcnMode::kClassic) return;  // kBlind/kNone ignore ECE
  if (!ack.tcp.ece) return;
  if (in_recovery_) return;  // loss response already under way
  if (snd_una_ <= ecn_reduce_until_) return;  // one cut per window
  reduce_window(cwnd_ / 2.0);
  ecn_reduce_until_ = snd_nxt_;
  cwr_pending_ = true;
  ++stats_.ecn_reductions;
}

void TcpSender::reduce_window(double new_cwnd_bytes) {
  const double floor = 2.0 * mss();
  cwnd_ = std::max(new_cwnd_bytes, floor);
  ssthresh_ = static_cast<std::uint64_t>(std::max(cwnd_, floor));
}

void TcpSender::on_duplicate_ack(const net::Packet& p) {
  (void)p;
  if (bytes_in_flight() == 0) return;  // window update, not a real dupack
  if (in_recovery_) {
    cwnd_ += mss();  // inflation: one segment left the network
    // SACK: the blocks on this dupack may expose further holes below
    // the recovery point; retransmit them as the window allows instead
    // of waiting one partial-ACK round trip each (the RFC 6675 gain).
    if (peer_sack_) retransmit_next_hole();
    return;
  }
  ++dup_acks_;
  if (dup_acks_ < cfg_.dupack_threshold) {
    // RFC 3042 limited transmit: the first two dupacks each clock out
    // one new segment, building the pipeline a short flow needs to
    // reach the fast-retransmit threshold at all.
    if (cfg_.limited_transmit && dup_acks_ <= 2) {
      limited_transmit_bytes_ += mss();
    }
    return;
  }
  // Fast retransmit + NewReno-style fast recovery (the ssthresh rule is
  // flavour-specific).
  ssthresh_ = ssthresh_after_loss();
  recover_ = snd_nxt_;
  in_recovery_ = true;
  retx_hole_high_ = 0;
  ++stats_.fast_retransmits;
  if (ctx_.tracer().enabled()) {
    sim::SpanTracer& tr = ctx_.tracer();
    // End slow start before opening recovery: sibling spans, and Chrome
    // B/E pairs must nest as a stack per flow.
    if (ss_span_ != 0) {
      tr.end_span(ctx_.now(), ss_span_, static_cast<std::uint64_t>(cwnd_));
      ss_span_ = 0;
    }
    recovery_span_ = tr.begin_span(ctx_.now(), sim::SpanKind::kRecovery,
                                   flow_span_, flow_span_, snd_una_);
  }
  retransmit_next_hole();
  cwnd_ = static_cast<double>(ssthresh_) + 3.0 * mss();
  arm_rto();
}

bool TcpSender::retransmit_next_hole() {
  std::uint64_t seq = snd_una_;
  if (peer_sack_) {
    seq = sacked_.next_uncovered(std::max(snd_una_, retx_hole_high_));
    if (seq >= recover_ || seq >= snd_nxt_) return false;  // no hole left
    // RFC 6675 IsLost: a hole is only presumed lost once at least
    // DupThresh segments' worth of data has been SACKed above it;
    // otherwise its segment may simply still be in flight.  The very
    // first hole (snd_una) is exempt — the dupack threshold itself
    // established its loss.
    if (seq > snd_una_ &&
        sacked_.covered_above(seq) <
            std::uint64_t{cfg_.dupack_threshold} * mss()) {
      return false;
    }
  }
  emit_segment(seq, /*retransmission=*/true);
  // Advance past what was just sent (emit_segment bounds the payload by
  // the gap, so one call covers at most one hole fragment).
  const std::uint64_t remaining = fin_seq() >= seq ? fin_seq() - seq : 0;
  std::uint64_t len = std::min<std::uint64_t>(mss(), remaining);
  if (len == 0) len = 1;  // the FIN slot
  if (peer_sack_) {
    len = std::min<std::uint64_t>(len,
                                  sacked_.gap_end(seq, fin_seq() + 1) - seq);
  }
  retx_hole_high_ = std::max(retx_hole_high_, seq + len);
  return true;
}

void TcpSender::send_available() {
  if (state_ != SenderState::kEstablished) return;
  while (true) {
    const std::uint64_t cwnd_bytes =
        static_cast<std::uint64_t>(cwnd_) + limited_transmit_bytes_;
    // The receive window can be throttled hard by HWatch; keep a 1-MSS
    // floor when nothing is in flight so the connection always probes
    // forward (persist behaviour) instead of deadlocking.
    std::uint64_t wnd = std::min<std::uint64_t>(cwnd_bytes, peer_rwnd_);
    if (wnd < mss() && bytes_in_flight() == 0) wnd = mss();
    if (bytes_in_flight() >= wnd) return;
    const std::uint64_t usable = wnd - bytes_in_flight();

    if (snd_nxt_ > fin_seq()) return;  // FIN already in flight
    if (snd_nxt_ == fin_seq()) {
      if (total_bytes_ >= kUnlimited) return;  // long-lived: never ends
      emit_segment(snd_nxt_, /*retransmission=*/false);
      return;
    }
    const std::uint64_t remaining = fin_seq() - snd_nxt_;
    const std::uint64_t seg = std::min<std::uint64_t>(mss(), remaining);
    // Sender-side SWS avoidance: wait for a full-MSS opening unless this
    // is the final (short) segment.
    if (usable < seg) return;
    emit_segment(snd_nxt_, /*retransmission=*/false);
  }
}

void TcpSender::emit_segment(std::uint64_t seq, bool retransmission) {
  net::Packet p;
  p.uid = ctx_.next_packet_uid();
  p.ip.src = host_.id();
  p.ip.dst = dst_node_;
  p.tcp.src_port = port_;
  p.tcp.dst_port = dst_port_;
  p.tcp.seq = seq;
  p.tcp.ack_flag = true;  // established-state segments carry an ACK
  p.tcp.ack = 1;
  p.tcp.rwnd_raw =
      encode_window(cfg_.advertised_window_bytes, cfg_.window_scale);

  if (seq == fin_seq()) {
    p.tcp.fin = true;
    p.payload_bytes = 0;
    p.ip.ecn = net::Ecn::kNotEct;
    fin_sent_ = true;
  } else {
    const std::uint64_t remaining = fin_seq() - seq;
    std::uint64_t len = std::min<std::uint64_t>(mss(), remaining);
    if (retransmission && peer_sack_) {
      // Don't re-send bytes the receiver already SACKed past the hole.
      len = std::min(len, sacked_.gap_end(seq, fin_seq()) - seq);
    }
    p.payload_bytes = static_cast<std::uint32_t>(std::max<std::uint64_t>(
        len, 1));
    p.ip.ecn =
        cfg_.ecn == EcnMode::kNone ? net::Ecn::kNotEct : net::Ecn::kEct0;
    if (cwr_pending_ && !retransmission) {
      p.tcp.cwr = true;
      cwr_pending_ = false;
    }
  }
  net::stamp_checksum(p);
  p.sent_time = ctx_.now();

  const std::uint64_t end = seq + (p.tcp.fin ? 1 : p.payload_bytes);
  if (!retransmission) {
    assert(seq == snd_nxt_);
    snd_nxt_ = end;
    if (end > snd_max_) snd_max_ = end;
    if (!timing_valid_) {
      timing_valid_ = true;
      rtt_seq_ = end;
      rtt_sent_at_ = ctx_.now();
    }
  } else {
    ++stats_.retransmits;
    // Karn: samples covering retransmitted data are invalid.
    if (timing_valid_ && rtt_seq_ > seq) timing_valid_ = false;
    if (sim::IncidentSink* inc = ctx_.incidents()) {
      const auto [hi, lo] = net::flow_key_words(flow_key());
      inc->on_retransmit(hi, lo, ctx_.now());
    }
  }
  if (p.payload_bytes > 0) ++stats_.segments_sent;
  arm_rto();
  host_.send(std::move(p));
}

void TcpSender::arm_rto() {
  if (ctx_.tracer().enabled()) rto_armed_at_ = ctx_.now();
  rto_timer_.arm(rtt_.rto());
}

void TcpSender::on_rto() {
  if (state_ == SenderState::kSynSent) {
    syn_retransmitted_ = true;
    ++stats_.syn_timeouts;
    rtt_.backoff();
    send_syn();
    return;
  }
  if (state_ != SenderState::kEstablished) return;
  ++stats_.timeouts;
  if (sim::IncidentSink* inc = ctx_.incidents()) {
    const auto [hi, lo] = net::flow_key_words(flow_key());
    inc->on_rto(hi, lo, ctx_.now());
  }
  ctx_.log().msg(sim::LogLevel::kDebug, "RTO flow ", port_, " snd_una=",
               snd_una_, " snd_nxt=", snd_nxt_);
  if (ctx_.tracer().enabled()) {
    sim::SpanTracer& tr = ctx_.tracer();
    if (recovery_span_ != 0) {
      tr.end_span(ctx_.now(), recovery_span_, snd_una_);
      recovery_span_ = 0;
    }
    if (ss_span_ != 0) {
      tr.end_span(ctx_.now(), ss_span_, static_cast<std::uint64_t>(cwnd_));
      ss_span_ = 0;
    }
    // The whole interval since the data was last clocked out counts as
    // retransmission wait: nothing moved until this timer fired.
    tr.add_latency(flow_span_, sim::LatencyComponent::kRetxWait,
                   ctx_.now() - rto_armed_at_);
    if (rto_span_ == 0) {
      rto_span_ = tr.begin_span(ctx_.now(), sim::SpanKind::kRto, flow_span_,
                                flow_span_, snd_una_);
    }
  }
  ssthresh_ = ssthresh_after_loss();
  cwnd_ = mss();
  in_recovery_ = false;
  dup_acks_ = 0;
  timing_valid_ = false;
  cwr_pending_ = false;
  limited_transmit_bytes_ = 0;
  retx_hole_high_ = 0;
  // RFC 2018: discard the scoreboard on RTO (the receiver may renege).
  sacked_.clear();
  // Go-back-N: everything past snd_una is presumed lost.
  snd_nxt_ = snd_una_;
  fin_sent_ = snd_nxt_ > fin_seq();
  rtt_.backoff();
  send_available();
  arm_rto();
}

void TcpSender::maybe_complete() {
  if (state_ != SenderState::kEstablished) return;
  if (total_bytes_ >= kUnlimited) return;
  if (snd_una_ == fin_seq() + 1) {
    state_ = SenderState::kClosed;
    stats_.complete_time = ctx_.now();
    rto_timer_.cancel();
    if (sim::IncidentSink* inc = ctx_.incidents()) {
      const auto [hi, lo] = net::flow_key_words(flow_key());
      inc->on_flow_complete(hi, lo, ctx_.now());
    }
    if (ctx_.tracer().enabled() && flow_span_ != 0) {
      sim::SpanTracer& tr = ctx_.tracer();
      // Children first, then the flow span, to keep B/E pairs a stack.
      if (rto_span_ != 0) tr.end_span(ctx_.now(), rto_span_, snd_una_);
      if (recovery_span_ != 0) tr.end_span(ctx_.now(), recovery_span_,
                                           snd_una_);
      if (ss_span_ != 0) {
        tr.end_span(ctx_.now(), ss_span_, static_cast<std::uint64_t>(cwnd_));
      }
      tr.end_span(ctx_.now(), flow_span_, stats_.bytes_acked,
                  stats_.retransmits);
      flow_span_ = handshake_span_ = ss_span_ = recovery_span_ = rto_span_ =
          0;
    }
    if (on_complete_) on_complete_(*this);
  }
}

}  // namespace hwatch::tcp
