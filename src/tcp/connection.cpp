#include "tcp/connection.hpp"

#include "tcp/cubic.hpp"

namespace hwatch::tcp {

std::unique_ptr<TcpSender> make_sender(Transport transport,
                                       net::Network& net, net::Host& host,
                                       std::uint16_t port,
                                       net::NodeId dst_node,
                                       std::uint16_t dst_port,
                                       const TcpConfig& config) {
  switch (transport) {
    case Transport::kDctcp:
      return std::make_unique<DctcpSender>(net, host, port, dst_node,
                                           dst_port, config);
    case Transport::kCubic:
      return std::make_unique<CubicSender>(net, host, port, dst_node,
                                           dst_port, config);
    case Transport::kNewReno:
      return std::make_unique<TcpSender>(net, host, port, dst_node,
                                         dst_port, config);
  }
  return nullptr;
}

TcpConnection::TcpConnection(net::Network& net, net::Host& src,
                             net::Host& dst, std::uint16_t src_port,
                             std::uint16_t dst_port, Transport transport,
                             TcpConfig config)
    : TcpConnection(net, net, src, dst, src_port, dst_port, transport,
                    std::move(config)) {}

TcpConnection::TcpConnection(net::Network& src_net, net::Network& dst_net,
                             net::Host& src, net::Host& dst,
                             std::uint16_t src_port, std::uint16_t dst_port,
                             Transport transport, TcpConfig config)
    : transport_(transport) {
  TcpConfig sink_cfg = config;
  if (transport == Transport::kDctcp) sink_cfg.ecn = EcnMode::kDctcp;
  sink_ = std::make_unique<TcpSink>(dst_net, dst, dst_port, sink_cfg);
  sender_ = make_sender(transport, src_net, src, src_port, dst.id(),
                        dst_port, config);
}

}  // namespace hwatch::tcp
