#include "tcp/common.hpp"

namespace hwatch::tcp {

std::string to_string(EcnMode mode) {
  switch (mode) {
    case EcnMode::kNone:
      return "no-ecn";
    case EcnMode::kClassic:
      return "classic-ecn";
    case EcnMode::kBlind:
      return "ecn-blind";
    case EcnMode::kDctcp:
      return "dctcp-ecn";
  }
  return "?";
}

std::string to_string(Transport t) {
  switch (t) {
    case Transport::kNewReno:
      return "newreno";
    case Transport::kDctcp:
      return "dctcp";
    case Transport::kCubic:
      return "cubic";
  }
  return "?";
}

std::uint16_t encode_window(std::uint64_t window_bytes, std::uint8_t shift) {
  const std::uint64_t raw = window_bytes >> shift;
  return raw > 0xFFFF ? 0xFFFF : static_cast<std::uint16_t>(raw);
}

std::uint64_t decode_window(std::uint16_t raw, std::uint8_t shift) {
  return std::uint64_t{raw} << shift;
}

}  // namespace hwatch::tcp
