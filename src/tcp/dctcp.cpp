#include "tcp/dctcp.hpp"

namespace hwatch::tcp {

void DctcpSender::on_ecn_feedback(const net::Packet& ack,
                                  std::uint64_t newly_acked) {
  acked_total_ += newly_acked;
  if (ack.tcp.ece) acked_marked_ += newly_acked;

  // Observation window: one round of the sequence space.
  if (snd_una() >= window_end_) {
    if (acked_total_ > 0) {
      const double f = static_cast<double>(acked_marked_) /
                       static_cast<double>(acked_total_);
      alpha_ = (1.0 - g_) * alpha_ + g_ * f;
    }
    acked_total_ = 0;
    acked_marked_ = 0;
    window_end_ = snd_nxt();
  }

  // Proportional reduction, at most once per window of data.
  if (ack.tcp.ece && !in_fast_recovery() && snd_una() > reduce_until_) {
    reduce_window(cwnd_ * (1.0 - alpha_ / 2.0));
    reduce_until_ = snd_nxt();
    ++stats_.ecn_reductions;
  }
}

}  // namespace hwatch::tcp
