#include "tcp/sink.hpp"

#include <utility>

#include "net/checksum.hpp"
#include "sim/incident_hooks.hpp"

namespace hwatch::tcp {

TcpSink::TcpSink(net::Network& net, net::Host& host, std::uint16_t port,
                 TcpConfig config)
    : net_(net),
      ctx_(net.ctx()),
      host_(host),
      port_(port),
      cfg_(config),
      delack_timer_(ctx_.scheduler(), [this] {
        send_ack(/*syn_ack=*/false, /*fin_ack=*/false);
      }) {
  host_.bind(port_, [this](net::Packet&& p) { on_packet(std::move(p)); });
}

TcpSink::~TcpSink() { host_.unbind(port_); }

double TcpSink::goodput_bps() const {
  if (stats_.first_data_time == sim::kTimeNever ||
      stats_.last_data_time <= stats_.first_data_time) {
    return 0.0;
  }
  const double span =
      sim::to_seconds(stats_.last_data_time - stats_.first_data_time);
  return static_cast<double>(stats_.bytes_received) * 8.0 / span;
}

net::Packet TcpSink::make_segment() const {
  net::Packet p;
  p.uid = ctx_.next_packet_uid();
  p.ip.src = host_.id();
  p.ip.dst = peer_node_;
  // ACKs from an ECN-capable endpoint are themselves ECT in our model
  // only for DCTCP-style stacks that want the reverse path watched; the
  // standard behaviour (pure ACKs Not-ECT) is kept.
  p.ip.ecn = net::Ecn::kNotEct;
  p.tcp.src_port = port_;
  p.tcp.dst_port = peer_port_;
  p.sent_time = ctx_.now();
  return p;
}

void TcpSink::on_packet(net::Packet&& p) {
  sim::ProfScope prof(ctx_.profiler(), sim::ProfComponent::kTcpSink);
  if (p.kind != net::PacketKind::kTcp) return;
  if (p.tcp.syn) {
    handle_syn(p);
    return;
  }
  if (!connected_) return;  // stray segment before SYN
  if (p.payload_bytes > 0 || p.tcp.fin) {
    handle_data(std::move(p));
  }
  // Pure ACKs towards the sink (e.g. the final ACK of the handshake)
  // need no action: the sink keeps no unacked state.
}

void TcpSink::handle_syn(const net::Packet& p) {
  // Idempotent: a retransmitted SYN elicits another SYN-ACK.
  peer_node_ = p.ip.src;
  peer_port_ = p.tcp.src_port;
  peer_wscale_ = p.tcp.wscale;
  peer_sack_ = p.tcp.sack_permitted && cfg_.sack;
  if (!connected_) {
    connected_ = true;
    rcv_nxt_ = p.tcp.seq + 1;  // SYN consumes one sequence number
    if (sim::IncidentSink* inc = ctx_.incidents()) {
      // Keyed in the sender's direction so the fan-in detector's flow
      // identities match the sender-side hooks and the span registry.
      const auto [hi, lo] = net::flow_key_words(net::flow_key_of(p));
      inc->on_sink_syn(host_.id(), hi, lo,
                       ctx_.tracer().flow_span_of(hi, lo), ctx_.now());
    }
  }
  update_ecn_state(p);
  send_ack(/*syn_ack=*/true, /*fin_ack=*/false);
}

void TcpSink::update_ecn_state(const net::Packet& p) {
  const bool ce = p.ip.ecn == net::Ecn::kCe;
  last_seg_ce_ = ce;
  if (ce) ++stats_.ce_marked_segments;
  if (cfg_.ecn == EcnMode::kClassic || cfg_.ecn == EcnMode::kBlind) {
    if (ce) ece_latched_ = true;
    if (p.tcp.cwr) ece_latched_ = false;
  }
}

void TcpSink::handle_data(net::Packet&& p) {
  // RFC 8257 delayed-ACK state machine: a change of the CE state while
  // an ACK is pending must first flush an ACK carrying the *old* state,
  // so the sender's marked-byte accounting stays exact.
  if (cfg_.ecn == EcnMode::kDctcp && cfg_.delayed_ack &&
      unacked_segments_ > 0 &&
      (p.ip.ecn == net::Ecn::kCe) != last_seg_ce_) {
    send_ack(/*syn_ack=*/false, /*fin_ack=*/false);
  }
  const std::uint64_t rcv_nxt_before = rcv_nxt_;
  update_ecn_state(p);
  if (p.payload_bytes > 0) {
    ++stats_.segments_received;
    const sim::TimePs now = ctx_.now();
    if (stats_.first_data_time == sim::kTimeNever) {
      stats_.first_data_time = now;
    }
    stats_.last_data_time = now;

    const std::uint64_t start = p.tcp.seq;
    const std::uint64_t end = start + p.payload_bytes;
    if (end <= rcv_nxt_) {
      ++stats_.duplicate_segments;
    } else {
      const std::uint64_t s = std::max(start, rcv_nxt_);
      last_arrival_start_ = s;
      have_last_arrival_ = true;
      if (s == rcv_nxt_ && ooo_.empty()) {
        // In-order arrival with nothing buffered — the steady-state
        // case.  Advance directly instead of round-tripping the bytes
        // through the reassembly map (whose node churn is a heap
        // allocation per segment, which the hot path forbids).
        stats_.bytes_received += end - rcv_nxt_;
        rcv_nxt_ = end;
      } else {
        // Insert [s, end), then advance rcv_nxt over any now-contiguous
        // run.
        ooo_.insert(s, end);
        if (auto head = ooo_.interval_containing(rcv_nxt_)) {
          stats_.bytes_received += head->end - rcv_nxt_;
          rcv_nxt_ = head->end;
          ooo_.erase_below(rcv_nxt_);
        }
      }
    }
  }

  bool fin_ack = false;
  if (p.tcp.fin) {
    // Accept the FIN only once all payload before it has arrived.
    const std::uint64_t fin_seq = p.tcp.seq + p.payload_bytes;
    if (fin_seq == rcv_nxt_) {
      rcv_nxt_ = fin_seq + 1;  // FIN consumes one sequence number
      fin_received_ = true;
      fin_ack = true;
    } else if (fin_received_ && fin_seq + 1 == rcv_nxt_) {
      fin_ack = true;  // retransmitted FIN
    }
  }

  // Delayed-ACK decision (RFC 5681): in-order data may be coalesced;
  // anything unusual — out-of-order or duplicate arrivals (the sender
  // needs the dupack), FINs — is acknowledged immediately.
  const bool advanced = rcv_nxt_ > rcv_nxt_before;
  if (cfg_.delayed_ack && advanced && ooo_.empty() && !p.tcp.fin) {
    ++unacked_segments_;
    if (unacked_segments_ < cfg_.ack_every) {
      delack_timer_.arm_if_idle(cfg_.delack_timeout);
      return;
    }
  }
  send_ack(/*syn_ack=*/false, fin_ack);
}

void TcpSink::send_ack(bool syn_ack, bool fin_ack) {
  (void)fin_ack;  // the cumulative ack already covers the FIN
  unacked_segments_ = 0;
  delack_timer_.cancel();
  net::Packet ack = make_segment();
  ack.tcp.ack_flag = true;
  ack.tcp.ack = rcv_nxt_;
  ack.tcp.seq = 0;  // the sink sends no data stream of its own
  if (syn_ack) {
    ack.tcp.syn = true;
    ack.tcp.wscale = cfg_.window_scale;
    ack.tcp.sack_permitted = cfg_.sack;
    // RFC 7323: the window field of a SYN/SYN-ACK is never scaled.
    ack.tcp.rwnd_raw = encode_window(cfg_.advertised_window_bytes, 0);
  } else {
    ack.tcp.rwnd_raw =
        encode_window(cfg_.advertised_window_bytes, cfg_.window_scale);
    if (peer_sack_ && !ooo_.empty()) {
      // RFC 2018: first block reports the most recently received data;
      // remaining slots repeat other pending blocks.
      auto add_block = [&ack](const net::SackBlock& b) {
        for (std::uint8_t i = 0; i < ack.tcp.sack_count; ++i) {
          if (ack.tcp.sack[i] == b) return;
        }
        if (ack.tcp.sack_count < ack.tcp.sack.size()) {
          ack.tcp.sack[ack.tcp.sack_count++] = b;
        }
      };
      if (have_last_arrival_) {
        if (auto b = ooo_.interval_containing(last_arrival_start_)) {
          add_block(*b);
        }
      }
      for (const auto& [s, e] : ooo_) {
        if (ack.tcp.sack_count >= ack.tcp.sack.size()) break;
        add_block(net::SackBlock{s, e});
      }
    }
  }
  switch (cfg_.ecn) {
    case EcnMode::kClassic:
    case EcnMode::kBlind:
      ack.tcp.ece = ece_latched_;
      break;
    case EcnMode::kDctcp:
      ack.tcp.ece = last_seg_ce_;
      break;
    case EcnMode::kNone:
      break;
  }
  net::stamp_checksum(ack);
  ++stats_.acks_sent;
  host_.send(std::move(ack));
}

}  // namespace hwatch::tcp
