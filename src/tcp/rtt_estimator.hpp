// RFC 6298 retransmission-timeout estimator with a configurable floor.
//
// The paper's core pathology is that minRTO (200 ms in stock Linux) is
// 3-4 orders of magnitude above datacenter RTTs (~100 us), so every
// tail-loss costs thousands of RTTs.  The floor is explicit here so
// scenarios can reproduce both the 200 ms default and the 4 ms testbed
// setting.
#pragma once

#include <algorithm>

#include "sim/time.hpp"

namespace hwatch::tcp {

class RttEstimator {
 public:
  RttEstimator(sim::TimePs initial_rto, sim::TimePs min_rto,
               sim::TimePs max_rto)
      : rto_(std::clamp(initial_rto, min_rto, max_rto)),
        min_rto_(min_rto),
        max_rto_(max_rto) {}

  /// Feeds one RTT measurement (Karn-filtered by the caller: samples from
  /// retransmitted segments must not reach here).
  void add_sample(sim::TimePs rtt);

  /// Current retransmission timeout.
  sim::TimePs rto() const { return rto_; }

  /// Doubles the RTO (exponential backoff on expiry), capped at max.
  void backoff();

  /// Resets backoff after a successful new-data ACK (RFC 6298 §5.7 keeps
  /// the backed-off value until the next sample; we recompute directly).
  void recompute();

  bool has_sample() const { return has_sample_; }
  sim::TimePs srtt() const { return srtt_; }
  sim::TimePs rttvar() const { return rttvar_; }

 private:
  sim::TimePs srtt_ = 0;
  sim::TimePs rttvar_ = 0;
  sim::TimePs rto_;
  sim::TimePs min_rto_;
  sim::TimePs max_rto_;
  bool has_sample_ = false;
};

}  // namespace hwatch::tcp
