#include "tcp/multipath.hpp"

#include <stdexcept>

namespace hwatch::tcp {

MultipathConnection::MultipathConnection(net::Network& net, net::Host& src,
                                         net::Host& dst,
                                         std::uint16_t base_src_port,
                                         std::uint16_t base_dst_port,
                                         const MultipathConfig& config)
    : ctx_(&net.ctx()) {
  if (config.subflows == 0) {
    throw std::invalid_argument("multipath: need at least one subflow");
  }
  subflows_.reserve(config.subflows);
  for (std::uint32_t i = 0; i < config.subflows; ++i) {
    auto conn = std::make_unique<TcpConnection>(
        net, src, dst, static_cast<std::uint16_t>(base_src_port + i),
        static_cast<std::uint16_t>(base_dst_port + i), config.transport,
        config.tcp);
    conn->sender().set_on_complete([this](const TcpSender&) {
      ++completed_;
      if (completed_ == subflows_.size()) {
        complete_time_ = ctx_->now();
        if (on_complete_) on_complete_(*this);
      }
    });
    subflows_.push_back(std::move(conn));
  }
}

void MultipathConnection::start(std::uint64_t total_bytes) {
  if (started_) throw std::logic_error("multipath: start() called twice");
  started_ = true;
  start_time_ = ctx_->now();
  if (total_bytes >= TcpSender::kUnlimited) {
    for (auto& sf : subflows_) sf->start(TcpSender::kUnlimited);
    return;
  }
  const std::uint64_t n = subflows_.size();
  const std::uint64_t share = total_bytes / n;
  std::uint64_t first_share = share + total_bytes % n;
  for (std::size_t i = 0; i < subflows_.size(); ++i) {
    subflows_[i]->start(i == 0 ? first_share : share);
  }
}

sim::TimePs MultipathConnection::fct() const {
  if (complete_time_ == sim::kTimeNever) return sim::kTimeNever;
  return complete_time_ - start_time_;
}

std::uint64_t MultipathConnection::bytes_acked() const {
  std::uint64_t total = 0;
  for (const auto& sf : subflows_) {
    total += sf->sender().stats().bytes_acked;
  }
  return total;
}

double MultipathConnection::aggregate_goodput_bps() const {
  double total = 0;
  for (const auto& sf : subflows_) total += sf->sink().goodput_bps();
  return total;
}

std::uint64_t MultipathConnection::total_retransmits() const {
  std::uint64_t total = 0;
  for (const auto& sf : subflows_) {
    total += sf->sender().stats().retransmits;
  }
  return total;
}

std::uint64_t MultipathConnection::total_timeouts() const {
  std::uint64_t total = 0;
  for (const auto& sf : subflows_) {
    total += sf->sender().stats().timeouts;
  }
  return total;
}

}  // namespace hwatch::tcp
