#include "tcp/rtt_estimator.hpp"

#include <cstdlib>

namespace hwatch::tcp {

void RttEstimator::add_sample(sim::TimePs rtt) {
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
  } else {
    // RFC 6298: alpha = 1/8, beta = 1/4.
    const sim::TimePs err = std::llabs(srtt_ - rtt);
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + rtt) / 8;
  }
  recompute();
}

void RttEstimator::recompute() {
  if (!has_sample_) return;
  const sim::TimePs candidate = srtt_ + std::max<sim::TimePs>(4 * rttvar_, 1);
  rto_ = std::clamp(candidate, min_rto_, max_rto_);
}

void RttEstimator::backoff() {
  rto_ = std::min(rto_ * 2, max_rto_);
}

}  // namespace hwatch::tcp
