// TCP receiver agent.
//
// Accepts a connection (SYN -> SYN-ACK), reassembles the byte stream
// (cumulative ACKs over an out-of-order segment map), advertises its
// receive window, and echoes ECN according to the peer's flavour:
//   * classic   — ECE latched from the first CE until a CWR arrives,
//   * DCTCP     — ECE mirrors the CE state of the segment being ACKed
//                 (per-packet ACKs make the delayed-ACK state machine
//                 collapse to exact mirroring),
//   * none/blind— never sets ECE / sets it but the peer ignores it.
// Note that stock ns-2 TCP has no receive-window processing at all; the
// paper had to add it, and so does this stack — the sink's advertised
// window is live flow control, which is exactly the knob HWatch rewrites
// in flight.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/network.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/annotations.hpp"
#include "sim/timer.hpp"
#include "tcp/common.hpp"
#include "tcp/interval_set.hpp"

namespace hwatch::tcp {

struct SinkStats {
  std::uint64_t bytes_received = 0;       // in-order payload bytes
  std::uint64_t segments_received = 0;    // data segments (incl. dup)
  std::uint64_t duplicate_segments = 0;   // below rcv_nxt entirely
  std::uint64_t ce_marked_segments = 0;   // data segments carrying CE
  std::uint64_t acks_sent = 0;
  sim::TimePs first_data_time = sim::kTimeNever;
  sim::TimePs last_data_time = 0;
};

class HWATCH_SHARD_CONFINED TcpSink {
 public:
  /// Binds to `port` on `host`.  `ecn_echo` should match the peer
  /// sender's EcnMode.
  TcpSink(net::Network& net, net::Host& host, std::uint16_t port,
          TcpConfig config);
  ~TcpSink();

  TcpSink(const TcpSink&) = delete;
  TcpSink& operator=(const TcpSink&) = delete;

  const SinkStats& stats() const { return stats_; }

  /// Next expected in-order byte (data starts at 1; SYN occupies 0).
  std::uint64_t rcv_nxt() const { return rcv_nxt_; }

  bool connected() const { return connected_; }
  bool fin_received() const { return fin_received_; }

  /// Window-scale shift the peer announced in its SYN.
  std::uint8_t peer_wscale() const { return peer_wscale_; }

  /// Application-level goodput between the first and last data arrival.
  double goodput_bps() const;

 private:
  void on_packet(net::Packet&& p);
  void handle_syn(const net::Packet& p);
  void handle_data(net::Packet&& p);
  void send_ack(bool syn_ack, bool fin_ack);
  void update_ecn_state(const net::Packet& p);
  net::Packet make_segment() const;

  net::Network& net_;
  sim::SimContext& ctx_;
  net::Host& host_;
  std::uint16_t port_;
  TcpConfig cfg_;

  bool connected_ = false;
  bool fin_received_ = false;
  std::uint64_t rcv_nxt_ = 0;
  net::NodeId peer_node_ = net::kInvalidNode;
  std::uint16_t peer_port_ = 0;
  std::uint8_t peer_wscale_ = 0;

  // Out-of-order segments above rcv_nxt.
  IntervalSet ooo_;
  // SACK: whether the peer negotiated it, and the most recent block for
  // RFC 2018's "first block" rule.
  bool peer_sack_ = false;
  std::uint64_t last_arrival_start_ = 0;
  bool have_last_arrival_ = false;

  // ECN echo state.
  bool ece_latched_ = false;    // classic mode
  bool last_seg_ce_ = false;    // dctcp mode

  // Delayed-ACK state (active only when cfg_.delayed_ack).
  std::uint32_t unacked_segments_ = 0;
  sim::Timer delack_timer_;

  SinkStats stats_;
};

}  // namespace hwatch::tcp
