// TCP sender agent: NewReno congestion control with configurable ECN
// behaviour, SYN handshake, fast retransmit/recovery, RFC 6298 RTO with
// exponential backoff, and live receive-window flow control (the channel
// HWatch actuates).
//
// Sequence space: SYN occupies seq 0, payload bytes occupy [1, total],
// FIN occupies total+1; the connection completes when the FIN is acked
// (snd_una == total + 2).  64-bit sequence numbers, no wraparound.
#pragma once

#include <cstdint>

#include "net/network.hpp"
#include "net/node.hpp"
#include "sim/annotations.hpp"
#include "sim/timer.hpp"
#include "tcp/common.hpp"
#include "tcp/interval_set.hpp"
#include "tcp/rtt_estimator.hpp"

namespace hwatch::tcp {

enum class SenderState : std::uint8_t {
  kIdle = 0,
  kSynSent,
  kEstablished,
  kClosed,  // FIN acked: transfer complete
};

struct SenderStats {
  sim::TimePs start_time = sim::kTimeNever;     // connect() call
  sim::TimePs established_time = sim::kTimeNever;
  sim::TimePs complete_time = sim::kTimeNever;  // FIN acked
  std::uint64_t bytes_acked = 0;                // payload bytes
  std::uint64_t segments_sent = 0;              // data segments, incl. retx
  std::uint64_t retransmits = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;      // RTO expiries with data outstanding
  std::uint64_t syn_timeouts = 0;  // handshake (SYN) retransmissions
  std::uint64_t ecn_reductions = 0;  // window cuts triggered by ECE
};

class HWATCH_SHARD_CONFINED TcpSender {
 public:
  /// `port` is the local (source) port; ACKs arrive addressed to it.
  TcpSender(net::Network& net, net::Host& host, std::uint16_t port,
            net::NodeId dst_node, std::uint16_t dst_port, TcpConfig config);
  virtual ~TcpSender();

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  /// Opens the connection and transfers `total_bytes` of payload, then a
  /// FIN.  Pass kUnlimited for a long-lived flow that never completes.
  static constexpr std::uint64_t kUnlimited = UINT64_MAX / 2;
  void start(std::uint64_t total_bytes);

  using CompletionCallback = sim::UniqueFunction<void(const TcpSender&)>;
  void set_on_complete(CompletionCallback cb) { on_complete_ = std::move(cb); }

  // --- observers -----------------------------------------------------
  SenderState state() const { return state_; }
  const SenderStats& stats() const { return stats_; }
  const TcpConfig& config() const { return cfg_; }
  double cwnd_bytes() const { return cwnd_; }
  std::uint64_t ssthresh_bytes() const { return ssthresh_; }
  std::uint64_t snd_una() const { return snd_una_; }
  std::uint64_t snd_nxt() const { return snd_nxt_; }
  std::uint64_t peer_rwnd_bytes() const { return peer_rwnd_; }
  bool in_fast_recovery() const { return in_recovery_; }
  const RttEstimator& rtt() const { return rtt_; }
  net::FlowKey flow_key() const {
    return net::FlowKey{host_.id(), dst_node_, port_, dst_port_};
  }
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Flow completion time; kTimeNever while incomplete.
  sim::TimePs fct() const {
    return stats_.complete_time == sim::kTimeNever
               ? sim::kTimeNever
               : stats_.complete_time - stats_.start_time;
  }

  virtual std::string transport_name() const { return "newreno"; }

 protected:
  /// ECN feedback hook, called for every arriving ACK before window
  /// growth.  The base class implements RFC 3168 (one halving per window,
  /// CWR handshake) for kClassic and ignores ECE for kBlind/kNone; DCTCP
  /// overrides with the proportional estimator.
  virtual void on_ecn_feedback(const net::Packet& ack,
                               std::uint64_t newly_acked);

  /// Multiplicative-decrease entry point shared by loss and ECN paths.
  void reduce_window(double new_cwnd_bytes);

  /// Schedules the CWR echo on the next new data segment — REQUIRED
  /// after any ECE-triggered reduction in classic-ECN mode, or the
  /// receiver's latched ECE never clears and the window death-spirals.
  void signal_cwr() { cwr_pending_ = true; }

  /// Window growth per newly-acked data; the base class implements
  /// byte-counting slow start (RFC 3465) + AIMD congestion avoidance.
  /// Cubic overrides the avoidance region.
  virtual void grow_window(std::uint64_t newly_acked);

  /// Slow-start threshold after loss detection (fast retransmit / RTO).
  /// NewReno halves the flight; Cubic multiplies cwnd by beta.
  virtual std::uint64_t ssthresh_after_loss();

  bool in_slow_start() const {
    return cwnd_ < static_cast<double>(ssthresh_);
  }
  sim::TimePs now() const;

  std::uint32_t mss() const { return cfg_.mss; }
  double cwnd_ = 0;  // bytes; fractional growth in congestion avoidance
  std::uint64_t ssthresh_ = 0;
  SenderStats stats_;

 private:
  void on_packet(net::Packet&& p);
  void handle_syn_ack(const net::Packet& p);
  void handle_ack(const net::Packet& p);
  void on_new_data_acked(const net::Packet& p, std::uint64_t newly);
  void on_duplicate_ack(const net::Packet& p);
  /// Retransmits the next not-yet-retransmitted hole (SACK) or the
  /// first unacked segment (NewReno).  Returns false when every hole
  /// below the recovery point was already retransmitted.
  bool retransmit_next_hole();
  void send_available();
  void emit_segment(std::uint64_t seq, bool retransmission);
  void send_syn();
  void send_pure_ack();
  void on_rto();
  void arm_rto();
  void maybe_complete();
  /// Out-of-line span bookkeeping for ACK progress (closes RTO /
  /// recovery / slow-start spans); called behind one tracer-enabled
  /// branch so the common path stays lean.
  void trace_on_ack_progress();
  std::uint64_t bytes_in_flight() const { return snd_nxt_ - snd_una_; }
  /// End of the payload region (exclusive): seq of the FIN.
  std::uint64_t fin_seq() const { return total_bytes_ + 1; }

  net::Network& net_;
  sim::SimContext& ctx_;
  net::Host& host_;
  std::uint16_t port_;
  net::NodeId dst_node_;
  std::uint16_t dst_port_;
  TcpConfig cfg_;
  /// Shared per-context cwnd histogram (one branch when disabled);
  /// sampled on every ACK that completes window processing.
  sim::Histogram& cwnd_hist_;

  SenderState state_ = SenderState::kIdle;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t snd_max_ = 0;  // highest sequence ever sent (for acks
                               // arriving after a go-back-N reset)
  bool fin_sent_ = false;

  std::uint64_t peer_rwnd_ = 0;
  std::uint8_t peer_wscale_ = 0;

  // SACK (RFC 2018) state: negotiated on the handshake; the scoreboard
  // holds selectively-acknowledged ranges above snd_una.
  bool peer_sack_ = false;
  IntervalSet sacked_;
  /// Highest sequence whose hole was already retransmitted in the
  /// current recovery episode (avoids duplicate hole retransmissions).
  std::uint64_t retx_hole_high_ = 0;

  std::uint32_t dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;
  /// Extra send budget from RFC 3042 limited transmit (cleared by the
  /// next cumulative ACK or RTO).
  std::uint64_t limited_transmit_bytes_ = 0;

  // Classic-ECN reduction bookkeeping.
  bool cwr_pending_ = false;
  std::uint64_t ecn_reduce_until_ = 0;  // no second cut before this seq acked

  // Karn-filtered single-sample RTT timing.
  bool timing_valid_ = false;
  std::uint64_t rtt_seq_ = 0;
  sim::TimePs rtt_sent_at_ = 0;
  bool syn_retransmitted_ = false;
  sim::TimePs syn_sent_at_ = 0;

  RttEstimator rtt_;
  sim::Timer rto_timer_;
  CompletionCallback on_complete_;

  // SpanTracer ids for the flow lifecycle (all 0 when tracing is off).
  // Slow-start span covers the initial slow start only — not reopened
  // after an RTO (documented simplification).
  std::uint64_t flow_span_ = 0;
  std::uint64_t handshake_span_ = 0;
  std::uint64_t ss_span_ = 0;
  std::uint64_t recovery_span_ = 0;
  std::uint64_t rto_span_ = 0;
  sim::TimePs rto_armed_at_ = 0;
};

}  // namespace hwatch::tcp
