// Connection factory: wires a sender agent on the source host to a sink
// agent on the destination host, with matching ECN behaviour on both
// ends.  Scenarios create one TcpConnection per flow.
#pragma once

#include <cstdint>
#include <memory>

#include "net/network.hpp"
#include "tcp/dctcp.hpp"
#include "tcp/sender.hpp"
#include "tcp/sink.hpp"

namespace hwatch::tcp {

/// Builds the right sender subclass for a transport flavour.
std::unique_ptr<TcpSender> make_sender(Transport transport,
                                       net::Network& net, net::Host& host,
                                       std::uint16_t port,
                                       net::NodeId dst_node,
                                       std::uint16_t dst_port,
                                       const TcpConfig& config);

class TcpConnection {
 public:
  /// Creates the sender on `src` (bound to src_port) and the sink on
  /// `dst` (bound to dst_port).  `config.ecn` applies to both endpoints
  /// (the sink's echo mode follows the sender's flavour).
  TcpConnection(net::Network& net, net::Host& src, net::Host& dst,
                std::uint16_t src_port, std::uint16_t dst_port,
                Transport transport, TcpConfig config);

  /// Cross-shard form: the sender lives on `src_net`'s context, the sink
  /// on `dst_net`'s — so ACK generation and delayed-ACK timers run in the
  /// destination shard, where the data packets arrive.  `src_net` and
  /// `dst_net` may be the same network (then this is the classic form).
  TcpConnection(net::Network& src_net, net::Network& dst_net, net::Host& src,
                net::Host& dst, std::uint16_t src_port,
                std::uint16_t dst_port, Transport transport,
                TcpConfig config);

  /// Begins the transfer immediately.
  void start(std::uint64_t bytes) { sender_->start(bytes); }

  TcpSender& sender() { return *sender_; }
  const TcpSender& sender() const { return *sender_; }
  TcpSink& sink() { return *sink_; }
  const TcpSink& sink() const { return *sink_; }
  Transport transport() const { return transport_; }

 private:
  Transport transport_;
  std::unique_ptr<TcpSink> sink_;      // constructed first: must be bound
  std::unique_ptr<TcpSender> sender_;  // before the SYN can be answered
};

}  // namespace hwatch::tcp
