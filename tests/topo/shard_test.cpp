// Fat-tree/leaf-spine shard partitioning and the sharded fabric builder:
// the logical partition is a pure function of the topology shape, node
// ids slice one global space, and a packet crossing shard boundaries
// reaches its destination through the conservative drain/run protocol.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/shard_channel.hpp"
#include "topo/fat_tree.hpp"
#include "topo/shard.hpp"

namespace hwatch::topo {
namespace {

net::QdiscFactory q() { return net::make_droptail_factory(256); }

std::string thrown_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(FatTreeValidation, HostsPerEdgeShapes) {
  EXPECT_EQ(fat_tree_hosts_per_edge(4, 0), 2u);   // classic k^3/4
  EXPECT_EQ(fat_tree_hosts_per_edge(8, 0), 4u);
  EXPECT_EQ(fat_tree_hosts_per_edge(4, 32), 4u);  // 32 over 8 edges
  EXPECT_EQ(fat_tree_hosts_per_edge(16, 10240), 80u);  // the 10k config
}

TEST(FatTreeValidation, ErrorsNameTheParameter) {
  const std::string odd = thrown_message([] { fat_tree_hosts_per_edge(3, 0); });
  EXPECT_NE(odd.find("FatTreeConfig.k"), std::string::npos) << odd;
  const std::string zero =
      thrown_message([] { fat_tree_hosts_per_edge(0, 0); });
  EXPECT_NE(zero.find("FatTreeConfig.k"), std::string::npos) << zero;
  const std::string uneven =
      thrown_message([] { fat_tree_hosts_per_edge(4, 10); });
  EXPECT_NE(uneven.find("FatTreeConfig.hosts"), std::string::npos) << uneven;
}

TEST(ShardPlanTest, FatTreePartitionShapes) {
  const FatTreeShardPlan plan = partition_fat_tree(4);
  EXPECT_EQ(plan.k, 4u);
  EXPECT_EQ(plan.hosts_per_edge, 2u);
  EXPECT_EQ(plan.shard_count, 8u);  // one per edge switch
  ASSERT_EQ(plan.agg_shard.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(plan.agg_shard[i], i);  // agg a of pod p -> pod's shard a
  }
  // (k/2)^2 = 4 cores round-robin over 8 shards: identity here.
  ASSERT_EQ(plan.core_shard.size(), 4u);
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(plan.core_shard[c], c);
  }
  EXPECT_EQ(plan.shard_of_edge(3, 1), 7u);
  EXPECT_THROW(partition_fat_tree(5), std::invalid_argument);
  EXPECT_THROW(partition_fat_tree(4, 7), std::invalid_argument);
}

TEST(ShardPlanTest, LeafSpineRoundRobin) {
  const LeafSpineShardPlan plan = partition_leaf_spine(4, 6);
  EXPECT_EQ(plan.shard_count, 4u);
  ASSERT_EQ(plan.spine_shard.size(), 6u);
  const std::vector<std::uint32_t> expect = {0, 1, 2, 3, 0, 1};
  EXPECT_EQ(plan.spine_shard, expect);
  EXPECT_THROW(partition_leaf_spine(0, 2), std::invalid_argument);
}

TEST(ShardedFatTreeTest, BuildsGlobalIdSlices) {
  ShardedFatTreeConfig cfg;
  cfg.k = 4;
  cfg.qdisc = q();
  const ShardedFatTree t = build_sharded_fat_tree(cfg);
  ASSERT_EQ(t.shards.size(), 8u);
  ASSERT_EQ(t.hosts.size(), 16u);
  EXPECT_EQ(t.lookahead, cfg.base_rtt / 12);
  EXPECT_GT(t.cross_links, 0u);

  net::NodeId expect_base = 0;
  for (std::size_t s = 0; s < t.shards.size(); ++s) {
    const auto& shard = t.shards[s];
    EXPECT_EQ(shard.net->id_base(), expect_base) << "shard " << s;
    ASSERT_EQ(shard.hosts.size(), 2u);
    EXPECT_EQ(shard.hosts[0]->id(), expect_base);
    ASSERT_NE(shard.edge, nullptr);
    ASSERT_NE(shard.agg, nullptr);
    EXPECT_EQ(shard.edge->id(), expect_base + 2);
    // Cores live on the first (k/2)^2 = 4 shards only.
    if (s < 4) {
      ASSERT_NE(shard.core, nullptr);
    } else {
      EXPECT_EQ(shard.core, nullptr);
    }
    EXPECT_FALSE(shard.ingress.empty());
    expect_base = shard.net->id_end();
  }
  // The global host list ascends (pod-major, shard-major slices).
  for (std::size_t i = 1; i < t.hosts.size(); ++i) {
    EXPECT_LT(t.hosts[i - 1]->id(), t.hosts[i]->id());
  }
}

TEST(ShardedFatTreeTest, CrossShardPacketDelivery) {
  ShardedFatTreeConfig cfg;
  cfg.k = 4;
  cfg.qdisc = q();
  ShardedFatTree t = build_sharded_fat_tree(cfg);
  net::Host* src = t.hosts.front();  // shard 0, pod 0
  net::Host* dst = t.hosts.back();   // shard 7, pod 3
  bool arrived = false;
  const std::uint16_t port = 60000;
  dst->bind(port, [&](net::Packet&&) { arrived = true; });
  net::Packet p;
  p.uid = t.shards[0].ctx->next_packet_uid();
  p.ip.src = src->id();
  p.ip.dst = dst->id();
  p.tcp.dst_port = port;
  src->send(std::move(p));

  // Hand-rolled conservative loop: drain every shard's ingress, then run
  // each shard one lookahead window — exactly what ShardGroup automates.
  std::vector<std::pair<net::Node*, net::ShardInbox::Item>> scratch;
  for (sim::TimePs end = t.lookahead;
       end < sim::milliseconds(1) && !arrived; end += t.lookahead) {
    for (auto& shard : t.shards) {
      net::drain_cross_shard_channels(shard.ingress, scratch);
    }
    for (auto& shard : t.shards) {
      shard.ctx->scheduler().run_until(end);
    }
  }
  EXPECT_TRUE(arrived);
}

TEST(ShardedFatTreeTest, RejectsBadConfig) {
  ShardedFatTreeConfig cfg;
  cfg.k = 4;
  EXPECT_THROW(build_sharded_fat_tree(cfg), std::invalid_argument);  // qdisc
  cfg.qdisc = q();
  cfg.base_rtt = 6;  // 6 ps / 12 links rounds to a zero-width window
  const std::string msg =
      thrown_message([&] { build_sharded_fat_tree(cfg); });
  EXPECT_NE(msg.find("base_rtt"), std::string::npos) << msg;
  cfg.base_rtt = sim::microseconds(100);
  cfg.k = 3;
  EXPECT_THROW(build_sharded_fat_tree(cfg), std::invalid_argument);
}

TEST(ShardedFatTreeTest, PacketUidsAreStripedPerShard) {
  ShardedFatTreeConfig cfg;
  cfg.k = 4;
  cfg.qdisc = q();
  const ShardedFatTree t = build_sharded_fat_tree(cfg);
  for (std::size_t s = 0; s < t.shards.size(); ++s) {
    EXPECT_EQ(t.shards[s].ctx->next_packet_uid(),
              (static_cast<std::uint64_t>(s) << 48) + 1)
        << "shard " << s;
  }
}

}  // namespace
}  // namespace hwatch::topo
