#include <gtest/gtest.h>

#include <set>

#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "topo/dumbbell.hpp"
#include "topo/fat_tree.hpp"
#include "topo/leaf_spine.hpp"

namespace hwatch::topo {
namespace {

net::QdiscFactory q() { return net::make_droptail_factory(256); }

/// Sends one packet host-to-host and reports whether it arrived.
bool reachable(sim::Scheduler& sched, net::Host& src, net::Host& dst) {
  bool arrived = false;
  const std::uint16_t port = 60000;
  dst.bind(port, [&](net::Packet&&) { arrived = true; });
  net::Packet p;
  p.ip.src = src.id();
  p.ip.dst = dst.id();
  p.tcp.dst_port = port;
  src.send(std::move(p));
  sched.run();
  dst.unbind(port);
  return arrived;
}

TEST(DumbbellTest, StructureMatchesConfig) {
  sim::SimContext ctx;
  net::Network net(ctx);
  DumbbellConfig cfg;
  cfg.pairs = 5;
  cfg.edge_qdisc = q();
  cfg.bottleneck_qdisc = q();
  Dumbbell d = build_dumbbell(net, cfg);
  EXPECT_EQ(d.left.size(), 5u);
  EXPECT_EQ(d.right.size(), 5u);
  EXPECT_NE(d.bottleneck, nullptr);
  EXPECT_EQ(net.hosts().size(), 10u);
  EXPECT_EQ(net.switches().size(), 2u);
  // Bottleneck connects the two switches.
  EXPECT_EQ(d.bottleneck->destination(), d.switch_right);
  EXPECT_EQ(d.bottleneck_reverse->destination(), d.switch_left);
}

TEST(DumbbellTest, AllPairsReachable) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  net::Network net(ctx);
  DumbbellConfig cfg;
  cfg.pairs = 3;
  cfg.edge_qdisc = q();
  cfg.bottleneck_qdisc = q();
  Dumbbell d = build_dumbbell(net, cfg);
  for (auto* l : d.left) {
    for (auto* r : d.right) {
      EXPECT_TRUE(reachable(sched, *l, *r)) << l->name() << "->" << r->name();
      EXPECT_TRUE(reachable(sched, *r, *l)) << r->name() << "->" << l->name();
    }
  }
}

TEST(DumbbellTest, RttMatchesTarget) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  net::Network net(ctx);
  DumbbellConfig cfg;
  cfg.pairs = 1;
  cfg.base_rtt = sim::microseconds(100);
  cfg.edge_qdisc = q();
  cfg.bottleneck_qdisc = q();
  Dumbbell d = build_dumbbell(net, cfg);

  // One-way propagation = 3 links; measure an empty-network ping.
  sim::TimePs arrival = 0;
  d.right[0]->bind(60000, [&](net::Packet&&) { arrival = sched.now(); });
  net::Packet p;
  p.ip.src = d.left[0]->id();
  p.ip.dst = d.right[0]->id();
  p.tcp.dst_port = 60000;
  p.payload_bytes = 0;
  d.left[0]->send(std::move(p));
  sched.run();
  // One way: ~50 us propagation plus tiny serialization.
  EXPECT_GE(arrival, sim::microseconds(48));
  EXPECT_LE(arrival, sim::microseconds(52));
}

TEST(DumbbellTest, ValidatesConfig) {
  sim::SimContext ctx;
  net::Network net(ctx);
  DumbbellConfig cfg;  // missing qdiscs
  cfg.pairs = 1;
  EXPECT_THROW(build_dumbbell(net, cfg), std::invalid_argument);
  cfg.edge_qdisc = q();
  cfg.bottleneck_qdisc = q();
  cfg.pairs = 0;
  EXPECT_THROW(build_dumbbell(net, cfg), std::invalid_argument);
}

TEST(LeafSpineTest, StructureMatchesTestbed) {
  sim::SimContext ctx;
  net::Network net(ctx);
  LeafSpineConfig cfg;
  cfg.racks = 4;
  cfg.hosts_per_rack = 21;
  cfg.edge_qdisc = q();
  cfg.fabric_qdisc = q();
  LeafSpine t = build_leaf_spine(net, cfg);
  EXPECT_EQ(t.hosts.size(), 4u);
  EXPECT_EQ(t.hosts[0].size(), 21u);
  EXPECT_EQ(net.hosts().size(), 84u);  // the testbed's 84 servers
  EXPECT_EQ(t.leaves.size(), 4u);
  EXPECT_EQ(t.spines.size(), 1u);
  EXPECT_EQ(t.downlinks.size(), 4u);
  for (auto* link : t.downlinks) EXPECT_NE(link, nullptr);
}

TEST(LeafSpineTest, CrossRackReachability) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  net::Network net(ctx);
  LeafSpineConfig cfg;
  cfg.racks = 3;
  cfg.hosts_per_rack = 2;
  cfg.edge_qdisc = q();
  cfg.fabric_qdisc = q();
  LeafSpine t = build_leaf_spine(net, cfg);
  EXPECT_TRUE(reachable(sched, *t.hosts[0][0], *t.hosts[2][1]));
  EXPECT_TRUE(reachable(sched, *t.hosts[1][1], *t.hosts[0][0]));
  // Intra-rack stays within the leaf.
  EXPECT_TRUE(reachable(sched, *t.hosts[0][0], *t.hosts[0][1]));
}

TEST(LeafSpineTest, IntraRackTrafficAvoidsSpine) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  net::Network net(ctx);
  LeafSpineConfig cfg;
  cfg.racks = 2;
  cfg.hosts_per_rack = 2;
  cfg.edge_qdisc = q();
  cfg.fabric_qdisc = q();
  LeafSpine t = build_leaf_spine(net, cfg);
  reachable(sched, *t.hosts[0][0], *t.hosts[0][1]);
  for (auto* link : t.downlinks) {
    EXPECT_EQ(link->packets_delivered(), 0u);
  }
}

TEST(FatTreeTest, K4Counts) {
  sim::SimContext ctx;
  net::Network net(ctx);
  FatTreeConfig cfg;
  cfg.k = 4;
  cfg.qdisc = q();
  FatTree t = build_fat_tree(net, cfg);
  EXPECT_EQ(t.hosts.size(), 16u);   // k^3/4
  EXPECT_EQ(t.cores.size(), 4u);    // (k/2)^2
  EXPECT_EQ(t.aggregations.size(), 8u);
  EXPECT_EQ(t.edges.size(), 8u);
  EXPECT_EQ(t.hosts_per_pod(), 4u);
}

TEST(FatTreeTest, CrossPodReachabilityEverywhere) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  net::Network net(ctx);
  FatTreeConfig cfg;
  cfg.k = 4;
  cfg.qdisc = q();
  FatTree t = build_fat_tree(net, cfg);
  // Sample pairs across every pod boundary.
  for (std::size_t i = 0; i < t.hosts.size(); i += 3) {
    for (std::size_t j = 1; j < t.hosts.size(); j += 5) {
      if (i == j) continue;
      EXPECT_TRUE(reachable(sched, *t.hosts[i], *t.hosts[j]))
          << t.hosts[i]->name() << "->" << t.hosts[j]->name();
    }
  }
}

TEST(FatTreeTest, EcmpSpreadsFlowsAcrossCores) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  net::Network net(ctx);
  FatTreeConfig cfg;
  cfg.k = 4;
  cfg.qdisc = q();
  FatTree t = build_fat_tree(net, cfg);
  // Many flows from pod 0 to pod 3; count cores that carried traffic.
  net::Host& dst = *t.hosts.back();
  dst.bind(60000, [](net::Packet&&) {});
  for (std::uint16_t sp = 1000; sp < 1200; ++sp) {
    net::Packet p;
    p.ip.src = t.hosts[0]->id();
    p.ip.dst = dst.id();
    p.tcp.src_port = sp;
    p.tcp.dst_port = 60000;
    t.hosts[0]->send(std::move(p));
  }
  sched.run();
  int cores_used = 0;
  for (auto* core : t.cores) {
    if (core->forwarded() > 0) ++cores_used;
  }
  EXPECT_GE(cores_used, 2);  // hash spreads across equal-cost cores
}

TEST(FatTreeTest, RejectsOddK) {
  sim::SimContext ctx;
  net::Network net(ctx);
  FatTreeConfig cfg;
  cfg.k = 3;
  cfg.qdisc = q();
  EXPECT_THROW(build_fat_tree(net, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace hwatch::topo
