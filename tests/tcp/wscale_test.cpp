// Window scaling at high BDP — the paper's Section IV-E argument:
// "scaling the window may be unnecessary for networks with BDP below
// 31.25 KB (1 Gb/s x 250 us), but at 40 Gb/s (BDP = 1.25 MB) or
// 100 Gb/s (3.125 MB) scaling becomes essential", which is why the
// HWatch flow table must track the scale factor.
#include <gtest/gtest.h>

#include "hwatch/shim.hpp"
#include "tcp/connection.hpp"
#include "tcp/tcp_test_util.hpp"

namespace hwatch::tcp {
namespace {

using testutil::TwoHostNet;

TcpConfig hi_bdp_cfg(std::uint8_t wscale) {
  TcpConfig c;
  c.ecn = EcnMode::kNone;
  c.min_rto = sim::milliseconds(50);
  c.initial_rto = sim::milliseconds(50);
  c.window_scale = wscale;
  c.advertised_window_bytes = 4u << 20;  // 4 MiB receive buffer
  c.initial_ssthresh_bytes = 16u << 20;
  return c;
}

/// 40 Gb/s path with 250 us RTT: BDP = 1.25 MB >> the 64 KB unscaled
/// window limit.
struct HighBdpNet : TwoHostNet {
  HighBdpNet()
      : TwoHostNet(net::make_droptail_factory(4096),
                   sim::DataRate::gbps(40), sim::microseconds(62)) {}
};

TEST(WindowScaleTest, UnscaledWindowCapsThroughputAtHighBdp) {
  HighBdpNet h;
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     hi_bdp_cfg(/*wscale=*/0));
  conn.start(TcpSender::kUnlimited);
  h.sched.run_until(sim::milliseconds(50));
  // Window limited to 65535 B per ~250 us RTT ~ 2.1 Gb/s ceiling.
  EXPECT_LT(conn.sink().goodput_bps(), 3e9);
  EXPECT_EQ(conn.sender().peer_rwnd_bytes(), 65535u);
}

TEST(WindowScaleTest, ScaledWindowReachesLineRate) {
  HighBdpNet h;
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     hi_bdp_cfg(/*wscale=*/6));
  conn.start(TcpSender::kUnlimited);
  h.sched.run_until(sim::milliseconds(50));
  // 4 MiB >> BDP: slow start reaches a large fraction of 40 Gb/s.
  EXPECT_GT(conn.sink().goodput_bps(), 20e9);
}

TEST(WindowScaleTest, BdpNumbersMatchThePaper) {
  EXPECT_EQ(sim::bdp_bytes(sim::DataRate::gbps(1), sim::microseconds(250)),
            31'250u);
  EXPECT_GT(sim::bdp_bytes(sim::DataRate::gbps(40), sim::microseconds(250)),
            std::uint64_t{65535});  // scaling essential at 40G
}

TEST(WindowScaleTest, HWatchRescalesCorrectlyAtHighBdp) {
  // The shim must encode its rewritten windows with the *guest's*
  // negotiated shift: a 5-segment throttle must survive the round trip
  // through the 16-bit field at shift 6 and land within one quantum.
  HighBdpNet h;
  sim::Rng rng(9);
  core::HWatchConfig hw;
  hw.probe_span = sim::microseconds(50);
  hw.policy.batch_interval = sim::milliseconds(100);  // beyond horizon
  hw.round_interval = sim::milliseconds(100);
  hw.setup_caution_divisor = 1;
  auto shim_a = core::install_hwatch(h.net, *h.a, hw, rng.fork());
  auto shim_b = core::install_hwatch(h.net, *h.b, hw, rng.fork());

  // Step-mark everything so the probe verdict is fully congested.
  TwoHostNet h2(net::make_dctcp_factory(4096, 0), sim::DataRate::gbps(40),
                sim::microseconds(62));
  auto shim_a2 = core::install_hwatch(h2.net, *h2.a, hw, rng.fork());
  auto shim_b2 = core::install_hwatch(h2.net, *h2.b, hw, rng.fork());
  TcpConnection conn(h2.net, *h2.a, *h2.b, 1000, 80, Transport::kNewReno,
                     hi_bdp_cfg(/*wscale=*/6));
  conn.start(4u << 20);
  h2.sched.run_until(sim::milliseconds(1));
  // ceil(10/2) = 5 segments, quantized by shift 6 (64-byte granules).
  const std::uint64_t target = 5u * net::kDefaultMss;
  const std::uint64_t got = conn.sender().peer_rwnd_bytes();
  EXPECT_LE(got, target);
  EXPECT_GE(got + (1u << 6), target);
}

}  // namespace
}  // namespace hwatch::tcp
