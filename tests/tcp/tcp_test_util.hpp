// Shared harness for transport tests: two hosts joined by one switch,
// with a configurable (usually small) bottleneck queue to provoke drops
// and marks deterministically.
#pragma once

#include <memory>

#include "net/network.hpp"
#include "sim/context.hpp"
#include "sim/scheduler.hpp"
#include "tcp/connection.hpp"

namespace hwatch::tcp::testutil {

struct TwoHostNet {
  /// The edge (a -> sw) runs 4x faster than the bottleneck (sw -> b) so
  /// bursts actually queue at the switch, as they do behind a
  /// shared core link.
  explicit TwoHostNet(net::QdiscFactory bottleneck_qdisc =
                          net::make_droptail_factory(1000),
                      sim::DataRate bottleneck_rate = sim::DataRate::gbps(10),
                      sim::TimePs link_delay = sim::microseconds(10))
      : net(ctx) {
    a = &net.add_host("a");
    b = &net.add_host("b");
    sw = &net.add_switch("sw");
    const sim::DataRate edge_rate(4 * bottleneck_rate.bits_per_sec());
    net.connect(*a, *sw, edge_rate, link_delay,
                net::make_droptail_factory(1000));
    auto duplex =
        net.connect(*sw, *b, bottleneck_rate, link_delay, bottleneck_qdisc);
    bottleneck = duplex.forward;
    net.compute_routes();
  }

  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  net::Network net;
  net::Host* a = nullptr;
  net::Host* b = nullptr;
  net::Switch* sw = nullptr;
  net::Link* bottleneck = nullptr;  // sw -> b
};

}  // namespace hwatch::tcp::testutil
