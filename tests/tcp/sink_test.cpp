// TcpSink unit behaviour: reassembly, ACK generation, window encoding.
#include <gtest/gtest.h>

#include <vector>

#include "net/checksum.hpp"
#include "net/network.hpp"
#include "tcp/sink.hpp"

namespace hwatch::tcp {
namespace {

/// Harness with a sink on host B and a hand-driven "sender": the test
/// injects crafted segments into the host and records the ACKs the sink
/// pushes to its NIC by replacing the peer node with a recorder.
class SinkHarness {
 public:
  SinkHarness() : network(ctx) {
    sender_host = &network.add_host("sender");
    sink_host = &network.add_host("sink");
    sw = &network.add_switch("sw");
    auto q = net::make_droptail_factory(1000);
    network.connect(*sender_host, *sw, sim::DataRate::gbps(10), 0, q);
    network.connect(*sink_host, *sw, sim::DataRate::gbps(10), 0, q);
    network.compute_routes();
    sender_host->bind(1000, [this](net::Packet&& p) {
      acks.push_back(std::move(p));
    });
  }

  net::Packet segment(std::uint64_t seq, std::uint32_t len,
                      net::Ecn ecn = net::Ecn::kEct0) {
    net::Packet p;
    p.uid = network.next_packet_uid();
    p.ip.src = sender_host->id();
    p.ip.dst = sink_host->id();
    p.ip.ecn = ecn;
    p.tcp.src_port = 1000;
    p.tcp.dst_port = 80;
    p.tcp.seq = seq;
    p.tcp.ack_flag = true;
    p.tcp.ack = 1;
    p.payload_bytes = len;
    net::stamp_checksum(p);
    return p;
  }

  net::Packet syn(std::uint8_t wscale = 6) {
    net::Packet p = segment(0, 0);
    p.tcp.ack_flag = false;
    p.tcp.syn = true;
    p.tcp.wscale = wscale;
    net::stamp_checksum(p);
    return p;
  }

  void deliver(net::Packet&& p) {
    sink_host->handle_packet(std::move(p));
    sched.run();
  }

  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  net::Network network;
  net::Host* sender_host;
  net::Host* sink_host;
  net::Switch* sw;
  std::vector<net::Packet> acks;
};

TcpConfig sink_cfg(EcnMode mode = EcnMode::kNone) {
  TcpConfig c;
  c.ecn = mode;
  c.advertised_window_bytes = 1u << 20;
  c.window_scale = 6;
  return c;
}

TEST(SinkTest, SynElicitsSynAckWithScaleAndUnscaledWindow) {
  SinkHarness h;
  TcpSink sink(h.network, *h.sink_host, 80, sink_cfg());
  h.deliver(h.syn(7));
  ASSERT_EQ(h.acks.size(), 1u);
  const auto& sa = h.acks[0];
  EXPECT_TRUE(sa.tcp.syn);
  EXPECT_TRUE(sa.tcp.ack_flag);
  EXPECT_EQ(sa.tcp.ack, 1u);
  EXPECT_EQ(sa.tcp.wscale, 6);  // own scale announced
  // RFC 7323: SYN-ACK window unscaled, saturating the 16-bit field.
  EXPECT_EQ(sa.tcp.rwnd_raw, 0xFFFF);
  EXPECT_EQ(sink.peer_wscale(), 7);
  EXPECT_TRUE(sink.connected());
}

TEST(SinkTest, RetransmittedSynGetsAnotherSynAck) {
  SinkHarness h;
  TcpSink sink(h.network, *h.sink_host, 80, sink_cfg());
  h.deliver(h.syn());
  h.deliver(h.syn());
  EXPECT_EQ(h.acks.size(), 2u);
  EXPECT_EQ(sink.rcv_nxt(), 1u);  // not advanced twice
}

TEST(SinkTest, InOrderDataAdvancesCumulativeAck) {
  SinkHarness h;
  TcpSink sink(h.network, *h.sink_host, 80, sink_cfg());
  h.deliver(h.syn());
  h.deliver(h.segment(1, 100));
  h.deliver(h.segment(101, 100));
  ASSERT_EQ(h.acks.size(), 3u);
  EXPECT_EQ(h.acks[1].tcp.ack, 101u);
  EXPECT_EQ(h.acks[2].tcp.ack, 201u);
  EXPECT_EQ(sink.stats().bytes_received, 200u);
}

TEST(SinkTest, EstablishedAckCarriesScaledWindow) {
  SinkHarness h;
  TcpSink sink(h.network, *h.sink_host, 80, sink_cfg());
  h.deliver(h.syn());
  h.deliver(h.segment(1, 100));
  // 1 MiB advertised at shift 6 = 16384 raw.
  EXPECT_EQ(h.acks[1].tcp.rwnd_raw, (1u << 20) >> 6);
}

TEST(SinkTest, OutOfOrderGeneratesDupAcksThenJumps) {
  SinkHarness h;
  TcpSink sink(h.network, *h.sink_host, 80, sink_cfg());
  h.deliver(h.syn());
  h.deliver(h.segment(101, 100));  // hole at [1,101)
  h.deliver(h.segment(201, 100));
  h.deliver(h.segment(301, 100));
  ASSERT_EQ(h.acks.size(), 4u);
  EXPECT_EQ(h.acks[1].tcp.ack, 1u);  // dupacks
  EXPECT_EQ(h.acks[2].tcp.ack, 1u);
  EXPECT_EQ(h.acks[3].tcp.ack, 1u);
  h.deliver(h.segment(1, 100));  // fill the hole
  EXPECT_EQ(h.acks[4].tcp.ack, 401u);  // cumulative jump
  EXPECT_EQ(sink.stats().bytes_received, 400u);
}

TEST(SinkTest, OverlappingSegmentsCountBytesOnce) {
  SinkHarness h;
  TcpSink sink(h.network, *h.sink_host, 80, sink_cfg());
  h.deliver(h.syn());
  h.deliver(h.segment(1, 200));
  h.deliver(h.segment(101, 200));  // overlaps [101,201), new [201,301)
  EXPECT_EQ(sink.stats().bytes_received, 300u);
  EXPECT_EQ(sink.rcv_nxt(), 301u);
}

TEST(SinkTest, FullyDuplicateSegmentCounted) {
  SinkHarness h;
  TcpSink sink(h.network, *h.sink_host, 80, sink_cfg());
  h.deliver(h.syn());
  h.deliver(h.segment(1, 100));
  h.deliver(h.segment(1, 100));
  EXPECT_EQ(sink.stats().duplicate_segments, 1u);
  EXPECT_EQ(sink.stats().bytes_received, 100u);
  // Still acked (dupack lets the sender detect loss of later data).
  EXPECT_EQ(h.acks.size(), 3u);
}

TEST(SinkTest, FinAcceptedOnlyInOrder) {
  SinkHarness h;
  TcpSink sink(h.network, *h.sink_host, 80, sink_cfg());
  h.deliver(h.syn());
  // FIN at seq 201 while [1,201) is missing: not accepted yet.
  net::Packet early_fin = h.segment(201, 0);
  early_fin.tcp.fin = true;
  net::stamp_checksum(early_fin);
  h.deliver(std::move(early_fin));
  EXPECT_FALSE(sink.fin_received());
  h.deliver(h.segment(1, 200));
  net::Packet fin = h.segment(201, 0);
  fin.tcp.fin = true;
  net::stamp_checksum(fin);
  h.deliver(std::move(fin));
  EXPECT_TRUE(sink.fin_received());
  EXPECT_EQ(sink.rcv_nxt(), 202u);  // FIN consumed a sequence slot
}

TEST(SinkTest, ClassicEceLatchedAcrossAcksUntilCwr) {
  SinkHarness h;
  TcpSink sink(h.network, *h.sink_host, 80, sink_cfg(EcnMode::kClassic));
  h.deliver(h.syn());
  h.deliver(h.segment(1, 100, net::Ecn::kCe));
  h.deliver(h.segment(101, 100, net::Ecn::kEct0));  // no CE, still latched
  EXPECT_TRUE(h.acks[1].tcp.ece);
  EXPECT_TRUE(h.acks[2].tcp.ece);
  net::Packet cwr_seg = h.segment(201, 100, net::Ecn::kEct0);
  cwr_seg.tcp.cwr = true;
  net::stamp_checksum(cwr_seg);
  h.deliver(std::move(cwr_seg));
  EXPECT_FALSE(h.acks[3].tcp.ece);  // CWR cleared the latch
}

TEST(SinkTest, DctcpEceMirrorsPerSegment) {
  SinkHarness h;
  TcpSink sink(h.network, *h.sink_host, 80, sink_cfg(EcnMode::kDctcp));
  h.deliver(h.syn());
  h.deliver(h.segment(1, 100, net::Ecn::kCe));
  h.deliver(h.segment(101, 100, net::Ecn::kEct0));
  h.deliver(h.segment(201, 100, net::Ecn::kCe));
  EXPECT_TRUE(h.acks[1].tcp.ece);
  EXPECT_FALSE(h.acks[2].tcp.ece);
  EXPECT_TRUE(h.acks[3].tcp.ece);
  EXPECT_EQ(sink.stats().ce_marked_segments, 2u);
}

TEST(SinkTest, NoEcnModeNeverSetsEce) {
  SinkHarness h;
  TcpSink sink(h.network, *h.sink_host, 80, sink_cfg(EcnMode::kNone));
  h.deliver(h.syn());
  h.deliver(h.segment(1, 100, net::Ecn::kCe));
  EXPECT_FALSE(h.acks[1].tcp.ece);
}

TEST(SinkTest, AcksCarryValidChecksums) {
  SinkHarness h;
  TcpSink sink(h.network, *h.sink_host, 80, sink_cfg());
  h.deliver(h.syn());
  h.deliver(h.segment(1, 100));
  for (const auto& ack : h.acks) {
    EXPECT_TRUE(net::verify_checksum(ack));
  }
}

TEST(SinkTest, GoodputComputedOverDataSpan) {
  SinkHarness h;
  TcpSink sink(h.network, *h.sink_host, 80, sink_cfg());
  h.deliver(h.syn());
  h.deliver(h.segment(1, 1000));
  EXPECT_DOUBLE_EQ(sink.goodput_bps(), 0.0);  // single instant: no span
  h.sched.run_until(sim::milliseconds(1));
  h.deliver(h.segment(1001, 1000));
  // 2000 B over 1 ms = 16 Mb/s.
  EXPECT_NEAR(sink.goodput_bps(), 16e6, 1e5);
}

TEST(SinkTest, UnbindsPortOnDestruction) {
  SinkHarness h;
  {
    TcpSink sink(h.network, *h.sink_host, 80, sink_cfg());
    EXPECT_TRUE(h.sink_host->is_bound(80));
  }
  EXPECT_FALSE(h.sink_host->is_bound(80));
}

TEST(SinkTest, StraySegmentBeforeSynIgnored) {
  SinkHarness h;
  TcpSink sink(h.network, *h.sink_host, 80, sink_cfg());
  h.deliver(h.segment(1, 100));
  EXPECT_TRUE(h.acks.empty());
  EXPECT_FALSE(sink.connected());
}

}  // namespace
}  // namespace hwatch::tcp
