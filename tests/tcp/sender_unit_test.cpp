// TcpSender unit tests: the test drives the sender by injecting crafted
// ACK segments directly into its host and observing the segments it
// emits through a wiretap filter — no sink, no network dynamics, so
// every window-arithmetic rule is checked in isolation.
#include <gtest/gtest.h>

#include <vector>

#include "net/checksum.hpp"
#include "net/network.hpp"
#include "tcp/sender.hpp"

namespace hwatch::tcp {
namespace {

class WireTap final : public net::PacketFilter {
 public:
  net::FilterVerdict on_outbound(net::Packet& p) override {
    sent.push_back(p);
    return net::FilterVerdict::kPass;
  }
  net::FilterVerdict on_inbound(net::Packet&) override {
    return net::FilterVerdict::kPass;
  }
  std::vector<net::Packet> sent;

  const net::Packet& last() const { return sent.back(); }
  std::size_t data_count() const {
    std::size_t n = 0;
    for (const auto& p : sent) {
      if (p.is_data()) ++n;
    }
    return n;
  }
};

struct SenderHarness {
  SenderHarness(TcpConfig cfg = default_cfg()) : network(ctx) {
    host = &network.add_host("src");
    peer = &network.add_host("dst");
    sw = &network.add_switch("sw");
    auto q = net::make_droptail_factory(4096);
    network.connect(*host, *sw, sim::DataRate::gbps(100), 0, q);
    network.connect(*peer, *sw, sim::DataRate::gbps(100), 0, q);
    network.compute_routes();
    host->install_filter(&tap);
    // The peer host swallows everything (no sink agent).
    sender = std::make_unique<TcpSender>(network, *host, 1000, peer->id(),
                                         80, cfg);
  }

  static TcpConfig default_cfg() {
    TcpConfig c;
    c.initial_cwnd_segments = 10;
    c.min_rto = sim::milliseconds(200);
    c.initial_rto = sim::milliseconds(200);
    c.ecn = EcnMode::kClassic;
    return c;
  }

  /// Processes in-flight packets without letting retransmission timers
  /// fire (there is no sink, so timers would re-arm forever under
  /// run()).
  void settle() { sched.run_until(sched.now() + sim::microseconds(10)); }

  /// Crafts an ACK from the peer and delivers it to the sender's host.
  void deliver_ack(std::uint64_t ack, std::uint16_t rwnd_raw = 0xFFFF,
                   std::uint8_t wscale_on_synack = 0, bool syn = false,
                   bool ece = false) {
    net::Packet p;
    p.uid = network.next_packet_uid();
    p.ip.src = peer->id();
    p.ip.dst = host->id();
    p.tcp.src_port = 80;
    p.tcp.dst_port = 1000;
    p.tcp.ack_flag = true;
    p.tcp.ack = ack;
    p.tcp.syn = syn;
    p.tcp.ece = ece;
    p.tcp.wscale = wscale_on_synack;
    p.tcp.rwnd_raw = rwnd_raw;
    net::stamp_checksum(p);
    host->handle_packet(std::move(p));
    settle();
  }

  void establish(std::uint16_t synack_rwnd = 0xFFFF,
                 std::uint8_t peer_wscale = 0) {
    sender->start(TcpSender::kUnlimited);
    settle();
    deliver_ack(1, synack_rwnd, peer_wscale, /*syn=*/true);
  }

  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  net::Network network;
  net::Host* host;
  net::Host* peer;
  net::Switch* sw;
  WireTap tap;
  std::unique_ptr<TcpSender> sender;
};

constexpr std::uint32_t kMss = net::kDefaultMss;

TEST(SenderUnitTest, SynCarriesEcnNegotiationAndScale) {
  SenderHarness h;
  h.sender->start(1000);
  h.settle();
  ASSERT_FALSE(h.tap.sent.empty());
  const auto& syn = h.tap.sent[0];
  EXPECT_TRUE(syn.tcp.syn);
  EXPECT_TRUE(syn.tcp.ece);  // RFC 3168 negotiation
  EXPECT_TRUE(syn.tcp.cwr);
  EXPECT_EQ(syn.tcp.wscale, h.sender->config().window_scale);
  EXPECT_TRUE(net::verify_checksum(syn));
  EXPECT_EQ(h.sender->state(), SenderState::kSynSent);
}

TEST(SenderUnitTest, NonEcnSynOmitsNegotiation) {
  auto cfg = SenderHarness::default_cfg();
  cfg.ecn = EcnMode::kNone;
  SenderHarness h(cfg);
  h.sender->start(1000);
  h.settle();
  EXPECT_FALSE(h.tap.sent[0].tcp.ece);
  EXPECT_FALSE(h.tap.sent[0].tcp.cwr);
}

TEST(SenderUnitTest, InitialBurstIsExactlyIcwSegments) {
  SenderHarness h;
  h.establish();
  EXPECT_EQ(h.sender->state(), SenderState::kEstablished);
  EXPECT_EQ(h.tap.data_count(), 10u);  // ICW = 10
  EXPECT_EQ(h.sender->snd_nxt(), 1u + 10u * kMss);
}

TEST(SenderUnitTest, SynAckWindowIsUnscaled) {
  // SYN-ACK advertises raw 100 with wscale 4; RFC 7323 says the SYN-ACK
  // window itself is NOT scaled: effective 100 bytes, not 1600.
  SenderHarness h;
  h.establish(/*synack_rwnd=*/100, /*peer_wscale=*/4);
  EXPECT_EQ(h.sender->peer_rwnd_bytes(), 100u);
}

TEST(SenderUnitTest, EstablishedAckWindowUsesPeerScale) {
  SenderHarness h;
  h.establish(0xFFFF, /*peer_wscale=*/4);
  h.deliver_ack(1 + kMss, /*rwnd_raw=*/100);
  EXPECT_EQ(h.sender->peer_rwnd_bytes(), 100u << 4);
}

TEST(SenderUnitTest, RwndLimitsFlight) {
  SenderHarness h;
  h.establish(/*synack_rwnd=*/3 * kMss);
  // cwnd is 10 MSS but the peer only allows 3.
  EXPECT_EQ(h.tap.data_count(), 3u);
}

TEST(SenderUnitTest, SenderSwsAvoidanceHoldsSubMssOpenings) {
  SenderHarness h;
  h.establish(/*synack_rwnd=*/static_cast<std::uint16_t>(kMss + 100));
  // One full segment fits; the 100-byte sliver must NOT be sent.
  EXPECT_EQ(h.tap.data_count(), 1u);
}

TEST(SenderUnitTest, SlowStartDoublesPerRtt) {
  SenderHarness h;
  h.establish();
  const double cwnd0 = h.sender->cwnd_bytes();
  // Ack the initial window segment by segment (per-packet ACKs, as the
  // sink generates them): byte-counting slow start adds one MSS each.
  for (int i = 1; i <= 10; ++i) h.deliver_ack(1 + i * kMss);
  EXPECT_NEAR(h.sender->cwnd_bytes(), cwnd0 + 10 * kMss, 1.0);
}

TEST(SenderUnitTest, SlowStartGrowthPerAckIsCapped) {
  // A single cumulative ACK covering many segments (stretch ACK) grows
  // cwnd by at most 2 MSS (RFC 3465, L = 2).
  SenderHarness h;
  h.establish();
  const double cwnd0 = h.sender->cwnd_bytes();
  h.deliver_ack(1 + 10 * kMss);
  EXPECT_NEAR(h.sender->cwnd_bytes(), cwnd0 + 2 * kMss, 1.0);
}

TEST(SenderUnitTest, CongestionAvoidanceGrowsOneMssPerWindow) {
  auto cfg = SenderHarness::default_cfg();
  cfg.initial_ssthresh_bytes = 4 * kMss;  // start in CA immediately
  cfg.initial_cwnd_segments = 4;
  SenderHarness h(cfg);
  h.establish();
  const double cwnd0 = h.sender->cwnd_bytes();
  h.deliver_ack(1 + 4 * kMss);  // one full window acked
  // ~mss^2/cwnd per acked window-worth: one ACK covering 4 MSS grows
  // cwnd by only one increment of mss*mss/cwnd.
  EXPECT_GT(h.sender->cwnd_bytes(), cwnd0);
  EXPECT_LT(h.sender->cwnd_bytes(), cwnd0 + kMss);
}

TEST(SenderUnitTest, ThreeDupAcksTriggerFastRetransmit) {
  SenderHarness h;
  h.establish();
  h.tap.sent.clear();
  h.deliver_ack(1);  // dup 1
  h.deliver_ack(1);  // dup 2
  EXPECT_EQ(h.sender->stats().fast_retransmits, 0u);
  h.deliver_ack(1);  // dup 3 -> retransmit seq 1
  EXPECT_EQ(h.sender->stats().fast_retransmits, 1u);
  EXPECT_TRUE(h.sender->in_fast_recovery());
  ASSERT_FALSE(h.tap.sent.empty());
  EXPECT_EQ(h.tap.sent[0].tcp.seq, 1u);
  EXPECT_EQ(h.sender->stats().retransmits, 1u);
}

TEST(SenderUnitTest, DupAckThresholdIsConfigurable) {
  auto cfg = SenderHarness::default_cfg();
  cfg.dupack_threshold = 5;
  SenderHarness h(cfg);
  h.establish();
  for (int i = 0; i < 4; ++i) h.deliver_ack(1);
  EXPECT_EQ(h.sender->stats().fast_retransmits, 0u);
  h.deliver_ack(1);
  EXPECT_EQ(h.sender->stats().fast_retransmits, 1u);
}

TEST(SenderUnitTest, PartialAckRetransmitsNextHole) {
  SenderHarness h;
  h.establish();
  for (int i = 0; i < 3; ++i) h.deliver_ack(1);  // enter recovery
  ASSERT_TRUE(h.sender->in_fast_recovery());
  h.tap.sent.clear();
  // Partial ack: first segment recovered, second still missing.
  h.deliver_ack(1 + kMss);
  ASSERT_TRUE(h.sender->in_fast_recovery());
  ASSERT_FALSE(h.tap.sent.empty());
  EXPECT_EQ(h.tap.sent[0].tcp.seq, 1u + kMss);
}

TEST(SenderUnitTest, FullAckExitsRecoveryAtSsthresh) {
  SenderHarness h;
  h.establish();
  const std::uint64_t recover_point = h.sender->snd_nxt();
  for (int i = 0; i < 3; ++i) h.deliver_ack(1);
  ASSERT_TRUE(h.sender->in_fast_recovery());
  h.deliver_ack(recover_point);
  EXPECT_FALSE(h.sender->in_fast_recovery());
  EXPECT_EQ(static_cast<std::uint64_t>(h.sender->cwnd_bytes()),
            h.sender->ssthresh_bytes());
}

TEST(SenderUnitTest, EceHalvesWindowOncePerRtt) {
  SenderHarness h;
  h.establish();
  const double cwnd0 = h.sender->cwnd_bytes();
  h.deliver_ack(1 + kMss, 0xFFFF, 0, false, /*ece=*/true);
  const double cwnd1 = h.sender->cwnd_bytes();
  EXPECT_NEAR(cwnd1, cwnd0 / 2, 1.0);
  EXPECT_EQ(h.sender->stats().ecn_reductions, 1u);
  // A second ECE inside the same window must not cut again.
  h.deliver_ack(1 + 2 * kMss, 0xFFFF, 0, false, /*ece=*/true);
  EXPECT_GE(h.sender->cwnd_bytes(), cwnd1);
  EXPECT_EQ(h.sender->stats().ecn_reductions, 1u);
}

TEST(SenderUnitTest, CwrFlagSetOnFirstSegmentAfterReduction) {
  SenderHarness h;
  h.establish();
  h.tap.sent.clear();
  h.deliver_ack(1 + kMss, 0xFFFF, 0, false, /*ece=*/true);
  // The reduction halves cwnd below the in-flight amount, so new data
  // flows only after more ACKs; the first data segment carries CWR.
  h.deliver_ack(1 + 6 * kMss);
  bool saw_cwr = false;
  for (const auto& p : h.tap.sent) {
    if (p.is_data()) {
      saw_cwr = p.tcp.cwr;
      break;
    }
  }
  EXPECT_TRUE(saw_cwr);
}

TEST(SenderUnitTest, BlindModeIgnoresEce) {
  auto cfg = SenderHarness::default_cfg();
  cfg.ecn = EcnMode::kBlind;
  SenderHarness h(cfg);
  h.establish();
  const double cwnd0 = h.sender->cwnd_bytes();
  h.deliver_ack(1 + kMss, 0xFFFF, 0, false, /*ece=*/true);
  EXPECT_GE(h.sender->cwnd_bytes(), cwnd0);
  EXPECT_EQ(h.sender->stats().ecn_reductions, 0u);
}

TEST(SenderUnitTest, RtoCollapsesWindowAndRetransmits) {
  SenderHarness h;
  h.establish();
  h.tap.sent.clear();
  h.sched.run_until(h.sched.now() + sim::milliseconds(250));
  EXPECT_EQ(h.sender->stats().timeouts, 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(h.sender->cwnd_bytes()), kMss);
  ASSERT_FALSE(h.tap.sent.empty());
  EXPECT_EQ(h.tap.sent[0].tcp.seq, 1u);  // go-back-N from snd_una
}

TEST(SenderUnitTest, RtoBacksOffExponentially) {
  SenderHarness h;
  h.establish();
  const sim::TimePs t0 = h.sched.now();
  h.sched.run_until(t0 + sim::milliseconds(200 + 400 + 800) +
                    sim::milliseconds(50));
  EXPECT_EQ(h.sender->stats().timeouts, 3u);
}

TEST(SenderUnitTest, AckAboveSndMaxIgnored) {
  SenderHarness h;
  h.establish();
  const auto una_before = h.sender->snd_una();
  h.deliver_ack(h.sender->snd_nxt() + 999'999);  // bogus future ack
  EXPECT_EQ(h.sender->snd_una(), una_before);
}

TEST(SenderUnitTest, DuplicateSynAckIsReacknowledged) {
  SenderHarness h;
  h.establish();
  h.tap.sent.clear();
  h.deliver_ack(1, 0xFFFF, 0, /*syn=*/true);  // duplicate SYN-ACK
  ASSERT_FALSE(h.tap.sent.empty());
  EXPECT_TRUE(h.tap.sent[0].is_pure_ack());
}

TEST(SenderUnitTest, WindowUpdateIsNotCountedAsDupAck) {
  // RFC 5681: an ACK whose advertised window changed is a window
  // update, not a duplicate — exactly what an HWatch deferred grant
  // looks like on the wire.
  SenderHarness h;
  h.establish();
  h.deliver_ack(1 + kMss);  // some data still in flight
  for (std::uint16_t w = 0xFF00; w > 0xFEFB; --w) {
    h.deliver_ack(1 + kMss, /*rwnd_raw=*/w);  // same ack, new window
  }
  EXPECT_EQ(h.sender->stats().fast_retransmits, 0u);
  // Identical windows, same ack: the first is a window update (the
  // window changed from the last probe), the next three are genuine
  // dupacks.
  for (int i = 0; i < 4; ++i) h.deliver_ack(1 + kMss, 0xFE00);
  EXPECT_EQ(h.sender->stats().fast_retransmits, 1u);
}

TEST(SenderUnitTest, ZeroWindowStillProbesForward) {
  SenderHarness h;
  h.establish();
  h.deliver_ack(1 + 10 * kMss, /*rwnd_raw=*/0);  // peer closes window
  h.tap.sent.clear();
  // Nothing in flight + zero window: the 1-MSS persist floor lets the
  // next RTO push one segment so the connection cannot deadlock.
  h.sched.run_until(h.sched.now() + sim::milliseconds(250));
  EXPECT_GE(h.tap.data_count(), 1u);
}

}  // namespace
}  // namespace hwatch::tcp
