// SACK (RFC 2018): interval-set mechanics, sink advertisement, sender
// scoreboard and selective retransmission.
#include <gtest/gtest.h>

#include <set>

#include "hwatch/shim.hpp"
#include "tcp/interval_set.hpp"
#include "tcp/tcp_test_util.hpp"
#include "tcp/connection.hpp"

namespace hwatch::tcp {
namespace {

// -------------------------------------------------------- IntervalSet

TEST(IntervalSetTest, InsertAndMerge) {
  IntervalSet s;
  EXPECT_EQ(s.insert(10, 20), 10u);
  EXPECT_EQ(s.insert(30, 40), 10u);
  EXPECT_EQ(s.size(), 2u);
  // Bridge the gap: merges all three.
  EXPECT_EQ(s.insert(20, 30), 10u);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.covered_bytes(), 30u);
}

TEST(IntervalSetTest, OverlapCountsNewBytesOnly) {
  IntervalSet s;
  s.insert(10, 20);
  EXPECT_EQ(s.insert(15, 25), 5u);
  EXPECT_EQ(s.insert(5, 30), 10u);
  EXPECT_EQ(s.insert(5, 30), 0u);
  EXPECT_EQ(s.covered_bytes(), 25u);
}

TEST(IntervalSetTest, EmptyInsertIsNoop) {
  IntervalSet s;
  EXPECT_EQ(s.insert(10, 10), 0u);
  EXPECT_EQ(s.insert(10, 5), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSetTest, ContainsAndIntervalContaining) {
  IntervalSet s;
  s.insert(10, 20);
  EXPECT_FALSE(s.contains(9));
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(19));
  EXPECT_FALSE(s.contains(20));
  auto blk = s.interval_containing(15);
  ASSERT_TRUE(blk.has_value());
  EXPECT_EQ(blk->start, 10u);
  EXPECT_EQ(blk->end, 20u);
  EXPECT_FALSE(s.interval_containing(25).has_value());
}

TEST(IntervalSetTest, NextUncoveredAndGapEnd) {
  IntervalSet s;
  s.insert(10, 20);
  s.insert(30, 40);
  EXPECT_EQ(s.next_uncovered(5), 5u);
  EXPECT_EQ(s.next_uncovered(10), 20u);
  EXPECT_EQ(s.next_uncovered(15), 20u);
  EXPECT_EQ(s.gap_end(20, 100), 30u);
  EXPECT_EQ(s.gap_end(40, 100), 100u);
}

TEST(IntervalSetTest, EraseBelowTrimsStraddlers) {
  IntervalSet s;
  s.insert(10, 20);
  s.insert(30, 40);
  s.erase_below(15);
  EXPECT_FALSE(s.contains(12));
  EXPECT_TRUE(s.contains(15));
  EXPECT_EQ(s.covered_bytes(), 15u);
  s.erase_below(40);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSetTest, RandomizedSelfConsistency) {
  IntervalSet s;
  std::set<std::uint64_t> reference;
  std::uint64_t x = 7;
  for (int i = 0; i < 300; ++i) {
    x = x * 6364136223846793005ull + 1;
    const std::uint64_t a = x % 500;
    const std::uint64_t b = a + 1 + x % 37;
    s.insert(a, b);
    for (std::uint64_t v = a; v < b; ++v) reference.insert(v);
  }
  EXPECT_EQ(s.covered_bytes(), reference.size());
  for (std::uint64_t v = 0; v < 560; ++v) {
    EXPECT_EQ(s.contains(v), reference.contains(v)) << v;
  }
}

// ------------------------------------------------------- end to end

using testutil::TwoHostNet;

TcpConfig sack_cfg(bool sack = true) {
  TcpConfig c;
  c.min_rto = sim::milliseconds(200);
  c.initial_rto = sim::milliseconds(200);
  c.ecn = EcnMode::kNone;
  c.sack = sack;
  c.initial_cwnd_segments = 10;
  return c;
}

/// Drops a set of data-segment indices (first transmission only).
class DropIndices final : public net::PacketFilter {
 public:
  explicit DropIndices(std::set<int> indices) : drop_(std::move(indices)) {}
  net::FilterVerdict on_outbound(net::Packet& p) override {
    if (!p.is_data()) return net::FilterVerdict::kPass;
    if (first_tx_.insert(p.tcp.seq).second) {
      if (drop_.contains(static_cast<int>(first_tx_.size()))) {
        return net::FilterVerdict::kDrop;
      }
    }
    return net::FilterVerdict::kPass;
  }
  net::FilterVerdict on_inbound(net::Packet&) override {
    return net::FilterVerdict::kPass;
  }

 private:
  std::set<int> drop_;
  std::set<std::uint64_t> first_tx_;
};

/// Records ACK headers arriving back at the sender host.
class AckTap final : public net::PacketFilter {
 public:
  net::FilterVerdict on_outbound(net::Packet&) override {
    return net::FilterVerdict::kPass;
  }
  net::FilterVerdict on_inbound(net::Packet& p) override {
    if (p.is_pure_ack()) acks.push_back(p);
    return net::FilterVerdict::kPass;
  }
  std::vector<net::Packet> acks;
};

TEST(SackTest, NegotiatedOnlyWhenBothEndsEnable) {
  TwoHostNet h;
  AckTap tap;
  h.a->install_filter(&tap);
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     sack_cfg(true));
  conn.start(5 * 1442);
  h.sched.run_until(sim::milliseconds(50));
  // Clean path: no out-of-order data, so no SACK blocks ever appear.
  for (const auto& a : tap.acks) EXPECT_EQ(a.tcp.sack_count, 0);
}

TEST(SackTest, SinkAdvertisesHoles) {
  TwoHostNet h;
  AckTap tap;
  h.a->install_filter(&tap);
  DropIndices filter({2});
  h.a->install_filter(&filter);
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     sack_cfg());
  conn.start(6 * 1442);
  h.sched.run_until(sim::seconds(2));
  EXPECT_EQ(conn.sender().state(), SenderState::kClosed);
  // Some dupacks carried SACK blocks describing data above the hole.
  bool saw_block = false;
  for (const auto& a : tap.acks) {
    if (a.tcp.sack_count > 0) {
      saw_block = true;
      EXPECT_GT(a.tcp.sack[0].start, a.tcp.ack);
      EXPECT_GT(a.tcp.sack[0].end, a.tcp.sack[0].start);
    }
  }
  EXPECT_TRUE(saw_block);
}

TEST(SackTest, MultiLossRecoversInOneRttInsteadOfOnePerHole) {
  // Drop three spread-out segments of one window.  NewReno needs one
  // partial-ACK round trip per hole; SACK retransmits the later holes
  // on dupacks within the same RTT.
  auto run = [](bool sack) {
    TwoHostNet h;
    auto cfg = sack_cfg(sack);
    cfg.initial_cwnd_segments = 16;
    DropIndices filter({3, 7, 11});
    h.a->install_filter(&filter);
    TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                       cfg);
    conn.start(16 * cfg.mss);
    h.sched.run_until(sim::seconds(2));
    EXPECT_EQ(conn.sender().state(), SenderState::kClosed);
    EXPECT_EQ(conn.sink().stats().bytes_received, 16u * cfg.mss);
    EXPECT_EQ(conn.sender().stats().timeouts, 0u);
    return conn.sender().fct();
  };
  const auto reno_fct = run(false);
  const auto sack_fct = run(true);
  EXPECT_LT(sack_fct, reno_fct);
}

TEST(SackTest, NoDuplicateDataRetransmitted) {
  // With SACK the sender must not re-send bytes the receiver already
  // holds: total segments sent stays close to the minimum.
  auto run = [](bool sack) {
    TwoHostNet h;
    auto cfg = sack_cfg(sack);
    cfg.initial_cwnd_segments = 16;
    DropIndices filter({3, 7, 11});
    h.a->install_filter(&filter);
    TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                       cfg);
    conn.start(16 * cfg.mss);
    h.sched.run_until(sim::seconds(2));
    return conn.sink().stats().duplicate_segments;
  };
  EXPECT_LE(run(true), run(false));
}

TEST(SackTest, InteropWithNonSackPeer) {
  // Sender offers SACK, sink refuses: everything falls back to NewReno
  // and the transfer still completes after losses.
  TwoHostNet h;
  TcpSink sink(h.net, *h.b, 80, sack_cfg(false));
  auto cfg = sack_cfg(true);
  cfg.initial_cwnd_segments = 16;
  DropIndices filter({3, 7});
  h.a->install_filter(&filter);
  TcpSender sender(h.net, *h.a, 1000, h.b->id(), 80, cfg);
  sender.start(16 * cfg.mss);
  h.sched.run_until(sim::seconds(2));
  EXPECT_EQ(sender.state(), SenderState::kClosed);
  EXPECT_EQ(sink.stats().bytes_received, 16u * cfg.mss);
}

TEST(SackTest, WorksThroughHWatchShim) {
  // The shim rewrites rwnd on ACKs that may carry SACK blocks; the
  // incremental checksum fix-up and the blocks must coexist.
  TwoHostNet h;
  hwatch::sim::Rng rng(21);
  hwatch::core::HWatchConfig hw;
  hw.probe_span = sim::microseconds(20);
  auto shim_a = hwatch::core::install_hwatch(h.net, *h.a, hw, rng.fork());
  auto shim_b = hwatch::core::install_hwatch(h.net, *h.b, hw, rng.fork());
  auto cfg = sack_cfg(true);
  cfg.initial_cwnd_segments = 16;
  DropIndices filter({5});
  h.a->install_filter(&filter);
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     cfg);
  conn.start(16 * cfg.mss);
  h.sched.run_until(sim::seconds(2));
  EXPECT_EQ(conn.sender().state(), SenderState::kClosed);
  EXPECT_EQ(conn.sink().stats().bytes_received, 16u * cfg.mss);
  EXPECT_EQ(conn.sender().stats().timeouts, 0u);
}

}  // namespace
}  // namespace hwatch::tcp
