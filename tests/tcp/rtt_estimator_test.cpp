#include "tcp/rtt_estimator.hpp"

#include <gtest/gtest.h>

namespace hwatch::tcp {
namespace {

using sim::microseconds;
using sim::milliseconds;

RttEstimator make(sim::TimePs min_rto = milliseconds(200)) {
  return RttEstimator(milliseconds(200), min_rto, sim::seconds_i(60));
}

TEST(RttEstimatorTest, InitialRtoBeforeAnySample) {
  auto e = make();
  EXPECT_FALSE(e.has_sample());
  EXPECT_EQ(e.rto(), milliseconds(200));
}

TEST(RttEstimatorTest, FirstSampleInitializesSrttAndVar) {
  auto e = make();
  e.add_sample(microseconds(100));
  EXPECT_TRUE(e.has_sample());
  EXPECT_EQ(e.srtt(), microseconds(100));
  EXPECT_EQ(e.rttvar(), microseconds(50));
}

TEST(RttEstimatorTest, MinRtoFloorsDatacenterRtts) {
  // The paper's core pathology: a 100 us RTT network still gets a 200 ms
  // timeout because of the Linux minRTO floor.
  auto e = make(milliseconds(200));
  for (int i = 0; i < 50; ++i) e.add_sample(microseconds(100));
  EXPECT_EQ(e.rto(), milliseconds(200));
}

TEST(RttEstimatorTest, SmallMinRtoTracksRtt) {
  auto e = make(milliseconds(4));
  for (int i = 0; i < 50; ++i) e.add_sample(microseconds(100));
  EXPECT_EQ(e.rto(), milliseconds(4));  // srtt + 4*var << 4 ms floor
}

TEST(RttEstimatorTest, EwmaConvergesToStableRtt) {
  auto e = make(microseconds(1));
  for (int i = 0; i < 100; ++i) e.add_sample(microseconds(500));
  EXPECT_NEAR(static_cast<double>(e.srtt()),
              static_cast<double>(microseconds(500)), 1e6);
  // Variance decays towards 0 with constant samples.
  EXPECT_LT(e.rttvar(), microseconds(50));
}

TEST(RttEstimatorTest, VarianceGrowsWithJitter) {
  auto low = make(microseconds(1));
  auto high = make(microseconds(1));
  for (int i = 0; i < 100; ++i) {
    low.add_sample(microseconds(500));
    high.add_sample(i % 2 == 0 ? microseconds(100) : microseconds(900));
  }
  EXPECT_GT(high.rttvar(), low.rttvar());
  EXPECT_GT(high.rto(), low.rto());
}

TEST(RttEstimatorTest, BackoffDoublesAndCaps) {
  RttEstimator e(milliseconds(200), milliseconds(200), milliseconds(1000));
  e.backoff();
  EXPECT_EQ(e.rto(), milliseconds(400));
  e.backoff();
  EXPECT_EQ(e.rto(), milliseconds(800));
  e.backoff();
  EXPECT_EQ(e.rto(), milliseconds(1000));  // capped
  e.backoff();
  EXPECT_EQ(e.rto(), milliseconds(1000));
}

TEST(RttEstimatorTest, SampleAfterBackoffRecomputes) {
  auto e = make(milliseconds(4));
  e.add_sample(microseconds(100));
  e.backoff();
  e.backoff();
  EXPECT_GT(e.rto(), milliseconds(4));
  e.add_sample(microseconds(100));
  EXPECT_EQ(e.rto(), milliseconds(4));
}

TEST(RttEstimatorTest, RtoAlwaysAboveSrtt) {
  auto e = make(microseconds(1));
  std::uint64_t x = 99;
  for (int i = 0; i < 200; ++i) {
    x = x * 6364136223846793005ull + 1;
    e.add_sample(microseconds(50 + static_cast<sim::TimePs>(x % 500)));
    EXPECT_GT(e.rto(), e.srtt());
  }
}

}  // namespace
}  // namespace hwatch::tcp
