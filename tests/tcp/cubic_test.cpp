// CUBIC congestion control behaviour.
#include "tcp/cubic.hpp"

#include <gtest/gtest.h>

#include "tcp/tcp_test_util.hpp"
#include "tcp/connection.hpp"

namespace hwatch::tcp {
namespace {

using testutil::TwoHostNet;

TcpConfig cubic_cfg(EcnMode ecn = EcnMode::kNone) {
  TcpConfig c;
  c.min_rto = sim::milliseconds(10);
  c.initial_rto = sim::milliseconds(10);
  c.ecn = ecn;
  return c;
}

TEST(CubicTest, FactoryAndName) {
  TwoHostNet h;
  auto sender = make_sender(Transport::kCubic, h.net, *h.a, 1000,
                            h.b->id(), 80, cubic_cfg());
  ASSERT_NE(sender, nullptr);
  EXPECT_EQ(sender->transport_name(), "cubic");
  EXPECT_EQ(to_string(Transport::kCubic), "cubic");
}

TEST(CubicTest, TransfersExactly) {
  TwoHostNet h;
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kCubic,
                     cubic_cfg());
  conn.start(500'000);
  h.sched.run_until(sim::seconds(2));
  EXPECT_EQ(conn.sender().state(), SenderState::kClosed);
  EXPECT_EQ(conn.sink().stats().bytes_received, 500'000u);
}

TEST(CubicTest, BetaReductionIsGentlerThanHalving) {
  // Same drop pattern for both flavours; CUBIC's ssthresh after the
  // loss must sit at ~0.7 cwnd vs NewReno's ~0.5 flight.
  auto run = [](Transport t) {
    TwoHostNet h(net::make_droptail_factory(32));
    auto cfg = cubic_cfg();
    cfg.initial_ssthresh_bytes = 64 * cfg.mss;  // force CA early
    TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, t, cfg);
    conn.start(TcpSender::kUnlimited);
    h.sched.run_until(sim::milliseconds(50));
    struct Out {
      std::uint64_t bytes;
      std::uint64_t timeouts;
    };
    return Out{conn.sender().stats().bytes_acked,
               conn.sender().stats().timeouts};
  };
  const auto reno = run(Transport::kNewReno);
  const auto cubic = run(Transport::kCubic);
  // Both survive; CUBIC's gentler decrease + cubic probing delivers at
  // least as much under the same loss process.
  EXPECT_GT(cubic.bytes, reno.bytes * 9 / 10);
}

TEST(CubicTest, RecoversFromLossWithoutTimeout) {
  TwoHostNet h(net::make_droptail_factory(16));
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kCubic,
                     cubic_cfg());
  conn.start(400 * 1442);
  h.sched.run_until(sim::seconds(5));
  EXPECT_EQ(conn.sender().state(), SenderState::kClosed);
  EXPECT_EQ(conn.sink().stats().bytes_received, 400u * 1442u);
  EXPECT_GT(conn.sender().stats().fast_retransmits, 0u);
}

TEST(CubicTest, ClassicEcnReducesByBeta) {
  TwoHostNet h(net::make_dctcp_factory(250, 10));
  auto cfg = cubic_cfg(EcnMode::kClassic);
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kCubic, cfg);
  conn.start(TcpSender::kUnlimited);
  h.sched.run_until(sim::milliseconds(10));
  EXPECT_GT(conn.sender().stats().ecn_reductions, 0u);
  EXPECT_EQ(conn.sender().stats().timeouts, 0u);
  // ECN, not loss, regulates: the queue stays bounded.
  EXPECT_LT(h.bottleneck->qdisc().stats().max_len_pkts, 120u);
}

TEST(CubicTest, CwndFollowsConcaveThenConvexShape) {
  // After a reduction, cubic growth is fast, flattens near W_max
  // (concave), then accelerates past it (convex).  Check the ordering
  // of growth increments across the three phases.
  TwoHostNet h(net::make_droptail_factory(64),
               sim::DataRate::gbps(1));  // slower: longer epochs
  auto cfg = cubic_cfg();
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kCubic, cfg);
  conn.start(TcpSender::kUnlimited);
  // Let at least one loss happen so an epoch is anchored.
  h.sched.run_until(sim::milliseconds(200));
  auto& sender = conn.sender();
  ASSERT_GT(sender.stats().retransmits, 0u);
  // Sample cwnd over time after the reduction.
  std::vector<double> samples;
  for (int i = 0; i < 40; ++i) {
    h.sched.run_until(h.sched.now() + sim::milliseconds(2));
    samples.push_back(sender.cwnd_bytes());
  }
  // cwnd changed over the window (cubic keeps probing) and stayed
  // within sane bounds.
  const auto [mn, mx] = std::minmax_element(samples.begin(), samples.end());
  EXPECT_GT(*mx, *mn);
  EXPECT_GT(*mn, 1000.0);
}

TEST(CubicTest, CoexistsInMixedTenantScenario) {
  // Cubic + DCTCP sharing a marking bottleneck: both make progress
  // (the fig2 heterogeneity, now with the real Linux default flavour).
  TwoHostNet h(net::make_dctcp_factory(250, 20));
  TcpConnection cubic(h.net, *h.a, *h.b, 1000, 80, Transport::kCubic,
                      cubic_cfg(EcnMode::kClassic));
  TcpConnection dctcp(h.net, *h.a, *h.b, 1001, 81, Transport::kDctcp,
                      cubic_cfg(EcnMode::kDctcp));
  cubic.start(TcpSender::kUnlimited);
  dctcp.start(TcpSender::kUnlimited);
  h.sched.run_until(sim::milliseconds(50));
  EXPECT_GT(cubic.sink().goodput_bps(), 5e7);
  EXPECT_GT(dctcp.sink().goodput_bps(), 5e7);
}

}  // namespace
}  // namespace hwatch::tcp
