// End-to-end transport behaviour: handshake, transfer, completion, flow
// control, and loss recovery over a real (simulated) network path.
#include <gtest/gtest.h>
#include <set>

#include "tcp/tcp_test_util.hpp"

#include "net/queue.hpp"
#include "tcp/connection.hpp"

namespace hwatch::tcp {
namespace {

using testutil::TwoHostNet;

TcpConfig quick_cfg() {
  TcpConfig c;
  c.initial_cwnd_segments = 10;
  c.min_rto = sim::milliseconds(10);
  c.initial_rto = sim::milliseconds(10);
  c.ecn = EcnMode::kNone;
  return c;
}

TEST(TcpTransferTest, HandshakeEstablishesAndMeasuresRtt) {
  TwoHostNet h;
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     quick_cfg());
  conn.start(0);  // empty transfer: SYN, SYN-ACK, FIN exchange
  h.sched.run_until(sim::milliseconds(100));
  EXPECT_EQ(conn.sender().state(), SenderState::kClosed);
  EXPECT_TRUE(conn.sink().connected());
  EXPECT_TRUE(conn.sender().rtt().has_sample());
  // Path: 2 hops of 10 us each way plus serialization.
  EXPECT_GT(conn.sender().rtt().srtt(), sim::microseconds(40));
  EXPECT_LT(conn.sender().rtt().srtt(), sim::microseconds(60));
}

TEST(TcpTransferTest, TransfersExactByteCount) {
  TwoHostNet h;
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     quick_cfg());
  conn.start(100'000);
  h.sched.run_until(sim::milliseconds(500));
  EXPECT_EQ(conn.sender().state(), SenderState::kClosed);
  EXPECT_EQ(conn.sink().stats().bytes_received, 100'000u);
  EXPECT_EQ(conn.sender().stats().bytes_acked, 100'000u);
  EXPECT_TRUE(conn.sink().fin_received());
}

TEST(TcpTransferTest, SmallFlowCompletesInFewRtts) {
  TwoHostNet h;
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     quick_cfg());
  conn.start(10'000);  // paper's short-flow size: fits one initial window
  h.sched.run_until(sim::milliseconds(100));
  ASSERT_EQ(conn.sender().state(), SenderState::kClosed);
  // 10 KB in an ICW of 10 segments: roughly 2 RTTs (handshake + data).
  EXPECT_LT(conn.sender().fct(), sim::microseconds(300));
  EXPECT_EQ(conn.sender().stats().retransmits, 0u);
}

TEST(TcpTransferTest, CompletionCallbackFires) {
  TwoHostNet h;
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     quick_cfg());
  bool fired = false;
  conn.sender().set_on_complete([&](const TcpSender& s) {
    fired = true;
    EXPECT_EQ(s.stats().bytes_acked, 5000u);
  });
  conn.start(5000);
  h.sched.run_until(sim::milliseconds(100));
  EXPECT_TRUE(fired);
}

TEST(TcpTransferTest, InitialWindowLimitsFirstBurst) {
  // With ICW = 2, the first flight is 2 segments; the transfer of 10
  // segments takes several round trips of slow start.
  TwoHostNet h;
  auto cfg = quick_cfg();
  cfg.initial_cwnd_segments = 2;
  TcpConnection small_icw(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                          cfg);
  small_icw.start(10 * cfg.mss);
  h.sched.run_until(sim::milliseconds(100));
  const auto fct_small = small_icw.sender().fct();

  TwoHostNet h2;
  auto cfg2 = quick_cfg();
  cfg2.initial_cwnd_segments = 10;
  TcpConnection big_icw(h2.net, *h2.a, *h2.b, 1000, 80, Transport::kNewReno,
                        cfg2);
  big_icw.start(10 * cfg2.mss);
  h2.sched.run_until(sim::milliseconds(100));
  EXPECT_LT(big_icw.sender().fct(), fct_small);
}

TEST(TcpTransferTest, ReceiverWindowThrottlesSender) {
  TwoHostNet h;
  auto cfg = quick_cfg();
  cfg.advertised_window_bytes = 2 * cfg.mss;  // sink advertises 2 MSS
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno, cfg);
  conn.start(50 * cfg.mss);
  h.sched.run_until(sim::milliseconds(500));
  EXPECT_EQ(conn.sender().state(), SenderState::kClosed);
  // Flow control capped the in-flight data at ~2 segments per RTT: the
  // transfer needs ~25 RTTs (RTT ~50 us) instead of a few.
  EXPECT_GT(conn.sender().fct(), sim::microseconds(1000));
}

TEST(TcpTransferTest, SlowStartGrowsCwndExponentially) {
  TwoHostNet h;
  auto cfg = quick_cfg();
  cfg.initial_cwnd_segments = 1;
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno, cfg);
  conn.start(TcpSender::kUnlimited);
  const double cwnd0 = static_cast<double>(cfg.mss);
  // After a few RTTs of clean slow start the window has multiplied.
  h.sched.run_until(sim::microseconds(400));
  EXPECT_GT(conn.sender().cwnd_bytes(), 4 * cwnd0);
}

TEST(TcpTransferTest, DropTriggersFastRetransmitNotTimeout) {
  // Bottleneck queue of 8 packets at 10G: a 30-segment burst overflows,
  // but the stream has enough trailing packets for 3 dupacks.
  TwoHostNet h(net::make_droptail_factory(8));
  auto cfg = quick_cfg();
  cfg.initial_cwnd_segments = 30;
  cfg.min_rto = sim::milliseconds(200);
  cfg.initial_rto = sim::milliseconds(200);
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno, cfg);
  conn.start(200 * cfg.mss);
  h.sched.run_until(sim::seconds(2.0));
  EXPECT_EQ(conn.sender().state(), SenderState::kClosed);
  EXPECT_GT(conn.sender().stats().fast_retransmits, 0u);
  EXPECT_EQ(conn.sink().stats().bytes_received, 200u * cfg.mss);
}

/// Drops the first transmission of any data segment with seq >= cutoff.
class DropTailSegments final : public net::PacketFilter {
 public:
  explicit DropTailSegments(std::uint64_t cutoff) : cutoff_(cutoff) {}
  net::FilterVerdict on_outbound(net::Packet& p) override {
    if (p.is_data() && p.tcp.seq >= cutoff_ &&
        !dropped_.contains(p.tcp.seq)) {
      dropped_.insert(p.tcp.seq);
      return net::FilterVerdict::kDrop;
    }
    return net::FilterVerdict::kPass;
  }
  net::FilterVerdict on_inbound(net::Packet&) override {
    return net::FilterVerdict::kPass;
  }

 private:
  std::uint64_t cutoff_;
  std::set<std::uint64_t> dropped_;
};

TEST(TcpTransferTest, TailLossForcesRtoForShortFlow) {
  // Observation 1 of the paper: when the tail of a short flow is lost,
  // there are no following packets to generate dupacks, so the flow must
  // wait out the (200 ms) RTO and its FCT explodes by three orders of
  // magnitude relative to the ~50 us RTT.
  TwoHostNet h;
  auto cfg = quick_cfg();
  cfg.initial_cwnd_segments = 10;
  cfg.min_rto = sim::milliseconds(200);
  cfg.initial_rto = sim::milliseconds(200);
  // Lose the last 3 segments of the 10-segment flow, once each.
  DropTailSegments filter(1 + 7 * cfg.mss);
  h.a->install_filter(&filter);
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno, cfg);
  conn.start(10 * cfg.mss);
  h.sched.run_until(sim::seconds(3.0));
  ASSERT_EQ(conn.sender().state(), SenderState::kClosed);
  EXPECT_GT(conn.sender().stats().timeouts, 0u);
  EXPECT_EQ(conn.sender().stats().fast_retransmits, 0u);  // no dupacks
  EXPECT_GT(conn.sender().fct(), sim::milliseconds(200));
  EXPECT_EQ(conn.sink().stats().bytes_received, 10u * cfg.mss);
}

TEST(TcpTransferTest, RtoRecoversFromTotalWindowLoss) {
  // Queue of 1: nearly the whole window is lost; go-back-N after RTO
  // must still complete the transfer correctly.
  TwoHostNet h(net::make_droptail_factory(1));
  auto cfg = quick_cfg();
  cfg.initial_cwnd_segments = 16;
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno, cfg);
  conn.start(40 * cfg.mss);
  h.sched.run_until(sim::seconds(5.0));
  EXPECT_EQ(conn.sender().state(), SenderState::kClosed);
  EXPECT_EQ(conn.sink().stats().bytes_received, 40u * cfg.mss);
  EXPECT_GT(conn.sender().stats().timeouts, 0u);
}

TEST(TcpTransferTest, SynLossRecoversByRetransmission) {
  // Drop the very first packet via a filter; the SYN timer must recover.
  TwoHostNet h;
  class DropFirst final : public net::PacketFilter {
   public:
    net::FilterVerdict on_outbound(net::Packet& p) override {
      if (p.is_syn() && !dropped_) {
        dropped_ = true;
        return net::FilterVerdict::kDrop;
      }
      return net::FilterVerdict::kPass;
    }
    net::FilterVerdict on_inbound(net::Packet&) override {
      return net::FilterVerdict::kPass;
    }

   private:
    bool dropped_ = false;
  } filter;
  h.a->install_filter(&filter);
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     quick_cfg());
  conn.start(5000);
  h.sched.run_until(sim::seconds(1.0));
  EXPECT_EQ(conn.sender().state(), SenderState::kClosed);
  EXPECT_GE(conn.sender().stats().syn_timeouts, 1u);
  EXPECT_EQ(conn.sender().stats().timeouts, 0u);  // data never timed out
  // Karn: the retransmitted SYN gives no RTT sample, but data does.
  EXPECT_TRUE(conn.sender().rtt().has_sample());
}

TEST(TcpTransferTest, UnlimitedFlowKeepsSendingAndNeverCloses) {
  TwoHostNet h;
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     quick_cfg());
  conn.start(TcpSender::kUnlimited);
  h.sched.run_until(sim::milliseconds(10));
  EXPECT_EQ(conn.sender().state(), SenderState::kEstablished);
  EXPECT_GT(conn.sink().stats().bytes_received, 1'000'000u);
  EXPECT_GT(conn.sink().goodput_bps(), 1e9);
}

TEST(TcpTransferTest, TwoFlowsBothProgressAndSaturateBottleneck) {
  TwoHostNet h;
  auto cfg = quick_cfg();
  TcpConnection c1(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno, cfg);
  TcpConnection c2(h.net, *h.a, *h.b, 1001, 81, Transport::kNewReno, cfg);
  c1.start(TcpSender::kUnlimited);
  c2.start(TcpSender::kUnlimited);
  h.sched.run_until(sim::milliseconds(50));
  const double g1 = c1.sink().goodput_bps();
  const double g2 = c2.sink().goodput_bps();
  // Identical deterministic flows can phase-lock, so no tight fairness
  // bound here (the fig2 bench measures the realistic mixed case); both
  // must make progress and together saturate most of the bottleneck.
  EXPECT_GT(g1, 5e7);
  EXPECT_GT(g2, 5e7);
  EXPECT_GT(g1 + g2, 6e9);
}

TEST(TcpTransferTest, SequenceSpaceAccountsSynAndFin) {
  TwoHostNet h;
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     quick_cfg());
  conn.start(1000);
  h.sched.run_until(sim::milliseconds(50));
  // Data occupies [1, 1000], FIN at 1001, final ack = 1002.
  EXPECT_EQ(conn.sender().snd_una(), 1002u);
  EXPECT_EQ(conn.sink().rcv_nxt(), 1002u);
}

}  // namespace
}  // namespace hwatch::tcp
