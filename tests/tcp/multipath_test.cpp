// Multipath TCP extension: striping, completion semantics, ECMP path
// diversity, and transparent interoperation with the HWatch shim (the
// paper's Section IV-F claim).
#include "tcp/multipath.hpp"

#include <gtest/gtest.h>

#include "hwatch/shim.hpp"
#include "tcp/tcp_test_util.hpp"
#include "topo/fat_tree.hpp"

namespace hwatch::tcp {
namespace {

using testutil::TwoHostNet;

TcpConfig quick_cfg() {
  TcpConfig c;
  c.min_rto = sim::milliseconds(10);
  c.initial_rto = sim::milliseconds(10);
  c.ecn = EcnMode::kNone;
  return c;
}

MultipathConfig mp_cfg(std::uint32_t subflows) {
  MultipathConfig m;
  m.subflows = subflows;
  m.tcp = quick_cfg();
  return m;
}

TEST(MultipathTest, RejectsZeroSubflows) {
  TwoHostNet h;
  EXPECT_THROW(MultipathConnection(h.net, *h.a, *h.b, 1000, 80, mp_cfg(0)),
               std::invalid_argument);
}

TEST(MultipathTest, StripesBytesAndCompletes) {
  TwoHostNet h;
  MultipathConnection mp(h.net, *h.a, *h.b, 1000, 80, mp_cfg(4));
  bool done = false;
  mp.set_on_complete([&](const MultipathConnection& m) {
    done = true;
    EXPECT_EQ(m.bytes_acked(), 100'000u);
  });
  mp.start(100'000);
  h.sched.run_until(sim::milliseconds(100));
  EXPECT_TRUE(done);
  EXPECT_TRUE(mp.complete());
  // Equal stripe: 100000 / 4 each.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(mp.subflow(i).sender().stats().bytes_acked, 25'000u);
  }
}

TEST(MultipathTest, RemainderGoesToFirstSubflow) {
  TwoHostNet h;
  MultipathConnection mp(h.net, *h.a, *h.b, 1000, 80, mp_cfg(3));
  mp.start(10'001);
  h.sched.run_until(sim::milliseconds(100));
  EXPECT_EQ(mp.subflow(0).sender().stats().bytes_acked,
            10'001u / 3 + 10'001u % 3);
  EXPECT_EQ(mp.bytes_acked(), 10'001u);
}

TEST(MultipathTest, FctIsTheLastSubflowsCompletion) {
  TwoHostNet h;
  MultipathConnection mp(h.net, *h.a, *h.b, 1000, 80, mp_cfg(2));
  EXPECT_EQ(mp.fct(), sim::kTimeNever);
  mp.start(50'000);
  h.sched.run_until(sim::milliseconds(100));
  ASSERT_TRUE(mp.complete());
  sim::TimePs slowest = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    slowest = std::max(slowest, mp.subflow(i).sender().fct());
  }
  EXPECT_EQ(mp.fct(), slowest);
}

TEST(MultipathTest, SubflowsUseDistinctPorts) {
  TwoHostNet h;
  MultipathConnection mp(h.net, *h.a, *h.b, 1000, 80, mp_cfg(3));
  const auto k0 = mp.subflow(0).sender().flow_key();
  const auto k1 = mp.subflow(1).sender().flow_key();
  const auto k2 = mp.subflow(2).sender().flow_key();
  EXPECT_NE(k0.src_port, k1.src_port);
  EXPECT_NE(k1.src_port, k2.src_port);
  EXPECT_NE(k0.dst_port, k1.dst_port);
}

TEST(MultipathTest, UnlimitedModeAggregatesGoodput) {
  TwoHostNet h;
  MultipathConnection mp(h.net, *h.a, *h.b, 1000, 80, mp_cfg(2));
  mp.start(TcpSender::kUnlimited);
  h.sched.run_until(sim::milliseconds(20));
  EXPECT_FALSE(mp.complete());
  EXPECT_GT(mp.aggregate_goodput_bps(), 1e9);
}

TEST(MultipathTest, DoubleStartThrows) {
  TwoHostNet h;
  MultipathConnection mp(h.net, *h.a, *h.b, 1000, 80, mp_cfg(2));
  mp.start(1000);
  EXPECT_THROW(mp.start(1000), std::logic_error);
}

TEST(MultipathTest, EcmpSpreadsSubflowsOverFatTreeCores) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  net::Network network(ctx);
  topo::FatTreeConfig ft;
  ft.k = 4;
  ft.qdisc = net::make_droptail_factory(512);
  topo::FatTree tree = topo::build_fat_tree(network, ft);

  // 8 subflows pod 0 -> pod 3: with high probability at least two of
  // the four cores carry traffic.
  MultipathConfig cfg = mp_cfg(8);
  MultipathConnection mp(network, *tree.hosts.front(), *tree.hosts.back(),
                         1000, 80, cfg);
  mp.start(800'000);
  sched.run_until(sim::milliseconds(200));
  EXPECT_TRUE(mp.complete());
  int cores_used = 0;
  for (auto* core : tree.cores) {
    if (core->forwarded() > 0) ++cores_used;
  }
  EXPECT_GE(cores_used, 2);
}

TEST(MultipathTest, HWatchShimsApplyPerSubflow) {
  // Section IV-F: every subflow handshake passes the shim, so each gets
  // its own probe train and flow-table entry — no MPTCP-specific code.
  TwoHostNet h;
  sim::Rng rng(5);
  core::HWatchConfig hw;
  hw.probe_count = 10;
  hw.probe_span = sim::microseconds(20);
  auto shim_a = core::install_hwatch(h.net, *h.a, hw, rng.fork());
  auto shim_b = core::install_hwatch(h.net, *h.b, hw, rng.fork());

  MultipathConnection mp(h.net, *h.a, *h.b, 1000, 80, mp_cfg(3));
  mp.start(30'000);
  h.sched.run_until(sim::milliseconds(200));
  EXPECT_TRUE(mp.complete());
  EXPECT_EQ(shim_a->stats().probes_injected, 3u * 10u);
  EXPECT_EQ(shim_a->stats().syns_held, 3u);
  EXPECT_EQ(shim_b->stats().synacks_rewritten, 3u);
  EXPECT_EQ(shim_b->flow_table().created(), 3u);
}

}  // namespace
}  // namespace hwatch::tcp
