// Connection factory, enum naming and window-encoding coverage.
#include <gtest/gtest.h>

#include "tcp/tcp_test_util.hpp"
#include "tcp/connection.hpp"
#include "tcp/cubic.hpp"
#include "tcp/dctcp.hpp"

namespace hwatch::tcp {
namespace {

using testutil::TwoHostNet;

TEST(ConnectionTest, FactoryBuildsEveryFlavour) {
  TwoHostNet h;
  TcpConfig cfg;
  std::uint16_t port = 1000;
  for (Transport t :
       {Transport::kNewReno, Transport::kDctcp, Transport::kCubic}) {
    auto sender = make_sender(t, h.net, *h.a, port++, h.b->id(), 80, cfg);
    ASSERT_NE(sender, nullptr) << to_string(t);
    EXPECT_EQ(sender->transport_name(), to_string(t));
  }
}

TEST(ConnectionTest, DctcpConnectionForcesSinkEchoMode) {
  TwoHostNet h(net::make_dctcp_factory(64, 4));
  TcpConfig cfg;  // deliberately left at classic echo
  cfg.min_rto = sim::milliseconds(10);
  cfg.initial_rto = sim::milliseconds(10);
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kDctcp, cfg);
  conn.start(TcpSender::kUnlimited);
  h.sched.run_until(sim::milliseconds(10));
  // A DCTCP connection with a latching (classic) sink would mis-echo
  // every mark; forced per-packet echo keeps alpha meaningful.
  const auto* dctcp = dynamic_cast<const DctcpSender*>(&conn.sender());
  ASSERT_NE(dctcp, nullptr);
  EXPECT_GT(dctcp->alpha(), 0.0);
  EXPECT_LT(dctcp->alpha(), 1.0);
}

TEST(ConnectionTest, EnumToStringCoversAll) {
  EXPECT_EQ(to_string(EcnMode::kNone), "no-ecn");
  EXPECT_EQ(to_string(EcnMode::kClassic), "classic-ecn");
  EXPECT_EQ(to_string(EcnMode::kBlind), "ecn-blind");
  EXPECT_EQ(to_string(EcnMode::kDctcp), "dctcp-ecn");
}

TEST(WindowEncodingTest, RoundTripAndSaturation) {
  EXPECT_EQ(encode_window(65535, 0), 0xFFFF);
  EXPECT_EQ(encode_window(1 << 20, 0), 0xFFFF);  // saturates unscaled
  EXPECT_EQ(encode_window(1 << 20, 6), (1u << 20) >> 6);
  EXPECT_EQ(decode_window(encode_window(1 << 20, 6), 6), 1u << 20);
  // Quantization floor: value rounds down to a multiple of 2^shift.
  EXPECT_EQ(decode_window(encode_window(1000, 6), 6), 960u);
  EXPECT_EQ(encode_window(0, 6), 0);
}

TEST(ConnectionTest, FlowKeyReflectsEndpoints) {
  TwoHostNet h;
  TcpConnection conn(h.net, *h.a, *h.b, 1234, 80, Transport::kNewReno,
                     TcpConfig{});
  const auto key = conn.sender().flow_key();
  EXPECT_EQ(key.src, h.a->id());
  EXPECT_EQ(key.dst, h.b->id());
  EXPECT_EQ(key.src_port, 1234);
  EXPECT_EQ(key.dst_port, 80);
}

TEST(ConnectionTest, SenderPortCollisionThrows) {
  TwoHostNet h;
  TcpConnection a(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                  TcpConfig{});
  EXPECT_THROW(TcpConnection(h.net, *h.a, *h.b, 1000, 81,
                             Transport::kNewReno, TcpConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hwatch::tcp
