// ECN behaviour across the three tenant flavours the paper mixes, plus
// the DCTCP estimator dynamics.
#include <gtest/gtest.h>

#include "tcp/tcp_test_util.hpp"

#include "net/queue.hpp"
#include "tcp/dctcp.hpp"

namespace hwatch::tcp {
namespace {

using testutil::TwoHostNet;

TcpConfig ecn_cfg(EcnMode mode) {
  TcpConfig c;
  c.initial_cwnd_segments = 10;
  c.min_rto = sim::milliseconds(10);
  c.initial_rto = sim::milliseconds(10);
  c.ecn = mode;
  return c;
}

net::QdiscFactory marking_queue(std::uint64_t k = 10) {
  return net::make_dctcp_factory(250, k);
}

TEST(EcnTest, NoEcnSenderEmitsNotEct) {
  TwoHostNet h;
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     ecn_cfg(EcnMode::kNone));
  conn.start(5 * 1442);
  h.sched.run_until(sim::milliseconds(50));
  // A step-marking queue saw nothing to mark: data was Not-ECT.
  EXPECT_EQ(conn.sink().stats().ce_marked_segments, 0u);
}

TEST(EcnTest, ClassicSenderReducesOncePerWindowOnEce) {
  TwoHostNet h(marking_queue(5));
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     ecn_cfg(EcnMode::kClassic));
  conn.start(TcpSender::kUnlimited);
  h.sched.run_until(sim::milliseconds(5));
  EXPECT_GT(conn.sender().stats().ecn_reductions, 0u);
  // ECN, not loss, is regulating the flow: queue never overflows.
  EXPECT_EQ(conn.sender().stats().timeouts, 0u);
  EXPECT_EQ(h.bottleneck->qdisc().stats().dropped, 0u);
}

TEST(EcnTest, ClassicEcnKeepsQueueNearThreshold) {
  TwoHostNet h(marking_queue(20));
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     ecn_cfg(EcnMode::kClassic));
  conn.start(TcpSender::kUnlimited);
  h.sched.run_until(sim::milliseconds(20));
  // Queue hovers around K = 20, far below the 250 limit.
  EXPECT_LT(h.bottleneck->qdisc().stats().max_len_pkts, 100u);
}

TEST(EcnTest, BlindSenderIgnoresEceAndFillsBuffer) {
  // The "non-responsive" tenant of Figure 2: ECT packets (they get
  // marked, not dropped) but no window reduction -> bloated queue.
  TwoHostNet h(marking_queue(5));
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     ecn_cfg(EcnMode::kBlind));
  conn.start(TcpSender::kUnlimited);
  h.sched.run_until(sim::milliseconds(20));
  EXPECT_EQ(conn.sender().stats().ecn_reductions, 0u);
  // Blind to marks, the flow grows until the hard buffer bound bites.
  EXPECT_GT(h.bottleneck->qdisc().stats().max_len_pkts, 100u);
}

TEST(EcnTest, SinkClassicModeLatchesEceUntilCwr) {
  TwoHostNet h(marking_queue(1));
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     ecn_cfg(EcnMode::kClassic));
  conn.start(30 * 1442);
  h.sched.run_until(sim::milliseconds(50));
  EXPECT_EQ(conn.sender().state(), SenderState::kClosed);
  EXPECT_GT(conn.sink().stats().ce_marked_segments, 0u);
  EXPECT_GT(conn.sender().stats().ecn_reductions, 0u);
}

TEST(DctcpTest, AlphaStartsHighAndDecaysWhenClean) {
  TwoHostNet h;  // deep droptail: no marks at all
  DctcpSender sender(h.net, *h.a, 1000, h.b->id(), 80,
                     ecn_cfg(EcnMode::kDctcp));
  TcpSink sink(h.net, *h.b, 80, ecn_cfg(EcnMode::kDctcp));
  EXPECT_DOUBLE_EQ(sender.alpha(), 1.0);
  sender.start(TcpSender::kUnlimited);
  h.sched.run_until(sim::milliseconds(20));
  // One estimator round per cwnd of data; ~(1-g)^rounds decay.
  EXPECT_LT(sender.alpha(), 0.35);
}

TEST(DctcpTest, AlphaTracksMarkingUnderCongestion) {
  TwoHostNet h(marking_queue(10));
  DctcpSender sender(h.net, *h.a, 1000, h.b->id(), 80,
                     ecn_cfg(EcnMode::kDctcp));
  TcpSink sink(h.net, *h.b, 80, ecn_cfg(EcnMode::kDctcp));
  sender.start(TcpSender::kUnlimited);
  h.sched.run_until(sim::milliseconds(20));
  // A lone DCTCP flow saturating a step-marking queue keeps a nonzero
  // steady-state alpha.
  EXPECT_GT(sender.alpha(), 0.01);
  EXPECT_LT(sender.alpha(), 1.0);
  EXPECT_GT(sender.stats().ecn_reductions, 0u);
  EXPECT_EQ(sender.stats().timeouts, 0u);
}

TEST(DctcpTest, KeepsQueueLowerThanNewRenoLoss) {
  // DCTCP's whole point: max queue under step marking is near K, far
  // below what loss-based NewReno (droptail) builds.
  TwoHostNet h_dctcp(marking_queue(20));
  DctcpSender dctcp(h_dctcp.net, *h_dctcp.a, 1000, h_dctcp.b->id(), 80,
                    ecn_cfg(EcnMode::kDctcp));
  TcpSink sink1(h_dctcp.net, *h_dctcp.b, 80, ecn_cfg(EcnMode::kDctcp));
  dctcp.start(TcpSender::kUnlimited);
  h_dctcp.sched.run_until(sim::milliseconds(20));

  TwoHostNet h_reno(net::make_droptail_factory(250));
  TcpConnection reno(h_reno.net, *h_reno.a, *h_reno.b, 1000, 80,
                     Transport::kNewReno, ecn_cfg(EcnMode::kNone));
  reno.start(TcpSender::kUnlimited);
  h_reno.sched.run_until(sim::milliseconds(20));

  EXPECT_LT(h_dctcp.bottleneck->qdisc().stats().max_len_pkts,
            h_reno.bottleneck->qdisc().stats().max_len_pkts);
}

TEST(DctcpTest, ProportionalCutGentlerThanHalving) {
  // At low marking fractions DCTCP cuts less than classic ECN; its
  // average cwnd under identical marking must therefore be larger.
  TwoHostNet h1(marking_queue(30));
  DctcpSender dctcp(h1.net, *h1.a, 1000, h1.b->id(), 80,
                    ecn_cfg(EcnMode::kDctcp));
  TcpSink sink1(h1.net, *h1.b, 80, ecn_cfg(EcnMode::kDctcp));
  dctcp.start(TcpSender::kUnlimited);
  h1.sched.run_until(sim::milliseconds(30));

  TwoHostNet h2(marking_queue(30));
  TcpConnection reno(h2.net, *h2.a, *h2.b, 1000, 80, Transport::kNewReno,
                     ecn_cfg(EcnMode::kClassic));
  reno.start(TcpSender::kUnlimited);
  h2.sched.run_until(sim::milliseconds(30));

  // Queue dynamics differ: the DCTCP sender holds the queue near K while
  // classic ECN oscillates deeply below it.  Compare delivered bytes.
  EXPECT_GT(dctcp.stats().bytes_acked, reno.sender().stats().bytes_acked);
}

TEST(DctcpTest, SinkEchoesPerPacketCeState) {
  // DCTCP-mode sink: ECE mirrors each segment's CE bit rather than
  // latching.  With a K=0 queue everything is marked; with droptail
  // nothing is.
  TwoHostNet h(marking_queue(0));
  DctcpSender sender(h.net, *h.a, 1000, h.b->id(), 80,
                     ecn_cfg(EcnMode::kDctcp));
  TcpSink sink(h.net, *h.b, 80, ecn_cfg(EcnMode::kDctcp));
  sender.start(20 * 1442);
  h.sched.run_until(sim::milliseconds(50));
  EXPECT_EQ(sink.stats().ce_marked_segments, sink.stats().segments_received);
  // Every mark echoed: alpha driven to ~1, deep reductions happened.
  EXPECT_GT(sender.alpha(), 0.5);
}

TEST(DctcpTest, TransportNameAndForcedMode) {
  TwoHostNet h;
  auto cfg = ecn_cfg(EcnMode::kNone);  // DctcpSender must override this
  DctcpSender sender(h.net, *h.a, 1000, h.b->id(), 80, cfg);
  EXPECT_EQ(sender.transport_name(), "dctcp");
  EXPECT_EQ(sender.config().ecn, EcnMode::kDctcp);
}

TEST(EcnTest, CoexistenceUnfairness) {
  // Figure 2's phenomenon in miniature: a DCTCP flow and a classic-ECN
  // NewReno flow share one marking bottleneck; DCTCP's proportional
  // response out-competes the halving response.
  TwoHostNet h(marking_queue(20));
  DctcpSender dctcp(h.net, *h.a, 1000, h.b->id(), 80,
                    ecn_cfg(EcnMode::kDctcp));
  TcpSink sink1(h.net, *h.b, 80, ecn_cfg(EcnMode::kDctcp));
  TcpConnection reno(h.net, *h.a, *h.b, 1001, 81, Transport::kNewReno,
                     ecn_cfg(EcnMode::kClassic));
  dctcp.start(TcpSender::kUnlimited);
  reno.start(TcpSender::kUnlimited);
  h.sched.run_until(sim::milliseconds(40));
  EXPECT_GT(dctcp.stats().bytes_acked,
            2 * reno.sender().stats().bytes_acked);
}

}  // namespace
}  // namespace hwatch::tcp
