// TCP option behaviours: RFC 3042 limited transmit and delayed ACKs
// (including the DCTCP delayed-ACK state machine).
#include <gtest/gtest.h>

#include <set>

#include "tcp/tcp_test_util.hpp"
#include "tcp/connection.hpp"
#include "tcp/dctcp.hpp"

namespace hwatch::tcp {
namespace {

using testutil::TwoHostNet;

TcpConfig base_cfg() {
  TcpConfig c;
  c.min_rto = sim::milliseconds(200);
  c.initial_rto = sim::milliseconds(200);
  c.ecn = EcnMode::kNone;
  return c;
}

/// Drops the Nth..Mth data segments (first transmissions only).
class DropRange final : public net::PacketFilter {
 public:
  DropRange(int from, int to) : from_(from), to_(to) {}
  net::FilterVerdict on_outbound(net::Packet& p) override {
    if (!p.is_data()) return net::FilterVerdict::kPass;
    if (seen_seqs_.insert(p.tcp.seq).second) {
      const int idx = static_cast<int>(seen_seqs_.size());
      if (idx >= from_ && idx <= to_) return net::FilterVerdict::kDrop;
    }
    return net::FilterVerdict::kPass;
  }
  net::FilterVerdict on_inbound(net::Packet&) override {
    return net::FilterVerdict::kPass;
  }

 private:
  int from_, to_;
  std::set<std::uint64_t> seen_seqs_;
};

TEST(LimitedTransmitTest, SavesShortFlowFromRto) {
  // cwnd = 3 and the HEAD segment is lost: only segments 2 and 3 can
  // generate dupacks (two — below the threshold), and since no
  // cumulative ACK ever arrives the window never opens: without
  // limited transmit the flow stalls into a 200 ms RTO.  With it, the
  // two dupacks clock out segments 4 and 5, whose own dupacks cross the
  // fast-retransmit threshold.
  auto run = [](bool limited) {
    TwoHostNet h;
    auto cfg = base_cfg();
    cfg.initial_cwnd_segments = 3;
    cfg.limited_transmit = limited;
    DropRange filter(1, 1);
    h.a->install_filter(&filter);
    TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                       cfg);
    conn.start(8 * cfg.mss);
    h.sched.run_until(sim::seconds(2));
    struct Out {
      std::uint64_t timeouts;
      std::uint64_t fast_retx;
      sim::TimePs fct;
    };
    return Out{conn.sender().stats().timeouts,
               conn.sender().stats().fast_retransmits,
               conn.sender().fct()};
  };
  const auto without = run(false);
  const auto with = run(true);
  EXPECT_GE(without.timeouts, 1u);
  EXPECT_EQ(without.fast_retx, 0u);
  EXPECT_GT(without.fct, sim::milliseconds(200));
  // With: fast retransmit instead of the RTO — 2 orders of magnitude.
  EXPECT_EQ(with.timeouts, 0u);
  EXPECT_GE(with.fast_retx, 1u);
  EXPECT_LT(with.fct, sim::milliseconds(10));
}

TEST(LimitedTransmitTest, OffByDefault) {
  EXPECT_FALSE(TcpConfig{}.limited_transmit);
}

TEST(DelayedAckTest, HalvesAckCount) {
  auto run = [](bool delack) {
    TwoHostNet h;
    auto cfg = base_cfg();
    cfg.delayed_ack = delack;
    TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                       cfg);
    conn.start(40 * cfg.mss);
    h.sched.run_until(sim::seconds(1));
    EXPECT_EQ(conn.sender().state(), SenderState::kClosed);
    return conn.sink().stats().acks_sent;
  };
  const auto immediate = run(false);
  const auto delayed = run(true);
  EXPECT_LT(delayed, immediate);
  EXPECT_GE(delayed, immediate / 3);  // roughly every second segment
}

TEST(DelayedAckTest, TransferStillExactAndTimely) {
  TwoHostNet h;
  auto cfg = base_cfg();
  cfg.delayed_ack = true;
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     cfg);
  conn.start(100'000);
  h.sched.run_until(sim::seconds(1));
  ASSERT_EQ(conn.sender().state(), SenderState::kClosed);
  EXPECT_EQ(conn.sink().stats().bytes_received, 100'000u);
  // The delack timer (1 ms) may add at most a few ms to the tail.
  EXPECT_LT(conn.sender().fct(), sim::milliseconds(20));
}

TEST(DelayedAckTest, OutOfOrderArrivalAcksImmediately) {
  // Lose one mid-flow segment: every arrival above the hole must
  // produce an immediate dupack (never delayed), so fast retransmit
  // still works with delayed ACKs enabled.
  TwoHostNet h;
  auto cfg = base_cfg();
  cfg.delayed_ack = true;
  cfg.initial_cwnd_segments = 10;
  DropRange filter(2, 2);
  h.a->install_filter(&filter);
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     cfg);
  conn.start(10 * cfg.mss);
  h.sched.run_until(sim::seconds(2));
  EXPECT_EQ(conn.sender().state(), SenderState::kClosed);
  EXPECT_EQ(conn.sender().stats().timeouts, 0u);
  EXPECT_GE(conn.sender().stats().fast_retransmits, 1u);
}

TEST(DelayedAckTest, DctcpCeTransitionFlushesPendingAck) {
  // Alternate CE marking (K=0 marks everything after the queue builds;
  // here we use a filter to mark exactly every second segment) and
  // verify the DCTCP sink never coalesces across a CE-state change:
  // its marked-byte feedback stays exact.
  class MarkAlternate final : public net::PacketFilter {
   public:
    net::FilterVerdict on_outbound(net::Packet&) override {
      return net::FilterVerdict::kPass;
    }
    net::FilterVerdict on_inbound(net::Packet& p) override {
      if (p.is_data() && (count_++ % 2 == 1)) p.ip.ecn = net::Ecn::kCe;
      return net::FilterVerdict::kPass;
    }

   private:
    int count_ = 0;
  } marker;

  TwoHostNet h;
  auto cfg = base_cfg();
  cfg.ecn = EcnMode::kDctcp;
  cfg.delayed_ack = true;
  h.b->install_filter(&marker);
  DctcpSender sender(h.net, *h.a, 1000, h.b->id(), 80, cfg);
  TcpSink sink(h.net, *h.b, 80, cfg);
  sender.start(40 * cfg.mss);
  h.sched.run_until(sim::seconds(1));
  EXPECT_EQ(sender.state(), SenderState::kClosed);
  // Alternating marks + exact per-state ACKs: the estimator converges
  // near the true 50% marked fraction.
  EXPECT_GT(sender.alpha(), 0.25);
  EXPECT_LT(sender.alpha(), 0.85);
  // Nothing was coalesced across state changes: one ACK per segment.
  EXPECT_GE(sink.stats().acks_sent, 39u);
}

TEST(DelayedAckTest, TimerFlushesTailSegment) {
  // An odd number of segments: the last one has no partner, so only
  // the delack timer acknowledges it; the flow must not need an RTO.
  TwoHostNet h;
  auto cfg = base_cfg();
  cfg.delayed_ack = true;
  cfg.delack_timeout = sim::milliseconds(1);
  TcpConnection conn(h.net, *h.a, *h.b, 1000, 80, Transport::kNewReno,
                     cfg);
  conn.start(3 * cfg.mss);
  h.sched.run_until(sim::seconds(1));
  EXPECT_EQ(conn.sender().state(), SenderState::kClosed);
  EXPECT_EQ(conn.sender().stats().timeouts, 0u);
}

}  // namespace
}  // namespace hwatch::tcp
