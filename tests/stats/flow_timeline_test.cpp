#include "stats/flow_timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/metrics.hpp"
#include "stats/cdf.hpp"

namespace hwatch::stats {
namespace {

// ---------------------------------------------------------- percentiles

TEST(Percentiles, EmptyHistogramIsAllZero) {
  const Percentiles p =
      percentiles(std::vector<double>{1, 2, 4}, {0, 0, 0, 0});
  EXPECT_EQ(p.count, 0u);
  EXPECT_EQ(p.p50, 0);
  EXPECT_EQ(p.p95, 0);
  EXPECT_EQ(p.p99, 0);
  EXPECT_EQ(p.p999, 0);
}

TEST(Percentiles, SingleBucketInterpolatesFromZero) {
  // All four samples in (0, 10]: rank q*4 interpolates linearly.
  const Percentiles p = percentiles(std::vector<double>{10}, {4, 0});
  EXPECT_EQ(p.count, 4u);
  EXPECT_DOUBLE_EQ(p.p50, 5.0);
  EXPECT_DOUBLE_EQ(p.p95, 9.5);
  EXPECT_DOUBLE_EQ(p.p99, 9.9);
  EXPECT_DOUBLE_EQ(p.p999, 9.99);
}

TEST(Percentiles, OverflowBucketUsesHint) {
  // Both samples beyond the last bound; the overflow bucket spans
  // (10, hint] when a hint is given, else collapses to the last bound.
  const Percentiles with_hint =
      percentiles(std::vector<double>{10}, {0, 2}, /*overflow_hint=*/30);
  EXPECT_DOUBLE_EQ(with_hint.p50, 20.0);
  const Percentiles no_hint = percentiles(std::vector<double>{10}, {0, 2});
  EXPECT_DOUBLE_EQ(no_hint.p50, 10.0);
  EXPECT_DOUBLE_EQ(no_hint.p999, 10.0);
}

TEST(Percentiles, SkipsEmptyBucketsBetweenRanks) {
  // 10 samples <= 1, then a gap, then 10 in (4, 8]: the median sits at
  // the top of the first bucket, the p95 inside the last.
  const Percentiles p =
      percentiles(std::vector<double>{1, 2, 4, 8}, {10, 0, 0, 10, 0});
  EXPECT_EQ(p.count, 20u);
  EXPECT_DOUBLE_EQ(p.p50, 1.0);
  EXPECT_DOUBLE_EQ(p.p95, 4.0 + 4.0 * 0.9);
}

TEST(Percentiles, HistogramOverloadUsesRecordedMax) {
  sim::MetricsRegistry reg;
  reg.set_enabled(true);
  sim::Histogram& h = reg.histogram("t", {10.0});
  h.record(12);  // overflow bucket; max = 12 becomes the hint
  h.record(12);
  const Percentiles p = percentiles(h);
  EXPECT_EQ(p.count, 2u);
  EXPECT_DOUBLE_EQ(p.p50, 11.0);  // halfway through (10, 12]
}

// ---------------------------------------------------------- FlowTimeline

sim::SpanTracer& build_sample_trace(sim::SpanTracer& tr) {
  tr.set_enabled(true);
  // Flow 1: completes, with one recovery, one RTO, HWatch provenance.
  const std::uint64_t f1 =
      tr.begin_span(1'000, sim::SpanKind::kFlow, 0, 0, /*total_bytes=*/5000);
  tr.register_flow((std::uint64_t{1} << 32) | 2,
                   (std::uint64_t{40000} << 16) | 80, f1);
  const std::uint64_t hs =
      tr.begin_span(1'000, sim::SpanKind::kHandshake, f1, f1);
  tr.end_span(2'000, hs);
  const std::uint64_t train =
      tr.begin_span(1'100, sim::SpanKind::kProbeTrain, f1, f1, 10);
  tr.end_span(1'900, train);
  const std::uint64_t dec =
      tr.instant(1'800, sim::SpanKind::kDecision, 0, f1, 8, 2, 5, 5);
  tr.instant(1'900, sim::SpanKind::kRwndWrite, dec, f1, 7210, 65535, 7210, 1);
  const std::uint64_t rec =
      tr.begin_span(3'000, sim::SpanKind::kRecovery, f1, f1);
  tr.end_span(4'000, rec);
  const std::uint64_t rto = tr.begin_span(5'000, sim::SpanKind::kRto, f1, f1);
  tr.end_span(6'000, rto);
  tr.add_latency(f1, sim::LatencyComponent::kQueueing, 2'000'000);
  tr.add_latency(f1, sim::LatencyComponent::kRetxWait, 7'000'000);
  tr.end_span(9'000, f1, /*bytes_acked=*/5000, /*retransmits=*/3);

  // Flow 2: left open (incomplete) until close-out.
  const std::uint64_t f2 =
      tr.begin_span(2'000, sim::SpanKind::kFlow, 0, 0, /*total_bytes=*/8000);
  tr.register_flow((std::uint64_t{1} << 32) | 3,
                   (std::uint64_t{40001} << 16) | 80, f2);
  tr.close_open_spans(10'000);
  return tr;
}

TEST(FlowTimeline, BuildHarvestsLifecycleAndLatency) {
  sim::SpanTracer tr;
  build_sample_trace(tr);
  const FlowTimeline tl = FlowTimeline::build(tr);
  ASSERT_EQ(tl.flows().size(), 2u);

  const FlowBreakdown& a = tl.flows()[0];
  EXPECT_EQ(a.key.src, 1u);
  EXPECT_EQ(a.key.dst, 2u);
  EXPECT_EQ(a.key.src_port, 40000u);
  EXPECT_EQ(a.key.dst_port, 80u);
  EXPECT_EQ(a.start, 1'000);
  EXPECT_EQ(a.end, 9'000);
  EXPECT_EQ(a.lifetime(), 8'000);
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(a.total_bytes, 5000u);
  EXPECT_EQ(a.bytes_acked, 5000u);
  EXPECT_EQ(a.retransmits, 3u);
  EXPECT_EQ(a.recoveries, 1u);
  EXPECT_EQ(a.rtos, 1u);
  EXPECT_EQ(a.decisions, 1u);
  EXPECT_EQ(a.rwnd_writes, 1u);
  EXPECT_EQ(a.probe_trains, 1u);
  EXPECT_EQ(a.latency_ps[0], 2'000'000);
  EXPECT_EQ(a.latency_samples[0], 1u);
  EXPECT_EQ(a.latency_ps[3], 7'000'000);

  const FlowBreakdown& b = tl.flows()[1];
  EXPECT_FALSE(b.completed);  // closed out, never acked its bytes
  EXPECT_EQ(b.end, 10'000);
  EXPECT_EQ(b.total_bytes, 8000u);
}

TEST(FlowTimeline, ComponentPercentilesCoverRecordedSamples) {
  sim::SpanTracer tr;
  build_sample_trace(tr);
  const FlowTimeline tl = FlowTimeline::build(tr);
  const Percentiles q =
      tl.component_percentiles(sim::LatencyComponent::kQueueing);
  EXPECT_EQ(q.count, 1u);
  EXPECT_GT(q.p50, 0);
  const Percentiles none =
      tl.component_percentiles(sim::LatencyComponent::kPropagation);
  EXPECT_EQ(none.count, 0u);
}

TEST(FlowTimeline, PrintRendersTheBreakdownTable) {
  sim::SpanTracer tr;
  build_sample_trace(tr);
  const FlowTimeline tl = FlowTimeline::build(tr);
  std::ostringstream os;
  tl.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("flow"), std::string::npos);
  EXPECT_NE(out.find("retx_wait"), std::string::npos);
  EXPECT_NE(out.find("queue"), std::string::npos);
}

TEST(FlowTimeline, EmptyTracerYieldsEmptyTimeline) {
  sim::SpanTracer tr;  // never enabled
  const FlowTimeline tl = FlowTimeline::build(tr);
  EXPECT_TRUE(tl.flows().empty());
  EXPECT_EQ(tl.component_percentiles(sim::LatencyComponent::kQueueing).count,
            0u);
}

}  // namespace
}  // namespace hwatch::stats
