#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/cdf.hpp"
#include "stats/flow_record.hpp"
#include "stats/table.hpp"

namespace hwatch::stats {
namespace {

TEST(CdfTest, EmptyCdfIsSafe) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(1.0), 0.0);
  EXPECT_EQ(cdf.summarize().count, 0u);
  EXPECT_TRUE(cdf.series().empty());
}

TEST(CdfTest, SingleSample) {
  Cdf cdf({42.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(41.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(42.0), 1.0);
}

TEST(CdfTest, QuantilesInterpolateLinearly) {
  Cdf cdf({0.0, 10.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 2.5);
}

TEST(CdfTest, QuantileClampsOutOfRange) {
  Cdf cdf({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.5), 3.0);
}

TEST(CdfTest, UnsortedInputIsSorted) {
  Cdf cdf({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  const auto& sorted = cdf.sorted_samples();
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(CdfTest, AddKeepsStatisticsCurrent) {
  Cdf cdf;
  cdf.add(3.0);
  cdf.add(1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  cdf.add(0.5);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.5);
}

TEST(CdfTest, SummaryMeanVariance) {
  Cdf cdf({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  const Summary s = cdf.summarize();
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample variance: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(CdfTest, FractionBelowMatchesDefinition) {
  Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(0.5), 0.0);
}

TEST(CdfTest, SeriesIsMonotonic) {
  Cdf cdf;
  std::uint64_t x = 5;
  for (int i = 0; i < 100; ++i) {
    x = x * 6364136223846793005ull + 1;
    cdf.add(static_cast<double>(x % 1000));
  }
  const auto series = cdf.series(20);
  ASSERT_EQ(series.size(), 21u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].first, series[i - 1].first);
    EXPECT_GT(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(FlowRecordTest, FctSamplesSkipIncomplete) {
  std::vector<FlowRecord> records(3);
  records[0].completed = true;
  records[0].fct = sim::milliseconds(5);
  records[1].completed = false;
  records[2].completed = true;
  records[2].fct = sim::milliseconds(15);
  const auto samples = fct_ms_samples(records);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0], 5.0);
  EXPECT_DOUBLE_EQ(samples[1], 15.0);
}

TEST(FlowRecordTest, GoodputSamplesInGbps) {
  std::vector<FlowRecord> records(1);
  records[0].goodput_bps = 2.5e9;
  const auto samples = goodput_gbps_samples(records);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0], 2.5);
}

TEST(TableTest, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TableTest, RejectsWrongWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(MeanOfTest, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
}

TEST(JainFairnessTest, PerfectEqualityIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({1.0}), 1.0);
}

TEST(JainFairnessTest, StarvationApproachesOneOverN) {
  // One flow hogging everything: index -> 1/n.
  const double idx = jain_fairness({10.0, 0.0, 0.0, 0.0});
  EXPECT_NEAR(idx, 0.25, 1e-12);
}

TEST(JainFairnessTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 0.0);
}

TEST(JainFairnessTest, OrderInvariant) {
  EXPECT_DOUBLE_EQ(jain_fairness({1.0, 2.0, 3.0}),
                   jain_fairness({3.0, 1.0, 2.0}));
}

}  // namespace
}  // namespace hwatch::stats
