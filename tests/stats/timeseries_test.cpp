#include <gtest/gtest.h>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/scheduler.hpp"
#include "stats/timeseries.hpp"

namespace hwatch::stats {
namespace {

class NullNode final : public net::Node {
 public:
  using Node::Node;
  void handle_packet(net::Packet&&) override {}
};

TEST(PeriodicSamplerTest, SamplesAtFixedInterval) {
  sim::Scheduler sched;
  PeriodicSampler sampler(sched, sim::milliseconds(1), sim::milliseconds(10),
                          [](sim::TimePs t) { return sim::to_millis(t); });
  sched.run_until(sim::milliseconds(10));
  const auto& s = sampler.series();
  ASSERT_EQ(s.size(), 10u);
  EXPECT_EQ(s[0].time, sim::milliseconds(1));
  EXPECT_EQ(s[9].time, sim::milliseconds(10));
  EXPECT_DOUBLE_EQ(s[4].value, 5.0);
}

TEST(PeriodicSamplerTest, StopsAtDeadline) {
  sim::Scheduler sched;
  PeriodicSampler sampler(sched, sim::milliseconds(3), sim::milliseconds(7),
                          [](sim::TimePs) { return 1.0; });
  sched.run();  // run to exhaustion: no events past `until`
  EXPECT_EQ(sampler.series().size(), 2u);  // t=3, t=6
}

TEST(PeriodicSamplerTest, MeanAndMax) {
  sim::Scheduler sched;
  int i = 0;
  PeriodicSampler sampler(sched, 1000, 5000,
                          [&i](sim::TimePs) { return double(++i); });
  sched.run();
  EXPECT_DOUBLE_EQ(sampler.mean(), 3.0);  // 1..5
  EXPECT_DOUBLE_EQ(sampler.max(), 5.0);
}

struct LinkFixture : ::testing::Test {
  LinkFixture()
      : dst(0, "dst"),
        link(ctx, "l", sim::DataRate::gbps(10), 0,
             std::make_unique<net::DropTailQueue>(1000), &dst) {}
  net::Packet packet() {
    net::Packet p;
    p.payload_bytes = 1442;  // 1500 B frame: 1.2 us at 10G
    return p;
  }
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  NullNode dst;
  net::Link link;
};

TEST_F(LinkFixture, QueueSamplerReadsOccupancy) {
  for (int i = 0; i < 100; ++i) link.transmit(packet());
  auto sampler = make_queue_sampler(sched, link, sim::microseconds(20),
                                    sim::microseconds(100));
  sched.run_until(sim::microseconds(100));
  const auto& s = sampler.series();
  ASSERT_EQ(s.size(), 5u);
  // Queue drains ~16.7 packets per 20 us sample; occupancy decreases.
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_LT(s[i].value, s[i - 1].value);
  }
}

TEST_F(LinkFixture, UtilizationSamplerFullWhenBusy) {
  for (int i = 0; i < 1000; ++i) link.transmit(packet());
  UtilizationSampler sampler(sched, link, sim::microseconds(100),
                             sim::milliseconds(1));
  sched.run_until(sim::milliseconds(1));
  ASSERT_FALSE(sampler.series().empty());
  // Saturated the whole window: every sample ~1.0.
  for (const auto& p : sampler.series()) {
    EXPECT_GT(p.value, 0.99);
    EXPECT_LE(p.value, 1.0);
  }
  EXPECT_GT(sampler.mean(), 0.99);
}

TEST_F(LinkFixture, UtilizationSamplerZeroWhenIdle) {
  UtilizationSampler sampler(sched, link, sim::microseconds(100),
                             sim::milliseconds(1));
  sched.run_until(sim::milliseconds(1));
  for (const auto& p : sampler.series()) {
    EXPECT_DOUBLE_EQ(p.value, 0.0);
  }
}

TEST_F(LinkFixture, ThroughputSamplerMatchesLinkRate) {
  for (int i = 0; i < 2000; ++i) link.transmit(packet());
  ThroughputSampler sampler(sched, link, sim::microseconds(100),
                            sim::milliseconds(1));
  sched.run_until(sim::milliseconds(1));
  ASSERT_FALSE(sampler.series().empty());
  // 10 Gb/s link saturated: each window delivers ~10 Gb/s.
  for (const auto& p : sampler.series()) {
    EXPECT_NEAR(p.value, 10.0, 0.3);
  }
}

}  // namespace
}  // namespace hwatch::stats
