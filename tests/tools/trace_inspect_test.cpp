// End-to-end tests of the trace_inspect CLI binary: exit codes (0 ok,
// 1 usage/unreadable file, 2 malformed input), the per-flow summary
// counters, repeatable --kind filters, and the merged Chrome export.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <sys/wait.h>

#include "sim/json.hpp"

namespace {

using hwatch::sim::Json;

std::string run_cli(const std::string& args, int* exit_code) {
  const std::string cmd =
      std::string(TRACE_INSPECT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string out;
  std::array<char, 4096> buf;
  while (pipe != nullptr) {
    const std::size_t n = fread(buf.data(), 1, buf.size(), pipe);
    if (n == 0) break;
    out.append(buf.data(), n);
  }
  const int status = pipe != nullptr ? pclose(pipe) : -1;
  *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

std::string write_fixture(const std::string& name,
                          const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream os(path);
  os << content;
  return path;
}

/// A miniature packet trace: one CE-marked data packet, its ACK, a SYN
/// and an HWatch probe, across two flows.
std::string packet_fixture() {
  return write_fixture(
      "ti_packets.jsonl",
      R"({"t_ps":1000000,"dir":"out","kind":"data","src":1,"dst":2,"sport":40000,"dport":80,"flags":"A","payload":1448,"wire":1500,"ecn":"ce"}
{"t_ps":2000000,"dir":"in","kind":"ack","src":2,"dst":1,"sport":80,"dport":40000,"flags":"A","payload":0,"wire":52}
{"t_ps":3000000,"dir":"out","kind":"syn","src":1,"dst":2,"sport":40001,"dport":80,"flags":"S","payload":0,"wire":60}
{"t_ps":4000000,"dir":"out","kind":"probe","src":1,"dst":2,"sport":40001,"dport":80,"flags":"","payload":0,"wire":38}
)");
}

/// A miniature span dump in SpanTracer::dump_jsonl's shape: flow
/// registration, a flow span with a decision -> rwnd_write provenance
/// chain, the latency summary and the dropped trailer.
std::string span_fixture() {
  return write_fixture(
      "ti_spans.jsonl",
      R"({"ph":"F","id":1,"src":1,"dst":2,"sport":40000,"dport":80}
{"t_ps":0,"ph":"B","kind":"flow","id":1,"parent":0,"flow":1,"total_bytes":4096}
{"t_ps":500000,"ph":"i","kind":"decision","id":2,"parent":0,"flow":1,"x_um":3,"x_m":1,"immediate_pkts":2,"deferred_pkts":2}
{"t_ps":600000,"ph":"i","kind":"rwnd_write","id":3,"parent":2,"flow":1,"rwnd_bytes":7210,"raw_old":65535,"raw_new":7210,"synack":1}
{"t_ps":3000000,"ph":"E","kind":"flow","id":1,"parent":0,"flow":1,"bytes_acked":4096,"retransmits":0}
{"ph":"L","flow":1,"queueing_ps":200000,"queueing_samples":1}
{"ph":"D","dropped_events":0}
)");
}

TEST(TraceInspectCli, SummaryCountsPerFlowCategories) {
  int code = -1;
  const std::string out = run_cli("summary " + packet_fixture(), &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("lines: 4  matched: 4"), std::string::npos) << out;
  // Flow 1:40000 -> 2:80 carried the data packet; its reverse the ACK;
  // 1:40001 -> 2:80 the SYN and the probe.
  EXPECT_NE(out.find("data=1"), std::string::npos) << out;
  EXPECT_NE(out.find("acks=1"), std::string::npos) << out;
  EXPECT_NE(out.find("syn=1"), std::string::npos) << out;
  EXPECT_NE(out.find("probes=1"), std::string::npos) << out;
  EXPECT_NE(out.find("ce=1"), std::string::npos) << out;
}

TEST(TraceInspectCli, FilterAcceptsRepeatedKindFlags) {
  int code = -1;
  const std::string out = run_cli(
      "filter --kind decision --kind rwnd_write " + span_fixture(), &code);
  EXPECT_EQ(code, 0);
  // Exactly the two provenance lines survive, verbatim.
  EXPECT_NE(out.find("\"kind\":\"decision\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"kind\":\"rwnd_write\""), std::string::npos) << out;
  EXPECT_EQ(out.find("\"kind\":\"flow\""), std::string::npos) << out;
  int lines = 0;
  for (char ch : out) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2) << out;
}

TEST(TraceInspectCli, SingleKindFilterStillWorks) {
  int code = -1;
  const std::string out =
      run_cli("filter --kind probe " + packet_fixture(), &code);
  EXPECT_EQ(code, 0);
  int lines = 0;
  for (char ch : out) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 1) << out;
}

TEST(TraceInspectCli, BadFlagExitsOneWithUsage) {
  int code = -1;
  const std::string out = run_cli("--no-such-flag", &code);
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
}

TEST(TraceInspectCli, UnreadableFileExitsOne) {
  int code = -1;
  run_cli("summary /nonexistent/trace.jsonl", &code);
  EXPECT_EQ(code, 1);
}

TEST(TraceInspectCli, MalformedLineExitsTwo) {
  const std::string path =
      write_fixture("ti_bad.jsonl", "{\"t_ps\":1,\"kind\":\"data\"\nnot json\n");
  int code = -1;
  run_cli("summary " + path, &code);
  EXPECT_EQ(code, 2);
}

TEST(TraceInspectCli, ExportMergesSpansAndPackets) {
  int code = -1;
  const std::string out =
      run_cli("export " + span_fixture() + " " + packet_fixture(), &code);
  ASSERT_EQ(code, 0);
  std::string err;
  const Json doc = Json::parse(out, &err);
  ASSERT_TRUE(err.empty()) << err << "\n" << out;
  const Json* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "hwatch.trace_export/v1");
  const Json* evs = doc.find("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_GT(evs->size(), 0u);
  // Well-formed for Perfetto: non-metadata timestamps sorted, B/E
  // balanced, and both the span track and the packet track present.
  double last_ts = -1;
  int depth = 0;
  bool saw_span_pid = false, saw_packet_pid = false;
  for (const Json& e : evs->items()) {
    const Json* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->as_string() == "M") continue;
    const Json* pid = e.find("pid");
    ASSERT_NE(pid, nullptr);
    saw_span_pid |= pid->as_int() == 1;
    saw_packet_pid |= pid->as_int() == 2;
    const double ts = e.find("ts")->as_double();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    if (ph->as_string() == "B") ++depth;
    if (ph->as_string() == "E") --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_TRUE(saw_span_pid);
  EXPECT_TRUE(saw_packet_pid);
  // Provenance args survive the export.
  EXPECT_NE(out.find("\"x_um\":3"), std::string::npos);
  EXPECT_NE(out.find("\"rwnd_bytes\":7210"), std::string::npos);
}

TEST(TraceInspectCli, ExportWritesOutputFile) {
  const std::string dest = ::testing::TempDir() + "ti_export_out.json";
  std::remove(dest.c_str());
  int code = -1;
  run_cli("export -o " + dest + " " + span_fixture(), &code);
  ASSERT_EQ(code, 0);
  std::ifstream is(dest);
  ASSERT_TRUE(is.good());
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  std::string err;
  Json::parse(content, &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_NE(content.find("hwatch.trace_export/v1"), std::string::npos);
}

/// A manifest carrying one incident that names the span_fixture flow
/// (span 1, 1:40000 -> 2:80) and overlaps its lifetime.
std::string manifest_fixture() {
  return write_fixture(
      "ti_manifest.json",
      R"({"schema":"hwatch.run_manifest/v2","name":"doctor",
"incidents":{"schema":"hwatch.incidents/v1","count":1,"incidents":[
{"id":0,"kind":"queue-buildup","severity":2,"start_ps":400000,
"end_ps":2500000,"location":"core","magnitude":90,"drops":3,
"flows":[{"src":1,"dst":2,"sport":40000,"dport":80,"span":1}],
"spans":[1]}]}})");
}

TEST(TraceInspectCli, ExplainBySpanIdBreaksDownTheFlow) {
  int code = -1;
  const std::string out = run_cli("explain 1 " + span_fixture(), &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("flow 1:40000->2:80 (span 1)"), std::string::npos)
      << out;
  EXPECT_NE(out.find("4096/4096 bytes acked"), std::string::npos) << out;
  // The only latency component in the fixture is queueing, so the
  // decomposition and the verdict both pin it at 100%.
  EXPECT_NE(out.find("queueing"), std::string::npos) << out;
  EXPECT_NE(out.find("slow because: 100% queueing"), std::string::npos)
      << out;
  EXPECT_NE(out.find("shim cut rwnd 1x"), std::string::npos) << out;
}

TEST(TraceInspectCli, ExplainAcceptsTupleSelector) {
  int code = -1;
  const std::string out =
      run_cli("explain '1:40000->2:80' " + span_fixture(), &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("(span 1)"), std::string::npos) << out;
}

TEST(TraceInspectCli, ExplainJoinsManifestIncidents) {
  int code = -1;
  const std::string out =
      run_cli("explain 1 --manifest " + manifest_fixture() + " " +
                  span_fixture(),
              &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("incidents touching this flow: 1"), std::string::npos)
      << out;
  // Membership (not mere time overlap) is reported, and the causal
  // clause cites the incident by id and location.
  EXPECT_NE(out.find("#0 queue-buildup at core sev2"), std::string::npos)
      << out;
  EXPECT_NE(out.find("(this flow)"), std::string::npos) << out;
  EXPECT_NE(out.find("at core during queue-buildup #0"), std::string::npos)
      << out;
}

TEST(TraceInspectCli, ExplainUnknownFlowExitsOne) {
  int code = -1;
  const std::string out = run_cli("explain 99 " + span_fixture(), &code);
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("not found"), std::string::npos) << out;
}

TEST(TraceInspectCli, ExplainBadManifestSchemaExitsTwo) {
  const std::string bad = write_fixture(
      "ti_bad_manifest.json",
      R"({"incidents":{"schema":"hwatch.incidents/v0","incidents":[]}})");
  int code = -1;
  run_cli("explain 1 --manifest " + bad + " " + span_fixture(), &code);
  EXPECT_EQ(code, 2);
}

TEST(TraceInspectCli, ExportCarriesIncidentTrack) {
  int code = -1;
  const std::string out =
      run_cli("export --manifest " + manifest_fixture() + " " +
                  span_fixture(),
              &code);
  ASSERT_EQ(code, 0);
  std::string err;
  const Json doc = Json::parse(out, &err);
  ASSERT_TRUE(err.empty()) << err << "\n" << out;
  // Incidents land on pid 3 as balanced B/E slices without breaking
  // the monotonic timestamp order of the merged stream.
  double last_ts = -1;
  int pid3_b = 0, pid3_e = 0;
  for (const Json& e : doc.find("traceEvents")->items()) {
    if (e.find("ph")->as_string() == "M") continue;
    const double ts = e.find("ts")->as_double();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    if (e.find("pid")->as_int() != 3) continue;
    pid3_b += e.find("ph")->as_string() == "B" ? 1 : 0;
    pid3_e += e.find("ph")->as_string() == "E" ? 1 : 0;
  }
  EXPECT_EQ(pid3_b, 1);
  EXPECT_EQ(pid3_e, 1);
  EXPECT_NE(out.find("\"incidents\""), std::string::npos);
  EXPECT_NE(out.find("queue-buildup"), std::string::npos);
}

TEST(TraceInspectCli, ExportIsDeterministic) {
  int code_a = -1, code_b = -1;
  const std::string fixture = span_fixture() + " " + packet_fixture();
  const std::string a = run_cli("export " + fixture, &code_a);
  const std::string b = run_cli("export " + fixture, &code_b);
  EXPECT_EQ(code_a, 0);
  EXPECT_EQ(code_b, 0);
  EXPECT_EQ(a, b);
}

}  // namespace
