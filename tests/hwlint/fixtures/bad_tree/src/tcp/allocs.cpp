// Seeded violations for the `hot-path-alloc` rule (src/tcp is a
// hot-path dir).  Never compiled.
#include <cstdlib>

namespace fixture {

struct Segment {
  int seq;
};

Segment* bad_new() {
  return new Segment{0};  // violation: raw new
}

void bad_delete(Segment* s) {
  delete s;  // violation: raw delete
}

void* bad_malloc() {
  return malloc(64);  // violation
}

}  // namespace fixture
