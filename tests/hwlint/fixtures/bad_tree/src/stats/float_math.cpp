// Seeded violations for the fp-determinism pass: direct ==/!= on
// floating operands, a non-portable libm call, and float accumulation
// over a container declared unordered (which also trips unordered-iter).
#include <cmath>
#include <unordered_map>

namespace fixture::stats {

std::unordered_map<int, double> samples;

bool same(double a, double b) { return a == b; }

double spread(double base) { return std::pow(base, 2.0); }

double total() {
  double sum = 0;
  for (const auto& [k, v] : samples) {
    sum += v;
  }
  return sum;
}

}  // namespace fixture::stats
