// Exercises suppression handling inside a failing tree: the two real
// violations below are silenced inline, but the malformed marker keeps
// this file (and the tree) red via `bad-suppression`.  Never compiled.
#include <deque>

namespace fixture {

struct Paced {
  std::deque<int> ok_queue;  // hwlint: allow(hot-path-container)
};

// hwlint: allow(hot-path-container)
std::deque<int> also_ok;

// hwlint: allow hot-path-container   <- missing parens: bad-suppression
std::deque<int> still_flagged;

}  // namespace fixture
