#pragma once

#include "net/cycle_c.hpp"

namespace fixture::net {
struct B {
  int b = 0;
};
}  // namespace fixture::net
