// Seeded violation: a well-formed allow(...) marker naming a rule that
// does not exist.  The typo must be reported (rule bad-suppression),
// not silently ignored — otherwise the gate is off and nobody knows.
namespace fixture::net {

// hwlint: allow(layerng)
inline int layered() { return 1; }

}  // namespace fixture::net
