// Seeded violation: member of a three-header include cycle
// (cycle_a -> cycle_b -> cycle_c -> cycle_a); the report is attributed
// here, the lexicographically smallest member.
#pragma once

#include "net/cycle_b.hpp"

namespace fixture::net {
struct A {
  int a = 0;
};
}  // namespace fixture::net
