// Seeded violations for the `hot-path-container` rule (src/net is a
// hot-path dir).  Never compiled.
#include <deque>
#include <functional>
#include <list>

namespace fixture {

struct Qdisc {
  std::deque<int> fifo;                  // violation: per-node allocation
  std::list<int> bands;                  // violation: per-node allocation
  std::function<void(int)> on_dequeue;   // violation: copyable + heap spill
};

}  // namespace fixture
