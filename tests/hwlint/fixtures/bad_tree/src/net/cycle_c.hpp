#pragma once

#include "net/cycle_a.hpp"

namespace fixture::net {
struct C {
  int c = 0;
};
}  // namespace fixture::net
