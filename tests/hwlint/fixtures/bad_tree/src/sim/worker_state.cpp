// Seeded violation: mutable namespace-scope state in src/sim without an
// explicit HWATCH_SHARD_SHARED marker (rule shard-confinement).
namespace fixture::sim {
namespace {
long g_epoch = 0;
}  // namespace

long bump_epoch() { return ++g_epoch; }

}  // namespace fixture::sim
