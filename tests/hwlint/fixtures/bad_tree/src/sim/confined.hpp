// Declares a shard-confined type; the declaring file itself is exempt
// from the confinement check.  thread_pool.cpp (a threading context)
// references it and is flagged.
#pragma once

#define HWATCH_SHARD_CONFINED

namespace fixture::sim {

class HWATCH_SHARD_CONFINED EventCore {
 public:
  int drain() { return ++drained_; }

 private:
  int drained_ = 0;
};

}  // namespace fixture::sim
