// Seeded violations for the `nondeterminism` rule.  This file is lint
// fodder only — it is never compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

unsigned bad_seed() {
  std::random_device rd;  // violation: entropy source
  return rd();
}

long bad_wall_seed() {
  return time(nullptr);  // violation: wall clock
}

double bad_timestamp() {
  const auto now = std::chrono::steady_clock::now();  // violation
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

int bad_rand() {
  srand(42);      // violation
  return rand();  // violation
}

}  // namespace fixture
