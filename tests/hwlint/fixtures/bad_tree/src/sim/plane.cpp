// Seeded violation: a HWATCH_DETERMINISTIC_PLANE function whose
// definition reads the wall clock (rule shard-confinement; the time()
// call also trips nondeterminism on its own).
#include <ctime>

#define HWATCH_DETERMINISTIC_PLANE

namespace fixture::sim {

HWATCH_DETERMINISTIC_PLANE long drain_window();

long drain_window() { return static_cast<long>(time(nullptr)); }

}  // namespace fixture::sim
