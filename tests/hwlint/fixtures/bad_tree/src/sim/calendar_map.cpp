// Seeded violation: the classic std::map calendar queue — one
// red-black-tree node allocation per scheduled event, exactly what the
// wheel + slab event core exists to avoid (src/sim is a hot-path dir).
// Never compiled.
#include <map>

namespace fixture {

struct Event {
  long time;
  int payload;
};

struct MapCalendarQueue {
  std::multimap<long, Event> queue;  // violation: node alloc per insert
  std::map<long, int> buckets;       // violation: node alloc per insert

  void schedule(long t, Event e) { queue.emplace(t, e); }
};

}  // namespace fixture
