// Seeded violation: the base layer includes the api layer — an upward
// edge in the sim -> net -> tcp/hwatch -> topo/stats/workload -> api
// order (rule layering, pass include-graph).
#pragma once

#include "api/surface.hpp"

namespace fixture::sim {
inline int knob_count(const fixture::api::Surface& s) { return s.knobs; }
}  // namespace fixture::sim
