// Seeded violations for the `mutable-global` rule (src/ outside
// src/sim).  Never compiled.
#include <cstdint>
#include <vector>

namespace fixture {

static std::uint64_t g_packet_counter = 0;  // violation: shared state

namespace {
int g_scratch = 7;  // violation: anon-namespace mutable
}  // namespace

thread_local int g_tls_depth = 0;  // violation: still shared per thread

std::uint64_t bump() {
  g_packet_counter += static_cast<std::uint64_t>(g_scratch + g_tls_depth);
  return g_packet_counter;
}

}  // namespace fixture
