// Fixture: seeded cross-shard-state violations — ad-hoc threading
// primitives outside the sanctioned shard_group/shard_channel files.
#include <atomic>
#include <mutex>
#include <thread>

namespace fixture {

struct SharedRunner {
  std::atomic<int> progress{0};
  std::mutex results_mu;

  void go() {
    std::thread worker([this] { progress.store(1); });
    worker.join();
  }
};

}  // namespace fixture
