// Seeded violation: a translation unit that spins threads (a threading
// context) touching a HWATCH_SHARD_CONFINED type (rule
// shard-confinement) — plus the std:: primitives themselves (rule
// cross-shard-state).
#include <thread>

#include "sim/confined.hpp"

namespace fixture::api {

void drain_on_worker(fixture::sim::EventCore& core) {
  std::thread worker([&core] { core.drain(); });
  worker.join();
}

}  // namespace fixture::api
