// Top-layer header that a lower layer wrongly reaches up to include.
#pragma once

namespace fixture::api {
struct Surface {
  int knobs = 0;
};
}  // namespace fixture::api
