// Seeded violations for the `unordered-iter` rule.  Never compiled.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct FlowDump {
  std::unordered_map<std::uint64_t, double> fct_by_flow;
  std::unordered_set<std::uint32_t> live_ports;

  std::vector<double> dump() const {
    std::vector<double> out;
    for (const auto& [id, fct] : fct_by_flow) {  // violation: hash order
      out.push_back(fct);
    }
    return out;
  }

  std::size_t walk() const {
    std::size_t n = 0;
    for (auto it = live_ports.begin(); it != live_ports.end(); ++it) {
      ++n;  // violation above: iterator walk from begin()
    }
    return n;
  }
};

}  // namespace fixture
