// Diamond base: included by both net/left.hpp and net/right.hpp.  The
// include-graph pass must treat the diamond as ordinary DAG sharing,
// not a cycle.
#pragma once

namespace fixture::sim {
inline constexpr int kBase = 1;
}  // namespace fixture::sim
