// Near-misses for the shard-confinement pass: mutable namespace-scope
// state in src/sim is fine when it carries the explicit
// HWATCH_SHARD_SHARED marker, and a confined type may be referenced
// freely inside its own declaring file.
#define HWATCH_SHARD_CONFINED
#define HWATCH_SHARD_SHARED

namespace fixture::sim {
namespace {
// Written once at startup, read-only afterwards.
HWATCH_SHARD_SHARED int g_verbosity = 0;
}  // namespace

class HWATCH_SHARD_CONFINED LocalCore {
 public:
  int poke() { return ++pokes_ + g_verbosity; }

 private:
  int pokes_ = 0;
};

int poke_local() {
  LocalCore core;
  return core.poke();
}

}  // namespace fixture::sim
