// Near-misses the lexer/rules must NOT flag.  Never compiled.
#include <cstdint>
#include <new>
#include <utility>

namespace fixture {

// Identifiers *containing* banned names are fine: transmission_time,
// exponential_time, busy_time are project API, not ::time().
std::uint64_t transmission_time(std::uint64_t bytes);
std::uint64_t drain(std::uint64_t b) { return transmission_time(b); }

struct Slot {
  // Deleted functions are not raw `delete`.
  Slot(const Slot&) = delete;
  Slot& operator=(const Slot&) = delete;
  Slot() = default;
  unsigned char buf[64];
};

// Placement new is the sanctioned form (pool/UF internals).
int* emplace_in(Slot& s) { return ::new (static_cast<void*>(s.buf)) int(7); }

// `operator new` declarations are not raw allocation either.
struct Pooled {
  static void* operator new(std::size_t n);
  static void operator delete(void* p) noexcept;
};

// Mentions inside strings and comments are invisible to the rules:
// std::random_device, rand(), new int[3], std::deque<int>.
const char* kDoc =
    "uses std::random_device, time(nullptr), malloc() and std::deque";

// A member function *named* time on a project type is not ::time().
struct Clock {
  std::uint64_t now;
  std::uint64_t time() const { return now; }
};
std::uint64_t read(const Clock& c) { return c.time(); }

}  // namespace fixture
