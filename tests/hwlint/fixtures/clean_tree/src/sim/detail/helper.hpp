#pragma once

namespace fixture::sim::detail {
inline constexpr int kHelper = 7;
}  // namespace fixture::sim::detail
