// Quoted includes resolve relative to the including file's directory
// first — this spelling has no "sim/" prefix and must still land on
// src/sim/detail/helper.hpp.
#pragma once

#include "detail/helper.hpp"

namespace fixture::sim {
inline constexpr int kViaRelative = detail::kHelper;
}  // namespace fixture::sim
