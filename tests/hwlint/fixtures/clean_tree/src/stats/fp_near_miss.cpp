// Near-misses for the fp-determinism pass: sqrt is exempt (IEEE 754
// requires correct rounding), integer comparisons next to double locals
// are fine, accumulation over an *ordered* container is fine, and a
// justified inline suppression silences a pow call.
#include <cmath>
#include <map>

namespace fixture::stats {

std::map<int, double> ordered_samples;

double rms(double acc, long n) {
  if (n == 0) {
    return 0.0;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

double total() {
  double sum = 0;
  for (const auto& [k, v] : ordered_samples) {
    sum += v;
  }
  return sum;
}

// Distribution shape needs pow; reference platform is x86-64/glibc.
double shaped(double base) {
  return std::pow(base, 1.5);  // hwlint: allow(fp-determinism)
}

}  // namespace fixture::stats
