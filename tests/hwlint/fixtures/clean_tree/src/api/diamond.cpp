// Downward diamond (api -> net -> sim twice over) plus an include that
// resolves to no scanned file — both must pass: diamonds are ordinary
// DAG sharing, and unresolvable includes (system or generated headers)
// are tolerated.
#include "net/left.hpp"
#include "net/right.hpp"
#include "third_party/generated_tables.hpp"

namespace fixture::api {
int span() { return fixture::net::kLeft + fixture::net::kRight; }
}  // namespace fixture::api
