// Namespace-scope *constants* are fine; the mutable-global rule only
// bites mutable state.  Suppressions silence deliberate exceptions.
// Never compiled.
#include <cstdint>

namespace fixture {

constexpr std::uint64_t kMaxWindow = 1u << 20;
const char* const kSchemaName = "hwatch.run_manifest/v1";
static constexpr double kAlpha = 0.125;

inline std::uint64_t clamp_window(std::uint64_t w) {
  // Function-local state is outside this rule's scope (and none of the
  // engine's hot paths use it; SimContext owns per-run state).
  return w > kMaxWindow ? kMaxWindow : w;
}

// A deliberate, documented exception stays visible but green:
static std::uint64_t g_debug_poke_count = 0;  // hwlint: allow(mutable-global)

std::uint64_t poke() { return ++g_debug_poke_count; }

}  // namespace fixture
