#pragma once

#include "sim/base.hpp"

namespace fixture::net {
inline constexpr int kRight = fixture::sim::kBase + 2;
}  // namespace fixture::net
