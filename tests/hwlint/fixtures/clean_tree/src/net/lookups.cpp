// Point lookups on unordered containers and ordered-container iteration
// are both fine; only unordered *iteration* is banned.  Never compiled.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Table {
  std::unordered_map<std::uint64_t, double> index;
  // hwlint: allow(hot-path-container) — fixture needs an ordered map
  std::map<std::uint64_t, double> ordered;

  double lookup(std::uint64_t k) const {
    auto it = index.find(k);                    // fine: point lookup
    return it == index.end() ? 0.0 : it->second;  // fine: end() compare
  }

  std::vector<double> dump_sorted() const {
    std::vector<double> out;
    for (const auto& [k, v] : ordered) {  // fine: std::map is ordered
      out.push_back(v);
    }
    return out;
  }
};

}  // namespace fixture
