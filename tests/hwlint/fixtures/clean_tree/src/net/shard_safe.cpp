// Fixture: near-misses for the cross-shard-state rule — project names
// that merely sound like threading primitives must not be flagged.
namespace fixture {

struct mutex {};  // a project type, not std::mutex

struct Loom {
  mutex weave_lock;  // unqualified project type
  int thread = 0;    // a weaving thread, not std::thread
  int atomic_ops = 0;

  int spin() const { return thread + atomic_ops; }
};

inline int barrier(int x) { return x; }  // project function named barrier

}  // namespace fixture
