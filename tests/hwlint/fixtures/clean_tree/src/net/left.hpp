#pragma once

#include "sim/base.hpp"

namespace fixture::net {
inline constexpr int kLeft = fixture::sim::kBase + 1;
}  // namespace fixture::net
