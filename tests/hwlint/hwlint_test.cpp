// Unit tests for the hwlint static-analysis pass: lexer behaviour,
// every rule (seeded violations flagged, near-misses pass), suppression
// semantics, allowlist/glob parsing, and the CLI end to end (exit codes
// and --json output parsed back through sim::Json).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "hwlint/hwlint.hpp"
#include "sim/json.hpp"

namespace {

using hwlint::Violation;

std::vector<Violation> check(const std::string& rel_path,
                             std::string_view source,
                             std::size_t* suppressed = nullptr) {
  return hwlint::check_source(rel_path, source, suppressed);
}

std::vector<std::string> rules_of(const std::vector<Violation>& vs) {
  std::vector<std::string> out;
  for (const auto& v : vs) out.push_back(v.rule);
  return out;
}

// ------------------------------------------------------------------ lexer

TEST(HwlintLexer, StripsCommentsStringsAndPreprocessor) {
  const auto lr = hwlint::lex(
      "// std::random_device in a comment\n"
      "/* rand() in a block\n   comment */\n"
      "#include <random>  // preprocessor line\n"
      "const char* s = \"time(nullptr) malloc\";\n"
      "char c = 'x';\n");
  for (const auto& t : lr.tokens) {
    EXPECT_NE(t.text, "random_device");
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "random");
    EXPECT_NE(t.text, "malloc");
  }
  EXPECT_TRUE(lr.suppressions.empty());
  EXPECT_TRUE(lr.malformed_suppressions.empty());
}

TEST(HwlintLexer, RawStringsAreOpaque) {
  const auto lr = hwlint::lex(
      "const char* r = R\"(std::deque<int> new delete)\";\n"
      "int after = 1;\n");
  bool saw_after = false;
  for (const auto& t : lr.tokens) {
    EXPECT_NE(t.text, "deque");
    if (t.text == "after") saw_after = true;
  }
  EXPECT_TRUE(saw_after);  // lexer resumed after the raw string
}

TEST(HwlintLexer, TracksLineNumbers) {
  const auto lr = hwlint::lex("int a;\n\nint b;\n");
  ASSERT_GE(lr.tokens.size(), 4u);
  EXPECT_EQ(lr.tokens[0].line, 1);  // int
  EXPECT_EQ(lr.tokens[3].line, 3);  // b's `int`
}

TEST(HwlintLexer, ParsesSuppressions) {
  const auto lr = hwlint::lex(
      "int a;  // hwlint: allow(nondeterminism)\n"
      "// hwlint: allow(hot-path-alloc, hot-path-container)\n"
      "int b;\n"
      "int c;  // hwlint: allow(*)\n");
  ASSERT_EQ(lr.suppressions.size(), 3u);
  EXPECT_EQ(lr.suppressions[0].line, 1);
  EXPECT_FALSE(lr.suppressions[0].whole_line);
  ASSERT_EQ(lr.suppressions[0].rules.size(), 1u);
  EXPECT_EQ(lr.suppressions[0].rules[0], "nondeterminism");
  EXPECT_TRUE(lr.suppressions[1].whole_line);
  EXPECT_EQ(lr.suppressions[1].rules.size(), 2u);
  EXPECT_TRUE(lr.suppressions[2].rules.empty());  // allow(*) == allow-all
}

TEST(HwlintLexer, FlagsMalformedMarkersButIgnoresProse) {
  const auto lr = hwlint::lex(
      "// hwlint: allow nondeterminism   <- missing parens\n"
      "// hwlint: is the tool's name; prose mention, no allow keyword\n");
  ASSERT_EQ(lr.malformed_suppressions.size(), 1u);
  EXPECT_EQ(lr.malformed_suppressions[0], 1);
}

// ------------------------------------------------------- nondeterminism

TEST(HwlintRules, FlagsEntropyAndWallClockSources) {
  const auto vs = check("src/api/bad.cpp",
                        "#include <random>\n"
                        "unsigned seed() {\n"
                        "  std::random_device rd;\n"
                        "  return rd() + static_cast<unsigned>(time(nullptr));\n"
                        "}\n"
                        "auto t0() { return std::chrono::steady_clock::now(); }\n");
  ASSERT_EQ(vs.size(), 3u);
  for (const auto& v : vs) EXPECT_EQ(v.rule, hwlint::kRuleNondeterminism);
  EXPECT_EQ(vs[0].line, 3);
  EXPECT_EQ(vs[1].line, 4);
  EXPECT_EQ(vs[2].line, 6);
}

TEST(HwlintRules, NondeterminismAppliesOutsideHotPathDirsToo) {
  const auto vs = check("tests/foo_test.cpp", "int x = rand();\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, hwlint::kRuleNondeterminism);
}

TEST(HwlintRules, ProjectNamesContainingBannedWordsPass) {
  const auto vs = check("src/net/ok.cpp",
                        "std::uint64_t transmission_time(int bytes);\n"
                        "std::uint64_t f() { return transmission_time(1); }\n"
                        "struct Clock { std::uint64_t time() const; };\n"
                        "std::uint64_t g(const Clock& c) { return c.time(); }\n");
  EXPECT_TRUE(vs.empty()) << vs[0].message;
}

TEST(HwlintRules, QualifiedProjectTimeIsNotStdTime) {
  // myns::time() is the project's own; std::time()/::time() are not.
  EXPECT_TRUE(
      check("src/net/a.cpp", "int f() { return myns::time(); }\n").empty());
  EXPECT_EQ(
      check("src/net/b.cpp", "auto f() { return std::time(nullptr); }\n")
          .size(),
      1u);
  EXPECT_EQ(
      check("src/net/c.cpp", "auto f() { return ::time(nullptr); }\n").size(),
      1u);
}

// -------------------------------------------------- hot-path containers

TEST(HwlintRules, FlagsBannedContainersOnlyInHotPathDirs) {
  const std::string src =
      "#include <deque>\n"
      "std::deque<int> q;\n"
      "std::function<void()> cb;\n"
      "std::list<int> l;\n"
      "std::map<long, int> m;\n"
      "std::multimap<long, int> mm;\n";
  EXPECT_EQ(check("src/net/hot.cpp", src).size(), 5u);
  EXPECT_EQ(check("src/sim/hot.cpp", src).size(), 5u);
  EXPECT_EQ(check("src/tcp/hot.cpp", src).size(), 5u);
  EXPECT_EQ(check("src/hwatch/hot.cpp", src).size(), 5u);
  // stats, api, tools and tests are not hot-path dirs.
  EXPECT_TRUE(check("src/stats/cold.cpp", src).empty());
  EXPECT_TRUE(check("tools/cold.cpp", src).empty());
}

// A std::map-based calendar queue — the tempting "simple" event core —
// must be flagged in the scheduler's directory: a red-black tree pays
// one node allocation per scheduled event.
TEST(HwlintRules, FlagsMapCalendarQueueInScheduler) {
  const auto vs = check("src/sim/scheduler.cpp",
                        "std::multimap<long, int> calendar;\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, hwlint::kRuleHotPathContainer);
  EXPECT_NE(vs[0].message.find("calendar"), std::string::npos);
}

// ------------------------------------------------------- hot-path alloc

TEST(HwlintRules, FlagsRawAllocationInHotPathDirs) {
  const auto vs = check("src/tcp/alloc.cpp",
                        "int* a() { return new int(3); }\n"
                        "void b(int* p) { delete p; }\n"
                        "void* c() { return malloc(16); }\n");
  EXPECT_EQ(rules_of(vs),
            (std::vector<std::string>{"hot-path-alloc", "hot-path-alloc",
                                      "hot-path-alloc"}));
}

TEST(HwlintRules, PlacementNewAndOperatorNewPass) {
  const auto vs = check(
      "src/sim/pool_like.cpp",
      "int* a(void* buf) { return ::new (buf) int(7); }\n"
      "struct P { static void* operator new(std::size_t); };\n"
      "struct S { S(const S&) = delete; };\n");
  EXPECT_TRUE(vs.empty()) << vs[0].message;
}

TEST(HwlintRules, RawAllocationOutsideHotPathPasses) {
  EXPECT_TRUE(
      check("src/api/setup.cpp", "int* f() { return new int(1); }\n").empty());
}

// ------------------------------------------------------- unordered-iter

TEST(HwlintRules, FlagsIterationOverUnorderedContainers) {
  const auto vs = check(
      "src/stats/dump.cpp",
      "#include <unordered_map>\n"
      "std::unordered_map<int, double> fct_by_flow;\n"
      "double sum() {\n"
      "  double s = 0;\n"
      "  for (const auto& [k, v] : fct_by_flow) s += v;\n"
      "  for (auto it = fct_by_flow.begin(); it != fct_by_flow.end(); ++it)\n"
      "    s += it->second;\n"
      "  return s;\n"
      "}\n");
  // Line 5 draws both passes: the iteration itself (unordered-iter) and
  // the float accumulation over it (fp-determinism).
  ASSERT_EQ(vs.size(), 3u);
  EXPECT_EQ(vs[0].rule, hwlint::kRuleFpDeterminism);
  EXPECT_EQ(vs[0].line, 5);
  EXPECT_EQ(vs[1].rule, hwlint::kRuleUnorderedIter);
  EXPECT_EQ(vs[1].line, 5);
  EXPECT_EQ(vs[2].rule, hwlint::kRuleUnorderedIter);
  EXPECT_EQ(vs[2].line, 6);
}

TEST(HwlintRules, PointLookupsAndOrderedIterationPass) {
  const auto vs = check(
      "src/stats/ok.cpp",
      "std::unordered_map<int, double> index;\n"
      "std::map<int, double> ordered;\n"
      "double f(int k) {\n"
      "  auto it = index.find(k);\n"
      "  return it == index.end() ? 0.0 : it->second;\n"
      "}\n"
      "double g() {\n"
      "  double s = 0;\n"
      "  for (const auto& [k, v] : ordered) s += v;\n"
      "  return s;\n"
      "}\n");
  EXPECT_TRUE(vs.empty()) << vs[0].message;
}

TEST(HwlintRules, UnorderedNamesCrossFiles) {
  // A member declared in a header is caught when iterated in the .cpp:
  // the driver folds every file into the TreeIndex before checking.
  const auto header = hwlint::lex(
      "struct Table { std::unordered_map<int, int> live_ports; };\n");
  hwlint::TreeIndex index;
  hwlint::index_file("src/hwatch/table.hpp", header, index);
  EXPECT_TRUE(index.unordered_names.count("live_ports"));
  const std::string cpp =
      "void walk(Table& t) { for (auto& kv : t.live_ports) (void)kv; }\n";
  const auto lexed = hwlint::lex(cpp);
  const auto vs = hwlint::check_file("src/stats/walk.cpp", lexed, index);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, hwlint::kRuleUnorderedIter);
  EXPECT_EQ(vs[0].pass, hwlint::kPassToken);
}

// ---------------------------------------------------- cross-shard-state

TEST(HwlintRules, FlagsThreadingPrimitivesInSrc) {
  const auto vs = check(
      "src/api/runner.cpp",
      "#include <atomic>\n"
      "std::atomic<int> done{0};\n"
      "void f() { std::mutex mu; std::thread t([] {}); t.join(); }\n"
      "std::barrier<> sync(2);\n"
      "std::condition_variable cv;\n");
  ASSERT_EQ(vs.size(), 5u);
  for (const auto& v : vs) {
    EXPECT_EQ(v.rule, hwlint::kRuleCrossShardState) << v.message;
  }
}

TEST(HwlintRules, CrossShardStateAppliesOnlyToSrc) {
  const std::string src = "std::mutex mu;\nstd::thread t;\n";
  EXPECT_EQ(check("src/sim/x.cpp", src).size(), 2u);
  // Tests, benches and tools may thread freely.
  EXPECT_TRUE(check("tests/api/x.cpp", src).empty());
  EXPECT_TRUE(check("bench/x.cpp", src).empty());
  EXPECT_TRUE(check("tools/x.cpp", src).empty());
}

TEST(HwlintRules, ProjectNamesResemblingPrimitivesPass) {
  const auto vs = check(
      "src/net/loom.cpp",
      "struct mutex {};\n"  // project type, unqualified
      "struct Loom {\n"
      "  mutex weave_lock;\n"
      "  int thread = 0;\n"  // a weaving thread
      "};\n"
      "int barrier(int x) { return x; }\n"
      "int f(const net::atomic& a) { return a.v; }\n");  // net::, not std::
  EXPECT_TRUE(vs.empty()) << vs[0].message;
}

TEST(HwlintRules, CrossShardStateSuppressible) {
  std::size_t suppressed = 0;
  const auto vs = check("src/net/ring.cpp",
                        "// hwlint: allow(cross-shard-state)\n"
                        "std::atomic<std::size_t> head{0};\n",
                        &suppressed);
  EXPECT_TRUE(vs.empty());
  EXPECT_EQ(suppressed, 1u);
}

// ------------------------------------------------------- mutable-global

TEST(HwlintRules, FlagsMutableNamespaceScopeState) {
  const auto vs = check("src/api/globals.cpp",
                        "static int g_counter = 0;\n"
                        "namespace { long g_total = 0; }\n"
                        "thread_local int g_tls = 0;\n");
  EXPECT_EQ(rules_of(vs),
            (std::vector<std::string>{"mutable-global", "mutable-global",
                                      "mutable-global"}));
}

TEST(HwlintRules, ConstantsLocalsAndSimInternalsPass) {
  const std::string consts =
      "constexpr int kMax = 4;\n"
      "const char* const kName = \"x\";\n"
      "static constexpr double kAlpha = 0.125;\n"
      "int f() { static int local = 0; return ++local; }\n";
  EXPECT_TRUE(check("src/api/consts.cpp", consts).empty());
  // src/sim internals are exempt from mutable-global by path, but the
  // shard-confinement pass demands an explicit HWATCH_SHARD_SHARED
  // marker there instead.
  {
    const auto vs =
        check("src/sim/log.cpp", "static int g_sink_depth = 0;\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, hwlint::kRuleShardConfinement);
  }
  EXPECT_TRUE(
      check("src/sim/log.cpp",
            "HWATCH_SHARD_SHARED int g_sink_depth = 0;\n")
          .empty());
}

// -------------------------------------------------- suppression handling

TEST(HwlintSuppression, SameLineAndWholeLineAboveSilence) {
  std::size_t suppressed = 0;
  const auto vs = check("src/net/s.cpp",
                        "std::deque<int> a;  // hwlint: allow(hot-path-container)\n"
                        "// hwlint: allow(hot-path-container)\n"
                        "std::deque<int> b;\n",
                        &suppressed);
  EXPECT_TRUE(vs.empty());
  EXPECT_EQ(suppressed, 2u);
}

TEST(HwlintSuppression, WrongRuleDoesNotSilence) {
  const auto vs = check(
      "src/net/s.cpp",
      "std::deque<int> a;  // hwlint: allow(nondeterminism)\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, hwlint::kRuleHotPathContainer);
}

TEST(HwlintSuppression, AllowStarSilencesEverything) {
  std::size_t suppressed = 0;
  const auto vs = check("src/net/s.cpp",
                        "std::deque<int> a;  // hwlint: allow(*)\n",
                        &suppressed);
  EXPECT_TRUE(vs.empty());
  EXPECT_EQ(suppressed, 1u);
}

TEST(HwlintSuppression, MalformedMarkerIsAViolation) {
  const auto vs = check("src/net/s.cpp",
                        "// hwlint: allow hot-path-container\n"
                        "std::deque<int> a;\n");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].rule, hwlint::kRuleBadSuppression);
  EXPECT_EQ(vs[1].rule, hwlint::kRuleHotPathContainer);
}

// --------------------------------------------------- include-graph pass

using LexedFiles = std::map<std::string, hwlint::LexResult>;

std::vector<Violation> run_graph(const LexedFiles& files,
                                 std::size_t* suppressed = nullptr) {
  std::map<std::string, const hwlint::LexResult*> view;
  for (const auto& [rel, lexed] : files) view.emplace(rel, &lexed);
  return hwlint::check_include_graph(view, suppressed);
}

LexedFiles lex_files(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  LexedFiles out;
  for (const auto& [rel, src] : sources) out.emplace(rel, hwlint::lex(src));
  return out;
}

TEST(HwlintIncludeGraph, LayerRanks) {
  EXPECT_EQ(hwlint::layer_rank("src/sim/context.hpp"), 0);
  EXPECT_EQ(hwlint::layer_rank("src/net/link.hpp"), 1);
  EXPECT_EQ(hwlint::layer_rank("src/tcp/sender.hpp"), 2);
  EXPECT_EQ(hwlint::layer_rank("src/hwatch/shim.hpp"), 2);
  EXPECT_EQ(hwlint::layer_rank("src/topo/fat_tree.hpp"), 3);
  EXPECT_EQ(hwlint::layer_rank("src/stats/cdf.hpp"), 3);
  EXPECT_EQ(hwlint::layer_rank("src/workload/tenant.hpp"), 3);
  EXPECT_EQ(hwlint::layer_rank("src/api/scenario.hpp"), 4);
  // Unknown dirs and out-of-src files take no part in layering.
  EXPECT_EQ(hwlint::layer_rank("src/unknown/x.hpp"), -1);
  EXPECT_EQ(hwlint::layer_rank("tools/hwlint/hwlint.hpp"), -1);
  EXPECT_EQ(hwlint::layer_rank("src/toplevel.hpp"), -1);
}

TEST(HwlintIncludeGraph, ResolvesRelativeThenRootThenVerbatim) {
  const std::set<std::string> known = {
      "src/sim/detail/helper.hpp", "src/sim/user.hpp", "src/net/link.hpp",
      "tools/hwlint/hwlint.hpp"};
  // Relative to the including file's directory wins.
  EXPECT_EQ(hwlint::resolve_include("src/sim/user.hpp", "detail/helper.hpp",
                                    known),
            "src/sim/detail/helper.hpp");
  // Then the src/ include root.
  EXPECT_EQ(hwlint::resolve_include("src/sim/user.hpp", "net/link.hpp", known),
            "src/net/link.hpp");
  // Then verbatim from the repo root.
  EXPECT_EQ(hwlint::resolve_include("src/sim/user.hpp",
                                    "tools/hwlint/hwlint.hpp", known),
            "tools/hwlint/hwlint.hpp");
  // `..` segments collapse.
  EXPECT_EQ(hwlint::resolve_include("src/sim/detail/helper.hpp",
                                    "../user.hpp", known),
            "src/sim/user.hpp");
  // Unresolvable spellings are tolerated ("" = not part of the graph).
  EXPECT_EQ(hwlint::resolve_include("src/sim/user.hpp", "no/such/file.hpp",
                                    known),
            "");
}

TEST(HwlintIncludeGraph, UpwardIncludeFlagged) {
  const auto vs = run_graph(lex_files({
      {"src/sim/core.hpp", "#include \"api/surface.hpp\"\n"},
      {"src/api/surface.hpp", "struct S {};\n"},
  }));
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, hwlint::kRuleLayering);
  EXPECT_EQ(vs[0].pass, hwlint::kPassIncludeGraph);
  EXPECT_EQ(vs[0].file, "src/sim/core.hpp");
  EXPECT_EQ(vs[0].line, 1);
  EXPECT_EQ(vs[0].evidence, "src/sim/core.hpp -> src/api/surface.hpp");
}

TEST(HwlintIncludeGraph, SameLayerAndDownwardIncludesPass) {
  const auto vs = run_graph(lex_files({
      // Downward: api -> net -> sim.
      {"src/api/top.hpp", "#include \"net/mid.hpp\"\n"},
      {"src/net/mid.hpp", "#include \"sim/base.hpp\"\n"},
      {"src/sim/base.hpp", "struct B {};\n"},
      // Same rank: hwatch -> tcp is legitimate.
      {"src/hwatch/shim2.hpp", "#include \"tcp/sender2.hpp\"\n"},
      {"src/tcp/sender2.hpp", "struct T {};\n"},
  }));
  EXPECT_TRUE(vs.empty()) << vs[0].message;
}

TEST(HwlintIncludeGraph, SelfIncludeIsACycle) {
  const auto vs = run_graph(lex_files({
      {"src/net/self.hpp", "#include \"net/self.hpp\"\nstruct S {};\n"},
  }));
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, hwlint::kRuleLayering);
  EXPECT_NE(vs[0].message.find("cycle"), std::string::npos);
  EXPECT_EQ(vs[0].evidence, "src/net/self.hpp -> src/net/self.hpp");
}

TEST(HwlintIncludeGraph, DiamondIsNotACycle) {
  const auto vs = run_graph(lex_files({
      {"src/api/top.hpp",
       "#include \"net/left.hpp\"\n#include \"net/right.hpp\"\n"},
      {"src/net/left.hpp", "#include \"sim/base.hpp\"\n"},
      {"src/net/right.hpp", "#include \"sim/base.hpp\"\n"},
      {"src/sim/base.hpp", "struct B {};\n"},
  }));
  EXPECT_TRUE(vs.empty()) << vs[0].message;
}

TEST(HwlintIncludeGraph, ThreeHeaderCycleReportedOnceWithFullPath) {
  const auto vs = run_graph(lex_files({
      {"src/net/a.hpp", "#include \"net/b.hpp\"\n"},
      {"src/net/b.hpp", "#include \"net/c.hpp\"\n"},
      {"src/net/c.hpp", "#include \"net/a.hpp\"\n"},
  }));
  ASSERT_EQ(vs.size(), 1u);  // one cycle, one report
  EXPECT_EQ(vs[0].file, "src/net/a.hpp");  // smallest member owns it
  EXPECT_EQ(vs[0].evidence,
            "src/net/a.hpp -> src/net/b.hpp -> src/net/c.hpp -> "
            "src/net/a.hpp");
}

TEST(HwlintIncludeGraph, MissingIncludesAndAngledIncludesTolerated) {
  const auto vs = run_graph(lex_files({
      {"src/net/user.hpp",
       "#include <vector>\n"
       "#include \"generated/tables.hpp\"\n"
       "struct U {};\n"},
  }));
  EXPECT_TRUE(vs.empty());
}

TEST(HwlintIncludeGraph, UpwardIncludeSuppressibleInline) {
  std::size_t suppressed = 0;
  const auto vs = run_graph(
      lex_files({
          {"src/sim/core.hpp",
           "// hwlint: allow(layering)\n#include \"api/surface.hpp\"\n"},
          {"src/api/surface.hpp", "struct S {};\n"},
      }),
      &suppressed);
  EXPECT_TRUE(vs.empty());
  EXPECT_EQ(suppressed, 1u);
}

// ------------------------------------------------- shard-confinement pass

TEST(HwlintConfinement, IndexCollectsAnnotations) {
  hwlint::TreeIndex index;
  hwlint::index_file(
      "src/sim/core.hpp",
      hwlint::lex("class HWATCH_SHARD_CONFINED EventCore { };\n"
                  "struct HWATCH_SHARD_SHARED Registry { };\n"
                  "HWATCH_DETERMINISTIC_PLANE std::uint64_t drain_all();\n"),
      index);
  ASSERT_TRUE(index.confined_types.count("EventCore"));
  EXPECT_EQ(index.confined_types.at("EventCore"), "src/sim/core.hpp:1");
  ASSERT_TRUE(index.shared_types.count("Registry"));
  ASSERT_TRUE(index.deterministic_fns.count("drain_all"));
  EXPECT_EQ(index.deterministic_fns.at("drain_all"), "src/sim/core.hpp:3");
}

TEST(HwlintConfinement, ConfinedTypeInThreadingContextFlagged) {
  hwlint::TreeIndex index;
  hwlint::index_file(
      "src/sim/core.hpp",
      hwlint::lex("class HWATCH_SHARD_CONFINED EventCore { };\n"), index);
  const std::string threading =
      "#include <thread>\n"
      "void f(EventCore& c) { std::thread t([&c] {}); t.join(); }\n";
  const auto lexed = hwlint::lex(threading);
  const auto vs = hwlint::check_file("src/api/pool.cpp", lexed, index);
  bool confined = false;
  for (const auto& v : vs) {
    if (v.rule == hwlint::kRuleShardConfinement) {
      confined = true;
      EXPECT_EQ(v.evidence, "HWATCH_SHARD_CONFINED at src/sim/core.hpp:1");
    }
  }
  EXPECT_TRUE(confined);
  // The same reference without any threading primitive is fine.
  const auto calm = hwlint::lex("void f(EventCore& c) { (void)c; }\n");
  for (const auto& v : hwlint::check_file("src/api/calm.cpp", calm, index)) {
    EXPECT_NE(v.rule, hwlint::kRuleShardConfinement) << v.message;
  }
}

TEST(HwlintConfinement, DeclaringFileExemptFromConfinementCheck) {
  hwlint::TreeIndex index;
  const std::string decl =
      "#include <atomic>\n"  // the declaring file may thread internally
      "class HWATCH_SHARD_CONFINED EventCore { std::atomic<int> n_; };\n";
  const auto lexed = hwlint::lex(decl);
  hwlint::index_file("src/sim/core.hpp", lexed, index);
  for (const auto& v : hwlint::check_file("src/sim/core.hpp", lexed, index)) {
    EXPECT_NE(v.rule, hwlint::kRuleShardConfinement) << v.message;
  }
}

TEST(HwlintConfinement, DeterministicPlaneBodyScanned) {
  const auto vs = check("src/sim/plane.cpp",
                        "HWATCH_DETERMINISTIC_PLANE long window_end();\n"
                        "long window_end() {\n"
                        "  return static_cast<long>(time(nullptr));\n"
                        "}\n");
  bool plane = false;
  for (const auto& v : vs) {
    if (v.rule == hwlint::kRuleShardConfinement) {
      plane = true;
      EXPECT_EQ(v.pass, hwlint::kPassShardConfinement);
      EXPECT_NE(v.message.find("window_end"), std::string::npos);
    }
  }
  EXPECT_TRUE(plane);
  // Reseeding an engine inside the plane is flagged too.
  const auto reseed = check("src/sim/plane2.cpp",
                            "HWATCH_DETERMINISTIC_PLANE void rewind(Rng& r);\n"
                            "void rewind(Rng& r) { r.seed(42); }\n");
  bool saw = false;
  for (const auto& v : reseed) {
    if (v.rule == hwlint::kRuleShardConfinement) saw = true;
  }
  EXPECT_TRUE(saw);
  // A clean plane function passes.
  EXPECT_TRUE(check("src/sim/plane3.cpp",
                    "HWATCH_DETERMINISTIC_PLANE long area(long w, long h);\n"
                    "long area(long w, long h) { return w * h; }\n")
                  .empty());
}

TEST(HwlintConfinement, SimStaticsNeedSharedMarker) {
  const auto vs = check("src/sim/state.cpp", "static int g_mode = 0;\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, hwlint::kRuleShardConfinement);
  EXPECT_TRUE(check("src/sim/state.cpp",
                    "HWATCH_SHARD_SHARED static int g_mode = 0;\n")
                  .empty());
  // Outside src/sim the marker grants nothing; mutable-global applies.
  const auto api = check("src/api/state.cpp",
                         "HWATCH_SHARD_SHARED static int g_mode = 0;\n");
  ASSERT_EQ(api.size(), 1u);
  EXPECT_EQ(api[0].rule, hwlint::kRuleMutableGlobal);
}

// -------------------------------------------------- fp-determinism pass

TEST(HwlintFp, FlagsFloatComparisonsPerFile) {
  const auto vs = check("src/stats/cmp.cpp",
                        "bool eq(double a, double b) { return a == b; }\n"
                        "bool tiny(double x) { return x != 0.25; }\n");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].rule, hwlint::kRuleFpDeterminism);
  EXPECT_EQ(vs[0].pass, hwlint::kPassFpDeterminism);
  // Integer comparisons and operator== declarations pass, and fp names
  // from *other* files do not poison this one.
  EXPECT_TRUE(check("src/stats/ok.cpp",
                    "bool f(long a, long b) { return a == b; }\n"
                    "bool operator==(P a, P b);\n"
                    "bool g(char c) { return c == 'x'; }\n")
                  .empty());
}

TEST(HwlintFp, FlagsAccumulationOverUnorderedOnly) {
  const auto bad = check("src/stats/acc.cpp",
                         "std::unordered_map<int, double> samples;\n"
                         "double total() {\n"
                         "  double sum = 0;\n"
                         "  for (const auto& [k, v] : samples) sum += v;\n"
                         "  return sum;\n"
                         "}\n");
  bool fp = false;
  for (const auto& v : bad) {
    if (v.rule == hwlint::kRuleFpDeterminism) fp = true;
  }
  EXPECT_TRUE(fp);
  // Ordered containers accumulate fine.
  EXPECT_TRUE(check("src/stats/acc_ok.cpp",
                    "std::map<int, double> samples;\n"
                    "double total() {\n"
                    "  double sum = 0;\n"
                    "  for (const auto& [k, v] : samples) sum += v;\n"
                    "  return sum;\n"
                    "}\n")
                  .empty());
}

TEST(HwlintFp, LibmPolicySqrtExemptPowFlagged) {
  const auto vs = check("src/stats/libm.cpp",
                        "double a(double x) { return std::sqrt(x); }\n"
                        "double b(double x) { return std::pow(x, 2.0); }\n"
                        "double c(double x) { return std::fma(x, x, 1.0); }\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 2);
  EXPECT_EQ(vs[0].rule, hwlint::kRuleFpDeterminism);
  // Only src/ is in scope: tools and bench math is not manifest payload.
  EXPECT_TRUE(
      check("tools/plot.cpp", "double f(double x) { return exp(x); }\n")
          .empty());
}

// ----------------------------------------------- unknown suppression rule

TEST(HwlintSuppression, UnknownRuleInAllowListIsViolation) {
  const auto vs = check("src/net/typo.cpp",
                        "// hwlint: allow(layerng)\n"
                        "constexpr int x = 0;\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, hwlint::kRuleBadSuppression);
  EXPECT_NE(vs[0].message.find("layerng"), std::string::npos);
  // All real rule names parse clean.
  for (const auto& rule : hwlint::all_rules()) {
    const auto ok = check("src/net/ok.cpp",
                          "// hwlint: allow(" + rule + ")\nconstexpr int x = 0;\n");
    EXPECT_TRUE(ok.empty()) << rule << ": " << ok[0].message;
  }
}

TEST(HwlintAllowlist, RejectsUnknownRuleNames) {
  hwlint::Allowlist al;
  std::string err;
  EXPECT_FALSE(
      hwlint::parse_allowlist("allow layerng src/sim/x.cpp\n", al, err));
  EXPECT_NE(err.find("layerng"), std::string::npos);
  EXPECT_TRUE(hwlint::parse_allowlist("allow layering src/sim/x.cpp\n"
                                      "allow * src/scratch/\n",
                                      al, err))
      << err;
}

// -------------------------------------------------- allowlist and globs

TEST(HwlintAllowlist, GlobMatchSemantics) {
  EXPECT_TRUE(hwlint::glob_match("src/sim/random.*", "src/sim/random.cpp"));
  EXPECT_TRUE(hwlint::glob_match("src/sim/random.*", "src/sim/random.hpp"));
  EXPECT_FALSE(hwlint::glob_match("src/sim/random.*", "src/sim/rng.cpp"));
  // `*` crosses directory separators.
  EXPECT_TRUE(hwlint::glob_match("src/*_test.cpp", "src/a/b/x_test.cpp"));
  // Trailing `/` is a prefix match.
  EXPECT_TRUE(hwlint::glob_match("tests/hwlint/fixtures/",
                                 "tests/hwlint/fixtures/bad/src/a.cpp"));
  EXPECT_FALSE(hwlint::glob_match("tests/hwlint/fixtures/", "tests/a.cpp"));
  // ...and the directory prefix itself may contain wildcards.
  EXPECT_TRUE(hwlint::glob_match("tests/*/fixtures/",
                                 "tests/hwlint/fixtures/bad/src/a.cpp"));
  EXPECT_FALSE(hwlint::glob_match("tests/*/fixtures/", "tests/hwlint/x.cpp"));
  EXPECT_TRUE(hwlint::glob_match("src/s?m/", "src/sim/context.hpp"));
  EXPECT_TRUE(hwlint::glob_match("a?c", "abc"));
  EXPECT_FALSE(hwlint::glob_match("a?c", "ac"));
}

TEST(HwlintAllowlist, ParseAndApply) {
  hwlint::Allowlist al;
  std::string err;
  ASSERT_TRUE(hwlint::parse_allowlist(
      "# comment\n"
      "allow nondeterminism src/sim/random.*\n"
      "allow * tools/scratch/\n"
      "exclude tests/hwlint/fixtures/\n",
      al, err))
      << err;
  EXPECT_TRUE(al.allowed("src/sim/random.cpp", "nondeterminism"));
  EXPECT_FALSE(al.allowed("src/sim/random.cpp", "hot-path-alloc"));
  EXPECT_TRUE(al.allowed("tools/scratch/x.cpp", "mutable-global"));
  EXPECT_TRUE(al.excluded("tests/hwlint/fixtures/bad_tree/src/a.cpp"));
  EXPECT_FALSE(al.excluded("tests/hwlint/hwlint_test.cpp"));
}

TEST(HwlintAllowlist, RejectsMalformedLines) {
  hwlint::Allowlist al;
  std::string err;
  EXPECT_FALSE(hwlint::parse_allowlist("allow nondeterminism\n", al, err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(hwlint::parse_allowlist("frobnicate x y\n", al, err));
}

// ----------------------------------------------------- driver / run_lint

TEST(HwlintDriver, BadFixtureTreeFailsWithEveryRule) {
  hwlint::Options opts;
  opts.root = std::string(HWLINT_FIXTURES) + "/bad_tree";
  hwlint::Report report;
  std::ostringstream err;
  ASSERT_EQ(hwlint::run_lint(opts, report, err), 1) << err.str();
  std::set<std::string> seen;
  for (const auto& v : report.violations) seen.insert(v.rule);
  for (const auto& rule : hwlint::all_rules()) {
    EXPECT_TRUE(seen.count(rule)) << "rule never fired: " << rule;
  }
  EXPECT_EQ(report.suppressed, 2u);  // suppressed.cpp's two valid markers
}

TEST(HwlintDriver, CleanFixtureTreePasses) {
  hwlint::Options opts;
  opts.root = std::string(HWLINT_FIXTURES) + "/clean_tree";
  hwlint::Report report;
  std::ostringstream err;
  EXPECT_EQ(hwlint::run_lint(opts, report, err), 0) << err.str();
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.files_scanned, 12u);
}

TEST(HwlintDriver, ViolationsAreSorted) {
  hwlint::Options opts;
  opts.root = std::string(HWLINT_FIXTURES) + "/bad_tree";
  hwlint::Report report;
  std::ostringstream err;
  ASSERT_EQ(hwlint::run_lint(opts, report, err), 1);
  for (std::size_t i = 1; i < report.violations.size(); ++i) {
    const auto& a = report.violations[i - 1];
    const auto& b = report.violations[i];
    EXPECT_LE(std::tie(a.file, a.line, a.rule),
              std::tie(b.file, b.line, b.rule));
  }
}

TEST(HwlintDriver, ReportsAreByteIdenticalAcrossJobCounts) {
  auto run = [](unsigned jobs) {
    hwlint::Options opts;
    opts.root = std::string(HWLINT_FIXTURES) + "/bad_tree";
    opts.jobs = jobs;
    hwlint::Report report;
    std::ostringstream err;
    EXPECT_EQ(hwlint::run_lint(opts, report, err), 1) << err.str();
    return report;
  };
  const auto serial = run(1);
  for (const std::size_t jobs : {2u, 4u, 8u}) {
    const auto parallel = run(jobs);
    ASSERT_EQ(parallel.violations.size(), serial.violations.size());
    EXPECT_EQ(parallel.files_scanned, serial.files_scanned);
    EXPECT_EQ(parallel.suppressed, serial.suppressed);
    EXPECT_EQ(parallel.allowlisted, serial.allowlisted);
    for (std::size_t i = 0; i < serial.violations.size(); ++i) {
      const auto& a = serial.violations[i];
      const auto& b = parallel.violations[i];
      EXPECT_EQ(std::tie(a.file, a.line, a.rule, a.pass, a.message,
                         a.evidence),
                std::tie(b.file, b.line, b.rule, b.pass, b.message,
                         b.evidence))
          << "divergence at index " << i << " with jobs=" << jobs;
    }
  }
}

// ------------------------------------------------------------------ CLI

std::string run_cli(const std::string& args, int* exit_code) {
  const std::string cmd = std::string(HWLINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string out;
  std::array<char, 4096> buf;
  while (pipe != nullptr) {
    const std::size_t n = fread(buf.data(), 1, buf.size(), pipe);
    if (n == 0) break;
    out.append(buf.data(), n);
  }
  const int status = pipe != nullptr ? pclose(pipe) : -1;
  *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

TEST(HwlintCli, ExitCodesMatchTreeState) {
  int code = -1;
  run_cli("--root " + std::string(HWLINT_FIXTURES) + "/clean_tree", &code);
  EXPECT_EQ(code, 0);
  run_cli("--root " + std::string(HWLINT_FIXTURES) + "/bad_tree", &code);
  EXPECT_EQ(code, 1);
  run_cli("--root /nonexistent-hwlint-root", &code);
  EXPECT_EQ(code, 2);
  run_cli("--jobs nope --root .", &code);
  EXPECT_EQ(code, 2);
}

TEST(HwlintCli, JobsFlagDoesNotChangeOutputBytes) {
  const std::string base =
      "--json --root " + std::string(HWLINT_FIXTURES) + "/bad_tree";
  int code = -1;
  const std::string serial = run_cli(base + " --jobs 1", &code);
  EXPECT_EQ(code, 1);
  const std::string parallel = run_cli(base + " --jobs 4", &code);
  EXPECT_EQ(code, 1);
  EXPECT_EQ(serial, parallel);
}

TEST(HwlintCli, JsonReportRoundTripsThroughSimJson) {
  int code = -1;
  const std::string out = run_cli(
      "--json --root " + std::string(HWLINT_FIXTURES) + "/bad_tree", &code);
  EXPECT_EQ(code, 1);
  std::string perr;
  const auto doc = hwatch::sim::Json::parse(out, &perr);
  ASSERT_TRUE(perr.empty()) << perr << "\noutput was:\n" << out;
  ASSERT_TRUE(doc.is_object());
  const auto* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "hwatch.hwlint_report/v2");
  // v2 declares its rule and pass vocabulary at top level.
  const auto* rule_list = doc.find("rules");
  ASSERT_NE(rule_list, nullptr);
  ASSERT_TRUE(rule_list->is_array());
  EXPECT_EQ(rule_list->items().size(), hwlint::all_rules().size());
  const auto* pass_list = doc.find("passes");
  ASSERT_NE(pass_list, nullptr);
  ASSERT_TRUE(pass_list->is_array());
  std::set<std::string> passes;
  for (const auto& p : pass_list->items()) passes.insert(p.as_string());
  EXPECT_TRUE(passes.count("token"));
  EXPECT_TRUE(passes.count("include-graph"));
  EXPECT_TRUE(passes.count("shard-confinement"));
  EXPECT_TRUE(passes.count("fp-determinism"));
  const auto* violations = doc.find("violations");
  ASSERT_NE(violations, nullptr);
  ASSERT_TRUE(violations->is_array());
  EXPECT_EQ(violations->items().size(), 35u);
  std::set<std::string> rules;
  bool saw_evidence = false;
  for (const auto& v : violations->items()) {
    ASSERT_TRUE(v.is_object());
    ASSERT_NE(v.find("file"), nullptr);
    ASSERT_NE(v.find("line"), nullptr);
    ASSERT_NE(v.find("rule"), nullptr);
    ASSERT_NE(v.find("pass"), nullptr);
    ASSERT_NE(v.find("message"), nullptr);
    ASSERT_NE(v.find("evidence"), nullptr);
    EXPECT_GT(v.find("line")->as_int(), 0);
    EXPECT_TRUE(passes.count(v.find("pass")->as_string()))
        << "unknown pass: " << v.find("pass")->as_string();
    if (!v.find("evidence")->as_string().empty()) saw_evidence = true;
    rules.insert(v.find("rule")->as_string());
  }
  EXPECT_TRUE(saw_evidence);  // include paths / annotation sites survive
  for (const auto& rule : hwlint::all_rules()) {
    EXPECT_TRUE(rules.count(rule)) << "rule missing from JSON: " << rule;
  }
  const auto* suppressed = doc.find("suppressed");
  ASSERT_NE(suppressed, nullptr);
  EXPECT_EQ(suppressed->as_int(), 2);
}

}  // namespace
