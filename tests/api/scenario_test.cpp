// Scenario-runner integration tests: end-to-end conservation properties,
// determinism, and the headline HWatch effect in miniature.
#include <gtest/gtest.h>

#include "api/scenario.hpp"

namespace hwatch::api {
namespace {

tcp::TcpConfig quick_tcp(tcp::EcnMode ecn) {
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(50);
  t.initial_rto = sim::milliseconds(50);
  t.ecn = ecn;
  return t;
}

/// A small, fast dumbbell scenario: 4 long + 4 short DCTCP tenants,
/// two incast epochs, 60 ms of simulated time.
DumbbellScenarioConfig small_scenario(std::uint64_t seed = 5) {
  DumbbellScenarioConfig cfg;
  cfg.pairs = 8;
  cfg.core_aqm.kind = AqmKind::kDctcpStep;
  cfg.core_aqm.buffer_packets = 100;
  cfg.core_aqm.mark_threshold_packets = 20;
  cfg.edge_aqm = cfg.core_aqm;
  workload::SenderGroup g{tcp::Transport::kDctcp,
                          quick_tcp(tcp::EcnMode::kDctcp), 4, "dctcp"};
  cfg.long_groups = {g};
  cfg.short_groups = {g};
  cfg.incast.epochs = 2;
  cfg.incast.first_epoch = sim::milliseconds(10);
  cfg.incast.epoch_interval = sim::milliseconds(20);
  cfg.duration = sim::milliseconds(60);
  cfg.seed = seed;
  return cfg;
}

TEST(ScenarioTest, ProducesAllRecordsAndSeries) {
  const ScenarioResults res = run_dumbbell(small_scenario());
  EXPECT_EQ(res.records.size(), 4u + 4u * 2u);  // longs + shorts x epochs
  EXPECT_EQ(res.short_flows().size(), 8u);
  EXPECT_EQ(res.long_flows().size(), 4u);
  EXPECT_FALSE(res.queue_packets.empty());
  EXPECT_FALSE(res.utilization.empty());
  EXPECT_FALSE(res.throughput_gbps.empty());
  EXPECT_GT(res.events_executed, 1000u);
}

TEST(ScenarioTest, ShortFlowsCompleteOnAHealthyFabric) {
  const ScenarioResults res = run_dumbbell(small_scenario());
  EXPECT_EQ(res.incomplete_short_flows(), 0u);
  const auto fct = res.short_fct_cdf_ms().summarize();
  EXPECT_EQ(fct.count, 8u);
  EXPECT_GT(fct.mean, 0.0);
}

TEST(ScenarioTest, LongFlowsReportGoodput) {
  const ScenarioResults res = run_dumbbell(small_scenario());
  for (const auto& r : res.long_flows()) {
    EXPECT_FALSE(r.completed);
    EXPECT_GT(r.goodput_bps, 1e8);  // each gets a share of 10G
  }
  // Aggregate close to the bottleneck rate.
  double total = 0;
  for (const auto& r : res.long_flows()) total += r.goodput_bps;
  EXPECT_GT(total, 5e9);
}

TEST(ScenarioTest, DeterministicForSameSeed) {
  const ScenarioResults a = run_dumbbell(small_scenario(7));
  const ScenarioResults b = run_dumbbell(small_scenario(7));
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].fct, b.records[i].fct) << i;
    EXPECT_EQ(a.records[i].retransmits, b.records[i].retransmits) << i;
    EXPECT_DOUBLE_EQ(a.records[i].goodput_bps, b.records[i].goodput_bps)
        << i;
  }
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.fabric_drops, b.fabric_drops);
}

TEST(ScenarioTest, DifferentSeedsDiffer) {
  const ScenarioResults a = run_dumbbell(small_scenario(7));
  const ScenarioResults b = run_dumbbell(small_scenario(8));
  // Incast start times are randomized: some flow must differ.
  bool any_diff = a.events_executed != b.events_executed;
  for (std::size_t i = 0; !any_diff && i < a.records.size(); ++i) {
    any_diff = a.records[i].fct != b.records[i].fct;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ScenarioTest, PacketConservationAtTheBottleneck) {
  const ScenarioResults res = run_dumbbell(small_scenario());
  const auto& q = res.bottleneck_queue;
  // Everything admitted was either delivered or is still queued (the
  // sampler stops at `duration`, so at most a queue's worth in flight).
  EXPECT_EQ(q.enqueued, q.dequeued + (q.enqueued - q.dequeued));
  EXPECT_LE(q.enqueued - q.dequeued, q.max_len_pkts);
  // Drop accounting is consistent.
  EXPECT_EQ(q.dropped, q.dropped_data + q.dropped_ctrl + q.dropped_probes);
}

TEST(ScenarioTest, RejectsOversubscribedSources) {
  DumbbellScenarioConfig cfg = small_scenario();
  cfg.pairs = 4;  // but 8 sources requested
  EXPECT_THROW(run_dumbbell(cfg), std::invalid_argument);
}

TEST(ScenarioTest, HWatchReducesDropsUnderIncast) {
  // Miniature figure 8: plain TCP tenants, marginal buffer.
  auto base = [] {
    DumbbellScenarioConfig cfg;
    cfg.pairs = 16;
    cfg.core_aqm.kind = AqmKind::kDctcpStep;
    cfg.core_aqm.buffer_packets = 60;
    cfg.core_aqm.mark_threshold_packets = 12;
    cfg.core_aqm.byte_mode = true;
    cfg.edge_aqm = cfg.core_aqm;
    workload::SenderGroup g{tcp::Transport::kNewReno,
                            quick_tcp(tcp::EcnMode::kNone), 8, "tcp"};
    cfg.long_groups = {g};
    cfg.short_groups = {g};
    cfg.incast.epochs = 2;
    cfg.incast.first_epoch = sim::milliseconds(10);
    cfg.incast.epoch_interval = sim::milliseconds(30);
    cfg.duration = sim::milliseconds(80);
    cfg.seed = 9;
    return cfg;
  };
  const ScenarioResults plain = run_dumbbell(base());

  DumbbellScenarioConfig watched_cfg = base();
  watched_cfg.hwatch_enabled = true;
  watched_cfg.hwatch.probe_span = sim::microseconds(50);
  watched_cfg.hwatch.policy.batch_interval = sim::microseconds(50);
  const ScenarioResults watched = run_dumbbell(watched_cfg);

  EXPECT_GT(plain.fabric_drops, 0u);  // pathology present
  EXPECT_LT(watched.fabric_drops, plain.fabric_drops);
  EXPECT_GT(watched.shim.probes_injected, 0u);
  EXPECT_GT(watched.shim.acks_rewritten, 0u);
  EXPECT_GT(watched.shim.flows_tracked, 0u);
  // And the short flows are faster on average.
  EXPECT_LT(watched.short_fct_cdf_ms().summarize().mean,
            plain.short_fct_cdf_ms().summarize().mean);
}

TEST(ScenarioTest, EpochMeanCdfAggregatesPerEpoch) {
  const ScenarioResults res = run_dumbbell(small_scenario());
  const auto per_epoch = res.epoch_mean_fct_cdf_ms();
  EXPECT_EQ(per_epoch.sorted_samples().size(), 2u);  // 2 epochs
}

TEST(ScenarioTest, LeafSpineSmokeRun) {
  LeafSpineScenarioConfig cfg;
  cfg.racks = 3;
  cfg.hosts_per_rack = 4;
  cfg.link_rate = sim::DataRate::gbps(1);
  cfg.fabric_aqm.kind = AqmKind::kRed;
  cfg.fabric_aqm.buffer_packets = 100;
  cfg.fabric_aqm.mark_threshold_packets = 20;
  cfg.edge_aqm.kind = AqmKind::kDropTail;
  cfg.edge_aqm.buffer_packets = 100;
  cfg.bulk_flows = 4;
  cfg.bulk_template = {tcp::Transport::kNewReno,
                       quick_tcp(tcp::EcnMode::kNone), 0, "iperf"};
  cfg.web_servers_per_rack = 2;
  cfg.web_clients = 2;
  cfg.web.waves = 2;
  cfg.web.first_wave = sim::milliseconds(20);
  cfg.web.wave_interval = sim::milliseconds(50);
  cfg.web.connections_per_pair = 2;
  cfg.web.wave_spread = sim::milliseconds(5);
  cfg.web_tcp = quick_tcp(tcp::EcnMode::kNone);
  cfg.hwatch_enabled = true;
  cfg.duration = sim::milliseconds(200);
  const ScenarioResults res = run_leaf_spine(cfg);
  // 2 servers x 2 racks... web servers live in racks 0..racks-2.
  // servers = 2 per rack x 2 sending racks = 4; clients = 2; waves = 2;
  // conns = 2 -> 4*2*2*2 = 32 short flows + 4 bulk.
  EXPECT_EQ(res.records.size(), 36u);
  EXPECT_EQ(res.short_flows().size(), 32u);
  EXPECT_EQ(res.incomplete_short_flows(), 0u);
  EXPECT_GT(res.shim.probes_injected, 0u);
}

TEST(AqmConfigTest, FactoriesProduceConfiguredQueues) {
  AqmConfig cfg;
  cfg.kind = AqmKind::kDropTail;
  cfg.buffer_packets = 7;
  auto q = cfg.make_factory(sim::DataRate::gbps(10))();
  EXPECT_EQ(q->name(), "droptail");
  EXPECT_EQ(q->capacity_packets(), 7u);

  cfg.kind = AqmKind::kDctcpStep;
  cfg.mark_threshold_packets = 3;
  auto q2 = cfg.make_factory(sim::DataRate::gbps(10))();
  EXPECT_EQ(q2->name(), "dctcp-k");

  cfg.kind = AqmKind::kRed;
  auto q3 = cfg.make_factory(sim::DataRate::gbps(10))();
  EXPECT_EQ(q3->name(), "red");
}

TEST(AqmConfigTest, ByteModeSizesBufferInBytes) {
  AqmConfig cfg;
  cfg.kind = AqmKind::kDropTail;
  cfg.buffer_packets = 10;
  cfg.byte_mode = true;
  cfg.mtu_bytes = 1000;
  auto q = cfg.make_factory(sim::DataRate::gbps(10))();
  // 10 frames of 1000 B = 10 kB: fits ~263 tiny 38-byte probes.
  net::Packet probe;
  probe.kind = net::PacketKind::kProbe;
  int accepted = 0;
  for (int i = 0; i < 300; ++i) {
    net::Packet p = probe;
    if (q->enqueue(std::move(p), 0) != net::EnqueueOutcome::kDropped) {
      ++accepted;
    }
  }
  EXPECT_GT(accepted, 250);
  EXPECT_LT(accepted, 300);
}

TEST(ScenarioTest, NamesForAqmKinds) {
  EXPECT_EQ(to_string(AqmKind::kDropTail), "droptail");
  EXPECT_EQ(to_string(AqmKind::kRed), "red-ecn");
  EXPECT_EQ(to_string(AqmKind::kDctcpStep), "dctcp-step");
}

}  // namespace
}  // namespace hwatch::api
