// SweepRunner tests: per-point seeding, ordered result collection, and
// the determinism contract — results must be identical whether points
// run serially or across a thread pool, because each point runs on its
// own SimContext with zero shared mutable state.
#include "api/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "api/scenario.hpp"

namespace hwatch::api {
namespace {

tcp::TcpConfig quick_tcp() {
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(50);
  t.initial_rto = sim::milliseconds(50);
  t.ecn = tcp::EcnMode::kDctcp;
  return t;
}

/// Small, fast dumbbell point (mirrors scenario_test's miniature).
DumbbellScenarioConfig small_point(std::uint64_t seed) {
  DumbbellScenarioConfig cfg;
  cfg.pairs = 8;
  cfg.core_aqm.kind = AqmKind::kDctcpStep;
  cfg.core_aqm.buffer_packets = 100;
  cfg.core_aqm.mark_threshold_packets = 20;
  cfg.edge_aqm = cfg.core_aqm;
  workload::SenderGroup g{tcp::Transport::kDctcp, quick_tcp(), 4, "dctcp"};
  cfg.long_groups = {g};
  cfg.short_groups = {g};
  cfg.incast.epochs = 2;
  cfg.incast.first_epoch = sim::milliseconds(10);
  cfg.incast.epoch_interval = sim::milliseconds(20);
  cfg.duration = sim::milliseconds(60);
  cfg.seed = seed;
  return cfg;
}

/// Field-by-field comparison of two scenario results; EXPECTs on every
/// mismatch so failures name the diverging quantity.
void expect_identical(const ScenarioResults& a, const ScenarioResults& b) {
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.fabric_drops, b.fabric_drops);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.timeouts, b.timeouts);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].bytes, b.records[i].bytes) << i;
    EXPECT_EQ(a.records[i].completed, b.records[i].completed) << i;
    EXPECT_EQ(a.records[i].start_time, b.records[i].start_time) << i;
    EXPECT_EQ(a.records[i].fct, b.records[i].fct) << i;
    EXPECT_EQ(a.records[i].retransmits, b.records[i].retransmits) << i;
    EXPECT_EQ(a.records[i].timeouts, b.records[i].timeouts) << i;
    EXPECT_DOUBLE_EQ(a.records[i].goodput_bps, b.records[i].goodput_bps)
        << i;
  }
  ASSERT_EQ(a.queue_packets.size(), b.queue_packets.size());
  for (std::size_t i = 0; i < a.queue_packets.size(); ++i) {
    EXPECT_EQ(a.queue_packets[i].time, b.queue_packets[i].time) << i;
    EXPECT_DOUBLE_EQ(a.queue_packets[i].value, b.queue_packets[i].value)
        << i;
  }
}

TEST(DerivePointSeedTest, DistinctPerIndexAndBase) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 20ull, 0xdeadbeefull}) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      seen.insert(derive_point_seed(base, i));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 64u);  // no collisions across the grid
  // Stable: the same pair always derives the same seed.
  EXPECT_EQ(derive_point_seed(20, 3), derive_point_seed(20, 3));
}

TEST(SweepRunnerTest, DefaultsToHardwareConcurrency) {
  EXPECT_GE(SweepRunner().threads(), 1u);
  EXPECT_EQ(SweepRunner(3).threads(), 3u);
}

TEST(SweepRunnerTest, RunsEveryPointInOrder) {
  std::vector<DumbbellScenarioConfig> points;
  for (std::uint64_t s : {3ull, 4ull, 5ull}) points.push_back(small_point(s));
  const auto results = SweepRunner(2).run(points);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_GT(r.events_executed, 1000u);
    EXPECT_EQ(r.records.size(), 4u + 4u * 2u);
  }
  // Per-point results match an individually-run scenario (order kept).
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_identical(results[i], run_dumbbell(points[i]));
  }
}

TEST(SweepRunnerTest, SameSeedTwiceIsByteIdentical) {
  const ScenarioResults a = run_dumbbell(small_point(7));
  const ScenarioResults b = run_dumbbell(small_point(7));
  expect_identical(a, b);
}

TEST(SweepRunnerTest, ThreadCountDoesNotChangeResults) {
  std::vector<DumbbellScenarioConfig> points;
  for (std::uint64_t s : {11ull, 12ull, 13ull, 14ull, 15ull}) {
    points.push_back(small_point(s));
  }
  const auto serial = SweepRunner(1).run(points);
  const auto threaded = SweepRunner(4).run(points);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], threaded[i]);
  }
}

TEST(SweepRunnerTest, PropagatesExceptions) {
  std::vector<DumbbellScenarioConfig> points(3, small_point(9));
  points[1].pairs = 4;  // oversubscribed: 8 sources into 4 pairs -> throw
  EXPECT_THROW(SweepRunner(2).run(points), std::invalid_argument);
  EXPECT_THROW(SweepRunner(1).run(points), std::invalid_argument);
}

TEST(SweepRunnerTest, EmptySweepReturnsEmpty) {
  EXPECT_TRUE(SweepRunner(4)
                  .run(std::vector<DumbbellScenarioConfig>{})
                  .empty());
}

/// RAII helper: sets HWATCH_SWEEP_THREADS for one test and restores the
/// previous value on exit.
class ThreadsEnvGuard {
 public:
  explicit ThreadsEnvGuard(const char* value) {
    const char* old = std::getenv(kVar);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(kVar, value, /*overwrite=*/1);
    } else {
      ::unsetenv(kVar);
    }
  }
  ~ThreadsEnvGuard() {
    if (had_) {
      ::setenv(kVar, saved_.c_str(), 1);
    } else {
      ::unsetenv(kVar);
    }
  }

 private:
  static constexpr const char* kVar = "HWATCH_SWEEP_THREADS";
  std::string saved_;
  bool had_ = false;
};

TEST(ThreadsFromEnvTest, UnsetOrEmptyMeansAuto) {
  {
    ThreadsEnvGuard guard(nullptr);
    EXPECT_EQ(SweepRunner::threads_from_env(), 0u);
  }
  {
    ThreadsEnvGuard guard("");
    EXPECT_EQ(SweepRunner::threads_from_env(), 0u);
  }
}

TEST(ThreadsFromEnvTest, ParsesPositiveIntegers) {
  {
    ThreadsEnvGuard guard("1");
    EXPECT_EQ(SweepRunner::threads_from_env(), 1u);
  }
  {
    ThreadsEnvGuard guard("16");
    EXPECT_EQ(SweepRunner::threads_from_env(), 16u);
  }
}

TEST(ThreadsFromEnvTest, RejectsZero) {
  ThreadsEnvGuard guard("0");
  EXPECT_THROW(SweepRunner::threads_from_env(), std::invalid_argument);
}

TEST(ThreadsFromEnvTest, RejectsNonNumeric) {
  for (const char* bad : {"four", "x4", "--2", "nan"}) {
    ThreadsEnvGuard guard(bad);
    EXPECT_THROW(SweepRunner::threads_from_env(), std::invalid_argument)
        << bad;
  }
}

TEST(ThreadsFromEnvTest, RejectsNegative) {
  ThreadsEnvGuard guard("-3");
  EXPECT_THROW(SweepRunner::threads_from_env(), std::invalid_argument);
}

TEST(ThreadsFromEnvTest, RejectsTrailingJunk) {
  for (const char* bad : {"4x", "4 threads", "4.5"}) {
    ThreadsEnvGuard guard(bad);
    EXPECT_THROW(SweepRunner::threads_from_env(), std::invalid_argument)
        << bad;
  }
}

TEST(ThreadsFromEnvTest, RejectsOutOfRange) {
  ThreadsEnvGuard guard("99999999999999999999");
  EXPECT_THROW(SweepRunner::threads_from_env(), std::invalid_argument);
}

TEST(ThreadsFromEnvTest, ErrorMessageNamesVariableAndValue) {
  ThreadsEnvGuard guard("banana");
  try {
    SweepRunner::threads_from_env();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("HWATCH_SWEEP_THREADS"), std::string::npos);
    EXPECT_NE(what.find("banana"), std::string::npos);
    EXPECT_NE(what.find("positive integer"), std::string::npos);
  }
}

}  // namespace
}  // namespace hwatch::api
