// Sharded-run determinism: the headline invariant of the sharded
// runner is that the worker-thread count (cfg.shards / HWATCH_SHARDS)
// changes nothing but wall time — manifests and trace exports are
// byte-identical across 1, 2 and 4 threads because the logical
// partition and every event order are pure functions of (config, seed).
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "api/sharded.hpp"
#include "sim/json.hpp"

namespace hwatch {
namespace {

api::FatTreeScenarioConfig small_config() {
  api::FatTreeScenarioConfig cfg;
  cfg.k = 4;  // 16 hosts, 8 shards
  cfg.aqm.kind = api::AqmKind::kDctcpStep;
  cfg.flows_per_host = 1;
  cfg.flow_bytes = 50'000;
  cfg.start_spread = sim::milliseconds(1);
  cfg.transport = tcp::Transport::kDctcp;
  cfg.duration = sim::milliseconds(20);
  cfg.seed = 7;
  cfg.collect_metrics = true;
  cfg.trace_spans = true;
  cfg.run_label = "sharded-determinism";
  return cfg;
}

TEST(ShardedDeterminism, ByteIdenticalAcrossThreadCounts) {
  api::FatTreeScenarioConfig cfg = small_config();
  cfg.shards = 1;
  const api::ScenarioResults base = api::run_fat_tree_sharded(cfg);
  ASSERT_TRUE(base.has_manifest);
  ASSERT_FALSE(base.records.empty());
  EXPECT_EQ(base.incomplete_short_flows(), 0u);
  const std::string base_manifest = base.manifest.deterministic_dump();
  ASSERT_FALSE(base_manifest.empty());
  ASSERT_FALSE(base.trace_spans_jsonl.empty());
  ASSERT_FALSE(base.trace_chrome.empty());
  // The shards telemetry section and gauge series ride in the
  // deterministic dump, so the loop below byte-compares them too.
  EXPECT_NE(base_manifest.find("hwatch.shard_telemetry/v1"),
            std::string::npos);
  EXPECT_NE(base_manifest.find("shard0.net.queued_pkts_total"),
            std::string::npos);
  EXPECT_GE(base.shard_imbalance, 1.0);

  for (unsigned threads : {2u, 4u}) {
    cfg.shards = threads;
    const api::ScenarioResults run = api::run_fat_tree_sharded(cfg);
    ASSERT_TRUE(run.has_manifest);
    EXPECT_EQ(run.manifest.deterministic_dump(), base_manifest)
        << "manifest differs at " << threads << " worker threads";
    EXPECT_EQ(run.trace_spans_jsonl, base.trace_spans_jsonl)
        << "span dump differs at " << threads << " worker threads";
    EXPECT_EQ(run.trace_chrome, base.trace_chrome)
        << "chrome export differs at " << threads << " worker threads";
    EXPECT_DOUBLE_EQ(run.shard_imbalance, base.shard_imbalance);
  }
}

TEST(ShardedDeterminism, ShardsSectionIsWellFormed) {
  api::FatTreeScenarioConfig cfg = small_config();
  cfg.trace_spans = false;
  cfg.shards = 2;
  const api::ScenarioResults res = api::run_fat_tree_sharded(cfg);
  ASSERT_TRUE(res.has_manifest);
  const sim::Json& shards = res.manifest.shards;
  ASSERT_TRUE(shards.is_object());
  ASSERT_NE(shards.find("schema"), nullptr);
  EXPECT_EQ(shards.find("schema")->as_string(), "hwatch.shard_telemetry/v1");
  EXPECT_EQ(shards.find("shard_count")->as_uint(), 8u);
  EXPECT_GT(shards.find("epochs")->as_uint(), 0u);
  const sim::Json* per_shard = shards.find("per_shard");
  ASSERT_NE(per_shard, nullptr);
  ASSERT_EQ(per_shard->size(), 8u);
  // The per-shard events sum to the run total and cross-shard traffic
  // is conserved: everything pushed was drained (no packet stranded).
  std::uint64_t events = 0, pushed = 0, drained = 0;
  for (const sim::Json& s : per_shard->items()) {
    events += s.find("events")->as_uint();
    pushed += s.find("ingress")->find("pushed")->as_uint();
    drained += s.find("ingress")->find("drained")->as_uint();
  }
  EXPECT_EQ(events, shards.find("events")->find("total")->as_uint());
  EXPECT_EQ(events, res.events_executed);
  EXPECT_GT(pushed, 0u);
  EXPECT_EQ(pushed, drained);
  // Gauge series cover every shard; counters carry the drain totals.
  EXPECT_EQ(res.manifest.series.size(), 8u * 3u);
  const sim::Json* counters = res.manifest.metrics.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("shard.ingress.drained")->as_uint(), drained);
  ASSERT_NE(counters->find("shard.ingress.peak_depth"), nullptr);
}

TEST(ShardedDeterminism, EmptyWorkloadStaysByteIdentical) {
  api::FatTreeScenarioConfig cfg = small_config();
  cfg.trace_spans = false;
  cfg.flows_per_host = 0;  // telemetry over empty epochs
  // Push the first gauge tick past the horizon: sampler events would
  // otherwise be the only scheduler activity.
  cfg.sample_interval = sim::seconds(1);
  cfg.run_label = "sharded-empty";
  cfg.shards = 1;
  const api::ScenarioResults base = api::run_fat_tree_sharded(cfg);
  ASSERT_TRUE(base.has_manifest);
  EXPECT_TRUE(base.records.empty());
  EXPECT_EQ(base.shard_imbalance, 0.0);
  const sim::Json& shards = base.manifest.shards;
  ASSERT_TRUE(shards.is_object());
  EXPECT_GT(shards.find("epochs")->as_uint(), 0u);
  EXPECT_EQ(shards.find("events")->find("total")->as_uint(), 0u);
  EXPECT_EQ(shards.find("stragglers")->size(), 0u);
  const std::string dump = base.manifest.deterministic_dump();
  for (unsigned threads : {2u, 4u}) {
    cfg.shards = threads;
    const api::ScenarioResults run = api::run_fat_tree_sharded(cfg);
    EXPECT_EQ(run.manifest.deterministic_dump(), dump)
        << "empty-workload manifest differs at " << threads << " threads";
  }
}

TEST(ShardedScenario, ProfileReportsWithoutDisturbingResults) {
  api::FatTreeScenarioConfig cfg = small_config();
  cfg.trace_spans = false;
  cfg.shards = 2;
  const api::ScenarioResults plain = api::run_fat_tree_sharded(cfg);
  cfg.profile = true;  // stderr report only
  const api::ScenarioResults profiled = api::run_fat_tree_sharded(cfg);
  EXPECT_EQ(profiled.manifest.deterministic_dump(),
            plain.manifest.deterministic_dump());
}

TEST(ShardedScenario, WorkersTimelineIsSeparateFromMergedTrace) {
  api::FatTreeScenarioConfig cfg = small_config();
  cfg.shards = 2;
  const api::ScenarioResults res = api::run_fat_tree_sharded(cfg);
  ASSERT_FALSE(res.trace_workers_chrome.empty());
  std::string err;
  const sim::Json j = sim::Json::parse(res.trace_workers_chrome, &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(j.find("schema")->as_string(), "hwatch.trace_export/v1");
  EXPECT_GT(j.find("traceEvents")->size(), 0u);
  // Wall-clock data never leaks into the merged (byte-compared) export.
  EXPECT_EQ(res.trace_chrome.find("worker0"), std::string::npos);
}

TEST(ShardedScenario, CrossShardFlowsComplete) {
  api::FatTreeScenarioConfig cfg = small_config();
  cfg.collect_metrics = false;
  cfg.trace_spans = false;
  cfg.shards = 2;
  const api::ScenarioResults res = api::run_fat_tree_sharded(cfg);
  EXPECT_EQ(res.records.size(), 16u);
  EXPECT_EQ(res.incomplete_short_flows(), 0u);
  EXPECT_GT(res.events_executed, 0u);
  for (const auto& r : res.records) {
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.fct, 0);
  }
}

TEST(ShardedScenario, HwatchShimsRunAcrossShards) {
  api::FatTreeScenarioConfig cfg = small_config();
  cfg.collect_metrics = false;
  cfg.trace_spans = false;
  cfg.hwatch_enabled = true;
  cfg.shards = 2;
  const api::ScenarioResults res = api::run_fat_tree_sharded(cfg);
  EXPECT_EQ(res.incomplete_short_flows(), 0u);
  EXPECT_GT(res.shim.flows_tracked, 0u);
}

TEST(ShardedEnv, ShardsFromEnvValidation) {
  ::unsetenv("HWATCH_SHARDS");
  EXPECT_EQ(api::shards_from_env(), 0u);
  ::setenv("HWATCH_SHARDS", "3", 1);
  EXPECT_EQ(api::shards_from_env(), 3u);
  for (const char* bad : {"", "0", "-1", "2x", "abc", "99999999999"}) {
    ::setenv("HWATCH_SHARDS", bad, 1);
    if (*bad == '\0') {
      EXPECT_EQ(api::shards_from_env(), 0u);
    } else {
      EXPECT_THROW(api::shards_from_env(), std::invalid_argument) << bad;
    }
  }
  ::unsetenv("HWATCH_SHARDS");
}

TEST(ShardedEnv, RunnerResolvesEnv) {
  ::setenv("HWATCH_SHARDS", "2", 1);
  const api::ShardedRunner runner;
  EXPECT_EQ(runner.threads(), 2u);
  ::unsetenv("HWATCH_SHARDS");
  const api::ShardedRunner one;
  EXPECT_EQ(one.threads(), 1u);
  const api::ShardedRunner four(4);
  EXPECT_EQ(four.threads(), 4u);
}

}  // namespace
}  // namespace hwatch
