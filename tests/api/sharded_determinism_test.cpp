// Sharded-run determinism: the headline invariant of the sharded
// runner is that the worker-thread count (cfg.shards / HWATCH_SHARDS)
// changes nothing but wall time — manifests and trace exports are
// byte-identical across 1, 2 and 4 threads because the logical
// partition and every event order are pure functions of (config, seed).
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "api/sharded.hpp"

namespace hwatch {
namespace {

api::FatTreeScenarioConfig small_config() {
  api::FatTreeScenarioConfig cfg;
  cfg.k = 4;  // 16 hosts, 8 shards
  cfg.aqm.kind = api::AqmKind::kDctcpStep;
  cfg.flows_per_host = 1;
  cfg.flow_bytes = 50'000;
  cfg.start_spread = sim::milliseconds(1);
  cfg.transport = tcp::Transport::kDctcp;
  cfg.duration = sim::milliseconds(20);
  cfg.seed = 7;
  cfg.collect_metrics = true;
  cfg.trace_spans = true;
  cfg.run_label = "sharded-determinism";
  return cfg;
}

TEST(ShardedDeterminism, ByteIdenticalAcrossThreadCounts) {
  api::FatTreeScenarioConfig cfg = small_config();
  cfg.shards = 1;
  const api::ScenarioResults base = api::run_fat_tree_sharded(cfg);
  ASSERT_TRUE(base.has_manifest);
  ASSERT_FALSE(base.records.empty());
  EXPECT_EQ(base.incomplete_short_flows(), 0u);
  const std::string base_manifest = base.manifest.deterministic_dump();
  ASSERT_FALSE(base_manifest.empty());
  ASSERT_FALSE(base.trace_spans_jsonl.empty());
  ASSERT_FALSE(base.trace_chrome.empty());

  for (unsigned threads : {2u, 4u}) {
    cfg.shards = threads;
    const api::ScenarioResults run = api::run_fat_tree_sharded(cfg);
    ASSERT_TRUE(run.has_manifest);
    EXPECT_EQ(run.manifest.deterministic_dump(), base_manifest)
        << "manifest differs at " << threads << " worker threads";
    EXPECT_EQ(run.trace_spans_jsonl, base.trace_spans_jsonl)
        << "span dump differs at " << threads << " worker threads";
    EXPECT_EQ(run.trace_chrome, base.trace_chrome)
        << "chrome export differs at " << threads << " worker threads";
  }
}

TEST(ShardedScenario, CrossShardFlowsComplete) {
  api::FatTreeScenarioConfig cfg = small_config();
  cfg.collect_metrics = false;
  cfg.trace_spans = false;
  cfg.shards = 2;
  const api::ScenarioResults res = api::run_fat_tree_sharded(cfg);
  EXPECT_EQ(res.records.size(), 16u);
  EXPECT_EQ(res.incomplete_short_flows(), 0u);
  EXPECT_GT(res.events_executed, 0u);
  for (const auto& r : res.records) {
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.fct, 0);
  }
}

TEST(ShardedScenario, HwatchShimsRunAcrossShards) {
  api::FatTreeScenarioConfig cfg = small_config();
  cfg.collect_metrics = false;
  cfg.trace_spans = false;
  cfg.hwatch_enabled = true;
  cfg.shards = 2;
  const api::ScenarioResults res = api::run_fat_tree_sharded(cfg);
  EXPECT_EQ(res.incomplete_short_flows(), 0u);
  EXPECT_GT(res.shim.flows_tracked, 0u);
}

TEST(ShardedEnv, ShardsFromEnvValidation) {
  ::unsetenv("HWATCH_SHARDS");
  EXPECT_EQ(api::shards_from_env(), 0u);
  ::setenv("HWATCH_SHARDS", "3", 1);
  EXPECT_EQ(api::shards_from_env(), 3u);
  for (const char* bad : {"", "0", "-1", "2x", "abc", "99999999999"}) {
    ::setenv("HWATCH_SHARDS", bad, 1);
    if (*bad == '\0') {
      EXPECT_EQ(api::shards_from_env(), 0u);
    } else {
      EXPECT_THROW(api::shards_from_env(), std::invalid_argument) << bad;
    }
  }
  ::unsetenv("HWATCH_SHARDS");
}

TEST(ShardedEnv, RunnerResolvesEnv) {
  ::setenv("HWATCH_SHARDS", "2", 1);
  const api::ShardedRunner runner;
  EXPECT_EQ(runner.threads(), 2u);
  ::unsetenv("HWATCH_SHARDS");
  const api::ShardedRunner one;
  EXPECT_EQ(one.threads(), 1u);
  const api::ShardedRunner four(4);
  EXPECT_EQ(four.threads(), 4u);
}

}  // namespace
}  // namespace hwatch
