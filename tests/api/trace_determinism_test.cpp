// Determinism contract of the tracing subsystem: the span JSONL dump
// and the Chrome export are pure functions of (config, seed) — byte
// identical across repeated runs and across sweep thread counts — and
// turning tracing on must not perturb the simulation itself (manifests
// stay byte-identical with tracing on or off).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "api/scenario.hpp"
#include "api/sweep.hpp"

namespace hwatch::api {
namespace {

tcp::TcpConfig quick_tcp() {
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(50);
  t.initial_rto = sim::milliseconds(50);
  t.ecn = tcp::EcnMode::kDctcp;
  return t;
}

/// Small, fast dumbbell point with HWatch on, so every span kind
/// (handshake, probe train, decision, rwnd write) shows up in traces.
DumbbellScenarioConfig traced_point(std::uint64_t seed) {
  DumbbellScenarioConfig cfg;
  cfg.pairs = 8;
  cfg.core_aqm.kind = AqmKind::kDctcpStep;
  cfg.core_aqm.buffer_packets = 100;
  cfg.core_aqm.mark_threshold_packets = 20;
  cfg.edge_aqm = cfg.core_aqm;
  workload::SenderGroup g{tcp::Transport::kDctcp, quick_tcp(), 4, "dctcp"};
  cfg.long_groups = {g};
  cfg.short_groups = {g};
  cfg.incast.epochs = 2;
  cfg.incast.first_epoch = sim::milliseconds(10);
  cfg.incast.epoch_interval = sim::milliseconds(20);
  cfg.duration = sim::milliseconds(60);
  cfg.hwatch_enabled = true;
  cfg.seed = seed;
  cfg.trace_spans = true;
  return cfg;
}

class TraceDeterminismTest : public ::testing::Test {
 protected:
  // These tests assert byte-identity, so stray environment overrides
  // (HWATCH_TRACE_DIR writing files, HWATCH_METRICS_DIR forcing
  // metrics) must not leak in.
  void SetUp() override {
    ::unsetenv("HWATCH_TRACE_DIR");
    ::unsetenv("HWATCH_METRICS_DIR");
    ::unsetenv("HWATCH_SWEEP_THREADS");
    ::unsetenv("HWATCH_PROGRESS");
  }
};

TEST_F(TraceDeterminismTest, SameSeedSameBytes) {
  const ScenarioResults a = run_dumbbell(traced_point(7));
  const ScenarioResults b = run_dumbbell(traced_point(7));
  ASSERT_TRUE(a.has_timeline);
  ASSERT_TRUE(b.has_timeline);
  ASSERT_FALSE(a.trace_spans_jsonl.empty());
  ASSERT_FALSE(a.trace_chrome.empty());
  EXPECT_EQ(a.trace_spans_jsonl, b.trace_spans_jsonl);
  EXPECT_EQ(a.trace_chrome, b.trace_chrome);
  ASSERT_EQ(a.timeline.flows().size(), b.timeline.flows().size());
  EXPECT_FALSE(a.timeline.flows().empty());
}

TEST_F(TraceDeterminismTest, DifferentSeedDifferentTrace) {
  const ScenarioResults a = run_dumbbell(traced_point(7));
  const ScenarioResults b = run_dumbbell(traced_point(8));
  EXPECT_NE(a.trace_spans_jsonl, b.trace_spans_jsonl);
}

TEST_F(TraceDeterminismTest, SweepThreadCountDoesNotChangeTraces) {
  std::vector<DumbbellScenarioConfig> points;
  for (std::uint64_t s = 1; s <= 4; ++s) points.push_back(traced_point(s));
  const std::vector<ScenarioResults> serial = SweepRunner(1).run(points);
  const std::vector<ScenarioResults> parallel = SweepRunner(4).run(points);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].trace_spans_jsonl, parallel[i].trace_spans_jsonl)
        << "point " << i;
    EXPECT_EQ(serial[i].trace_chrome, parallel[i].trace_chrome)
        << "point " << i;
  }
}

TEST_F(TraceDeterminismTest, TracingDoesNotPerturbTheSimulation) {
  DumbbellScenarioConfig off = traced_point(5);
  off.trace_spans = false;
  off.collect_metrics = true;
  DumbbellScenarioConfig on = traced_point(5);
  on.collect_metrics = true;
  const ScenarioResults a = run_dumbbell(off);
  const ScenarioResults b = run_dumbbell(on);
  EXPECT_FALSE(a.has_timeline);
  EXPECT_TRUE(b.has_timeline);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.retransmits, b.retransmits);
  ASSERT_TRUE(a.has_manifest);
  ASSERT_TRUE(b.has_manifest);
  // The manifest is the simulation's observable fingerprint; tracing
  // must leave it byte-identical.
  EXPECT_EQ(a.manifest.deterministic_dump(), b.manifest.deterministic_dump());
}

TEST_F(TraceDeterminismTest, ExportCarriesTheSchemaTag) {
  const ScenarioResults r = run_dumbbell(traced_point(3));
  EXPECT_NE(r.trace_chrome.find("\"schema\":\"hwatch.trace_export/v1\""),
            std::string::npos);
  EXPECT_NE(r.trace_chrome.find("\"traceEvents\":["), std::string::npos);
  // Spans JSONL carries flow registrations and latency summaries.
  EXPECT_NE(r.trace_spans_jsonl.find("\"ph\":\"F\""), std::string::npos);
  EXPECT_NE(r.trace_spans_jsonl.find("\"queueing_ps\":"), std::string::npos);
}

}  // namespace
}  // namespace hwatch::api
