// Observability acceptance tests: manifest schema sanity, metric
// determinism (same seed => byte-identical deterministic manifest, and
// identical across sweep thread counts), and HWATCH_METRICS_DIR file
// emission.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "api/scenario.hpp"
#include "api/sweep.hpp"
#include "sim/json.hpp"

namespace hwatch::api {
namespace {

tcp::TcpConfig quick_tcp() {
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(50);
  t.initial_rto = sim::milliseconds(50);
  t.ecn = tcp::EcnMode::kDctcp;
  return t;
}

DumbbellScenarioConfig small_metrics_point(std::uint64_t seed) {
  DumbbellScenarioConfig cfg;
  cfg.pairs = 8;
  cfg.core_aqm.kind = AqmKind::kDctcpStep;
  cfg.core_aqm.buffer_packets = 100;
  cfg.core_aqm.mark_threshold_packets = 20;
  cfg.edge_aqm = cfg.core_aqm;
  workload::SenderGroup g{tcp::Transport::kDctcp, quick_tcp(), 4, "dctcp"};
  cfg.long_groups = {g};
  cfg.short_groups = {g};
  cfg.incast.epochs = 2;
  cfg.incast.first_epoch = sim::milliseconds(10);
  cfg.incast.epoch_interval = sim::milliseconds(20);
  cfg.duration = sim::milliseconds(60);
  cfg.seed = seed;
  cfg.hwatch_enabled = true;
  cfg.collect_metrics = true;
  return cfg;
}

const sim::Json* require(const sim::Json& j, const char* key) {
  const sim::Json* v = j.find(key);
  EXPECT_NE(v, nullptr) << "missing key: " << key;
  return v;
}

TEST(ManifestTest, DisabledByDefault) {
  DumbbellScenarioConfig cfg = small_metrics_point(5);
  cfg.collect_metrics = false;
  if (std::getenv("HWATCH_METRICS_DIR") != nullptr) {
    GTEST_SKIP() << "HWATCH_METRICS_DIR set in environment";
  }
  const ScenarioResults res = run_dumbbell(cfg);
  EXPECT_FALSE(res.has_manifest);
}

TEST(ManifestTest, SchemaAndCrossCheckedCounters) {
  const ScenarioResults res = run_dumbbell(small_metrics_point(5));
  ASSERT_TRUE(res.has_manifest);
  const sim::Json j = res.manifest.to_json(true);

  EXPECT_EQ(require(j, "schema")->as_string(), "hwatch.run_manifest/v1");
  EXPECT_EQ(require(j, "scenario_kind")->as_string(), "dumbbell");
  EXPECT_EQ(require(j, "seed")->as_uint(), 5u);
  EXPECT_EQ(require(j, "name")->as_string(), "dumbbell-seed5");
  ASSERT_NE(j.find("config"), nullptr);
  ASSERT_NE(j.find("results"), nullptr);
  ASSERT_NE(j.find("environment"), nullptr);

  // Harvested counters must equal the independently-reported results.
  const sim::Json* counters = require(*require(j, "metrics"), "counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("queue.bottleneck.enqueued")->as_uint(),
            res.bottleneck_queue.enqueued);
  EXPECT_EQ(counters->find("queue.bottleneck.ecn_marked")->as_uint(),
            res.bottleneck_queue.ecn_marked);
  EXPECT_EQ(counters->find("tcp.retransmits")->as_uint(), res.retransmits);
  EXPECT_EQ(counters->find("sched.events.executed")->as_uint(),
            res.events_executed);
  // HWatch live counters exist and saw traffic (hwatch is enabled and
  // every connection's SYN is probed).
  EXPECT_GT(counters->find("hwatch.probe_trains_sent")->as_uint(), 0u);
  EXPECT_GT(counters->find("hwatch.rwnd_rewrites")->as_uint(), 0u);
  EXPECT_GT(counters->find("hwatch.window_decisions")->as_uint(), 0u);

  // Gauge time series exist and line up with the sampler cadence.
  const sim::Json* series = require(j, "series");
  const sim::Json* depth = series->find("queue.bottleneck.depth_pkts");
  ASSERT_NE(depth, nullptr);
  EXPECT_GT(depth->size(), 0u);
  // [t_ps, value] pairs with strictly increasing timestamps.
  std::uint64_t last_t = 0;
  for (std::size_t i = 0; i < depth->size(); ++i) {
    ASSERT_EQ(depth->at(i).size(), 2u);
    const std::uint64_t t = depth->at(i).at(0).as_uint();
    EXPECT_GT(t, last_t);
    last_t = t;
  }
  ASSERT_NE(series->find("tcp.bytes_in_flight"), nullptr);
  ASSERT_NE(series->find("hwatch.flow_table_entries"), nullptr);

  // FCT histogram counted every completed flow.
  const sim::Json* fct =
      require(*require(j, "metrics"), "histograms")->find("tcp.fct_ms");
  ASSERT_NE(fct, nullptr);
  std::size_t completed = 0;
  for (const auto& r : res.records) completed += r.completed ? 1 : 0;
  EXPECT_EQ(fct->find("count")->as_uint(), completed);
}

TEST(ManifestTest, SameSeedGivesByteIdenticalDeterministicDump) {
  const ScenarioResults a = run_dumbbell(small_metrics_point(7));
  const ScenarioResults b = run_dumbbell(small_metrics_point(7));
  ASSERT_TRUE(a.has_manifest);
  ASSERT_TRUE(b.has_manifest);
  EXPECT_EQ(a.manifest.deterministic_dump(), b.manifest.deterministic_dump());
  // And a different seed gives a different one (sanity for the above).
  const ScenarioResults c = run_dumbbell(small_metrics_point(8));
  EXPECT_NE(a.manifest.deterministic_dump(), c.manifest.deterministic_dump());
}

TEST(ManifestTest, SweepThreadCountDoesNotChangeManifests) {
  std::vector<DumbbellScenarioConfig> points;
  for (std::uint64_t s : {21ull, 22ull, 23ull, 24ull}) {
    points.push_back(small_metrics_point(s));
  }
  const auto serial = SweepRunner(1).run(points);
  const auto threaded = SweepRunner(4).run(points);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].has_manifest) << i;
    ASSERT_TRUE(threaded[i].has_manifest) << i;
    EXPECT_EQ(serial[i].manifest.deterministic_dump(),
              threaded[i].manifest.deterministic_dump())
        << "sweep point " << i;
    // The non-deterministic environment records the pool size.
    EXPECT_EQ(serial[i].manifest.sweep_threads, 1u);
    EXPECT_EQ(threaded[i].manifest.sweep_threads, 4u);
  }
}

TEST(ManifestTest, MetricsDirWritesParseableFile) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "hwatch_manifest_test_out";
  fs::remove_all(dir);

  ::setenv("HWATCH_METRICS_DIR", dir.string().c_str(), 1);
  DumbbellScenarioConfig cfg = small_metrics_point(9);
  cfg.collect_metrics = false;  // the env var alone must switch it on
  cfg.run_label = "env var run/1";
  const ScenarioResults res = run_dumbbell(cfg);
  ::unsetenv("HWATCH_METRICS_DIR");

  ASSERT_TRUE(res.has_manifest);
  const fs::path file = dir / "env_var_run_1.json";
  ASSERT_TRUE(fs::exists(file)) << file;

  std::ifstream in(file);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string err;
  const sim::Json j = sim::Json::parse(buf.str(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(require(j, "schema")->as_string(), "hwatch.run_manifest/v1");
  EXPECT_EQ(require(j, "name")->as_string(), "env var run/1");
  ASSERT_NE(j.find("environment"), nullptr);
  EXPECT_GT(j.find("environment")->find("wall_time_ms")->as_double(), 0.0);

  fs::remove_all(dir);
}

TEST(ManifestTest, MetricsDirCreatesMissingNestedDirectories) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() / "hwatch_manifest_nested_out";
  fs::remove_all(root);
  const fs::path dir = root / "a" / "b";  // two missing levels

  ::setenv("HWATCH_METRICS_DIR", dir.string().c_str(), 1);
  DumbbellScenarioConfig cfg = small_metrics_point(11);
  cfg.collect_metrics = false;
  cfg.run_label = "nested";
  const ScenarioResults res = run_dumbbell(cfg);
  ::unsetenv("HWATCH_METRICS_DIR");

  ASSERT_TRUE(res.has_manifest);
  EXPECT_TRUE(fs::exists(dir / "nested.json"));
  fs::remove_all(root);
}

TEST(ManifestTest, MetricsDirUnwritablePathThrowsNamingTheVariable) {
  // A path under a regular file can never become a directory, so the
  // run must fail loudly — naming HWATCH_METRICS_DIR — instead of
  // silently dropping the manifest.
  namespace fs = std::filesystem;
  const fs::path blocker =
      fs::temp_directory_path() / "hwatch_manifest_blocker";
  { std::ofstream(blocker.string()) << "not a directory"; }
  const fs::path dir = blocker / "sub";

  ::setenv("HWATCH_METRICS_DIR", dir.string().c_str(), 1);
  DumbbellScenarioConfig cfg = small_metrics_point(12);
  cfg.collect_metrics = false;
  try {
    run_dumbbell(cfg);
    FAIL() << "expected std::runtime_error for unwritable metrics dir";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("HWATCH_METRICS_DIR"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(dir.string()), std::string::npos)
        << e.what();
  }
  ::unsetenv("HWATCH_METRICS_DIR");
  fs::remove(blocker);
}

}  // namespace
}  // namespace hwatch::api
