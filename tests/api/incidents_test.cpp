// Incident detection end to end: the doctor's manifest section must be
// deterministic (byte-identical across sweep-thread and shard-worker
// counts), well-formed when the workload is empty, absent when the
// detectors are off, and its span references must resolve against the
// span export so `trace_inspect explain` can join the two.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/scenario.hpp"
#include "api/sharded.hpp"
#include "api/sweep.hpp"
#include "sim/json.hpp"

namespace hwatch {
namespace {

/// Congested fat-tree miniature: every host opens 8 flows to the same
/// (deranged) destination inside a 1 ms spread, so each sink sees a
/// fan-in burst >= the default incast threshold, and the shallow
/// 16-packet port buffers drop under it — a run that exercises the
/// queue, fan-in AND sender-side (retransmission) detectors, not just
/// their hooks.
api::FatTreeScenarioConfig congested_config() {
  api::FatTreeScenarioConfig cfg;
  cfg.k = 4;  // 16 hosts, 8 shards
  cfg.aqm.kind = api::AqmKind::kDctcpStep;
  cfg.aqm.buffer_packets = 16;
  cfg.aqm.mark_threshold_packets = 8;
  cfg.flows_per_host = 8;
  cfg.flow_bytes = 50'000;
  cfg.start_spread = sim::milliseconds(1);
  cfg.transport = tcp::Transport::kDctcp;
  cfg.duration = sim::milliseconds(40);
  cfg.seed = 7;
  cfg.collect_metrics = true;
  cfg.trace_spans = true;
  cfg.detect_incidents = true;
  cfg.run_label = "incidents-sharded";
  return cfg;
}

tcp::TcpConfig quick_tcp() {
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(50);
  t.initial_rto = sim::milliseconds(50);
  t.ecn = tcp::EcnMode::kDctcp;
  return t;
}

/// Dumbbell miniature with incast epochs (mirrors sweep_test's point)
/// plus metrics + detectors, so the single-context runner emits the
/// same manifest section the sharded one does.
api::DumbbellScenarioConfig dumbbell_point(std::uint64_t seed) {
  api::DumbbellScenarioConfig cfg;
  cfg.pairs = 8;
  cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
  cfg.core_aqm.buffer_packets = 100;
  cfg.core_aqm.mark_threshold_packets = 20;
  cfg.edge_aqm = cfg.core_aqm;
  workload::SenderGroup g{tcp::Transport::kDctcp, quick_tcp(), 4, "dctcp"};
  cfg.long_groups = {g};
  cfg.short_groups = {g};
  cfg.incast.epochs = 2;
  cfg.incast.first_epoch = sim::milliseconds(10);
  cfg.incast.epoch_interval = sim::milliseconds(20);
  cfg.duration = sim::milliseconds(60);
  cfg.seed = seed;
  cfg.collect_metrics = true;
  cfg.detect_incidents = true;
  cfg.run_label = "incidents-sweep";
  return cfg;
}

/// Every span id a JSONL span dump defines ("F" flow-registry lines and
/// "B" span-open lines both carry one).
std::set<std::uint64_t> span_ids_of(const std::string& jsonl) {
  std::set<std::uint64_t> ids;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string err;
    const sim::Json j = sim::Json::parse(line, &err);
    EXPECT_TRUE(err.empty()) << err << " in: " << line;
    const sim::Json* ph = j.find("ph");
    if (ph == nullptr) continue;
    const std::string p = ph->as_string();
    if (p != "F" && p != "B") continue;
    const sim::Json* id = j.find("id");
    if (id != nullptr) ids.insert(id->as_uint());
  }
  return ids;
}

TEST(IncidentsTest, ShardedByteIdenticalAcrossWorkerCounts) {
  api::FatTreeScenarioConfig cfg = congested_config();
  cfg.shards = 1;
  const api::ScenarioResults base = api::run_fat_tree_sharded(cfg);
  ASSERT_TRUE(base.has_manifest);
  const std::string base_dump = base.manifest.deterministic_dump();
  EXPECT_NE(base_dump.find("hwatch.incidents/v1"), std::string::npos);

  const sim::Json& inc = base.manifest.incidents;
  ASSERT_TRUE(inc.is_object());
  ASSERT_NE(inc.find("count"), nullptr);
  EXPECT_GT(inc.find("count")->as_uint(), 0u)
      << "a congested incast run must emit incidents";

  for (unsigned threads : {2u, 4u}) {
    cfg.shards = threads;
    const api::ScenarioResults run = api::run_fat_tree_sharded(cfg);
    ASSERT_TRUE(run.has_manifest);
    EXPECT_EQ(run.manifest.deterministic_dump(), base_dump)
        << "incidents differ at " << threads << " worker threads";
  }
}

TEST(IncidentsTest, SectionIsWellFormedAndSpanRefsResolve) {
  api::FatTreeScenarioConfig cfg = congested_config();
  cfg.shards = 2;
  const api::ScenarioResults res = api::run_fat_tree_sharded(cfg);
  ASSERT_TRUE(res.has_manifest);
  const sim::Json& section = res.manifest.incidents;
  ASSERT_TRUE(section.is_object());
  EXPECT_EQ(section.find("schema")->as_string(), "hwatch.incidents/v1");
  const sim::Json* list = section.find("incidents");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(section.find("count")->as_uint(), list->size());
  ASSERT_GT(list->size(), 0u);

  const std::set<std::uint64_t> defined = span_ids_of(res.trace_spans_jsonl);
  ASSERT_FALSE(defined.empty());

  std::set<std::string> kinds;
  std::uint64_t expect_id = 0;
  std::size_t cited = 0;
  sim::TimePs prev_start = 0;
  for (const sim::Json& i : list->items()) {
    EXPECT_EQ(i.find("id")->as_uint(), expect_id++);
    kinds.insert(i.find("kind")->as_string());
    const std::uint64_t sev = i.find("severity")->as_uint();
    EXPECT_GE(sev, 1u);
    EXPECT_LE(sev, 3u);
    const auto start =
        static_cast<sim::TimePs>(i.find("start_ps")->as_uint());
    EXPECT_LE(start, static_cast<sim::TimePs>(i.find("end_ps")->as_uint()));
    EXPECT_GE(start, prev_start) << "incidents must be start-sorted";
    prev_start = start;
    ASSERT_NE(i.find("location"), nullptr);
    // Every span back-reference must exist in the span export — the
    // join trace_inspect explain performs.
    for (const sim::Json& s : i.find("spans")->items()) {
      ++cited;
      EXPECT_TRUE(defined.count(s.as_uint()))
          << "dangling span ref " << s.as_uint();
    }
    for (const sim::Json& f : i.find("flows")->items()) {
      const sim::Json* span = f.find("span");
      ASSERT_NE(span, nullptr);
      if (span->as_uint() != 0) {
        EXPECT_TRUE(defined.count(span->as_uint()))
            << "dangling flow span ref " << span->as_uint();
      }
    }
  }
  // The deranged 8-flows-per-host pattern converges 8 SYNs on each
  // receiver inside the spread window: the incast detector must fire,
  // and the saturated uplinks must log buildups.
  EXPECT_TRUE(kinds.count("incast")) << "expected incast incidents";
  EXPECT_TRUE(kinds.count("queue-buildup"))
      << "expected queue-buildup incidents";
  // At least some incidents must carry resolvable span back-references
  // (flows whose sender is traced on the incident's own shard), or the
  // explain join has nothing to work with.
  EXPECT_GT(cited, 0u) << "no incident cited any span";
}

TEST(IncidentsTest, FctPercentilesLandInResults) {
  api::FatTreeScenarioConfig cfg = congested_config();
  cfg.trace_spans = false;
  cfg.shards = 2;
  const api::ScenarioResults res = api::run_fat_tree_sharded(cfg);
  ASSERT_TRUE(res.has_manifest);
  const sim::Json* p = res.manifest.results.find("fct_ms_percentiles");
  ASSERT_NE(p, nullptr);
  EXPECT_GT(p->find("count")->as_uint(), 0u);
  const double p50 = p->find("p50")->as_double();
  const double p95 = p->find("p95")->as_double();
  const double p99 = p->find("p99")->as_double();
  const double p999 = p->find("p999")->as_double();
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, p999);
}

TEST(IncidentsTest, SweepThreadCountDoesNotChangeIncidents) {
  std::vector<api::DumbbellScenarioConfig> points = {dumbbell_point(7),
                                                     dumbbell_point(8)};
  const auto serial = api::SweepRunner(1).run(points);
  const auto threaded = api::SweepRunner(4).run(points);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].has_manifest);
    ASSERT_TRUE(threaded[i].has_manifest);
    const std::string a = serial[i].manifest.deterministic_dump();
    EXPECT_NE(a.find("hwatch.incidents/v1"), std::string::npos);
    EXPECT_EQ(a, threaded[i].manifest.deterministic_dump())
        << "point " << i << " diverged across sweep threads";
  }
}

TEST(IncidentsTest, DetectorsOffLeaveNoSection) {
  api::FatTreeScenarioConfig cfg = congested_config();
  cfg.detect_incidents = false;
  cfg.trace_spans = false;
  cfg.shards = 2;
  const api::ScenarioResults res = api::run_fat_tree_sharded(cfg);
  ASSERT_TRUE(res.has_manifest);
  EXPECT_EQ(res.manifest.incidents.size(), 0u);
  std::string err;
  const sim::Json dump =
      sim::Json::parse(res.manifest.deterministic_dump(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(dump.find("incidents"), nullptr);
  // Percentiles still ride along: they come from metrics, not the
  // detectors.
  ASSERT_NE(dump.find("results"), nullptr);
  EXPECT_NE(dump.find("results")->find("fct_ms_percentiles"), nullptr);
}

TEST(IncidentsTest, EmptyWorkloadSectionIsPresentAndEmpty) {
  api::FatTreeScenarioConfig cfg = congested_config();
  cfg.flows_per_host = 0;
  cfg.trace_spans = false;
  cfg.sample_interval = sim::seconds(1);
  cfg.run_label = "incidents-empty";
  cfg.shards = 1;
  const api::ScenarioResults res = api::run_fat_tree_sharded(cfg);
  ASSERT_TRUE(res.has_manifest);
  const sim::Json& section = res.manifest.incidents;
  ASSERT_TRUE(section.is_object());
  EXPECT_EQ(section.find("schema")->as_string(), "hwatch.incidents/v1");
  EXPECT_EQ(section.find("count")->as_uint(), 0u);
  EXPECT_EQ(section.find("incidents")->size(), 0u);
  const sim::Json* p = res.manifest.results.find("fct_ms_percentiles");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->find("count")->as_uint(), 0u);
}

}  // namespace
}  // namespace hwatch
