// Cross-cutting property tests: invariants that must hold for every
// seed and parameter choice, swept with parameterized gtest.
#include <gtest/gtest.h>

#include "api/scenario.hpp"
#include "tcp/dctcp.hpp"
#include "tcp/tcp_test_util.hpp"

namespace hwatch::api {
namespace {

tcp::TcpConfig quick_tcp(tcp::EcnMode ecn) {
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(50);
  t.initial_rto = sim::milliseconds(50);
  t.ecn = ecn;
  return t;
}

// ------------------------------------------------------------- seeds

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  DumbbellScenarioConfig config(bool hwatch_on) const {
    DumbbellScenarioConfig cfg;
    cfg.pairs = 12;
    cfg.core_aqm.kind = AqmKind::kDctcpStep;
    cfg.core_aqm.buffer_packets = 80;
    cfg.core_aqm.mark_threshold_packets = 16;
    cfg.core_aqm.byte_mode = true;
    cfg.edge_aqm = cfg.core_aqm;
    workload::SenderGroup g{tcp::Transport::kNewReno,
                            quick_tcp(tcp::EcnMode::kNone), 6, "tcp"};
    cfg.long_groups = {g};
    cfg.short_groups = {g};
    cfg.incast.epochs = 2;
    cfg.incast.first_epoch = sim::milliseconds(10);
    cfg.incast.epoch_interval = sim::milliseconds(40);
    cfg.duration = sim::milliseconds(120);
    cfg.seed = GetParam();
    cfg.hwatch_enabled = hwatch_on;
    cfg.hwatch.probe_span = sim::microseconds(50);
    cfg.hwatch.policy.batch_interval = sim::microseconds(50);
    return cfg;
  }
};

TEST_P(SeedSweep, FlowByteConservation) {
  // Every completed short flow must have delivered exactly its size:
  // sender-acked bytes equal the request size regardless of how many
  // drops/retransmissions the fabric inflicted.
  const ScenarioResults res = run_dumbbell(config(false));
  for (const auto& r : res.short_flows()) {
    if (r.completed) {
      EXPECT_GT(r.fct, 0);
      EXPECT_LT(r.fct, sim::seconds_i(2));
    }
  }
  // Queue accounting is self-consistent at the bottleneck.
  const auto& q = res.bottleneck_queue;
  EXPECT_EQ(q.dropped, q.dropped_data + q.dropped_ctrl + q.dropped_probes);
  EXPECT_GE(q.enqueued, q.dequeued);
}

TEST_P(SeedSweep, HWatchNeverIncreasesDrops) {
  const ScenarioResults plain = run_dumbbell(config(false));
  const ScenarioResults watched = run_dumbbell(config(true));
  EXPECT_LE(watched.fabric_drops, plain.fabric_drops)
      << "seed " << GetParam();
}

TEST_P(SeedSweep, HWatchCompletesAtLeastAsManyShortFlows) {
  const ScenarioResults plain = run_dumbbell(config(false));
  const ScenarioResults watched = run_dumbbell(config(true));
  EXPECT_LE(watched.incomplete_short_flows(),
            plain.incomplete_short_flows())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 17, 42));

// ------------------------------------------------- flow-size behaviour

class FlowSizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowSizeSweep, FctGrowsWithSizeOnACleanPath) {
  tcp::testutil::TwoHostNet h;
  tcp::TcpConnection small(h.net, *h.a, *h.b, 1000, 80,
                           tcp::Transport::kNewReno,
                           quick_tcp(tcp::EcnMode::kNone));
  tcp::TcpConnection large(h.net, *h.a, *h.b, 1001, 81,
                           tcp::Transport::kNewReno,
                           quick_tcp(tcp::EcnMode::kNone));
  const std::uint64_t size = GetParam();
  small.start(size);
  h.sched.run_until(sim::milliseconds(500));
  large.start(4 * size);
  h.sched.run_until(sim::seconds(2));
  ASSERT_EQ(small.sender().state(), tcp::SenderState::kClosed);
  ASSERT_EQ(large.sender().state(), tcp::SenderState::kClosed);
  EXPECT_GT(large.sender().fct(), small.sender().fct());
}

INSTANTIATE_TEST_SUITE_P(Sizes, FlowSizeSweep,
                         ::testing::Values(5'000, 50'000, 500'000));

// --------------------------------------------------- DCTCP g parameter

class DctcpGainSweep : public ::testing::TestWithParam<double> {};

TEST_P(DctcpGainSweep, AlphaStaysInUnitIntervalAndFlowIsStable) {
  tcp::testutil::TwoHostNet h(net::make_dctcp_factory(250, 20));
  auto cfg = quick_tcp(tcp::EcnMode::kDctcp);
  cfg.dctcp_g = GetParam();
  tcp::DctcpSender sender(h.net, *h.a, 1000, h.b->id(), 80, cfg);
  tcp::TcpSink sink(h.net, *h.b, 80, cfg);
  sender.start(tcp::TcpSender::kUnlimited);
  h.sched.run_until(sim::milliseconds(30));
  EXPECT_GE(sender.alpha(), 0.0);
  EXPECT_LE(sender.alpha(), 1.0);
  EXPECT_EQ(sender.stats().timeouts, 0u);
  EXPECT_GT(sender.stats().bytes_acked, 1'000'000u);
  // Queue regulated near K for every gain.
  EXPECT_LT(h.bottleneck->qdisc().stats().max_len_pkts, 120u);
}

INSTANTIATE_TEST_SUITE_P(Gains, DctcpGainSweep,
                         ::testing::Values(1.0 / 64, 1.0 / 16, 1.0 / 4,
                                           1.0));

// ------------------------------------------- HWatch probe-count sweep

class ProbeCountSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ProbeCountSweep, EveryTrainLengthYieldsAWorkingConnection) {
  tcp::testutil::TwoHostNet h;
  sim::Rng rng(3);
  core::HWatchConfig hw;
  hw.probe_count = GetParam();
  hw.probe_span = sim::microseconds(20);
  auto shim_a = core::install_hwatch(h.net, *h.a, hw, rng.fork());
  auto shim_b = core::install_hwatch(h.net, *h.b, hw, rng.fork());
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno,
                          quick_tcp(tcp::EcnMode::kNone));
  conn.start(20'000);
  h.sched.run_until(sim::seconds(1));
  EXPECT_EQ(conn.sender().state(), tcp::SenderState::kClosed);
  EXPECT_EQ(shim_a->stats().probes_injected, GetParam());
  EXPECT_EQ(conn.sink().stats().bytes_received, 20'000u);
}

INSTANTIATE_TEST_SUITE_P(Probes, ProbeCountSweep,
                         ::testing::Values(0, 1, 2, 5, 10, 20, 40));

}  // namespace
}  // namespace hwatch::api
