// Feature-flag behaviour of the shim: transparent ECT off, DSCP
// prioritization, and flag defaults.
#include <gtest/gtest.h>

#include "hwatch/shim.hpp"
#include "net/priority_queue.hpp"
#include "tcp/tcp_test_util.hpp"
#include "tcp/connection.hpp"

namespace hwatch::core {
namespace {

using tcp::testutil::TwoHostNet;

tcp::TcpConfig guest_cfg(tcp::EcnMode ecn = tcp::EcnMode::kNone) {
  tcp::TcpConfig c;
  c.min_rto = sim::milliseconds(20);
  c.initial_rto = sim::milliseconds(20);
  c.ecn = ecn;
  return c;
}

TEST(ShimFlagsTest, TransparentEctOffLeavesPacketsNotEct) {
  
  TwoHostNet h(net::make_dctcp_factory(250, 0));
  sim::Rng rng(3);
  HWatchConfig cfg;
  cfg.transparent_ect = false;
  auto shim_a = install_hwatch(h.net, *h.a, cfg, rng.fork());
  auto shim_b = install_hwatch(h.net, *h.b, cfg, rng.fork());
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, guest_cfg());
  conn.start(20'000);
  h.sched.run_until(sim::milliseconds(200));
  // Non-ECN guest, no stamping: the K=0 queue could not mark any data.
  EXPECT_EQ(h.bottleneck->qdisc().stats().ecn_marked,
            shim_a->stats().probes_injected);  // only probes are ECT
}

TEST(ShimFlagsTest, DscpPrioritizationMarksShortFlowsOnly) {
  TwoHostNet h(
      [] {
        return std::make_unique<net::PriorityQueue>(
            net::QueueLimits::in_packets(256));
      });
  sim::Rng rng(5);
  HWatchConfig cfg;
  cfg.probe_count = 0;
  cfg.prioritize_short_flows = true;
  cfg.priority_bytes_threshold = 5 * 1442;
  auto shim_a = install_hwatch(h.net, *h.a, cfg, rng.fork());

  // Tap after the shim on the receiving side: observe DSCP on the wire.
  class DscpTap final : public net::PacketFilter {
   public:
    net::FilterVerdict on_outbound(net::Packet&) override {
      return net::FilterVerdict::kPass;
    }
    net::FilterVerdict on_inbound(net::Packet& p) override {
      if (p.is_data()) {
        if (p.ip.dscp > 0) {
          ++high_data;
        } else {
          ++low_data;
        }
      }
      return net::FilterVerdict::kPass;
    }
    int high_data = 0;
    int low_data = 0;
  } tap;
  h.b->install_filter(&tap);

  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, guest_cfg());
  conn.start(20 * 1442);
  h.sched.run_until(sim::milliseconds(200));
  // First 5 segments ride the high band, the rest best-effort.
  EXPECT_EQ(tap.high_data, 5);
  EXPECT_EQ(tap.low_data, 15);
}

TEST(ShimFlagsTest, Defaults) {
  HWatchConfig cfg;
  EXPECT_EQ(cfg.probe_count, 10u);
  EXPECT_TRUE(cfg.transparent_ect);
  EXPECT_FALSE(cfg.prioritize_short_flows);
  EXPECT_FALSE(cfg.pace_synacks);
  EXPECT_FALSE(cfg.use_delay_signal);
  EXPECT_EQ(cfg.setup_caution_divisor, 2u);
  EXPECT_EQ(cfg.policy.mode, BatchMode::kCoalesced);
}

}  // namespace
}  // namespace hwatch::core
