#include <gtest/gtest.h>

#include "hwatch/flow_table.hpp"
#include "hwatch/token_bucket.hpp"

namespace hwatch::core {
namespace {

net::FlowKey key(std::uint16_t sport = 1000) {
  return net::FlowKey{1, 2, sport, 80};
}

TEST(FlowTableTest, UpsertCreatesOnce) {
  FlowTable t;
  FlowEntry& a = t.upsert(key(), FlowRole::kSender);
  a.marked = 7;
  FlowEntry& b = t.upsert(key(), FlowRole::kReceiver);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.marked, 7u);
  // Role set at creation is preserved.
  EXPECT_EQ(b.role, FlowRole::kSender);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.created(), 1u);
}

TEST(FlowTableTest, FindMissReturnsNull) {
  FlowTable t;
  EXPECT_EQ(t.find(key()), nullptr);
  t.upsert(key(), FlowRole::kSender);
  EXPECT_NE(t.find(key()), nullptr);
  EXPECT_EQ(t.find(key(1001)), nullptr);
  EXPECT_EQ(t.find(key().reversed()), nullptr);  // direction matters
}

TEST(FlowTableTest, EraseClearsEntry) {
  FlowTable t;
  t.upsert(key(), FlowRole::kSender);
  EXPECT_TRUE(t.erase(key()));
  EXPECT_FALSE(t.erase(key()));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.created(), 1u);  // lifetime counter survives erase
}

TEST(FlowTableTest, ManyFlowsDistinct) {
  FlowTable t;
  for (std::uint16_t p = 1; p <= 1000; ++p) {
    t.upsert(key(p), FlowRole::kReceiver).unmarked = p;
  }
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_EQ(t.find(key(500))->unmarked, 500u);
}

TEST(FlowEntryTest, ApplyDueGrantsReleasesOnlyMature) {
  FlowEntry e;
  e.allowance_bytes = 1000;
  e.pending_grants.push_back({sim::microseconds(50), 500});
  e.pending_grants.push_back({sim::microseconds(100), 700});
  e.apply_due_grants(sim::microseconds(50));
  EXPECT_EQ(e.allowance_bytes.value(), 1500u);
  ASSERT_EQ(e.pending_grants.size(), 1u);
  e.apply_due_grants(sim::microseconds(200));
  EXPECT_EQ(e.allowance_bytes.value(), 2200u);
  EXPECT_TRUE(e.pending_grants.empty());
}

TEST(FlowEntryTest, ApplyDueGrantsFromUnsetAllowance) {
  FlowEntry e;
  e.pending_grants.push_back({0, 400});
  e.apply_due_grants(1);
  EXPECT_EQ(e.allowance_bytes.value(), 400u);
}

TEST(TokenBucketTest, StartsFullAndConsumes) {
  TokenBucket tb(sim::DataRate::mbps(8), 1000);  // 1 byte/us refill
  EXPECT_TRUE(tb.try_consume(600, 0));
  EXPECT_TRUE(tb.try_consume(400, 0));
  EXPECT_FALSE(tb.try_consume(1, 0));
}

TEST(TokenBucketTest, RefillsAtRate) {
  TokenBucket tb(sim::DataRate::mbps(8), 1000);
  tb.try_consume(1000, 0);
  // 8 Mb/s = 1 byte/us: after 250 us, 250 tokens.
  EXPECT_FALSE(tb.try_consume(251, sim::microseconds(250)));
  EXPECT_TRUE(tb.try_consume(250, sim::microseconds(250)));
}

TEST(TokenBucketTest, BurstCapsAccumulation) {
  TokenBucket tb(sim::DataRate::mbps(8), 100);
  tb.try_consume(100, 0);
  EXPECT_EQ(tb.tokens(sim::seconds_i(10)), 100u);  // capped at burst
}

TEST(TokenBucketTest, TimeUntilAvailable) {
  TokenBucket tb(sim::DataRate::mbps(8), 1000);
  tb.try_consume(1000, 0);
  EXPECT_EQ(tb.time_until_available(100, 0), sim::microseconds(100));
  EXPECT_EQ(tb.time_until_available(0, 0), 0);
}

}  // namespace
}  // namespace hwatch::core
