// Delay-based congestion inference (Section III-D).
#include "hwatch/delay_watcher.hpp"

#include <gtest/gtest.h>

#include "hwatch/shim.hpp"
#include "tcp/tcp_test_util.hpp"
#include "tcp/connection.hpp"

namespace hwatch::core {
namespace {

TEST(DelayWatcherTest, EmptyWatcherIsInert) {
  DelayWatcher w;
  EXPECT_FALSE(w.has_samples());
  EXPECT_EQ(w.inflation(), 0);
  EXPECT_EQ(w.queued_bytes_estimate(), 0u);
}

TEST(DelayWatcherTest, TracksMinAndInflation) {
  DelayWatcher w(sim::DataRate::gbps(10));
  w.add_sample(sim::microseconds(50));
  EXPECT_EQ(w.base_delay(), sim::microseconds(50));
  EXPECT_EQ(w.inflation(), 0);
  w.add_sample(sim::microseconds(80));
  EXPECT_EQ(w.inflation(), sim::microseconds(30));
  // The baseline only ratchets down.
  w.add_sample(sim::microseconds(45));
  EXPECT_EQ(w.base_delay(), sim::microseconds(45));
  EXPECT_EQ(w.inflation(), 0);
  EXPECT_EQ(w.max_inflation(), sim::microseconds(35));
  EXPECT_EQ(w.samples(), 3u);
}

TEST(DelayWatcherTest, QueueEstimateFollowsLittlesLaw) {
  // 30 us of inflation at 10 Gb/s = 37500 bytes ~ 25 full segments.
  DelayWatcher w(sim::DataRate::gbps(10));
  w.add_sample(sim::microseconds(50));
  w.add_sample(sim::microseconds(80));
  EXPECT_EQ(w.queued_bytes_estimate(), 37'500u);
  EXPECT_EQ(w.queued_packets_estimate(1500), 25u);
}

TEST(DelayWatcherTest, ResetClearsState) {
  DelayWatcher w;
  w.add_sample(sim::microseconds(10));
  w.reset();
  EXPECT_FALSE(w.has_samples());
}

// ------------------------------------------------ shim integration

using tcp::testutil::TwoHostNet;

tcp::TcpConfig guest_cfg() {
  tcp::TcpConfig c;
  c.min_rto = sim::milliseconds(50);
  c.initial_rto = sim::milliseconds(50);
  c.ecn = tcp::EcnMode::kNone;
  return c;
}

TEST(DelaySignalTest, StandingQueueDetectedWithoutMarks) {
  // Bottleneck with a HIGH marking threshold (no probe ever marked) but
  // a bulk flow holding a real standing queue: only the delay signal
  // can see it.  The setup window with the signal on must be smaller
  // than with it off.
  auto run = [](bool use_delay) {
    TwoHostNet h(net::make_dctcp_factory(2000, 1900));  // marks ~never
    sim::Rng rng(13);
    core::HWatchConfig hw;
    hw.probe_span = sim::microseconds(20);
    hw.round_interval = sim::microseconds(100);
    // Deferred setup batches pushed out of the horizon so the SYN-ACK
    // grant is what we observe.
    hw.policy.batch_interval = sim::milliseconds(100);
    hw.setup_caution_divisor = 1;
    hw.use_delay_signal = use_delay;
    hw.delay_drain_rate = sim::DataRate::gbps(10);
    auto shim_a = install_hwatch(h.net, *h.a, hw, rng.fork());
    auto shim_b = install_hwatch(h.net, *h.b, hw, rng.fork());

    // Calibration: an earlier flow's probes teach the receiving
    // hypervisor the empty-path baseline delay.
    tcp::TcpConnection calib(h.net, *h.a, *h.b, 800, 60,
                             tcp::Transport::kNewReno, guest_cfg());
    calib.start(1'000);
    h.net.scheduler().run_until(sim::milliseconds(2));

    // Bulk flow builds a standing queue (mark-free region): its own
    // shim allowance re-opens one MSS per clean round, so after ~30 ms
    // the queue holds hundreds of kilobytes.
    tcp::TcpConnection bulk(h.net, *h.a, *h.b, 900, 70,
                            tcp::Transport::kNewReno, guest_cfg());
    bulk.start(tcp::TcpSender::kUnlimited);
    h.net.scheduler().run_until(sim::milliseconds(30));
    EXPECT_GT(h.bottleneck->qdisc().len_bytes(), 100'000u);

    // New flow: capture the SYN-ACK-granted window right after the
    // handshake, before steady-state rounds adjust it.
    tcp::TcpConnection probe_flow(h.net, *h.a, *h.b, 1000, 80,
                                  tcp::Transport::kNewReno, guest_cfg());
    probe_flow.start(500'000);
    while (probe_flow.sender().state() != tcp::SenderState::kEstablished) {
      h.net.scheduler().run_until(h.net.scheduler().now() +
                                  sim::microseconds(50));
    }
    return probe_flow.sender().peer_rwnd_bytes();
  };
  const auto without = run(false);
  const auto with = run(true);
  // Without the signal: clean probes, full 10-segment grant.
  EXPECT_GE(without, 9u * 1442u);
  // With it: the standing queue reclassifies probes, halving the grant.
  EXPECT_LT(with, without);
  EXPECT_LE(with, 6u * 1442u);
}

TEST(DelaySignalTest, CleanPathUnaffected) {
  // No background load: inflation ~ 0, the signal must not throttle.
  auto run = [](bool use_delay) {
    TwoHostNet h;
    sim::Rng rng(13);
    core::HWatchConfig hw;
    hw.probe_span = sim::microseconds(20);
    hw.round_interval = sim::milliseconds(100);
    hw.policy.batch_interval = sim::milliseconds(100);
    hw.setup_caution_divisor = 1;
    hw.use_delay_signal = use_delay;
    auto shim_a = install_hwatch(h.net, *h.a, hw, rng.fork());
    auto shim_b = install_hwatch(h.net, *h.b, hw, rng.fork());
    tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                            tcp::Transport::kNewReno, guest_cfg());
    conn.start(500'000);
    h.net.scheduler().run_until(sim::milliseconds(1));
    return conn.sender().peer_rwnd_bytes();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(DelaySignalTest, OffByDefault) {
  EXPECT_FALSE(HWatchConfig{}.use_delay_signal);
}

}  // namespace
}  // namespace hwatch::core
