// SYN-ACK admission pacing (the paper's token-bucket batch pacing).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hwatch/shim.hpp"
#include "tcp/tcp_test_util.hpp"
#include "tcp/connection.hpp"

namespace hwatch::core {
namespace {

using tcp::testutil::TwoHostNet;

tcp::TcpConfig guest_cfg() {
  tcp::TcpConfig c;
  c.min_rto = sim::milliseconds(50);
  c.initial_rto = sim::milliseconds(50);
  c.ecn = tcp::EcnMode::kNone;
  return c;
}

HWatchConfig pacing_cfg(std::uint32_t batch, sim::TimePs interval) {
  HWatchConfig c;
  c.probe_count = 0;  // isolate pacing from probing
  c.pace_synacks = true;
  c.synack_batch_size = batch;
  c.synack_batch_interval = interval;
  return c;
}

struct PacingHarness {
  explicit PacingHarness(HWatchConfig cfg) {
    sim::Rng rng(31);
    shim_b = install_hwatch(h.net, *h.b, cfg, rng.fork());
  }

  /// Opens `n` connections simultaneously; returns their established
  /// times relative to t0.
  std::vector<sim::TimePs> open_burst(int n) {
    std::vector<std::unique_ptr<tcp::TcpConnection>> conns;
    for (int i = 0; i < n; ++i) {
      conns.push_back(std::make_unique<tcp::TcpConnection>(
          h.net, *h.a, *h.b, static_cast<std::uint16_t>(1000 + i),
          static_cast<std::uint16_t>(80 + i), tcp::Transport::kNewReno,
          guest_cfg()));
      conns.back()->start(1000);
    }
    h.sched.run_until(sim::seconds(2));
    std::vector<sim::TimePs> established;
    for (auto& c : conns) {
      EXPECT_EQ(c->sender().state(), tcp::SenderState::kClosed);
      established.push_back(c->sender().stats().established_time);
    }
    return established;
  }

  TwoHostNet h;
  std::unique_ptr<HypervisorShim> shim_b;
};

TEST(PacingTest, BurstIsAdmittedInBatches) {
  PacingHarness ph(pacing_cfg(2, sim::milliseconds(1)));
  const auto established = ph.open_burst(10);
  // 10 connections, 2 admitted per 1 ms: establishment spans >= 4 ms.
  const auto [min_it, max_it] =
      std::minmax_element(established.begin(), established.end());
  EXPECT_GE(*max_it - *min_it, sim::microseconds(3500));
  EXPECT_GE(ph.shim_b->stats().synacks_paced, 8u);
}

TEST(PacingTest, WithinBudgetPassesImmediately) {
  PacingHarness ph(pacing_cfg(16, sim::milliseconds(1)));
  const auto established = ph.open_burst(8);
  const auto [min_it, max_it] =
      std::minmax_element(established.begin(), established.end());
  // All fit one batch: no pacing delay beyond network jitter.
  EXPECT_LT(*max_it - *min_it, sim::microseconds(100));
  EXPECT_EQ(ph.shim_b->stats().synacks_paced, 0u);
}

TEST(PacingTest, AdmissionRateIsRespected) {
  PacingHarness ph(pacing_cfg(1, sim::milliseconds(2)));
  auto established = ph.open_burst(5);
  std::sort(established.begin(), established.end());
  for (std::size_t i = 1; i < established.size(); ++i) {
    // Consecutive admissions at least one batch interval apart (minus
    // tiny propagation noise).
    EXPECT_GE(established[i] - established[i - 1],
              sim::milliseconds(2) - sim::microseconds(100));
  }
}

TEST(PacingTest, DuplicateSynAcksAreSuppressedWhileQueued) {
  // Slow admission (500 ms) vs 50 ms SYN-RTO: each sender retransmits
  // its SYN several times while its SYN-ACK waits in the queue; the
  // duplicates must be suppressed rather than queued again.
  PacingHarness ph(pacing_cfg(1, sim::milliseconds(200)));
  std::vector<std::unique_ptr<tcp::TcpConnection>> conns;
  for (int i = 0; i < 3; ++i) {
    conns.push_back(std::make_unique<tcp::TcpConnection>(
        ph.h.net, *ph.h.a, *ph.h.b, static_cast<std::uint16_t>(1000 + i),
        static_cast<std::uint16_t>(80 + i), tcp::Transport::kNewReno,
        guest_cfg()));
    conns.back()->start(1000);
  }
  ph.h.sched.run_until(sim::seconds(3));
  for (auto& c : conns) {
    EXPECT_EQ(c->sender().state(), tcp::SenderState::kClosed);
  }
  EXPECT_GT(ph.shim_b->stats().synacks_deduplicated, 0u);
}

TEST(PacingTest, DisabledByDefault) {
  HWatchConfig cfg;
  EXPECT_FALSE(cfg.pace_synacks);
  sim::Rng rng(1);
  TwoHostNet h;
  auto shim = install_hwatch(h.net, *h.b, cfg, rng.fork());
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, guest_cfg());
  conn.start(1000);
  h.sched.run_until(sim::milliseconds(100));
  EXPECT_EQ(shim->stats().synacks_paced, 0u);
  EXPECT_EQ(conn.sender().state(), tcp::SenderState::kClosed);
}

}  // namespace
}  // namespace hwatch::core
