// The Next-Fit window policy is the executable form of the paper's
// Section IV theorems; these tests pin the batch arithmetic to them.
#include "hwatch/window_policy.hpp"

#include <gtest/gtest.h>

namespace hwatch::core {
namespace {

WindowPolicyConfig cfg(BatchMode mode,
                       sim::TimePs t = sim::microseconds(50)) {
  WindowPolicyConfig c;
  c.mode = mode;
  c.batch_interval = t;
  c.min_packets = 1;
  return c;
}

TEST(WindowPolicyTest, CleanPathGrantsEverythingImmediately) {
  // Theorem IV.1: X_UM may all go now, in every mode.
  for (auto mode : {BatchMode::kSingleShot, BatchMode::kCoalesced,
                    BatchMode::kThreeBatch}) {
    const BatchPlan plan = plan_window(10, 0, cfg(mode));
    EXPECT_EQ(plan.immediate_packets, 10u) << to_string(mode);
    EXPECT_TRUE(plan.deferred.empty()) << to_string(mode);
  }
}

TEST(WindowPolicyTest, CoalescedSplitsMarkedIntoTwoBatches) {
  // Corollary IV.2.2: X_UM + ceil(X_M/2) now, floor(X_M/2) after T.
  const BatchPlan plan = plan_window(4, 6, cfg(BatchMode::kCoalesced));
  EXPECT_EQ(plan.immediate_packets, 4u + 3u);
  ASSERT_EQ(plan.deferred.size(), 1u);
  EXPECT_EQ(plan.deferred[0].packets, 3u);
  EXPECT_EQ(plan.deferred[0].delay, sim::microseconds(50));
}

TEST(WindowPolicyTest, CoalescedOddMarkedRoundsEarly) {
  const BatchPlan plan = plan_window(0, 7, cfg(BatchMode::kCoalesced));
  EXPECT_EQ(plan.immediate_packets, 4u);  // ceil(7/2)
  ASSERT_EQ(plan.deferred.size(), 1u);
  EXPECT_EQ(plan.deferred[0].packets, 3u);  // floor(7/2)
}

TEST(WindowPolicyTest, ThreeBatchFollowsTheoremVerbatim) {
  // Theorem IV.2 + Corollary IV.2.1: X_UM now, X_M/2 at T, X_M/2 at 2T.
  const BatchPlan plan = plan_window(5, 8, cfg(BatchMode::kThreeBatch));
  EXPECT_EQ(plan.immediate_packets, 5u);
  ASSERT_EQ(plan.deferred.size(), 2u);
  EXPECT_EQ(plan.deferred[0].packets, 4u);
  EXPECT_EQ(plan.deferred[0].delay, sim::microseconds(50));
  EXPECT_EQ(plan.deferred[1].packets, 4u);
  EXPECT_EQ(plan.deferred[1].delay, sim::microseconds(100));
}

TEST(WindowPolicyTest, SingleShotNeverDefers) {
  const BatchPlan plan = plan_window(3, 9, cfg(BatchMode::kSingleShot));
  EXPECT_EQ(plan.immediate_packets, 12u);
  EXPECT_TRUE(plan.deferred.empty());
}

TEST(WindowPolicyTest, TotalGrantIsConservedAcrossModes) {
  // Batching reschedules, it never adds or removes admission quota
  // (modulo the 1-packet liveness floor when the whole plan is smaller).
  for (auto mode : {BatchMode::kSingleShot, BatchMode::kCoalesced,
                    BatchMode::kThreeBatch}) {
    for (std::uint64_t um = 0; um <= 12; ++um) {
      for (std::uint64_t m = 0; m <= 12; ++m) {
        if (um + m == 0) continue;
        const BatchPlan plan = plan_window(um, m, cfg(mode));
        EXPECT_EQ(plan.total_packets(), std::max<std::uint64_t>(um + m, 1))
            << to_string(mode) << " um=" << um << " m=" << m;
      }
    }
  }
}

TEST(WindowPolicyTest, FloorBorrowsFromDeferredNotFreshQuota) {
  // Three-batch, all marked: immediate would be 0; the floor must pull
  // one packet forward from batch 2 instead of inventing quota.
  auto c = cfg(BatchMode::kThreeBatch);
  c.min_packets = 1;
  const BatchPlan plan = plan_window(0, 4, c);
  EXPECT_EQ(plan.immediate_packets, 1u);
  ASSERT_EQ(plan.deferred.size(), 2u);
  EXPECT_EQ(plan.deferred[0].packets, 1u);  // 2 - 1 borrowed
  EXPECT_EQ(plan.deferred[1].packets, 2u);
  EXPECT_EQ(plan.total_packets(), 4u);
}

TEST(WindowPolicyTest, MinPacketsFloorsEmptyGrant) {
  // All-marked round in three-batch mode: immediate would be 0, the
  // floor keeps the flow alive with one packet.
  auto c = cfg(BatchMode::kThreeBatch);
  c.min_packets = 1;
  const BatchPlan plan = plan_window(0, 4, c);
  EXPECT_EQ(plan.immediate_packets, 1u);
}

TEST(WindowPolicyTest, SingleMarkedPacketCoinFlip) {
  // X_M == 1: the paper places the lone marked packet in either batch
  // with probability 1/2.  Statistically both outcomes must occur.
  sim::Rng rng(1234);
  auto c = cfg(BatchMode::kCoalesced);
  int early = 0, late = 0;
  for (int i = 0; i < 200; ++i) {
    const BatchPlan plan = plan_window(5, 1, c, &rng);
    if (plan.deferred.empty()) {
      ++early;
      EXPECT_EQ(plan.immediate_packets, 6u);
    } else {
      ++late;
      EXPECT_EQ(plan.immediate_packets, 5u);
      EXPECT_EQ(plan.deferred[0].packets, 1u);
    }
  }
  EXPECT_GT(early, 50);
  EXPECT_GT(late, 50);
}

TEST(WindowPolicyTest, NullRngResolvesCoinFlipDeterministically) {
  const BatchPlan plan = plan_window(5, 1, cfg(BatchMode::kCoalesced));
  EXPECT_EQ(plan.immediate_packets, 6u);
  EXPECT_TRUE(plan.deferred.empty());
}

TEST(WindowPolicyTest, DeferredDelayScalesWithBatchInterval) {
  const auto t = sim::microseconds(123);
  const BatchPlan plan = plan_window(0, 10, cfg(BatchMode::kThreeBatch, t));
  ASSERT_EQ(plan.deferred.size(), 2u);
  EXPECT_EQ(plan.deferred[0].delay, t);
  EXPECT_EQ(plan.deferred[1].delay, 2 * t);
}

// Theorem IV.2's safety argument, checked numerically: with buffer B and
// threshold K = B/5 (the paper's 20%), admitting X_UM + ceil(X_M/2) on
// top of a worst-case standing queue of 2K never overflows B, given the
// counts came from one observed round (X_UM <= K, X_M <= B - K).
class TheoremSafetyProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TheoremSafetyProperty, ImmediateGrantFitsWorstCaseBuffer) {
  const auto [buffer, k] = GetParam();
  for (std::uint64_t um = 0; um <= static_cast<std::uint64_t>(k); ++um) {
    for (std::uint64_t m = 0; m + k <= static_cast<std::uint64_t>(buffer);
         ++m) {
      const BatchPlan plan = plan_window(um, m, cfg(BatchMode::kCoalesced));
      // Worst-case standing queue from Theorem IV.1 case 3 is ~2K.
      const std::uint64_t peak = 2 * k + plan.immediate_packets;
      EXPECT_LE(peak, static_cast<std::uint64_t>(buffer) + 1)
          << "um=" << um << " m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperBufferConfigs, TheoremSafetyProperty,
    ::testing::Values(std::make_tuple(250, 50),    // ns-2 setup, K=20%
                      std::make_tuple(100, 20),
                      std::make_tuple(35, 7)));    // shallow commodity

TEST(WindowPolicyTest, BatchModeNames) {
  EXPECT_STREQ(to_string(BatchMode::kSingleShot), "single-shot");
  EXPECT_STREQ(to_string(BatchMode::kCoalesced), "coalesced-2batch");
  EXPECT_STREQ(to_string(BatchMode::kThreeBatch), "three-batch");
}

}  // namespace
}  // namespace hwatch::core
