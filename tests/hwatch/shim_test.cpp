// HypervisorShim behaviour: probe trains, SYN hold-back, rwnd rewriting
// with checksum fix-up, steady-state throttling, transparent ECT, and
// flow-table lifecycle — the mechanisms of the paper's Section IV-C/D.
#include "hwatch/shim.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/checksum.hpp"
#include "tcp/tcp_test_util.hpp"
#include "tcp/connection.hpp"

namespace hwatch::core {
namespace {

using tcp::testutil::TwoHostNet;

tcp::TcpConfig guest_cfg(tcp::EcnMode ecn = tcp::EcnMode::kDctcp) {
  tcp::TcpConfig c;
  c.initial_cwnd_segments = 10;
  c.min_rto = sim::milliseconds(10);
  c.initial_rto = sim::milliseconds(10);
  c.ecn = ecn;
  return c;
}

HWatchConfig shim_cfg() {
  HWatchConfig c;
  c.probe_count = 10;
  c.probe_span = sim::microseconds(20);
  c.policy.batch_interval = sim::microseconds(50);
  c.round_interval = sim::microseconds(100);
  c.flow_cleanup_delay = sim::milliseconds(1);
  return c;
}

/// Observes (and optionally mutates) packets without consuming them.
class WireTap final : public net::PacketFilter {
 public:
  net::FilterVerdict on_outbound(net::Packet& p) override {
    outbound.push_back(p);
    return net::FilterVerdict::kPass;
  }
  net::FilterVerdict on_inbound(net::Packet& p) override {
    inbound.push_back(p);
    return net::FilterVerdict::kPass;
  }
  std::vector<net::Packet> outbound;
  std::vector<net::Packet> inbound;

  std::size_t inbound_probes() const {
    std::size_t n = 0;
    for (const auto& p : inbound) {
      if (p.kind == net::PacketKind::kProbe) ++n;
    }
    return n;
  }
};

struct ShimHarness {
  explicit ShimHarness(net::QdiscFactory bottleneck =
                           net::make_droptail_factory(1000),
                       HWatchConfig cfg = shim_cfg())
      : net_pair(std::move(bottleneck)) {
    // Tap first on the receiver so it sees probes before the shim
    // consumes them.
    net_pair.b->install_filter(&tap_b);
    sim::Rng rng(99);
    shim_a = install_hwatch(net_pair.net, *net_pair.a, cfg, rng.fork());
    shim_b = install_hwatch(net_pair.net, *net_pair.b, cfg, rng.fork());
  }

  TwoHostNet net_pair;
  WireTap tap_b;
  std::unique_ptr<HypervisorShim> shim_a;
  std::unique_ptr<HypervisorShim> shim_b;
};

TEST(ShimTest, ProbeTrainPrecedesSyn) {
  ShimHarness h;
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kDctcp, guest_cfg());
  conn.start(10'000);
  h.net_pair.sched.run_until(sim::milliseconds(50));

  EXPECT_EQ(h.shim_a->stats().probes_injected, 10u);
  EXPECT_EQ(h.shim_a->stats().syns_held, 1u);
  EXPECT_EQ(h.shim_b->stats().probes_absorbed, 10u);
  EXPECT_EQ(h.tap_b.inbound_probes(), 10u);

  // All 10 probes arrive before the SYN.
  std::size_t syn_index = SIZE_MAX, last_probe = 0;
  for (std::size_t i = 0; i < h.tap_b.inbound.size(); ++i) {
    const auto& p = h.tap_b.inbound[i];
    if (p.kind == net::PacketKind::kProbe) last_probe = i;
    if (p.is_syn() && !p.tcp.ack_flag && syn_index == SIZE_MAX) {
      syn_index = i;
    }
  }
  EXPECT_LT(last_probe, syn_index);
  // And the connection still completes normally.
  EXPECT_EQ(conn.sender().state(), tcp::SenderState::kClosed);
}

TEST(ShimTest, ProbesNeverReachTheGuest) {
  ShimHarness h;
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kDctcp, guest_cfg());
  conn.start(5'000);
  h.net_pair.sched.run_until(sim::milliseconds(50));
  EXPECT_EQ(h.net_pair.b->no_agent_drops(), 0u);
  EXPECT_EQ(h.net_pair.b->filter_drops(), 0u);  // consumed, not dropped
}

TEST(ShimTest, ProbesAre38ByteEctPackets) {
  ShimHarness h;
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kDctcp, guest_cfg());
  conn.start(5'000);
  h.net_pair.sched.run_until(sim::milliseconds(50));
  for (const auto& p : h.tap_b.inbound) {
    if (p.kind != net::PacketKind::kProbe) continue;
    EXPECT_EQ(p.size_bytes(), 38u);
    EXPECT_NE(p.ip.ecn, net::Ecn::kNotEct);  // Ect0 or Ce
    EXPECT_EQ(p.tcp.dst_port, 80);           // flow identity carried
  }
}

TEST(ShimTest, SynDelayBoundedByProbeSpan) {
  ShimHarness h;
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kDctcp, guest_cfg());
  const sim::TimePs t0 = h.net_pair.sched.now();
  conn.start(5'000);
  h.net_pair.sched.run_until(sim::milliseconds(50));
  // Established = t0 + probe_span (20us) + ~1 RTT (~45us); well under
  // 2x the uninstrumented handshake + span.
  const sim::TimePs established =
      conn.sender().stats().established_time - t0;
  EXPECT_GT(established, sim::microseconds(20));
  EXPECT_LT(established, sim::microseconds(100));
}

/// Window value after a round trip through the 16-bit field at the
/// established-ACK scale shift (6): quantized down to 64-byte multiples.
std::uint64_t ack_quantized(std::uint64_t bytes) {
  return tcp::decode_window(tcp::encode_window(bytes, 6), 6);
}

/// Shim config whose steady-state rounds are too long to interfere with
/// a test that only examines the connection-setup decision.
HWatchConfig setup_only_cfg() {
  HWatchConfig c = shim_cfg();
  c.round_interval = sim::milliseconds(100);
  return c;
}

TEST(ShimTest, CleanPathSynAckCapsWindowAtProbeCount) {
  // deep droptail: no probe is marked
  ShimHarness h(net::make_droptail_factory(1000), setup_only_cfg());
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kDctcp, guest_cfg());
  conn.start(200'000);
  h.net_pair.sched.run_until(sim::microseconds(200));
  // 10 unmarked probes -> allowance = 10 segments (quantized by the
  // established-ACK window scale).
  EXPECT_EQ(conn.sender().peer_rwnd_bytes(), ack_quantized(10 * 1442));
  EXPECT_EQ(h.shim_b->stats().synacks_rewritten, 1u);
}

TEST(ShimTest, CongestedProbesHalveInitialWindow) {
  // Step-marking queue with K=0 marks every probe: Theorem IV.2 grants
  // ceil(10/2) = 5 segments now and 5 after the batch interval (pushed
  // out of this test's horizon so the immediate grant is observable).
  // Setup caution is disabled to expose the theorem arithmetic alone.
  HWatchConfig cfg = setup_only_cfg();
  cfg.policy.batch_interval = sim::milliseconds(100);
  cfg.setup_caution_divisor = 1;
  ShimHarness h(net::make_dctcp_factory(250, 0), cfg);
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kDctcp, guest_cfg());
  conn.start(200'000);
  h.net_pair.sched.run_until(sim::microseconds(150));
  EXPECT_EQ(h.shim_b->stats().probes_absorbed_marked, 10u);
  EXPECT_EQ(conn.sender().peer_rwnd_bytes(), ack_quantized(5 * 1442));
}

TEST(ShimTest, SetupCautionSplitsEvenCleanGrants) {
  // The "cautious" rule: a clean probe verdict cannot prove the buffer
  // has room for a whole incast of initial windows, so only half the
  // grant is released at once, the rest one drain interval later.
  HWatchConfig cfg = setup_only_cfg();
  cfg.policy.batch_interval = sim::milliseconds(100);  // beyond horizon
  ASSERT_EQ(cfg.setup_caution_divisor, 2u);            // the default
  ShimHarness h(net::make_droptail_factory(1000), cfg);
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kDctcp, guest_cfg());
  conn.start(200'000);
  h.net_pair.sched.run_until(sim::microseconds(200));
  // 10 clean probes, divisor 2: 5 segments now, 5 deferred.
  EXPECT_EQ(conn.sender().peer_rwnd_bytes(), ack_quantized(5 * 1442));
}

TEST(ShimTest, DeferredBatchReleasesAfterDrainTime) {
  ShimHarness h(net::make_dctcp_factory(250, 0), setup_only_cfg());
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kDctcp, guest_cfg());
  conn.start(400'000);
  // Run past the handshake plus batch interval plus a round trip so a
  // post-release ACK reaches the sender.
  h.net_pair.sched.run_until(sim::milliseconds(2));
  // After the second batch matures the allowance is 5 + 5 = 10 segments.
  EXPECT_GE(conn.sender().peer_rwnd_bytes(), ack_quantized(10 * 1442));
}

TEST(ShimTest, PersistentCongestionKeepsWindowClamped) {
  // With the default (100 us) rounds and a K=0 queue that marks every
  // packet forever, steady-state decisions must keep the window pinned
  // near X_M/2 instead of re-opening.
  ShimHarness h(net::make_dctcp_factory(250, 0));
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kDctcp, guest_cfg());
  conn.start(tcp::TcpSender::kUnlimited);
  h.net_pair.sched.run_until(sim::milliseconds(10));
  EXPECT_LT(conn.sender().peer_rwnd_bytes(), 20u * 1442u);
}

TEST(ShimTest, RewrittenSegmentsCarryValidChecksums) {
  ShimHarness h(net::make_dctcp_factory(250, 0));
  WireTap tap_a;
  h.net_pair.a->install_filter(&tap_a);  // after shim: sees final headers
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kDctcp, guest_cfg());
  conn.start(100'000);
  h.net_pair.sched.run_until(sim::milliseconds(5));
  ASSERT_GT(h.shim_b->stats().acks_rewritten +
                h.shim_b->stats().synacks_rewritten,
            0u);
  std::size_t checked = 0;
  for (const auto& p : tap_a.inbound) {
    if (p.kind != net::PacketKind::kTcp || !p.tcp.ack_flag) continue;
    EXPECT_TRUE(net::verify_checksum(p)) << p.describe();
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(ShimTest, SteadyStateThrottlingBoundsQueue) {
  // A long-lived flow through a marking bottleneck: the receiving shim's
  // round decisions must clamp the advertised window below the guest's
  // 1 MiB so the queue stays bounded even though the guest is ECN-blind.
  ShimHarness h(net::make_dctcp_factory(250, 20));
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kNewReno,
                          guest_cfg(tcp::EcnMode::kBlind));
  conn.start(tcp::TcpSender::kUnlimited);
  h.net_pair.sched.run_until(sim::milliseconds(20));
  EXPECT_GT(h.shim_b->stats().acks_rewritten, 0u);
  EXPECT_LT(conn.sender().peer_rwnd_bytes(), 1u << 20);
  // Without HWatch the kBlind tenant fills the 250-packet buffer (see
  // EcnTest.BlindSenderIgnoresEceAndFillsBuffer); with it the queue
  // stays well below.
  EXPECT_LT(h.net_pair.bottleneck->qdisc().stats().max_len_pkts, 150u);
}

TEST(ShimTest, TransparentEctStampsAndStrips) {
  // Non-ECN guest: the wire carries ECT/CE, the guest never sees CE.
  ShimHarness h(net::make_dctcp_factory(250, 5));
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kNewReno,
                          guest_cfg(tcp::EcnMode::kNone));
  conn.start(tcp::TcpSender::kUnlimited);
  h.net_pair.sched.run_until(sim::milliseconds(10));
  // Switch marked ECT data from the non-ECN guest.
  EXPECT_GT(h.net_pair.bottleneck->qdisc().stats().ecn_marked, 0u);
  // The guest sink never observed a CE mark (stripped by the shim).
  EXPECT_EQ(conn.sink().stats().ce_marked_segments, 0u);
  // And HWatch used those hidden marks for throttling decisions.
  EXPECT_GT(h.shim_b->stats().window_decisions, 0u);
}

TEST(ShimTest, EcnCapableGuestKeepsItsMarks) {
  ShimHarness h(net::make_dctcp_factory(250, 5));
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kDctcp, guest_cfg());
  conn.start(tcp::TcpSender::kUnlimited);
  h.net_pair.sched.run_until(sim::milliseconds(10));
  // DCTCP guest negotiated ECN: marks must flow through to it.
  EXPECT_GT(conn.sink().stats().ce_marked_segments, 0u);
}

TEST(ShimTest, FlowTableClearedAfterFin) {
  ShimHarness h;
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kDctcp, guest_cfg());
  conn.start(10'000);
  h.net_pair.sched.run_until(sim::milliseconds(500));
  EXPECT_EQ(conn.sender().state(), tcp::SenderState::kClosed);
  EXPECT_EQ(h.shim_a->flow_table().size(), 0u);
  EXPECT_EQ(h.shim_b->flow_table().size(), 0u);
  EXPECT_GT(h.shim_a->flow_table().created(), 0u);
}

TEST(ShimTest, RetransmittedSynPassesWithoutNewTrain) {
  // Drop the released SYN once (after the shim) so the guest's SYN-RTO
  // fires; the retransmitted SYN must pass straight through instead of
  // being held for a second train.
  ShimHarness h;
  class DropFirstSyn final : public net::PacketFilter {
   public:
    net::FilterVerdict on_outbound(net::Packet&) override {
      return net::FilterVerdict::kPass;
    }
    net::FilterVerdict on_inbound(net::Packet& p) override {
      if (p.is_syn() && !p.tcp.ack_flag && !dropped_) {
        dropped_ = true;
        return net::FilterVerdict::kDrop;
      }
      return net::FilterVerdict::kPass;
    }

   private:
    bool dropped_ = false;
  } filter;
  h.net_pair.b->install_filter(&filter);  // drops the SYN at arrival

  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kDctcp, guest_cfg());
  conn.start(10'000);
  h.net_pair.sched.run_until(sim::milliseconds(500));
  EXPECT_EQ(conn.sender().state(), tcp::SenderState::kClosed);
  EXPECT_EQ(h.shim_a->stats().probes_injected, 10u);  // one train only
  EXPECT_EQ(h.shim_a->stats().syns_held, 1u);
}

TEST(ShimTest, ProbingDisabledPassesSynUntouched) {
  HWatchConfig cfg = shim_cfg();
  cfg.probe_count = 0;
  ShimHarness h(net::make_droptail_factory(1000), cfg);
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kDctcp, guest_cfg());
  const sim::TimePs t0 = h.net_pair.sched.now();
  conn.start(10'000);
  h.net_pair.sched.run_until(sim::milliseconds(50));
  EXPECT_EQ(h.shim_a->stats().probes_injected, 0u);
  EXPECT_EQ(h.shim_a->stats().syns_held, 0u);
  EXPECT_EQ(conn.sender().state(), tcp::SenderState::kClosed);
  // No probe delay: handshake completes within ~1 RTT.
  EXPECT_LT(conn.sender().stats().established_time - t0,
            sim::microseconds(60));
}

TEST(ShimTest, ProbeOverheadIsSmall) {
  ShimHarness h;
  tcp::TcpConnection conn(h.net_pair.net, *h.net_pair.a, *h.net_pair.b,
                          1000, 80, tcp::Transport::kDctcp, guest_cfg());
  conn.start(10'000);
  h.net_pair.sched.run_until(sim::milliseconds(50));
  // 10 probes x 38 B = 380 B against a 10 KB transfer: < 4% overhead.
  EXPECT_EQ(h.shim_a->stats().probe_bytes_injected, 380u);
}

TEST(ShimTest, IncastLossReducedEndToEnd) {
  // Miniature Figure 8: 2 long-lived flows hold the marking queue near
  // its threshold, then 8 short flows of 10 KB burst simultaneously into
  // the 32-packet bottleneck.  Without HWatch the 8x7 segment surge
  // overflows; with HWatch the probes see the standing queue's marks and
  // the SYN-ACK windows spread the surge into batches.
  auto run = [](bool hwatch_on) {
    TwoHostNet h(net::make_dctcp_factory(32, 6));
    std::vector<std::unique_ptr<HypervisorShim>> shims;
    if (hwatch_on) {
      sim::Rng rng(7);
      shims.push_back(
          install_hwatch(h.net, *h.a, shim_cfg(), rng.fork()));
      shims.push_back(
          install_hwatch(h.net, *h.b, shim_cfg(), rng.fork()));
    }
    std::vector<std::unique_ptr<tcp::TcpConnection>> conns;
    for (int i = 0; i < 2; ++i) {  // background bulk flows
      conns.push_back(std::make_unique<tcp::TcpConnection>(
          h.net, *h.a, *h.b, static_cast<std::uint16_t>(900 + i),
          static_cast<std::uint16_t>(70 + i), tcp::Transport::kDctcp,
          guest_cfg()));
      conns.back()->start(tcp::TcpSender::kUnlimited);
    }
    std::vector<tcp::TcpConnection*> shorts;
    for (int i = 0; i < 8; ++i) {  // the incast surge at t = 5 ms
      conns.push_back(std::make_unique<tcp::TcpConnection>(
          h.net, *h.a, *h.b, static_cast<std::uint16_t>(1000 + i),
          static_cast<std::uint16_t>(80 + i), tcp::Transport::kDctcp,
          guest_cfg()));
      shorts.push_back(conns.back().get());
    }
    h.sched.schedule_at(sim::milliseconds(5), [&shorts] {
      for (auto* c : shorts) c->start(10'000);
    });
    h.sched.run_until(sim::seconds(1));
    std::uint64_t timeouts = 0;
    for (auto* c : shorts) timeouts += c->sender().stats().timeouts;
    struct Out {
      std::uint64_t drops;
      std::uint64_t timeouts;
    };
    return Out{h.bottleneck->qdisc().stats().dropped, timeouts};
  };
  const auto base = run(false);
  const auto watched = run(true);
  EXPECT_GT(base.drops, 0u);  // the pathology exists
  EXPECT_LT(watched.drops, base.drops);
}

}  // namespace
}  // namespace hwatch::core
