#include "sim/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace hwatch::sim {
namespace {

TEST(Json, CompactDumpKeepsInsertionOrder) {
  Json j = Json::object();
  j.set("zebra", 1);
  j.set("apple", 2);
  j.set("mango", Json::array());
  EXPECT_EQ(j.dump(), R"({"zebra":1,"apple":2,"mango":[]})");
}

TEST(Json, SetReplacesExistingKeyInPlace) {
  Json j = Json::object();
  j.set("a", 1);
  j.set("b", 2);
  j.set("a", 3);
  EXPECT_EQ(j.dump(), R"({"a":3,"b":2})");
  EXPECT_EQ(j.size(), 2u);
}

TEST(Json, IntegerTypesRoundTripExactly) {
  Json j = Json::object();
  j.set("max_u64", std::numeric_limits<std::uint64_t>::max());
  j.set("min_i64", std::numeric_limits<std::int64_t>::min());
  j.set("neg", -42);
  const std::string text = j.dump();

  std::string err;
  const Json back = Json::parse(text, &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(back.find("max_u64")->as_uint(),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(back.find("min_i64")->as_int(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(back.find("neg")->as_int(), -42);
}

TEST(Json, DoubleFormatIsRoundTripStable) {
  Json j = Json::object();
  j.set("x", 0.1);
  j.set("y", 1e300);
  j.set("z", -2.5e-17);
  std::string err;
  const Json back = Json::parse(j.dump(), &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(back.find("x")->as_double(), 0.1);
  EXPECT_EQ(back.find("y")->as_double(), 1e300);
  EXPECT_EQ(back.find("z")->as_double(), -2.5e-17);
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  Json j = Json::array();
  j.push_back(Json(std::numeric_limits<double>::infinity()));
  j.push_back(Json(std::nan("")));
  EXPECT_EQ(j.dump(), "[null,null]");
}

TEST(Json, StringEscapes) {
  Json j = Json(std::string("a\"b\\c\n\t\x01"));
  EXPECT_EQ(j.dump(), R"("a\"b\\c\n\t\u0001")");
  std::string err;
  const Json back = Json::parse(j.dump(), &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(back.as_string(), "a\"b\\c\n\t\x01");
}

TEST(Json, ParseUnicodeEscapeToUtf8) {
  std::string err;
  const Json j = Json::parse(R"("\u00e9\u20ac")", &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(j.as_string(), "\xc3\xa9\xe2\x82\xac");  // é €
}

TEST(Json, ParseRejectsMalformedInput) {
  std::string err;
  Json::parse("{\"a\": }", &err);
  EXPECT_FALSE(err.empty());
  err.clear();
  Json::parse("[1, 2", &err);
  EXPECT_FALSE(err.empty());
  err.clear();
  Json::parse("{\"a\":1} trailing", &err);
  EXPECT_FALSE(err.empty());
  err.clear();
  Json::parse("", &err);
  EXPECT_FALSE(err.empty());
}

TEST(Json, ParseNestedDocument) {
  std::string err;
  const Json j = Json::parse(
      R"({"a":[1,2.5,"x",true,null],"b":{"c":[[]]}})", &err);
  ASSERT_TRUE(err.empty()) << err;
  const Json* a = j.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->size(), 5u);
  EXPECT_EQ(a->at(0).as_uint(), 1u);
  EXPECT_EQ(a->at(1).as_double(), 2.5);
  EXPECT_EQ(a->at(2).as_string(), "x");
  EXPECT_TRUE(a->at(3).as_bool());
  EXPECT_TRUE(a->at(4).is_null());
  ASSERT_NE(j.find("b"), nullptr);
  ASSERT_NE(j.find("b")->find("c"), nullptr);
}

TEST(Json, PrettyDumpParsesBack) {
  Json j = Json::object();
  j.set("name", "run");
  Json arr = Json::array();
  arr.push_back(Json(1));
  arr.push_back(Json(2));
  j.set("series", std::move(arr));
  const std::string pretty = j.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  std::string err;
  const Json back = Json::parse(pretty, &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(back.dump(), j.dump());
}

TEST(Json, DumpIsDeterministic) {
  auto build = [] {
    Json j = Json::object();
    j.set("pi", 3.141592653589793);
    j.set("n", 1234567890123456789ull);
    return j.dump(2);
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace hwatch::sim
