#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace hwatch::sim {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng r(5);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.15);
}

TEST(RngTest, ExponentialTimeNonNegative) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.exponential_time(microseconds(1)), 0);
  }
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng r(9);
  for (int i = 0; i < 5000; ++i) {
    const double v = r.bounded_pareto(1.1, 1.0, 1000.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 1000.0 + 1e-9);
  }
}

TEST(RngTest, BoundedParetoIsHeavyTailed) {
  Rng r(9);
  int above_100 = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (r.bounded_pareto(1.1, 1.0, 1000.0) > 100.0) ++above_100;
  }
  // Tail mass exists but is small.
  EXPECT_GT(above_100, 10);
  EXPECT_LT(above_100, kN / 10);
}

TEST(RngTest, BoundedParetoRejectsBadParameters) {
  Rng r(1);
  EXPECT_THROW(r.bounded_pareto(0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(r.bounded_pareto(1.0, 0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(r.bounded_pareto(1.0, 3.0, 2.0), std::invalid_argument);
}

TEST(RngTest, ChanceExtremes) {
  Rng r(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng r(4);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng r(4);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  r.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(8);
  Rng child = parent.fork();
  // The child stream is deterministic given the parent seed...
  Rng parent2(8);
  Rng child2 = parent2.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(child.uniform(), child2.uniform());
  }
}

}  // namespace
}  // namespace hwatch::sim
