#include "sim/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hwatch::sim {
namespace {

/// RAII: restores the global logger state after each test.
struct LogGuard {
  LogGuard() : saved_level(log_level()) {}
  ~LogGuard() {
    set_log_level(saved_level);
    set_log_sink(nullptr);
  }
  LogLevel saved_level;
};

TEST(LogTest, LevelsFilterMessages) {
  LogGuard guard;
  std::ostringstream sink;
  set_log_sink(&sink);
  set_log_level(LogLevel::kWarn);
  log_msg(LogLevel::kDebug, "invisible");
  log_msg(LogLevel::kWarn, "visible");
  EXPECT_EQ(sink.str().find("invisible"), std::string::npos);
  EXPECT_NE(sink.str().find("visible"), std::string::npos);
}

TEST(LogTest, EnabledPredicateMatchesThreshold) {
  LogGuard guard;
  set_log_level(LogLevel::kInfo);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_TRUE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
}

TEST(LogTest, OffSilencesEverything) {
  LogGuard guard;
  std::ostringstream sink;
  set_log_sink(&sink);
  set_log_level(LogLevel::kOff);
  log_msg(LogLevel::kError, "should not appear");
  EXPECT_TRUE(sink.str().empty());
}

TEST(LogTest, MessageCarriesLevelTagAndArgs) {
  LogGuard guard;
  std::ostringstream sink;
  set_log_sink(&sink);
  set_log_level(LogLevel::kTrace);
  log_msg(LogLevel::kInfo, "flow ", 42, " done in ", 1.5, " ms");
  EXPECT_NE(sink.str().find("[INFO] flow 42 done in 1.5 ms"),
            std::string::npos);
}

TEST(LogTest, VariadicFormattingIsLazy) {
  LogGuard guard;
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return std::string("x");
  };
  // Arguments are evaluated (C++ has eager args) but formatting is
  // skipped; the guard pattern callers use is log_enabled():
  if (log_enabled(LogLevel::kDebug)) {
    log_msg(LogLevel::kDebug, expensive());
  }
  EXPECT_EQ(evaluations, 0);
}

TEST(SimLogTest, NullSinkFallsBackToProcessWideSink) {
  LogGuard guard;
  std::ostringstream global;
  set_log_sink(&global);
  set_log_level(LogLevel::kTrace);

  SimLog log;  // default sink_ == nullptr
  log.set_level(LogLevel::kInfo);
  log.msg(LogLevel::kInfo, "through fallback");
  EXPECT_NE(global.str().find("through fallback"), std::string::npos);
}

TEST(SimLogTest, PerInstanceSinkIsolatesFromGlobal) {
  LogGuard guard;
  std::ostringstream global;
  set_log_sink(&global);
  set_log_level(LogLevel::kTrace);

  SimLog log;
  std::ostringstream own;
  log.set_sink(&own);
  log.set_level(LogLevel::kInfo);
  log.msg(LogLevel::kInfo, "private line");

  EXPECT_NE(own.str().find("private line"), std::string::npos);
  EXPECT_TRUE(global.str().empty());
}

TEST(SimLogTest, InstanceLevelGatesIndependentlyOfGlobalLevel) {
  LogGuard guard;
  // Global threshold is permissive; the instance's own level must still
  // gate its messages.
  set_log_level(LogLevel::kTrace);
  SimLog log;
  std::ostringstream own;
  log.set_sink(&own);
  log.set_level(LogLevel::kError);
  log.msg(LogLevel::kInfo, "filtered");
  EXPECT_TRUE(own.str().empty());
  EXPECT_FALSE(log.enabled(LogLevel::kDebug));
  EXPECT_TRUE(log.enabled(LogLevel::kError));
}

}  // namespace
}  // namespace hwatch::sim
