#include "sim/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hwatch::sim {
namespace {

/// RAII: restores the global logger state after each test.
struct LogGuard {
  LogGuard() : saved_level(log_level()) {}
  ~LogGuard() {
    set_log_level(saved_level);
    set_log_sink(nullptr);
  }
  LogLevel saved_level;
};

TEST(LogTest, LevelsFilterMessages) {
  LogGuard guard;
  std::ostringstream sink;
  set_log_sink(&sink);
  set_log_level(LogLevel::kWarn);
  log_msg(LogLevel::kDebug, "invisible");
  log_msg(LogLevel::kWarn, "visible");
  EXPECT_EQ(sink.str().find("invisible"), std::string::npos);
  EXPECT_NE(sink.str().find("visible"), std::string::npos);
}

TEST(LogTest, EnabledPredicateMatchesThreshold) {
  LogGuard guard;
  set_log_level(LogLevel::kInfo);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_TRUE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
}

TEST(LogTest, OffSilencesEverything) {
  LogGuard guard;
  std::ostringstream sink;
  set_log_sink(&sink);
  set_log_level(LogLevel::kOff);
  log_msg(LogLevel::kError, "should not appear");
  EXPECT_TRUE(sink.str().empty());
}

TEST(LogTest, MessageCarriesLevelTagAndArgs) {
  LogGuard guard;
  std::ostringstream sink;
  set_log_sink(&sink);
  set_log_level(LogLevel::kTrace);
  log_msg(LogLevel::kInfo, "flow ", 42, " done in ", 1.5, " ms");
  EXPECT_NE(sink.str().find("[INFO] flow 42 done in 1.5 ms"),
            std::string::npos);
}

TEST(LogTest, VariadicFormattingIsLazy) {
  LogGuard guard;
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return std::string("x");
  };
  // Arguments are evaluated (C++ has eager args) but formatting is
  // skipped; the guard pattern callers use is log_enabled():
  if (log_enabled(LogLevel::kDebug)) {
    log_msg(LogLevel::kDebug, expensive());
  }
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace hwatch::sim
