#include "sim/trace_span.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/json.hpp"

namespace hwatch::sim {
namespace {

// Json has find()/at() rather than operator[]; this asserts presence.
const Json& field(const Json& j, std::string_view key) {
  const Json* p = j.find(key);
  EXPECT_NE(p, nullptr) << "missing key " << key;
  static const Json null_json;
  return p != nullptr ? *p : null_json;
}

TEST(SpanTracer, DisabledHooksAreNoOps) {
  SpanTracer tr;
  ASSERT_FALSE(tr.enabled());
  EXPECT_EQ(tr.begin_span(10, SpanKind::kFlow, 0, 0), 0u);
  tr.end_span(20, 7);  // stray id: still a no-op
  EXPECT_EQ(tr.instant(30, SpanKind::kDecision, 0, 0), 0u);
  tr.add_latency(1, LatencyComponent::kQueueing, 500);
  tr.register_flow(1, 2, 3);
  EXPECT_EQ(tr.flow_span_of(1, 2), 0u);
  EXPECT_TRUE(tr.events().empty());
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(SpanTracer, EndSpanWithZeroIdIsNoOp) {
  SpanTracer tr;
  tr.set_enabled(true);
  tr.end_span(5, 0);
  EXPECT_TRUE(tr.events().empty());
}

TEST(SpanTracer, SpanIdsAreSequentialAndDeterministic) {
  for (int run = 0; run < 2; ++run) {
    SpanTracer tr;
    tr.set_enabled(true);
    const std::uint64_t flow = tr.begin_span(0, SpanKind::kFlow, 0, 0);
    const std::uint64_t hs =
        tr.begin_span(1, SpanKind::kHandshake, flow, flow);
    const std::uint64_t dec = tr.instant(2, SpanKind::kDecision, 0, flow);
    EXPECT_EQ(flow, 1u);
    EXPECT_EQ(hs, 2u);
    EXPECT_EQ(dec, 3u);
  }
}

TEST(SpanTracer, FlowSpanBecomesItsOwnFlow) {
  SpanTracer tr;
  tr.set_enabled(true);
  const std::uint64_t flow = tr.begin_span(0, SpanKind::kFlow, 0, 0);
  ASSERT_EQ(tr.events().size(), 1u);
  EXPECT_EQ(tr.events()[0].flow, flow);
}

TEST(SpanTracer, EndSpanInheritsBeginMetadata) {
  SpanTracer tr;
  tr.set_enabled(true);
  const std::uint64_t flow =
      tr.begin_span(0, SpanKind::kFlow, 0, 0, /*a=*/4096);
  const std::uint64_t rec =
      tr.begin_span(10, SpanKind::kRecovery, flow, flow, /*a=*/77);
  tr.end_span(25, rec, /*b=*/88);
  ASSERT_EQ(tr.events().size(), 3u);
  const TraceEvent& e = tr.events()[2];
  EXPECT_EQ(e.phase, 'E');
  EXPECT_EQ(e.kind, SpanKind::kRecovery);
  EXPECT_EQ(e.span, rec);
  EXPECT_EQ(e.parent, flow);
  EXPECT_EQ(e.flow, flow);
  EXPECT_EQ(e.b, 88u);
  EXPECT_EQ(e.t, 25);
}

TEST(SpanTracer, InstantMintsCitableId) {
  SpanTracer tr;
  tr.set_enabled(true);
  const std::uint64_t dec = tr.instant(1, SpanKind::kDecision, 0, 0, 10, 2);
  const std::uint64_t wr = tr.instant(2, SpanKind::kRwndWrite, dec, 0, 7210);
  EXPECT_NE(dec, 0u);
  EXPECT_EQ(tr.events()[1].parent, dec);
  EXPECT_EQ(tr.events()[1].span, wr);
}

TEST(SpanTracer, CloseOpenSpansIsLifo) {
  SpanTracer tr;
  tr.set_enabled(true);
  const std::uint64_t flow = tr.begin_span(0, SpanKind::kFlow, 0, 0);
  const std::uint64_t hs = tr.begin_span(1, SpanKind::kHandshake, flow, flow);
  const std::uint64_t ss = tr.begin_span(2, SpanKind::kSlowStart, flow, flow);
  tr.close_open_spans(100);
  // Three E records appended, innermost (highest id) first.
  ASSERT_EQ(tr.events().size(), 6u);
  EXPECT_EQ(tr.events()[3].span, ss);
  EXPECT_EQ(tr.events()[4].span, hs);
  EXPECT_EQ(tr.events()[5].span, flow);
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_EQ(tr.events()[i].phase, 'E');
    EXPECT_EQ(tr.events()[i].t, 100);
  }
  // Idempotent: nothing left open.
  tr.close_open_spans(200);
  EXPECT_EQ(tr.events().size(), 6u);
}

TEST(SpanTracer, FlowRegistryLooksUpByPackedKey) {
  SpanTracer tr;
  tr.set_enabled(true);
  const std::uint64_t f1 = tr.begin_span(0, SpanKind::kFlow, 0, 0);
  const std::uint64_t f2 = tr.begin_span(0, SpanKind::kFlow, 0, 0);
  tr.register_flow(0x100000002ull, 0x30004ull, f1);
  tr.register_flow(0x100000002ull, 0x30005ull, f2);  // same hosts, new port
  EXPECT_EQ(tr.flow_span_of(0x100000002ull, 0x30004ull), f1);
  EXPECT_EQ(tr.flow_span_of(0x100000002ull, 0x30005ull), f2);
  EXPECT_EQ(tr.flow_span_of(0x100000002ull, 0x30006ull), 0u);
  ASSERT_EQ(tr.flows().size(), 2u);
  EXPECT_EQ(tr.flows()[0].span, f1);
  EXPECT_EQ(tr.flows()[0].key_lo, 0x30004ull);
}

TEST(SpanTracer, LatencyAccumulatesPerFlowAndContextWide) {
  SpanTracer tr;
  tr.set_enabled(true);
  const std::uint64_t f = tr.begin_span(0, SpanKind::kFlow, 0, 0);
  tr.add_latency(f, LatencyComponent::kQueueing, 1'000'000);  // 1 us
  tr.add_latency(f, LatencyComponent::kQueueing, 3'000'000);
  tr.add_latency(0, LatencyComponent::kTransmission, 2'000'000);
  const SpanTracer::LatencyAccum* acc = tr.latency_of(f);
  ASSERT_NE(acc, nullptr);
  EXPECT_EQ(acc->total_ps[0], 4'000'000);
  EXPECT_EQ(acc->samples[0], 2u);
  EXPECT_EQ(acc->samples[1], 0u);  // unattributed sample stays context-wide
  EXPECT_EQ(tr.latency_of(999), nullptr);
  std::uint64_t queueing_total = 0;
  for (std::uint64_t n : tr.latency_counts(LatencyComponent::kQueueing)) {
    queueing_total += n;
  }
  EXPECT_EQ(queueing_total, 2u);
  std::uint64_t tx_total = 0;
  for (std::uint64_t n : tr.latency_counts(LatencyComponent::kTransmission)) {
    tx_total += n;
  }
  EXPECT_EQ(tx_total, 1u);
}

TEST(SpanTracer, MaxEventsCapCountsDrops) {
  SpanTracer tr;
  tr.set_enabled(true);
  tr.set_max_events(2);
  const std::uint64_t f = tr.begin_span(0, SpanKind::kFlow, 0, 0);
  tr.instant(1, SpanKind::kDecision, 0, f);
  tr.instant(2, SpanKind::kDecision, 0, f);  // dropped
  tr.end_span(3, f);                         // dropped
  EXPECT_EQ(tr.events().size(), 2u);
  EXPECT_EQ(tr.dropped(), 2u);
  std::ostringstream os;
  tr.dump_jsonl(os);
  EXPECT_NE(os.str().find("\"dropped_events\":2"), std::string::npos);
}

TEST(SpanTracer, DumpJsonlLinesParseWithStableKeys) {
  SpanTracer tr;
  tr.set_enabled(true);
  const std::uint64_t f = tr.begin_span(0, SpanKind::kFlow, 0, 0, 4096);
  tr.register_flow((std::uint64_t{3} << 32) | 4, (std::uint64_t{5} << 16) | 6,
                   f);
  tr.add_latency(f, LatencyComponent::kPropagation, 10'000'000);
  const std::uint64_t dec =
      tr.instant(7, SpanKind::kDecision, 0, f, 10, 0, 5, 5);
  tr.instant(8, SpanKind::kRwndWrite, dec, f, 7210, 65535, 7210, 1);
  tr.close_open_spans(100);

  std::ostringstream os;
  tr.dump_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::vector<Json> parsed;
  while (std::getline(is, line)) {
    std::string err;
    Json j = Json::parse(line, &err);
    ASSERT_TRUE(err.empty()) << err << " in: " << line;
    parsed.push_back(std::move(j));
  }
  // F line, B, i(decision), i(rwnd_write), E, L line.  (The "D"
  // dropped-events trailer only appears when events were dropped.)
  ASSERT_EQ(parsed.size(), 6u);
  EXPECT_EQ(field(parsed[0], "ph").as_string(), "F");
  EXPECT_EQ(field(parsed[0], "src").as_int(), 3);
  EXPECT_EQ(field(parsed[0], "dport").as_int(), 6);
  EXPECT_EQ(field(parsed[1], "kind").as_string(), "flow");
  EXPECT_EQ(field(parsed[1], "total_bytes").as_int(), 4096);
  EXPECT_EQ(field(parsed[2], "x_um").as_int(), 10);
  EXPECT_EQ(field(parsed[2], "deferred_pkts").as_int(), 5);
  EXPECT_EQ(field(parsed[3], "kind").as_string(), "rwnd_write");
  EXPECT_EQ(field(parsed[3], "parent").as_int(), static_cast<std::int64_t>(dec));
  EXPECT_EQ(field(parsed[5], "ph").as_string(), "L");
  EXPECT_EQ(field(parsed[5], "propagation_ps").as_int(), 10'000'000);
}

TEST(SpanTracer, ExportChromeIsValidAndBalanced) {
  SpanTracer tr;
  tr.set_enabled(true);
  const std::uint64_t f = tr.begin_span(0, SpanKind::kFlow, 0, 0);
  const std::uint64_t hs = tr.begin_span(1, SpanKind::kHandshake, f, f);
  tr.end_span(2'000'000, hs);
  tr.instant(3'000'000, SpanKind::kDecision, 0, f);
  tr.close_open_spans(4'000'000);

  std::ostringstream os;
  tr.export_chrome(os, "unit");
  std::string err;
  Json doc = Json::parse(os.str(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(field(doc, "schema").as_string(), "hwatch.trace_export/v1");
  EXPECT_EQ(field(doc, "dropped_events").as_int(), 0);
  const Json& evs = field(doc, "traceEvents");
  int depth = 0;
  double last_ts = -1;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const Json& e = evs.at(i);
    const std::string ph = field(e, "ph").as_string();
    if (ph == "M") continue;
    const double ts = field(e, "ts").as_double();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    if (ph == "B") ++depth;
    if (ph == "E") --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(SpanTracer, ExportIsByteIdenticalAcrossIdenticalRuns) {
  auto make = [] {
    SpanTracer tr;
    tr.set_enabled(true);
    const std::uint64_t f = tr.begin_span(0, SpanKind::kFlow, 0, 0, 1000);
    tr.register_flow(1, 2, f);
    tr.add_latency(f, LatencyComponent::kQueueing, 42);
    tr.instant(5, SpanKind::kDecision, 0, f, 1, 2, 3, 4);
    tr.close_open_spans(9);
    std::ostringstream spans, chrome;
    tr.dump_jsonl(spans);
    tr.export_chrome(chrome, "x");
    return std::make_pair(spans.str(), chrome.str());
  };
  const auto a = make();
  const auto b = make();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(SpanTracer, ArgNamesCoverEveryKind) {
  for (std::size_t k = 0; k < kSpanKinds; ++k) {
    const auto kind = static_cast<SpanKind>(k);
    EXPECT_FALSE(to_string(kind).empty());
    // arg_names must return a valid (possibly all-null) table.
    (void)SpanTracer::arg_names(kind);
  }
  EXPECT_EQ(to_string(SpanKind::kRwndWrite), "rwnd_write");
  EXPECT_EQ(to_string(LatencyComponent::kRetxWait), "retx_wait");
  const auto& dec = SpanTracer::arg_names(SpanKind::kDecision);
  ASSERT_NE(dec.a, nullptr);
  EXPECT_STREQ(dec.a, "x_um");
  EXPECT_STREQ(dec.b, "x_m");
}

}  // namespace
}  // namespace hwatch::sim
