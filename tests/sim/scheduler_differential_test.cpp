// Differential property test: the wheel + overflow-heap scheduler must
// execute randomized schedule/cancel/execute sequences in exactly the
// order a naive (time, insertion-seq)-sorted reference produces.  This
// pins the determinism contract — FIFO at equal timestamps, no
// reordering across the wheel/heap boundary — independently of the
// figure manifests, so a future event-core change that subtly reorders
// ties fails here in milliseconds instead of in a manifest diff.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace hwatch::sim {
namespace {

// Naive reference: a flat vector of live events, executed by stable
// (time, seq) sort.  Deliberately simple enough to be obviously
// correct.
struct RefEvent {
  TimePs time;
  std::uint64_t seq;
  int token;
};

class ReferenceScheduler {
 public:
  void schedule(TimePs t, int token) { live_.push_back({t, seq_++, token}); }

  bool cancel(int token) {
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (it->token == token) {
        live_.erase(it);
        return true;
      }
    }
    return false;
  }

  // Executes everything with time <= t (ties broken by insertion seq)
  // and advances the clock, mirroring Scheduler::run_until.
  void run_until(TimePs t, std::vector<int>& order) {
    std::vector<RefEvent> due;
    for (const RefEvent& e : live_) {
      if (e.time <= t) due.push_back(e);
    }
    std::sort(due.begin(), due.end(), [](const RefEvent& a, const RefEvent& b) {
      return a.time != b.time ? a.time < b.time : a.seq < b.seq;
    });
    for (const RefEvent& e : due) order.push_back(e.token);
    std::erase_if(live_, [t](const RefEvent& e) { return e.time <= t; });
    if (now_ < t) now_ = t;
  }

  TimePs now() const { return now_; }
  bool empty() const { return live_.empty(); }

 private:
  std::vector<RefEvent> live_;
  std::uint64_t seq_ = 0;
  TimePs now_ = 0;
};

// Drives both schedulers through the same random op sequence and
// compares the full execution orders.  The time distribution is tuned
// to stress the wheel: same-timestamp bursts (bucket overflow into the
// heap), sub-bucket offsets, offsets near the wheel span boundary, and
// far-future horizons several spans out.
void RunDifferential(std::uint64_t seed, int ops) {
  std::mt19937_64 rng(seed);
  Scheduler real;
  ReferenceScheduler ref;
  std::vector<int> real_order;
  std::vector<int> ref_order;
  std::unordered_map<int, EventId> live;  // token -> real handle
  std::vector<int> live_tokens;
  int next_token = 0;
  TimePs last_time = 0;

  auto pick_time = [&]() -> TimePs {
    switch (rng() % 8) {
      case 0:
        return real.now();  // immediate
      case 1:
      case 2:  // same-timestamp burst: reuse the previous pick
        return std::max(last_time, real.now());
      case 3:  // inside one bucket
        return real.now() + static_cast<TimePs>(rng() % kWheelBucketPs);
      case 4:  // straddling the wheel span boundary
        return real.now() + kWheelSpanPs - kWheelBucketPs +
               static_cast<TimePs>(rng() % (4 * kWheelBucketPs));
      case 5:  // far future, heap-resident
        return real.now() + kWheelSpanPs * (1 + static_cast<TimePs>(rng() % 4));
      default:  // anywhere in the near horizon
        return real.now() + static_cast<TimePs>(rng() % kWheelSpanPs);
    }
  };

  for (int op = 0; op < ops; ++op) {
    const unsigned roll = rng() % 100;
    if (roll < 55 || live_tokens.empty()) {
      // Schedule, occasionally as a burst at one timestamp to overflow
      // a bucket.
      const int burst = (rng() % 10 == 0) ? 1 + static_cast<int>(rng() % 24)
                                          : 1;
      const TimePs t = pick_time();
      last_time = t;
      for (int i = 0; i < burst; ++i) {
        const int token = next_token++;
        live[token] =
            real.schedule_at(t, [token, &real_order] {
              real_order.push_back(token);
            });
        ref.schedule(t, token);
        live_tokens.push_back(token);
      }
    } else if (roll < 75) {
      // Cancel (or reschedule: cancel + fresh schedule) a random live
      // event.
      const std::size_t idx = rng() % live_tokens.size();
      const int token = live_tokens[idx];
      const bool real_ok = real.cancel(live[token]);
      const bool ref_ok = ref.cancel(token);
      ASSERT_EQ(real_ok, ref_ok) << "cancel divergence, token " << token;
      live.erase(token);
      live_tokens[idx] = live_tokens.back();
      live_tokens.pop_back();
      if (roll < 65) {
        const TimePs t = pick_time();
        last_time = t;
        const int fresh = next_token++;
        live[fresh] = real.schedule_at(t, [fresh, &real_order] {
          real_order.push_back(fresh);
        });
        ref.schedule(t, fresh);
        live_tokens.push_back(fresh);
      }
    } else {
      // Execute a slice of the timeline; occasionally a jump several
      // wheel spans long.
      const TimePs delta =
          (rng() % 8 == 0) ? 2 * kWheelSpanPs
                           : static_cast<TimePs>(rng() % (kWheelSpanPs / 4));
      const TimePs target = real.now() + delta;
      real.run_until(target);
      ref.run_until(target, ref_order);
      ASSERT_EQ(real.now(), ref.now());
      ASSERT_EQ(real_order, ref_order) << "divergence after run_until("
                                       << target << "), seed " << seed;
      // Drop executed tokens from the live view (re-erasing tokens from
      // earlier rounds is a no-op).
      for (const int tk : ref_order) live.erase(tk);
      std::erase_if(live_tokens,
                    [&](int tk) { return live.count(tk) == 0; });
    }
  }

  // Drain everything still pending.
  real.run();
  ref.run_until(std::numeric_limits<TimePs>::max() / 2, ref_order);
  ASSERT_EQ(real_order, ref_order) << "divergence at drain, seed " << seed;
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(real.pending(), 0u);
}

TEST(SchedulerDifferentialTest, RandomizedChurnMatchesReferenceOrder) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull, 987654ull}) {
    RunDifferential(seed, 4'000);
  }
}

TEST(SchedulerDifferentialTest, SameTimestampBurstsStayFifo) {
  // Degenerate distribution: everything lands on a handful of
  // timestamps, so nearly every event is a tie and most buckets
  // overflow.
  Scheduler real;
  ReferenceScheduler ref;
  std::vector<int> real_order;
  std::vector<int> ref_order;
  std::mt19937_64 rng(99);
  int token = 0;
  for (int round = 0; round < 50; ++round) {
    const TimePs base = real.now();
    for (int i = 0; i < 60; ++i) {
      const TimePs t = base + static_cast<TimePs>(rng() % 3) * 1'000;
      const int tk = token++;
      real.schedule_at(t, [tk, &real_order] { real_order.push_back(tk); });
      ref.schedule(t, tk);
    }
    const TimePs target = base + 2'000;
    real.run_until(target);
    ref.run_until(target, ref_order);
    ASSERT_EQ(real_order, ref_order) << "round " << round;
  }
  real.run();
  ref.run_until(std::numeric_limits<TimePs>::max() / 2, ref_order);
  EXPECT_EQ(real_order, ref_order);
}

}  // namespace
}  // namespace hwatch::sim
