#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "sim/manifest.hpp"

namespace hwatch::sim {
namespace {

TEST(MetricsRegistry, DisabledByDefaultAndInstrumentsAreNoOps) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.enabled());
  Counter& c = reg.counter("a");
  Histogram& h = reg.histogram("b", Histogram::linear_bounds(0, 1, 4));
  c.inc();
  c.inc(100);
  h.record(2.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(MetricsRegistry, EnabledInstrumentsAccumulate) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  Counter& c = reg.counter("a");
  c.inc();
  c.inc(9);
  EXPECT_EQ(c.value(), 10u);
}

TEST(MetricsRegistry, CounterIsFindOrCreate) {
  MetricsRegistry reg;
  Counter& a = reg.counter("same");
  Counter& b = reg.counter("same");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.counter_count(), 1u);
}

TEST(MetricsRegistry, HistogramFirstBoundsWin) {
  MetricsRegistry reg;
  Histogram& a = reg.histogram("h", {1, 2, 3});
  Histogram& b = reg.histogram("h", {99});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.bounds().size(), 3u);
}

TEST(Histogram, BucketsAndOverflow) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  Histogram& h = reg.histogram("h", {10, 20, 30});
  h.record(5);    // <= 10
  h.record(10);   // <= 10 (inclusive upper bound)
  h.record(15);   // <= 20
  h.record(30);   // <= 30
  h.record(1e9);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 5.0);
  EXPECT_EQ(h.max(), 1e9);
}

TEST(Histogram, BoundsBuilders) {
  const auto exp = Histogram::exponential_bounds(1, 2, 4);
  EXPECT_EQ(exp, (std::vector<double>{1, 2, 4, 8}));
  const auto lin = Histogram::linear_bounds(0, 10, 3);
  EXPECT_EQ(lin, (std::vector<double>{0, 10, 20}));
}

TEST(MetricsRegistry, SnapshotSortedByNameRegardlessOfCreationOrder) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.counter("zz").inc(1);
  reg.counter("aa").inc(2);
  reg.histogram("mm", {1}).record(0.5);
  reg.histogram("bb", {1}).record(0.5);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "aa");
  EXPECT_EQ(snap.counters[1].name, "zz");
  ASSERT_EQ(snap.histograms.size(), 2u);
  EXPECT_EQ(snap.histograms[0].name, "bb");
  EXPECT_EQ(snap.histograms[1].name, "mm");
}

TEST(MetricsRegistry, GaugesKeepRegistrationOrder) {
  MetricsRegistry reg;
  int calls = 0;
  reg.register_gauge("g1", [&calls] { return static_cast<double>(++calls); });
  reg.register_gauge("g0", [] { return 7.0; });
  ASSERT_EQ(reg.gauges().size(), 2u);
  EXPECT_EQ(reg.gauges()[0].name, "g1");
  EXPECT_EQ(reg.gauges()[0].fn(), 1.0);
  EXPECT_EQ(reg.gauges()[1].fn(), 7.0);
}

TEST(RunManifest, JsonShapeAndDeterministicDumpExcludesEnvironment) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.counter("c").inc(3);
  reg.histogram("h", {1, 2}).record(1.5);

  RunManifest man;
  man.name = "unit";
  man.scenario_kind = "test";
  man.seed = 42;
  man.config.set("k", 1);
  man.results.set("r", 2);
  man.metrics = metrics_json(reg.snapshot());
  man.wall_time_ms = 123.0;
  man.sweep_threads = 4;

  const Json full = man.to_json(true);
  EXPECT_EQ(full.find("schema")->as_string(), RunManifest::kSchemaId);
  EXPECT_EQ(full.find("seed")->as_uint(), 42u);
  ASSERT_NE(full.find("environment"), nullptr);
  EXPECT_EQ(
      full.find("environment")->find("sweep_threads")->as_uint(), 4u);

  const std::string det = man.deterministic_dump();
  EXPECT_EQ(det.find("environment"), std::string::npos);
  EXPECT_EQ(det.find("wall_time"), std::string::npos);

  const Json* counters = full.find("metrics")->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("c")->as_uint(), 3u);
  const Json* hist = full.find("metrics")->find("histograms")->find("h");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->as_uint(), 1u);
  EXPECT_EQ(hist->find("bucket_counts")->size(), 3u);
}

TEST(RunManifest, SanitizeFilename) {
  EXPECT_EQ(RunManifest::sanitize("a b/c:d"), "a_b_c_d");
  EXPECT_EQ(RunManifest::sanitize("ok-1.2_x"), "ok-1.2_x");
  EXPECT_EQ(RunManifest::sanitize(""), "run");
}

}  // namespace
}  // namespace hwatch::sim
