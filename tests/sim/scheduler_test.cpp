#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/time.hpp"
#include "sim/timer.hpp"

namespace hwatch::sim {
namespace {

TEST(SchedulerTest, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTest, ExecutesEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(milliseconds(3), [&] { order.push_back(3); });
  s.schedule_at(milliseconds(1), [&] { order.push_back(1); });
  s.schedule_at(milliseconds(2), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), milliseconds(3));
}

TEST(SchedulerTest, EqualTimestampsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(microseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, ScheduleInIsRelativeToNow) {
  Scheduler s;
  TimePs fired_at = -1;
  s.schedule_at(milliseconds(5), [&] {
    s.schedule_in(milliseconds(2), [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, milliseconds(7));
}

TEST(SchedulerTest, RejectsPastEvents) {
  Scheduler s;
  s.schedule_at(milliseconds(1), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(0, [] {}), std::invalid_argument);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  EventId id = s.schedule_at(milliseconds(1), [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.executed(), 0u);
}

TEST(SchedulerTest, CancelTwiceReturnsFalse) {
  Scheduler s;
  EventId id = s.schedule_at(milliseconds(1), [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(SchedulerTest, CancelAfterFireReturnsFalse) {
  Scheduler s;
  EventId id = s.schedule_at(milliseconds(1), [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(SchedulerTest, CancelInvalidIdReturnsFalse) {
  Scheduler s;
  EXPECT_FALSE(s.cancel(EventId{}));
  EXPECT_FALSE(s.cancel(EventId{999}));
}

TEST(SchedulerTest, PendingCountTracksCancellations) {
  Scheduler s;
  EventId a = s.schedule_at(1, [] {});
  s.schedule_at(2, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.executed(), 1u);
}

TEST(SchedulerTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Scheduler s;
  std::vector<TimePs> fired;
  s.schedule_at(milliseconds(1), [&] { fired.push_back(s.now()); });
  s.schedule_at(milliseconds(5), [&] { fired.push_back(s.now()); });
  s.run_until(milliseconds(3));
  EXPECT_EQ(fired.size(), 1u);
  EXPECT_EQ(s.now(), milliseconds(3));
  // The ms-5 event survives and runs on the next call.
  s.run_until(milliseconds(10));
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], milliseconds(5));
  EXPECT_EQ(s.now(), milliseconds(10));
}

TEST(SchedulerTest, RunUntilInclusiveOfBoundary) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(milliseconds(3), [&] { fired = true; });
  s.run_until(milliseconds(3));
  EXPECT_TRUE(fired);
}

TEST(SchedulerTest, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_in(milliseconds(1), recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), milliseconds(4));
}

TEST(SchedulerTest, StopHaltsRun) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(i, [&] {
      if (++count == 3) s.stop();
    });
  }
  s.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.pending(), 7u);
  s.run();  // resumes
  EXPECT_EQ(count, 10);
}

TEST(SchedulerTest, StepExecutesExactlyOne) {
  Scheduler s;
  int count = 0;
  s.schedule_at(1, [&] { ++count; });
  s.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

TEST(SchedulerTest, CancelledEventsSkippedByRunUntilPeek) {
  Scheduler s;
  bool fired = false;
  EventId id = s.schedule_at(milliseconds(1), [&] { fired = true; });
  s.schedule_at(milliseconds(5), [] {});
  s.cancel(id);
  s.run_until(milliseconds(2));
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(SchedulerTest, ManyEventsStressOrdering) {
  Scheduler s;
  TimePs last = -1;
  bool monotonic = true;
  // Deterministic pseudo-random times.
  std::uint64_t x = 12345;
  for (int i = 0; i < 10000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const TimePs t = static_cast<TimePs>(x % 1000000);
    s.schedule_at(t, [&, t] {
      if (t < last) monotonic = false;
      last = t;
    });
  }
  s.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(s.executed(), 10000u);
}

TEST(TimerTest, FiresAfterDelay) {
  Scheduler s;
  Timer t(s, [] {});
  EXPECT_FALSE(t.pending());
  t.arm(milliseconds(2));
  EXPECT_TRUE(t.pending());
  EXPECT_EQ(t.expiry(), milliseconds(2));
  s.run();
  EXPECT_FALSE(t.pending());
}

TEST(TimerTest, RearmReplacesPendingExpiry) {
  Scheduler s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  t.arm(milliseconds(10));
  t.arm(milliseconds(1));  // replaces: only one fire, at ms 1
  s.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(s.now(), milliseconds(1));
}

TEST(TimerTest, CancelStopsFire) {
  Scheduler s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  t.arm(milliseconds(1));
  t.cancel();
  s.run();
  EXPECT_EQ(fires, 0);
}

TEST(TimerTest, ArmIfIdleKeepsEarlierDeadline) {
  Scheduler s;
  Timer t(s, [] {});
  t.arm(milliseconds(1));
  t.arm_if_idle(milliseconds(50));
  EXPECT_EQ(t.expiry(), milliseconds(1));
}

TEST(TimerTest, CanRearmInsideCallback) {
  Scheduler s;
  int fires = 0;
  Timer* tp = nullptr;
  Timer t(s, [&] {
    if (++fires < 3) tp->arm(milliseconds(1));
  });
  tp = &t;
  t.arm(milliseconds(1));
  s.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(s.now(), milliseconds(3));
}

TEST(TimerTest, DestructorCancelsPendingEvent) {
  Scheduler s;
  int fires = 0;
  {
    Timer t(s, [&] { ++fires; });
    t.arm(milliseconds(1));
  }
  s.run();
  EXPECT_EQ(fires, 0);
}

}  // namespace
}  // namespace hwatch::sim
