// ShardTelemetry — the deterministic counter plane must be a pure
// function of the hook sequence (independent of the worker count in the
// config), the flight ring must evict old epochs and dump valid JSON on
// shard exceptions / budget overruns, and the per-worker Chrome export
// must be well-formed (balanced B/E, sorted timestamps).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/json.hpp"
#include "sim/shard_group.hpp"
#include "sim/shard_telemetry.hpp"
#include "sim/time.hpp"

namespace hwatch::sim {
namespace {

ShardTelemetry::Config base_config(std::size_t shards) {
  ShardTelemetry::Config cfg;
  cfg.shard_count = shards;
  cfg.workers = 1;
  cfg.label = "telemetry-test";
  cfg.lookahead = 1000;
  return cfg;
}

/// Drives `epochs` epochs of the hook protocol: shard 0 executes
/// `heavy` events per epoch, every other shard exactly one, and shard 0
/// additionally reports cumulative ingress counters growing by one push
/// per epoch.
void drive(ShardTelemetry& tel, std::size_t shards, std::uint64_t epochs,
           std::uint64_t heavy) {
  std::vector<std::uint64_t> events_cum(shards, 0);
  std::uint64_t pushed_cum = 0;
  for (std::uint64_t e = 0; e < epochs; ++e) {
    const TimePs start = static_cast<TimePs>(e) * 1000;
    const TimePs end = start + 1000;
    for (std::size_t s = 0; s < shards; ++s) {
      ShardTelemetry::IngressSample in;
      if (s == 0) {
        ++pushed_cum;
        in.pushed = pushed_cum;
        in.peak_depth = 3;
        in.depth = 1;
      }
      tel.shard_drain(s, start, in);
    }
    for (std::size_t s = 0; s < shards; ++s) {
      events_cum[s] += s == 0 ? heavy : 1;
      tel.shard_run(s, end, events_cum[s]);
    }
    tel.epoch_end(end, static_cast<TimePs>(epochs) * 1000);
  }
}

TEST(ShardTelemetryTest, CountersImbalanceAndStragglers) {
  ShardTelemetry tel(base_config(4));
  drive(tel, 4, 10, 7);
  EXPECT_EQ(tel.epochs(), 10u);
  // 10 epochs of 7+1+1+1 events.
  EXPECT_EQ(tel.total_events(), 100u);
  // Every epoch's max shard delta is 7, mean is 10/4.
  EXPECT_DOUBLE_EQ(tel.imbalance_ratio(), 7.0 / (100.0 / (10 * 4)));
  const auto top = tel.top_stragglers(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 0u);  // the heavy shard
  EXPECT_EQ(top[1], 1u);  // tie among 1..3 broken by lower id
  EXPECT_EQ(tel.spill_total(), 0u);
  EXPECT_EQ(tel.inbox_peak_depth(), 3u);
}

TEST(ShardTelemetryTest, ShardsJsonIsWorkerCountFree) {
  ShardTelemetry::Config one = base_config(3);
  one.workers = 1;
  ShardTelemetry::Config four = base_config(3);
  four.workers = 4;
  // Wall-clock features differ too: they must not leak into the
  // deterministic section either.
  four.wall_spans = true;
  four.progress = false;
  ShardTelemetry a(std::move(one));
  ShardTelemetry b(std::move(four));
  drive(a, 3, 5, 4);
  drive(b, 3, 5, 4);
  const std::string da = a.shards_json().dump(2);
  const std::string db = b.shards_json().dump(2);
  EXPECT_EQ(da, db);

  std::string err;
  const Json j = Json::parse(da, &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_TRUE(j.is_object());
  ASSERT_NE(j.find("schema"), nullptr);
  EXPECT_EQ(j.find("schema")->as_string(), "hwatch.shard_telemetry/v1");
  EXPECT_EQ(j.find("shard_count")->as_uint(), 3u);
  EXPECT_EQ(j.find("epochs")->as_uint(), 5u);
  ASSERT_NE(j.find("events"), nullptr);
  EXPECT_GT(j.find("events")->find("imbalance_ratio")->as_double(), 1.0);
  ASSERT_NE(j.find("per_shard"), nullptr);
  EXPECT_EQ(j.find("per_shard")->size(), 3u);
  const Json& shard0 = j.find("per_shard")->at(0);
  EXPECT_EQ(shard0.find("events")->as_uint(), 20u);
  EXPECT_EQ(shard0.find("ingress")->find("pushed")->as_uint(), 5u);
}

TEST(ShardTelemetryTest, FlightRingKeepsOnlyNewestEpochs) {
  ShardTelemetry::Config cfg = base_config(2);
  cfg.ring_epochs = 4;
  ShardTelemetry tel(std::move(cfg));
  drive(tel, 2, 10, 2);

  std::ostringstream os;
  tel.dump_flight(os, "forced");
  std::string err;
  const Json j = Json::parse(os.str(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(j.find("schema")->as_string(), "hwatch.shard_flight/v1");
  EXPECT_EQ(j.find("reason")->as_string(), "forced");
  EXPECT_EQ(j.find("epochs_completed")->as_uint(), 10u);
  const Json* epochs = j.find("epochs");
  ASSERT_NE(epochs, nullptr);
  // ring_epochs - 1 = the newest 3 completed epochs: 7, 8, 9.
  ASSERT_EQ(epochs->size(), 3u);
  EXPECT_EQ(epochs->at(0).find("epoch")->as_uint(), 7u);
  EXPECT_EQ(epochs->at(2).find("epoch")->as_uint(), 9u);
  for (const Json& row : epochs->items()) {
    ASSERT_EQ(row.find("shards")->size(), 2u);
    EXPECT_EQ(row.find("shards")->at(0).find("events")->as_uint(), 2u);
    EXPECT_EQ(row.find("shards")->at(1).find("events")->as_uint(), 1u);
  }
}

TEST(ShardTelemetryTest, EmptyRunProducesValidOutputs) {
  ShardTelemetry tel(base_config(2));
  EXPECT_EQ(tel.epochs(), 0u);
  EXPECT_DOUBLE_EQ(tel.imbalance_ratio(), 0.0);
  EXPECT_TRUE(tel.top_stragglers(3).empty());

  std::string err;
  const Json shards = Json::parse(tel.shards_json().dump(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(shards.find("epochs")->as_uint(), 0u);
  EXPECT_EQ(shards.find("stragglers")->size(), 0u);

  std::ostringstream flight;
  tel.dump_flight(flight, "forced");
  const Json fj = Json::parse(flight.str(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(fj.find("epochs")->size(), 0u);

  std::ostringstream chrome;
  tel.export_chrome_workers(chrome, "empty");
  const Json cj = Json::parse(chrome.str(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(cj.find("schema")->as_string(), "hwatch.trace_export/v1");

  std::ostringstream report;
  tel.report(report);
  EXPECT_NE(report.str().find("epochs 0"), std::string::npos);
}

TEST(ShardTelemetryTest, WorkerTimelineBalancedAndSorted) {
  ShardTelemetry::Config cfg = base_config(2);
  cfg.workers = 2;
  cfg.wall_spans = true;
  ShardTelemetry tel(std::move(cfg));
  for (int e = 0; e < 3; ++e) {
    for (unsigned w = 0; w < 2; ++w) {
      tel.worker_mark(w, ShardTelemetry::Mark::kDrain);
      tel.worker_mark(w, ShardTelemetry::Mark::kBarrier);
      tel.worker_mark(w, ShardTelemetry::Mark::kRun);
      tel.worker_mark(w, ShardTelemetry::Mark::kBarrier);
    }
  }
  for (unsigned w = 0; w < 2; ++w) {
    tel.worker_mark(w, ShardTelemetry::Mark::kEnd);
  }
  EXPECT_EQ(tel.worker_spans_dropped(), 0u);

  std::ostringstream os;
  tel.export_chrome_workers(os, "timeline-test");
  std::string err;
  const Json j = Json::parse(os.str(), &err);
  ASSERT_TRUE(err.empty()) << err;
  const Json* events = j.find("traceEvents");
  ASSERT_NE(events, nullptr);
  double last_ts = -1;
  std::map<std::uint64_t, int> open;  // tid -> B minus E
  int spans = 0;
  for (const Json& ev : events->items()) {
    const std::string ph = ev.find("ph")->as_string();
    if (ph == "M") continue;
    const double ts = ev.find("ts")->as_double();
    EXPECT_GE(ts, last_ts) << "timestamps must be globally sorted";
    last_ts = ts;
    const std::uint64_t tid = ev.find("tid")->as_uint();
    if (ph == "B") {
      ++open[tid];
      ++spans;
      const std::string name = ev.find("name")->as_string();
      EXPECT_TRUE(name == "drain" || name == "barrier_wait" ||
                  name == "run")
          << name;
    } else {
      ASSERT_EQ(ph, "E");
      --open[tid];
      EXPECT_GE(open[tid], 0);
    }
  }
  for (const auto& [tid, n] : open) {
    EXPECT_EQ(n, 0) << "unbalanced B/E on tid " << tid;
  }
  // 2 workers x 3 epochs x 4 marks, each closing one phase span.
  EXPECT_EQ(spans, 2 * 3 * 4);
}

TEST(ShardTelemetryTest, BudgetEnvParsing) {
  ::unsetenv("HWATCH_EPOCH_BUDGET_MS");
  EXPECT_EQ(ShardTelemetry::epoch_budget_ms_from_env(), 0u);
  ::setenv("HWATCH_EPOCH_BUDGET_MS", "250", 1);
  EXPECT_EQ(ShardTelemetry::epoch_budget_ms_from_env(), 250u);
  ::setenv("HWATCH_EPOCH_BUDGET_MS", "nonsense", 1);
  EXPECT_EQ(ShardTelemetry::epoch_budget_ms_from_env(), 0u);
  ::unsetenv("HWATCH_EPOCH_BUDGET_MS");
}

// ---- flight dumps through the real ShardGroup ------------------------

struct CountingTask final : ShardTask {
  std::uint64_t events = 0;
  ShardTelemetry* tel = nullptr;
  std::size_t id = 0;
  void drain(TimePs start) override {
    if (tel != nullptr) tel->shard_drain(id, start, {});
  }
  void run(TimePs end) override {
    events += 2;
    if (tel != nullptr) tel->shard_run(id, end, events);
  }
};

struct ThrowingTask final : ShardTask {
  void drain(TimePs) override {}
  void run(TimePs window_end) override {
    if (window_end >= 30) {
      throw std::runtime_error("shard blew up at t=30");
    }
  }
};

std::string flight_dir_for(const char* test) {
  const auto dir =
      std::filesystem::temp_directory_path() / "hwatch_flight_test" / test;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ShardGroupFlightTest, DumpsOnShardException) {
  for (unsigned threads : {1u, 2u}) {
    const std::string dir = flight_dir_for("exception");
    ShardTelemetry::Config cfg = base_config(2);
    cfg.workers = threads;
    cfg.flight_dir = dir;
    cfg.label = "boom";
    ShardTelemetry tel(std::move(cfg));

    ShardGroup group(threads);
    CountingTask ok;
    ok.tel = &tel;
    ok.id = 0;
    ThrowingTask bad;
    group.add(&ok);
    group.add(&bad);
    group.set_telemetry(&tel);
    EXPECT_THROW(group.run(100, 10), std::runtime_error)
        << threads << " threads";

    const auto path = std::filesystem::path(dir) / "boom.flight.json";
    ASSERT_TRUE(std::filesystem::exists(path)) << threads << " threads";
    std::string err;
    const Json j = Json::parse(read_file(path), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(j.find("schema")->as_string(), "hwatch.shard_flight/v1");
    EXPECT_EQ(j.find("reason")->as_string(), "shard_exception");
    ASSERT_NE(j.find("error"), nullptr);
    EXPECT_NE(j.find("error")->as_string().find("shard blew up"),
              std::string::npos);
    std::filesystem::remove_all(dir);
  }
}

TEST(ShardGroupFlightTest, CreatesMissingFlightDirectories) {
  const std::string base = flight_dir_for("mkdirs");
  ShardTelemetry::Config cfg = base_config(1);
  // Two levels that don't exist yet: the dump must create them rather
  // than silently writing nothing.
  cfg.flight_dir = (std::filesystem::path(base) / "a" / "b").string();
  cfg.label = "nested";
  ShardTelemetry tel(std::move(cfg));
  tel.dump_flight("forced");
  const auto path =
      std::filesystem::path(base) / "a" / "b" / "nested.flight.json";
  ASSERT_TRUE(std::filesystem::exists(path));
  std::string err;
  const Json j = Json::parse(read_file(path), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(j.find("reason")->as_string(), "forced");
  std::filesystem::remove_all(base);
}

TEST(ShardGroupFlightTest, UnwritableFlightDirThrowsNamingTheVariable) {
  const std::string base = flight_dir_for("unwritable");
  // A regular file where a directory is needed: create_directories can
  // neither traverse nor create through it.
  const auto blocker = std::filesystem::path(base) / "file";
  { std::ofstream(blocker) << "not a directory"; }
  const std::string bad_dir = (blocker / "sub").string();
  ShardTelemetry::Config cfg = base_config(1);
  cfg.flight_dir = bad_dir;
  cfg.label = "stuck";
  ShardTelemetry tel(std::move(cfg));
  try {
    tel.dump_flight("forced");
    FAIL() << "dump_flight must throw when the flight dir is unwritable";
  } catch (const std::runtime_error& e) {
    // The message must name the knob and the value so the operator can
    // fix the environment, not grep the source.
    const std::string what = e.what();
    EXPECT_NE(what.find("HWATCH_FLIGHT_DIR"), std::string::npos) << what;
    EXPECT_NE(what.find(bad_dir), std::string::npos) << what;
  }
  std::filesystem::remove_all(base);
}

struct SlowTask final : ShardTask {
  void drain(TimePs) override {}
  void run(TimePs) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
};

TEST(ShardGroupFlightTest, DumpsOnEpochBudgetOverrun) {
  const std::string dir = flight_dir_for("budget");
  ShardTelemetry::Config cfg = base_config(1);
  cfg.flight_dir = dir;
  cfg.label = "slow";
  cfg.epoch_budget_ms = 1;
  ShardTelemetry tel(std::move(cfg));

  ShardGroup group(1);
  SlowTask slow;
  group.add(&slow);
  group.set_telemetry(&tel);
  group.run(30, 10);  // 3 epochs of ~5 ms against a 1 ms budget

  const auto path = std::filesystem::path(dir) / "slow.flight.json";
  ASSERT_TRUE(std::filesystem::exists(path));
  std::string err;
  const Json j = Json::parse(read_file(path), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(j.find("reason")->as_string(), "epoch_budget_exceeded");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hwatch::sim
