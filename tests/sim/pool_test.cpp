// BlockPool / PoolPtr / SpillArena: free-list recycling, RAII
// lifecycle, stats accounting, and the opt-in MetricsRegistry exposure.
#include "sim/pool.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "sim/context.hpp"

namespace {

using hwatch::sim::BlockPool;
using hwatch::sim::PoolPtr;
using hwatch::sim::SpillArena;

TEST(BlockPoolTest, RecyclesBlocks) {
  BlockPool pool(64);
  void* a = pool.allocate();
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().outstanding, 1u);
  pool.deallocate(a);
  EXPECT_EQ(pool.stats().outstanding, 0u);
  void* b = pool.allocate();
  EXPECT_EQ(b, a);  // LIFO free list hands the same block back
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
  pool.deallocate(b);
}

TEST(BlockPoolTest, PeakOutstandingTracksHighWater) {
  BlockPool pool(32);
  void* a = pool.allocate();
  void* b = pool.allocate();
  void* c = pool.allocate();
  pool.deallocate(b);
  pool.deallocate(a);
  void* d = pool.allocate();
  EXPECT_EQ(pool.stats().peak_outstanding, 3u);
  EXPECT_EQ(pool.stats().outstanding, 2u);
  pool.deallocate(c);
  pool.deallocate(d);
}

struct Probe {
  int* ctor_count;
  int* dtor_count;
  Probe(int* c, int* d) : ctor_count(c), dtor_count(d) { ++*ctor_count; }
  ~Probe() { ++*dtor_count; }
};

TEST(BlockPoolTest, MakeConstructsAndPoolPtrDestroys) {
  BlockPool pool(64);
  int ctors = 0;
  int dtors = 0;
  {
    PoolPtr<Probe> p = pool.make<Probe>(&ctors, &dtors);
    EXPECT_TRUE(static_cast<bool>(p));
    EXPECT_EQ(ctors, 1);
    EXPECT_EQ(dtors, 0);
    EXPECT_EQ(pool.stats().outstanding, 1u);
  }
  EXPECT_EQ(dtors, 1);
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(BlockPoolTest, PoolPtrMoveSemantics) {
  BlockPool pool(64);
  int ctors = 0;
  int dtors = 0;
  PoolPtr<Probe> a = pool.make<Probe>(&ctors, &dtors);
  Probe* raw = a.get();
  PoolPtr<Probe> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.get(), raw);
  EXPECT_EQ(dtors, 0);
  PoolPtr<Probe> c;
  c = std::move(b);
  EXPECT_EQ(c.get(), raw);
  c.reset();
  EXPECT_EQ(dtors, 1);
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(SimContextPoolTest, PacketPoolFitsAndRecycles) {
  hwatch::sim::SimContext ctx(1);
  {
    auto p = ctx.packet_pool().make<int>(5);
    EXPECT_EQ(*p, 5);
  }
  auto q = ctx.packet_pool().make<int>(6);
  EXPECT_EQ(ctx.packet_pool().stats().hits, 1u);
  EXPECT_EQ(ctx.packet_pool().stats().misses, 1u);
}

TEST(SimContextPoolTest, PublishPoolMetricsIsOptIn) {
  hwatch::sim::SimContext ctx(1);
  ctx.metrics().set_enabled(true);
  {
    auto warm = ctx.packet_pool().make<int>(0);  // miss before binding
  }
  ctx.publish_pool_metrics();  // seeds counters with totals so far
  EXPECT_EQ(ctx.metrics().counter("pool.packet.hit").value(), 0u);
  EXPECT_EQ(ctx.metrics().counter("pool.packet.miss").value(), 1u);
  {
    auto p = ctx.packet_pool().make<int>(1);  // hit, ticks live counter
  }
  EXPECT_EQ(ctx.metrics().counter("pool.packet.hit").value(), 1u);
  EXPECT_EQ(ctx.metrics().counter("pool.packet.miss").value(), 1u);
}

TEST(SpillArenaTest, RecyclesWithinSizeClass) {
  SpillArena arena;
  void* a = arena.allocate(100);  // 128-byte class
  EXPECT_EQ(arena.stats().misses, 1u);
  arena.deallocate(a, 100);
  void* b = arena.allocate(120);  // same class, different request size
  EXPECT_EQ(b, a);
  EXPECT_EQ(arena.stats().hits, 1u);
  arena.deallocate(b, 120);
}

TEST(SpillArenaTest, OversizedRequestsBypass) {
  SpillArena arena;
  void* big = arena.allocate(SpillArena::kMaxClassBytes + 1);
  EXPECT_NE(big, nullptr);
  EXPECT_EQ(arena.stats().bypass, 1u);
  EXPECT_EQ(arena.stats().hits, 0u);
  arena.deallocate(big, SpillArena::kMaxClassBytes + 1);
}

TEST(SpillArenaTest, DistinctClassesDoNotMix) {
  SpillArena arena;
  void* small = arena.allocate(64);
  arena.deallocate(small, 64);
  void* large = arena.allocate(1024);  // different class: fresh block
  EXPECT_EQ(arena.stats().misses, 2u);
  EXPECT_EQ(arena.stats().hits, 0u);
  arena.deallocate(large, 1024);
  void* again = arena.allocate(900);  // 1024 class again: recycled
  EXPECT_EQ(again, large);
  EXPECT_EQ(arena.stats().hits, 1u);
  arena.deallocate(again, 900);
}

}  // namespace
